// Package repro's root benchmark harness: one testing.B benchmark per
// table/figure in the Poseidon paper's evaluation. Each benchmark runs
// the corresponding experiment driver (internal/experiments) and reports
// custom metrics where a single headline number exists (speedups,
// traffic, stall fractions), so `go test -bench=. -benchmem` regenerates
// the full evaluation.
package repro

import (
	"io"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/netsim"
	"repro/internal/nn"
)

func benchExperiment(b *testing.B, name string) {
	e, ok := experiments.Find(name)
	if !ok {
		b.Fatalf("experiment %q not registered", name)
	}
	for i := 0; i < b.N; i++ {
		e.Run(io.Discard)
	}
}

// BenchmarkTable1 regenerates the communication-cost table.
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkTable3 regenerates the model-statistics table.
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }

// BenchmarkSection22AlexNet regenerates the worked bandwidth example.
func BenchmarkSection22AlexNet(b *testing.B) { benchExperiment(b, "alexnet") }

// BenchmarkFig5 regenerates the Caffe-engine scalability figure.
func BenchmarkFig5(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig6 regenerates the TensorFlow-engine scalability figure.
func BenchmarkFig6(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFig7 regenerates the compute/stall breakdown.
func BenchmarkFig7(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFig8 regenerates the limited-bandwidth figure.
func BenchmarkFig8(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFig9 regenerates the ResNet-152 scaling + convergence figure.
func BenchmarkFig9(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFig10 regenerates the per-node traffic comparison.
func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkFig11 regenerates the real-training convergence comparison
// (exact vs 1-bit) on the functional plane.
func BenchmarkFig11(b *testing.B) { benchExperiment(b, "fig11") }

// BenchmarkMultiGPU regenerates the multi-GPU local-aggregation table.
func BenchmarkMultiGPU(b *testing.B) { benchExperiment(b, "multigpu") }

// BenchmarkFuncScale regenerates the functional-plane overlap
// comparison (real training over bandwidth-modeled links).
func BenchmarkFuncScale(b *testing.B) { benchExperiment(b, "funcscale") }

// BenchmarkAblations regenerates the design-choice ablations.
func BenchmarkAblations(b *testing.B) { benchExperiment(b, "ablations") }

// Headline single-number benchmarks, reported as custom metrics so the
// paper's key claims are visible straight from `go test -bench`.

// BenchmarkHeadlineInceptionV3_32Nodes reports the paper's headline:
// Poseidon-TensorFlow at 31.5x on 32 nodes (vs TF's 20x).
func BenchmarkHeadlineInceptionV3_32Nodes(b *testing.B) {
	var pos, tf float64
	for i := 0; i < b.N; i++ {
		pos = engine.Run(engine.Config{Model: nn.InceptionV3(), Workers: 32,
			Strategy: engine.HybComm, Engine: "tensorflow"}).Speedup
		tf = engine.Run(engine.Config{Model: nn.InceptionV3(), Workers: 32,
			Strategy: engine.TFBaseline, Engine: "tensorflow"}).Speedup
	}
	b.ReportMetric(pos, "poseidon-x")
	b.ReportMetric(tf, "tf-x")
}

// BenchmarkHeadlineVGG22K_10GbE reports the limited-bandwidth headline:
// near-linear Poseidon vs ~4x for a PS at 16 nodes and 10GbE.
func BenchmarkHeadlineVGG22K_10GbE(b *testing.B) {
	var pos, ps float64
	for i := 0; i < b.N; i++ {
		pos = engine.Run(engine.Config{Model: nn.VGG19_22K(), Workers: 16,
			Strategy: engine.HybComm, Engine: "caffe", Bandwidth: netsim.Gbps(10)}).Speedup
		ps = engine.Run(engine.Config{Model: nn.VGG19_22K(), Workers: 16,
			Strategy: engine.SeqPS, Engine: "caffe", Bandwidth: netsim.Gbps(10)}).Speedup
	}
	b.ReportMetric(pos, "poseidon-x")
	b.ReportMetric(ps, "ps-x")
}

// BenchmarkHeadlineFuncOverlap reports the functional-plane headline:
// wall-clock ms/iter for serialized vs overlapped chunked pushes on the
// FC-heavy model over 20 MB/s links (real SGD, real bytes, modeled
// wire time). The overlapped number must come out lower — that is the
// paper's WFBP claim reproduced with actual training.
func BenchmarkHeadlineFuncOverlap(b *testing.B) {
	arms := experiments.FuncScaleArms()
	b.ReportAllocs()
	var serial, overlapped float64
	for i := 0; i < b.N; i++ {
		s, err := experiments.RunFuncScaleArm(arms[0], 20e6, 100*time.Microsecond)
		if err != nil {
			b.Fatal(err)
		}
		o, err := experiments.RunFuncScaleArm(arms[2], 20e6, 100*time.Microsecond)
		if err != nil {
			b.Fatal(err)
		}
		serial, overlapped = s.IterMillis, o.IterMillis
	}
	b.ReportMetric(serial, "serial-ms/iter")
	b.ReportMetric(overlapped, "overlap-ms/iter")
	b.ReportMetric(serial/overlapped, "overlap-x")
}

// BenchmarkEngineIteration measures the simulator itself: one full
// 32-node HybComm VGG19 simulation per op.
func BenchmarkEngineIteration(b *testing.B) {
	m := nn.VGG19()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		engine.Run(engine.Config{Model: m, Workers: 32, Strategy: engine.HybComm, Engine: "caffe"})
	}
}
