// Package poseidon is the public face of the Poseidon reproduction's
// functional plane: a Session builder that owns everything a
// distributed training run needs — model, data, transport (in-process
// channels or multi-process TCP), the Algorithm 1 plan policy,
// consistency, route overrides, measured-bandwidth re-planning, and
// runtime metrics — behind one fluent API, replacing the hand-assembly
// of train.Config, planner, transport, and metrics that every caller
// used to repeat:
//
//	sess, err := poseidon.NewSession().
//		InProcess(4).
//		Iterations(60).Batch(8).LearningRate(0.1).Seed(7).
//		Model(buildNet).
//		Data(trainSet, testSet).EvalEvery(15).
//		CollectMetrics().
//		Build()
//	if err != nil { ... }
//	res, err := sess.Run()
//
// It also re-exports the cost-model vocabulary (schemes, cluster
// shapes, the Planner, the Coordinator) so callers that only consult
// Algorithm 1 — examples, tools, notebooks — need no internal imports.
package poseidon

import (
	"math/rand"

	"repro/internal/cluster"
	"repro/internal/nn"
	"repro/internal/nn/autodiff"
	ipos "repro/internal/poseidon"
	"repro/internal/train"
)

// Cost-model vocabulary, re-exported from the internal coordinator
// package (one source of truth for Algorithm 1 in both planes).
type (
	// Scheme is a per-tensor communication method (SchemePS, SchemeSFB,
	// the modeled baselines).
	Scheme = ipos.Scheme
	// ClusterShape is the cluster configuration the cost model depends
	// on (P1 workers, P2 servers, per-worker batch K).
	ClusterShape = ipos.ClusterShape
	// TensorSpec describes one parameter tensor to plan.
	TensorSpec = ipos.TensorSpec
	// Decision is one planned tensor with its cost-model numbers.
	Decision = ipos.Decision
	// Planner evaluates Algorithm 1 per tensor under a policy; it also
	// carries the measured-bandwidth EWMA behind Replan.
	Planner = ipos.Planner
	// BandwidthObservation is one measured wire-rate sample for
	// Planner.Replan.
	BandwidthObservation = ipos.BandwidthObservation
	// Coordinator is the paper's "information book" for the performance
	// plane.
	Coordinator = ipos.Coordinator
	// LayerPlan is one layer's plan from the Coordinator.
	LayerPlan = ipos.LayerPlan
)

// Schemes, named as in the paper (the ring collectives extend its
// Table 1 with bandwidth-optimal all-reduce routes).
const (
	SchemePS       = ipos.PS
	SchemeSFB      = ipos.SFB
	SchemeAdam     = ipos.AdamSF
	SchemeOneBit   = ipos.OneBitPS
	SchemeRing     = ipos.Ring
	SchemeTreeRing = ipos.TreeRing
)

// SyncMode selects what Algorithm 1 may choose for a session: Hybrid
// (per-tensor HybComm), PSOnly, or the 1-bit CNTK baseline.
type SyncMode = train.SyncMode

// Session-level sync modes.
const (
	Hybrid = train.Hybrid
	PSOnly = train.PSOnly
	OneBit = train.OneBit
)

// ReplanSpec configures measured-bandwidth re-planning for a session.
type ReplanSpec = train.ReplanSpec

// Result aggregates a run's loss curve and final replica.
type Result = train.Result

// Point is one recorded training measurement.
type Point = train.Point

// View is a versioned cluster membership: a monotonically increasing
// epoch plus the sorted transport ranks serving in it.
type View = cluster.View

// MembershipEvent describes one committed membership transition as
// observed by a worker: successor view, restart iteration, and a deep
// copy of the adopted replica (the snapshot a continuation run resumes
// from).
type MembershipEvent = train.ViewEvent

// Planner tuning defaults (see the internal planner for semantics).
const (
	DefaultFrameOverheadSec = ipos.DefaultFrameOverheadSec
	DefaultReplanAlpha      = ipos.DefaultReplanAlpha
	DefaultReplanHysteresis = ipos.DefaultReplanHysteresis
)

// NewPlanner builds a cost-model planner directly (most callers want
// NewSession instead; this is the entry point for tools that only
// consult Algorithm 1).
func NewPlanner(policy ipos.Policy, c ClusterShape) *Planner { return ipos.NewPlanner(policy, c) }

// Planner policies for NewPlanner.
const (
	PolicyHybrid = ipos.PolicyHybrid
	PolicyPS     = ipos.PolicyPS
	PolicyOneBit = ipos.PolicyOneBit
)

// NewCoordinator builds the performance plane's coordinator for model m
// on cluster c.
func NewCoordinator(m *nn.Model, c ClusterShape) *Coordinator { return ipos.NewCoordinator(m, c) }

// PSColocatedParams returns Table 1's PS cost for a colocated
// worker/server node: 2·M·N·(P1+P2−2)/P2.
func PSColocatedParams(m, n int64, c ClusterShape) int64 { return ipos.PSColocatedParams(m, n, c) }

// SFBWorkerParams returns Table 1's SFB cost per worker:
// 2·K·(P1−1)·(M+N).
func SFBWorkerParams(m, n int64, c ClusterShape) int64 { return ipos.SFBWorkerParams(m, n, c) }

// BestScheme runs Algorithm 1 on one layer descriptor.
func BestScheme(l *nn.Layer, c ClusterShape) Scheme { return ipos.BestScheme(l, c) }

// Decisions previews the per-tensor routing a config would execute —
// the -autoplan dump — without touching any transport. Exposed at
// package level for symmetry with Session.Plan.
func Decisions(cfg train.Config) ([]Decision, error) { return train.Decisions(cfg) }

// ModelBuilder constructs the live network; it is called once per
// worker with an identically seeded RNG so all replicas start
// identical.
type ModelBuilder = func(rng *rand.Rand) *autodiff.Network
