package poseidon

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/data"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// TestSessionSnapshots: a session with SnapshotEvery captures at every
// barrier multiple plus the drain, Latest serves the final replica, and
// the Snapshots channel closes when the run ends.
func TestSessionSnapshots(t *testing.T) {
	sess, err := sessionBuilder().SnapshotEvery(4).Build()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if sess.Latest() != nil {
		t.Fatal("Latest non-nil before the run")
	}

	var got []*Snapshot
	collected := make(chan struct{})
	go func() {
		defer close(collected)
		for m := range sess.Snapshots() {
			got = append(got, m)
		}
	}()
	res, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	<-collected

	last := sess.Latest()
	if last == nil || last.Iter() != 12 || last.Epoch() != 0 {
		t.Fatalf("Latest = iter %d epoch %d, want 12, 0", last.Iter(), last.Epoch())
	}
	if len(got) == 0 || got[len(got)-1] != last {
		t.Fatalf("channel delivered %d snapshots; newest must be Latest", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Iter() <= got[i-1].Iter() {
			t.Fatalf("snapshots out of order: %d then %d", got[i-1].Iter(), got[i].Iter())
		}
	}

	// The drain capture is the run's final replica, byte for byte.
	final := res.Final.Params()
	caught := last.Params()
	if len(final) != len(caught) {
		t.Fatalf("%d captured tensors, result has %d", len(caught), len(final))
	}
	for i, p := range final {
		for j, v := range p.Data {
			if caught[i][j] != v {
				t.Fatalf("tensor %d value %d: captured %v, result %v", i, j, caught[i][j], v)
			}
		}
	}

	// And it predicts: the served architecture matches the trained one.
	x := tensor.NewMatrix(2, last.Features())
	probs, err := last.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	if probs.Rows != 2 || probs.Cols != last.Classes() {
		t.Fatalf("prediction shape %dx%d, want 2x%d", probs.Rows, probs.Cols, last.Classes())
	}
}

// TestFinalCaptureSurvivesConflation is the regression for the
// serving-fleet handoff: a subscriber that starts draining only after
// the run ended — the worst possible lag, with every capture conflated
// through a full channel and the store already closed — must still
// observe the run's *final* capture. Conflation may drop anything
// except the newest.
func TestFinalCaptureSurvivesConflation(t *testing.T) {
	// Capture at every iteration: 12 captures through a 4-deep
	// subscription with no consumer forces drop-oldest conflation.
	sess, err := sessionBuilder().SnapshotEvery(1).Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}

	var got []*Snapshot
	for m := range sess.Snapshots() {
		got = append(got, m)
	}
	if len(got) == 0 {
		t.Fatal("conflation dropped every capture")
	}
	last := got[len(got)-1]
	if want := sess.Latest(); last != want {
		t.Fatalf("late drain ends at iter %d, final capture is iter %d", last.Iter(), want.Iter())
	}
	if last.Iter() != 12 {
		t.Fatalf("final drained capture at iter %d, want 12", last.Iter())
	}
	for i := 1; i < len(got); i++ {
		if got[i].Iter() <= got[i-1].Iter() {
			t.Fatalf("conflated drain out of order: %d then %d", got[i-1].Iter(), got[i].Iter())
		}
	}
}

// TestOnSnapshotHook: the push-style capture hook sees every barrier
// capture, in order, with no conflation — and ends on exactly the
// model Latest serves.
func TestOnSnapshotHook(t *testing.T) {
	var mu sync.Mutex
	var seen []*Snapshot
	sess, err := sessionBuilder().
		SnapshotEvery(1).
		OnSnapshot(func(m *Snapshot) {
			mu.Lock()
			seen = append(seen, m)
			mu.Unlock()
		}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.Run(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 12 {
		t.Fatalf("hook saw %d captures, want 12 (no conflation on the push path)", len(seen))
	}
	for i, m := range seen {
		if m.Iter() != i+1 {
			t.Fatalf("capture %d at iter %d, want %d", i, m.Iter(), i+1)
		}
	}
	if seen[len(seen)-1] != sess.Latest() {
		t.Fatal("hook's final capture is not Latest")
	}

	if _, err := sessionBuilder().OnSnapshot(func(*Snapshot) {}).Build(); err == nil {
		t.Fatal("OnSnapshot without SnapshotEvery must fail Build")
	}
}

// TestSessionCloseSafety is the regression for the nil-session and
// double-Close crashes: every failure-path idiom a caller writes around
// Build must be a safe no-op.
func TestSessionCloseSafety(t *testing.T) {
	// defer sess.Close() after a failed Build — sess is nil.
	sess, err := NewSession().Build()
	if err == nil {
		t.Fatal("empty builder must fail Build")
	}
	if cerr := sess.Close(); cerr != nil {
		t.Fatalf("Close on nil session: %v", cerr)
	}
	if sess.Latest() != nil || sess.Metrics() != nil {
		t.Fatal("nil-session accessors must return zero values")
	}
	if v := sess.View(); v.Size() != 0 {
		t.Fatalf("nil-session View = %+v", v)
	}
	if _, ok := sess.MetricsSnapshot(); ok {
		t.Fatal("nil session claims metrics")
	}
	select {
	case _, open := <-sess.Snapshots():
		if open {
			t.Fatal("nil-session Snapshots delivered a value")
		}
	case <-time.After(time.Second):
		t.Fatal("nil-session Snapshots must be closed, not blocking")
	}

	// Double Close on a real session.
	real, err := sessionBuilder().Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := real.Run(); err != nil {
		t.Fatal(err)
	}
	if err := real.Close(); err != nil {
		t.Fatal(err)
	}
	if err := real.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	// A snapshot-less session's Snapshots channel is closed, not nil.
	select {
	case _, open := <-real.Snapshots():
		if open {
			t.Fatal("snapshot-less Snapshots delivered a value")
		}
	case <-time.After(time.Second):
		t.Fatal("snapshot-less Snapshots must be closed, not blocking")
	}
}

// TestRunContextCancel: a canceled context stops the run cleanly at the
// round barrier and surfaces ctx.Err, not a transport error.
func TestRunContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	sess, err := sessionBuilder().
		Iterations(100000).
		OnProgress(func(p Point) {
			if p.Iter >= 3 {
				once.Do(cancel)
			}
		}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	done := make(chan error, 1)
	go func() {
		_, err := sess.RunContext(ctx)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled run returned %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run did not stop after cancel")
	}

	// A pre-canceled context never starts the run.
	pre, preCancel := context.WithCancel(context.Background())
	preCancel()
	if _, err := sess.RunContext(pre); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled run returned %v", err)
	}
}

// snapshotBytes freezes a snapshot's full encoding for byte-stability
// comparisons.
func snapshotBytes(t *testing.T, m *Snapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestHeldSnapshotStableAcrossElasticLeave: a snapshot handed out
// before a membership change must stay byte-stable and keep predicting
// identically while the cluster re-forms, re-shards, and trains on —
// the serving plane's immutability contract under churn.
func TestHeldSnapshotStableAcrossElasticLeave(t *testing.T) {
	const n = 3
	cl := transport.NewElasticChanCluster(n)
	full := data.Synthetic(101, 640, 4, 1, 4, 4, 0.3)
	trainSet, _ := full.Split(512)

	mkSession := func(rank int) *Builder {
		return NewSession().
			Mesh(cl.Endpoint(rank)).
			Iterations(10).Batch(2).LearningRate(0.05).Seed(14).
			Model(mlp()).
			Data(trainSet, nil).
			Elastic(true)
	}
	sessions := make([]*Session, n)
	for r := 0; r < n; r++ {
		b := mkSession(r)
		if r == 0 {
			b.SnapshotEvery(2)
		}
		if r == 2 {
			b.LeaveAt(5)
		}
		sess, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		sessions[r] = sess
	}

	// Hold the first capture as soon as it appears, mid-run.
	type held struct {
		m     *Snapshot
		bytes []byte
		probs *tensor.Matrix
	}
	x := tensor.NewMatrix(3, 16)
	rng := rand.New(rand.NewSource(7))
	for i := range x.Data {
		x.Data[i] = float32(rng.NormFloat64())
	}
	heldCh := make(chan held, 1)
	go func() {
		m := <-sessions[0].Snapshots()
		if m == nil {
			heldCh <- held{}
			return
		}
		var h held
		h.m = m.Retain()
		var buf bytes.Buffer
		m.WriteTo(&buf)
		h.bytes = buf.Bytes()
		h.probs, _ = m.Predict(x)
		heldCh <- h
	}()

	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[r] = sessions[r].Run()
		}()
	}
	wg.Wait()
	cl.Close()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("session %d: %v", r, err)
		}
	}

	h := <-heldCh
	if h.m == nil {
		t.Fatal("no snapshot captured before the view change")
	}
	if h.m.Epoch() != 0 {
		t.Fatalf("first capture epoch %d, want 0", h.m.Epoch())
	}
	// The cluster re-formed behind it: the latest capture is epoch 1.
	last := sessions[0].Latest()
	if last.Epoch() != 1 || last.Iter() != 10 {
		t.Fatalf("latest capture iter %d epoch %d, want 10, 1", last.Iter(), last.Epoch())
	}
	if bytes.Equal(h.bytes, snapshotBytes(t, last)) {
		t.Fatal("training apparently stalled: final capture identical to the first")
	}
	// The held snapshot did not move: same bytes, same predictions.
	if !bytes.Equal(h.bytes, snapshotBytes(t, h.m)) {
		t.Fatal("held snapshot's encoding changed across the view change")
	}
	probs, err := h.m.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range probs.Data {
		if h.probs.Data[i] != v {
			t.Fatalf("held snapshot prediction %d drifted: %v → %v", i, h.probs.Data[i], v)
		}
	}
	h.m.Release()
}

// TestHeldSnapshotStableAcrossReplan: same contract across a
// measured-bandwidth replan — routes flip mid-run (PR 5 protocol), the
// held snapshot must not notice.
func TestHeldSnapshotStableAcrossReplan(t *testing.T) {
	sess, err := sessionBuilder().
		Bandwidth(100e3).
		Replan(ReplanSpec{Every: 6, Alpha: 1}).
		SnapshotEvery(3).
		CollectMetrics().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	x := tensor.NewMatrix(2, 16)
	rng := rand.New(rand.NewSource(8))
	for i := range x.Data {
		x.Data[i] = float32(rng.NormFloat64())
	}
	type held struct {
		m     *Snapshot
		bytes []byte
		probs *tensor.Matrix
	}
	heldCh := make(chan held, 1)
	go func() {
		m := <-sess.Snapshots() // iter 3, before the iter-6 replan
		var h held
		h.m = m
		var buf bytes.Buffer
		m.WriteTo(&buf)
		h.bytes = buf.Bytes()
		h.probs, _ = m.Predict(x)
		heldCh <- h
	}()
	if _, err := sess.Run(); err != nil {
		t.Fatal(err)
	}
	snap, _ := sess.MetricsSnapshot()
	if len(snap.ReplanEvents) < 1 {
		t.Fatal("run never replanned; the churn this test needs did not happen")
	}

	h := <-heldCh
	if h.m.Iter() != 3 {
		t.Fatalf("held capture iter %d, want 3 (before the replan)", h.m.Iter())
	}
	if !bytes.Equal(h.bytes, snapshotBytes(t, h.m)) {
		t.Fatal("held snapshot's encoding changed across the replan")
	}
	probs, err := h.m.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range probs.Data {
		if h.probs.Data[i] != v {
			t.Fatalf("held snapshot prediction %d drifted: %v → %v", i, h.probs.Data[i], v)
		}
	}
}
