package poseidon

import (
	"io"

	"repro/internal/snapshot"
)

// Snapshot is one immutable captured replica, versioned by the
// iteration barrier it was taken at and the membership epoch it was
// taken under. Sessions built with SnapshotEvery produce them at round
// barriers; Latest and Snapshots hand them out, and any goroutine may
// Predict from one while training continues — the parameter bytes are
// written once at capture and never mutated.
//
// Snapshots persist in the repo's one parameter-snapshot format ("PSN2";
// legacy "PSN1" files without the epoch field still decode): all fields
// little-endian uint32 —
//
//	magic "PSN2", iter, epoch, tensor count,
//	then per tensor: element count + elements as float32 bit patterns.
//
// Snapshot.WriteFile / Snapshot.WriteTo write it; ReadSnapshot /
// ReadSnapshotFrom read it. The same files feed the worker's
// -snapshot-out / -load-params flags and poseidon-serve's
// -final-snapshot.
type Snapshot = snapshot.Model

// NewSnapshot wraps already-captured parameter tensors (row-major
// float32, Network.Params order) as a snapshot. The snapshot takes
// ownership of params; the caller must not mutate them afterwards.
// Predict requires Bind with the model builder the tensors came from.
func NewSnapshot(iter, epoch int, params [][]float32) *Snapshot {
	return snapshot.New(iter, epoch, params)
}

// ReadSnapshot decodes the parameter snapshot stored at path. The
// result is unbound — call Bind with the originating ModelBuilder and
// seed before predicting from it; Iter and Params work immediately.
func ReadSnapshot(path string) (*Snapshot, error) { return snapshot.ReadFile(path) }

// ReadSnapshotFrom decodes a parameter snapshot from r.
func ReadSnapshotFrom(r io.Reader) (*Snapshot, error) { return snapshot.Read(r) }
