package poseidon

import (
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/data"
	"repro/internal/nn/autodiff"
	"repro/internal/transport"
)

func mlp() ModelBuilder {
	return func(rng *rand.Rand) *autodiff.Network {
		return autodiff.MLPNet(16, []int{32}, 4, rng)
	}
}

func sessionBuilder() *Builder {
	full := data.Synthetic(100, 640, 4, 1, 4, 4, 0.3)
	trainSet, testSet := full.Split(512)
	return NewSession().
		InProcess(4).
		Iterations(12).Batch(2).LearningRate(0.05).Seed(13).
		Model(mlp()).
		Data(trainSet, testSet).EvalEvery(6)
}

// The façade end to end: build, preview the Algorithm 1 plan, run, and
// read the measured per-route traffic — the whole quickstart without
// touching an internal package.
func TestSessionRunsAndMeters(t *testing.T) {
	sess, err := sessionBuilder().CollectMetrics().Build()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	decisions, err := sess.Plan()
	if err != nil {
		t.Fatal(err)
	}
	sfb := 0
	for _, d := range decisions {
		if d.Scheme == SchemeSFB {
			sfb++
		}
	}
	if sfb < 1 {
		t.Fatalf("plan chose no SFB route for the 32×16 FC weight at K=2: %+v", decisions)
	}

	res, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curve) != 12 {
		t.Fatalf("curve has %d points, want 12", len(res.Curve))
	}
	if res.Curve[11].TrainLoss >= res.Curve[0].TrainLoss {
		t.Fatalf("loss did not decrease: %.4f → %.4f", res.Curve[0].TrainLoss, res.Curve[11].TrainLoss)
	}
	snap, ok := sess.MetricsSnapshot()
	if !ok {
		t.Fatal("CollectMetrics session returned no snapshot")
	}
	if snap.Totals.BytesSent <= 0 || snap.Totals.SFBParams < 1 {
		t.Fatalf("metrics missing traffic: %+v", snap.Totals)
	}
}

// RunAll returns one result per worker (reference runs need every
// shard's curve), and rejects TCP sessions.
func TestSessionRunAll(t *testing.T) {
	sess, err := sessionBuilder().Build()
	if err != nil {
		t.Fatal(err)
	}
	results, err := sess.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("%d results, want 4", len(results))
	}
	for w, res := range results {
		if res == nil || len(res.Curve) != 12 {
			t.Fatalf("worker %d result malformed: %+v", w, res)
		}
	}
}

// Build validates the plan before any transport exists: an override
// naming a parameter the model does not have fails fast, naming the
// index — the poseidon-worker startup guarantee.
func TestSessionBuildRejectsBadOverrides(t *testing.T) {
	_, err := sessionBuilder().RouteOverride(99, SchemePS).Build()
	if err == nil {
		t.Fatal("out-of-range override index must fail Build")
	}
	if !strings.Contains(err.Error(), "99") {
		t.Fatalf("error does not name the bad override: %v", err)
	}

	// An infeasible scheme (SFB on a bias vector) fails too.
	if _, err := sessionBuilder().RouteOverride(1, SchemeSFB).Build(); err == nil {
		t.Fatal("SFB override on a bias vector must fail Build")
	}

	// Missing pieces fail with a named builder method.
	if _, err := NewSession().Iterations(1).Batch(1).Build(); err == nil ||
		!strings.Contains(err.Error(), "Model") {
		t.Fatalf("missing model not named: %v", err)
	}
}

// Replan wiring flows through the builder: a session with a wrong
// bandwidth claim corrects itself and logs the flip.
func TestSessionReplans(t *testing.T) {
	sess, err := sessionBuilder().
		Bandwidth(100e3).
		Replan(ReplanSpec{Every: 6, Alpha: 1}).
		CollectMetrics().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(); err != nil {
		t.Fatal(err)
	}
	snap, _ := sess.MetricsSnapshot()
	if len(snap.ReplanEvents) < 1 {
		t.Fatalf("no replan event despite a 100 KB/s claim on an in-process mesh (estimate %g)", snap.BWEstimateBPS)
	}
	if snap.BWEstimateBPS <= 100e3 {
		t.Fatalf("bw_estimate_bps %g did not correct upward", snap.BWEstimateBPS)
	}
}

// ParseRouteOverrides accepts the worker's -route syntax and rejects
// malformed pairs.
func TestParseRouteOverrides(t *testing.T) {
	m, err := ParseRouteOverrides("2=ps, 5=sfb,7=1bit")
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 3 || m[2] != SchemePS || m[5] != SchemeSFB || m[7] != SchemeOneBit {
		t.Fatalf("parsed %v", m)
	}
	if m, err := ParseRouteOverrides(""); err != nil || m != nil {
		t.Fatalf("empty flag: %v %v", m, err)
	}
	for _, bad := range []string{"nonsense", "2=warp", "-1=ps", "x=ps"} {
		if _, err := ParseRouteOverrides(bad); err == nil {
			t.Fatalf("%q accepted", bad)
		}
	}
}

// The elastic façade end to end: three sessions over an elastic
// channel cluster, one departing voluntarily mid-run. The survivors'
// View() and metrics snapshot must both report the successor epoch, and
// the membership-change hook must have streamed the transition.
func TestSessionElasticLeave(t *testing.T) {
	const n = 3
	cl := transport.NewElasticChanCluster(n)
	full := data.Synthetic(101, 640, 4, 1, 4, 4, 0.3)
	trainSet, _ := full.Split(512)

	mkSession := func(rank int) *Builder {
		return NewSession().
			Mesh(cl.Endpoint(rank)).
			Iterations(10).Batch(2).LearningRate(0.05).Seed(14).
			Model(mlp()).
			Data(trainSet, nil).
			Elastic(true).
			CollectMetrics()
	}

	var events []MembershipEvent
	var eventsMu sync.Mutex
	sessions := make([]*Session, n)
	for r := 0; r < n; r++ {
		b := mkSession(r)
		if r == 0 {
			b.OnMembershipChange(func(ev MembershipEvent) {
				eventsMu.Lock()
				events = append(events, ev)
				eventsMu.Unlock()
			})
		}
		if r == 2 {
			b.LeaveAt(5)
		}
		sess, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		sessions[r] = sess
	}
	if got := sessions[0].View(); got.Epoch != 0 || got.Size() != n {
		t.Fatalf("initial view = %+v, want epoch 0 size %d", got, n)
	}

	results := make([]*Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[r], errs[r] = sessions[r].Run()
		}()
	}
	wg.Wait()
	cl.Close()

	for r := 0; r < n; r++ {
		if errs[r] != nil {
			t.Fatalf("session %d: %v", r, errs[r])
		}
	}
	if !results[2].Left {
		t.Fatal("leaver's result not marked Left")
	}
	for _, r := range []int{0, 1} {
		v := sessions[r].View()
		if v.Epoch != 1 || v.Size() != 2 {
			t.Fatalf("survivor %d View() = %+v, want epoch 1 size 2", r, v)
		}
		snap, ok := sessions[r].MetricsSnapshot()
		if !ok {
			t.Fatalf("survivor %d has no metrics", r)
		}
		if snap.MembershipEpoch != 1 || len(snap.ViewChanges) != 1 {
			t.Fatalf("survivor %d snapshot epoch %d, %d view changes; want 1, 1",
				r, snap.MembershipEpoch, len(snap.ViewChanges))
		}
	}
	eventsMu.Lock()
	defer eventsMu.Unlock()
	if len(events) != 1 || events[0].View.Epoch != 1 || len(events[0].Params) == 0 {
		t.Fatalf("membership hook events = %+v, want one epoch-1 event with params", events)
	}
}
