package poseidon

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/data"
	"repro/internal/metrics"
	"repro/internal/snapshot"
	"repro/internal/train"
	"repro/internal/transport"
)

// Builder assembles a Session. Construct with NewSession, chain the
// configuration calls, finish with Build — which validates everything
// (model, data, plan feasibility, route overrides) *before* touching
// any transport, so a typo'd override fails in milliseconds instead of
// after a 30-second mesh formation.
type Builder struct {
	cfg       train.Config
	tcp       *tcpSpec
	shm       *shmSpec
	mesh      transport.Mesh
	collect   bool
	snapEvery int
	onSnap    func(*Snapshot)
	onView    func(MembershipEvent)
	err       error
}

type tcpSpec struct {
	id    int
	peers []string
	opts  transport.TCPOptions
}

type shmSpec struct {
	id      int
	workers int
	opts    transport.SHMOptions
}

// NewSession starts a session builder with the trainer's defaults:
// in-process transport, hybrid policy, BSP consistency.
func NewSession() *Builder {
	return &Builder{cfg: train.Config{Workers: 1, Mode: train.Hybrid}}
}

func (b *Builder) fail(err error) *Builder {
	if b.err == nil {
		b.err = err
	}
	return b
}

// InProcess runs the whole cluster in this process over a channel
// mesh, one goroutine per worker.
func (b *Builder) InProcess(workers int) *Builder {
	if workers < 1 {
		return b.fail(fmt.Errorf("poseidon: need at least 1 worker, got %d", workers))
	}
	b.cfg.Workers = workers
	b.tcp, b.shm, b.mesh = nil, nil, nil
	return b
}

// TCP makes this session one node of a multi-process cluster: Build
// dials the full mesh (after validation) and Run drives this worker
// only. peers lists every worker's host:port in id order.
func (b *Builder) TCP(id int, peers []string, opts transport.TCPOptions) *Builder {
	if len(peers) < 1 || id < 0 || id >= len(peers) {
		return b.fail(fmt.Errorf("poseidon: TCP id %d out of range for %d peers", id, len(peers)))
	}
	b.tcp = &tcpSpec{id: id, peers: peers, opts: opts}
	b.cfg.Workers = len(peers)
	b.shm, b.mesh = nil, nil
	return b
}

// SHM makes this session one node of a multi-process cluster of
// co-located workers connected over shared-memory rings (Linux only;
// see transport.SHMMesh). opts.Dir is the rendezvous directory every
// node of the run must share.
func (b *Builder) SHM(id, workers int, opts transport.SHMOptions) *Builder {
	if workers < 1 || id < 0 || id >= workers {
		return b.fail(fmt.Errorf("poseidon: SHM id %d out of range for %d workers", id, workers))
	}
	b.shm = &shmSpec{id: id, workers: workers, opts: opts}
	b.cfg.Workers = workers
	b.tcp, b.mesh = nil, nil
	return b
}

// Mesh injects a custom transport endpoint (bandwidth-modeled wrappers,
// instrumented meshes); the session drives one worker over it and the
// cluster size comes from the mesh.
func (b *Builder) Mesh(mesh transport.Mesh) *Builder {
	if mesh == nil {
		return b.fail(fmt.Errorf("poseidon: nil mesh"))
	}
	b.mesh = mesh
	b.cfg.Workers = mesh.N()
	b.tcp, b.shm = nil, nil
	return b
}

// Iterations sets the training length.
func (b *Builder) Iterations(n int) *Builder { b.cfg.Iters = n; return b }

// Batch sets the per-worker batch size (Table 1's K).
func (b *Builder) Batch(n int) *Builder { b.cfg.Batch = n; return b }

// LearningRate sets the SGD step size.
func (b *Builder) LearningRate(lr float64) *Builder { b.cfg.LR = float32(lr); return b }

// Seed sets the shared model/data seed; every worker must use the same
// one (replicas start identical).
func (b *Builder) Seed(s int64) *Builder { b.cfg.Seed = s; return b }

// Mode constrains what Algorithm 1 may choose: Hybrid (HybComm per
// tensor), PSOnly, or the OneBit baseline.
func (b *Builder) Mode(m SyncMode) *Builder { b.cfg.Mode = m; return b }

// Staleness bounds how many iterations a fast worker may run ahead
// (stale synchronous parallel; 0 = BSP).
func (b *Builder) Staleness(s int) *Builder { b.cfg.Staleness = s; return b }

// Overlap streams pushes through the comm runtime's send pool —
// wait-free backpropagation with real bytes.
func (b *Builder) Overlap(on bool) *Builder { b.cfg.Overlap = on; return b }

// ChunkElems caps the float32 count per KV chunk on the PS route
// (0 = whole tensors).
func (b *Builder) ChunkElems(n int) *Builder { b.cfg.ChunkElems = n; return b }

// PoolWorkers sizes the send pool when Overlap is on (0 = default).
func (b *Builder) PoolWorkers(n int) *Builder { b.cfg.PoolWorkers = n; return b }

// Model sets the network builder, called once per worker with an
// identically seeded RNG.
func (b *Builder) Model(build ModelBuilder) *Builder { b.cfg.BuildNet = build; return b }

// Data sets the training set (sharded across workers) and optional
// test set (evaluated by worker 0 when EvalEvery is set).
func (b *Builder) Data(trainSet, testSet *data.Dataset) *Builder {
	b.cfg.TrainSet, b.cfg.TestSet = trainSet, testSet
	return b
}

// EvalEvery makes worker 0 evaluate on the test set every n iterations.
func (b *Builder) EvalEvery(n int) *Builder { b.cfg.EvalEvery = n; return b }

// RouteOverride pins one parameter index to a scheme, trumping the
// policy. Build rejects overrides naming unknown parameters or schemes
// the tensor cannot ride.
func (b *Builder) RouteOverride(index int, s Scheme) *Builder {
	if b.cfg.RouteOverrides == nil {
		b.cfg.RouteOverrides = make(map[int]Scheme)
	}
	b.cfg.RouteOverrides[index] = s
	return b
}

// RouteOverrides merges a full override map (the worker's parsed
// -route flag).
func (b *Builder) RouteOverrides(m map[int]Scheme) *Builder {
	for idx, s := range m {
		b.RouteOverride(idx, s)
	}
	return b
}

// Bandwidth seeds the planner's link-speed estimate (bytes/second),
// making Algorithm 1 bandwidth-aware. Replanning corrects it from
// measurement.
func (b *Builder) Bandwidth(bps float64) *Builder { b.cfg.Bandwidth = bps; return b }

// Replan enables measured-bandwidth re-planning at the given epoch
// spec; see ReplanSpec.
func (b *Builder) Replan(spec ReplanSpec) *Builder { b.cfg.Replan = spec; return b }

// Elastic enables membership epochs: a peer failure or voluntary
// departure no longer aborts the run — the members drain to a
// membership barrier, agree on a successor view, re-shard state, and
// continue. Mutually exclusive with Replan (both protocols own the
// round barrier).
func (b *Builder) Elastic(on bool) *Builder { b.cfg.Elastic = on; return b }

// Members names the ranks actually serving at epoch 0 of an elastic
// session — the transport is sized for cluster capacity, the view for
// current membership. Unset, every transport rank is a member.
func (b *Builder) Members(ranks []int) *Builder {
	if len(ranks) == 0 {
		return b.fail(fmt.Errorf("poseidon: empty member list"))
	}
	members := append([]int(nil), ranks...)
	sort.Ints(members)
	for i := 1; i < len(members); i++ {
		if members[i] == members[i-1] {
			return b.fail(fmt.Errorf("poseidon: duplicate member rank %d", members[i]))
		}
	}
	b.cfg.View = cluster.View{Members: members}
	return b
}

// Joining marks this node a late joiner: it is not in the initial view
// and adopts everything — view, routes, parameters, data shard — from
// its first membership barrier.
func (b *Builder) Joining() *Builder { b.cfg.Joining = true; return b }

// LeaveAt schedules a graceful departure: at that iteration this worker
// announces it is leaving, participates in the membership barrier, and
// returns with Result.Left set once the successor view excludes it.
func (b *Builder) LeaveAt(iter int) *Builder { b.cfg.LeaveAt = iter; return b }

// ResumeFrom continues a run from a snapshot: training starts at iter
// with the given parameters (row-major float32, Params() order) instead
// of iteration 0 with the seeded model.
func (b *Builder) ResumeFrom(iter int, params [][]float32) *Builder {
	b.cfg.StartIter = iter
	b.cfg.InitialParams = params
	return b
}

// OnMembershipChange streams every committed membership transition —
// successor view, restart iteration, and a deep copy of the adopted
// replica — as the run produces it (called from the worker's compute
// goroutine; keep it fast).
func (b *Builder) OnMembershipChange(fn func(MembershipEvent)) *Builder {
	b.onView = fn
	return b
}

// MembershipTimeout bounds each membership barrier (0 = default).
func (b *Builder) MembershipTimeout(d time.Duration) *Builder {
	b.cfg.ViewTimeout = d
	return b
}

// SnapshotEvery captures the synchronized replica every n iterations
// at the round barrier (plus once more when the run drains) into the
// session's snapshot store, feeding Session.Latest and
// Session.Snapshots. Each capture is an immutable Snapshot versioned by
// iteration and membership epoch; 0 disables capture.
func (b *Builder) SnapshotEvery(n int) *Builder {
	if n < 0 {
		return b.fail(fmt.Errorf("poseidon: negative snapshot interval %d", n))
	}
	b.snapEvery = n
	return b
}

// OnSnapshot streams every barrier capture as the run publishes it —
// the push-style sibling of the Snapshots channel, with no conflation:
// the serving plane hooks this to trigger fan-out the instant a
// capture lands rather than on its next poll. The callback runs on the
// worker's compute goroutine at the round barrier; keep it fast (hand
// the snapshot to another goroutine for anything slow). Requires
// SnapshotEvery.
func (b *Builder) OnSnapshot(fn func(*Snapshot)) *Builder {
	b.onSnap = fn
	return b
}

// CollectMetrics attaches a runtime metrics registry: per-parameter
// wire traffic, sync stalls, KV rounds, replan events, membership
// epoch. TCP sessions additionally meter frame-level wire totals.
func (b *Builder) CollectMetrics() *Builder { b.collect = true; return b }

// OnProgress streams every recorded point as the run produces it
// (called from the worker's compute goroutine; keep it fast).
func (b *Builder) OnProgress(fn func(Point)) *Builder { b.cfg.Progress = fn; return b }

// Build validates the configuration — including full plan feasibility,
// so route overrides naming unknown parameters or impossible schemes
// fail here, before any socket is dialed — then establishes the
// transport and returns the runnable Session.
func (b *Builder) Build() (*Session, error) {
	if b.err != nil {
		return nil, b.err
	}
	cfg := b.cfg
	if cfg.BuildNet == nil {
		return nil, fmt.Errorf("poseidon: no model (Builder.Model)")
	}
	if cfg.Iters <= 0 {
		return nil, fmt.Errorf("poseidon: no iterations (Builder.Iterations)")
	}
	if cfg.Batch <= 0 {
		return nil, fmt.Errorf("poseidon: no batch size (Builder.Batch)")
	}
	if cfg.TrainSet == nil {
		return nil, fmt.Errorf("poseidon: no training data (Builder.Data)")
	}
	if cfg.Replan.Every > 0 && cfg.Replan.Every <= cfg.Staleness {
		return nil, fmt.Errorf("poseidon: replan interval %d must exceed staleness %d", cfg.Replan.Every, cfg.Staleness)
	}
	if cfg.Elastic && cfg.Replan.Every > 0 {
		return nil, fmt.Errorf("poseidon: membership epochs and measured replanning both own the round barrier; enable one")
	}
	if !cfg.Elastic && (cfg.Joining || cfg.LeaveAt > 0 || cfg.View.Size() > 0) {
		return nil, fmt.Errorf("poseidon: Members/Joining/LeaveAt need Builder.Elastic")
	}
	// Plan feasibility up front: Decisions builds a throwaway replica
	// and validates exactly like the run will.
	if _, err := train.Decisions(cfg); err != nil {
		return nil, err
	}

	if b.onSnap != nil && b.snapEvery <= 0 {
		return nil, fmt.Errorf("poseidon: OnSnapshot needs SnapshotEvery")
	}

	s := &Session{cfg: cfg}
	if b.snapEvery > 0 {
		// The store captures off the training barrier; Latest/Snapshots
		// read from it without touching the run.
		st := snapshot.NewStore(cfg.BuildNet, cfg.Seed)
		s.store = st
		s.cfg.SnapshotEvery = b.snapEvery
		onSnap := b.onSnap
		s.cfg.OnSnapshot = func(ev train.SnapshotEvent) {
			m := st.Capture(ev.Iter, ev.Epoch, ev.Params)
			if onSnap != nil {
				onSnap(m)
			}
		}
	}
	if cfg.View.Size() > 0 {
		s.view = cfg.View.Clone()
	} else {
		s.view = cluster.Initial(cfg.Workers)
	}
	if cfg.Elastic {
		// The session tracks the committed view so View() stays truthful
		// across barriers; the user's hook runs after the update.
		userFn := b.onView
		s.cfg.OnViewChange = func(ev MembershipEvent) {
			s.viewMu.Lock()
			s.view = ev.View.Clone()
			s.viewMu.Unlock()
			if userFn != nil {
				userFn(ev)
			}
		}
	}
	if b.collect {
		s.metrics = metrics.NewComm()
		s.cfg.Metrics = s.metrics
	}
	switch {
	case b.mesh != nil:
		s.mesh = b.mesh
		s.cfg.SnapshotRank = b.mesh.Self()
	case b.tcp != nil:
		s.cfg.SnapshotRank = b.tcp.id
		opts := b.tcp.opts
		if s.metrics != nil && opts.OnCopy == nil {
			opts.OnCopy = s.metrics.Wire().CountCopied
		}
		if cfg.Elastic {
			opts.Elastic = true
			if !cfg.Joining && cfg.View.Size() > 0 {
				opts.Members = append([]int(nil), cfg.View.Members...)
			}
		}
		var tcp *transport.TCPMesh
		var err error
		if cfg.Joining {
			if cfg.View.Size() == 0 {
				return nil, fmt.Errorf("poseidon: a TCP joiner needs the live membership (Builder.Members)")
			}
			tcp, err = transport.JoinTCPMesh(b.tcp.id, b.tcp.peers, cfg.View.Members, opts)
		} else {
			tcp, err = transport.NewTCPMeshOpts(b.tcp.id, b.tcp.peers, opts)
		}
		if err != nil {
			return nil, fmt.Errorf("poseidon: mesh: %w", err)
		}
		s.mesh = tcp
		s.ownsMesh = true
		if s.metrics != nil {
			s.mesh = transport.NewMeteredMesh(tcp, s.metrics.Wire())
		}
	case b.shm != nil:
		s.cfg.SnapshotRank = b.shm.id
		opts := b.shm.opts
		if s.metrics != nil && opts.OnCopy == nil {
			opts.OnCopy = s.metrics.Wire().CountCopied
		}
		if cfg.Elastic {
			if cfg.Joining || cfg.View.Size() > 0 {
				// Ring files rendezvous at setup; shm clusters can only
				// shrink.
				return nil, fmt.Errorf("poseidon: the shm transport cannot form a partial mesh or admit late joiners")
			}
			opts.Elastic = true
		}
		shm, err := transport.NewSHMMesh(b.shm.id, b.shm.workers, opts)
		if err != nil {
			return nil, fmt.Errorf("poseidon: mesh: %w", err)
		}
		s.mesh = shm
		s.ownsMesh = true
		if s.metrics != nil {
			s.mesh = transport.NewMeteredMesh(shm, s.metrics.Wire())
		}
	}
	return s, nil
}

// Session is a configured, transport-connected training run. In-process
// sessions own the whole cluster; TCP sessions drive one worker of a
// multi-process one.
type Session struct {
	cfg      train.Config
	mesh     transport.Mesh // nil for in-process sessions
	ownsMesh bool
	metrics  *metrics.Comm
	store    *snapshot.Store // nil unless SnapshotEvery was set

	viewMu sync.Mutex
	view   cluster.View

	closeOnce sync.Once
	closeErr  error
}

// View returns the current membership view: the initial one before the
// run starts, then each committed successor as membership barriers
// resolve. Fixed-size sessions report the full mesh at epoch 0 forever.
func (s *Session) View() View {
	if s == nil {
		return View{}
	}
	s.viewMu.Lock()
	defer s.viewMu.Unlock()
	return s.view.Clone()
}

// Plan previews the per-tensor Algorithm 1 decisions this session will
// execute (the -autoplan dump), with the cost numbers behind each
// choice.
func (s *Session) Plan() ([]Decision, error) { return train.Decisions(s.cfg) }

// Workers returns the cluster size.
func (s *Session) Workers() int { return s.cfg.Workers }

// Run executes the session and returns this node's result (worker 0's
// for in-process sessions). On error in a TCP session, skip Close so
// surviving peers see the link die rather than a clean goodbye they
// could mistake for normal shutdown.
func (s *Session) Run() (*Result, error) { return s.RunContext(context.Background()) }

// RunContext executes the session like Run but stops early — cleanly,
// through the round barrier's abort path — when ctx is canceled, so a
// server can keep training in a goroutine and still shut it down. A
// canceled run returns ctx.Err(). When the run ends for any reason the
// snapshot store stops publishing; Latest keeps serving the final
// capture.
func (s *Session) RunContext(ctx context.Context) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cfg := s.cfg
	cfg.Stop = ctx.Done()
	res, err := s.runOne(cfg)
	if err != nil && ctx.Err() != nil {
		err = ctx.Err()
	}
	return res, err
}

func (s *Session) runOne(cfg train.Config) (*Result, error) {
	if s.store != nil {
		defer s.store.Close()
	}
	if s.mesh == nil {
		results, err := train.RunOverAll(cfg, s.inProcessMeshes())
		if err != nil {
			return nil, err
		}
		return results[0], nil
	}
	return train.RunWorker(cfg, s.mesh)
}

// inProcessMeshes builds the channel cluster an in-process session
// trains over — the elastic variant when membership epochs are on, so
// Leave and view changes work without real sockets.
func (s *Session) inProcessMeshes() []transport.Mesh {
	endpoints := make([]transport.Mesh, s.cfg.Workers)
	if s.cfg.Elastic {
		cl := transport.NewElasticChanCluster(s.cfg.Workers)
		for i := range endpoints {
			endpoints[i] = cl.Endpoint(i)
		}
		return endpoints
	}
	for i, m := range transport.NewChanCluster(s.cfg.Workers) {
		endpoints[i] = m
	}
	return endpoints
}

// RunAll executes an in-process session and returns every worker's
// result (each worker records loss on its own shard) — what parity
// tests and reference runs need. TCP sessions hold only their own
// worker and reject it.
func (s *Session) RunAll() ([]*Result, error) {
	if s.mesh != nil {
		return nil, fmt.Errorf("poseidon: RunAll needs an in-process session")
	}
	if s.store != nil {
		defer s.store.Close()
	}
	return train.RunOverAll(s.cfg, s.inProcessMeshes())
}

// Latest returns the most recent snapshot the run has captured, or nil
// before the first barrier capture (or when SnapshotEvery was never
// set). Safe to call concurrently with the run and after it ends; no
// retain discipline is needed to predict from the result.
func (s *Session) Latest() *Snapshot {
	if s == nil || s.store == nil {
		return nil
	}
	return s.store.Latest()
}

// closedSnapshots serves Snapshots() on sessions that never capture:
// ranging over it ends immediately instead of blocking forever.
var closedSnapshots = func() chan *Snapshot {
	ch := make(chan *Snapshot)
	close(ch)
	return ch
}()

// Snapshots returns the capture subscription: every barrier capture in
// order, conflating to the newest when the consumer lags, closed when
// the run ends. Without SnapshotEvery the channel is already closed.
func (s *Session) Snapshots() <-chan *Snapshot {
	if s == nil || s.store == nil {
		return closedSnapshots
	}
	return s.store.Snapshots()
}

// Metrics returns the session's live metrics registry (nil unless
// CollectMetrics was set) — SnapshotIter for progress lines, Snapshot
// for the final report.
func (s *Session) Metrics() *metrics.Comm {
	if s == nil {
		return nil
	}
	return s.metrics
}

// MetricsSnapshot freezes the runtime counters; ok is false when the
// session collects none.
func (s *Session) MetricsSnapshot() (metrics.CommSnapshot, bool) {
	if s == nil || s.metrics == nil {
		return metrics.CommSnapshot{}, false
	}
	return s.metrics.Snapshot(), true
}

// Close releases the session's transport (the graceful TCP goodbye)
// and ends the snapshot subscription. In-process sessions hold no
// transport. Idempotent, and a safe no-op on a nil session — so
//
//	sess, err := b.Build()
//	defer sess.Close()
//
// is correct even when Build failed.
func (s *Session) Close() error {
	if s == nil {
		return nil
	}
	s.closeOnce.Do(func() {
		if s.store != nil {
			s.store.Close()
		}
		if s.mesh != nil && s.ownsMesh {
			s.closeErr = s.mesh.Close()
		}
	})
	return s.closeErr
}

// ParseRouteOverrides parses the worker's -route flag syntax:
// comma-separated index=scheme pairs with schemes named as in the
// paper (ps, sfb, 1bit) plus the collective routes (ring, treering).
// Feasibility against a concrete model is Build's job; this only
// rejects syntax.
func ParseRouteOverrides(s string) (map[int]Scheme, error) {
	if s == "" {
		return nil, nil
	}
	schemes := map[string]Scheme{
		"ps": SchemePS, "sfb": SchemeSFB, "1bit": SchemeOneBit,
		"ring": SchemeRing, "treering": SchemeTreeRing,
	}
	out := make(map[int]Scheme)
	for _, pair := range strings.Split(s, ",") {
		idxStr, schemeStr, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			return nil, fmt.Errorf("route override %q is not index=scheme", pair)
		}
		idx, err := strconv.Atoi(idxStr)
		if err != nil || idx < 0 {
			return nil, fmt.Errorf("route override: bad parameter index %q", idxStr)
		}
		scheme, ok := schemes[schemeStr]
		if !ok {
			return nil, fmt.Errorf("route override: unknown scheme %q (want ps|sfb|1bit|ring|treering)", schemeStr)
		}
		out[idx] = scheme
	}
	return out, nil
}
