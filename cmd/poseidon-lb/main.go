// Command poseidon-lb is the snapshot fleet's front door: a reverse
// proxy that maps tenants (X-Tenant) to serving replicas over a
// consistent-hash ring, so a tenant's requests — and the per-tenant
// token-bucket state its replica holds — land on the same replica
// across scale-out, scale-in, and replica death.
//
// Replicas are health-checked continuously via their /healthz (which a
// replica fails while stale or draining, taking itself out of
// rotation). A replica that dies mid-request is failed over within
// that request: the balancer marks it down and retries the tenant's
// ring sequence, and per-tenant version floors keep the model versions
// a tenant observes monotonic even when the failover target has not
// pulled the newest snapshot yet.
//
// Endpoints: /healthz (balancer + fleet health), /metrics (per-replica
// serve blocks plus the fleet-wide aggregate, with p50/p95/p99 derived
// from merged histograms), everything else proxied.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/fleet"
)

func main() { os.Exit(run()) }

func run() int {
	listen := flag.String("listen", "127.0.0.1:0", "HTTP listen address of the front door")
	replicas := flag.String("replicas", "", "comma-separated host:port of every serving replica (the consistent-hash ring members)")
	checkEvery := flag.Duration("check-every", 100*time.Millisecond, "replica health-probe period")
	floorWait := flag.Duration("floor-wait", 3*time.Second, "bound on retrying a failover target that trails a tenant's last-served snapshot version")
	flag.Parse()

	if *replicas == "" {
		fmt.Fprintln(os.Stderr, "lb: -replicas is required")
		return 1
	}
	var members []string
	for _, r := range strings.Split(*replicas, ",") {
		if r = strings.TrimSpace(r); r != "" {
			members = append(members, r)
		}
	}
	lb, err := fleet.NewLB(members, fleet.LBOptions{
		CheckEvery: *checkEvery,
		FloorWait:  *floorWait,
		Logf: func(format string, args ...any) {
			fmt.Printf("LB "+format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "lb: %v\n", err)
		return 1
	}
	defer lb.Close()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lb: listen: %v\n", err)
		return 1
	}
	server := &http.Server{Handler: lb.Handler()}
	fmt.Printf("LB listening on %s fronting %d replicas\n", ln.Addr(), len(members))
	go server.Serve(ln)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	<-sig
	fmt.Println("LB stopped")
	return 0
}
