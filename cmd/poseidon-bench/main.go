// Command poseidon-bench regenerates the tables and figures from the
// Poseidon paper's evaluation (USENIX ATC 2017, Section 5).
//
// Usage:
//
//	poseidon-bench -list
//	poseidon-bench -exp fig5
//	poseidon-bench -exp all
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list available experiments")
	exp := flag.String("exp", "all", "experiment to run (name or 'all')")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-12s %s\n", e.Name, e.Title)
		}
		return
	}

	if *exp == "all" {
		for _, e := range experiments.All() {
			runOne(e)
		}
		return
	}
	e, ok := experiments.Find(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; available: %v\n", *exp, experiments.Names())
		os.Exit(1)
	}
	runOne(e)
}

func runOne(e experiments.Experiment) {
	fmt.Printf("=== %s: %s ===\n", e.Name, e.Title)
	start := time.Now()
	e.Run(os.Stdout)
	fmt.Printf("(%s completed in %.1fs)\n\n", e.Name, time.Since(start).Seconds())
}
