// Command poseidon-bench regenerates the tables and figures from the
// Poseidon paper's evaluation (USENIX ATC 2017, Section 5).
//
// Usage:
//
//	poseidon-bench -list
//	poseidon-bench -exp fig5
//	poseidon-bench -exp table1,table3,fig10
//	poseidon-bench -exp all
//	poseidon-bench -exp table1,table3 -json BENCH_ci.json
//
// With -json, a machine-readable report (per-experiment wall time plus
// run metadata) is written to the given path — the BENCH_ci.json
// artifact CI uploads on every run to seed the perf trajectory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/experiments"
)

// report is the BENCH_*.json schema: enough metadata to compare runs
// across commits, and one record per experiment executed.
type report struct {
	GoVersion    string   `json:"go_version"`
	GOOS         string   `json:"goos"`
	GOARCH       string   `json:"goarch"`
	NumCPU       int      `json:"num_cpu"`
	TotalSeconds float64  `json:"total_seconds"`
	Experiments  []record `json:"experiments"`
}

type record struct {
	Name    string  `json:"name"`
	Title   string  `json:"title"`
	Seconds float64 `json:"seconds"`
}

func main() {
	list := flag.Bool("list", false, "list available experiments")
	exp := flag.String("exp", "all", "experiments to run: a name, a comma-separated list, or 'all'")
	jsonOut := flag.String("json", "", "write a machine-readable timing report (BENCH_ci.json schema) to this path")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-12s %s\n", e.Name, e.Title)
		}
		return
	}

	var selected []experiments.Experiment
	if *exp == "all" {
		selected = experiments.All()
	} else {
		for _, name := range strings.Split(*exp, ",") {
			name = strings.TrimSpace(name)
			e, ok := experiments.Find(name)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; available: %v\n", name, experiments.Names())
				os.Exit(1)
			}
			selected = append(selected, e)
		}
	}

	rep := report{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
	for _, e := range selected {
		secs := runOne(e)
		rep.TotalSeconds += secs
		rep.Experiments = append(rep.Experiments, record{Name: e.Name, Title: e.Title, Seconds: secs})
	}

	if *jsonOut != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "encode report: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonOut, append(b, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d experiments, %.1fs total)\n", *jsonOut, len(rep.Experiments), rep.TotalSeconds)
	}
}

func runOne(e experiments.Experiment) float64 {
	fmt.Printf("=== %s: %s ===\n", e.Name, e.Title)
	start := time.Now()
	e.Run(os.Stdout)
	secs := time.Since(start).Seconds()
	fmt.Printf("(%s completed in %.1fs)\n\n", e.Name, secs)
	return secs
}
