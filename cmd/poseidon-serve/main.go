// Command poseidon-serve is the serving plane in one process: it
// trains like poseidon-worker — in-process with -local N, or as one
// rank of a real TCP/shm mesh — while exposing an HTTP inference API
// over the immutable snapshots the session captures at round barriers
// (-snapshot-every).
//
// Endpoints: POST /v1/predict (micro-batched inference with per-tenant
// rate limits and bounded in-flight admission), GET /v1/model (the
// served snapshot's version), GET /metrics (the full METRICS JSON,
// serving block included), GET /healthz.
//
// SIGTERM or SIGINT starts a graceful drain: new requests get 503 +
// Retry-After, admitted ones — including those parked in a micro-batch
// window — run to completion, training is cancelled at its round
// barrier, and with -final-snapshot the last capture is persisted in
// the poseidon.Snapshot format (readable by -load-params) before exit.
//
// The training flag surface is shared with poseidon-worker and
// poseidon-cluster through internal/cliflags.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cliflags"
	"repro/internal/serve"
)

func main() { os.Exit(run()) }

func run() int {
	nf := cliflags.RegisterNode(flag.CommandLine)
	listen := flag.String("listen", "127.0.0.1:0", "HTTP listen address of the inference API")
	snapshotEvery := flag.Int("snapshot-every", 10, "capture a serving snapshot every this many training iterations (plus once when the run drains)")
	maxBatch := flag.Int("max-batch", 16, "micro-batch row cap: a window executes as soon as this many rows gather")
	maxDelay := flag.Duration("max-delay", 2*time.Millisecond, "micro-batch window: a lone request waits at most this long for company")
	tenantRPS := flag.Float64("tenant-rps", 50, "per-tenant sustained requests/sec (X-Tenant header; negative = unlimited)")
	tenantBurst := flag.Int("tenant-burst", 0, "per-tenant burst size (0 = 2×rps)")
	maxInflight := flag.Int("max-inflight", 256, "bound on concurrently admitted predict requests; beyond it requests shed with 503")
	finalSnapshot := flag.String("final-snapshot", "", "persist the last captured snapshot to this file on shutdown (poseidon.Snapshot format)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "bound on the graceful drain of in-flight requests at shutdown")
	flag.Parse()

	// The gateway's /metrics endpoint serves the session registry, so
	// serving and training counters land in one dump.
	nf.MetricsDump = true
	b, err := nf.Builder()
	if err != nil {
		fmt.Fprintf(os.Stderr, "serve: %v\n", err)
		return 1
	}
	b.SnapshotEvery(*snapshotEvery)
	sess, err := b.Build()
	if err != nil {
		fmt.Fprintf(os.Stderr, "serve: %v\n", err)
		return 1
	}
	defer sess.Close()

	gw := serve.New(sess, serve.Options{
		MaxBatch:    *maxBatch,
		MaxDelay:    *maxDelay,
		MaxInFlight: *maxInflight,
		TenantRPS:   *tenantRPS,
		TenantBurst: *tenantBurst,
		Metrics:     sess.Metrics(),
	})
	server := &http.Server{Handler: gw.Handler()}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "serve: listen: %v\n", err)
		return 1
	}
	fmt.Printf("SERVE listening on %s\n", ln.Addr())
	go server.Serve(ln)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	trainDone := make(chan error, 1)
	go func() {
		_, err := sess.RunContext(ctx)
		trainDone <- err
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)

	trainFinished := false
	select {
	case err := <-trainDone:
		trainFinished = true
		if err != nil {
			// The model is still servable from the last capture; keep the
			// gateway up so operators can drain traffic deliberately.
			fmt.Fprintf(os.Stderr, "serve: training failed: %v (serving last snapshot)\n", err)
		} else {
			fmt.Println("SERVE training done")
		}
		<-sig
	case <-sig:
	}

	// Drain ordering matters: stop admitting first, then wait for the
	// admitted handlers (the only batcher clients) to finish, and only
	// then stop the batcher — so every accepted request completes.
	fmt.Println("SERVE draining")
	gw.Drain()
	shCtx, shCancel := context.WithTimeout(context.Background(), *drainTimeout)
	if err := server.Shutdown(shCtx); err != nil {
		fmt.Fprintf(os.Stderr, "serve: shutdown: %v\n", err)
	}
	shCancel()
	gw.Close()

	cancel()
	if !trainFinished {
		if err := <-trainDone; err != nil && !errors.Is(err, context.Canceled) {
			fmt.Fprintf(os.Stderr, "serve: training: %v\n", err)
		}
	}

	if *finalSnapshot != "" {
		if m := sess.Latest(); m != nil {
			if err := m.WriteFile(*finalSnapshot); err != nil {
				fmt.Fprintf(os.Stderr, "serve: final snapshot: %v\n", err)
				return 1
			}
			fmt.Printf("SERVE final snapshot %s iter %d epoch %d\n", *finalSnapshot, m.Iter(), m.Epoch())
		} else {
			fmt.Fprintln(os.Stderr, "serve: no snapshot captured; nothing to persist")
		}
	}
	fmt.Println("SERVE stopped")
	return 0
}
