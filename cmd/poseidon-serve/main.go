// Command poseidon-serve is the serving plane in one process. It runs
// in one of two modes:
//
// Training gateway (default): it trains like poseidon-worker —
// in-process with -local N, or as one rank of a real TCP/shm mesh —
// while exposing an HTTP inference API over the immutable snapshots
// the session captures at round barriers (-snapshot-every). The
// gateway additionally exposes the fleet pull endpoint
// (GET /v1/snapshot?after=iter), so serving replicas can follow the
// run without joining the mesh.
//
// Replica (-replica -pull URL): no training, no mesh. The process runs
// a fleet.Puller that polls the training gateway's pull endpoint every
// -poll, adopts strictly newer snapshot versions only (what it serves
// never moves backwards), and serves the same inference API. With
// -max-lag N a replica trailing the source by more than N iterations
// sheds with 503 — and fails /healthz, dropping out of a poseidon-lb
// rotation — until it catches up.
//
// Endpoints: POST /v1/predict (micro-batched inference with per-tenant
// rate limits and bounded in-flight admission), GET /v1/model (the
// served snapshot's version), GET /v1/snapshot (versioned PSN2 pull),
// GET /metrics (the full METRICS JSON, serving block included),
// GET /healthz.
//
// SIGTERM or SIGINT starts a graceful drain: new requests get 503 +
// Retry-After, admitted ones — including those parked in a micro-batch
// window — run to completion, training is cancelled at its round
// barrier, and with -final-snapshot the last capture is persisted in
// the poseidon.Snapshot format (readable by -load-params) before exit.
//
// The training flag surface is shared with poseidon-worker and
// poseidon-cluster through internal/cliflags; the serving surface is
// cliflags.Serve.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/cliflags"
	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/serve"
)

func main() { os.Exit(run()) }

func run() int {
	nf := cliflags.RegisterNode(flag.CommandLine)
	sf := cliflags.RegisterServe(flag.CommandLine)
	flag.Parse()

	if sf.Replica {
		return runReplica(nf, sf)
	}
	return runGateway(nf, sf)
}

// gatewayOptions is the knob mapping both modes share.
func gatewayOptions(sf *cliflags.Serve, reg *metrics.Comm) serve.Options {
	return serve.Options{
		MaxBatch:    sf.MaxBatch,
		MaxDelay:    sf.MaxDelay,
		MaxInFlight: sf.MaxInflight,
		TenantRPS:   sf.TenantRPS,
		TenantBurst: sf.TenantBurst,
		Metrics:     reg,
	}
}

func runGateway(nf *cliflags.Node, sf *cliflags.Serve) int {
	// The gateway's /metrics endpoint serves the session registry, so
	// serving and training counters land in one dump.
	nf.MetricsDump = true
	b, err := nf.Builder()
	if err != nil {
		fmt.Fprintf(os.Stderr, "serve: %v\n", err)
		return 1
	}
	b.SnapshotEvery(sf.SnapshotEvery)
	sess, err := b.Build()
	if err != nil {
		fmt.Fprintf(os.Stderr, "serve: %v\n", err)
		return 1
	}
	defer sess.Close()

	gw := serve.New(sess, gatewayOptions(sf, sess.Metrics()))
	server := &http.Server{Handler: gw.Handler()}
	ln, err := net.Listen("tcp", sf.Listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "serve: listen: %v\n", err)
		return 1
	}
	fmt.Printf("SERVE listening on %s\n", ln.Addr())
	go server.Serve(ln)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	trainDone := make(chan error, 1)
	go func() {
		_, err := sess.RunContext(ctx)
		trainDone <- err
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)

	trainFinished := false
	select {
	case err := <-trainDone:
		trainFinished = true
		if err != nil {
			// The model is still servable from the last capture; keep the
			// gateway up so operators can drain traffic deliberately.
			fmt.Fprintf(os.Stderr, "serve: training failed: %v (serving last snapshot)\n", err)
		} else {
			fmt.Println("SERVE training done")
		}
		<-sig
	case <-sig:
	}

	// Drain ordering matters: stop admitting first, then wait for the
	// admitted handlers (the only batcher clients) to finish, and only
	// then stop the batcher — so every accepted request completes.
	fmt.Println("SERVE draining")
	gw.Drain()
	shCtx, shCancel := context.WithTimeout(context.Background(), sf.DrainTimeout)
	if err := server.Shutdown(shCtx); err != nil {
		fmt.Fprintf(os.Stderr, "serve: shutdown: %v\n", err)
	}
	shCancel()
	gw.Close()

	cancel()
	if !trainFinished {
		if err := <-trainDone; err != nil && !errors.Is(err, context.Canceled) {
			fmt.Fprintf(os.Stderr, "serve: training: %v\n", err)
		}
	}

	if sf.FinalSnapshot != "" {
		if m := sess.Latest(); m != nil {
			if err := m.WriteFile(sf.FinalSnapshot); err != nil {
				fmt.Fprintf(os.Stderr, "serve: final snapshot: %v\n", err)
				return 1
			}
			fmt.Printf("SERVE final snapshot %s iter %d epoch %d\n", sf.FinalSnapshot, m.Iter(), m.Epoch())
		} else {
			fmt.Fprintln(os.Stderr, "serve: no snapshot captured; nothing to persist")
		}
	}
	fmt.Println("SERVE stopped")
	return 0
}

func runReplica(nf *cliflags.Node, sf *cliflags.Serve) int {
	if sf.Pull == "" {
		fmt.Fprintln(os.Stderr, "serve: -replica requires -pull (the training gateway's URL)")
		return 1
	}
	reg := metrics.NewComm()
	puller := fleet.NewPuller(sf.Pull, fleet.PullerOptions{
		Interval: sf.Poll,
		MaxLag:   sf.MaxLag,
		Bind:     cliflags.ReferenceModel(),
		Seed:     nf.Seed,
		Stats:    reg.Serve(),
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	pullDone := make(chan struct{})
	go func() { defer close(pullDone); puller.Run(ctx) }()

	ln, err := net.Listen("tcp", sf.Listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "serve: listen: %v\n", err)
		return 1
	}
	opts := gatewayOptions(sf, reg)
	opts.ReplicaID = sf.ReplicaID
	if opts.ReplicaID == "" {
		// The natural fleet identity is the address the balancer keys its
		// ring on — only known once bound.
		opts.ReplicaID = ln.Addr().String()
	}
	opts.Stale = puller.Status
	gw := serve.New(puller, opts)
	server := &http.Server{Handler: gw.Handler()}
	fmt.Printf("SERVE listening on %s\n", ln.Addr())
	fmt.Printf("SERVE replica %s pulling from %s every %s (max-lag %d)\n",
		opts.ReplicaID, sf.Pull, sf.Poll, sf.MaxLag)
	go server.Serve(ln)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	<-sig

	fmt.Println("SERVE draining")
	gw.Drain()
	shCtx, shCancel := context.WithTimeout(context.Background(), sf.DrainTimeout)
	if err := server.Shutdown(shCtx); err != nil {
		fmt.Fprintf(os.Stderr, "serve: shutdown: %v\n", err)
	}
	shCancel()
	gw.Close()
	cancel()
	<-pullDone

	if sf.FinalSnapshot != "" {
		if m := puller.Latest(); m != nil {
			if err := m.WriteFile(sf.FinalSnapshot); err != nil {
				fmt.Fprintf(os.Stderr, "serve: final snapshot: %v\n", err)
				return 1
			}
			fmt.Printf("SERVE final snapshot %s iter %d epoch %d\n", sf.FinalSnapshot, m.Iter(), m.Epoch())
		}
	}
	fmt.Println("SERVE stopped")
	return 0
}
