// Command poseidon-sim runs a single performance-plane simulation of
// distributed training and prints its steady-state metrics — handy for
// exploring configurations beyond the paper's figures.
//
// Usage:
//
//	poseidon-sim -model vgg19 -nodes 16 -strategy poseidon -bw 10
//	poseidon-sim -model vgg19-22k -nodes 32 -strategy wfbp -engine caffe
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/engine"
	"repro/internal/netsim"
	"repro/internal/nn"
)

func main() {
	model := flag.String("model", "vgg19", "model: cifar10-quick|googlenet|inception-v3|vgg19|vgg19-22k|resnet-152|alexnet")
	nodes := flag.Int("nodes", 8, "number of worker nodes")
	gpus := flag.Int("gpus", 1, "GPUs per node")
	strategy := flag.String("strategy", "poseidon", "strategy: ps|wfbp|poseidon|tf|adam|1bit")
	eng := flag.String("engine", "caffe", "engine calibration: caffe|tensorflow")
	bw := flag.Float64("bw", 40, "per-node bandwidth in Gb/s")
	batch := flag.Int("batch", 0, "per-GPU batch size (0 = Table 3 default)")
	flag.Parse()

	m := findModel(*model)
	if m == nil {
		fmt.Fprintf(os.Stderr, "unknown model %q\n", *model)
		os.Exit(1)
	}
	strat, ok := map[string]engine.Strategy{
		"ps": engine.SeqPS, "wfbp": engine.WFBP, "poseidon": engine.HybComm,
		"tf": engine.TFBaseline, "adam": engine.Adam, "1bit": engine.OneBit,
	}[strings.ToLower(*strategy)]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown strategy %q\n", *strategy)
		os.Exit(1)
	}

	r := engine.Run(engine.Config{
		Model: m, Workers: *nodes, GPUsPerNode: *gpus, Strategy: strat,
		Engine: *eng, Bandwidth: netsim.Gbps(*bw), Batch: *batch,
	})
	fmt.Printf("model        %s (%d params)\n", m.Name, m.TotalParams())
	fmt.Printf("deployment   %d nodes x %d GPUs, %g GbE, %s engine, strategy %v\n",
		*nodes, *gpus, *bw, *eng, strat)
	fmt.Printf("schemes      %s\n", r.SchemeSummary)
	fmt.Printf("iter time    %.4f s\n", r.IterTime)
	fmt.Printf("throughput   %.1f images/s\n", r.Throughput)
	fmt.Printf("speedup      %.2fx vs single GPU\n", r.Speedup)
	fmt.Printf("GPU busy     %.0f%%  (stall %.0f%%)\n", r.GPUBusyFrac*100, r.GPUStallFrac*100)
	var maxTx float64
	for _, g := range r.NodeTxGbit {
		if g > maxTx {
			maxTx = g
		}
	}
	fmt.Printf("traffic      max %.2f Gbit egress per node per iteration\n", maxTx)
}

func findModel(name string) *nn.Model {
	for _, m := range append(nn.Zoo(), nn.AlexNet()) {
		if m.Name == name {
			return m
		}
	}
	return nil
}
