// Command poseidon-cluster launches a real multi-process training
// cluster on the local machine: it reserves N loopback TCP ports, forks
// N poseidon-worker processes wired into one full mesh, streams their
// output with a per-worker prefix, and fails loudly — killing the
// survivors — if any worker exits non-zero or the deadline passes.
// With -transport shm the workers rendezvous over shared-memory rings
// in a fresh temp directory instead of TCP (Linux only).
//
//	poseidon-cluster -n 3 -iters 50 -mode hybrid
//
// The worker binary is located automatically: an explicit -worker path,
// a poseidon-worker sitting next to this binary, $PATH, and finally a
// one-off `go build` of ./cmd/poseidon-worker into a temp file (for
// `go run ./cmd/poseidon-cluster` from the repo root). The launcher
// always execs a real worker binary — never a `go run` wrapper, whose
// grandchild would survive the kill-on-failure path as an orphan.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

func main() { os.Exit(run()) }

func run() int {
	n := flag.Int("n", 3, "number of worker processes")
	workerBin := flag.String("worker", "", "path to the poseidon-worker binary (default: auto-detect)")
	transportKind := flag.String("transport", "tcp", "mesh transport forwarded to every worker: tcp, or shm (shared-memory rings, Linux only)")
	shmDir := flag.String("shm-dir", "", "rendezvous directory for -transport shm (default: a fresh temp dir, removed on exit)")
	basePort := flag.Int("base-port", 0, "first TCP port; workers use base-port..base-port+n-1 (0 = pick free ports)")
	timeout := flag.Duration("timeout", 5*time.Minute, "kill the cluster if it runs longer than this")
	iters := flag.Int("iters", 50, "training iterations")
	batch := flag.Int("batch", 8, "per-worker batch size")
	lr := flag.Float64("lr", 0.1, "learning rate")
	mode := flag.String("mode", "hybrid", "sync mode: ps|hybrid|1bit")
	seed := flag.Int64("seed", 42, "shared model/data seed")
	overlap := flag.Bool("overlap", false, "stream pushes through the comm send pool (WFBP)")
	chunk := flag.Int("chunk", 0, "max float32s per KV chunk (0 = whole tensors)")
	printEvery := flag.Int("print-every", 10, "per-worker progress line interval")
	dumpLosses := flag.Bool("dump-losses", false, "have each worker dump machine-readable LOSS lines")
	maxFrame := flag.Int("max-frame", 0, "cap on a single frame body in bytes (0 = transport default)")
	autoplan := flag.Bool("autoplan", false, "have each worker route via the cost model (Algorithm 1) and print PLAN lines")
	metricsDump := flag.Bool("metrics-dump", false, "have each worker dump a machine-readable METRICS snapshot")
	routeOverrides := flag.String("route", "", "per-parameter scheme overrides forwarded to every worker (index=ps|sfb|1bit, comma-separated)")
	bw := flag.Float64("bw", 0, "initial link-bandwidth estimate in bytes/sec forwarded to every worker (0 = byte-count-only cost model)")
	replanEvery := flag.Int("replan-every", 0, "have the cluster re-measure the wire rate and re-run Algorithm 1 every this many iterations (0 = off)")
	replanAlpha := flag.Float64("replan-alpha", 0, "EWMA weight of the newest bandwidth observation (0 = default)")
	frameOverhead := flag.Float64("frame-overhead", 0, "modeled per-frame overhead in seconds for the bandwidth-aware cost model (0 = default)")
	flag.Parse()

	if *n < 1 {
		fmt.Fprintln(os.Stderr, "cluster: need -n >= 1")
		return 1
	}
	addrs, err := pickAddrs(*n, *basePort)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cluster: reserve ports: %v\n", err)
		return 1
	}
	peerList := strings.Join(addrs, ",")
	if *transportKind == "shm" && *shmDir == "" {
		// The shm rendezvous directory must be fresh per run; a temp dir
		// owned by the launcher guarantees that and cleans up the ring
		// files when the cluster exits.
		dir, err := os.MkdirTemp("", "poseidon-shm")
		if err != nil {
			fmt.Fprintf(os.Stderr, "cluster: shm dir: %v\n", err)
			return 1
		}
		defer os.RemoveAll(dir)
		*shmDir = dir
	}
	name, cleanup, err := resolveWorker(*workerBin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cluster: locate worker: %v\n", err)
		return 1
	}
	defer cleanup()
	fmt.Printf("cluster: launching %d workers (%s) over %s\n", *n, name, peerList)

	type exit struct {
		id  int
		err error
	}
	exits := make(chan exit, *n)
	procs := make([]*exec.Cmd, *n)
	for i := 0; i < *n; i++ {
		args := []string{
			"-id", fmt.Sprint(i), "-peers", peerList,
			"-iters", fmt.Sprint(*iters), "-batch", fmt.Sprint(*batch),
			"-lr", fmt.Sprint(*lr), "-mode", *mode, "-seed", fmt.Sprint(*seed),
			"-chunk", fmt.Sprint(*chunk), "-print-every", fmt.Sprint(*printEvery),
			"-max-frame", fmt.Sprint(*maxFrame),
			"-transport", *transportKind,
		}
		if *shmDir != "" {
			args = append(args, "-shm-dir", *shmDir)
		}
		if *overlap {
			args = append(args, "-overlap")
		}
		if *dumpLosses {
			args = append(args, "-dump-losses")
		}
		if *autoplan {
			args = append(args, "-autoplan")
		}
		if *metricsDump {
			args = append(args, "-metrics-dump")
		}
		if *routeOverrides != "" {
			args = append(args, "-route", *routeOverrides)
		}
		if *bw != 0 {
			args = append(args, "-bw", fmt.Sprint(*bw))
		}
		if *replanEvery != 0 {
			args = append(args, "-replan-every", fmt.Sprint(*replanEvery))
		}
		if *replanAlpha != 0 {
			args = append(args, "-replan-alpha", fmt.Sprint(*replanAlpha))
		}
		if *frameOverhead != 0 {
			args = append(args, "-frame-overhead", fmt.Sprint(*frameOverhead))
		}
		cmd := exec.Command(name, args...)
		stdout, err := cmd.StdoutPipe()
		if err == nil {
			var stderr io.ReadCloser
			if stderr, err = cmd.StderrPipe(); err == nil {
				if err = cmd.Start(); err == nil {
					procs[i] = cmd
					var rd sync.WaitGroup
					rd.Add(2)
					go prefixLines(&rd, os.Stdout, stdout, i)
					go prefixLines(&rd, os.Stderr, stderr, i)
					go func(i int, cmd *exec.Cmd, rd *sync.WaitGroup) {
						rd.Wait() // pipes must drain before Wait closes them
						exits <- exit{i, cmd.Wait()}
					}(i, cmd, &rd)
					continue
				}
			}
		}
		fmt.Fprintf(os.Stderr, "cluster: start worker %d: %v\n", i, err)
		killAll(procs)
		return 1
	}

	code := 0
	failed := false
	deadline := time.After(*timeout)
	for done := 0; done < *n; {
		select {
		case e := <-exits:
			done++
			if e.err != nil {
				fmt.Fprintf(os.Stderr, "cluster: worker %d failed: %v\n", e.id, e.err)
				code = 1
				if !failed {
					failed = true
					killAll(procs) // first failure: take the survivors down too
				}
			}
		case <-deadline:
			fmt.Fprintf(os.Stderr, "cluster: deadline %v passed, killing %d workers\n", *timeout, *n-done)
			code = 1
			killAll(procs)
			deadline = nil // fire once; keep draining exits
		}
	}
	if code == 0 {
		fmt.Printf("cluster: all %d workers completed\n", *n)
	}
	return code
}

// pickAddrs reserves n loopback addresses, either a contiguous explicit
// range or free ephemeral ports (bound and released; the rebind window
// is tiny and loopback-local).
func pickAddrs(n, basePort int) ([]string, error) {
	addrs := make([]string, 0, n)
	if basePort > 0 {
		for i := 0; i < n; i++ {
			addrs = append(addrs, fmt.Sprintf("127.0.0.1:%d", basePort+i))
		}
		return addrs, nil
	}
	var lis []net.Listener
	defer func() {
		for _, l := range lis {
			l.Close()
		}
	}()
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lis = append(lis, l)
		addrs = append(addrs, l.Addr().String())
	}
	return addrs, nil
}

// resolveWorker finds (or builds) the poseidon-worker binary. The
// result is always a real binary the launcher can SIGKILL directly —
// a `go run` wrapper would leave the actual worker alive as an orphan
// when the kill-on-failure path fires. cleanup removes any temp build.
func resolveWorker(explicit string) (name string, cleanup func(), err error) {
	none := func() {}
	if explicit != "" {
		return explicit, none, nil
	}
	if exe, err := os.Executable(); err == nil {
		sibling := filepath.Join(filepath.Dir(exe), "poseidon-worker")
		if st, err := os.Stat(sibling); err == nil && !st.IsDir() {
			return sibling, none, nil
		}
	}
	if p, err := exec.LookPath("poseidon-worker"); err == nil {
		return p, none, nil
	}
	// Source checkout: build a throwaway worker binary.
	dir, err := os.MkdirTemp("", "poseidon-cluster")
	if err != nil {
		return "", none, err
	}
	bin := filepath.Join(dir, "poseidon-worker")
	build := exec.Command("go", "build", "-o", bin, "./cmd/poseidon-worker")
	if out, err := build.CombinedOutput(); err != nil {
		os.RemoveAll(dir)
		return "", none, fmt.Errorf("go build ./cmd/poseidon-worker: %v\n%s", err, out)
	}
	return bin, func() { os.RemoveAll(dir) }, nil
}

func prefixLines(wg *sync.WaitGroup, dst io.Writer, src io.Reader, id int) {
	defer wg.Done()
	sc := bufio.NewScanner(src)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		fmt.Fprintf(dst, "[w%d] %s\n", id, sc.Text())
	}
}

func killAll(procs []*exec.Cmd) {
	for _, cmd := range procs {
		if cmd != nil && cmd.Process != nil {
			cmd.Process.Kill()
		}
	}
}
