// Command poseidon-cluster launches a real multi-process training
// cluster on the local machine: it reserves N loopback TCP ports, forks
// N poseidon-worker processes wired into one full mesh, streams their
// output with a per-worker prefix, and fails loudly — killing the
// survivors — if any worker exits non-zero or the deadline passes.
// With -transport shm the workers rendezvous over shared-memory rings
// in a fresh temp directory instead of TCP (Linux only).
//
//	poseidon-cluster -n 3 -iters 50 -mode hybrid
//
// The worker binary is located automatically: an explicit -worker path,
// a poseidon-worker sitting next to this binary, $PATH, and finally a
// one-off `go build` of ./cmd/poseidon-worker into a temp file (for
// `go run ./cmd/poseidon-cluster` from the repo root). The launcher
// always execs a real worker binary — never a `go run` wrapper, whose
// grandchild would survive the kill-on-failure path as an orphan.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/cliflags"
)

func main() { os.Exit(run()) }

func run() int {
	n := flag.Int("n", 3, "number of worker processes")
	workerBin := flag.String("worker", "", "path to the poseidon-worker binary (default: auto-detect)")
	// The training flags are the shared surface (internal/cliflags):
	// parsed here, forwarded verbatim to every worker via common.Args.
	common := cliflags.RegisterCommon(flag.CommandLine)
	basePort := flag.Int("base-port", 0, "first TCP port; workers use base-port..base-port+n-1 (0 = pick free ports)")
	timeout := flag.Duration("timeout", 5*time.Minute, "kill the cluster if it runs longer than this")
	killAfter := flag.String("kill-after", "", "chaos: SIGKILL one worker mid-training, format iter:rank — fires once that rank prints a progress line at or past iter (use -print-every 1 for exact timing); that death is expected, so it alone does not fail the cluster")
	joinAfter := flag.Int("join-after", 0, "chaos: once any worker prints a progress line at or past this iteration, spawn one extra worker that joins the live cluster (reserves capacity n+1; requires -elastic and -transport tcp)")
	leaveAt := flag.String("leave-at", "", "schedule a graceful departure, format iter:rank — that worker announces leave at iter (requires -elastic)")
	snapshotDir := flag.String("snapshot-dir", "", "have each worker write its adopted replica snapshot to DIR/snap-<id>.bin at every membership change (requires -elastic)")
	flag.Parse()

	if *n < 1 {
		fmt.Fprintln(os.Stderr, "cluster: need -n >= 1")
		return 1
	}
	killIter, killRank, err := parseIterRank(*killAfter, *n)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cluster: -kill-after: %v\n", err)
		return 1
	}
	leaveIter, leaveRank, err := parseIterRank(*leaveAt, *n)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cluster: -leave-at: %v\n", err)
		return 1
	}
	if !common.Elastic && (*joinAfter > 0 || leaveRank >= 0 || *snapshotDir != "") {
		fmt.Fprintln(os.Stderr, "cluster: -join-after/-leave-at/-snapshot-dir require -elastic")
		return 1
	}
	if *joinAfter > 0 && common.Transport != "tcp" {
		fmt.Fprintln(os.Stderr, "cluster: -join-after requires -transport tcp (the shm mesh is fixed at rendezvous)")
		return 1
	}
	// A planned join means the mesh is sized for one more rank than
	// initially serves: the address list covers the capacity, -members
	// restricts epoch 0 to the first n ranks.
	capacity := *n
	membersCSV := ""
	if *joinAfter > 0 {
		capacity++
		ranks := make([]string, *n)
		for i := range ranks {
			ranks[i] = fmt.Sprint(i)
		}
		membersCSV = strings.Join(ranks, ",")
	}
	addrs, err := pickAddrs(capacity, *basePort)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cluster: reserve ports: %v\n", err)
		return 1
	}
	peerList := strings.Join(addrs, ",")
	if common.Transport == "shm" && common.ShmDir == "" {
		// The shm rendezvous directory must be fresh per run; a temp dir
		// owned by the launcher guarantees that and cleans up the ring
		// files when the cluster exits.
		dir, err := os.MkdirTemp("", "poseidon-shm")
		if err != nil {
			fmt.Fprintf(os.Stderr, "cluster: shm dir: %v\n", err)
			return 1
		}
		defer os.RemoveAll(dir)
		common.ShmDir = dir
	}
	name, cleanup, err := resolveWorker(*workerBin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cluster: locate worker: %v\n", err)
		return 1
	}
	defer cleanup()
	fmt.Printf("cluster: launching %d workers (%s) over %s\n", *n, name, peerList)

	type exit struct {
		id  int
		err error
	}
	exits := make(chan exit, capacity)
	var procMu sync.Mutex
	procs := make([]*exec.Cmd, capacity)

	// Chaos triggers key off the workers' own progress lines, so the
	// kill lands at a known training iteration, not a wall-clock guess.
	var chaosMu sync.Mutex
	killFired := false
	joinFired := *joinAfter <= 0 // never fires when disabled
	joinNow := make(chan struct{})
	observe := func(id int, line string) {
		it, ok := progressIter(line)
		if !ok {
			return
		}
		chaosMu.Lock()
		defer chaosMu.Unlock()
		if killRank >= 0 && !killFired && id == killRank && it >= killIter {
			killFired = true
			procMu.Lock()
			if p := procs[killRank]; p != nil && p.Process != nil {
				fmt.Fprintf(os.Stderr, "cluster: chaos: SIGKILL worker %d at iteration %d\n", killRank, it)
				p.Process.Kill()
			}
			procMu.Unlock()
		}
		if !joinFired && it >= *joinAfter {
			joinFired = true
			close(joinNow)
		}
	}

	launch := func(i int, joiner bool) error {
		args := append([]string{"-id", fmt.Sprint(i), "-peers", peerList}, common.Args()...)
		if membersCSV != "" {
			args = append(args, "-members", membersCSV)
		}
		if joiner {
			args = append(args, "-join")
		}
		if i == leaveRank {
			args = append(args, "-leave-at", fmt.Sprint(leaveIter))
		}
		if *snapshotDir != "" {
			args = append(args, "-snapshot-out", filepath.Join(*snapshotDir, fmt.Sprintf("snap-%d.bin", i)))
		}
		cmd := exec.Command(name, args...)
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return err
		}
		stderr, err := cmd.StderrPipe()
		if err != nil {
			return err
		}
		if err := cmd.Start(); err != nil {
			return err
		}
		procMu.Lock()
		procs[i] = cmd
		procMu.Unlock()
		var rd sync.WaitGroup
		rd.Add(2)
		go prefixLines(&rd, os.Stdout, stdout, i, observe)
		go prefixLines(&rd, os.Stderr, stderr, i, nil)
		go func() {
			rd.Wait() // pipes must drain before Wait closes them
			exits <- exit{i, cmd.Wait()}
		}()
		return nil
	}
	for i := 0; i < *n; i++ {
		if err := launch(i, false); err != nil {
			fmt.Fprintf(os.Stderr, "cluster: start worker %d: %v\n", i, err)
			killLocked(&procMu, procs)
			return 1
		}
	}

	code := 0
	failed := false
	total := *n
	deadline := time.After(*timeout)
	for done := 0; done < total; {
		select {
		case e := <-exits:
			done++
			chaosMu.Lock()
			expected := killFired && e.id == killRank
			chaosMu.Unlock()
			if e.err != nil && expected {
				// The chaos kill's own casualty: survivors carry on (or
				// fail on their own terms).
				fmt.Printf("cluster: worker %d killed by chaos as scheduled\n", e.id)
			} else if e.err != nil {
				fmt.Fprintf(os.Stderr, "cluster: worker %d failed: %v\n", e.id, e.err)
				code = 1
				if !failed {
					failed = true
					killLocked(&procMu, procs) // first failure: take the survivors down too
				}
			}
		case <-joinNow:
			joinNow = nil // fire once
			total++
			fmt.Printf("cluster: chaos: spawning joiner worker %d\n", *n)
			if err := launch(*n, true); err != nil {
				fmt.Fprintf(os.Stderr, "cluster: start joiner %d: %v\n", *n, err)
				code = 1
				total--
				killLocked(&procMu, procs)
			}
		case <-deadline:
			fmt.Fprintf(os.Stderr, "cluster: deadline %v passed, killing %d workers\n", *timeout, total-done)
			code = 1
			killLocked(&procMu, procs)
			deadline = nil // fire once; keep draining exits
		}
	}
	if code == 0 {
		fmt.Printf("cluster: all %d workers completed\n", total)
	}
	return code
}

// parseIterRank parses a chaos schedule of the form "iter:rank".
// An empty schedule yields (-1, -1, nil).
func parseIterRank(s string, n int) (iter, rank int, err error) {
	if s == "" {
		return -1, -1, nil
	}
	head, tail, ok := strings.Cut(s, ":")
	if !ok {
		return 0, 0, fmt.Errorf("want iter:rank, got %q", s)
	}
	if iter, err = strconv.Atoi(head); err != nil || iter < 1 {
		return 0, 0, fmt.Errorf("bad iteration in %q", s)
	}
	if rank, err = strconv.Atoi(tail); err != nil || rank < 0 || rank >= n {
		return 0, 0, fmt.Errorf("rank in %q outside 0..%d", s, n-1)
	}
	return iter, rank, nil
}

// progressIter extracts the iteration count from a worker progress line
// ("worker 2 iter  15 loss ..."); ok is false for every other line.
func progressIter(line string) (int, bool) {
	f := strings.Fields(line)
	if len(f) >= 4 && f[0] == "worker" && f[2] == "iter" {
		it, err := strconv.Atoi(f[3])
		return it, err == nil
	}
	return 0, false
}

// pickAddrs reserves n loopback addresses, either a contiguous explicit
// range or free ephemeral ports (bound and released; the rebind window
// is tiny and loopback-local).
func pickAddrs(n, basePort int) ([]string, error) {
	addrs := make([]string, 0, n)
	if basePort > 0 {
		for i := 0; i < n; i++ {
			addrs = append(addrs, fmt.Sprintf("127.0.0.1:%d", basePort+i))
		}
		return addrs, nil
	}
	var lis []net.Listener
	defer func() {
		for _, l := range lis {
			l.Close()
		}
	}()
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lis = append(lis, l)
		addrs = append(addrs, l.Addr().String())
	}
	return addrs, nil
}

// resolveWorker finds (or builds) the poseidon-worker binary. The
// result is always a real binary the launcher can SIGKILL directly —
// a `go run` wrapper would leave the actual worker alive as an orphan
// when the kill-on-failure path fires. cleanup removes any temp build.
func resolveWorker(explicit string) (name string, cleanup func(), err error) {
	none := func() {}
	if explicit != "" {
		return explicit, none, nil
	}
	if exe, err := os.Executable(); err == nil {
		sibling := filepath.Join(filepath.Dir(exe), "poseidon-worker")
		if st, err := os.Stat(sibling); err == nil && !st.IsDir() {
			return sibling, none, nil
		}
	}
	if p, err := exec.LookPath("poseidon-worker"); err == nil {
		return p, none, nil
	}
	// Source checkout: build a throwaway worker binary.
	dir, err := os.MkdirTemp("", "poseidon-cluster")
	if err != nil {
		return "", none, err
	}
	bin := filepath.Join(dir, "poseidon-worker")
	build := exec.Command("go", "build", "-o", bin, "./cmd/poseidon-worker")
	if out, err := build.CombinedOutput(); err != nil {
		os.RemoveAll(dir)
		return "", none, fmt.Errorf("go build ./cmd/poseidon-worker: %v\n%s", err, out)
	}
	return bin, func() { os.RemoveAll(dir) }, nil
}

// prefixLines streams src to dst one line at a time under a [w<id>]
// prefix; observe (optional) sees every raw line — the hook the chaos
// triggers watch training progress through.
func prefixLines(wg *sync.WaitGroup, dst io.Writer, src io.Reader, id int, observe func(int, string)) {
	defer wg.Done()
	sc := bufio.NewScanner(src)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintf(dst, "[w%d] %s\n", id, line)
		if observe != nil {
			observe(id, line)
		}
	}
}

func killLocked(mu *sync.Mutex, procs []*exec.Cmd) {
	mu.Lock()
	defer mu.Unlock()
	for _, cmd := range procs {
		if cmd != nil && cmd.Process != nil {
			cmd.Process.Kill()
		}
	}
}
