// Command poseidon-worker is one node of a real distributed training
// cluster on the functional plane: it joins a TCP mesh, trains a real
// CNN data-parallel with the paper's protocol (sharded BSP KV store +
// sufficient-factor broadcasting), and prints its loss curve. With
// -autoplan it routes every tensor through the paper's cost model
// (Algorithm 1 via poseidon.Planner) and prints the PLAN decisions;
// with -metrics-dump it prints a METRICS JSON snapshot of measured
// per-route wire traffic, sync-stall time, and KV rounds after
// training (schema: internal/metrics.CommSnapshot).
//
// Launch P processes with the same -peers list and -id 0..P-1 (or let
// poseidon-cluster do it for you), e.g.:
//
//	poseidon-worker -id 0 -peers 127.0.0.1:7000,127.0.0.1:7001 &
//	poseidon-worker -id 1 -peers 127.0.0.1:7000,127.0.0.1:7001
package main

import (
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/data"
	"repro/internal/metrics"
	"repro/internal/nn/autodiff"
	"repro/internal/poseidon"
	"repro/internal/tensor"
	"repro/internal/train"
	"repro/internal/transport"
)

func main() {
	id := flag.Int("id", 0, "this worker's id (0-based)")
	peers := flag.String("peers", "", "comma-separated host:port of every worker, in id order")
	iters := flag.Int("iters", 50, "training iterations")
	batch := flag.Int("batch", 8, "per-worker batch size")
	lr := flag.Float64("lr", 0.1, "learning rate")
	mode := flag.String("mode", "hybrid", "sync mode: ps|hybrid|1bit")
	seed := flag.Int64("seed", 42, "shared model/data seed")
	overlap := flag.Bool("overlap", false, "stream pushes through the comm send pool (WFBP)")
	chunk := flag.Int("chunk", 0, "max float32s per KV chunk (0 = whole tensors)")
	printEvery := flag.Int("print-every", 10, "print a progress line every this many iterations (streamed during training)")
	dumpLosses := flag.Bool("dump-losses", false, "after training, print one machine-readable 'LOSS <iter> <loss>' line per iteration")
	maxFrame := flag.Int("max-frame", 0, "cap on a single frame body in bytes (0 = transport default)")
	autoplan := flag.Bool("autoplan", false, "route every tensor through the paper's cost model (Algorithm 1, overrides -mode with hybrid policy) and print one PLAN line per parameter")
	metricsDump := flag.Bool("metrics-dump", false, "after training, print a machine-readable 'METRICS <json>' snapshot of the live comm counters")
	routeOverrides := flag.String("route", "", "explicit per-parameter scheme overrides, e.g. '2=ps,5=sfb' (index=ps|sfb|1bit); trumps the planner policy")
	flag.Parse()

	addrs := strings.Split(*peers, ",")
	if len(addrs) < 1 || *id < 0 || *id >= len(addrs) {
		fmt.Fprintln(os.Stderr, "need -peers with this node's -id in range")
		os.Exit(1)
	}
	m, ok := map[string]train.SyncMode{
		"ps": train.PSOnly, "hybrid": train.Hybrid, "1bit": train.OneBit,
	}[*mode]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(1)
	}
	if *autoplan {
		// Autoplanning is hybrid policy: Algorithm 1 free to pick per
		// tensor. Explicit -route overrides still trump it.
		m = train.Hybrid
	}
	overrides, err := parseRouteOverrides(*routeOverrides)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	tcp, err := transport.NewTCPMeshOpts(*id, addrs, transport.TCPOptions{
		MaxFrameBytes: *maxFrame,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "mesh: %v\n", err)
		os.Exit(1)
	}
	defer tcp.Close()

	var mtr *metrics.Comm
	var mesh transport.Mesh = tcp
	if *metricsDump {
		mtr = metrics.NewComm()
		mesh = transport.NewMeteredMesh(tcp, mtr.Wire())
	}

	full := data.Synthetic(*seed, 1280, 10, 3, 8, 8, 0.35)
	trainSet, testSet := full.Split(1024)
	cfg := train.Config{
		Workers: len(addrs), Iters: *iters, Batch: *batch, LR: float32(*lr),
		Mode: m, Seed: *seed,
		Overlap: *overlap, ChunkElems: *chunk,
		RouteOverrides: overrides, Metrics: mtr,
		BuildNet: func(rng *rand.Rand) *autodiff.Network {
			net, _, _, _ := autodiff.CIFARQuickNet(4, 10, rng)
			return net
		},
		TrainSet: trainSet, TestSet: testSet, EvalEvery: 10,
		Progress: func(p train.Point) {
			if *printEvery > 0 && (p.Iter+1)%*printEvery == 0 {
				line := fmt.Sprintf("worker %d iter %3d loss %.4f", *id, p.Iter+1, p.TrainLoss)
				if p.TestErr >= 0 {
					line += fmt.Sprintf("  test-err %.3f", p.TestErr)
				}
				if mtr != nil {
					// Per-window stall delta (metrics.SnapshotIter): the
					// live straggler signal — a worker whose max stall
					// grows is waiting on a slow peer.
					w := mtr.SnapshotIter()
					line += fmt.Sprintf("  stall %.1fms (max %.1fms)", w.TotalMS, w.MaxMS)
				}
				fmt.Println(line)
			}
		},
	}
	if *autoplan {
		// One PLAN line per parameter: the Algorithm 1 decision and the
		// cost-model numbers behind it, before any byte hits the wire.
		// An infeasible or typo'd -route override fails here, before
		// training.
		decisions, err := train.Decisions(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "worker %d: %v\n", *id, err)
			os.Exit(1)
		}
		for _, d := range decisions {
			fmt.Printf("PLAN param=%d name=%s shape=%dx%d route=%v ps_params=%d sfb_params=%d wire_bytes=%d\n",
				d.Spec.Index, d.Spec.Name, d.Spec.Rows, d.Spec.Cols,
				d.Scheme, d.PSParams, d.SFBParams, d.WireBytes)
		}
	}

	// Mallocs deltas around the whole run make the wire path's
	// allocation behavior visible on a live cluster, not just in
	// go test -bench: allocs_per_iter covers every goroutine (compute,
	// syncers, transport read loops), warmup included.
	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	res, err := train.RunWorker(cfg, mesh)
	if err != nil {
		fmt.Fprintf(os.Stderr, "worker %d: %v\n", *id, err)
		// Leave without the goodbye a graceful Close would send:
		// survivors must see the link die, not a clean departure they
		// could mistake for normal shutdown.
		os.Exit(1)
	}
	if *dumpLosses {
		for _, p := range res.Curve {
			fmt.Printf("LOSS %d %s\n", p.Iter, strconv.FormatFloat(p.TrainLoss, 'g', -1, 64))
		}
		// A digest of the final replica: every worker of a BSP run must
		// print the same value, which is how the e2e suite asserts
		// cross-replica parameter equality across real processes.
		fmt.Printf("PARAMS %016x\n", paramDigest(res.Final.Params()))
	}
	if mtr != nil {
		var msAfter runtime.MemStats
		runtime.ReadMemStats(&msAfter)
		// The report embeds the CommSnapshot schema and adds the
		// process-wide allocation rate.
		report := struct {
			metrics.CommSnapshot
			AllocsPerIter float64 `json:"allocs_per_iter"`
		}{CommSnapshot: mtr.Snapshot()}
		if *iters > 0 {
			report.AllocsPerIter = float64(msAfter.Mallocs-msBefore.Mallocs) / float64(*iters)
		}
		b, err := json.Marshal(report)
		if err != nil {
			fmt.Fprintf(os.Stderr, "worker %d: metrics snapshot: %v\n", *id, err)
			os.Exit(1)
		}
		fmt.Printf("METRICS %s\n", b)
	}
	fmt.Printf("worker %d done (%v mode, %d workers)\n", *id, m, len(addrs))
}

// parseRouteOverrides parses the -route flag: comma-separated
// index=scheme pairs with schemes named as in the paper (ps, sfb,
// 1bit).
func parseRouteOverrides(s string) (map[int]poseidon.Scheme, error) {
	if s == "" {
		return nil, nil
	}
	schemes := map[string]poseidon.Scheme{
		"ps": poseidon.PS, "sfb": poseidon.SFB, "1bit": poseidon.OneBitPS,
	}
	out := make(map[int]poseidon.Scheme)
	for _, pair := range strings.Split(s, ",") {
		idxStr, schemeStr, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			return nil, fmt.Errorf("-route: %q is not index=scheme", pair)
		}
		idx, err := strconv.Atoi(idxStr)
		if err != nil || idx < 0 {
			return nil, fmt.Errorf("-route: bad parameter index %q", idxStr)
		}
		scheme, ok := schemes[schemeStr]
		if !ok {
			return nil, fmt.Errorf("-route: unknown scheme %q (want ps|sfb|1bit)", schemeStr)
		}
		out[idx] = scheme
	}
	return out, nil
}

// paramDigest is FNV-1a over the bit patterns of every parameter value,
// in order — byte-equality of replicas, compressed to 64 bits.
func paramDigest(params []*tensor.Matrix) uint64 {
	h := fnv.New64a()
	var b [4]byte
	for _, p := range params {
		for _, v := range p.Data {
			binary.LittleEndian.PutUint32(b[:], math.Float32bits(v))
			h.Write(b[:])
		}
	}
	return h.Sum64()
}
