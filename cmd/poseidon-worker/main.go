// Command poseidon-worker is one node of a real distributed training
// cluster on the functional plane: it joins a TCP mesh, trains a real
// CNN data-parallel with the paper's protocol (sharded BSP KV store +
// sufficient-factor broadcasting), and prints its loss curve.
//
// Launch P processes with the same -peers list and -id 0..P-1, e.g.:
//
//	poseidon-worker -id 0 -peers 127.0.0.1:7000,127.0.0.1:7001 &
//	poseidon-worker -id 1 -peers 127.0.0.1:7000,127.0.0.1:7001
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"repro/internal/data"
	"repro/internal/nn/autodiff"
	"repro/internal/train"
	"repro/internal/transport"
)

func main() {
	id := flag.Int("id", 0, "this worker's id (0-based)")
	peers := flag.String("peers", "", "comma-separated host:port of every worker, in id order")
	iters := flag.Int("iters", 50, "training iterations")
	batch := flag.Int("batch", 8, "per-worker batch size")
	lr := flag.Float64("lr", 0.1, "learning rate")
	mode := flag.String("mode", "hybrid", "sync mode: ps|hybrid|1bit")
	seed := flag.Int64("seed", 42, "shared model/data seed")
	overlap := flag.Bool("overlap", false, "stream pushes through the comm send pool (WFBP)")
	chunk := flag.Int("chunk", 0, "max float32s per KV chunk (0 = whole tensors)")
	flag.Parse()

	addrs := strings.Split(*peers, ",")
	if len(addrs) < 1 || *id < 0 || *id >= len(addrs) {
		fmt.Fprintln(os.Stderr, "need -peers with this node's -id in range")
		os.Exit(1)
	}
	m, ok := map[string]train.SyncMode{
		"ps": train.PSOnly, "hybrid": train.Hybrid, "1bit": train.OneBit,
	}[*mode]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(1)
	}

	mesh, err := transport.NewTCPMesh(*id, addrs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mesh: %v\n", err)
		os.Exit(1)
	}
	defer mesh.Close()

	full := data.Synthetic(*seed, 1280, 10, 3, 8, 8, 0.35)
	trainSet, testSet := full.Split(1024)
	cfg := train.Config{
		Workers: len(addrs), Iters: *iters, Batch: *batch, LR: float32(*lr),
		Mode: m, Seed: *seed,
		Overlap: *overlap, ChunkElems: *chunk,
		BuildNet: func(rng *rand.Rand) *autodiff.Network {
			net, _, _, _ := autodiff.CIFARQuickNet(4, 10, rng)
			return net
		},
		TrainSet: trainSet, TestSet: testSet, EvalEvery: 10,
	}
	res, err := train.RunWorker(cfg, mesh)
	if err != nil {
		fmt.Fprintf(os.Stderr, "worker %d: %v\n", *id, err)
		os.Exit(1)
	}
	for _, p := range res.Curve {
		if (p.Iter+1)%10 == 0 {
			line := fmt.Sprintf("worker %d iter %3d loss %.4f", *id, p.Iter+1, p.TrainLoss)
			if p.TestErr >= 0 {
				line += fmt.Sprintf("  test-err %.3f", p.TestErr)
			}
			fmt.Println(line)
		}
	}
	fmt.Printf("worker %d done (%v mode, %d workers)\n", *id, m, len(addrs))
}
