// Command poseidon-worker is one node of a real distributed training
// cluster on the functional plane: it joins a TCP mesh, trains a real
// CNN data-parallel with the paper's protocol (sharded BSP KV store +
// sufficient-factor broadcasting), and prints its loss curve.
//
// Launch P processes with the same -peers list and -id 0..P-1 (or let
// poseidon-cluster do it for you), e.g.:
//
//	poseidon-worker -id 0 -peers 127.0.0.1:7000,127.0.0.1:7001 &
//	poseidon-worker -id 1 -peers 127.0.0.1:7000,127.0.0.1:7001
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"repro/internal/data"
	"repro/internal/nn/autodiff"
	"repro/internal/tensor"
	"repro/internal/train"
	"repro/internal/transport"
)

func main() {
	id := flag.Int("id", 0, "this worker's id (0-based)")
	peers := flag.String("peers", "", "comma-separated host:port of every worker, in id order")
	iters := flag.Int("iters", 50, "training iterations")
	batch := flag.Int("batch", 8, "per-worker batch size")
	lr := flag.Float64("lr", 0.1, "learning rate")
	mode := flag.String("mode", "hybrid", "sync mode: ps|hybrid|1bit")
	seed := flag.Int64("seed", 42, "shared model/data seed")
	overlap := flag.Bool("overlap", false, "stream pushes through the comm send pool (WFBP)")
	chunk := flag.Int("chunk", 0, "max float32s per KV chunk (0 = whole tensors)")
	printEvery := flag.Int("print-every", 10, "print a progress line every this many iterations (streamed during training)")
	dumpLosses := flag.Bool("dump-losses", false, "after training, print one machine-readable 'LOSS <iter> <loss>' line per iteration")
	maxFrame := flag.Int("max-frame", 0, "cap on a single frame body in bytes (0 = transport default)")
	flag.Parse()

	addrs := strings.Split(*peers, ",")
	if len(addrs) < 1 || *id < 0 || *id >= len(addrs) {
		fmt.Fprintln(os.Stderr, "need -peers with this node's -id in range")
		os.Exit(1)
	}
	m, ok := map[string]train.SyncMode{
		"ps": train.PSOnly, "hybrid": train.Hybrid, "1bit": train.OneBit,
	}[*mode]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(1)
	}

	mesh, err := transport.NewTCPMeshOpts(*id, addrs, transport.TCPOptions{
		MaxFrameBytes: *maxFrame,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "mesh: %v\n", err)
		os.Exit(1)
	}
	defer mesh.Close()

	full := data.Synthetic(*seed, 1280, 10, 3, 8, 8, 0.35)
	trainSet, testSet := full.Split(1024)
	cfg := train.Config{
		Workers: len(addrs), Iters: *iters, Batch: *batch, LR: float32(*lr),
		Mode: m, Seed: *seed,
		Overlap: *overlap, ChunkElems: *chunk,
		BuildNet: func(rng *rand.Rand) *autodiff.Network {
			net, _, _, _ := autodiff.CIFARQuickNet(4, 10, rng)
			return net
		},
		TrainSet: trainSet, TestSet: testSet, EvalEvery: 10,
		Progress: func(p train.Point) {
			if *printEvery > 0 && (p.Iter+1)%*printEvery == 0 {
				line := fmt.Sprintf("worker %d iter %3d loss %.4f", *id, p.Iter+1, p.TrainLoss)
				if p.TestErr >= 0 {
					line += fmt.Sprintf("  test-err %.3f", p.TestErr)
				}
				fmt.Println(line)
			}
		},
	}
	res, err := train.RunWorker(cfg, mesh)
	if err != nil {
		fmt.Fprintf(os.Stderr, "worker %d: %v\n", *id, err)
		// Leave without the goodbye a graceful Close would send:
		// survivors must see the link die, not a clean departure they
		// could mistake for normal shutdown.
		os.Exit(1)
	}
	if *dumpLosses {
		for _, p := range res.Curve {
			fmt.Printf("LOSS %d %s\n", p.Iter, strconv.FormatFloat(p.TrainLoss, 'g', -1, 64))
		}
		// A digest of the final replica: every worker of a BSP run must
		// print the same value, which is how the e2e suite asserts
		// cross-replica parameter equality across real processes.
		fmt.Printf("PARAMS %016x\n", paramDigest(res.Final.Params()))
	}
	fmt.Printf("worker %d done (%v mode, %d workers)\n", *id, m, len(addrs))
}

// paramDigest is FNV-1a over the bit patterns of every parameter value,
// in order — byte-equality of replicas, compressed to 64 bits.
func paramDigest(params []*tensor.Matrix) uint64 {
	h := fnv.New64a()
	var b [4]byte
	for _, p := range params {
		for _, v := range p.Data {
			binary.LittleEndian.PutUint32(b[:], math.Float32bits(v))
			h.Write(b[:])
		}
	}
	return h.Sum64()
}
