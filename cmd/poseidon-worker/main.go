// Command poseidon-worker is one node of a real distributed training
// cluster on the functional plane: it joins a TCP mesh — or, with
// -transport shm, a shared-memory ring mesh for co-located workers
// (Linux only) — through the poseidon.Session facade, trains a real
// CNN data-parallel with the
// paper's protocol (sharded BSP KV store + sufficient-factor
// broadcasting), and prints its loss curve. With -autoplan it routes
// every tensor through the paper's cost model (Algorithm 1 via
// poseidon.Planner) and prints the PLAN decisions; with -metrics-dump
// it prints a METRICS JSON snapshot of measured per-route wire
// traffic, sync-stall time, KV rounds, and replan events after
// training (schema: internal/metrics.CommSnapshot). With -bw the
// planner is seeded with a link-speed estimate, and -replan-every N
// makes the cluster re-measure the wire rate every N iterations and
// re-run Algorithm 1 against it — routes flip at a clock-stamped round
// barrier, identically on every worker.
//
// Configuration errors — including -route overrides naming unknown
// parameters or impossible schemes — fail before the mesh is dialed,
// so a typo'd flag costs milliseconds, not a cluster-wide timeout.
//
// The flag surface is shared with poseidon-cluster and poseidon-serve
// through internal/cliflags; parameter snapshots (-snapshot-out,
// -load-params) use the one poseidon.Snapshot format.
//
// Launch P processes with the same -peers list and -id 0..P-1 (or let
// poseidon-cluster do it for you), e.g.:
//
//	poseidon-worker -id 0 -peers 127.0.0.1:7000,127.0.0.1:7001 &
//	poseidon-worker -id 1 -peers 127.0.0.1:7000,127.0.0.1:7001
package main

import (
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"runtime"
	"strconv"

	"repro/internal/cliflags"
	"repro/internal/metrics"
	"repro/internal/tensor"
	"repro/poseidon"
)

func main() {
	nf := cliflags.RegisterNode(flag.CommandLine)
	flag.Parse()

	// The progress callback closes over the session's metrics registry,
	// which exists only after Build; mtr is bound just below.
	var mtr *metrics.Comm
	b, err := nf.Builder()
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(1)
	}
	m, _ := nf.SyncMode() // validated by Builder
	b.OnProgress(func(p poseidon.Point) {
		if nf.PrintEvery > 0 && (p.Iter+1)%nf.PrintEvery == 0 {
			line := fmt.Sprintf("worker %d iter %3d loss %.4f", nf.ID, p.Iter+1, p.TrainLoss)
			if p.TestErr >= 0 {
				line += fmt.Sprintf("  test-err %.3f", p.TestErr)
			}
			if mtr != nil {
				// Per-window stall delta (metrics.SnapshotIter): the
				// live straggler signal — a worker whose max stall
				// grows is waiting on a slow peer.
				w := mtr.SnapshotIter()
				line += fmt.Sprintf("  stall %.1fms (max %.1fms)", w.TotalMS, w.MaxMS)
			}
			fmt.Println(line)
		}
	})
	if nf.Elastic {
		// One VIEW line per committed membership transition, mirrored on
		// every member — the e2e suite keys re-formation off it. The
		// snapshot carries the barrier's adopted replica so a reference
		// run can continue from exactly this point.
		b.OnMembershipChange(func(ev poseidon.MembershipEvent) {
			fmt.Printf("VIEW %d %s %d\n", ev.View.Epoch, cliflags.RanksCSV(ev.View.Members), ev.RestartIter)
			if nf.SnapshotOut != "" {
				snap := poseidon.NewSnapshot(ev.RestartIter, ev.View.Epoch, ev.Params)
				if err := snap.WriteFile(nf.SnapshotOut); err != nil {
					fmt.Fprintf(os.Stderr, "worker %d: snapshot: %v\n", nf.ID, err)
				}
			}
		})
	}

	// Build validates the whole configuration — plan feasibility and
	// -route overrides included — before dialing the mesh, then joins
	// it. A bad override exits here, naming the offender, without ever
	// touching the network.
	sess, err := b.Build()
	if err != nil {
		fmt.Fprintf(os.Stderr, "worker %d: %v\n", nf.ID, err)
		os.Exit(1)
	}
	defer sess.Close()
	mtr = sess.Metrics()

	if nf.Autoplan {
		// One PLAN line per parameter: the Algorithm 1 decision and the
		// cost-model numbers behind it, before any byte hits the wire.
		decisions, err := sess.Plan()
		if err != nil {
			fmt.Fprintf(os.Stderr, "worker %d: %v\n", nf.ID, err)
			os.Exit(1)
		}
		for _, d := range decisions {
			fmt.Printf("PLAN param=%d name=%s shape=%dx%d route=%v ps_params=%d sfb_params=%d wire_bytes=%d\n",
				d.Spec.Index, d.Spec.Name, d.Spec.Rows, d.Spec.Cols,
				d.Scheme, d.PSParams, d.SFBParams, d.WireBytes)
		}
	}

	// Mallocs deltas around the whole run make the wire path's
	// allocation behavior visible on a live cluster, not just in
	// go test -bench: allocs_per_iter covers every goroutine (compute,
	// syncers, transport read loops), warmup included.
	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	res, err := sess.Run()
	if err != nil {
		fmt.Fprintf(os.Stderr, "worker %d: %v\n", nf.ID, err)
		// Leave without the goodbye a graceful Close would send:
		// survivors must see the link die, not a clean departure they
		// could mistake for normal shutdown.
		os.Exit(1)
	}
	if res.Left {
		// A graceful leaver stops at its departure barrier; its replica is
		// epochs behind the survivors', so a PARAMS digest would only
		// invite a bogus comparison.
		fmt.Printf("LEFT %d\n", nf.LeaveAt)
	}
	if nf.DumpLosses {
		for _, p := range res.Curve {
			fmt.Printf("LOSS %d %s\n", p.Iter, strconv.FormatFloat(p.TrainLoss, 'g', -1, 64))
		}
		// A digest of the final replica: every worker of a BSP run must
		// print the same value, which is how the e2e suite asserts
		// cross-replica parameter equality across real processes.
		if !res.Left {
			fmt.Printf("PARAMS %016x\n", paramDigest(res.Final.Params()))
		}
	}
	if snap, ok := sess.MetricsSnapshot(); ok && nf.MetricsDump {
		var msAfter runtime.MemStats
		runtime.ReadMemStats(&msAfter)
		// The report embeds the CommSnapshot schema and adds the
		// process-wide allocation rate.
		report := struct {
			metrics.CommSnapshot
			AllocsPerIter float64 `json:"allocs_per_iter"`
		}{CommSnapshot: snap}
		if nf.Iters > 0 {
			report.AllocsPerIter = float64(msAfter.Mallocs-msBefore.Mallocs) / float64(nf.Iters)
		}
		bjson, err := json.Marshal(report)
		if err != nil {
			fmt.Fprintf(os.Stderr, "worker %d: metrics snapshot: %v\n", nf.ID, err)
			os.Exit(1)
		}
		fmt.Printf("METRICS %s\n", bjson)
	}
	fmt.Printf("worker %d done (%v mode, %d workers)\n", nf.ID, m, sess.Workers())
}

// paramDigest is FNV-1a over the bit patterns of every parameter value,
// in order — byte-equality of replicas, compressed to 64 bits.
func paramDigest(params []*tensor.Matrix) uint64 {
	h := fnv.New64a()
	var b [4]byte
	for _, p := range params {
		for _, v := range p.Data {
			binary.LittleEndian.PutUint32(b[:], math.Float32bits(v))
			h.Write(b[:])
		}
	}
	return h.Sum64()
}
