// Command poseidon-worker is one node of a real distributed training
// cluster on the functional plane: it joins a TCP mesh — or, with
// -transport shm, a shared-memory ring mesh for co-located workers
// (Linux only) — through the poseidon.Session facade, trains a real
// CNN data-parallel with the
// paper's protocol (sharded BSP KV store + sufficient-factor
// broadcasting), and prints its loss curve. With -autoplan it routes
// every tensor through the paper's cost model (Algorithm 1 via
// poseidon.Planner) and prints the PLAN decisions; with -metrics-dump
// it prints a METRICS JSON snapshot of measured per-route wire
// traffic, sync-stall time, KV rounds, and replan events after
// training (schema: internal/metrics.CommSnapshot). With -bw the
// planner is seeded with a link-speed estimate, and -replan-every N
// makes the cluster re-measure the wire rate every N iterations and
// re-run Algorithm 1 against it — routes flip at a clock-stamped round
// barrier, identically on every worker.
//
// Configuration errors — including -route overrides naming unknown
// parameters or impossible schemes — fail before the mesh is dialed,
// so a typo'd flag costs milliseconds, not a cluster-wide timeout.
//
// Launch P processes with the same -peers list and -id 0..P-1 (or let
// poseidon-cluster do it for you), e.g.:
//
//	poseidon-worker -id 0 -peers 127.0.0.1:7000,127.0.0.1:7001 &
//	poseidon-worker -id 1 -peers 127.0.0.1:7000,127.0.0.1:7001
package main

import (
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/data"
	"repro/internal/metrics"
	"repro/internal/nn/autodiff"
	"repro/internal/tensor"
	"repro/internal/transport"
	"repro/poseidon"
)

func main() {
	id := flag.Int("id", 0, "this worker's id (0-based)")
	peers := flag.String("peers", "", "comma-separated host:port of every worker, in id order (with -transport shm the addresses are unused but the list still sizes the cluster)")
	transportKind := flag.String("transport", "tcp", "mesh transport: tcp, or shm (shared-memory rings for co-located workers, Linux only; requires -shm-dir)")
	shmDir := flag.String("shm-dir", "", "rendezvous directory for -transport shm; every worker of the run must name the same fresh directory")
	iters := flag.Int("iters", 50, "training iterations")
	batch := flag.Int("batch", 8, "per-worker batch size")
	lr := flag.Float64("lr", 0.1, "learning rate")
	mode := flag.String("mode", "hybrid", "sync mode: ps|hybrid|1bit")
	seed := flag.Int64("seed", 42, "shared model/data seed")
	overlap := flag.Bool("overlap", false, "stream pushes through the comm send pool (WFBP)")
	chunk := flag.Int("chunk", 0, "max float32s per KV chunk (0 = whole tensors)")
	printEvery := flag.Int("print-every", 10, "print a progress line every this many iterations (streamed during training)")
	dumpLosses := flag.Bool("dump-losses", false, "after training, print one machine-readable 'LOSS <iter> <loss>' line per iteration")
	maxFrame := flag.Int("max-frame", 0, "cap on a single frame body in bytes (0 = transport default)")
	autoplan := flag.Bool("autoplan", false, "route every tensor through the paper's cost model (Algorithm 1, overrides -mode with hybrid policy) and print one PLAN line per parameter")
	metricsDump := flag.Bool("metrics-dump", false, "after training, print a machine-readable 'METRICS <json>' snapshot of the live comm counters")
	routeOverrides := flag.String("route", "", "explicit per-parameter scheme overrides, e.g. '2=ps,5=sfb' (index=ps|sfb|1bit); trumps the planner policy")
	bw := flag.Float64("bw", 0, "initial link-bandwidth estimate in bytes/sec; makes Algorithm 1 bandwidth-aware (0 = byte-count-only cost model)")
	replanEvery := flag.Int("replan-every", 0, "re-measure the wire rate and re-run Algorithm 1 every this many iterations (0 = off)")
	replanAlpha := flag.Float64("replan-alpha", 0, "EWMA weight of the newest bandwidth observation, 0<a<=1 (0 = default)")
	frameOverhead := flag.Float64("frame-overhead", 0, "modeled per-frame overhead in seconds for the bandwidth-aware cost model (0 = default)")
	elastic := flag.Bool("elastic", false, "enable membership epochs: a peer failure or departure re-forms the cluster at a view-change barrier instead of aborting the run")
	membersFlag := flag.String("members", "", "comma-separated ranks serving at epoch 0 (elastic; default: every rank in -peers). A -join worker names the live ranks it dials")
	join := flag.Bool("join", false, "attach to a running elastic cluster as a late joiner (requires -members with the live ranks)")
	leaveAt := flag.Int("leave-at", 0, "announce a graceful departure at this iteration (elastic)")
	startIter := flag.Int("start-iter", 0, "resume training at this iteration instead of 0 (usually with -load-params)")
	loadParams := flag.String("load-params", "", "binary parameter snapshot to resume from (as written by -snapshot-out); its restart iteration applies unless -start-iter is set")
	snapshotOut := flag.String("snapshot-out", "", "write the adopted replica snapshot to this file at every membership change")
	flag.Parse()

	addrs := strings.Split(*peers, ",")
	if len(addrs) < 1 || *id < 0 || *id >= len(addrs) {
		fmt.Fprintln(os.Stderr, "need -peers with this node's -id in range")
		os.Exit(1)
	}
	m, ok := map[string]poseidon.SyncMode{
		"ps": poseidon.PSOnly, "hybrid": poseidon.Hybrid, "1bit": poseidon.OneBit,
	}[*mode]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(1)
	}
	if *autoplan {
		// Autoplanning is hybrid policy: Algorithm 1 free to pick per
		// tensor. Explicit -route overrides still trump it.
		m = poseidon.Hybrid
	}
	overrides, err := poseidon.ParseRouteOverrides(*routeOverrides)
	if err != nil {
		fmt.Fprintf(os.Stderr, "-route: %v\n", err)
		os.Exit(1)
	}

	// The progress callback closes over the session's metrics registry,
	// which exists only after Build; mtr is bound just below.
	var mtr *metrics.Comm
	full := data.Synthetic(*seed, 1280, 10, 3, 8, 8, 0.35)
	trainSet, testSet := full.Split(1024)
	b := poseidon.NewSession()
	switch *transportKind {
	case "tcp":
		b.TCP(*id, addrs, transport.TCPOptions{MaxFrameBytes: *maxFrame})
	case "shm":
		if *shmDir == "" {
			fmt.Fprintln(os.Stderr, "-transport shm requires -shm-dir")
			os.Exit(1)
		}
		b.SHM(*id, len(addrs), transport.SHMOptions{Dir: *shmDir, MaxFrameBytes: *maxFrame})
	default:
		fmt.Fprintf(os.Stderr, "unknown transport %q (want tcp|shm)\n", *transportKind)
		os.Exit(1)
	}
	b.Iterations(*iters).Batch(*batch).LearningRate(*lr).Seed(*seed).
		Mode(m).
		Overlap(*overlap).ChunkElems(*chunk).
		Model(func(rng *rand.Rand) *autodiff.Network {
			net, _, _, _ := autodiff.CIFARQuickNet(4, 10, rng)
			return net
		}).
		Data(trainSet, testSet).EvalEvery(10).
		RouteOverrides(overrides).
		Bandwidth(*bw).
		OnProgress(func(p poseidon.Point) {
			if *printEvery > 0 && (p.Iter+1)%*printEvery == 0 {
				line := fmt.Sprintf("worker %d iter %3d loss %.4f", *id, p.Iter+1, p.TrainLoss)
				if p.TestErr >= 0 {
					line += fmt.Sprintf("  test-err %.3f", p.TestErr)
				}
				if mtr != nil {
					// Per-window stall delta (metrics.SnapshotIter): the
					// live straggler signal — a worker whose max stall
					// grows is waiting on a slow peer.
					w := mtr.SnapshotIter()
					line += fmt.Sprintf("  stall %.1fms (max %.1fms)", w.TotalMS, w.MaxMS)
				}
				fmt.Println(line)
			}
		})
	if *elastic {
		b.Elastic(true)
		// One VIEW line per committed membership transition, mirrored on
		// every member — the e2e suite keys re-formation off it. The
		// snapshot carries the barrier's adopted replica so a reference
		// run can continue from exactly this point.
		b.OnMembershipChange(func(ev poseidon.MembershipEvent) {
			fmt.Printf("VIEW %d %s %d\n", ev.View.Epoch, ranksCSV(ev.View.Members), ev.RestartIter)
			if *snapshotOut != "" {
				if err := writeSnapshot(*snapshotOut, ev.RestartIter, ev.Params); err != nil {
					fmt.Fprintf(os.Stderr, "worker %d: snapshot: %v\n", *id, err)
				}
			}
		})
	}
	if *membersFlag != "" {
		ranks, err := parseRanks(*membersFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "-members: %v\n", err)
			os.Exit(1)
		}
		b.Members(ranks)
	}
	if *join {
		b.Joining()
	}
	if *leaveAt > 0 {
		b.LeaveAt(*leaveAt)
	}
	if *loadParams != "" {
		restart, params, err := readSnapshot(*loadParams)
		if err != nil {
			fmt.Fprintf(os.Stderr, "-load-params: %v\n", err)
			os.Exit(1)
		}
		if *startIter == 0 {
			*startIter = restart
		}
		b.ResumeFrom(*startIter, params)
	} else if *startIter > 0 {
		b.ResumeFrom(*startIter, nil)
	}
	if *replanEvery > 0 {
		b.Replan(poseidon.ReplanSpec{
			Every:         *replanEvery,
			Alpha:         *replanAlpha,
			FrameOverhead: *frameOverhead,
		})
	}
	if *metricsDump {
		b.CollectMetrics()
	}

	// Build validates the whole configuration — plan feasibility and
	// -route overrides included — before dialing the mesh, then joins
	// it. A bad override exits here, naming the offender, without ever
	// touching the network.
	sess, err := b.Build()
	if err != nil {
		fmt.Fprintf(os.Stderr, "worker %d: %v\n", *id, err)
		os.Exit(1)
	}
	defer sess.Close()
	mtr = sess.Metrics()

	if *autoplan {
		// One PLAN line per parameter: the Algorithm 1 decision and the
		// cost-model numbers behind it, before any byte hits the wire.
		decisions, err := sess.Plan()
		if err != nil {
			fmt.Fprintf(os.Stderr, "worker %d: %v\n", *id, err)
			os.Exit(1)
		}
		for _, d := range decisions {
			fmt.Printf("PLAN param=%d name=%s shape=%dx%d route=%v ps_params=%d sfb_params=%d wire_bytes=%d\n",
				d.Spec.Index, d.Spec.Name, d.Spec.Rows, d.Spec.Cols,
				d.Scheme, d.PSParams, d.SFBParams, d.WireBytes)
		}
	}

	// Mallocs deltas around the whole run make the wire path's
	// allocation behavior visible on a live cluster, not just in
	// go test -bench: allocs_per_iter covers every goroutine (compute,
	// syncers, transport read loops), warmup included.
	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	res, err := sess.Run()
	if err != nil {
		fmt.Fprintf(os.Stderr, "worker %d: %v\n", *id, err)
		// Leave without the goodbye a graceful Close would send:
		// survivors must see the link die, not a clean departure they
		// could mistake for normal shutdown.
		os.Exit(1)
	}
	if res.Left {
		// A graceful leaver stops at its departure barrier; its replica is
		// epochs behind the survivors', so a PARAMS digest would only
		// invite a bogus comparison.
		fmt.Printf("LEFT %d\n", *leaveAt)
	}
	if *dumpLosses {
		for _, p := range res.Curve {
			fmt.Printf("LOSS %d %s\n", p.Iter, strconv.FormatFloat(p.TrainLoss, 'g', -1, 64))
		}
		// A digest of the final replica: every worker of a BSP run must
		// print the same value, which is how the e2e suite asserts
		// cross-replica parameter equality across real processes.
		if !res.Left {
			fmt.Printf("PARAMS %016x\n", paramDigest(res.Final.Params()))
		}
	}
	if snap, ok := sess.MetricsSnapshot(); ok && *metricsDump {
		var msAfter runtime.MemStats
		runtime.ReadMemStats(&msAfter)
		// The report embeds the CommSnapshot schema and adds the
		// process-wide allocation rate.
		report := struct {
			metrics.CommSnapshot
			AllocsPerIter float64 `json:"allocs_per_iter"`
		}{CommSnapshot: snap}
		if *iters > 0 {
			report.AllocsPerIter = float64(msAfter.Mallocs-msBefore.Mallocs) / float64(*iters)
		}
		bjson, err := json.Marshal(report)
		if err != nil {
			fmt.Fprintf(os.Stderr, "worker %d: metrics snapshot: %v\n", *id, err)
			os.Exit(1)
		}
		fmt.Printf("METRICS %s\n", bjson)
	}
	fmt.Printf("worker %d done (%v mode, %d workers)\n", *id, m, len(addrs))
}

func parseRanks(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	ranks := make([]int, 0, len(parts))
	for _, p := range parts {
		r, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad rank %q", p)
		}
		ranks = append(ranks, r)
	}
	return ranks, nil
}

func ranksCSV(ranks []int) string {
	var sb strings.Builder
	for i, r := range ranks {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(r))
	}
	return sb.String()
}

// snapshotMagic heads every parameter snapshot file ("PSN1" LE).
const snapshotMagic = 0x314e5350

// writeSnapshot persists a membership barrier's adopted replica: magic,
// restart iteration, tensor count, then each tensor as length + LE
// float32 bit patterns. Written to a temp file and renamed so a reader
// never observes a half-written snapshot.
func writeSnapshot(path string, restart int, params [][]float32) error {
	size := 12
	for _, p := range params {
		size += 4 + 4*len(p)
	}
	buf := make([]byte, 0, size)
	buf = binary.LittleEndian.AppendUint32(buf, snapshotMagic)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(restart))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(params)))
	for _, p := range params {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p)))
		for _, v := range p {
			buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(v))
		}
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func readSnapshot(path string) (restart int, params [][]float32, err error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, err
	}
	next := func(what string) (uint32, error) {
		if len(buf) < 4 {
			return 0, fmt.Errorf("%s: truncated snapshot %s", what, path)
		}
		v := binary.LittleEndian.Uint32(buf)
		buf = buf[4:]
		return v, nil
	}
	magic, err := next("magic")
	if err != nil {
		return 0, nil, err
	}
	if magic != snapshotMagic {
		return 0, nil, fmt.Errorf("%s is not a parameter snapshot", path)
	}
	r, err := next("restart")
	if err != nil {
		return 0, nil, err
	}
	n, err := next("tensor count")
	if err != nil {
		return 0, nil, err
	}
	params = make([][]float32, n)
	for i := range params {
		ln, err := next("tensor length")
		if err != nil {
			return 0, nil, err
		}
		if uint64(len(buf)) < 4*uint64(ln) {
			return 0, nil, fmt.Errorf("tensor %d: truncated snapshot %s", i, path)
		}
		t := make([]float32, ln)
		for j := range t {
			t[j] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*j:]))
		}
		buf = buf[4*ln:]
		params[i] = t
	}
	return int(r), params, nil
}

// paramDigest is FNV-1a over the bit patterns of every parameter value,
// in order — byte-equality of replicas, compressed to 64 bits.
func paramDigest(params []*tensor.Matrix) uint64 {
	h := fnv.New64a()
	var b [4]byte
	for _, p := range params {
		for _, v := range p.Data {
			binary.LittleEndian.PutUint32(b[:], math.Float32bits(v))
			h.Write(b[:])
		}
	}
	return h.Sum64()
}
