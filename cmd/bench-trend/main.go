// Command bench-trend gates CI on the perf trajectory: it compares the
// current BENCH_ci.json (cmd/poseidon-bench -json) against the previous
// baseline downloaded from the last successful main run and fails when
// any shared experiment regressed by more than -max-regress.
//
//	bench-trend -old prev/BENCH_ci.json -new BENCH_ci.json -max-regress 0.20
//
// A missing baseline is not an error — the first run on a branch seeds
// the trajectory — and experiments faster than -min-seconds in the
// baseline are skipped, because shared-runner timing noise on
// millisecond-scale experiments would make a ratio gate flap.
//
// With -go-bench it instead gates absolute budgets against raw
// `go test -bench` output — no baseline needed, because allocs/op and
// bytes-copied are deterministic where wall time is not:
//
//	go test -bench BenchmarkWirePathAlloc -benchtime 3x ./internal/comm | tee out.txt
//	bench-trend -go-bench out.txt -alloc-budget 'BenchmarkWirePathAlloc=16'
//
// The gates compose over one -go-bench file:
//
//   - -alloc-budget 'Name=N':     allocs/op at most N
//   - -copy-budget 'Name=N':      copiedB/frame at most N (the custom
//     metric the transport egress benchmarks report — the bytes the
//     transport copied into scratch per frame; ~21 proves the vectored
//     writev path never copies payloads)
//   - -mbps-ratio 'A/B>=X':       benchmark A's MB/s at least X times
//     benchmark B's (e.g. the shm ring at least 2x loopback TCP)
//   - -byte-ratio 'A/B<=X':       benchmark A's egressB/op at most X
//     times benchmark B's (e.g. the ring all-reduce's measured cluster
//     egress never above the chunked-PS baseline on the same tensor)
//   - -mbps-floor 'Name>=X':      benchmark Name's MB/s at least X —
//     the absolute gate for paths with no baseline twin (e.g. the
//     snapshot fan-out to a replica fleet)
//
// A budgeted benchmark missing from the output fails too — a renamed
// benchmark must not silently disarm its gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// report mirrors the BENCH_ci.json schema (cmd/poseidon-bench).
type report struct {
	TotalSeconds float64  `json:"total_seconds"`
	Experiments  []record `json:"experiments"`
}

type record struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
}

// regression describes one experiment that got slower than allowed.
type regression struct {
	Name     string
	Old, New float64
}

func (r regression) String() string {
	return fmt.Sprintf("%s: %.4fs -> %.4fs (+%.1f%%)", r.Name, r.Old, r.New, (r.New/r.Old-1)*100)
}

// compare returns the experiments in next that regressed by more than
// maxRegress relative to prev, skipping baselines below minSeconds
// (noise floor) and experiments not present in both reports.
func compare(prev, next report, maxRegress, minSeconds float64) []regression {
	base := make(map[string]float64, len(prev.Experiments))
	for _, e := range prev.Experiments {
		base[e.Name] = e.Seconds
	}
	var regs []regression
	for _, e := range next.Experiments {
		old, ok := base[e.Name]
		if !ok || old < minSeconds {
			continue
		}
		if e.Seconds > old*(1+maxRegress) {
			regs = append(regs, regression{Name: e.Name, Old: old, New: e.Seconds})
		}
	}
	return regs
}

// parseAllocBudgets parses the -alloc-budget flag: comma-separated
// name=N pairs, N the maximum allocs/op allowed.
func parseAllocBudgets(s string) (map[string]int64, error) {
	out := make(map[string]int64)
	for _, pair := range strings.Split(s, ",") {
		name, nStr, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			return nil, fmt.Errorf("alloc budget %q is not name=N", pair)
		}
		n, err := strconv.ParseInt(nStr, 10, 64)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("alloc budget %q: bad count %q", pair, nStr)
		}
		out[name] = n
	}
	return out, nil
}

// metricReading is the spread of one benchmark metric across repeated
// runs; single-run CI output has Min == Max.
type metricReading struct {
	Min, Max float64
}

// parseGoBenchMetrics extracts every benchmark → unit → reading from
// `go test -bench` output. A result line is the benchmark name, the
// iteration count, then value/unit pairs (ns/op, MB/s, allocs/op, and
// any b.ReportMetric custom units such as copiedB/frame). Benchmark
// names are stripped of the -GOMAXPROCS suffix; a benchmark appearing
// several times keeps its full min/max spread so each gate can pick
// its worst case.
func parseGoBenchMetrics(r *bufio.Scanner) (map[string]map[string]metricReading, error) {
	out := make(map[string]map[string]metricReading)
	for r.Scan() {
		fields := strings.Fields(r.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			name = name[:i]
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchmark %s: bad value %q for unit %q", name, fields[i], fields[i+1])
			}
			unit := fields[i+1]
			m := out[name]
			if m == nil {
				m = make(map[string]metricReading)
				out[name] = m
			}
			rd, ok := m[unit]
			if !ok {
				rd = metricReading{Min: v, Max: v}
			} else {
				rd.Min = min(rd.Min, v)
				rd.Max = max(rd.Max, v)
			}
			m[unit] = rd
		}
	}
	return out, r.Err()
}

// parseGoBenchAllocs projects the metrics down to benchmark →
// worst-case allocs/op, the shape the allocation gate consumes.
func parseGoBenchAllocs(r *bufio.Scanner) (map[string]int64, error) {
	metrics, err := parseGoBenchMetrics(r)
	if err != nil {
		return nil, err
	}
	out := make(map[string]int64)
	for name, m := range metrics {
		if rd, ok := m["allocs/op"]; ok {
			out[name] = int64(rd.Max)
		}
	}
	return out, nil
}

// gateAllocs compares measured allocs/op against the budgets and
// returns one violation line per failure (missing benchmarks count).
func gateAllocs(measured map[string]int64, budgets map[string]int64) []string {
	var bad []string
	for name, budget := range budgets {
		got, ok := measured[name]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s: not found in bench output (renamed? gate disarmed?)", name))
			continue
		}
		if got > budget {
			bad = append(bad, fmt.Sprintf("%s: %d allocs/op exceeds budget %d", name, got, budget))
		}
	}
	return bad
}

// parseCopyBudgets parses the -copy-budget flag: comma-separated
// name=N pairs, N the maximum copiedB/frame allowed (fractional
// budgets are legal — per-frame averages need not divide evenly).
func parseCopyBudgets(s string) (map[string]float64, error) {
	out := make(map[string]float64)
	for _, pair := range strings.Split(s, ",") {
		name, nStr, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			return nil, fmt.Errorf("copy budget %q is not name=N", pair)
		}
		n, err := strconv.ParseFloat(nStr, 64)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("copy budget %q: bad byte count %q", pair, nStr)
		}
		out[name] = n
	}
	return out, nil
}

// gateCopies compares measured copiedB/frame against the budgets; a
// budgeted benchmark missing the metric (or missing entirely) fails.
func gateCopies(measured map[string]map[string]metricReading, budgets map[string]float64) []string {
	var bad []string
	for name, budget := range budgets {
		rd, ok := measured[name]["copiedB/frame"]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s: no copiedB/frame in bench output (renamed? metric dropped?)", name))
			continue
		}
		if rd.Max > budget {
			bad = append(bad, fmt.Sprintf("%s: %.1f copiedB/frame exceeds budget %.1f (payload bytes leaking into transport scratch?)", name, rd.Max, budget))
		}
	}
	return bad
}

// parseP99Budgets parses the -p99-budget flag: comma-separated name=N
// pairs, N the maximum p99 latency in milliseconds (the serving
// benchmarks' custom p99-ms metric).
func parseP99Budgets(s string) (map[string]float64, error) {
	out := make(map[string]float64)
	for _, pair := range strings.Split(s, ",") {
		name, nStr, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			return nil, fmt.Errorf("p99 budget %q is not name=N", pair)
		}
		n, err := strconv.ParseFloat(nStr, 64)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("p99 budget %q: bad millisecond count %q", pair, nStr)
		}
		out[name] = n
	}
	return out, nil
}

// gateP99 compares measured p99-ms against the budgets; a budgeted
// benchmark missing the metric (or missing entirely) fails.
func gateP99(measured map[string]map[string]metricReading, budgets map[string]float64) []string {
	var bad []string
	for name, budget := range budgets {
		rd, ok := measured[name]["p99-ms"]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s: no p99-ms in bench output (renamed? metric dropped?)", name))
			continue
		}
		if rd.Max > budget {
			bad = append(bad, fmt.Sprintf("%s: p99 %.2fms exceeds budget %.2fms (micro-batch window regressed?)", name, rd.Max, budget))
		}
	}
	return bad
}

// ratioGate demands benchmark Num's throughput be at least Min times
// benchmark Den's.
type ratioGate struct {
	Num, Den string
	Min      float64
}

// parseRatioGates parses the -mbps-ratio flag: comma-separated
// 'A/B>=X' specs over the benchmarks' MB/s readings.
func parseRatioGates(s string) ([]ratioGate, error) {
	var out []ratioGate
	for _, spec := range strings.Split(s, ",") {
		lhs, minStr, ok := strings.Cut(strings.TrimSpace(spec), ">=")
		if !ok {
			return nil, fmt.Errorf("throughput ratio %q is not A/B>=X", spec)
		}
		num, den, ok := strings.Cut(lhs, "/")
		if !ok || num == "" || den == "" {
			return nil, fmt.Errorf("throughput ratio %q: left side is not A/B", spec)
		}
		minV, err := strconv.ParseFloat(minStr, 64)
		if err != nil || minV <= 0 {
			return nil, fmt.Errorf("throughput ratio %q: bad threshold %q", spec, minStr)
		}
		out = append(out, ratioGate{Num: strings.TrimSpace(num), Den: strings.TrimSpace(den), Min: minV})
	}
	return out, nil
}

// gateRatios checks each throughput ratio against the measured MB/s
// (best run of each side — CI runs each benchmark once, so the spread
// collapses). A side without an MB/s reading fails the gate.
func gateRatios(measured map[string]map[string]metricReading, gates []ratioGate) []string {
	var bad []string
	for _, g := range gates {
		numRd, numOK := measured[g.Num]["MB/s"]
		denRd, denOK := measured[g.Den]["MB/s"]
		if !numOK || !denOK {
			for name, ok := range map[string]bool{g.Num: numOK, g.Den: denOK} {
				if !ok {
					bad = append(bad, fmt.Sprintf("%s: no MB/s in bench output (renamed? b.SetBytes dropped?)", name))
				}
			}
			continue
		}
		if ratio := numRd.Max / denRd.Max; ratio < g.Min {
			bad = append(bad, fmt.Sprintf("%s/%s = %.2f (%.1f / %.1f MB/s), below required %.2f",
				g.Num, g.Den, ratio, numRd.Max, denRd.Max, g.Min))
		}
	}
	return bad
}

// floorGate demands a benchmark's throughput be at least Min MB/s —
// the absolute gate for paths with no natural baseline twin, like the
// snapshot fan-out (one encode, N replica bodies over loopback HTTP).
type floorGate struct {
	Name string
	Min  float64
}

// parseFloorGates parses the -mbps-floor flag: comma-separated
// 'Name>=X' specs over the benchmarks' MB/s readings.
func parseFloorGates(s string) ([]floorGate, error) {
	var out []floorGate
	for _, spec := range strings.Split(s, ",") {
		name, minStr, ok := strings.Cut(strings.TrimSpace(spec), ">=")
		if !ok || name == "" {
			return nil, fmt.Errorf("throughput floor %q is not Name>=X", spec)
		}
		minV, err := strconv.ParseFloat(minStr, 64)
		if err != nil || minV <= 0 {
			return nil, fmt.Errorf("throughput floor %q: bad threshold %q", spec, minStr)
		}
		out = append(out, floorGate{Name: strings.TrimSpace(name), Min: minV})
	}
	return out, nil
}

// gateFloors checks each absolute throughput floor against the best
// measured MB/s. A benchmark without the metric fails its gate.
func gateFloors(measured map[string]map[string]metricReading, gates []floorGate) []string {
	var bad []string
	for _, g := range gates {
		rd, ok := measured[g.Name]["MB/s"]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s: no MB/s in bench output (renamed? b.SetBytes dropped?)", g.Name))
			continue
		}
		if rd.Max < g.Min {
			bad = append(bad, fmt.Sprintf("%s: %.1f MB/s below required floor %.1f", g.Name, rd.Max, g.Min))
		}
	}
	return bad
}

// byteRatioGate demands benchmark Num's measured egress be at most Max
// times benchmark Den's — the collective gate: the ring benchmark's
// egressB/op must not exceed the chunked-PS twin's on the same shape.
type byteRatioGate struct {
	Num, Den string
	Max      float64
}

// parseByteRatioGates parses the -byte-ratio flag: comma-separated
// 'A/B<=X' specs over the benchmarks' egressB/op readings.
func parseByteRatioGates(s string) ([]byteRatioGate, error) {
	var out []byteRatioGate
	for _, spec := range strings.Split(s, ",") {
		lhs, maxStr, ok := strings.Cut(strings.TrimSpace(spec), "<=")
		if !ok {
			return nil, fmt.Errorf("byte ratio %q is not A/B<=X", spec)
		}
		num, den, ok := strings.Cut(lhs, "/")
		if !ok || num == "" || den == "" {
			return nil, fmt.Errorf("byte ratio %q: left side is not A/B", spec)
		}
		maxV, err := strconv.ParseFloat(maxStr, 64)
		if err != nil || maxV <= 0 {
			return nil, fmt.Errorf("byte ratio %q: bad threshold %q", spec, maxStr)
		}
		out = append(out, byteRatioGate{Num: strings.TrimSpace(num), Den: strings.TrimSpace(den), Max: maxV})
	}
	return out, nil
}

// gateByteRatios checks each egress ratio against the measured
// egressB/op, taking each side's worst case for an upper bound (the
// numerator's largest reading over the denominator's smallest). A side
// without the metric fails the gate.
func gateByteRatios(measured map[string]map[string]metricReading, gates []byteRatioGate) []string {
	var bad []string
	for _, g := range gates {
		numRd, numOK := measured[g.Num]["egressB/op"]
		denRd, denOK := measured[g.Den]["egressB/op"]
		if !numOK || !denOK {
			for name, ok := range map[string]bool{g.Num: numOK, g.Den: denOK} {
				if !ok {
					bad = append(bad, fmt.Sprintf("%s: no egressB/op in bench output (renamed? metric dropped?)", name))
				}
			}
			continue
		}
		if ratio := numRd.Max / denRd.Min; ratio > g.Max {
			bad = append(bad, fmt.Sprintf("%s/%s = %.4f (%.0f / %.0f egressB/op), above allowed %.4f",
				g.Num, g.Den, ratio, numRd.Max, denRd.Min, g.Max))
		}
	}
	return bad
}

// runGoBenchGates applies every requested absolute gate — allocation,
// bytes-copied, p99 latency, throughput ratio, egress-byte ratio — to
// one `go test -bench` output file.
func runGoBenchGates(benchPath, allocSpec, copySpec, p99Spec, ratioSpec, byteRatioSpec, floorSpec string) int {
	f, err := os.Open(benchPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench-trend: %v\n", err)
		return 1
	}
	defer f.Close()
	metrics, err := parseGoBenchMetrics(bufio.NewScanner(f))
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench-trend: %v\n", err)
		return 1
	}

	var bad []string
	gates := 0
	if allocSpec != "" {
		budgets, err := parseAllocBudgets(allocSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench-trend: %v\n", err)
			return 1
		}
		measured := make(map[string]int64)
		for name, m := range metrics {
			if rd, ok := m["allocs/op"]; ok {
				measured[name] = int64(rd.Max)
			}
		}
		for name, budget := range budgets {
			if got, ok := measured[name]; ok {
				fmt.Printf("bench-trend: %s %d allocs/op (budget %d)\n", name, got, budget)
			}
		}
		bad = append(bad, gateAllocs(measured, budgets)...)
		gates++
	}
	if copySpec != "" {
		budgets, err := parseCopyBudgets(copySpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench-trend: %v\n", err)
			return 1
		}
		for name, budget := range budgets {
			if rd, ok := metrics[name]["copiedB/frame"]; ok {
				fmt.Printf("bench-trend: %s %.1f copiedB/frame (budget %.1f)\n", name, rd.Max, budget)
			}
		}
		bad = append(bad, gateCopies(metrics, budgets)...)
		gates++
	}
	if p99Spec != "" {
		budgets, err := parseP99Budgets(p99Spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench-trend: %v\n", err)
			return 1
		}
		for name, budget := range budgets {
			if rd, ok := metrics[name]["p99-ms"]; ok {
				fmt.Printf("bench-trend: %s p99 %.2fms (budget %.2fms)\n", name, rd.Max, budget)
			}
		}
		bad = append(bad, gateP99(metrics, budgets)...)
		gates++
	}
	if ratioSpec != "" {
		ratios, err := parseRatioGates(ratioSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench-trend: %v\n", err)
			return 1
		}
		for _, g := range ratios {
			if n, ok := metrics[g.Num]["MB/s"]; ok {
				if d, ok := metrics[g.Den]["MB/s"]; ok {
					fmt.Printf("bench-trend: %s/%s = %.2f (want >= %.2f)\n", g.Num, g.Den, n.Max/d.Max, g.Min)
				}
			}
		}
		bad = append(bad, gateRatios(metrics, ratios)...)
		gates++
	}
	if byteRatioSpec != "" {
		ratios, err := parseByteRatioGates(byteRatioSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench-trend: %v\n", err)
			return 1
		}
		for _, g := range ratios {
			if n, ok := metrics[g.Num]["egressB/op"]; ok {
				if d, ok := metrics[g.Den]["egressB/op"]; ok {
					fmt.Printf("bench-trend: %s/%s = %.4f (want <= %.4f)\n", g.Num, g.Den, n.Max/d.Min, g.Max)
				}
			}
		}
		bad = append(bad, gateByteRatios(metrics, ratios)...)
		gates++
	}
	if floorSpec != "" {
		floors, err := parseFloorGates(floorSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench-trend: %v\n", err)
			return 1
		}
		for _, g := range floors {
			if rd, ok := metrics[g.Name]["MB/s"]; ok {
				fmt.Printf("bench-trend: %s %.1f MB/s (floor %.1f)\n", g.Name, rd.Max, g.Min)
			}
		}
		bad = append(bad, gateFloors(metrics, floors)...)
		gates++
	}
	if gates == 0 {
		fmt.Fprintln(os.Stderr, "bench-trend: -go-bench needs at least one of -alloc-budget, -copy-budget, -p99-budget, -mbps-ratio, -byte-ratio, -mbps-floor")
		return 1
	}
	if len(bad) > 0 {
		fmt.Fprintf(os.Stderr, "bench-trend: %d budget violation(s):\n", len(bad))
		for _, line := range bad {
			fmt.Fprintf(os.Stderr, "  %s\n", line)
		}
		return 1
	}
	fmt.Println("bench-trend: all go-bench budgets hold")
	return 0
}

func load(path string) (report, error) {
	var r report
	b, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	return r, json.Unmarshal(b, &r)
}

func main() {
	oldPath := flag.String("old", "", "baseline BENCH_ci.json (previous main run)")
	newPath := flag.String("new", "BENCH_ci.json", "current BENCH_ci.json")
	maxRegress := flag.Float64("max-regress", 0.20, "failure threshold as a fraction (0.20 = +20%)")
	minSeconds := flag.Float64("min-seconds", 0.01, "skip experiments whose baseline is below this (timing-noise floor)")
	goBench := flag.String("go-bench", "", "gate absolute budgets against this `go test -bench` output instead of comparing BENCH_ci.json timings")
	allocBudget := flag.String("alloc-budget", "", "comma-separated name=N maximum allocs/op, used with -go-bench")
	copyBudget := flag.String("copy-budget", "", "comma-separated name=N maximum copiedB/frame, used with -go-bench")
	p99Budget := flag.String("p99-budget", "", "comma-separated name=N maximum p99 latency in milliseconds, used with -go-bench")
	mbpsRatio := flag.String("mbps-ratio", "", "comma-separated 'A/B>=X' minimum MB/s ratios between benchmarks, used with -go-bench")
	byteRatio := flag.String("byte-ratio", "", "comma-separated 'A/B<=X' maximum egressB/op ratios between benchmarks, used with -go-bench")
	mbpsFloor := flag.String("mbps-floor", "", "comma-separated 'Name>=X' absolute minimum MB/s per benchmark, used with -go-bench")
	flag.Parse()

	if *goBench != "" {
		os.Exit(runGoBenchGates(*goBench, *allocBudget, *copyBudget, *p99Budget, *mbpsRatio, *byteRatio, *mbpsFloor))
	}

	next, err := load(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench-trend: current report: %v\n", err)
		os.Exit(1)
	}
	prev, err := load(*oldPath)
	if err != nil {
		// No baseline: the first run seeds the trajectory.
		fmt.Printf("bench-trend: no baseline (%v) — seeding with %d experiments, %.2fs total\n",
			err, len(next.Experiments), next.TotalSeconds)
		return
	}

	regs := compare(prev, next, *maxRegress, *minSeconds)
	for _, e := range next.Experiments {
		fmt.Printf("bench-trend: %-12s %.4fs\n", e.Name, e.Seconds)
	}
	if len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "bench-trend: %d experiment(s) regressed more than %.0f%%:\n", len(regs), *maxRegress*100)
		for _, r := range regs {
			fmt.Fprintf(os.Stderr, "  %s\n", r)
		}
		os.Exit(1)
	}
	fmt.Printf("bench-trend: no regression beyond %.0f%% against baseline (total %.2fs -> %.2fs)\n",
		*maxRegress*100, prev.TotalSeconds, next.TotalSeconds)
}
