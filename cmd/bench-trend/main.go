// Command bench-trend gates CI on the perf trajectory: it compares the
// current BENCH_ci.json (cmd/poseidon-bench -json) against the previous
// baseline downloaded from the last successful main run and fails when
// any shared experiment regressed by more than -max-regress.
//
//	bench-trend -old prev/BENCH_ci.json -new BENCH_ci.json -max-regress 0.20
//
// A missing baseline is not an error — the first run on a branch seeds
// the trajectory — and experiments faster than -min-seconds in the
// baseline are skipped, because shared-runner timing noise on
// millisecond-scale experiments would make a ratio gate flap.
//
// With -go-bench it instead gates allocation budgets against raw
// `go test -bench` output — an absolute gate, no baseline needed,
// because allocs/op is deterministic where wall time is not:
//
//	go test -bench BenchmarkWirePathAlloc -benchtime 3x ./internal/comm | tee out.txt
//	bench-trend -go-bench out.txt -alloc-budget 'BenchmarkWirePathAlloc=16'
//
// A budgeted benchmark missing from the output fails too — a renamed
// benchmark must not silently disarm its gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// report mirrors the BENCH_ci.json schema (cmd/poseidon-bench).
type report struct {
	TotalSeconds float64  `json:"total_seconds"`
	Experiments  []record `json:"experiments"`
}

type record struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
}

// regression describes one experiment that got slower than allowed.
type regression struct {
	Name     string
	Old, New float64
}

func (r regression) String() string {
	return fmt.Sprintf("%s: %.4fs -> %.4fs (+%.1f%%)", r.Name, r.Old, r.New, (r.New/r.Old-1)*100)
}

// compare returns the experiments in next that regressed by more than
// maxRegress relative to prev, skipping baselines below minSeconds
// (noise floor) and experiments not present in both reports.
func compare(prev, next report, maxRegress, minSeconds float64) []regression {
	base := make(map[string]float64, len(prev.Experiments))
	for _, e := range prev.Experiments {
		base[e.Name] = e.Seconds
	}
	var regs []regression
	for _, e := range next.Experiments {
		old, ok := base[e.Name]
		if !ok || old < minSeconds {
			continue
		}
		if e.Seconds > old*(1+maxRegress) {
			regs = append(regs, regression{Name: e.Name, Old: old, New: e.Seconds})
		}
	}
	return regs
}

// parseAllocBudgets parses the -alloc-budget flag: comma-separated
// name=N pairs, N the maximum allocs/op allowed.
func parseAllocBudgets(s string) (map[string]int64, error) {
	out := make(map[string]int64)
	for _, pair := range strings.Split(s, ",") {
		name, nStr, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			return nil, fmt.Errorf("alloc budget %q is not name=N", pair)
		}
		n, err := strconv.ParseInt(nStr, 10, 64)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("alloc budget %q: bad count %q", pair, nStr)
		}
		out[name] = n
	}
	return out, nil
}

// parseGoBenchAllocs extracts benchmark → allocs/op from `go test
// -bench` output. Benchmark names are stripped of the -GOMAXPROCS
// suffix; a benchmark appearing several times keeps its worst reading.
func parseGoBenchAllocs(r *bufio.Scanner) (map[string]int64, error) {
	out := make(map[string]int64)
	for r.Scan() {
		fields := strings.Fields(r.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			name = name[:i]
		}
		for i := 2; i < len(fields); i++ {
			if fields[i] != "allocs/op" {
				continue
			}
			n, err := strconv.ParseInt(fields[i-1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("benchmark %s: bad allocs/op %q", name, fields[i-1])
			}
			if prev, ok := out[name]; !ok || n > prev {
				out[name] = n
			}
		}
	}
	return out, r.Err()
}

// gateAllocs compares measured allocs/op against the budgets and
// returns one violation line per failure (missing benchmarks count).
func gateAllocs(measured map[string]int64, budgets map[string]int64) []string {
	var bad []string
	for name, budget := range budgets {
		got, ok := measured[name]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s: not found in bench output (renamed? gate disarmed?)", name))
			continue
		}
		if got > budget {
			bad = append(bad, fmt.Sprintf("%s: %d allocs/op exceeds budget %d", name, got, budget))
		}
	}
	return bad
}

func runAllocGate(benchPath, budgetSpec string) int {
	budgets, err := parseAllocBudgets(budgetSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench-trend: %v\n", err)
		return 1
	}
	f, err := os.Open(benchPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench-trend: %v\n", err)
		return 1
	}
	defer f.Close()
	measured, err := parseGoBenchAllocs(bufio.NewScanner(f))
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench-trend: %v\n", err)
		return 1
	}
	for name, budget := range budgets {
		if got, ok := measured[name]; ok {
			fmt.Printf("bench-trend: %s %d allocs/op (budget %d)\n", name, got, budget)
		}
	}
	if bad := gateAllocs(measured, budgets); len(bad) > 0 {
		fmt.Fprintf(os.Stderr, "bench-trend: %d allocation budget violation(s):\n", len(bad))
		for _, line := range bad {
			fmt.Fprintf(os.Stderr, "  %s\n", line)
		}
		return 1
	}
	fmt.Println("bench-trend: all allocation budgets hold")
	return 0
}

func load(path string) (report, error) {
	var r report
	b, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	return r, json.Unmarshal(b, &r)
}

func main() {
	oldPath := flag.String("old", "", "baseline BENCH_ci.json (previous main run)")
	newPath := flag.String("new", "BENCH_ci.json", "current BENCH_ci.json")
	maxRegress := flag.Float64("max-regress", 0.20, "failure threshold as a fraction (0.20 = +20%)")
	minSeconds := flag.Float64("min-seconds", 0.01, "skip experiments whose baseline is below this (timing-noise floor)")
	goBench := flag.String("go-bench", "", "gate allocation budgets against this `go test -bench` output instead of comparing BENCH_ci.json timings")
	allocBudget := flag.String("alloc-budget", "", "comma-separated name=N maximum allocs/op, used with -go-bench")
	flag.Parse()

	if *goBench != "" {
		os.Exit(runAllocGate(*goBench, *allocBudget))
	}

	next, err := load(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench-trend: current report: %v\n", err)
		os.Exit(1)
	}
	prev, err := load(*oldPath)
	if err != nil {
		// No baseline: the first run seeds the trajectory.
		fmt.Printf("bench-trend: no baseline (%v) — seeding with %d experiments, %.2fs total\n",
			err, len(next.Experiments), next.TotalSeconds)
		return
	}

	regs := compare(prev, next, *maxRegress, *minSeconds)
	for _, e := range next.Experiments {
		fmt.Printf("bench-trend: %-12s %.4fs\n", e.Name, e.Seconds)
	}
	if len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "bench-trend: %d experiment(s) regressed more than %.0f%%:\n", len(regs), *maxRegress*100)
		for _, r := range regs {
			fmt.Fprintf(os.Stderr, "  %s\n", r)
		}
		os.Exit(1)
	}
	fmt.Printf("bench-trend: no regression beyond %.0f%% against baseline (total %.2fs -> %.2fs)\n",
		*maxRegress*100, prev.TotalSeconds, next.TotalSeconds)
}
