// Command bench-trend gates CI on the perf trajectory: it compares the
// current BENCH_ci.json (cmd/poseidon-bench -json) against the previous
// baseline downloaded from the last successful main run and fails when
// any shared experiment regressed by more than -max-regress.
//
//	bench-trend -old prev/BENCH_ci.json -new BENCH_ci.json -max-regress 0.20
//
// A missing baseline is not an error — the first run on a branch seeds
// the trajectory — and experiments faster than -min-seconds in the
// baseline are skipped, because shared-runner timing noise on
// millisecond-scale experiments would make a ratio gate flap.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// report mirrors the BENCH_ci.json schema (cmd/poseidon-bench).
type report struct {
	TotalSeconds float64  `json:"total_seconds"`
	Experiments  []record `json:"experiments"`
}

type record struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
}

// regression describes one experiment that got slower than allowed.
type regression struct {
	Name     string
	Old, New float64
}

func (r regression) String() string {
	return fmt.Sprintf("%s: %.4fs -> %.4fs (+%.1f%%)", r.Name, r.Old, r.New, (r.New/r.Old-1)*100)
}

// compare returns the experiments in next that regressed by more than
// maxRegress relative to prev, skipping baselines below minSeconds
// (noise floor) and experiments not present in both reports.
func compare(prev, next report, maxRegress, minSeconds float64) []regression {
	base := make(map[string]float64, len(prev.Experiments))
	for _, e := range prev.Experiments {
		base[e.Name] = e.Seconds
	}
	var regs []regression
	for _, e := range next.Experiments {
		old, ok := base[e.Name]
		if !ok || old < minSeconds {
			continue
		}
		if e.Seconds > old*(1+maxRegress) {
			regs = append(regs, regression{Name: e.Name, Old: old, New: e.Seconds})
		}
	}
	return regs
}

func load(path string) (report, error) {
	var r report
	b, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	return r, json.Unmarshal(b, &r)
}

func main() {
	oldPath := flag.String("old", "", "baseline BENCH_ci.json (previous main run)")
	newPath := flag.String("new", "BENCH_ci.json", "current BENCH_ci.json")
	maxRegress := flag.Float64("max-regress", 0.20, "failure threshold as a fraction (0.20 = +20%)")
	minSeconds := flag.Float64("min-seconds", 0.01, "skip experiments whose baseline is below this (timing-noise floor)")
	flag.Parse()

	next, err := load(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench-trend: current report: %v\n", err)
		os.Exit(1)
	}
	prev, err := load(*oldPath)
	if err != nil {
		// No baseline: the first run seeds the trajectory.
		fmt.Printf("bench-trend: no baseline (%v) — seeding with %d experiments, %.2fs total\n",
			err, len(next.Experiments), next.TotalSeconds)
		return
	}

	regs := compare(prev, next, *maxRegress, *minSeconds)
	for _, e := range next.Experiments {
		fmt.Printf("bench-trend: %-12s %.4fs\n", e.Name, e.Seconds)
	}
	if len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "bench-trend: %d experiment(s) regressed more than %.0f%%:\n", len(regs), *maxRegress*100)
		for _, r := range regs {
			fmt.Fprintf(os.Stderr, "  %s\n", r)
		}
		os.Exit(1)
	}
	fmt.Printf("bench-trend: no regression beyond %.0f%% against baseline (total %.2fs -> %.2fs)\n",
		*maxRegress*100, prev.TotalSeconds, next.TotalSeconds)
}
