package main

import "testing"

func rep(pairs ...any) report {
	var r report
	for i := 0; i < len(pairs); i += 2 {
		r.Experiments = append(r.Experiments, record{
			Name:    pairs[i].(string),
			Seconds: pairs[i+1].(float64),
		})
	}
	return r
}

func TestCompareFlagsOnlyRealRegressions(t *testing.T) {
	prev := rep("table1", 1.0, "fig10", 2.0, "tiny", 0.001, "gone", 3.0)
	next := rep("table1", 1.15, "fig10", 2.5, "tiny", 1.0, "new", 9.0)
	regs := compare(prev, next, 0.20, 0.01)
	// table1 +15% passes; fig10 +25% fails; tiny is under the noise
	// floor; gone/new are not shared.
	if len(regs) != 1 || regs[0].Name != "fig10" {
		t.Fatalf("regressions = %v, want exactly fig10", regs)
	}
}

func TestCompareBoundary(t *testing.T) {
	prev := rep("a", 1.0)
	if regs := compare(prev, rep("a", 1.2), 0.20, 0.01); len(regs) != 0 {
		t.Fatalf("exactly +20%% must pass, got %v", regs)
	}
	if regs := compare(prev, rep("a", 1.21), 0.20, 0.01); len(regs) != 1 {
		t.Fatalf("+21%% must fail, got %v", regs)
	}
}
