package main

import (
	"bufio"
	"strings"
	"testing"
)

func rep(pairs ...any) report {
	var r report
	for i := 0; i < len(pairs); i += 2 {
		r.Experiments = append(r.Experiments, record{
			Name:    pairs[i].(string),
			Seconds: pairs[i+1].(float64),
		})
	}
	return r
}

func TestCompareFlagsOnlyRealRegressions(t *testing.T) {
	prev := rep("table1", 1.0, "fig10", 2.0, "tiny", 0.001, "gone", 3.0)
	next := rep("table1", 1.15, "fig10", 2.5, "tiny", 1.0, "new", 9.0)
	regs := compare(prev, next, 0.20, 0.01)
	// table1 +15% passes; fig10 +25% fails; tiny is under the noise
	// floor; gone/new are not shared.
	if len(regs) != 1 || regs[0].Name != "fig10" {
		t.Fatalf("regressions = %v, want exactly fig10", regs)
	}
}

func TestCompareBoundary(t *testing.T) {
	prev := rep("a", 1.0)
	if regs := compare(prev, rep("a", 1.2), 0.20, 0.01); len(regs) != 0 {
		t.Fatalf("exactly +20%% must pass, got %v", regs)
	}
	if regs := compare(prev, rep("a", 1.21), 0.20, 0.01); len(regs) != 1 {
		t.Fatalf("+21%% must fail, got %v", regs)
	}
}

const sampleBenchOut = `goos: linux
goarch: amd64
pkg: repro/internal/comm
BenchmarkWirePathAlloc-8            	       3	   1080288 ns/op	        61.67 msg/iter	       9 allocs/op
BenchmarkWirePathAlloc-8            	       3	   1100000 ns/op	        61.67 msg/iter	      11 allocs/op
BenchmarkSendBatchTCP-8             	       3	    500000 ns/op	    1164 MB/s	        21.00 copiedB/frame	       1 allocs/op
BenchmarkSendBatchSHM-8             	       3	    250000 ns/op	    2910 MB/s	      4117.00 copiedB/frame	       0 allocs/op
BenchmarkNoAllocsReported-8         	       3	    500000 ns/op
BenchmarkPredictMicroBatch-8        	     300	   1103846 ns/op	         1.37 p99-ms	       0 allocs/op
BenchmarkRingAllReduce-8            	      50	   5996364 ns/op	     699.47 MB/s	   7342832 egressB/op	       5 allocs/op
BenchmarkPSFatFC-8                  	      50	   5551529 ns/op	     755.52 MB/s	   7362432 egressB/op	      95 allocs/op
PASS
`

func TestParseGoBenchAllocs(t *testing.T) {
	got, err := parseGoBenchAllocs(bufio.NewScanner(strings.NewReader(sampleBenchOut)))
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate runs keep the worst reading; lines without allocs/op
	// are ignored.
	if got["BenchmarkWirePathAlloc"] != 11 || got["BenchmarkSendBatchTCP"] != 1 {
		t.Fatalf("parsed %v", got)
	}
	if _, ok := got["BenchmarkNoAllocsReported"]; ok {
		t.Fatalf("benchmark without allocs/op should be absent: %v", got)
	}
}

func TestGateAllocs(t *testing.T) {
	measured := map[string]int64{"BenchmarkWirePathAlloc": 11}
	if bad := gateAllocs(measured, map[string]int64{"BenchmarkWirePathAlloc": 16}); len(bad) != 0 {
		t.Fatalf("under budget flagged: %v", bad)
	}
	if bad := gateAllocs(measured, map[string]int64{"BenchmarkWirePathAlloc": 10}); len(bad) != 1 {
		t.Fatalf("over budget not flagged: %v", bad)
	}
	// A missing benchmark is a failure — a rename must not disarm the
	// gate silently.
	if bad := gateAllocs(measured, map[string]int64{"BenchmarkGone": 5}); len(bad) != 1 {
		t.Fatalf("missing benchmark not flagged: %v", bad)
	}
}

func TestParseGoBenchMetrics(t *testing.T) {
	got, err := parseGoBenchMetrics(bufio.NewScanner(strings.NewReader(sampleBenchOut)))
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate runs keep the full spread per unit; the -GOMAXPROCS
	// suffix is stripped from the name.
	wp := got["BenchmarkWirePathAlloc"]
	if wp["allocs/op"].Min != 9 || wp["allocs/op"].Max != 11 {
		t.Fatalf("allocs/op spread = %+v", wp["allocs/op"])
	}
	if got["BenchmarkSendBatchTCP"]["MB/s"].Max != 1164 {
		t.Fatalf("MB/s = %+v", got["BenchmarkSendBatchTCP"]["MB/s"])
	}
	if got["BenchmarkSendBatchTCP"]["copiedB/frame"].Max != 21 {
		t.Fatalf("copiedB/frame = %+v", got["BenchmarkSendBatchTCP"]["copiedB/frame"])
	}
	if m := got["BenchmarkNoAllocsReported"]; len(m) != 1 || m["ns/op"].Max != 500000 {
		t.Fatalf("ns/op-only benchmark parsed as %v", m)
	}
}

func TestGateCopies(t *testing.T) {
	metrics, err := parseGoBenchMetrics(bufio.NewScanner(strings.NewReader(sampleBenchOut)))
	if err != nil {
		t.Fatal(err)
	}
	if bad := gateCopies(metrics, map[string]float64{"BenchmarkSendBatchTCP": 32}); len(bad) != 0 {
		t.Fatalf("under budget flagged: %v", bad)
	}
	if bad := gateCopies(metrics, map[string]float64{"BenchmarkSendBatchTCP": 20.5}); len(bad) != 1 {
		t.Fatalf("over budget not flagged: %v", bad)
	}
	// A budgeted benchmark missing the metric must fail, not pass
	// vacuously.
	if bad := gateCopies(metrics, map[string]float64{"BenchmarkNoAllocsReported": 32}); len(bad) != 1 {
		t.Fatalf("missing metric not flagged: %v", bad)
	}
	if bad := gateCopies(metrics, map[string]float64{"BenchmarkGone": 32}); len(bad) != 1 {
		t.Fatalf("missing benchmark not flagged: %v", bad)
	}
}

func TestGateP99(t *testing.T) {
	metrics, err := parseGoBenchMetrics(bufio.NewScanner(strings.NewReader(sampleBenchOut)))
	if err != nil {
		t.Fatal(err)
	}
	if bad := gateP99(metrics, map[string]float64{"BenchmarkPredictMicroBatch": 25}); len(bad) != 0 {
		t.Fatalf("under budget flagged: %v", bad)
	}
	if bad := gateP99(metrics, map[string]float64{"BenchmarkPredictMicroBatch": 1.0}); len(bad) != 1 {
		t.Fatalf("over budget not flagged: %v", bad)
	}
	// A budgeted benchmark missing the metric must fail, not pass
	// vacuously.
	if bad := gateP99(metrics, map[string]float64{"BenchmarkNoAllocsReported": 25}); len(bad) != 1 {
		t.Fatalf("missing metric not flagged: %v", bad)
	}
	if bad := gateP99(metrics, map[string]float64{"BenchmarkGone": 25}); len(bad) != 1 {
		t.Fatalf("missing benchmark not flagged: %v", bad)
	}
	if _, err := parseP99Budgets("BenchmarkPredictMicroBatch=0"); err == nil {
		t.Fatal("zero-millisecond budget accepted")
	}
}

func TestParseRatioGates(t *testing.T) {
	gates, err := parseRatioGates("BenchmarkSendBatchSHM/BenchmarkSendBatchTCP>=2.0")
	if err != nil || len(gates) != 1 {
		t.Fatalf("parsed %v, %v", gates, err)
	}
	g := gates[0]
	if g.Num != "BenchmarkSendBatchSHM" || g.Den != "BenchmarkSendBatchTCP" || g.Min != 2.0 {
		t.Fatalf("gate = %+v", g)
	}
	for _, bad := range []string{"nonsense", "a/b>=x", "ab>=2", "/b>=2", "a/>=2", "a/b>=0"} {
		if _, err := parseRatioGates(bad); err == nil {
			t.Fatalf("%q accepted", bad)
		}
	}
}

func TestGateRatios(t *testing.T) {
	metrics, err := parseGoBenchMetrics(bufio.NewScanner(strings.NewReader(sampleBenchOut)))
	if err != nil {
		t.Fatal(err)
	}
	shmOverTCP := func(min float64) []ratioGate {
		return []ratioGate{{Num: "BenchmarkSendBatchSHM", Den: "BenchmarkSendBatchTCP", Min: min}}
	}
	// 2910/1164 = 2.5: passes >=2.0, fails >=3.0.
	if bad := gateRatios(metrics, shmOverTCP(2.0)); len(bad) != 0 {
		t.Fatalf("passing ratio flagged: %v", bad)
	}
	if bad := gateRatios(metrics, shmOverTCP(3.0)); len(bad) != 1 {
		t.Fatalf("failing ratio not flagged: %v", bad)
	}
	// Either side missing its MB/s reading fails the gate.
	if bad := gateRatios(metrics, []ratioGate{{Num: "BenchmarkGone", Den: "BenchmarkSendBatchTCP", Min: 2.0}}); len(bad) != 1 {
		t.Fatalf("missing numerator not flagged: %v", bad)
	}
	if bad := gateRatios(metrics, []ratioGate{{Num: "BenchmarkSendBatchSHM", Den: "BenchmarkNoAllocsReported", Min: 2.0}}); len(bad) != 1 {
		t.Fatalf("missing denominator not flagged: %v", bad)
	}
}

func TestParseByteRatioGates(t *testing.T) {
	gates, err := parseByteRatioGates("BenchmarkRingAllReduce/BenchmarkPSFatFC<=1.0")
	if err != nil || len(gates) != 1 {
		t.Fatalf("parsed %v, %v", gates, err)
	}
	g := gates[0]
	if g.Num != "BenchmarkRingAllReduce" || g.Den != "BenchmarkPSFatFC" || g.Max != 1.0 {
		t.Fatalf("gate = %+v", g)
	}
	for _, bad := range []string{"nonsense", "a/b<=x", "ab<=2", "/b<=2", "a/<=2", "a/b<=0", "a/b>=1"} {
		if _, err := parseByteRatioGates(bad); err == nil {
			t.Fatalf("%q accepted", bad)
		}
	}
}

func TestParseFloorGates(t *testing.T) {
	gates, err := parseFloorGates("BenchmarkSnapshotFanout>=50")
	if err != nil || len(gates) != 1 {
		t.Fatalf("parsed %v, %v", gates, err)
	}
	g := gates[0]
	if g.Name != "BenchmarkSnapshotFanout" || g.Min != 50 {
		t.Fatalf("gate = %+v", g)
	}
	for _, bad := range []string{"nonsense", "a>=x", ">=2", "a>=0", "a<=2"} {
		if _, err := parseFloorGates(bad); err == nil {
			t.Fatalf("%q accepted", bad)
		}
	}
}

func TestGateFloors(t *testing.T) {
	metrics, err := parseGoBenchMetrics(bufio.NewScanner(strings.NewReader(sampleBenchOut)))
	if err != nil {
		t.Fatal(err)
	}
	// BenchmarkSendBatchSHM measured 2910 MB/s: passes >=2000, fails >=3000.
	if bad := gateFloors(metrics, []floorGate{{Name: "BenchmarkSendBatchSHM", Min: 2000}}); len(bad) != 0 {
		t.Fatalf("passing floor flagged: %v", bad)
	}
	if bad := gateFloors(metrics, []floorGate{{Name: "BenchmarkSendBatchSHM", Min: 3000}}); len(bad) != 1 {
		t.Fatalf("failing floor not flagged: %v", bad)
	}
	// A gated benchmark missing its MB/s reading fails, not passes.
	if bad := gateFloors(metrics, []floorGate{{Name: "BenchmarkNoAllocsReported", Min: 50}}); len(bad) != 1 {
		t.Fatalf("missing metric not flagged: %v", bad)
	}
	if bad := gateFloors(metrics, []floorGate{{Name: "BenchmarkGone", Min: 50}}); len(bad) != 1 {
		t.Fatalf("missing benchmark not flagged: %v", bad)
	}
}

func TestGateByteRatios(t *testing.T) {
	metrics, err := parseGoBenchMetrics(bufio.NewScanner(strings.NewReader(sampleBenchOut)))
	if err != nil {
		t.Fatal(err)
	}
	ringOverPS := func(max float64) []byteRatioGate {
		return []byteRatioGate{{Num: "BenchmarkRingAllReduce", Den: "BenchmarkPSFatFC", Max: max}}
	}
	// 7342832/7362432 = 0.9973: passes <=1.0, fails <=0.99.
	if bad := gateByteRatios(metrics, ringOverPS(1.0)); len(bad) != 0 {
		t.Fatalf("passing ratio flagged: %v", bad)
	}
	if bad := gateByteRatios(metrics, ringOverPS(0.99)); len(bad) != 1 {
		t.Fatalf("failing ratio not flagged: %v", bad)
	}
	// Either side missing its egressB/op reading fails the gate.
	if bad := gateByteRatios(metrics, []byteRatioGate{{Num: "BenchmarkGone", Den: "BenchmarkPSFatFC", Max: 1.0}}); len(bad) != 1 {
		t.Fatalf("missing numerator not flagged: %v", bad)
	}
	if bad := gateByteRatios(metrics, []byteRatioGate{{Num: "BenchmarkRingAllReduce", Den: "BenchmarkNoAllocsReported", Max: 1.0}}); len(bad) != 1 {
		t.Fatalf("missing denominator not flagged: %v", bad)
	}
}

func TestParseCopyBudgets(t *testing.T) {
	b, err := parseCopyBudgets("BenchmarkSendBatchTCP=32, BenchmarkSendBatchWritev=21.5")
	if err != nil || b["BenchmarkSendBatchTCP"] != 32 || b["BenchmarkSendBatchWritev"] != 21.5 {
		t.Fatalf("parsed %v, %v", b, err)
	}
	for _, bad := range []string{"nonsense", "a=x", "a=-1"} {
		if _, err := parseCopyBudgets(bad); err == nil {
			t.Fatalf("%q accepted", bad)
		}
	}
}

func TestParseAllocBudgets(t *testing.T) {
	b, err := parseAllocBudgets("BenchmarkWirePathAlloc=16, BenchmarkSendBatchTCP=2")
	if err != nil || b["BenchmarkWirePathAlloc"] != 16 || b["BenchmarkSendBatchTCP"] != 2 {
		t.Fatalf("parsed %v, %v", b, err)
	}
	for _, bad := range []string{"nonsense", "a=x", "a=-1"} {
		if _, err := parseAllocBudgets(bad); err == nil {
			t.Fatalf("%q accepted", bad)
		}
	}
}
