package e2e

import (
	"fmt"
	"math"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

// TestReplanAdaptsToMeasuredBandwidth is the acceptance scenario for
// measured-bandwidth re-planning on a live 3-process TCP cluster: the
// run is seeded with a deliberately absurd -bw claim (1 GB/s — under
// the bandwidth-aware cost model the per-frame overhead then dominates
// and the fat FC tensor starts on the PS), the cluster measures its
// real wire rate over epoch 1 and re-plans at the iteration-6 barrier.
// It must (a) flip ≥1 route off the PS (onto SFB or ring, whichever the
// measured rate favors), recorded in every worker's METRICS
// JSON, (b) keep loss parity to 1e-5 against the identical run with
// replanning disabled, (c) keep byte-identical final replicas, and
// (d) move strictly fewer egress bytes than the static run.
func TestReplanAdaptsToMeasuredBandwidth(t *testing.T) {
	bin := buildBinaries(t)
	const workers, iters = 3, 18
	const seed = 42

	runCluster := func(extra ...string) string {
		t.Helper()
		args := []string{
			"-worker", filepath.Join(bin, "poseidon-worker"),
			// Batch 4 keeps SFB's K·(M+N) factor payload under the ring
			// collective's M·N/P segments for the fat FC, so the measured
			// flip lands on SFB (a real wire saving — ring's dense segments
			// tie the sharded PS on data bytes and cannot save measured
			// egress) while the conv layers flip to ring on the slow link.
			"-n", fmt.Sprint(workers), "-iters", fmt.Sprint(iters),
			"-batch", "4", "-lr", "0.1", "-seed", fmt.Sprint(seed),
			"-autoplan", "-metrics-dump", "-dump-losses", "-print-every", "0",
			"-timeout", "3m",
			// The wrong claim: 1 GB/s. With a 20 µs frame overhead the
			// PS's single push beats SFB's P−1 factor frames at that
			// speed, so Algorithm 1 mis-routes the FC weight onto the PS
			// until measurement corrects the estimate (real loopback
			// epochs move a few MB/s effective — far under the ~56 MB/s
			// crossover).
			"-bw", "1e9", "-frame-overhead", "2e-5",
		}
		args = append(args, extra...)
		out, err := exec.Command(filepath.Join(bin, "poseidon-cluster"), args...).CombinedOutput()
		if err != nil {
			t.Fatalf("cluster run %v: %v\n%s", extra, err, out)
		}
		return string(out)
	}

	staticOut := runCluster()
	replanOut := runCluster("-replan-every", "6", "-replan-alpha", "1")

	// The wrong claim must actually mis-route: the static plan keeps
	// every tensor on the PS (no SFB anywhere), which is what makes the
	// byte comparison below meaningful.
	if regexp.MustCompile(`route=SFB`).MatchString(staticOut) {
		t.Fatalf("static run still chose SFB despite the 1 GB/s claim — the scenario tests nothing\n%s", staticOut)
	}

	staticSnaps := parseMetrics(t, staticOut, workers)
	replanSnaps := parseMetrics(t, replanOut, workers)

	// (a) ≥1 flip off the mis-planned PS at the epoch-1 barrier,
	// identically on every worker. The destination depends on the
	// measured rate: SFB and ring both beat the PS's full-matrix push,
	// and which of the two wins varies with the wire speed the epoch
	// actually saw.
	for id := 0; id < workers; id++ {
		if len(staticSnaps[id].ReplanEvents) != 0 {
			t.Fatalf("worker %d: static run logged replan events: %+v", id, staticSnaps[id].ReplanEvents)
		}
		events := replanSnaps[id].ReplanEvents
		if len(events) < 1 {
			t.Fatalf("worker %d: no replan events despite the wrong bandwidth claim (estimate %g B/s)\n%s",
				id, replanSnaps[0].BWEstimateBPS, replanOut)
		}
		flipped := false
		for _, e := range events {
			if e.From == "PS" && (e.To == "SFB" || e.To == "ring") && e.Iter == 6 {
				flipped = true
			}
		}
		if !flipped {
			t.Fatalf("worker %d: no PS→SFB/ring flip at the epoch-1 barrier: %+v", id, events)
		}
		if fmt.Sprint(events) != fmt.Sprint(replanSnaps[0].ReplanEvents) {
			t.Fatalf("workers disagree on replan events:\nw0: %+v\nw%d: %+v",
				replanSnaps[0].ReplanEvents, id, events)
		}
	}
	// Only the leader folds observations; its estimate must reflect the
	// measured (slow) reality, not the 1 GB/s claim.
	if est := replanSnaps[0].BWEstimateBPS; est <= 0 || est >= 500e6 {
		t.Fatalf("worker 0 bandwidth estimate %g B/s not corrected from the 1 GB/s claim", est)
	}

	// (b) Loss parity to 1e-5: re-routing changes which wires carry the
	// update, not the update itself — but a flipped route sums partial
	// gradients in a different order, so a few ULPs of reassociation
	// drift per flipped tensor is expected. Which barrier the small
	// tensors flip at depends on the wall-clock rate the epoch measured
	// (a loaded CI box lands some flips at iteration 12, not 6), and
	// late flips drift up to ~1.5e-6 for an iteration or two. 1e-5
	// absorbs that while staying far below any real routing bug, which
	// the digest check below would also catch.
	for id := 0; id < workers; id++ {
		staticLosses := parseLosses(t, staticOut, id, iters)
		replanLosses := parseLosses(t, replanOut, id, iters)
		for i := range staticLosses {
			if d := math.Abs(staticLosses[i] - replanLosses[i]); d > 1e-5 {
				t.Fatalf("worker %d iter %d: replanned loss %.12g vs static %.12g (|d|=%g > 1e-5)",
					id, i, replanLosses[i], staticLosses[i], d)
			}
		}
	}

	// (c) Byte-identical replicas within the replanned run: the swap
	// executed at the same clock-stamped barrier everywhere.
	for _, out := range []string{staticOut, replanOut} {
		digests := regexp.MustCompile(`\[w\d+\] PARAMS ([0-9a-f]{16})`).FindAllStringSubmatch(out, -1)
		if len(digests) != workers {
			t.Fatalf("found %d PARAMS digests, want %d\n%s", len(digests), workers, out)
		}
		for _, d := range digests[1:] {
			if d[1] != digests[0][1] {
				t.Fatalf("replicas diverged: digests %v", digests)
			}
		}
	}

	// (d) The corrected plan moves strictly fewer egress bytes than the
	// mis-planned static run.
	var staticBytes, replanBytes int64
	for id := 0; id < workers; id++ {
		staticBytes += staticSnaps[id].Totals.BytesSent
		replanBytes += replanSnaps[id].Totals.BytesSent
	}
	t.Logf("cluster egress: replanned %d B vs static mis-plan %d B (estimate %.2f MB/s)",
		replanBytes, staticBytes, replanSnaps[0].BWEstimateBPS/1e6)
	if replanBytes >= staticBytes {
		t.Fatalf("replanned run moved %d bytes, static mis-plan %d — re-routing must save wire traffic",
			replanBytes, staticBytes)
	}
}

// TestBadRouteOverrideFailsBeforeMesh pins the fail-fast contract: a
// -route override naming a parameter the model does not have must exit
// non-zero, naming the bad override, *without* dialing the mesh — the
// second peer below never exists, so surviving the validation would
// mean hanging in mesh formation until the setup timeout.
func TestBadRouteOverrideFailsBeforeMesh(t *testing.T) {
	bin := buildBinaries(t)
	addrs := freeAddrs(t, 2)

	for _, tc := range []struct {
		name, route, want string
	}{
		{"out-of-range index", "99=ps", "99"},
		{"unknown scheme", "0=warp", "warp"},
		{"infeasible scheme", "1=sfb", "conv1.b"}, // param 1 is a bias vector
	} {
		t.Run(tc.name, func(t *testing.T) {
			start := time.Now()
			out, err := exec.Command(filepath.Join(bin, "poseidon-worker"),
				"-id", "0", "-peers", strings.Join(addrs, ","),
				"-iters", "1", "-route", tc.route).CombinedOutput()
			if err == nil {
				t.Fatalf("worker accepted -route %s:\n%s", tc.route, out)
			}
			if took := time.Since(start); took > 10*time.Second {
				t.Fatalf("rejection took %v — the worker dialed the mesh before validating", took)
			}
			if !strings.Contains(string(out), tc.want) {
				t.Fatalf("error does not name the bad override (want %q):\n%s", tc.want, out)
			}
		})
	}
}
