package e2e

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"math/rand"
	"testing"

	"repro/internal/data"
	"repro/internal/nn/autodiff"
	"repro/internal/tensor"
	"repro/poseidon"
)

// TestRingCollectiveBeatsPSAndSFB is the acceptance scenario for the
// ring all-reduce as a first-class Algorithm 1 route: an 8-worker
// in-process cluster trains a fat-FC MLP on a modeled 1 MB/s link,
// where the bandwidth-aware planner must route the 512×256 weight over
// the ring on its own (no override). The shape and batch are chosen so
// the ring wins *measured*, not just modeled, egress against both
// alternatives:
//
//   - vs the chunked PS: dense all-reduce data bytes tie exactly by
//     conservation (each worker moves 2·M·N·(P−1)/P values either way),
//     so the ring's strict win is frame-header economy — 2(P−1)=14
//     frames per worker against the PS's 112 chunk frames (C=64 chunks,
//     push ·7/8 non-loopback + owned-shard broadcast ·7).
//   - vs SFB: batch 48 puts the factor payload K(M+N)=36864 values per
//     peer well above the ring's M·N/P segments (needs K > 42.7 on this
//     shape).
//
// The run must agree with the PS- and SFB-pinned twins on every
// per-iteration loss to 1e-6, keep all eight replicas byte-identical,
// and move strictly fewer cluster egress bytes than either.
func TestRingCollectiveBeatsPSAndSFB(t *testing.T) {
	const (
		workers = 8
		iters   = 12
		batch   = 48
		seed    = 7
	)

	trainSet := data.Synthetic(seed, 1536, 10, 4, 8, 8, 0.35)
	build := func(override map[int]poseidon.Scheme) *poseidon.Session {
		t.Helper()
		b := poseidon.NewSession().
			InProcess(workers).
			Iterations(iters).Batch(batch).LearningRate(0.1).Seed(seed).
			Model(func(rng *rand.Rand) *autodiff.Network {
				return autodiff.MLPNet(256, []int{512}, 10, rng)
			}).
			Data(trainSet, nil).
			// The modeled slow link that admits the ring: at 1 MB/s the
			// fat FC's byte saving (65.5 ms/iter vs the PS push) dwarfs
			// the 13 extra frame overheads (13 ms), while the thin
			// classifier and biases stay on the PS.
			Bandwidth(1e6).
			// 64 chunks for the 512×256 tensor on the PS route — the
			// sharded-deployment shape the frame-economy claim is made
			// against.
			ChunkElems(2048).
			Overlap(true).
			CollectMetrics()
		for idx, s := range override {
			b.RouteOverride(idx, s)
		}
		sess, err := b.Build()
		if err != nil {
			t.Fatalf("session (override %v): %v", override, err)
		}
		return sess
	}

	// The autoplan must select the ring for the fat FC weight by cost
	// comparison alone, and the PS for everything else (the 10×512
	// classifier's ring saving is 2.6 ms — under its 13 ms of extra
	// frames).
	auto := build(nil)
	plan, err := auto.Plan()
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	if plan[0].Spec.Name != "fc0.W" || plan[0].Scheme != poseidon.SchemeRing {
		t.Fatalf("autoplan routed %s over %v, want fc0.W over ring\nfull plan: %+v",
			plan[0].Spec.Name, plan[0].Scheme, plan)
	}
	for _, d := range plan[1:] {
		if d.Scheme != poseidon.SchemePS {
			t.Fatalf("autoplan routed %s over %v, want PS", d.Spec.Name, d.Scheme)
		}
	}

	runs := []struct {
		name string
		sess *poseidon.Session
	}{
		{"ring-autoplan", auto},
		{"ps-pinned", build(map[int]poseidon.Scheme{0: poseidon.SchemePS})},
		{"sfb-pinned", build(map[int]poseidon.Scheme{0: poseidon.SchemeSFB})},
	}
	results := make([][]*poseidon.Result, len(runs))
	egress := make([]int64, len(runs))
	for i, r := range runs {
		res, err := r.sess.RunAll()
		if err != nil {
			t.Fatalf("%s: %v", r.name, err)
		}
		if len(res) != workers {
			t.Fatalf("%s: %d results, want %d", r.name, len(res), workers)
		}
		results[i] = res

		snap, ok := r.sess.MetricsSnapshot()
		if !ok {
			t.Fatalf("%s: no metrics", r.name)
		}
		// The shared in-process registry meters every worker, so the
		// totals are cluster-wide egress.
		egress[i] = snap.Totals.BytesSent

		// Route attribution: every router's entry for param 0 must carry
		// the run's scheme label, with real traffic counted against it.
		wantRoute := map[string]string{
			"ring-autoplan": "ring", "ps-pinned": "PS", "sfb-pinned": "SFB",
		}[r.name]
		seen := 0
		for _, p := range snap.Params {
			if p.Index != 0 {
				continue
			}
			seen++
			if p.Route != wantRoute {
				t.Fatalf("%s: param 0 metered under route %q, want %q", r.name, p.Route, wantRoute)
			}
			if p.BytesSent <= 0 {
				t.Fatalf("%s: param 0 metered zero egress on route %q", r.name, p.Route)
			}
		}
		if seen != workers {
			t.Fatalf("%s: %d metered entries for param 0, want %d", r.name, seen, workers)
		}
	}

	// Loss parity to 1e-6 per worker per iteration: the collective
	// changes which wires carry the update, never the update itself.
	for i, r := range runs[1:] {
		for id := 0; id < workers; id++ {
			ref, got := results[0][id].Curve, results[i+1][id].Curve
			if len(ref) != iters || len(got) != iters {
				t.Fatalf("%s worker %d: curve lengths %d/%d, want %d", r.name, id, len(ref), len(got), iters)
			}
			for k := range ref {
				if d := math.Abs(ref[k].TrainLoss - got[k].TrainLoss); d > 1e-6 {
					t.Fatalf("worker %d iter %d: ring loss %.12g vs %s %.12g (|d|=%g > 1e-6)",
						id, k, ref[k].TrainLoss, r.name, got[k].TrainLoss, d)
				}
			}
		}
	}

	// Byte-identical replicas within each run: the rank-ordered segment
	// fold makes the ring as deterministic as the PS shard.
	for i, r := range runs {
		d0 := replicaDigest(results[i][0].Final.Params())
		for id := 1; id < workers; id++ {
			if d := replicaDigest(results[i][id].Final.Params()); d != d0 {
				t.Fatalf("%s: worker %d replica digest %016x != worker 0's %016x", r.name, id, d, d0)
			}
		}
	}

	// The headline claim: strictly fewer cluster egress bytes than both
	// pinned alternatives.
	t.Logf("cluster egress: ring %d B vs PS %d B vs SFB %d B", egress[0], egress[1], egress[2])
	if egress[0] >= egress[1] {
		t.Fatalf("ring moved %d bytes, chunked PS %d — the collective must save wire traffic", egress[0], egress[1])
	}
	if egress[0] >= egress[2] {
		t.Fatalf("ring moved %d bytes, SFB %d — batch 48 factors must outweigh ring segments", egress[0], egress[2])
	}
}

// replicaDigest is FNV-1a over the bit patterns of every parameter
// value in order — byte-equality of replicas, compressed to 64 bits
// (the same digest cmd/poseidon-worker prints as PARAMS).
func replicaDigest(params []*tensor.Matrix) uint64 {
	h := fnv.New64a()
	var b [4]byte
	for _, p := range params {
		for _, v := range p.Data {
			binary.LittleEndian.PutUint32(b[:], math.Float32bits(v))
			h.Write(b[:])
		}
	}
	return h.Sum64()
}
