// Serving-plane e2e: poseidon-serve joins a real 3-process TCP mesh as
// rank 0, trains alongside two plain poseidon-workers, and answers
// inference traffic from two tenants the whole time. The test demands
// the full contract at once: predictions during training, per-tenant
// rate limiting (the greedy tenant sees 429s, the paced one never
// does), a bounded client-observed p99, a SIGTERM drain that completes
// every admitted request — including ones parked in an open micro-batch
// window — and a final snapshot whose decoded parameters reproduce the
// served probabilities bit for bit.
package e2e

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/cliflags"
	"repro/internal/nn/autodiff"
	"repro/internal/tensor"
	"repro/poseidon"
)

type predictReply struct {
	Model struct {
		Iter  int `json:"iter"`
		Epoch int `json:"epoch"`
	} `json:"model"`
	Predictions []struct {
		Label int       `json:"label"`
		Probs []float32 `json:"probs"`
	} `json:"predictions"`
}

// predictOnce posts instances under a tenant and decodes the reply.
// The returned status is always valid; the reply only on 200.
func predictOnce(client *http.Client, base, tenant string, body []byte) (int, *predictReply, error) {
	req, err := http.NewRequest("POST", base+"/v1/predict", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		if resp.StatusCode == http.StatusTooManyRequests && resp.Header.Get("Retry-After") == "" {
			return 0, nil, fmt.Errorf("429 without Retry-After")
		}
		return resp.StatusCode, nil, nil
	}
	var pr predictReply
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		return 0, nil, err
	}
	return http.StatusOK, &pr, nil
}

func TestServeUnderLoadDuringTraining(t *testing.T) {
	bin := buildBinaries(t)
	const workers, iters = 3, 120
	const seed = 42
	addrs := freeAddrs(t, workers)
	peers := strings.Join(addrs, ",")
	finalPath := filepath.Join(t.TempDir(), "final.psn")

	trainArgs := []string{
		"-peers", peers, "-iters", fmt.Sprint(iters),
		"-batch", "8", "-lr", "0.1", "-mode", "ps", "-seed", fmt.Sprint(seed),
		"-print-every", "0",
	}
	serveOut := &lineBuffer{}
	serveCmd := exec.Command(filepath.Join(bin, "poseidon-serve"),
		append([]string{
			"-id", "0",
			"-listen", "127.0.0.1:0", "-snapshot-every", "10",
			"-max-batch", "16", "-max-delay", "150ms",
			"-tenant-rps", "30", "-tenant-burst", "40",
			"-final-snapshot", finalPath,
		}, trainArgs...)...)
	serveCmd.Stdout = serveOut
	serveCmd.Stderr = serveOut
	if err := serveCmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if serveCmd.Process != nil {
			serveCmd.Process.Kill()
			serveCmd.Wait()
		}
	})

	workerCmds := make([]*exec.Cmd, 0, workers-1)
	workerOuts := make([]*lineBuffer, 0, workers-1)
	for id := 1; id < workers; id++ {
		out := &lineBuffer{}
		cmd := exec.Command(filepath.Join(bin, "poseidon-worker"),
			append([]string{"-id", fmt.Sprint(id)}, trainArgs...)...)
		cmd.Stdout = out
		cmd.Stderr = out
		if err := cmd.Start(); err != nil {
			t.Fatalf("start worker %d: %v", id, err)
		}
		workerCmds = append(workerCmds, cmd)
		workerOuts = append(workerOuts, out)
	}
	t.Cleanup(func() {
		for _, cmd := range workerCmds {
			if cmd.Process != nil {
				cmd.Process.Kill()
				cmd.Wait()
			}
		}
	})

	// The gateway prints its bound address before training starts.
	listenRe := regexp.MustCompile(`SERVE listening on (\S+)`)
	deadline := time.Now().Add(60 * time.Second)
	var base string
	for base == "" {
		if m := listenRe.FindStringSubmatch(serveOut.String()); m != nil {
			base = "http://" + m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("gateway never announced its address\n%s", serveOut.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	client := &http.Client{Timeout: 30 * time.Second}

	// Until the first barrier capture the model endpoint sheds with 503;
	// its flip to 200 is the "serving while training" starting gun.
	var features, classes int
	deadline = time.Now().Add(120 * time.Second)
	for {
		resp, err := client.Get(base + "/v1/model")
		if err == nil {
			if resp.StatusCode == http.StatusOK {
				var mv struct {
					Features int `json:"features"`
					Classes  int `json:"classes"`
				}
				if err := json.NewDecoder(resp.Body).Decode(&mv); err != nil {
					t.Fatal(err)
				}
				resp.Body.Close()
				features, classes = mv.Features, mv.Classes
				break
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		if time.Now().After(deadline) {
			t.Fatalf("no snapshot became servable\n%s", serveOut.String())
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Fixed inference input, reused for the final parity check.
	rng := rand.New(rand.NewSource(99))
	x := tensor.NewMatrix(3, features)
	for i := range x.Data {
		x.Data[i] = float32(rng.NormFloat64())
	}
	body, err := json.Marshal(map[string][][]float32{"instances": instanceRows(x)})
	if err != nil {
		t.Fatal(err)
	}

	// Two tenants hammer the gateway while the mesh trains: "greedy"
	// blasts 100 concurrent requests and must hit its rate limit;
	// "paced" stays under its budget and must never see a 429.
	status, first, err := predictOnce(client, base, "paced", body)
	if err != nil || status != http.StatusOK {
		t.Fatalf("first predict: status %d, err %v", status, err)
	}
	if first.Model.Iter >= iters {
		t.Fatalf("first prediction served at iter %d — training was already over, the test raced past it", first.Model.Iter)
	}
	if len(first.Predictions) != 3 || len(first.Predictions[0].Probs) != classes {
		t.Fatalf("malformed prediction: %+v", first)
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	var greedyOK, greedyLimited, greedyOther int
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, _, err := predictOnce(client, base, "greedy", body)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err != nil || status == 0:
				greedyOther++
			case status == http.StatusOK:
				greedyOK++
			case status == http.StatusTooManyRequests:
				greedyLimited++
			default:
				greedyOther++
			}
		}()
	}
	var pacedLat []time.Duration
	pacedFail := 0
	for i := 0; i < 40; i++ {
		start := time.Now()
		status, _, err := predictOnce(client, base, "paced", body)
		if err != nil || status != http.StatusOK {
			pacedFail++
			t.Logf("paced request %d: status %d err %v", i, status, err)
		} else {
			pacedLat = append(pacedLat, time.Since(start))
		}
		time.Sleep(50 * time.Millisecond)
	}
	wg.Wait()

	if pacedFail != 0 {
		t.Fatalf("%d paced requests failed; a tenant under its budget must never be limited", pacedFail)
	}
	if greedyLimited == 0 {
		t.Fatalf("greedy tenant was never rate-limited (ok=%d other=%d)", greedyOK, greedyOther)
	}
	if greedyOK == 0 {
		t.Fatalf("greedy tenant got zero successes (limited=%d other=%d)", greedyLimited, greedyOther)
	}
	if greedyOther != 0 {
		t.Fatalf("greedy tenant saw %d non-200/429 outcomes", greedyOther)
	}
	sort.Slice(pacedLat, func(i, j int) bool { return pacedLat[i] < pacedLat[j] })
	if p99 := pacedLat[len(pacedLat)*99/100]; p99 > 10*time.Second {
		t.Fatalf("client-observed p99 %.2fs blows the (very generous) budget", p99.Seconds())
	}

	// Training must finish cleanly on all three ranks while the gateway
	// stays up.
	for i, cmd := range workerCmds {
		if err := cmd.Wait(); err != nil {
			t.Fatalf("worker %d: %v\n%s", i+1, err, workerOuts[i].String())
		}
	}
	deadline = time.Now().Add(60 * time.Second)
	for !serveOut.contains("SERVE training done") {
		if time.Now().After(deadline) {
			t.Fatalf("gateway never reported training done\n%s", serveOut.String())
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Post-training the served model is the final drain capture.
	status, ref, err := predictOnce(client, base, "paced", body)
	if err != nil || status != http.StatusOK {
		t.Fatalf("post-training predict: status %d, err %v", status, err)
	}
	if ref.Model.Iter != iters || ref.Model.Epoch != 0 {
		t.Fatalf("post-training model = iter %d epoch %d, want %d, 0", ref.Model.Iter, ref.Model.Epoch, iters)
	}

	// Park requests in an open micro-batch window (4 rows < -max-batch,
	// so they wait out -max-delay), SIGTERM mid-window, and demand every
	// admitted request completes with the final model.
	type drained struct {
		status int
		reply  *predictReply
		err    error
	}
	results := make(chan drained, 4)
	for i := 0; i < 4; i++ {
		go func() {
			status, pr, err := predictOnce(client, base, "", body)
			results <- drained{status, pr, err}
		}()
	}
	time.Sleep(75 * time.Millisecond) // admitted and parked, window still open
	if err := serveCmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		d := <-results
		if d.err != nil || d.status != http.StatusOK {
			t.Fatalf("request parked at SIGTERM was dropped: status %d, err %v\n%s", d.status, d.err, serveOut.String())
		}
		if d.reply.Model.Iter != iters {
			t.Fatalf("drained request served iter %d, want %d", d.reply.Model.Iter, iters)
		}
	}
	if err := serveCmd.Wait(); err != nil {
		t.Fatalf("poseidon-serve exited non-zero: %v\n%s", err, serveOut.String())
	}
	out := serveOut.String()
	for _, want := range []string{"SERVE draining", "SERVE final snapshot", "SERVE stopped"} {
		if !strings.Contains(out, want) {
			t.Fatalf("shutdown transcript missing %q:\n%s", want, out)
		}
	}

	// The persisted snapshot reproduces the served probabilities bit for
	// bit: decode, bind to the shared reference architecture, forward,
	// softmax — the gateway's exact serving path, one process later.
	snap, err := poseidon.ReadSnapshot(finalPath)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Iter() != iters || snap.Epoch() != 0 {
		t.Fatalf("final snapshot = iter %d epoch %d, want %d, 0", snap.Iter(), snap.Epoch(), iters)
	}
	snap.Bind(cliflags.ReferenceModel(), seed)
	logits := tensor.NewMatrix(0, 0)
	if err := snap.PredictInto(logits, x); err != nil {
		t.Fatal(err)
	}
	probs := tensor.NewMatrix(0, 0)
	autodiff.SoftmaxInto(probs, logits)
	for r, p := range ref.Predictions {
		row := probs.Data[r*probs.Cols : (r+1)*probs.Cols]
		for c, v := range p.Probs {
			if row[c] != v {
				t.Fatalf("row %d class %d: served %v, snapshot forward %v — snapshot does not reproduce the served model",
					r, c, v, row[c])
			}
		}
	}
}

// instanceRows splits a matrix into the request wire shape.
func instanceRows(x *tensor.Matrix) [][]float32 {
	rows := make([][]float32, x.Rows)
	for r := 0; r < x.Rows; r++ {
		rows[r] = x.Data[r*x.Cols : (r+1)*x.Cols]
	}
	return rows
}
