// Elastic-membership churn, end to end with real processes: a worker
// SIGKILLed mid-training must re-form the cluster at a membership
// barrier and finish with the exact trajectory of a smaller cluster
// continued from the barrier snapshot; a late joiner must be absorbed
// with every replica byte-identical. Both runs go through
// poseidon-cluster's chaos scheduler (-kill-after / -join-after), so
// the triggers land at known training iterations.
package e2e

import (
	"fmt"
	"math"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

var paramsRE = regexp.MustCompile(`\[w(\d+)\] PARAMS ([0-9a-f]{16})`)

// sameDigests asserts out carries exactly n PARAMS lines, all with the
// same digest, and returns it.
func sameDigests(t *testing.T, out string, n int) string {
	t.Helper()
	digests := paramsRE.FindAllStringSubmatch(out, -1)
	if len(digests) != n {
		t.Fatalf("found %d PARAMS digests, want %d\n%s", len(digests), n, out)
	}
	for _, d := range digests[1:] {
		if d[2] != digests[0][2] {
			t.Fatalf("replicas diverged: digests %v", digests)
		}
	}
	return digests[0][2]
}

// lossMap collects `prefix + "LOSS <iter> <loss>"` lines; unlike the
// fixed-cluster parser it tolerates holes — a churn survivor skips the
// iterations lost between the trigger and the membership barrier.
func lossMap(t *testing.T, out, prefix string) map[int]float64 {
	t.Helper()
	m := make(map[int]float64)
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, prefix+"LOSS ") {
			continue
		}
		fields := strings.Fields(strings.TrimPrefix(line, prefix+"LOSS "))
		if len(fields) != 2 {
			t.Fatalf("malformed loss line %q", line)
		}
		iter, err1 := strconv.Atoi(fields[0])
		loss, err2 := strconv.ParseFloat(fields[1], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("malformed loss line %q", line)
		}
		m[iter] = loss
	}
	return m
}

// runRefWorkers launches one raw poseidon-worker per argument set and
// waits for all of them to exit cleanly, returning each one's combined
// output.
func runRefWorkers(t *testing.T, bin string, argsets [][]string) []string {
	t.Helper()
	outs := make([]*lineBuffer, len(argsets))
	cmds := make([]*exec.Cmd, len(argsets))
	for i, args := range argsets {
		outs[i] = &lineBuffer{}
		cmds[i] = exec.Command(filepath.Join(bin, "poseidon-worker"), args...)
		cmds[i].Stdout = outs[i]
		cmds[i].Stderr = outs[i]
		if err := cmds[i].Start(); err != nil {
			t.Fatalf("start reference worker %d: %v", i, err)
		}
	}
	t.Cleanup(func() {
		for _, cmd := range cmds {
			if cmd.Process != nil {
				cmd.Process.Kill()
			}
		}
	})
	res := make([]string, len(cmds))
	for i, cmd := range cmds {
		if err := cmd.Wait(); err != nil {
			t.Fatalf("reference worker %d failed: %v\n%s", i, err, outs[i].String())
		}
		res[i] = outs[i].String()
	}
	return res
}

// TestElasticKillChurnMatchesContinuation runs 5 elastic workers, has
// the launcher SIGKILL rank 2 once it reports iteration 8, and demands
// that the survivors (a) commit the same epoch-1 view without the
// victim, (b) finish with byte-identical replicas, and (c) — the real
// teeth — track a fresh 4-process cluster continued from the barrier
// snapshot to within 1e-6 per iteration, digests included. Elastic
// recovery may lose the in-flight iterations, but it must not invent
// arithmetic.
func TestElasticKillChurnMatchesContinuation(t *testing.T) {
	bin := buildBinaries(t)
	const iters = 24
	snapDir := t.TempDir()

	cluster := exec.Command(filepath.Join(bin, "poseidon-cluster"),
		"-worker", filepath.Join(bin, "poseidon-worker"),
		"-n", "5", "-iters", fmt.Sprint(iters),
		"-elastic", "-kill-after", "8:2", "-snapshot-dir", snapDir,
		"-dump-losses", "-print-every", "1", "-timeout", "3m")
	raw, err := cluster.CombinedOutput()
	if err != nil {
		t.Fatalf("churn cluster run: %v\n%s", err, raw)
	}
	out := string(raw)
	if !strings.Contains(out, "chaos: SIGKILL worker 2") {
		t.Fatalf("chaos kill never fired\n%s", out)
	}

	// Every survivor committed the same epoch-1 view naming exactly the
	// live ranks, with one agreed restart iteration.
	views := regexp.MustCompile(`\[w(\d+)\] VIEW 1 0,1,3,4 (\d+)`).FindAllStringSubmatch(out, -1)
	if len(views) != 4 {
		t.Fatalf("found %d epoch-1 VIEW lines for members 0,1,3,4, want 4\n%s", len(views), out)
	}
	restart, err := strconv.Atoi(views[0][2])
	if err != nil || restart < 1 || restart >= iters {
		t.Fatalf("implausible restart iteration %q", views[0][2])
	}
	for _, v := range views[1:] {
		if v[2] != views[0][2] {
			t.Fatalf("survivors disagree on the restart iteration: %v", views)
		}
	}
	churnDigest := sameDigests(t, out, 4)

	// Continuation reference: 4 fresh non-elastic processes resume from
	// a survivor's snapshot (restart iteration embedded in the file).
	snap := filepath.Join(snapDir, "snap-0.bin")
	peers := strings.Join(freeAddrs(t, 4), ",")
	argsets := make([][]string, 4)
	for i := range argsets {
		argsets[i] = []string{
			"-id", fmt.Sprint(i), "-peers", peers,
			"-iters", fmt.Sprint(iters), "-load-params", snap,
			"-dump-losses", "-print-every", "0",
		}
	}
	refOuts := runRefWorkers(t, bin, argsets)

	refDigest := regexp.MustCompile(`PARAMS ([0-9a-f]{16})`).FindStringSubmatch(refOuts[0])
	if refDigest == nil {
		t.Fatalf("continuation printed no PARAMS digest\n%s", refOuts[0])
	}
	if refDigest[1] != churnDigest {
		t.Fatalf("survivors diverged from the continuation reference: %s vs %s", churnDigest, refDigest[1])
	}

	// Per-iteration losses from the restart on: survivor rank r is dense
	// index di in the shrunken view, so it computes the same shard as
	// reference worker di.
	for di, r := range []int{0, 1, 3, 4} {
		got := lossMap(t, out, fmt.Sprintf("[w%d] ", r))
		want := lossMap(t, refOuts[di], "")
		for iter := restart; iter < iters; iter++ {
			g, ok1 := got[iter]
			w, ok2 := want[iter]
			if !ok1 || !ok2 {
				t.Fatalf("iteration %d missing from survivor %d (have=%v) or reference %d (have=%v)", iter, r, ok1, di, ok2)
			}
			if d := math.Abs(g - w); d > 1e-6 {
				t.Fatalf("survivor %d iter %d: churn loss %.12g vs continuation %.12g (|d|=%g > 1e-6)", r, iter, g, w, d)
			}
		}
	}
}

// TestElasticJoinChurnExpandsCluster runs 4 elastic workers over a
// 5-slot mesh and has the launcher spawn a late joiner once training
// reaches iteration 8: all five must commit the same epoch-1 view and
// finish with byte-identical replicas — the joiner adopts the leader's
// snapshot at the barrier and is indistinguishable from a founder
// thereafter.
func TestElasticJoinChurnExpandsCluster(t *testing.T) {
	bin := buildBinaries(t)
	const iters = 24

	cluster := exec.Command(filepath.Join(bin, "poseidon-cluster"),
		"-worker", filepath.Join(bin, "poseidon-worker"),
		"-n", "4", "-iters", fmt.Sprint(iters),
		"-elastic", "-join-after", "8",
		"-dump-losses", "-print-every", "1", "-timeout", "3m")
	raw, err := cluster.CombinedOutput()
	if err != nil {
		t.Fatalf("join cluster run: %v\n%s", err, raw)
	}
	out := string(raw)
	if !strings.Contains(out, "chaos: spawning joiner worker 4") {
		t.Fatalf("chaos join never fired\n%s", out)
	}

	views := regexp.MustCompile(`\[w(\d+)\] VIEW 1 0,1,2,3,4 (\d+)`).FindAllStringSubmatch(out, -1)
	if len(views) != 5 {
		t.Fatalf("found %d epoch-1 VIEW lines for members 0,1,2,3,4, want 5\n%s", len(views), out)
	}
	for _, v := range views[1:] {
		if v[2] != views[0][2] {
			t.Fatalf("members disagree on the restart iteration: %v", views)
		}
	}
	sameDigests(t, out, 5)
}
