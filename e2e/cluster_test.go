// Package e2e proves the real transports end to end with real
// processes: it builds poseidon-worker and poseidon-cluster, runs an
// N-process training cluster over loopback TCP, checks the losses
// against an in-process ChanMesh run of the identical configuration,
// re-runs the cluster over shared-memory rings (-transport shm) and
// demands byte-identical replicas, and verifies that killing a worker
// mid-run surfaces an error on every survivor within a deadline
// instead of hanging the cluster.
package e2e

import (
	"fmt"
	"math"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/data"
	"repro/internal/nn/autodiff"
	"repro/poseidon"
)

// raceEnabled is flipped by race_test.go so the child binaries are
// race-instrumented exactly when the test harness is.
var raceEnabled bool

var (
	buildOnce sync.Once
	binDir    string
	buildErr  error
)

func TestMain(m *testing.M) {
	code := m.Run()
	if binDir != "" {
		os.RemoveAll(binDir)
	}
	os.Exit(code)
}

func moduleRoot() string {
	_, file, _, _ := runtime.Caller(0)
	return filepath.Dir(filepath.Dir(file))
}

// buildBinaries compiles poseidon-worker, poseidon-cluster,
// poseidon-serve, and poseidon-lb once per test run and returns the
// directory holding them.
func buildBinaries(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		binDir, buildErr = os.MkdirTemp("", "poseidon-e2e-bin")
		if buildErr != nil {
			return
		}
		args := []string{"build"}
		if raceEnabled {
			args = append(args, "-race")
		}
		args = append(args, "-o", binDir, "./cmd/poseidon-worker", "./cmd/poseidon-cluster", "./cmd/poseidon-serve", "./cmd/poseidon-lb")
		cmd := exec.Command("go", args...)
		cmd.Dir = moduleRoot()
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = fmt.Errorf("go build: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return binDir
}

// referenceSession mirrors the fixed dataset/model setup hard-wired
// into cmd/poseidon-worker's main on an in-process poseidon.Session —
// keep the two in sync, the golden-parity tests depend on it.
func referenceSession(t *testing.T, workers, iters int, seed int64, mode poseidon.SyncMode) *poseidon.Session {
	t.Helper()
	full := data.Synthetic(seed, 1280, 10, 3, 8, 8, 0.35)
	trainSet, testSet := full.Split(1024)
	sess, err := poseidon.NewSession().
		InProcess(workers).
		Iterations(iters).Batch(8).LearningRate(0.1).Seed(seed).
		Mode(mode).
		Model(func(rng *rand.Rand) *autodiff.Network {
			net, _, _, _ := autodiff.CIFARQuickNet(4, 10, rng)
			return net
		}).
		Data(trainSet, testSet).EvalEvery(10).
		Build()
	if err != nil {
		t.Fatalf("reference session: %v", err)
	}
	return sess
}

// parseLosses extracts worker `id`'s per-iteration losses from
// poseidon-cluster output ("[w0] LOSS <iter> <loss>" lines).
func parseLosses(t *testing.T, out string, id, iters int) []float64 {
	t.Helper()
	prefix := fmt.Sprintf("[w%d] LOSS ", id)
	losses := make([]float64, iters)
	seen := 0
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		fields := strings.Fields(strings.TrimPrefix(line, prefix))
		if len(fields) != 2 {
			t.Fatalf("malformed loss line %q", line)
		}
		iter, err1 := strconv.Atoi(fields[0])
		loss, err2 := strconv.ParseFloat(fields[1], 64)
		if err1 != nil || err2 != nil || iter < 0 || iter >= iters {
			t.Fatalf("malformed loss line %q", line)
		}
		losses[iter] = loss
		seen++
	}
	if seen != iters {
		t.Fatalf("worker %d reported %d losses, want %d\ncluster output:\n%s", id, seen, iters, out)
	}
	return losses
}

// TestTCPClusterMatchesChanMesh trains 3 real OS processes over
// loopback TCP and demands the exact training trajectory of the same
// configuration over the in-process channel mesh: the transport may
// change, the math may not.
func TestTCPClusterMatchesChanMesh(t *testing.T) {
	bin := buildBinaries(t)
	const workers, iters = 3, 12
	const seed = 42

	cluster := exec.Command(filepath.Join(bin, "poseidon-cluster"),
		"-worker", filepath.Join(bin, "poseidon-worker"),
		"-n", fmt.Sprint(workers), "-iters", fmt.Sprint(iters),
		"-batch", "8", "-lr", "0.1", "-mode", "ps", "-seed", fmt.Sprint(seed),
		"-dump-losses", "-print-every", "0", "-timeout", "3m")
	out, err := cluster.CombinedOutput()
	if err != nil {
		t.Fatalf("cluster run: %v\n%s", err, out)
	}

	// Reference: the identical configuration over the in-process
	// channel mesh, keeping every worker's curve (each worker computes
	// loss on its own data shard).
	refs, err := referenceSession(t, workers, iters, seed, poseidon.PSOnly).RunAll()
	if err != nil {
		t.Fatalf("ChanMesh reference: %v", err)
	}
	for id := 0; id < workers; id++ {
		losses := parseLosses(t, string(out), id, iters)
		for i, p := range refs[id].Curve {
			if d := math.Abs(losses[i] - p.TrainLoss); d > 1e-6 {
				t.Fatalf("worker %d iter %d: TCP loss %.12g vs ChanMesh %.12g (|d|=%g > 1e-6)",
					id, i, losses[i], p.TrainLoss, d)
			}
		}
	}

	// BSP invariant across real processes: every worker printed the
	// same digest of its final replica (byte-identical parameters).
	digests := regexp.MustCompile(`\[w\d+\] PARAMS ([0-9a-f]{16})`).FindAllStringSubmatch(string(out), -1)
	if len(digests) != workers {
		t.Fatalf("found %d PARAMS digests, want %d\n%s", len(digests), workers, out)
	}
	for _, d := range digests[1:] {
		if d[1] != digests[0][1] {
			t.Fatalf("replicas diverged over TCP: digests %v", digests)
		}
	}
}

// lineBuffer accumulates a child's combined output and answers
// substring queries while the process is still running.
type lineBuffer struct {
	mu  sync.Mutex
	buf strings.Builder
}

func (b *lineBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lineBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func (b *lineBuffer) contains(sub string) bool { return strings.Contains(b.String(), sub) }

// TestKilledWorkerAbortsSurvivors starts a 3-process cluster on a run
// far too long to finish, SIGKILLs one worker once all three are
// demonstrably training, and requires every survivor to exit non-zero
// with the dead peer named — within 10 seconds, not hanging on pushes
// that will never arrive.
func TestKilledWorkerAbortsSurvivors(t *testing.T) {
	bin := buildBinaries(t)
	const workers = 3
	const victim = 2
	addrs := freeAddrs(t, workers)
	peers := strings.Join(addrs, ",")

	cmds := make([]*exec.Cmd, workers)
	outs := make([]*lineBuffer, workers)
	for i := 0; i < workers; i++ {
		outs[i] = &lineBuffer{}
		cmds[i] = exec.Command(filepath.Join(bin, "poseidon-worker"),
			"-id", fmt.Sprint(i), "-peers", peers,
			"-iters", "1000000", "-batch", "2", "-mode", "ps", "-seed", "7",
			"-print-every", "1")
		cmds[i].Stdout = outs[i]
		cmds[i].Stderr = outs[i]
		if err := cmds[i].Start(); err != nil {
			t.Fatalf("start worker %d: %v", i, err)
		}
	}
	t.Cleanup(func() {
		for _, cmd := range cmds {
			if cmd.Process != nil {
				cmd.Process.Kill()
			}
		}
	})

	// All three must be past mesh formation and into the training loop
	// before the kill, or we would only test setup failure.
	waitDeadline := time.Now().Add(60 * time.Second)
	for i := 0; i < workers; i++ {
		for !outs[i].contains("iter") {
			if time.Now().After(waitDeadline) {
				t.Fatalf("worker %d produced no training progress\n%s", i, outs[i].String())
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	if err := cmds[victim].Process.Kill(); err != nil {
		t.Fatal(err)
	}
	killedAt := time.Now()

	type exit struct {
		id   int
		err  error
		took time.Duration
	}
	exits := make(chan exit, workers)
	for i := 0; i < workers; i++ {
		if i == victim {
			continue
		}
		go func(i int) {
			err := cmds[i].Wait()
			exits <- exit{i, err, time.Since(killedAt)}
		}(i)
	}
	for survivors := workers - 1; survivors > 0; survivors-- {
		select {
		case e := <-exits:
			if e.err == nil {
				t.Fatalf("worker %d exited cleanly after peer %d was SIGKILLed\n%s", e.id, victim, outs[e.id].String())
			}
			// The survivor must name a failed peer. Usually that is the
			// victim ("peer 2 down"), but a survivor that aborts first
			// exits without goodbye too, so a slower survivor may
			// correctly report that cascade instead — either as its own
			// link failure or as the comm-level abort control frame
			// ("peer 0 aborted").
			if !regexp.MustCompile(`peer \d+ (down|aborted)`).MatchString(outs[e.id].String()) {
				t.Fatalf("worker %d died without naming a dead peer:\n%s", e.id, outs[e.id].String())
			}
			t.Logf("worker %d aborted %.2fs after the kill", e.id, e.took.Seconds())
		case <-time.After(10 * time.Second):
			t.Fatalf("a survivor was still running 10s after worker %d was killed — dead link not surfaced", victim)
		}
	}
	cmds[victim].Wait() // reap the victim
}

// freeAddrs reserves n loopback addresses by binding and releasing
// ephemeral ports.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	var addrs []string
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, l.Addr().String())
		l.Close()
	}
	return addrs
}
