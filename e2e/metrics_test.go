package e2e

import (
	"encoding/json"
	"fmt"
	"math"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/poseidon"
)

// metricsSnapshot is the subset of the worker's METRICS JSON this suite
// asserts on (schema: internal/metrics.CommSnapshot).
type metricsSnapshot struct {
	Wire struct {
		FramesSent int64 `json:"frames_sent"`
		BytesSent  int64 `json:"bytes_sent"`
		// BytesCopiedPerFrame is the transport's own copying per frame
		// sent — on the vectored-write TCP path this is the 4-byte
		// length prefix plus the 17-byte header, never the payload.
		BytesCopiedPerFrame float64 `json:"bytes_copied_per_frame"`
	} `json:"wire"`
	Params []struct {
		Index int    `json:"index"`
		Name  string `json:"name"`
		Route string `json:"route"`
		Bytes int64  `json:"bytes_sent"`
	} `json:"params"`
	Totals struct {
		BytesSent       int64 `json:"bytes_sent"`
		SFBParams       int   `json:"sfb_params"`
		SFBSavingsBytes int64 `json:"sfb_savings_bytes"`
	} `json:"totals"`
	// ReplanEvents lists the route flips applied at replan barriers.
	ReplanEvents []struct {
		Iter  int    `json:"iter"`
		Param int    `json:"param"`
		Name  string `json:"name"`
		From  string `json:"from"`
		To    string `json:"to"`
	} `json:"replan_events"`
	// BWEstimateBPS is the planner's final EWMA wire-rate estimate
	// (worker 0 only; 0 elsewhere).
	BWEstimateBPS float64 `json:"bw_estimate_bps"`
	// AllocsPerIter is the worker's process-wide runtime.MemStats
	// Mallocs delta per iteration — the live-cluster view of the wire
	// path's allocation behavior.
	AllocsPerIter float64 `json:"allocs_per_iter"`
}

// metricsLine matches one worker's "[wN] METRICS {...}" output line.
var metricsLine = regexp.MustCompile(`^\[w(\d+)\] METRICS (.*)$`)

// parseMetrics extracts every worker's METRICS snapshot from cluster
// output.
func parseMetrics(t *testing.T, out string, workers int) []metricsSnapshot {
	t.Helper()
	snaps := make([]metricsSnapshot, workers)
	seen := 0
	for _, line := range strings.Split(out, "\n") {
		m := metricsLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		id, err := strconv.Atoi(m[1])
		if err != nil || id < 0 || id >= workers {
			t.Fatalf("METRICS line for unknown worker %q", m[1])
		}
		if err := json.Unmarshal([]byte(m[2]), &snaps[id]); err != nil {
			t.Fatalf("worker %d METRICS unparseable: %v\n%s", id, err, m[2])
		}
		seen++
	}
	if seen != workers {
		t.Fatalf("found %d METRICS lines, want %d\n%s", seen, workers, out)
	}
	return snaps
}

// TestAutoplanMatchesChanMeshAndBeatsPurePS is the paper's claim on a
// real multi-process cluster: with -autoplan (Algorithm 1 routing the
// fat FC layer over SFB), a 3-process TCP run (a) reproduces the
// in-process ChanMesh hybrid losses to 1e-6 with byte-identical
// replicas, and (b) moves strictly fewer bytes on the wire than the
// identical run forced through the pure parameter server.
func TestAutoplanMatchesChanMeshAndBeatsPurePS(t *testing.T) {
	bin := buildBinaries(t)
	const workers, iters = 3, 12
	const seed = 42

	runCluster := func(extra ...string) string {
		t.Helper()
		args := []string{
			"-worker", filepath.Join(bin, "poseidon-worker"),
			"-n", fmt.Sprint(workers), "-iters", fmt.Sprint(iters),
			"-batch", "8", "-lr", "0.1", "-seed", fmt.Sprint(seed),
			"-metrics-dump", "-print-every", "0", "-timeout", "3m",
		}
		args = append(args, extra...)
		out, err := exec.Command(filepath.Join(bin, "poseidon-cluster"), args...).CombinedOutput()
		if err != nil {
			t.Fatalf("cluster run %v: %v\n%s", extra, err, out)
		}
		return string(out)
	}

	hybridOut := runCluster("-autoplan", "-dump-losses")

	// The cost model must actually have routed something over SFB —
	// otherwise the byte comparison below proves nothing about HybComm.
	if !regexp.MustCompile(`\[w0\] PLAN param=\d+ name=\S+ shape=\S+ route=SFB`).MatchString(hybridOut) {
		t.Fatalf("autoplan chose no SFB route — the fat FC layer should clear Algorithm 1's threshold\n%s", hybridOut)
	}

	// (a) Statistical parity: TCP autoplan losses == in-process ChanMesh
	// hybrid losses, per worker, to 1e-6.
	refs, err := referenceSession(t, workers, iters, seed, poseidon.Hybrid).RunAll()
	if err != nil {
		t.Fatalf("ChanMesh reference: %v", err)
	}
	for id := 0; id < workers; id++ {
		losses := parseLosses(t, hybridOut, id, iters)
		for i, p := range refs[id].Curve {
			if d := math.Abs(losses[i] - p.TrainLoss); d > 1e-6 {
				t.Fatalf("worker %d iter %d: autoplan TCP loss %.12g vs ChanMesh hybrid %.12g (|d|=%g > 1e-6)",
					id, i, losses[i], p.TrainLoss, d)
			}
		}
	}

	// Byte-identical replicas across processes.
	digests := regexp.MustCompile(`\[w\d+\] PARAMS ([0-9a-f]{16})`).FindAllStringSubmatch(hybridOut, -1)
	if len(digests) != workers {
		t.Fatalf("found %d PARAMS digests, want %d\n%s", len(digests), workers, hybridOut)
	}
	for _, d := range digests[1:] {
		if d[1] != digests[0][1] {
			t.Fatalf("replicas diverged under autoplan: digests %v", digests)
		}
	}

	// (b) Wire-byte comparison against the identical run forced pure-PS.
	psOut := runCluster("-mode", "ps")

	hybridSnaps := parseMetrics(t, hybridOut, workers)
	psSnaps := parseMetrics(t, psOut, workers)
	var hybridBytes, psBytes, hybridWire, psWire int64
	for id := 0; id < workers; id++ {
		hybridBytes += hybridSnaps[id].Totals.BytesSent
		psBytes += psSnaps[id].Totals.BytesSent
		hybridWire += hybridSnaps[id].Wire.BytesSent
		psWire += psSnaps[id].Wire.BytesSent

		if hybridSnaps[id].Totals.SFBParams < 1 {
			t.Fatalf("worker %d: hybrid snapshot shows no SFB params", id)
		}
		if hybridSnaps[id].AllocsPerIter <= 0 {
			t.Fatalf("worker %d: METRICS missing allocs_per_iter", id)
		}
		// Zero-copy egress on a live cluster: the TCP transport's own
		// copying must be the 21-byte prefix+header per frame, nothing
		// of the payload (32 B leaves headroom for goodbye frames).
		if c := hybridSnaps[id].Wire.BytesCopiedPerFrame; c <= 0 || c > 32 {
			t.Fatalf("worker %d: bytes_copied_per_frame = %.1f, want header-only (0 < c <= 32) — payload bytes leaking into transport scratch?", id, c)
		}
		if hybridSnaps[id].Totals.SFBSavingsBytes <= 0 {
			t.Fatalf("worker %d: hybrid snapshot shows no SFB savings", id)
		}
		for _, p := range psSnaps[id].Params {
			if p.Route != "PS" {
				t.Fatalf("worker %d: pure-PS run routed param %d over %s", id, p.Index, p.Route)
			}
		}
	}
	t.Logf("cluster egress: hybrid %d B (wire %d B) vs pure PS %d B (wire %d B)",
		hybridBytes, hybridWire, psBytes, psWire)
	if hybridBytes >= psBytes {
		t.Fatalf("hybrid moved %d bytes, pure PS %d — HybComm must move strictly fewer", hybridBytes, psBytes)
	}
	if hybridWire >= psWire {
		t.Fatalf("hybrid wire total %d >= pure PS %d", hybridWire, psWire)
	}
}
