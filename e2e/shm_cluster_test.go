package e2e

import (
	"fmt"
	"math"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"testing"
)

// TestSHMClusterMatchesTCP trains the identical 3-process cluster twice
// — once over loopback TCP, once over -transport shm (shared-memory
// rings) — and demands the transports be interchangeable: per-worker
// losses equal to 1e-6 and byte-identical final replicas across BOTH
// runs. The rings carry real multi-megabyte tensor traffic here, across
// real process boundaries, not the in-process shortcuts of the unit
// suite.
func TestSHMClusterMatchesTCP(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("shared-memory transport is Linux-only")
	}
	bin := buildBinaries(t)
	const workers, iters = 3, 12
	const seed = 42

	runCluster := func(transport string) string {
		t.Helper()
		out, err := exec.Command(filepath.Join(bin, "poseidon-cluster"),
			"-worker", filepath.Join(bin, "poseidon-worker"),
			"-n", fmt.Sprint(workers), "-iters", fmt.Sprint(iters),
			"-batch", "8", "-lr", "0.1", "-mode", "ps", "-seed", fmt.Sprint(seed),
			"-transport", transport,
			"-dump-losses", "-print-every", "0", "-timeout", "3m").CombinedOutput()
		if err != nil {
			t.Fatalf("%s cluster run: %v\n%s", transport, err, out)
		}
		return string(out)
	}

	tcpOut := runCluster("tcp")
	shmOut := runCluster("shm")

	for id := 0; id < workers; id++ {
		tcpLosses := parseLosses(t, tcpOut, id, iters)
		shmLosses := parseLosses(t, shmOut, id, iters)
		for i := range tcpLosses {
			if d := math.Abs(shmLosses[i] - tcpLosses[i]); d > 1e-6 {
				t.Fatalf("worker %d iter %d: shm loss %.12g vs tcp %.12g (|d|=%g > 1e-6)",
					id, i, shmLosses[i], tcpLosses[i], d)
			}
		}
	}

	// Byte-identical replicas: within the shm run, and against the TCP
	// run — the transport must not perturb a single parameter bit.
	re := regexp.MustCompile(`\[w\d+\] PARAMS ([0-9a-f]{16})`)
	tcpDigests := re.FindAllStringSubmatch(tcpOut, -1)
	shmDigests := re.FindAllStringSubmatch(shmOut, -1)
	if len(tcpDigests) != workers || len(shmDigests) != workers {
		t.Fatalf("found %d tcp / %d shm PARAMS digests, want %d each", len(tcpDigests), len(shmDigests), workers)
	}
	for _, d := range shmDigests {
		if d[1] != tcpDigests[0][1] {
			t.Fatalf("replicas diverged between transports: tcp %s vs shm digests %v", tcpDigests[0][1], shmDigests)
		}
	}
}
