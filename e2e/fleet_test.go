// Snapshot-fleet e2e: a real 3-process TCP mesh trains with
// poseidon-serve as rank 0, three poseidon-serve replicas follow the
// run through the pull endpoint (never joining the mesh), and a
// poseidon-lb front door maps two tenants onto them over the
// consistent-hash ring. Mid-load the test SIGKILLs the replica
// currently serving one tenant and demands the full fleet contract at
// once: zero failed requests across the kill (failover happens inside
// the request that discovers the death), per-tenant served versions
// that never move backwards, and a failover landing spot that is a
// pure function of the member set — the next replica in the tenant's
// ring sequence, exactly what fleet.NewRing predicts.
package e2e

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/tensor"
)

// fleetReply is one proxied prediction as a tenant observes it: the
// HTTP status, which replica answered (X-Poseidon-Upstream), and the
// snapshot version it served (X-Poseidon-Snapshot-Iter/Epoch).
type fleetReply struct {
	status   int
	upstream string
	ver      fleet.Version
}

// predictViaLB posts one prediction through the balancer under a
// tenant and reports who served it at which version.
func predictViaLB(client *http.Client, base, tenant string, body []byte) (fleetReply, error) {
	req, err := http.NewRequest("POST", base+"/v1/predict", bytes.NewReader(body))
	if err != nil {
		return fleetReply{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(fleet.HeaderTenant, tenant)
	resp, err := client.Do(req)
	if err != nil {
		return fleetReply{}, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	iter, err := strconv.Atoi(resp.Header.Get(fleet.HeaderIter))
	if err != nil {
		iter = -1
	}
	epoch, _ := strconv.Atoi(resp.Header.Get(fleet.HeaderEpoch))
	return fleetReply{
		status:   resp.StatusCode,
		upstream: resp.Header.Get(fleet.HeaderUpstream),
		ver:      fleet.Version{Iter: iter, Epoch: epoch},
	}, nil
}

func TestFleetSurvivesReplicaKill(t *testing.T) {
	bin := buildBinaries(t)
	const workers = 3
	const replicas = 3
	const seed = 42
	meshAddrs := freeAddrs(t, workers)
	peers := strings.Join(meshAddrs, ",")

	// Rank 0 is the snapshot source: it trains with the mesh and serves
	// the pull endpoint. The run is far longer than the test so versions
	// keep advancing the whole time; everything is reaped in cleanup.
	trainArgs := []string{
		"-peers", peers, "-iters", "100000",
		"-batch", "8", "-lr", "0.1", "-mode", "ps", "-seed", fmt.Sprint(seed),
		"-print-every", "0",
	}
	gwOut := &lineBuffer{}
	gwCmd := exec.Command(filepath.Join(bin, "poseidon-serve"),
		append([]string{
			"-id", "0", "-listen", "127.0.0.1:0", "-snapshot-every", "5",
			"-tenant-rps=-1",
		}, trainArgs...)...)
	gwCmd.Stdout = gwOut
	gwCmd.Stderr = gwOut
	if err := gwCmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if gwCmd.Process != nil {
			gwCmd.Process.Kill()
			gwCmd.Wait()
		}
	})
	workerCmds := make([]*exec.Cmd, 0, workers-1)
	for id := 1; id < workers; id++ {
		out := &lineBuffer{}
		cmd := exec.Command(filepath.Join(bin, "poseidon-worker"),
			append([]string{"-id", fmt.Sprint(id)}, trainArgs...)...)
		cmd.Stdout = out
		cmd.Stderr = out
		if err := cmd.Start(); err != nil {
			t.Fatalf("start worker %d: %v", id, err)
		}
		workerCmds = append(workerCmds, cmd)
	}
	t.Cleanup(func() {
		for _, cmd := range workerCmds {
			if cmd.Process != nil {
				cmd.Process.Kill()
				cmd.Wait()
			}
		}
	})

	listenRe := regexp.MustCompile(`SERVE listening on (\S+)`)
	deadline := time.Now().Add(60 * time.Second)
	var gwAddr string
	for gwAddr == "" {
		if m := listenRe.FindStringSubmatch(gwOut.String()); m != nil {
			gwAddr = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("gateway never announced its address\n%s", gwOut.String())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Three replicas on pre-reserved addresses — the balancer's ring is
	// keyed on these exact strings, so they must be known up front.
	replicaAddrs := freeAddrs(t, replicas)
	replicaCmds := make(map[string]*exec.Cmd, replicas)
	replicaOuts := make(map[string]*lineBuffer, replicas)
	for _, addr := range replicaAddrs {
		out := &lineBuffer{}
		cmd := exec.Command(filepath.Join(bin, "poseidon-serve"),
			"-replica", "-pull", "http://"+gwAddr, "-poll", "50ms",
			"-listen", addr, "-max-lag", "1000", "-tenant-rps=-1",
			"-seed", fmt.Sprint(seed))
		cmd.Stdout = out
		cmd.Stderr = out
		if err := cmd.Start(); err != nil {
			t.Fatalf("start replica %s: %v", addr, err)
		}
		replicaCmds[addr] = cmd
		replicaOuts[addr] = out
	}
	t.Cleanup(func() {
		for _, cmd := range replicaCmds {
			if cmd.Process != nil {
				cmd.Process.Kill()
				cmd.Wait()
			}
		}
	})

	// A replica fails /healthz until it has adopted its first snapshot;
	// wait for all three so the balancer starts with a full ring.
	client := &http.Client{Timeout: 30 * time.Second}
	deadline = time.Now().Add(120 * time.Second)
	for _, addr := range replicaAddrs {
		for {
			resp, err := client.Get("http://" + addr + "/healthz")
			if err == nil {
				code := resp.StatusCode
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if code == http.StatusOK {
					break
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("replica %s never became healthy\n%s", addr, replicaOuts[addr].String())
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	lbOut := &lineBuffer{}
	lbCmd := exec.Command(filepath.Join(bin, "poseidon-lb"),
		"-listen", "127.0.0.1:0",
		"-replicas", strings.Join(replicaAddrs, ","),
		"-check-every", "25ms")
	lbCmd.Stdout = lbOut
	lbCmd.Stderr = lbOut
	if err := lbCmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if lbCmd.Process != nil {
			lbCmd.Process.Kill()
			lbCmd.Wait()
		}
	})
	lbRe := regexp.MustCompile(`LB listening on (\S+)`)
	deadline = time.Now().Add(60 * time.Second)
	var lbBase string
	for lbBase == "" {
		if m := lbRe.FindStringSubmatch(lbOut.String()); m != nil {
			lbBase = "http://" + m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("balancer never announced its address\n%s", lbOut.String())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Build a fixed prediction body against the replicas' model shape.
	var mv struct {
		Features int `json:"features"`
	}
	resp, err := client.Get("http://" + replicaAddrs[0] + "/v1/model")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&mv); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	rng := rand.New(rand.NewSource(99))
	x := tensor.NewMatrix(2, mv.Features)
	for i := range x.Data {
		x.Data[i] = float32(rng.NormFloat64())
	}
	body, err := json.Marshal(map[string][][]float32{"instances": instanceRows(x)})
	if err != nil {
		t.Fatal(err)
	}

	// The ring the balancer routes by is a pure function of the member
	// set — recompute it here and hold the balancer to it.
	ring := fleet.NewRing(replicaAddrs)
	tenants := []string{"tenant-alpha", "tenant-beta"}
	lastVer := map[string]fleet.Version{}
	sendOne := func(phase, tenant string) fleetReply {
		t.Helper()
		fr, err := predictViaLB(client, lbBase, tenant, body)
		if err != nil {
			t.Fatalf("%s: %s predict: %v", phase, tenant, err)
		}
		if fr.status != http.StatusOK {
			t.Fatalf("%s: %s predict failed with status %d (upstream %q)\nlb:\n%s",
				phase, tenant, fr.status, fr.upstream, lbOut.String())
		}
		if fr.ver.Iter < 0 {
			t.Fatalf("%s: %s response carried no snapshot version", phase, tenant)
		}
		if last, ok := lastVer[tenant]; ok && fr.ver.Before(last) {
			t.Fatalf("%s: %s served version went backwards: %v after %v (upstream %s)",
				phase, tenant, fr.ver, last, fr.upstream)
		}
		lastVer[tenant] = fr.ver
		return fr
	}

	// Phase 1: steady state. Every request lands on the tenant's ring
	// owner, on every single request.
	for i := 0; i < 10; i++ {
		for _, tenant := range tenants {
			fr := sendOne("steady", tenant)
			if want := ring.Lookup(tenant); fr.upstream != want {
				t.Fatalf("steady: %s served by %s, ring owner is %s", tenant, fr.upstream, want)
			}
		}
		time.Sleep(20 * time.Millisecond)
	}

	// SIGKILL the replica serving tenant-alpha, mid-load.
	victim := ring.Lookup("tenant-alpha")
	if err := replicaCmds[victim].Process.Kill(); err != nil {
		t.Fatal(err)
	}
	replicaCmds[victim].Wait()

	// Expected post-kill owner per tenant: the first live member of the
	// tenant's ring walk. For tenant-alpha that is Sequence[1]; a tenant
	// whose owner survived must not move at all.
	expected := map[string]string{}
	for _, tenant := range tenants {
		for _, name := range ring.Sequence(tenant) {
			if name != victim {
				expected[tenant] = name
				break
			}
		}
	}

	// Phase 2: the kill must be invisible to clients. Zero failed
	// requests (the request that discovers the death fails over inside
	// itself), versions still monotonic per tenant, and every tenant on
	// its predicted replica once the dust settles.
	settled := map[string]int{}
	for i := 0; i < 40; i++ {
		for _, tenant := range tenants {
			fr := sendOne("post-kill", tenant)
			if fr.upstream == victim {
				t.Fatalf("post-kill: %s answered by the killed replica %s", tenant, victim)
			}
			if fr.upstream == expected[tenant] {
				settled[tenant]++
			} else {
				t.Fatalf("post-kill: %s served by %s, deterministic failover target is %s",
					tenant, fr.upstream, expected[tenant])
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	for _, tenant := range tenants {
		if settled[tenant] != 40 {
			t.Fatalf("%s: %d/40 post-kill requests on the predicted replica", tenant, settled[tenant])
		}
	}

	// The balancer noticed: its own healthz drops the victim from the
	// healthy set.
	deadline = time.Now().Add(10 * time.Second)
	for {
		resp, err := client.Get(lbBase + "/healthz")
		if err == nil {
			var hb struct {
				Healthy []string `json:"healthy"`
			}
			err = json.NewDecoder(resp.Body).Decode(&hb)
			resp.Body.Close()
			if err == nil {
				alive := len(hb.Healthy) == replicas-1
				for _, name := range hb.Healthy {
					if name == victim {
						alive = false
					}
				}
				if alive {
					break
				}
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("balancer healthz never dropped the killed replica %s\n%s", victim, lbOut.String())
		}
		time.Sleep(25 * time.Millisecond)
	}

	// Fleet-wide metrics still aggregate across the survivors: the
	// merged serve block must have seen at least this test's requests.
	resp, err = client.Get(lbBase + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var fm struct {
		Fleet struct {
			Requests int64 `json:"requests"`
		} `json:"fleet"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&fm); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if fm.Fleet.Requests < int64(len(tenants)*40) {
		t.Fatalf("fleet metrics aggregate only %d requests across survivors", fm.Fleet.Requests)
	}
}
