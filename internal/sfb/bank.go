package sfb

import "sync"

// Bank is a registry of per-parameter aggregators, the SFB-side state a
// synchronization router needs: one Aggregator per sufficient-factor
// routed parameter, created on first use and shared between the launch
// and receive paths.
type Bank struct {
	mu   sync.Mutex
	aggs map[int]*Aggregator
}

// NewBank creates an empty registry.
func NewBank() *Bank {
	return &Bank{aggs: make(map[int]*Aggregator)}
}

// Ensure returns the aggregator for parameter index, creating it with
// the given expectations on first use. Shape and expectation changes
// across calls for one index are a programming error and panic.
func (b *Bank) Ensure(index, expected, rows, cols int) *Aggregator {
	b.mu.Lock()
	defer b.mu.Unlock()
	if a, ok := b.aggs[index]; ok {
		if a.expected != expected || a.rows != rows || a.cols != cols {
			panic("sfb: Bank.Ensure with conflicting aggregator shape")
		}
		return a
	}
	a := NewAggregator(expected, rows, cols)
	b.aggs[index] = a
	return a
}

// Get returns the aggregator for parameter index, if registered.
func (b *Bank) Get(index int) (*Aggregator, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a, ok := b.aggs[index]
	return a, ok
}

// Remove drops the aggregator for parameter index — the route-handoff
// path when a replan barrier moves the parameter off SFB. The caller
// must have drained in-flight rounds first; removing an unregistered
// index is a no-op.
func (b *Bank) Remove(index int) {
	b.mu.Lock()
	delete(b.aggs, index)
	b.mu.Unlock()
}

// PendingIters sums incomplete factor sets across all aggregators (for
// drain checks and monitoring).
func (b *Bank) PendingIters() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	total := 0
	for _, a := range b.aggs {
		total += a.PendingIters()
	}
	return total
}
