// Package sfb implements functional sufficient factor broadcasting
// (Xie et al.; Poseidon Section 2.1): extraction of rank-1 gradient
// factors from FC-layer backward passes, peer-to-peer broadcast
// bookkeeping, and dense gradient reconstruction on receipt.
package sfb

import (
	"fmt"
	"sync"

	"repro/internal/tensor"
)

// Extract builds the sufficient factor of an FC layer's weight gradient
// from the backward pass: dout is the K×M matrix of per-sample output
// deltas, x the K×N matrix of per-sample inputs, so that
// ∇W = doutᵀ·x = Σ_k u_k v_kᵀ. The factors are referenced, not copied;
// callers that reuse their buffers must Clone.
func Extract(dout, x *tensor.Matrix) *tensor.SufficientFactor {
	if dout.Rows != x.Rows {
		panic(fmt.Sprintf("sfb: batch mismatch %d vs %d", dout.Rows, x.Rows))
	}
	return &tensor.SufficientFactor{U: dout, V: x}
}

// Aggregator collects sufficient factors from peers for one layer and
// one iteration, and reconstructs the summed dense gradient once all
// expected contributions have arrived. It is safe for concurrent use.
type Aggregator struct {
	mu       sync.Mutex
	expected int
	rows     int
	cols     int
	pending  map[int64][]*tensor.SufficientFactor // iter → factors
}

// NewAggregator creates an aggregator for an rows×cols gradient
// expecting `expected` contributions per iteration (typically P: one
// local + P−1 remote).
func NewAggregator(expected, rows, cols int) *Aggregator {
	if expected <= 0 {
		panic("sfb: need at least one expected contribution")
	}
	return &Aggregator{
		expected: expected,
		rows:     rows,
		cols:     cols,
		pending:  make(map[int64][]*tensor.SufficientFactor),
	}
}

// Offer adds one contribution for the iteration. When the last expected
// factor arrives it returns the reconstructed dense gradient
// Σ_contributions Σ_k u_k v_kᵀ and true; otherwise (nil, false).
func (a *Aggregator) Offer(iter int64, sf *tensor.SufficientFactor) (*tensor.Matrix, bool) {
	if sf.M() != a.rows || sf.N() != a.cols {
		panic(fmt.Sprintf("sfb: factor shape %dx%d, want %dx%d", sf.M(), sf.N(), a.rows, a.cols))
	}
	a.mu.Lock()
	a.pending[iter] = append(a.pending[iter], sf)
	if len(a.pending[iter]) < a.expected {
		a.mu.Unlock()
		return nil, false
	}
	factors := a.pending[iter]
	delete(a.pending, iter)
	a.mu.Unlock()

	grad := tensor.NewMatrix(a.rows, a.cols)
	for _, f := range factors {
		f.ReconstructInto(grad)
	}
	return grad, true
}

// PendingIters returns how many iterations have incomplete factor sets
// (for tests and monitoring).
func (a *Aggregator) PendingIters() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.pending)
}
