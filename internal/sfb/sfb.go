// Package sfb implements functional sufficient factor broadcasting
// (Xie et al.; Poseidon Section 2.1): extraction of rank-1 gradient
// factors from FC-layer backward passes, peer-to-peer broadcast
// bookkeeping, and dense gradient reconstruction on receipt.
package sfb

import (
	"fmt"
	"sync"

	"repro/internal/tensor"
)

// Extract builds the sufficient factor of an FC layer's weight gradient
// from the backward pass: dout is the K×M matrix of per-sample output
// deltas, x the K×N matrix of per-sample inputs, so that
// ∇W = doutᵀ·x = Σ_k u_k v_kᵀ. The factors are referenced, not copied;
// callers that reuse their buffers must Clone.
func Extract(dout, x *tensor.Matrix) *tensor.SufficientFactor {
	if dout.Rows != x.Rows {
		panic(fmt.Sprintf("sfb: batch mismatch %d vs %d", dout.Rows, x.Rows))
	}
	return &tensor.SufficientFactor{U: dout, V: x}
}

// Aggregator collects sufficient factors from peers for one layer and
// one iteration, and reconstructs the summed dense gradient once all
// expected contributions have arrived. Offered factors are copied into
// pooled scratch (recycled when a round completes), so callers keep
// ownership of what they offer and a steady-state run performs no
// per-round allocation. Factors are held per worker and reconstructed
// in worker-id order, so the float32 result is bit-identical however
// the network interleaved the broadcasts. It is safe for concurrent
// use.
type Aggregator struct {
	mu       sync.Mutex
	expected int
	rows     int
	cols     int
	pending  map[int64]*factorSet // iter → per-worker factors
	freeSets []*factorSet
	freeSFs  []*tensor.SufficientFactor
}

type factorSet struct {
	factors []*tensor.SufficientFactor // indexed by worker id
	count   int
}

// NewAggregator creates an aggregator for an rows×cols gradient
// expecting `expected` contributions per iteration (typically P: one
// local + P−1 remote).
func NewAggregator(expected, rows, cols int) *Aggregator {
	if expected <= 0 {
		panic("sfb: need at least one expected contribution")
	}
	return &Aggregator{
		expected: expected,
		rows:     rows,
		cols:     cols,
		pending:  make(map[int64]*factorSet),
	}
}

// Offer adds worker's contribution for the iteration. When the last
// expected factor arrives it returns the reconstructed dense gradient
// Σ_contributions Σ_k u_k v_kᵀ (folded in worker-id order, so the
// result does not depend on arrival order) and true; otherwise
// (nil, false). A worker offering twice for one iteration is a
// protocol violation and errors.
func (a *Aggregator) Offer(iter int64, worker int, sf *tensor.SufficientFactor) (*tensor.Matrix, bool, error) {
	dst := new(tensor.Matrix)
	done, err := a.OfferInto(iter, worker, sf, dst)
	if err != nil || !done {
		return nil, false, err
	}
	return dst, true, nil
}

// OfferInto is Offer reconstructing into the caller-owned dst on round
// completion — the allocation-free form the comm runtime uses, with
// each calling goroutine passing its own scratch matrix. dst is resized
// and overwritten only when the round completes (done=true); it is
// untouched otherwise.
func (a *Aggregator) OfferInto(iter int64, worker int, sf *tensor.SufficientFactor, dst *tensor.Matrix) (bool, error) {
	if sf.M() != a.rows || sf.N() != a.cols {
		panic(fmt.Sprintf("sfb: factor shape %dx%d, want %dx%d", sf.M(), sf.N(), a.rows, a.cols))
	}
	if worker < 0 || worker >= a.expected {
		return false, fmt.Errorf("sfb: factor from worker %d of %d", worker, a.expected)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	fs := a.pending[iter]
	if fs == nil {
		if n := len(a.freeSets); n > 0 {
			fs = a.freeSets[n-1]
			a.freeSets = a.freeSets[:n-1]
		} else {
			fs = &factorSet{factors: make([]*tensor.SufficientFactor, a.expected)}
		}
		a.pending[iter] = fs
	}
	if fs.factors[worker] != nil {
		return false, fmt.Errorf("sfb: worker %d offered twice for iter %d", worker, iter)
	}
	var cp *tensor.SufficientFactor
	if n := len(a.freeSFs); n > 0 {
		cp = a.freeSFs[n-1]
		a.freeSFs = a.freeSFs[:n-1]
	} else {
		cp = new(tensor.SufficientFactor)
	}
	cp.CopyFrom(sf)
	fs.factors[worker] = cp
	fs.count++
	if fs.count < a.expected {
		return false, nil
	}
	delete(a.pending, iter)

	// Reconstruction runs under the lock: it must finish before the
	// factor buffers go back on the free list, and rounds complete at
	// most once per iteration, so the serialization is cheap relative
	// to the K·M·N fold itself.
	dst.Resize(a.rows, a.cols)
	dst.Zero()
	for w, f := range fs.factors {
		f.ReconstructInto(dst)
		a.freeSFs = append(a.freeSFs, f)
		fs.factors[w] = nil
	}
	fs.count = 0
	a.freeSets = append(a.freeSets, fs)
	return true, nil
}

// PendingIters returns how many iterations have incomplete factor sets
// (for tests and monitoring).
func (a *Aggregator) PendingIters() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.pending)
}
