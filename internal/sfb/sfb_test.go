package sfb

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/tensor"
)

func randM(rng *rand.Rand, r, c int) *tensor.Matrix {
	m := tensor.NewMatrix(r, c)
	m.Randn(rng, 1)
	return m
}

// Extract + Reconstruct must equal the dense gradient doutᵀ·x.
func TestExtractReconstructMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const k, m, n = 6, 5, 7
	dout := randM(rng, k, m)
	x := randM(rng, k, n)
	sf := Extract(dout, x)
	got := sf.Reconstruct()
	want := tensor.NewMatrix(m, n)
	tensor.MulTransAInto(want, dout, x)
	if !got.ApproxEqual(want, 1e-4) {
		t.Fatal("SF reconstruction != dense gradient")
	}
}

func TestExtractPanicsOnBatchMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Extract(randM(rng, 3, 4), randM(rng, 2, 4))
}

func TestAggregatorCompletesOnExpected(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const peers, m, n = 3, 4, 5
	a := NewAggregator(peers, m, n)
	want := tensor.NewMatrix(m, n)
	for p := 0; p < peers; p++ {
		sf := &tensor.SufficientFactor{U: randM(rng, 2, m), V: randM(rng, 2, n)}
		sf.ReconstructInto(want)
		grad, done, err := a.Offer(7, p, sf)
		if err != nil {
			t.Fatal(err)
		}
		if p < peers-1 {
			if done {
				t.Fatalf("completed early at peer %d", p)
			}
		} else {
			if !done {
				t.Fatal("never completed")
			}
			if !grad.ApproxEqual(want, 1e-4) {
				t.Fatal("aggregated gradient wrong")
			}
		}
	}
	if a.PendingIters() != 0 {
		t.Fatal("iteration state leaked")
	}
}

// Factors for different iterations must not mix.
func TestAggregatorSeparatesIterations(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := NewAggregator(2, 3, 3)
	a.Offer(1, 0, &tensor.SufficientFactor{U: randM(rng, 1, 3), V: randM(rng, 1, 3)})
	a.Offer(2, 0, &tensor.SufficientFactor{U: randM(rng, 1, 3), V: randM(rng, 1, 3)})
	if a.PendingIters() != 2 {
		t.Fatalf("pending = %d, want 2", a.PendingIters())
	}
	if _, done, err := a.Offer(1, 1, &tensor.SufficientFactor{U: randM(rng, 1, 3), V: randM(rng, 1, 3)}); !done || err != nil {
		t.Fatalf("iteration 1 should complete (err %v)", err)
	}
	if a.PendingIters() != 1 {
		t.Fatalf("pending = %d, want 1", a.PendingIters())
	}
}

func TestAggregatorConcurrentOffers(t *testing.T) {
	const peers = 16
	a := NewAggregator(peers, 2, 2)
	var wg sync.WaitGroup
	var mu sync.Mutex
	completions := 0
	for p := 0; p < peers; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			u := tensor.NewMatrix(1, 2)
			v := tensor.NewMatrix(1, 2)
			u.Fill(1)
			v.Fill(1)
			if grad, done, err := a.Offer(0, p, &tensor.SufficientFactor{U: u, V: v}); done {
				mu.Lock()
				completions++
				mu.Unlock()
				if grad.At(0, 0) != peers {
					t.Errorf("grad[0][0] = %v, want %d", grad.At(0, 0), peers)
				}
			} else if err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if completions != 1 {
		t.Fatalf("completed %d times", completions)
	}
}

// Duplicate and out-of-range workers are protocol violations.
func TestAggregatorRejectsBadWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := NewAggregator(3, 3, 3)
	mk := func() *tensor.SufficientFactor {
		return &tensor.SufficientFactor{U: randM(rng, 1, 3), V: randM(rng, 1, 3)}
	}
	if _, _, err := a.Offer(0, 3, mk()); err == nil {
		t.Fatal("want out-of-range worker error")
	}
	if _, _, err := a.Offer(0, 1, mk()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.Offer(0, 1, mk()); err == nil {
		t.Fatal("want duplicate-offer error")
	}
}

// The reconstructed gradient must be bit-identical whatever order the
// factors arrived in: they fold in worker-id order.
func TestAggregatorFoldIsArrivalOrderInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const peers, m, n = 3, 4, 5
	factors := make([]*tensor.SufficientFactor, peers)
	for p := range factors {
		factors[p] = &tensor.SufficientFactor{U: randM(rng, 2, m), V: randM(rng, 2, n)}
	}
	var want *tensor.Matrix
	for oi, order := range [][]int{{0, 1, 2}, {2, 1, 0}, {1, 2, 0}} {
		a := NewAggregator(peers, m, n)
		var grad *tensor.Matrix
		for _, p := range order {
			var err error
			grad, _, err = a.Offer(0, p, factors[p])
			if err != nil {
				t.Fatal(err)
			}
		}
		if oi == 0 {
			want = grad
			continue
		}
		for i, v := range grad.Data {
			if v != want.Data[i] {
				t.Fatalf("order %v diverged from first order at elem %d: %g vs %g", order, i, v, want.Data[i])
			}
		}
	}
}

func TestAggregatorShapePanic(t *testing.T) {
	a := NewAggregator(1, 2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.Offer(0, 0, tensor.NewSufficientFactor(1, 3, 3))
}

// Bank hands out one shared aggregator per parameter and rejects
// conflicting re-registrations.
func TestBank(t *testing.T) {
	b := NewBank()
	a1 := b.Ensure(3, 2, 4, 4)
	a2 := b.Ensure(3, 2, 4, 4)
	if a1 != a2 {
		t.Fatal("Ensure must return the same aggregator for one index")
	}
	if _, ok := b.Get(3); !ok {
		t.Fatal("Get lost the aggregator")
	}
	if _, ok := b.Get(9); ok {
		t.Fatal("Get invented an aggregator")
	}
	u := tensor.NewMatrix(1, 4)
	v := tensor.NewMatrix(1, 4)
	if _, done, err := a1.Offer(0, 0, &tensor.SufficientFactor{U: u, V: v}); done || err != nil {
		t.Fatalf("one of two contributions cannot complete the iteration (err %v)", err)
	}
	if b.PendingIters() != 1 {
		t.Fatalf("PendingIters = %d, want 1", b.PendingIters())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("conflicting Ensure must panic")
		}
	}()
	b.Ensure(3, 5, 4, 4)
}
