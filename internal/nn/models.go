package nn

// Model zoo. Shapes follow the original publications; parameter totals
// are asserted against Table 3 of the Poseidon paper in models_test.go.

// CIFARQuick returns Caffe's "CIFAR-10 quick" toy CNN (145.6K params,
// batch 100), the network used in the paper's Figure 11 convergence
// comparison against 1-bit quantization.
func CIFARQuick() *Model {
	b := newBuilder("cifar10-quick", "CIFAR10", 100, Shape{C: 3, H: 32, W: 32})
	b.conv("conv1", 5, 1, 2, 32).poolPad(3, 2, 1).relu()
	b.conv("conv2", 5, 1, 2, 32).relu().poolPad(3, 2, 1)
	b.conv("conv3", 5, 1, 2, 64).relu().poolPad(3, 2, 1)
	b.fc("ip1", 64)
	b.fc("ip2", 10)
	b.softmax()
	return b.build()
}

// AlexNet returns Krizhevsky's AlexNet (61.5M params, batch 256), used
// in the paper's Section 2.2 bandwidth back-of-envelope (240M gradients
// per 0.25s batch on a Titan X → >26 Gbps demanded on 8 nodes).
func AlexNet() *Model {
	b := newBuilder("alexnet", "ILSVRC12", 256, Shape{C: 3, H: 227, W: 227})
	b.conv("conv1", 11, 4, 0, 96).relu().lrn().pool(3, 2)
	b.convG("conv2", 5, 1, 2, 256, 2).relu().lrn().pool(3, 2)
	b.conv("conv3", 3, 1, 1, 384).relu()
	b.convG("conv4", 3, 1, 1, 384, 2).relu()
	b.convG("conv5", 3, 1, 1, 256, 2).relu().pool(3, 2)
	b.fc("fc6", 4096).relu().dropout()
	b.fc("fc7", 4096).relu().dropout()
	b.fc("fc8", 1000)
	b.softmax()
	return b.build()
}

// vgg19 builds VGG19 with an nClasses-way classifier.
func vgg19(name string, nClasses int, dataset string) *Model {
	b := newBuilder(name, dataset, 32, Shape{C: 3, H: 224, W: 224})
	block := func(n, c int) {
		for i := 0; i < n; i++ {
			b.conv("", 3, 1, 1, c).relu()
		}
		b.pool(2, 2)
	}
	block(2, 64)
	block(2, 128)
	block(4, 256)
	block(4, 512)
	block(4, 512)
	b.fc("fc6", 4096).relu().dropout()
	b.fc("fc7", 4096).relu().dropout()
	b.fc("fc8", nClasses)
	b.softmax()
	return b.build()
}

// VGG19 returns the 143M-parameter VGG19 network (batch 32).
func VGG19() *Model { return vgg19("vgg19", 1000, "ILSVRC12") }

// VGG19_22K returns VGG19 with its 1000-way classifier replaced by a
// 21841-way classifier for ImageNet22K (229M params, batch 32) — the
// paper's most communication-bound workload.
func VGG19_22K() *Model { return vgg19("vgg19-22k", 21841, "ImageNet22K") }

// inception emits a GoogLeNet inception module on the current volume:
// four parallel branches (1×1; 1×1→3×3; 1×1→5×5; pool→1×1 proj)
// concatenated along channels.
func inception(b *builder, name string, c1, c3r, c3, c5r, c5, proj int) {
	in := b.cur
	b.conv(name+"/1x1", 1, 1, 0, c1)
	b.setShape(in)
	b.conv(name+"/3x3_reduce", 1, 1, 0, c3r).conv(name+"/3x3", 3, 1, 1, c3)
	b.setShape(in)
	b.conv(name+"/5x5_reduce", 1, 1, 0, c5r).conv(name+"/5x5", 5, 1, 2, c5)
	b.setShape(in)
	b.poolPad(3, 1, 1).conv(name+"/pool_proj", 1, 1, 0, proj)
	b.concatTo(c1 + c3 + c5 + proj)
}

// GoogLeNet returns the 22-layer GoogLeNet (≈6M params with its single
// 1000×1024 classifier; the paper rounds to 5M; batch 128). Its thin FC
// layer and large batch are why HybComm reduces to pure PS on it at 16
// nodes (Section 5.2).
func GoogLeNet() *Model {
	b := newBuilder("googlenet", "ILSVRC12", 128, Shape{C: 3, H: 224, W: 224})
	b.conv("conv1/7x7_s2", 7, 2, 3, 64).relu().poolPad(3, 2, 1).lrn()
	b.conv("conv2/3x3_reduce", 1, 1, 0, 64).relu()
	b.conv("conv2/3x3", 3, 1, 1, 192).relu().lrn().poolPad(3, 2, 1)
	inception(b, "inception_3a", 64, 96, 128, 16, 32, 32)
	inception(b, "inception_3b", 128, 128, 192, 32, 96, 64)
	b.poolPad(3, 2, 1)
	inception(b, "inception_4a", 192, 96, 208, 16, 48, 64)
	inception(b, "inception_4b", 160, 112, 224, 24, 64, 64)
	inception(b, "inception_4c", 128, 128, 256, 24, 64, 64)
	inception(b, "inception_4d", 112, 144, 288, 32, 64, 64)
	inception(b, "inception_4e", 256, 160, 320, 32, 128, 128)
	b.poolPad(3, 2, 1)
	inception(b, "inception_5a", 256, 160, 320, 32, 128, 128)
	inception(b, "inception_5b", 384, 192, 384, 48, 128, 128)
	b.globalPool().dropout()
	b.fc("loss3/classifier", 1000)
	b.softmax()
	return b.build()
}

// inceptionA emits an Inception-V3 "A" module (35×35 grid) with the
// given pool-projection width.
func inceptionA(b *builder, name string, pool int) {
	in := b.cur
	b.conv(name+"/1x1", 1, 1, 0, 64)
	b.setShape(in)
	b.conv(name+"/5x5_r", 1, 1, 0, 48).conv(name+"/5x5", 5, 1, 2, 64)
	b.setShape(in)
	b.conv(name+"/3x3dbl_r", 1, 1, 0, 64).conv(name+"/3x3dbl_1", 3, 1, 1, 96).conv(name+"/3x3dbl_2", 3, 1, 1, 96)
	b.setShape(in)
	b.poolPad(3, 1, 1).conv(name+"/pool_proj", 1, 1, 0, pool)
	b.concatTo(64 + 64 + 96 + pool)
}

// inceptionB emits an Inception-V3 "B" module (17×17 grid) with 1×7/7×1
// factorized convolutions of intermediate width c7.
func inceptionB(b *builder, name string, c7 int) {
	in := b.cur
	b.conv(name+"/1x1", 1, 1, 0, 192)
	b.setShape(in)
	b.conv(name+"/7x7_r", 1, 1, 0, c7).
		convRect(name+"/1x7", 1, 7, 1, 0, 3, c7).
		convRect(name+"/7x1", 7, 1, 1, 3, 0, 192)
	b.setShape(in)
	b.conv(name+"/7x7dbl_r", 1, 1, 0, c7).
		convRect(name+"/7x1_a", 7, 1, 1, 3, 0, c7).
		convRect(name+"/1x7_a", 1, 7, 1, 0, 3, c7).
		convRect(name+"/7x1_b", 7, 1, 1, 3, 0, c7).
		convRect(name+"/1x7_b", 1, 7, 1, 0, 3, 192)
	b.setShape(in)
	b.poolPad(3, 1, 1).conv(name+"/pool_proj", 1, 1, 0, 192)
	b.concatTo(192 * 4)
}

// inceptionC emits an Inception-V3 "C" module (8×8 grid).
func inceptionC(b *builder, name string) {
	in := b.cur
	b.conv(name+"/1x1", 1, 1, 0, 320)
	b.setShape(in)
	b.conv(name+"/3x3_r", 1, 1, 0, 384).convRect(name+"/1x3", 1, 3, 1, 0, 1, 384)
	b.setShape(Shape{C: 384, H: in.H, W: in.W})
	b.convRect(name+"/3x1", 3, 1, 1, 1, 0, 384)
	b.setShape(in)
	b.conv(name+"/3x3dbl_r", 1, 1, 0, 448).conv(name+"/3x3dbl", 3, 1, 1, 384).
		convRect(name+"/1x3_b", 1, 3, 1, 0, 1, 384)
	b.setShape(Shape{C: 384, H: in.H, W: in.W})
	b.convRect(name+"/3x1_b", 3, 1, 1, 1, 0, 384)
	b.setShape(in)
	b.poolPad(3, 1, 1).conv(name+"/pool_proj", 1, 1, 0, 192)
	b.concatTo(320 + 768 + 768 + 192)
}

// InceptionV3 returns Inception-V3 (≈27M params including the auxiliary
// classifier, batch 32), the network on which Poseidon-TensorFlow
// reports 31.5x speedup on 32 nodes.
func InceptionV3() *Model {
	b := newBuilder("inception-v3", "ILSVRC12", 32, Shape{C: 3, H: 299, W: 299})
	// Stem.
	b.conv("conv0", 3, 2, 0, 32).bn().relu()
	b.conv("conv1", 3, 1, 0, 32).bn().relu()
	b.conv("conv2", 3, 1, 1, 64).bn().relu().pool(3, 2)
	b.conv("conv3", 1, 1, 0, 80).bn().relu()
	b.conv("conv4", 3, 1, 0, 192).bn().relu().pool(3, 2)
	// 35×35.
	inceptionA(b, "mixed0", 32)
	inceptionA(b, "mixed1", 64)
	inceptionA(b, "mixed2", 64)
	// Reduction A → 17×17.
	in := b.cur
	b.conv("mixed3/3x3", 3, 2, 0, 384)
	red := b.cur
	b.setShape(in)
	b.conv("mixed3/3x3dbl_r", 1, 1, 0, 64).conv("mixed3/3x3dbl_1", 3, 1, 1, 96).conv("mixed3/3x3dbl_2", 3, 2, 0, 96)
	b.setShape(in)
	b.pool(3, 2)
	b.setShape(Shape{C: 288 + 384 + 96, H: red.H, W: red.W})
	// 17×17.
	inceptionB(b, "mixed4", 128)
	inceptionB(b, "mixed5", 160)
	inceptionB(b, "mixed6", 160)
	inceptionB(b, "mixed7", 192)
	// Auxiliary classifier (trained, so its parameters synchronize too).
	auxIn := b.cur
	b.poolPad(5, 3, 0).conv("aux/conv0", 1, 1, 0, 128).conv("aux/conv1", 5, 1, 0, 768)
	b.fc("aux/fc", 1000)
	b.setShape(auxIn)
	// Reduction B → 8×8.
	in = b.cur
	b.conv("mixed8/3x3_r", 1, 1, 0, 192).conv("mixed8/3x3", 3, 2, 0, 320)
	red = b.cur
	b.setShape(in)
	b.conv("mixed8/7x7x3_r", 1, 1, 0, 192).
		convRect("mixed8/1x7", 1, 7, 1, 0, 3, 192).
		convRect("mixed8/7x1", 7, 1, 1, 3, 0, 192).
		conv("mixed8/3x3b", 3, 2, 0, 192)
	b.setShape(in)
	b.pool(3, 2)
	b.setShape(Shape{C: 768 + 320 + 192, H: red.H, W: red.W})
	// 8×8.
	inceptionC(b, "mixed9")
	inceptionC(b, "mixed10")
	b.globalPool().dropout()
	b.fc("logits", 1000)
	b.softmax()
	return b.build()
}

// bottleneck emits one ResNet bottleneck (1×1 reduce, 3×3, 1×1 expand),
// with a projection shortcut when downsampling or widening.
func bottleneck(b *builder, name string, mid, out, stride int, project bool) {
	in := b.cur
	b.conv(name+"/conv1", 1, stride, 0, mid).bn().relu()
	b.conv(name+"/conv2", 3, 1, 1, mid).bn().relu()
	b.conv(name+"/conv3", 1, 1, 0, out).bn()
	main := b.cur
	if project {
		b.setShape(in)
		b.conv(name+"/proj", 1, stride, 0, out).bn()
	}
	b.setShape(main)
	b.addJoin().relu()
}

// ResNet152 returns the 152-layer residual network (60.2M params, batch
// 32) used in the paper's statistical-performance experiment (Fig. 9).
func ResNet152() *Model {
	b := newBuilder("resnet-152", "ILSVRC12", 32, Shape{C: 3, H: 224, W: 224})
	b.conv("conv1", 7, 2, 3, 64).bn().relu().poolPad(3, 2, 1)
	stages := []struct {
		name   string
		blocks int
		mid    int
		out    int
		stride int
	}{
		{"res2", 3, 64, 256, 1},
		{"res3", 8, 128, 512, 2},
		{"res4", 36, 256, 1024, 2},
		{"res5", 3, 512, 2048, 2},
	}
	for _, st := range stages {
		for i := 0; i < st.blocks; i++ {
			stride := 1
			if i == 0 {
				stride = st.stride
			}
			name := st.name + string(rune('a'+i%26))
			if i >= 26 {
				name = st.name + "a" + string(rune('a'+(i-26)))
			}
			bottleneck(b, name, st.mid, st.out, stride, i == 0)
		}
	}
	b.globalPool()
	b.fc("fc1000", 1000)
	b.softmax()
	return b.build()
}

// Zoo returns every Table 3 network, in the paper's row order.
func Zoo() []*Model {
	return []*Model{
		CIFARQuick(), GoogLeNet(), InceptionV3(), VGG19(), VGG19_22K(), ResNet152(),
	}
}
