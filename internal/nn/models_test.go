package nn

import (
	"math"
	"testing"
)

// within checks got is within frac of want.
func within(t *testing.T, name string, got, want int64, frac float64) {
	t.Helper()
	diff := math.Abs(float64(got-want)) / float64(want)
	if diff > frac {
		t.Errorf("%s params = %d, want %d ±%.0f%% (off by %.1f%%)",
			name, got, want, frac*100, diff*100)
	}
}

// Table 3 of the paper. CIFAR-quick and the VGG variants have exactly
// known counts; the inception-family networks are matched within a
// tolerance (the paper itself rounds GoogLeNet's ~6M to "5M").
func TestTable3ParamCounts(t *testing.T) {
	within(t, "cifar10-quick", CIFARQuick().TotalParams(), 145578, 0.001)
	within(t, "googlenet", GoogLeNet().TotalParams(), 6000000, 0.20)
	within(t, "inception-v3", InceptionV3().TotalParams(), 27000000, 0.15)
	within(t, "vgg19", VGG19().TotalParams(), 143667240, 0.001)
	within(t, "vgg19-22k", VGG19_22K().TotalParams(), 229000000, 0.01)
	within(t, "resnet-152", ResNet152().TotalParams(), 60200000, 0.10)
	within(t, "alexnet", AlexNet().TotalParams(), 61000000, 0.05)
}

func TestVGG19ExactStructure(t *testing.T) {
	m := VGG19()
	// 16 conv + 3 fc.
	var conv, fc int
	for i := range m.Layers {
		switch m.Layers[i].Kind {
		case Conv:
			conv++
		case FC:
			fc++
		}
	}
	if conv != 16 || fc != 3 {
		t.Fatalf("VGG19 has %d conv + %d fc, want 16 + 3", conv, fc)
	}
	// fc6: 25088→4096.
	fc6 := m.Layer("fc6")
	if fc6 == nil || fc6.InDim != 25088 || fc6.OutDim != 4096 {
		t.Fatalf("fc6 = %+v, want 25088→4096", fc6)
	}
	if p := fc6.Params(); p != 25088*4096+4096 {
		t.Fatalf("fc6 params = %d", p)
	}
}

// Paper, Section 5.1: VGG19-22K's three FC layers hold 91% of its
// parameters.
func TestVGG22KFCFraction(t *testing.T) {
	m := VGG19_22K()
	frac := float64(m.FCParams()) / float64(m.TotalParams())
	if frac < 0.89 || frac > 0.93 {
		t.Fatalf("FC fraction = %.3f, want ≈0.91", frac)
	}
	fc8 := m.Layer("fc8")
	if fc8.OutDim != 21841 {
		t.Fatalf("fc8 OutDim = %d, want 21841", fc8.OutDim)
	}
}

// GoogLeNet has exactly one thin FC layer (1000×1024), the reason
// HybComm reduces to PS for it at batch 128 (Section 5.2).
func TestGoogLeNetClassifier(t *testing.T) {
	m := GoogLeNet()
	var fcs []*Layer
	for i := range m.Layers {
		if m.Layers[i].Kind == FC {
			fcs = append(fcs, &m.Layers[i])
		}
	}
	if len(fcs) != 1 {
		t.Fatalf("GoogLeNet has %d FC layers, want 1", len(fcs))
	}
	if fcs[0].InDim != 1024 || fcs[0].OutDim != 1000 {
		t.Fatalf("classifier is %d→%d, want 1024→1000", fcs[0].InDim, fcs[0].OutDim)
	}
	if m.BatchSize != 128 {
		t.Fatalf("batch = %d, want 128", m.BatchSize)
	}
}

func TestCIFARQuickExact(t *testing.T) {
	m := CIFARQuick()
	if got := m.TotalParams(); got != 145578 {
		t.Fatalf("params = %d, want 145578", got)
	}
	// conv1: 5·5·3·32 + 32; ip1: 1024·64 + 64; ip2: 64·10 + 10.
	if p := m.Layer("conv1").Params(); p != 5*5*3*32+32 {
		t.Fatalf("conv1 params = %d", p)
	}
	if p := m.Layer("ip1").Params(); p != 1024*64+64 {
		t.Fatalf("ip1 params = %d (in=%d)", p, m.Layer("ip1").InDim)
	}
	if p := m.Layer("ip2").Params(); p != 64*10+10 {
		t.Fatalf("ip2 params = %d", p)
	}
}

// Section 2.2 worked example: AlexNet has 61.5M params; on a Titan X a
// 256-image batch takes ~0.25s, producing ~240M gradients/s.
func TestAlexNetSection22Example(t *testing.T) {
	m := AlexNet()
	p := m.TotalParams()
	if p < 58_000_000 || p > 64_000_000 {
		t.Fatalf("AlexNet params = %d, want ≈61.5M", p)
	}
	// fc6 dominates: 9216×4096.
	fc6 := m.Layer("fc6")
	if fc6.InDim != 9216 {
		t.Fatalf("fc6 InDim = %d, want 9216", fc6.InDim)
	}
}

func TestOutputShapes(t *testing.T) {
	for _, m := range Zoo() {
		last := m.Layers[len(m.Layers)-1]
		if last.Kind != Softmax {
			t.Errorf("%s: last layer is %v, want softmax", m.Name, last.Kind)
		}
		for i := range m.Layers {
			l := &m.Layers[i]
			if l.Out.C <= 0 || l.Out.H <= 0 || l.Out.W <= 0 {
				t.Errorf("%s/%s: non-positive output shape %v", m.Name, l.Name, l.Out)
			}
		}
	}
}

func TestFLOPsSanity(t *testing.T) {
	// VGG19 forward ≈ 39 GFLOPs per image (19.6 GMACs).
	v := VGG19()
	flops := v.FwdFLOPs(1)
	if flops < 30e9 || flops > 50e9 {
		t.Fatalf("VGG19 fwd FLOPs per image = %.1fG, want ≈39G", float64(flops)/1e9)
	}
	// Backward ≈ 2× forward for conv/fc dominated nets.
	ratio := float64(v.BwdFLOPs(1)) / float64(flops)
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("bwd/fwd ratio = %.2f, want ≈2", ratio)
	}
	// ResNet-152 ≈ 23 GFLOPs per image (11.5 GMACs).
	r := ResNet152().FwdFLOPs(1)
	if r < 15e9 || r > 32e9 {
		t.Fatalf("ResNet-152 fwd FLOPs = %.1fG, want ≈23G", float64(r)/1e9)
	}
	// GoogLeNet ≈ 3 GFLOPs per image.
	g := GoogLeNet().FwdFLOPs(1)
	if g < 2e9 || g > 5e9 {
		t.Fatalf("GoogLeNet fwd FLOPs = %.1fG, want ≈3G", float64(g)/1e9)
	}
	// FLOPs scale linearly with batch.
	if v.FwdFLOPs(8) != 8*flops {
		t.Fatal("FLOPs not linear in batch")
	}
}

func TestSyncLayersOnlyParameterized(t *testing.T) {
	m := VGG19()
	idx := m.SyncLayers()
	if len(idx) != 19 {
		t.Fatalf("VGG19 has %d sync layers, want 19", len(idx))
	}
	for _, i := range idx {
		if !m.Layers[i].HasParams() {
			t.Fatalf("layer %d has no params", i)
		}
	}
}

func TestGradMatrixShape(t *testing.T) {
	m := VGG19()
	fc7 := m.Layer("fc7")
	r, c := fc7.GradMatrixShape()
	if r != 4096 || c != 4096 {
		t.Fatalf("fc7 grad shape %dx%d, want 4096x4096", r, c)
	}
	if !fc7.SFCapable() {
		t.Fatal("fc7 must be SF-capable")
	}
	conv := m.Layers[1] // first conv
	if conv.SFCapable() {
		t.Fatal("conv layers must not be SF-capable")
	}
	r, c = conv.GradMatrixShape()
	if r != conv.Params() || c != 1 {
		t.Fatalf("conv grad shape %dx%d", r, c)
	}
}

func TestLayerStringAndKindString(t *testing.T) {
	m := VGG19()
	if s := m.Layer("fc6").String(); s == "" {
		t.Fatal("empty layer string")
	}
	if Conv.String() != "conv" || FC.String() != "fc" {
		t.Fatal("kind names wrong")
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind must still render")
	}
}

func TestModelSummary(t *testing.T) {
	for _, m := range Zoo() {
		if m.Summary() == "" {
			t.Fatalf("%s: empty summary", m.Name)
		}
		if m.ParamBytes() != 4*m.TotalParams() {
			t.Fatalf("%s: ParamBytes mismatch", m.Name)
		}
	}
}
