package nn

import "fmt"

// Model is an ordered stack of layers plus the training configuration
// the paper reports for it (Table 3).
type Model struct {
	Name      string
	Dataset   string
	BatchSize int // per-GPU batch size from Table 3
	Layers    []Layer
}

// TotalParams returns the total trainable parameter count.
func (m *Model) TotalParams() int64 {
	var sum int64
	for i := range m.Layers {
		sum += m.Layers[i].Params()
	}
	return sum
}

// ParamBytes returns the float32 byte size of all parameters.
func (m *Model) ParamBytes() int64 { return 4 * m.TotalParams() }

// FCParams returns the parameter count held in FC layers. The paper
// notes VGG19-22K keeps 91% of its parameters in three FC layers, which
// is what makes HybComm decisive for it.
func (m *Model) FCParams() int64 {
	var sum int64
	for i := range m.Layers {
		if m.Layers[i].Kind == FC {
			sum += m.Layers[i].Params()
		}
	}
	return sum
}

// FwdFLOPs returns total forward FLOPs for one batch of size b.
func (m *Model) FwdFLOPs(b int) int64 {
	var sum int64
	for i := range m.Layers {
		sum += m.Layers[i].FwdFLOPs(b)
	}
	return sum
}

// BwdFLOPs returns total backward FLOPs for one batch of size b.
func (m *Model) BwdFLOPs(b int) int64 {
	var sum int64
	for i := range m.Layers {
		sum += m.Layers[i].BwdFLOPs(b)
	}
	return sum
}

// SyncLayers returns the indices of layers that carry parameters, in
// network order. These are the layers that get syncers in Poseidon.
func (m *Model) SyncLayers() []int {
	var idx []int
	for i := range m.Layers {
		if m.Layers[i].HasParams() {
			idx = append(idx, i)
		}
	}
	return idx
}

// Layer returns the layer with the given name, or nil.
func (m *Model) Layer(name string) *Layer {
	for i := range m.Layers {
		if m.Layers[i].Name == name {
			return &m.Layers[i]
		}
	}
	return nil
}

// Summary renders a one-line description matching Table 3's columns.
func (m *Model) Summary() string {
	return fmt.Sprintf("%-14s %12d params  dataset=%-11s batch=%d",
		m.Name, m.TotalParams(), m.Dataset, m.BatchSize)
}

// builder accumulates layers while tracking the current activation shape.
type builder struct {
	model Model
	cur   Shape
	n     int
}

func newBuilder(name, dataset string, batch int, input Shape) *builder {
	b := &builder{model: Model{Name: name, Dataset: dataset, BatchSize: batch}, cur: input}
	b.model.Layers = append(b.model.Layers, Layer{
		Name: "data", Kind: Input, In: input, Out: input,
	})
	return b
}

func (b *builder) uniqueName(prefix string) string {
	b.n++
	return fmt.Sprintf("%s%d", prefix, b.n)
}

func convOut(in, k, stride, pad int) int {
	if stride <= 0 {
		stride = 1
	}
	return (in+2*pad-k)/stride + 1
}

// conv appends a convolution with square kernel k, given stride/pad and
// outC output channels, followed by an implicit bias (bias=true).
func (b *builder) conv(name string, k, stride, pad, outC int) *builder {
	return b.convG(name, k, stride, pad, outC, 1)
}

func (b *builder) convG(name string, k, stride, pad, outC, groups int) *builder {
	if name == "" {
		name = b.uniqueName("conv")
	}
	out := Shape{C: outC, H: convOut(b.cur.H, k, stride, pad), W: convOut(b.cur.W, k, stride, pad)}
	b.model.Layers = append(b.model.Layers, Layer{
		Name: name, Kind: Conv, In: b.cur, Out: out,
		KH: k, KW: k, Stride: stride, Pad: pad, OutC: outC, Groups: groups, Bias: true,
	})
	b.cur = out
	return b
}

// convRect appends a non-square convolution (kh×kw), as used by
// Inception-V3's factorized 1×7 / 7×1 convolutions.
func (b *builder) convRect(name string, kh, kw, stride, padH, padW, outC int) *builder {
	if name == "" {
		name = b.uniqueName("conv")
	}
	out := Shape{C: outC, H: convOut(b.cur.H, kh, stride, padH), W: convOut(b.cur.W, kw, stride, padW)}
	b.model.Layers = append(b.model.Layers, Layer{
		Name: name, Kind: Conv, In: b.cur, Out: out,
		KH: kh, KW: kw, Stride: stride, Pad: padH, OutC: outC, Groups: 1, Bias: true,
	})
	b.cur = out
	return b
}

func (b *builder) relu() *builder {
	b.model.Layers = append(b.model.Layers, Layer{
		Name: b.uniqueName("relu"), Kind: ReLU, In: b.cur, Out: b.cur,
	})
	return b
}

func (b *builder) lrn() *builder {
	b.model.Layers = append(b.model.Layers, Layer{
		Name: b.uniqueName("lrn"), Kind: LRN, In: b.cur, Out: b.cur,
	})
	return b
}

func (b *builder) bn() *builder {
	b.model.Layers = append(b.model.Layers, Layer{
		Name: b.uniqueName("bn"), Kind: BatchNorm, In: b.cur, Out: b.cur,
	})
	return b
}

func (b *builder) pool(k, stride int) *builder {
	out := Shape{C: b.cur.C, H: convOut(b.cur.H, k, stride, 0), W: convOut(b.cur.W, k, stride, 0)}
	b.model.Layers = append(b.model.Layers, Layer{
		Name: b.uniqueName("pool"), Kind: Pool, In: b.cur, Out: out, KH: k, KW: k, Stride: stride,
	})
	b.cur = out
	return b
}

func (b *builder) poolPad(k, stride, pad int) *builder {
	out := Shape{C: b.cur.C, H: convOut(b.cur.H, k, stride, pad), W: convOut(b.cur.W, k, stride, pad)}
	b.model.Layers = append(b.model.Layers, Layer{
		Name: b.uniqueName("pool"), Kind: Pool, In: b.cur, Out: out, KH: k, KW: k, Stride: stride,
	})
	b.cur = out
	return b
}

// globalPool reduces H×W to 1×1.
func (b *builder) globalPool() *builder {
	out := Shape{C: b.cur.C, H: 1, W: 1}
	b.model.Layers = append(b.model.Layers, Layer{
		Name: b.uniqueName("pool"), Kind: Pool, In: b.cur, Out: out,
		KH: b.cur.H, KW: b.cur.W, Stride: 1,
	})
	b.cur = out
	return b
}

func (b *builder) fc(name string, outDim int) *builder {
	if name == "" {
		name = b.uniqueName("fc")
	}
	in := int(b.cur.Elems())
	out := Shape{C: outDim, H: 1, W: 1}
	b.model.Layers = append(b.model.Layers, Layer{
		Name: name, Kind: FC, In: b.cur, Out: out,
		InDim: in, OutDim: outDim, Bias: true,
	})
	b.cur = out
	return b
}

func (b *builder) dropout() *builder {
	b.model.Layers = append(b.model.Layers, Layer{
		Name: b.uniqueName("drop"), Kind: Dropout, In: b.cur, Out: b.cur,
	})
	return b
}

func (b *builder) softmax() *builder {
	b.model.Layers = append(b.model.Layers, Layer{
		Name: "prob", Kind: Softmax, In: b.cur, Out: b.cur,
	})
	return b
}

// setChannels overrides the tracked channel count after a concat of
// parallel branches (the builder models branch layers sequentially for
// accounting purposes; the concat fixes up the resulting volume).
func (b *builder) concatTo(c int) *builder {
	out := Shape{C: c, H: b.cur.H, W: b.cur.W}
	b.model.Layers = append(b.model.Layers, Layer{
		Name: b.uniqueName("concat"), Kind: Concat, In: b.cur, Out: out,
	})
	b.cur = out
	return b
}

// setShape forcibly sets the tracked shape (used when emitting parallel
// branches whose inputs all come from the same volume).
func (b *builder) setShape(s Shape) *builder {
	b.cur = s
	return b
}

func (b *builder) addJoin() *builder {
	b.model.Layers = append(b.model.Layers, Layer{
		Name: b.uniqueName("add"), Kind: Add, In: b.cur, Out: b.cur,
	})
	return b
}

func (b *builder) build() *Model {
	m := b.model
	return &m
}
