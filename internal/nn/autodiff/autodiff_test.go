package autodiff

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// numericGrad estimates dLoss/dparam[i] by central differences.
func numericGrad(net *Network, x *tensor.Matrix, labels []int, p *tensor.Matrix, i int) float64 {
	const eps = 1e-3
	orig := p.Data[i]
	p.Data[i] = orig + eps
	lp, _ := net.Eval(x, labels)
	p.Data[i] = orig - eps
	lm, _ := net.Eval(x, labels)
	p.Data[i] = orig
	return (lp - lm) / (2 * eps)
}

func checkGradients(t *testing.T, net *Network, in int, batch int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	x := tensor.NewMatrix(batch, in)
	x.Randn(rng, 1)
	labels := make([]int, batch)
	for i := range labels {
		labels[i] = rng.Intn(net.Classes)
	}
	net.ZeroGrads()
	net.LossAndGrad(x, labels)
	params, grads := net.Params(), net.Grads()
	for pi, p := range params {
		// Spot-check a few entries per tensor.
		for _, idx := range []int{0, p.NumParams() / 2, p.NumParams() - 1} {
			want := numericGrad(net, x, labels, p, idx)
			got := float64(grads[pi].Data[idx])
			if math.Abs(got-want) > 1e-2*(1+math.Abs(want)) {
				t.Errorf("param %d[%d]: analytic %.5f vs numeric %.5f", pi, idx, got, want)
			}
		}
	}
}

// The definitive autodiff test: analytic gradients match numeric ones.
func TestMLPGradientsNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := MLPNet(6, []int{5}, 3, rng)
	checkGradients(t, net, 6, 4, 2)
}

func TestConvNetGradientsNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net, c, h, w := CIFARQuickNet(4, 4, rng) // 8×8 inputs for speed
	checkGradients(t, net, c*h*w, 3, 4)
}

func TestSoftmaxCrossEntropyBasics(t *testing.T) {
	logits := tensor.FromSlice(2, 3, []float32{10, 0, 0, 0, 10, 0})
	probs, loss, errs := SoftmaxCrossEntropy(logits, []int{0, 1})
	if errs != 0 {
		t.Fatalf("errs = %d", errs)
	}
	if loss > 0.01 {
		t.Fatalf("confident correct predictions should have tiny loss: %v", loss)
	}
	if probs.At(0, 0) < 0.99 {
		t.Fatalf("prob = %v", probs.At(0, 0))
	}
	_, _, errs = SoftmaxCrossEntropy(logits, []int{1, 0})
	if errs != 2 {
		t.Fatalf("errs = %d, want 2", errs)
	}
	// Row sums to 1.
	var sum float32
	for _, v := range probs.Row(0) {
		sum += v
	}
	if math.Abs(float64(sum)-1) > 1e-5 {
		t.Fatalf("probs don't sum to 1: %v", sum)
	}
}

// FC sufficient factors must reconstruct the exact weight gradient.
func TestFCSufficientFactorMatchesGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	fc := NewFC("fc", 7, 4, rng)
	x := tensor.NewMatrix(5, 7)
	x.Randn(rng, 1)
	y := fc.Forward(x)
	dout := tensor.NewMatrix(y.Rows, y.Cols)
	dout.Randn(rng, 1)
	fc.ZeroGrads()
	fc.Backward(dout)
	sf := fc.SufficientFactor()
	if !sf.Reconstruct().ApproxEqual(fc.GW, 1e-4) {
		t.Fatal("SF reconstruction != GW")
	}
}

func TestReLUForwardBackward(t *testing.T) {
	r := NewReLU("r")
	x := tensor.FromSlice(1, 4, []float32{-1, 2, 0, 3})
	y := r.Forward(x)
	want := []float32{0, 2, 0, 3}
	for i, v := range y.Data {
		if v != want[i] {
			t.Fatalf("forward[%d] = %v", i, v)
		}
	}
	dx := r.Backward(tensor.FromSlice(1, 4, []float32{1, 1, 1, 1}))
	wantDx := []float32{0, 1, 0, 1}
	for i, v := range dx.Data {
		if v != wantDx[i] {
			t.Fatalf("backward[%d] = %v", i, v)
		}
	}
}

func TestMaxPoolForwardBackward(t *testing.T) {
	p := NewMaxPool2("p", 1, 2, 2)
	x := tensor.FromSlice(1, 4, []float32{1, 5, 3, 2})
	y := p.Forward(x)
	if y.Cols != 1 || y.Data[0] != 5 {
		t.Fatalf("pool forward = %v", y.Data)
	}
	dx := p.Backward(tensor.FromSlice(1, 1, []float32{7}))
	want := []float32{0, 7, 0, 0}
	for i, v := range dx.Data {
		if v != want[i] {
			t.Fatalf("pool backward[%d] = %v", i, v)
		}
	}
}

// Training on a trivially separable problem must drive the loss down —
// the end-to-end sanity check for the whole runtime.
func TestTrainingReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net := MLPNet(4, []int{16}, 2, rng)
	x := tensor.NewMatrix(32, 4)
	labels := make([]int, 32)
	for i := 0; i < 32; i++ {
		cls := i % 2
		labels[i] = cls
		for j := 0; j < 4; j++ {
			x.Set(i, j, float32(rng.NormFloat64())*0.1+float32(cls)*2-1)
		}
	}
	first, _ := net.Eval(x, labels)
	for it := 0; it < 200; it++ {
		net.ZeroGrads()
		net.LossAndGrad(x, labels)
		net.SGDStep(0.1)
	}
	last, errRate := net.Eval(x, labels)
	if last > first/4 {
		t.Fatalf("loss %0.4f → %0.4f: did not train", first, last)
	}
	if errRate > 0.05 {
		t.Fatalf("error rate %.2f after training", errRate)
	}
}

func TestNumParamsAndNames(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	net := MLPNet(4, []int{8}, 2, rng)
	want := 4*8 + 8 + 8*2 + 2
	if got := net.NumParams(); got != want {
		t.Fatalf("NumParams = %d, want %d", got, want)
	}
	for _, l := range net.Layers {
		if l.Name() == "" {
			t.Fatal("unnamed layer")
		}
	}
}

func TestConvOutputShapePanic(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewConv2D("bad", 1, 2, 2, 1, 5, 1, 0, rng)
}
