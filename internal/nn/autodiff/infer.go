package autodiff

import (
	"math"

	"repro/internal/tensor"
)

// Predictor runs forward passes over a network without touching
// training state: no saved activations, no ReLU masks, no pooling
// argmax — and no per-call allocations once its per-layer scratch has
// warmed up to the largest batch seen. That makes it the serving-plane
// counterpart of Forward, whose layers both allocate their outputs and
// record backward state on every call.
//
// A Predictor is not safe for concurrent use; callers that serve
// concurrently pool one per in-flight forward pass.
type Predictor struct {
	net  *Network
	bufs []*tensor.Matrix
}

// NewPredictor wraps net for inference. The network's parameters stay
// shared with net — loading new values into net.Params() changes what
// the predictor serves.
func NewPredictor(net *Network) *Predictor {
	p := &Predictor{net: net, bufs: make([]*tensor.Matrix, len(net.Layers))}
	for i := range p.bufs {
		p.bufs[i] = tensor.NewMatrix(0, 0)
	}
	return p
}

// Net exposes the predictor's replica so snapshot parameters can be
// loaded into it.
func (p *Predictor) Net() *Network { return p.net }

// SoftmaxInto writes the row-wise softmax of logits into dst, resized
// to match. The per-element arithmetic (float64 exp and division,
// truncated to float32 per term) is exactly SoftmaxCrossEntropy's, so
// served probabilities are bit-identical to what training-side
// evaluation computes from the same logits.
func SoftmaxInto(dst, logits *tensor.Matrix) {
	dst.Resize(logits.Rows, logits.Cols)
	for i := 0; i < logits.Rows; i++ {
		row := logits.Row(i)
		max := row[0]
		for _, v := range row {
			if v > max {
				max = v
			}
		}
		var sum float64
		out := dst.Row(i)
		for j, v := range row {
			e := math.Exp(float64(v - max))
			out[j] = float32(e)
			sum += e
		}
		for j := range out {
			out[j] = float32(float64(out[j]) / sum)
		}
	}
}

// Forward returns the logits for a batch. The result is the
// predictor's own scratch, valid only until the next Forward.
func (p *Predictor) Forward(x *tensor.Matrix) *tensor.Matrix {
	for i, l := range p.net.Layers {
		dst := p.bufs[i]
		switch l := l.(type) {
		case *FC:
			dst.Resize(x.Rows, l.W.Rows)
			tensor.MulTransBInto(dst, x, l.W)
			for r := 0; r < dst.Rows; r++ {
				row := dst.Row(r)
				for j, b := range l.B.Row(0) {
					row[j] += b
				}
			}
		case *Conv2D:
			dst.Resize(x.Rows, l.OutC*l.OutH*l.OutW)
			l.forwardInto(dst, x)
		case *ReLU:
			dst.Resize(x.Rows, x.Cols)
			for k, v := range x.Data {
				if v > 0 {
					dst.Data[k] = v
				} else {
					dst.Data[k] = 0
				}
			}
		case *MaxPool2:
			dst.Resize(x.Rows, l.C*(l.H/2)*(l.W/2))
			l.forwardInto(dst, x, nil)
		default:
			// Unknown layer kinds fall back to the training path, which
			// allocates and records state — correct, just not thrifty.
			dst = l.Forward(x)
		}
		x = dst
	}
	return x
}
