package autodiff

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func randBatch(rng *rand.Rand, rows, cols int) *tensor.Matrix {
	x := tensor.NewMatrix(rows, cols)
	for i := range x.Data {
		x.Data[i] = float32(rng.NormFloat64())
	}
	return x
}

// TestPredictorMatchesForward demands bit-identical logits between the
// training Forward chain and the gradient-free Predictor, across both
// reference architectures and shrinking/growing batch sizes (the
// scratch-reuse path).
func TestPredictorMatchesForward(t *testing.T) {
	nets := map[string]*Network{}
	{
		rng := rand.New(rand.NewSource(7))
		net, _, _, _ := CIFARQuickNet(4, 10, rng)
		nets["cifarquick"] = net
	}
	nets["mlp"] = MLPNet(16, []int{32, 8}, 4, rand.New(rand.NewSource(8)))

	for name, net := range nets {
		p := NewPredictor(net)
		rng := rand.New(rand.NewSource(99))
		for _, rows := range []int{4, 1, 16, 3} {
			x := randBatch(rng, rows, net.InputDims())
			want := net.Forward(x)
			got := p.Forward(x)
			if got.Rows != want.Rows || got.Cols != want.Cols {
				t.Fatalf("%s rows=%d: predictor shape %dx%d, want %dx%d",
					name, rows, got.Rows, got.Cols, want.Rows, want.Cols)
			}
			for i, v := range want.Data {
				if got.Data[i] != v {
					t.Fatalf("%s rows=%d: logit[%d] = %g, want %g", name, rows, i, got.Data[i], v)
				}
			}
		}
	}
}

// TestPredictorLeavesTrainingStateAlone interleaves Predictor passes
// with a LossAndGrad step and checks the training trajectory is
// unchanged — inference must not perturb saved activations, masks, or
// gradients.
func TestPredictorLeavesTrainingStateAlone(t *testing.T) {
	build := func() *Network { return MLPNet(12, []int{24}, 3, rand.New(rand.NewSource(3))) }
	labels := []int{0, 2, 1, 0}

	rng := rand.New(rand.NewSource(42))
	x := randBatch(rng, 4, 12)
	probe := randBatch(rng, 8, 12)

	clean := build()
	clean.ZeroGrads()
	wantLoss, _ := clean.LossAndGrad(x, labels)
	clean.SGDStep(0.1)

	noisy := build()
	p := NewPredictor(noisy)
	p.Forward(probe)
	noisy.ZeroGrads()
	gotLoss, _ := noisy.LossAndGrad(x, labels)
	p.Forward(probe) // between backward and the step
	noisy.SGDStep(0.1)

	if gotLoss != wantLoss {
		t.Fatalf("loss with interleaved inference %g, want %g", gotLoss, wantLoss)
	}
	wantPs, gotPs := clean.Params(), noisy.Params()
	for i := range wantPs {
		for j, v := range wantPs[i].Data {
			if gotPs[i].Data[j] != v {
				t.Fatalf("param[%d][%d] = %g after interleaved inference, want %g",
					i, j, gotPs[i].Data[j], v)
			}
		}
	}
}

// TestPredictorSteadyStateAllocs pins the zero-allocation property the
// serving plane's latency budget rests on.
func TestPredictorSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net, _, _, _ := CIFARQuickNet(4, 10, rng)
	p := NewPredictor(net)
	x := randBatch(rng, 16, net.InputDims())
	p.Forward(x) // warm the scratch
	if allocs := testing.AllocsPerRun(20, func() { p.Forward(x) }); allocs > 0 {
		t.Fatalf("steady-state Predictor.Forward allocates %.1f times per op, want 0", allocs)
	}
}
