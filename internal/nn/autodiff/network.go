package autodiff

import (
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Network is an ordered stack of layers with a softmax cross-entropy
// head.
type Network struct {
	Layers  []Layer
	Classes int
}

// Forward runs the stack and returns the logits.
func (n *Network) Forward(x *tensor.Matrix) *tensor.Matrix {
	for _, l := range n.Layers {
		x = l.Forward(x)
	}
	return x
}

// InputDims returns the flattened feature count the network's first
// layer consumes (the required column count of a Forward batch), or -1
// when it cannot be derived from the layer kind.
func (n *Network) InputDims() int {
	if len(n.Layers) == 0 {
		return -1
	}
	switch l := n.Layers[0].(type) {
	case *Conv2D:
		return l.InC * l.InH * l.InW
	case *FC:
		return l.W.Cols
	default:
		return -1
	}
}

// LossAndGrad runs forward + softmax cross-entropy + full backward for a
// batch with integer labels, accumulating parameter gradients (mean over
// the batch). It returns the mean loss and the error count.
func (n *Network) LossAndGrad(x *tensor.Matrix, labels []int) (loss float64, errs int) {
	logits := n.Forward(x)
	probs, loss, errs := SoftmaxCrossEntropy(logits, labels)
	// dL/dlogits = (probs - onehot)/K.
	k := float32(x.Rows)
	dout := probs
	for i := 0; i < dout.Rows; i++ {
		row := dout.Row(i)
		row[labels[i]] -= 1
		for j := range row {
			row[j] /= k
		}
	}
	for i := len(n.Layers) - 1; i >= 0; i-- {
		dout = n.Layers[i].Backward(dout)
	}
	return loss, errs
}

// Eval returns the mean loss and error rate on a batch without touching
// gradients.
func (n *Network) Eval(x *tensor.Matrix, labels []int) (loss float64, errRate float64) {
	logits := n.Forward(x)
	_, l, e := SoftmaxCrossEntropy(logits, labels)
	return l, float64(e) / float64(x.Rows)
}

// ZeroGrads clears every layer's gradients.
func (n *Network) ZeroGrads() {
	for _, l := range n.Layers {
		l.ZeroGrads()
	}
}

// Params returns all trainable tensors in layer order.
func (n *Network) Params() []*tensor.Matrix {
	var ps []*tensor.Matrix
	for _, l := range n.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// Grads returns all gradients in the same order as Params.
func (n *Network) Grads() []*tensor.Matrix {
	var gs []*tensor.Matrix
	for _, l := range n.Layers {
		gs = append(gs, l.Grads()...)
	}
	return gs
}

// SGDStep applies θ -= lr·∇θ to every parameter.
func (n *Network) SGDStep(lr float32) {
	ps, gs := n.Params(), n.Grads()
	for i := range ps {
		ps[i].AXPY(-lr, gs[i])
	}
}

// NumParams counts trainable scalars.
func (n *Network) NumParams() int {
	total := 0
	for _, p := range n.Params() {
		total += p.NumParams()
	}
	return total
}

// SoftmaxCrossEntropy computes row-wise softmax probabilities, the mean
// cross-entropy loss, and the argmax error count.
func SoftmaxCrossEntropy(logits *tensor.Matrix, labels []int) (probs *tensor.Matrix, loss float64, errs int) {
	probs = tensor.NewMatrix(logits.Rows, logits.Cols)
	for i := 0; i < logits.Rows; i++ {
		row := logits.Row(i)
		max := row[0]
		arg := 0
		for j, v := range row {
			if v > max {
				max = v
				arg = j
			}
		}
		if arg != labels[i] {
			errs++
		}
		var sum float64
		out := probs.Row(i)
		for j, v := range row {
			e := math.Exp(float64(v - max))
			out[j] = float32(e)
			sum += e
		}
		for j := range out {
			out[j] = float32(float64(out[j]) / sum)
		}
		p := float64(out[labels[i]])
		if p < 1e-12 {
			p = 1e-12
		}
		loss -= math.Log(p)
	}
	loss /= float64(logits.Rows)
	return probs, loss, errs
}

// CIFARQuickNet builds a scaled replica of Caffe's CIFAR-10-quick CNN:
// three 5×5 conv + pool stages followed by two FC layers. scale divides
// the spatial resolution (scale=1 → 32×32 inputs, the real network;
// scale=2 → 16×16; scale=4 → 8×8 for fast tests). The layer recipe and
// the conv/FC split match the paper's Fig. 11 workload.
func CIFARQuickNet(scale int, classes int, rng *rand.Rand) (*Network, int, int, int) {
	if scale < 1 {
		scale = 1
	}
	h := 32 / scale
	const inC = 3
	conv1 := NewConv2D("conv1", inC, h, h, 16, 5, 1, 2, rng)
	pool1 := NewMaxPool2("pool1", 16, h, h)
	conv2 := NewConv2D("conv2", 16, h/2, h/2, 16, 5, 1, 2, rng)
	pool2 := NewMaxPool2("pool2", 16, h/2, h/2)
	flat := 16 * (h / 4) * (h / 4)
	ip1 := NewFC("ip1", flat, 32, rng)
	ip2 := NewFC("ip2", 32, classes, rng)
	net := &Network{
		Layers: []Layer{
			conv1, NewReLU("relu1"), pool1,
			conv2, NewReLU("relu2"), pool2,
			ip1, NewReLU("relu3"),
			ip2,
		},
		Classes: classes,
	}
	return net, inC, h, h
}

// MLPNet builds a small all-FC network (every layer SF-capable), used by
// the trainer's SFB correctness tests and the quickstart example.
func MLPNet(in int, hidden []int, classes int, rng *rand.Rand) *Network {
	var layers []Layer
	prev := in
	for i, hdim := range hidden {
		layers = append(layers, NewFC(fcName(i), prev, hdim, rng), NewReLU("relu"))
		prev = hdim
	}
	layers = append(layers, NewFC("out", prev, classes, rng))
	return &Network{Layers: layers, Classes: classes}
}

func fcName(i int) string { return "fc" + string(rune('0'+i)) }
