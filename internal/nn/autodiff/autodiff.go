// Package autodiff implements a small, real neural-network runtime —
// actual float32 forward/backward passes, not descriptors — used by the
// functional plane for the paper's statistical experiments (Fig. 11:
// exact synchronization vs 1-bit quantization on a CIFAR-10-quick-style
// CNN).
//
// Activations are batch-major matrices (rows = samples, cols = flattened
// C·H·W features). FC layers expose their per-sample sufficient factors
// (u = output delta, v = input activation) so the trainer can route them
// through SFB.
package autodiff

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Layer is one differentiable stage.
type Layer interface {
	// Forward consumes a K×in batch and returns a K×out batch.
	Forward(x *tensor.Matrix) *tensor.Matrix
	// Backward consumes dL/dout (K×out) and returns dL/din (K×in),
	// accumulating parameter gradients internally.
	Backward(dout *tensor.Matrix) *tensor.Matrix
	// Params returns the layer's trainable tensors (possibly empty).
	Params() []*tensor.Matrix
	// Grads returns the gradients matching Params, zeroed by ZeroGrads.
	Grads() []*tensor.Matrix
	// ZeroGrads clears accumulated gradients.
	ZeroGrads()
	// Name identifies the layer.
	Name() string
}

// ---- Fully connected -------------------------------------------------------

// FC is a fully connected layer y = x·Wᵀ + b with W of shape out×in.
type FC struct {
	LayerName string
	W, B      *tensor.Matrix // W: out×in, B: 1×out
	GW, GB    *tensor.Matrix

	lastX    *tensor.Matrix // K×in, saved for backward
	lastDout *tensor.Matrix // K×out, saved for SF extraction

	// borrowedSF is the shared wrapper BorrowSufficientFactor hands
	// out, re-pointed at the live buffers on every call.
	borrowedSF tensor.SufficientFactor
}

// NewFC builds an FC layer with Xavier-style initialization from rng.
func NewFC(name string, in, out int, rng *rand.Rand) *FC {
	fc := &FC{
		LayerName: name,
		W:         tensor.NewMatrix(out, in),
		B:         tensor.NewMatrix(1, out),
		GW:        tensor.NewMatrix(out, in),
		GB:        tensor.NewMatrix(1, out),
	}
	fc.W.Randn(rng, math.Sqrt(2.0/float64(in)))
	return fc
}

// Name returns the layer name.
func (f *FC) Name() string { return f.LayerName }

// Forward computes y = x·Wᵀ + b.
func (f *FC) Forward(x *tensor.Matrix) *tensor.Matrix {
	f.lastX = x
	y := tensor.NewMatrix(x.Rows, f.W.Rows)
	tensor.MulTransBInto(y, x, f.W)
	for i := 0; i < y.Rows; i++ {
		row := y.Row(i)
		for j, b := range f.B.Row(0) {
			row[j] += b
		}
	}
	return y
}

// Backward accumulates dW = doutᵀ·x, db = Σ dout and returns dx = dout·W.
func (f *FC) Backward(dout *tensor.Matrix) *tensor.Matrix {
	f.lastDout = dout
	dW := tensor.NewMatrix(f.W.Rows, f.W.Cols)
	tensor.MulTransAInto(dW, dout, f.lastX)
	f.GW.Add(dW)
	for i := 0; i < dout.Rows; i++ {
		for j, v := range dout.Row(i) {
			f.GB.Data[j] += v
		}
	}
	dx := tensor.NewMatrix(dout.Rows, f.W.Cols)
	tensor.MulInto(dx, dout, f.W)
	return dx
}

// Params returns [W, B].
func (f *FC) Params() []*tensor.Matrix { return []*tensor.Matrix{f.W, f.B} }

// Grads returns [GW, GB].
func (f *FC) Grads() []*tensor.Matrix { return []*tensor.Matrix{f.GW, f.GB} }

// ZeroGrads clears the accumulated gradients.
func (f *FC) ZeroGrads() {
	f.GW.Zero()
	f.GB.Zero()
}

// SufficientFactor returns the rank-1 decomposition of the last
// backward pass's weight gradient: U = dout (K×out), V = x (K×in), so
// that ∇W = Uᵀ·V. The factors are deep-copied and safe to ship.
func (f *FC) SufficientFactor() *tensor.SufficientFactor {
	if f.lastDout == nil || f.lastX == nil {
		panic("autodiff: SufficientFactor before backward")
	}
	return &tensor.SufficientFactor{U: f.lastDout.Clone(), V: f.lastX.Clone()}
}

// BorrowSufficientFactor is SufficientFactor without the deep copy: the
// returned factor references the layer's live backward buffers and a
// shared wrapper struct, both valid only until the next forward/
// backward pass (or the next Borrow). The comm runtime uses it on the
// hot path — it encodes and copies the factor before the compute loop
// moves on — so shipping a gradient costs no per-iteration clone.
// Callers that retain the factor must Clone it.
func (f *FC) BorrowSufficientFactor() *tensor.SufficientFactor {
	if f.lastDout == nil || f.lastX == nil {
		panic("autodiff: SufficientFactor before backward")
	}
	f.borrowedSF.U, f.borrowedSF.V = f.lastDout, f.lastX
	return &f.borrowedSF
}

// ---- Convolution -----------------------------------------------------------

// Conv2D is a naive direct convolution over C×H×W inputs flattened
// row-major as (c*H+h)*W+w.
type Conv2D struct {
	LayerName            string
	InC, InH, InW        int
	OutC, K, Stride, Pad int
	OutH, OutW           int
	W, B                 *tensor.Matrix // W: OutC × (InC·K·K), B: 1×OutC
	GW, GB               *tensor.Matrix

	lastX *tensor.Matrix
}

// NewConv2D builds a conv layer with He initialization.
func NewConv2D(name string, inC, inH, inW, outC, k, stride, pad int, rng *rand.Rand) *Conv2D {
	outH := (inH+2*pad-k)/stride + 1
	outW := (inW+2*pad-k)/stride + 1
	if outH <= 0 || outW <= 0 {
		panic(fmt.Sprintf("autodiff: conv %s output %dx%d", name, outH, outW))
	}
	c := &Conv2D{
		LayerName: name,
		InC:       inC, InH: inH, InW: inW,
		OutC: outC, K: k, Stride: stride, Pad: pad,
		OutH: outH, OutW: outW,
		W:  tensor.NewMatrix(outC, inC*k*k),
		B:  tensor.NewMatrix(1, outC),
		GW: tensor.NewMatrix(outC, inC*k*k),
		GB: tensor.NewMatrix(1, outC),
	}
	c.W.Randn(rng, math.Sqrt(2.0/float64(inC*k*k)))
	return c
}

// Name returns the layer name.
func (c *Conv2D) Name() string { return c.LayerName }

func (c *Conv2D) inIdx(ch, h, w int) int  { return (ch*c.InH+h)*c.InW + w }
func (c *Conv2D) outIdx(ch, h, w int) int { return (ch*c.OutH+h)*c.OutW + w }

// Forward runs the direct convolution for every sample in the batch.
func (c *Conv2D) Forward(x *tensor.Matrix) *tensor.Matrix {
	c.lastX = x
	y := tensor.NewMatrix(x.Rows, c.OutC*c.OutH*c.OutW)
	c.forwardInto(y, x)
	return y
}

// forwardInto runs the direct convolution into dst (x.Rows ×
// OutC·OutH·OutW, every cell overwritten) without touching training
// state — shared by Forward and the gradient-free Predictor path.
func (c *Conv2D) forwardInto(y, x *tensor.Matrix) {
	for s := 0; s < x.Rows; s++ {
		in := x.Row(s)
		out := y.Row(s)
		for oc := 0; oc < c.OutC; oc++ {
			wrow := c.W.Row(oc)
			bias := c.B.Data[oc]
			for oh := 0; oh < c.OutH; oh++ {
				for ow := 0; ow < c.OutW; ow++ {
					sum := bias
					for ic := 0; ic < c.InC; ic++ {
						for kh := 0; kh < c.K; kh++ {
							ih := oh*c.Stride + kh - c.Pad
							if ih < 0 || ih >= c.InH {
								continue
							}
							for kw := 0; kw < c.K; kw++ {
								iw := ow*c.Stride + kw - c.Pad
								if iw < 0 || iw >= c.InW {
									continue
								}
								sum += wrow[(ic*c.K+kh)*c.K+kw] * in[c.inIdx(ic, ih, iw)]
							}
						}
					}
					out[c.outIdx(oc, oh, ow)] = sum
				}
			}
		}
	}
}

// Backward accumulates weight/bias gradients and returns dx.
func (c *Conv2D) Backward(dout *tensor.Matrix) *tensor.Matrix {
	dx := tensor.NewMatrix(dout.Rows, c.InC*c.InH*c.InW)
	for s := 0; s < dout.Rows; s++ {
		dOut := dout.Row(s)
		in := c.lastX.Row(s)
		dIn := dx.Row(s)
		for oc := 0; oc < c.OutC; oc++ {
			wrow := c.W.Row(oc)
			gwrow := c.GW.Row(oc)
			for oh := 0; oh < c.OutH; oh++ {
				for ow := 0; ow < c.OutW; ow++ {
					g := dOut[c.outIdx(oc, oh, ow)]
					if g == 0 {
						continue
					}
					c.GB.Data[oc] += g
					for ic := 0; ic < c.InC; ic++ {
						for kh := 0; kh < c.K; kh++ {
							ih := oh*c.Stride + kh - c.Pad
							if ih < 0 || ih >= c.InH {
								continue
							}
							for kw := 0; kw < c.K; kw++ {
								iw := ow*c.Stride + kw - c.Pad
								if iw < 0 || iw >= c.InW {
									continue
								}
								widx := (ic*c.K+kh)*c.K + kw
								iidx := c.inIdx(ic, ih, iw)
								gwrow[widx] += g * in[iidx]
								dIn[iidx] += g * wrow[widx]
							}
						}
					}
				}
			}
		}
	}
	return dx
}

// Params returns [W, B].
func (c *Conv2D) Params() []*tensor.Matrix { return []*tensor.Matrix{c.W, c.B} }

// Grads returns [GW, GB].
func (c *Conv2D) Grads() []*tensor.Matrix { return []*tensor.Matrix{c.GW, c.GB} }

// ZeroGrads clears the accumulated gradients.
func (c *Conv2D) ZeroGrads() {
	c.GW.Zero()
	c.GB.Zero()
}

// ---- ReLU -------------------------------------------------------------------

// ReLU is an elementwise max(0, x).
type ReLU struct {
	LayerName string
	mask      []bool
}

// NewReLU creates a ReLU layer.
func NewReLU(name string) *ReLU { return &ReLU{LayerName: name} }

// Name returns the layer name.
func (r *ReLU) Name() string { return r.LayerName }

// Forward zeroes negatives.
func (r *ReLU) Forward(x *tensor.Matrix) *tensor.Matrix {
	y := x.Clone()
	r.mask = make([]bool, len(y.Data))
	for i, v := range y.Data {
		if v <= 0 {
			y.Data[i] = 0
		} else {
			r.mask[i] = true
		}
	}
	return y
}

// Backward gates the upstream gradient by the activation mask.
func (r *ReLU) Backward(dout *tensor.Matrix) *tensor.Matrix {
	dx := dout.Clone()
	for i := range dx.Data {
		if !r.mask[i] {
			dx.Data[i] = 0
		}
	}
	return dx
}

// Params returns no parameters.
func (r *ReLU) Params() []*tensor.Matrix { return nil }

// Grads returns no gradients.
func (r *ReLU) Grads() []*tensor.Matrix { return nil }

// ZeroGrads is a no-op.
func (r *ReLU) ZeroGrads() {}

// ---- Max pooling -------------------------------------------------------------

// MaxPool2 is 2×2 max pooling with stride 2 over C×H×W volumes.
type MaxPool2 struct {
	LayerName string
	C, H, W   int
	argmax    []int
}

// NewMaxPool2 creates the pool; H and W must be even.
func NewMaxPool2(name string, c, h, w int) *MaxPool2 {
	if h%2 != 0 || w%2 != 0 {
		panic("autodiff: MaxPool2 needs even spatial dims")
	}
	return &MaxPool2{LayerName: name, C: c, H: h, W: w}
}

// Name returns the layer name.
func (p *MaxPool2) Name() string { return p.LayerName }

// Forward keeps each 2×2 window's maximum.
func (p *MaxPool2) Forward(x *tensor.Matrix) *tensor.Matrix {
	oh, ow := p.H/2, p.W/2
	y := tensor.NewMatrix(x.Rows, p.C*oh*ow)
	p.argmax = make([]int, x.Rows*p.C*oh*ow)
	p.forwardInto(y, x, p.argmax)
	return y
}

// forwardInto pools into dst; argmax, when non-nil, records each
// window's winning index for Backward. The nil-argmax form is the
// gradient-free Predictor path.
func (p *MaxPool2) forwardInto(y, x *tensor.Matrix, argmax []int) {
	oh, ow := p.H/2, p.W/2
	for s := 0; s < x.Rows; s++ {
		in := x.Row(s)
		out := y.Row(s)
		for c := 0; c < p.C; c++ {
			for i := 0; i < oh; i++ {
				for j := 0; j < ow; j++ {
					best := float32(math.Inf(-1))
					bestIdx := 0
					for di := 0; di < 2; di++ {
						for dj := 0; dj < 2; dj++ {
							idx := (c*p.H+2*i+di)*p.W + 2*j + dj
							if in[idx] > best {
								best = in[idx]
								bestIdx = idx
							}
						}
					}
					oIdx := (c*oh+i)*ow + j
					out[oIdx] = best
					if argmax != nil {
						argmax[s*p.C*oh*ow+oIdx] = bestIdx
					}
				}
			}
		}
	}
}

// Backward routes each gradient to the window's argmax.
func (p *MaxPool2) Backward(dout *tensor.Matrix) *tensor.Matrix {
	oh, ow := p.H/2, p.W/2
	dx := tensor.NewMatrix(dout.Rows, p.C*p.H*p.W)
	for s := 0; s < dout.Rows; s++ {
		dOut := dout.Row(s)
		dIn := dx.Row(s)
		for k, g := range dOut {
			dIn[p.argmax[s*p.C*oh*ow+k]] += g
		}
	}
	return dx
}

// Params returns no parameters.
func (p *MaxPool2) Params() []*tensor.Matrix { return nil }

// Grads returns no gradients.
func (p *MaxPool2) Grads() []*tensor.Matrix { return nil }

// ZeroGrads is a no-op.
func (p *MaxPool2) ZeroGrads() {}
