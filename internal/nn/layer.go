// Package nn provides the neural-network substrate of the Poseidon
// reproduction: layer descriptors with exact parameter and FLOP
// accounting, and the model zoo evaluated in the paper (Table 3):
// CIFAR-10-quick, GoogLeNet, Inception-V3, VGG19, VGG19-22K and
// ResNet-152, plus AlexNet for the Section 2.2 worked example.
//
// The descriptors drive both planes of the reproduction: the
// performance plane uses Params/FLOPs to derive communication sizes and
// compute durations, and the functional plane instantiates real weight
// matrices from the same shapes.
package nn

import "fmt"

// Kind identifies the layer type.
type Kind int

// Layer kinds. Only FC layers have rank-1 (sufficient-factor)
// decomposable gradients; CONV gradients are "indecomposable and
// sparse" (paper, Section 3.2) and always go through the PS.
const (
	Input Kind = iota
	Conv
	Pool
	FC
	ReLU
	LRN
	BatchNorm
	Concat // inception-style branch join
	Add    // residual join
	Dropout
	Softmax
)

var kindNames = map[Kind]string{
	Input: "input", Conv: "conv", Pool: "pool", FC: "fc", ReLU: "relu",
	LRN: "lrn", BatchNorm: "bn", Concat: "concat", Add: "add",
	Dropout: "dropout", Softmax: "softmax",
}

// String returns the lower-case layer-kind name.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Shape is a C×H×W activation volume.
type Shape struct {
	C, H, W int
}

// Elems returns C·H·W.
func (s Shape) Elems() int64 { return int64(s.C) * int64(s.H) * int64(s.W) }

// String renders the shape as CxHxW.
func (s Shape) String() string { return fmt.Sprintf("%dx%dx%d", s.C, s.H, s.W) }

// Layer describes one layer of a network. Fields beyond Name/Kind/In/Out
// are populated per kind: Conv uses KH/KW/Stride/Pad/OutC/Groups/Bias,
// FC uses InDim/OutDim/Bias, Pool uses KH/Stride.
type Layer struct {
	Name string
	Kind Kind
	In   Shape
	Out  Shape

	// Conv / Pool geometry.
	KH, KW      int
	Stride, Pad int
	OutC        int
	Groups      int

	// FC geometry.
	InDim, OutDim int

	Bias bool
}

// Params returns the number of trainable parameters in the layer.
func (l *Layer) Params() int64 {
	switch l.Kind {
	case Conv:
		g := l.Groups
		if g == 0 {
			g = 1
		}
		w := int64(l.KH) * int64(l.KW) * int64(l.In.C/g) * int64(l.OutC)
		if l.Bias {
			w += int64(l.OutC)
		}
		return w
	case FC:
		w := int64(l.InDim) * int64(l.OutDim)
		if l.Bias {
			w += int64(l.OutDim)
		}
		return w
	case BatchNorm:
		return 2 * int64(l.In.C) // scale + shift
	default:
		return 0
	}
}

// ParamBytes returns the float32 byte size of the layer's parameters.
func (l *Layer) ParamBytes() int64 { return 4 * l.Params() }

// GradMatrixShape returns the (M, N) shape of the layer's gradient
// matrix as used by the paper's cost model. For FC layers M is the
// output dimension and N the input dimension, so the per-sample gradient
// is the rank-1 outer product δ·xᵀ. Non-FC parameters are treated as an
// M×1 "matrix" (indecomposable).
func (l *Layer) GradMatrixShape() (m, n int64) {
	if l.Kind == FC {
		return int64(l.OutDim), int64(l.InDim)
	}
	return l.Params(), 1
}

// SFCapable reports whether the layer's gradients admit a sufficient
// factor decomposition (FC layers only).
func (l *Layer) SFCapable() bool { return l.Kind == FC && l.InDim > 0 && l.OutDim > 0 }

// FwdFLOPs returns the forward-pass FLOP count for a batch of the given
// size, counting a fused multiply-add as 2 FLOPs.
func (l *Layer) FwdFLOPs(batch int) int64 {
	b := int64(batch)
	switch l.Kind {
	case Conv:
		g := l.Groups
		if g == 0 {
			g = 1
		}
		perOut := 2 * int64(l.KH) * int64(l.KW) * int64(l.In.C/g)
		return b * perOut * int64(l.OutC) * int64(l.Out.H) * int64(l.Out.W)
	case FC:
		return b * 2 * int64(l.InDim) * int64(l.OutDim)
	case Pool:
		return b * l.Out.Elems() * int64(l.KH) * int64(l.KW)
	case ReLU, Dropout, Add:
		return b * l.Out.Elems()
	case LRN, BatchNorm, Softmax:
		return b * 5 * l.Out.Elems()
	default:
		return 0
	}
}

// BwdFLOPs returns the backward-pass FLOP count for a batch. For
// parameterized layers the backward pass computes both the input
// gradient and the weight gradient, each roughly the cost of the
// forward pass; elementwise layers only propagate the input gradient.
func (l *Layer) BwdFLOPs(batch int) int64 {
	switch l.Kind {
	case Conv, FC:
		return 2 * l.FwdFLOPs(batch)
	default:
		return l.FwdFLOPs(batch)
	}
}

// HasParams reports whether the layer carries trainable parameters and
// therefore requires synchronization.
func (l *Layer) HasParams() bool { return l.Params() > 0 }

// String renders a one-line layer summary.
func (l *Layer) String() string {
	switch l.Kind {
	case Conv:
		return fmt.Sprintf("%s[conv %dx%d/%d %s->%s %d params]",
			l.Name, l.KH, l.KW, l.Stride, l.In, l.Out, l.Params())
	case FC:
		return fmt.Sprintf("%s[fc %dx%d %d params]", l.Name, l.OutDim, l.InDim, l.Params())
	default:
		return fmt.Sprintf("%s[%s %s->%s]", l.Name, l.Kind, l.In, l.Out)
	}
}
