package tensor

import "fmt"

// SufficientFactor is a rank-1 decomposition of a gradient matrix:
// ∇θ = U·Vᵀ summed over the K samples of a batch, where U holds one
// column-vector u_k per sample (length M) and V one v_k per sample
// (length N). For an FC layer trained with SGD, u_k is the backprop
// error at the layer output and v_k the layer input activation
// (Xie et al., "Distributed Machine Learning via Sufficient Factor
// Broadcasting").
//
// U is K×M and V is K×N (each row is one sample's factor), so the wire
// size is 4·K·(M+N) bytes versus 4·M·N for the dense gradient.
type SufficientFactor struct {
	U *Matrix // K×M: per-sample output-side factors
	V *Matrix // K×N: per-sample input-side factors
}

// NewSufficientFactor allocates a zeroed SF for k samples of an M×N layer.
func NewSufficientFactor(k, m, n int) *SufficientFactor {
	return &SufficientFactor{U: NewMatrix(k, m), V: NewMatrix(k, n)}
}

// K returns the number of rank-1 components (batch size).
func (sf *SufficientFactor) K() int { return sf.U.Rows }

// M returns the row dimension of the reconstructed gradient.
func (sf *SufficientFactor) M() int { return sf.U.Cols }

// N returns the column dimension of the reconstructed gradient.
func (sf *SufficientFactor) N() int { return sf.V.Cols }

// SizeBytes returns the wire size of the SF payload: 4·K·(M+N).
func (sf *SufficientFactor) SizeBytes() int {
	return sf.U.SizeBytes() + sf.V.SizeBytes()
}

// ReconstructInto accumulates the dense gradient Σ_k u_k·v_kᵀ into dst,
// which must be M×N. dst is not zeroed first, so callers can accumulate
// SFs from several peers into one gradient buffer.
func (sf *SufficientFactor) ReconstructInto(dst *Matrix) {
	if dst.Rows != sf.M() || dst.Cols != sf.N() {
		panic(fmt.Sprintf("tensor: ReconstructInto dst %dx%d, want %dx%d",
			dst.Rows, dst.Cols, sf.M(), sf.N()))
	}
	// dst += Uᵀ·V, accumulated (MulTransAInto zeroes dst, so do it by hand).
	for k := 0; k < sf.K(); k++ {
		dst.AddOuter(sf.U.Row(k), sf.V.Row(k))
	}
}

// Reconstruct allocates and returns the dense gradient Σ_k u_k·v_kᵀ.
func (sf *SufficientFactor) Reconstruct() *Matrix {
	dst := NewMatrix(sf.M(), sf.N())
	sf.ReconstructInto(dst)
	return dst
}

// Clone returns a deep copy of the sufficient factor.
func (sf *SufficientFactor) Clone() *SufficientFactor {
	return &SufficientFactor{U: sf.U.Clone(), V: sf.V.Clone()}
}

// CopyFrom deep-copies src into sf, reusing sf's factor buffers when
// their capacity allows (allocating U/V on first use). The aggregation
// path copies offered factors into pooled scratch this way instead of
// retaining caller references.
func (sf *SufficientFactor) CopyFrom(src *SufficientFactor) {
	if sf.U == nil {
		sf.U = new(Matrix)
	}
	if sf.V == nil {
		sf.V = new(Matrix)
	}
	sf.U.Resize(src.U.Rows, src.U.Cols)
	copy(sf.U.Data, src.U.Data)
	sf.V.Resize(src.V.Rows, src.V.Cols)
	copy(sf.V.Data, src.V.Data)
}

// SFWireBytes returns the wire size of an SF for batch size k on an m×n
// layer without materializing it: 4·k·(m+n).
func SFWireBytes(k, m, n int) int64 { return 4 * int64(k) * (int64(m) + int64(n)) }

// DenseWireBytes returns the wire size of a dense m×n float32 matrix.
func DenseWireBytes(m, n int) int64 { return 4 * int64(m) * int64(n) }
