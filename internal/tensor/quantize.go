package tensor

// OneBitQuantizer implements the 1-bit stochastic-gradient quantization
// used by CNTK (Seide et al., INTERSPEECH 2014) and evaluated as a
// baseline in the Poseidon paper (Section 5.3): each gradient element is
// transmitted as a single sign bit plus two per-matrix reconstruction
// levels, and the quantization error is carried over as a residual that
// is added to the next iteration's gradient before quantization.
//
// A quantizer is stateful (it owns the residual buffer) and must be used
// for exactly one gradient matrix shape.
type OneBitQuantizer struct {
	residual *Matrix
	// eff is the effective-gradient scratch (grad + residual), reused
	// across Quantize calls so the steady-state push path allocates
	// nothing.
	eff []float32
}

// NewOneBitQuantizer creates a quantizer with a zero residual for an
// rows×cols gradient.
func NewOneBitQuantizer(rows, cols int) *OneBitQuantizer {
	return &OneBitQuantizer{residual: NewMatrix(rows, cols)}
}

// QuantizedGrad is the wire form of a 1-bit quantized gradient: one bit
// per element selecting between two reconstruction levels. The levels
// are the means of the positive and non-positive partitions, which
// minimizes the L2 reconstruction error for a fixed sign partition.
type QuantizedGrad struct {
	Rows, Cols int
	Bits       []uint64 // ceil(Rows*Cols/64) packed sign bits, row-major
	LoLevel    float32  // reconstruction value for 0-bits
	HiLevel    float32  // reconstruction value for 1-bits
}

// SizeBytes returns the wire size: packed bits plus the two levels and
// the shape header.
func (q *QuantizedGrad) SizeBytes() int { return 8*len(q.Bits) + 4*2 + 8 }

// QuantizedWireBytes returns the wire size of a 1-bit quantized m×n
// gradient without materializing it.
func QuantizedWireBytes(m, n int) int64 {
	words := (int64(m)*int64(n) + 63) / 64
	return 8*words + 16
}

// Quantize adds the carried residual to grad, emits the 1-bit encoding,
// and stores the new residual (input − reconstruction). grad is not
// modified.
func (z *OneBitQuantizer) Quantize(grad *Matrix) *QuantizedGrad {
	return z.QuantizeInto(new(QuantizedGrad), grad)
}

// QuantizeInto is Quantize writing into dst (whose Bits backing array
// is reused when its capacity allows) — the steady-state path for the
// 1-bit syncer, which quantizes the same gradient shape every
// iteration. Returns dst.
func (z *OneBitQuantizer) QuantizeInto(dst *QuantizedGrad, grad *Matrix) *QuantizedGrad {
	if grad.Rows != z.residual.Rows || grad.Cols != z.residual.Cols {
		panic("tensor: Quantize shape mismatch with residual")
	}
	n := len(grad.Data)
	q := dst
	q.Rows, q.Cols = grad.Rows, grad.Cols
	q.LoLevel, q.HiLevel = 0, 0
	q.Bits = resizeU64(q.Bits, (n+63)/64)
	clear(q.Bits)
	// Effective gradient = grad + residual.
	var hiSum, loSum float64
	var hiCount, loCount int
	z.eff = resizeF32(z.eff, n)
	eff := z.eff
	for i, g := range grad.Data {
		e := g + z.residual.Data[i]
		eff[i] = e
		if e > 0 {
			hiSum += float64(e)
			hiCount++
		} else {
			loSum += float64(e)
			loCount++
		}
	}
	if hiCount > 0 {
		q.HiLevel = float32(hiSum / float64(hiCount))
	}
	if loCount > 0 {
		q.LoLevel = float32(loSum / float64(loCount))
	}
	for i, e := range eff {
		var rec float32
		if e > 0 {
			q.Bits[i/64] |= 1 << (uint(i) % 64)
			rec = q.HiLevel
		} else {
			rec = q.LoLevel
		}
		z.residual.Data[i] = e - rec
	}
	return q
}

// Residual exposes the residual buffer (for tests and checkpointing).
func (z *OneBitQuantizer) Residual() *Matrix { return z.residual }

// Dequantize reconstructs the dense gradient from the 1-bit encoding.
func (q *QuantizedGrad) Dequantize() *Matrix {
	m := NewMatrix(q.Rows, q.Cols)
	q.DequantizeInto(m)
	return m
}

// DequantizeInto writes the reconstruction into dst (must match shape).
func (q *QuantizedGrad) DequantizeInto(dst *Matrix) {
	if dst.Rows != q.Rows || dst.Cols != q.Cols {
		panic("tensor: DequantizeInto shape mismatch")
	}
	for i := range dst.Data {
		if q.Bits[i/64]&(1<<(uint(i)%64)) != 0 {
			dst.Data[i] = q.HiLevel
		} else {
			dst.Data[i] = q.LoLevel
		}
	}
}

// AddDequantizedInto accumulates the reconstruction into dst.
func (q *QuantizedGrad) AddDequantizedInto(dst *Matrix) {
	if dst.Rows != q.Rows || dst.Cols != q.Cols {
		panic("tensor: AddDequantizedInto shape mismatch")
	}
	for i := range dst.Data {
		if q.Bits[i/64]&(1<<(uint(i)%64)) != 0 {
			dst.Data[i] += q.HiLevel
		} else {
			dst.Data[i] += q.LoLevel
		}
	}
}
