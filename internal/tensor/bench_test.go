package tensor

import "testing"

// benchMatrix is sized like a mid-size FC chunk: big enough that the
// per-value conversion loop dominates, small enough to stay in cache.
func benchMatrix() *Matrix {
	m := NewMatrix(64, 256)
	for i := range m.Data {
		m.Data[i] = float32(i%251) * 0.25
	}
	return m
}

// BenchmarkAppendMatrixRepeated appends many matrices to one growing
// buffer — the regression guard for grow's geometric policy: linear
// (exact-fit) growth reallocates and recopies on every append, turning
// this loop quadratic.
func BenchmarkAppendMatrixRepeated(b *testing.B) {
	m := benchMatrix()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf []byte
		for j := 0; j < 32; j++ {
			buf = AppendMatrix(buf, m)
		}
	}
}

// BenchmarkDecodeMatrix is the allocating decoder baseline.
func BenchmarkDecodeMatrix(b *testing.B) {
	buf := AppendMatrix(nil, benchMatrix())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeMatrix(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeMatrixInto decodes into warm caller-owned scratch —
// the steady-state wire path. Compare with BenchmarkDecodeMatrix.
func BenchmarkDecodeMatrixInto(b *testing.B) {
	buf := AppendMatrix(nil, benchMatrix())
	var dst Matrix
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeMatrixInto(&dst, buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeFloat32s is the allocating vector-decode baseline.
func BenchmarkDecodeFloat32s(b *testing.B) {
	buf := AppendFloat32s(nil, benchMatrix().Data)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeFloat32s(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeFloat32sInto is the decode-into-scratch counterpart of
// BenchmarkDecodeFloat32s.
func BenchmarkDecodeFloat32sInto(b *testing.B) {
	buf := AppendFloat32s(nil, benchMatrix().Data)
	var dst []float32
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		if dst, _, err = DecodeFloat32sInto(dst, buf); err != nil {
			b.Fatal(err)
		}
	}
}
