package tensor

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary wire encoding for matrices, sufficient factors, and quantized
// gradients. All integers are little-endian. The encoding is manual (no
// reflection) because the functional plane moves multi-megabyte payloads
// per layer per iteration.

// grow extends buf by n bytes in one allocation (at most), returning
// the extended slice and the offset of the new region. The encoders
// below move multi-megabyte tensors every iteration, so growing once
// and filling with PutUint32 beats per-value appends.
func grow(buf []byte, n int) ([]byte, int) {
	off := len(buf)
	if cap(buf)-off < n {
		nbuf := make([]byte, off, off+n)
		copy(nbuf, buf)
		buf = nbuf
	}
	return buf[:off+n], off
}

// putFloat32s writes vs as little-endian f32 starting at buf[off].
func putFloat32s(buf []byte, off int, vs []float32) {
	for _, v := range vs {
		binary.LittleEndian.PutUint32(buf[off:off+4], math.Float32bits(v))
		off += 4
	}
}

// AppendMatrix appends the encoding of m to buf and returns it:
// rows(u32) cols(u32) data(rows*cols × f32).
func AppendMatrix(buf []byte, m *Matrix) []byte {
	buf, off := grow(buf, 8+4*len(m.Data))
	binary.LittleEndian.PutUint32(buf[off:off+4], uint32(m.Rows))
	binary.LittleEndian.PutUint32(buf[off+4:off+8], uint32(m.Cols))
	putFloat32s(buf, off+8, m.Data)
	return buf
}

// DecodeMatrix decodes a matrix from buf, returning it and the number of
// bytes consumed.
func DecodeMatrix(buf []byte) (*Matrix, int, error) {
	if len(buf) < 8 {
		return nil, 0, fmt.Errorf("tensor: short matrix header: %d bytes", len(buf))
	}
	rows := int(binary.LittleEndian.Uint32(buf[0:4]))
	cols := int(binary.LittleEndian.Uint32(buf[4:8]))
	need := 8 + 4*rows*cols
	if len(buf) < need {
		return nil, 0, fmt.Errorf("tensor: short matrix body: have %d, need %d", len(buf), need)
	}
	m := NewMatrix(rows, cols)
	off := 8
	for i := range m.Data {
		m.Data[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[off : off+4]))
		off += 4
	}
	return m, need, nil
}

// AppendSF appends the encoding of sf (U then V) to buf.
func AppendSF(buf []byte, sf *SufficientFactor) []byte {
	buf = AppendMatrix(buf, sf.U)
	return AppendMatrix(buf, sf.V)
}

// DecodeSF decodes a sufficient factor from buf, returning it and the
// number of bytes consumed.
func DecodeSF(buf []byte) (*SufficientFactor, int, error) {
	u, n1, err := DecodeMatrix(buf)
	if err != nil {
		return nil, 0, fmt.Errorf("tensor: SF U: %w", err)
	}
	v, n2, err := DecodeMatrix(buf[n1:])
	if err != nil {
		return nil, 0, fmt.Errorf("tensor: SF V: %w", err)
	}
	if u.Rows != v.Rows {
		return nil, 0, fmt.Errorf("tensor: SF K mismatch: U has %d rows, V has %d", u.Rows, v.Rows)
	}
	return &SufficientFactor{U: u, V: v}, n1 + n2, nil
}

// AppendQuantized appends the encoding of q to buf:
// rows(u32) cols(u32) lo(f32) hi(f32) bits(words × u64).
func AppendQuantized(buf []byte, q *QuantizedGrad) []byte {
	buf, off := grow(buf, 16+8*len(q.Bits))
	binary.LittleEndian.PutUint32(buf[off:off+4], uint32(q.Rows))
	binary.LittleEndian.PutUint32(buf[off+4:off+8], uint32(q.Cols))
	binary.LittleEndian.PutUint32(buf[off+8:off+12], math.Float32bits(q.LoLevel))
	binary.LittleEndian.PutUint32(buf[off+12:off+16], math.Float32bits(q.HiLevel))
	off += 16
	for _, w := range q.Bits {
		binary.LittleEndian.PutUint64(buf[off:off+8], w)
		off += 8
	}
	return buf
}

// DecodeQuantized decodes a quantized gradient from buf, returning it and
// the number of bytes consumed.
func DecodeQuantized(buf []byte) (*QuantizedGrad, int, error) {
	if len(buf) < 16 {
		return nil, 0, fmt.Errorf("tensor: short quantized header: %d bytes", len(buf))
	}
	rows := int(binary.LittleEndian.Uint32(buf[0:4]))
	cols := int(binary.LittleEndian.Uint32(buf[4:8]))
	lo := math.Float32frombits(binary.LittleEndian.Uint32(buf[8:12]))
	hi := math.Float32frombits(binary.LittleEndian.Uint32(buf[12:16]))
	words := (rows*cols + 63) / 64
	need := 16 + 8*words
	if len(buf) < need {
		return nil, 0, fmt.Errorf("tensor: short quantized body: have %d, need %d", len(buf), need)
	}
	q := &QuantizedGrad{Rows: rows, Cols: cols, LoLevel: lo, HiLevel: hi, Bits: make([]uint64, words)}
	off := 16
	for i := range q.Bits {
		q.Bits[i] = binary.LittleEndian.Uint64(buf[off : off+8])
		off += 8
	}
	return q, need, nil
}

// AppendFloat32s appends a length-prefixed float32 slice to buf.
func AppendFloat32s(buf []byte, vs []float32) []byte {
	buf, off := grow(buf, 4+4*len(vs))
	binary.LittleEndian.PutUint32(buf[off:off+4], uint32(len(vs)))
	putFloat32s(buf, off+4, vs)
	return buf
}

// DecodeFloat32s decodes a length-prefixed float32 slice from buf,
// returning the slice and the number of bytes consumed.
func DecodeFloat32s(buf []byte) ([]float32, int, error) {
	if len(buf) < 4 {
		return nil, 0, fmt.Errorf("tensor: short float32s header")
	}
	n := int(binary.LittleEndian.Uint32(buf[0:4]))
	need := 4 + 4*n
	if len(buf) < need {
		return nil, 0, fmt.Errorf("tensor: short float32s body: have %d, need %d", len(buf), need)
	}
	vs := make([]float32, n)
	off := 4
	for i := range vs {
		vs[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[off : off+4]))
		off += 4
	}
	return vs, need, nil
}
