package tensor

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary wire encoding for matrices, sufficient factors, and quantized
// gradients. All integers are little-endian. The encoding is manual (no
// reflection) because the functional plane moves multi-megabyte payloads
// per layer per iteration.
//
// Every Decode* function has a Decode*Into sibling that fills
// caller-owned scratch instead of allocating — the steady-state wire
// path decodes every inbound frame into buffers reused across
// iterations, so a training loop performs O(1) heap allocations per
// parameter rather than O(messages).

// grow extends buf by n bytes, returning the extended slice and the
// offset of the new region. Growth is geometric — at least double the
// previous capacity — so a buffer that receives repeated appends
// (multi-chunk encodes, batched frames) reallocates O(log n) times
// instead of once per append.
func grow(buf []byte, n int) ([]byte, int) {
	off := len(buf)
	if cap(buf)-off < n {
		newCap := off + n
		if c := 2 * cap(buf); newCap < c {
			newCap = c
		}
		nbuf := make([]byte, off, newCap)
		copy(nbuf, buf)
		buf = nbuf
	}
	return buf[:off+n], off
}

// putFloat32s writes vs as little-endian f32 starting at buf[off]. The
// body is unrolled 8 wide: one bounds check covers each 32-byte block,
// which roughly halves the per-value cost of the conversion loop on
// multi-megabyte tensors.
func putFloat32s(buf []byte, off int, vs []float32) {
	dst := buf[off:]
	i := 0
	for ; i+8 <= len(vs); i += 8 {
		d := dst[i*4 : i*4+32]
		binary.LittleEndian.PutUint32(d[0:4], math.Float32bits(vs[i]))
		binary.LittleEndian.PutUint32(d[4:8], math.Float32bits(vs[i+1]))
		binary.LittleEndian.PutUint32(d[8:12], math.Float32bits(vs[i+2]))
		binary.LittleEndian.PutUint32(d[12:16], math.Float32bits(vs[i+3]))
		binary.LittleEndian.PutUint32(d[16:20], math.Float32bits(vs[i+4]))
		binary.LittleEndian.PutUint32(d[20:24], math.Float32bits(vs[i+5]))
		binary.LittleEndian.PutUint32(d[24:28], math.Float32bits(vs[i+6]))
		binary.LittleEndian.PutUint32(d[28:32], math.Float32bits(vs[i+7]))
	}
	for ; i < len(vs); i++ {
		binary.LittleEndian.PutUint32(dst[i*4:i*4+4], math.Float32bits(vs[i]))
	}
}

// getFloat32s fills dst from little-endian f32 at src, unrolled to
// match putFloat32s. len(src) must be at least 4*len(dst).
func getFloat32s(dst []float32, src []byte) {
	i := 0
	for ; i+8 <= len(dst); i += 8 {
		s := src[i*4 : i*4+32]
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(s[0:4]))
		dst[i+1] = math.Float32frombits(binary.LittleEndian.Uint32(s[4:8]))
		dst[i+2] = math.Float32frombits(binary.LittleEndian.Uint32(s[8:12]))
		dst[i+3] = math.Float32frombits(binary.LittleEndian.Uint32(s[12:16]))
		dst[i+4] = math.Float32frombits(binary.LittleEndian.Uint32(s[16:20]))
		dst[i+5] = math.Float32frombits(binary.LittleEndian.Uint32(s[20:24]))
		dst[i+6] = math.Float32frombits(binary.LittleEndian.Uint32(s[24:28]))
		dst[i+7] = math.Float32frombits(binary.LittleEndian.Uint32(s[28:32]))
	}
	for ; i < len(dst); i++ {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(src[i*4 : i*4+4]))
	}
}

// getUint64s fills dst from little-endian u64 words at src, unrolled 8
// wide. len(src) must be at least 8*len(dst).
func getUint64s(dst []uint64, src []byte) {
	i := 0
	for ; i+8 <= len(dst); i += 8 {
		s := src[i*8 : i*8+64]
		dst[i] = binary.LittleEndian.Uint64(s[0:8])
		dst[i+1] = binary.LittleEndian.Uint64(s[8:16])
		dst[i+2] = binary.LittleEndian.Uint64(s[16:24])
		dst[i+3] = binary.LittleEndian.Uint64(s[24:32])
		dst[i+4] = binary.LittleEndian.Uint64(s[32:40])
		dst[i+5] = binary.LittleEndian.Uint64(s[40:48])
		dst[i+6] = binary.LittleEndian.Uint64(s[48:56])
		dst[i+7] = binary.LittleEndian.Uint64(s[56:64])
	}
	for ; i < len(dst); i++ {
		dst[i] = binary.LittleEndian.Uint64(src[i*8 : i*8+8])
	}
}

// resizeF32 returns a slice of length n, reusing s's backing array when
// its capacity allows.
func resizeF32(s []float32, n int) []float32 {
	if cap(s) < n {
		return make([]float32, n)
	}
	return s[:n]
}

// resizeU64 returns a slice of length n, reusing s's backing array when
// its capacity allows.
func resizeU64(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}

// AppendMatrix appends the encoding of m to buf and returns it:
// rows(u32) cols(u32) data(rows*cols × f32).
func AppendMatrix(buf []byte, m *Matrix) []byte {
	buf, off := grow(buf, 8+4*len(m.Data))
	binary.LittleEndian.PutUint32(buf[off:off+4], uint32(m.Rows))
	binary.LittleEndian.PutUint32(buf[off+4:off+8], uint32(m.Cols))
	putFloat32s(buf, off+8, m.Data)
	return buf
}

// MatrixWireBytes returns the encoded size of an rows×cols matrix.
func MatrixWireBytes(rows, cols int) int { return 8 + 4*rows*cols }

// DecodeMatrix decodes a matrix from buf, returning it and the number of
// bytes consumed.
func DecodeMatrix(buf []byte) (*Matrix, int, error) {
	m := new(Matrix)
	n, err := DecodeMatrixInto(m, buf)
	if err != nil {
		return nil, 0, err
	}
	return m, n, nil
}

// DecodeMatrixInto decodes a matrix from buf into dst, reusing
// dst.Data's backing array when its capacity allows, and returns the
// number of bytes consumed. On error dst is unchanged.
func DecodeMatrixInto(dst *Matrix, buf []byte) (int, error) {
	if len(buf) < 8 {
		return 0, fmt.Errorf("tensor: short matrix header: %d bytes", len(buf))
	}
	rows := int(binary.LittleEndian.Uint32(buf[0:4]))
	cols := int(binary.LittleEndian.Uint32(buf[4:8]))
	// The element-count comparison runs in uint64 so a hostile header
	// cannot overflow the byte arithmetic into a negative "need".
	if uint64(rows)*uint64(cols) > uint64(len(buf)-8)/4 {
		return 0, fmt.Errorf("tensor: short matrix body: have %d, need %d×%d floats", len(buf), rows, cols)
	}
	elems := rows * cols
	need := 8 + 4*elems
	dst.Rows, dst.Cols = rows, cols
	dst.Data = resizeF32(dst.Data, elems)
	getFloat32s(dst.Data, buf[8:need])
	return need, nil
}

// AppendSF appends the encoding of sf (U then V) to buf.
func AppendSF(buf []byte, sf *SufficientFactor) []byte {
	buf = AppendMatrix(buf, sf.U)
	return AppendMatrix(buf, sf.V)
}

// DecodeSF decodes a sufficient factor from buf, returning it and the
// number of bytes consumed.
func DecodeSF(buf []byte) (*SufficientFactor, int, error) {
	sf := &SufficientFactor{U: new(Matrix), V: new(Matrix)}
	n, err := DecodeSFInto(sf, buf)
	if err != nil {
		return nil, 0, err
	}
	return sf, n, nil
}

// DecodeSFInto decodes a sufficient factor from buf into dst (whose U
// and V must be non-nil, their Data reused when capacity allows) and
// returns the number of bytes consumed.
func DecodeSFInto(dst *SufficientFactor, buf []byte) (int, error) {
	n1, err := DecodeMatrixInto(dst.U, buf)
	if err != nil {
		return 0, fmt.Errorf("tensor: SF U: %w", err)
	}
	n2, err := DecodeMatrixInto(dst.V, buf[n1:])
	if err != nil {
		return 0, fmt.Errorf("tensor: SF V: %w", err)
	}
	if dst.U.Rows != dst.V.Rows {
		return 0, fmt.Errorf("tensor: SF K mismatch: U has %d rows, V has %d", dst.U.Rows, dst.V.Rows)
	}
	return n1 + n2, nil
}

// AppendQuantized appends the encoding of q to buf:
// rows(u32) cols(u32) lo(f32) hi(f32) bits(words × u64).
func AppendQuantized(buf []byte, q *QuantizedGrad) []byte {
	buf, off := grow(buf, 16+8*len(q.Bits))
	binary.LittleEndian.PutUint32(buf[off:off+4], uint32(q.Rows))
	binary.LittleEndian.PutUint32(buf[off+4:off+8], uint32(q.Cols))
	binary.LittleEndian.PutUint32(buf[off+8:off+12], math.Float32bits(q.LoLevel))
	binary.LittleEndian.PutUint32(buf[off+12:off+16], math.Float32bits(q.HiLevel))
	off += 16
	for _, w := range q.Bits {
		binary.LittleEndian.PutUint64(buf[off:off+8], w)
		off += 8
	}
	return buf
}

// DecodeQuantized decodes a quantized gradient from buf, returning it and
// the number of bytes consumed.
func DecodeQuantized(buf []byte) (*QuantizedGrad, int, error) {
	q := new(QuantizedGrad)
	n, err := DecodeQuantizedInto(q, buf)
	if err != nil {
		return nil, 0, err
	}
	return q, n, nil
}

// DecodeQuantizedInto decodes a quantized gradient from buf into dst,
// reusing dst.Bits' backing array when its capacity allows, and returns
// the number of bytes consumed. On error dst is unchanged.
func DecodeQuantizedInto(dst *QuantizedGrad, buf []byte) (int, error) {
	if len(buf) < 16 {
		return 0, fmt.Errorf("tensor: short quantized header: %d bytes", len(buf))
	}
	rows := int(binary.LittleEndian.Uint32(buf[0:4]))
	cols := int(binary.LittleEndian.Uint32(buf[4:8]))
	words := (uint64(rows)*uint64(cols) + 63) / 64
	if words > uint64(len(buf)-16)/8 {
		return 0, fmt.Errorf("tensor: short quantized body: have %d, need %d words", len(buf), words)
	}
	need := 16 + 8*int(words)
	dst.Rows, dst.Cols = rows, cols
	dst.LoLevel = math.Float32frombits(binary.LittleEndian.Uint32(buf[8:12]))
	dst.HiLevel = math.Float32frombits(binary.LittleEndian.Uint32(buf[12:16]))
	dst.Bits = resizeU64(dst.Bits, int(words))
	getUint64s(dst.Bits, buf[16:need])
	return need, nil
}

// AppendFloat32s appends a length-prefixed float32 slice to buf.
func AppendFloat32s(buf []byte, vs []float32) []byte {
	buf, off := grow(buf, 4+4*len(vs))
	binary.LittleEndian.PutUint32(buf[off:off+4], uint32(len(vs)))
	putFloat32s(buf, off+4, vs)
	return buf
}

// Float32sWireBytes returns the encoded size of an n-element slice.
func Float32sWireBytes(n int) int { return 4 + 4*n }

// DecodeFloat32s decodes a length-prefixed float32 slice from buf,
// returning the slice and the number of bytes consumed.
func DecodeFloat32s(buf []byte) ([]float32, int, error) {
	return DecodeFloat32sInto(nil, buf)
}

// DecodeFloat32sInto decodes a length-prefixed float32 slice from buf
// into dst's backing array (reused when its capacity allows), returning
// the resized slice and the number of bytes consumed.
func DecodeFloat32sInto(dst []float32, buf []byte) ([]float32, int, error) {
	if len(buf) < 4 {
		return nil, 0, fmt.Errorf("tensor: short float32s header")
	}
	n := int(binary.LittleEndian.Uint32(buf[0:4]))
	if uint64(n) > uint64(len(buf)-4)/4 {
		return nil, 0, fmt.Errorf("tensor: short float32s body: have %d, need %d values", len(buf), n)
	}
	need := 4 + 4*n
	dst = resizeF32(dst, n)
	getFloat32s(dst, buf[4:need])
	return dst, need, nil
}
