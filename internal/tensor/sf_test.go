package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randSF(rng *rand.Rand, k, m, n int) *SufficientFactor {
	sf := NewSufficientFactor(k, m, n)
	sf.U.Randn(rng, 1)
	sf.V.Randn(rng, 1)
	return sf
}

func TestSFShapeAccessors(t *testing.T) {
	sf := NewSufficientFactor(3, 5, 7)
	if sf.K() != 3 || sf.M() != 5 || sf.N() != 7 {
		t.Fatalf("K/M/N = %d/%d/%d, want 3/5/7", sf.K(), sf.M(), sf.N())
	}
	if got, want := sf.SizeBytes(), 4*3*(5+7); got != want {
		t.Fatalf("SizeBytes=%d, want %d", got, want)
	}
}

// The defining property of SFs: reconstructing U,V gives exactly UᵀV.
func TestReconstructEqualsMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	sf := randSF(rng, 8, 6, 9)
	got := sf.Reconstruct()
	want := NewMatrix(6, 9)
	MulTransAInto(want, sf.U, sf.V)
	if !got.ApproxEqual(want, 1e-4) {
		t.Fatal("Reconstruct != UᵀV")
	}
}

// Reconstruction is additive: reconstructing two SFs into one buffer
// equals the sum of their dense gradients. This is exactly the property
// SFB relies on when accumulating factors from many peers.
func TestReconstructAdditivityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k1, k2 := 1+r.Intn(6), 1+r.Intn(6)
		m, n := 2+r.Intn(8), 2+r.Intn(8)
		a := randSF(r, k1, m, n)
		b := randSF(r, k2, m, n)
		acc := NewMatrix(m, n)
		a.ReconstructInto(acc)
		b.ReconstructInto(acc)
		want := a.Reconstruct()
		want.Add(b.Reconstruct())
		return acc.ApproxEqual(want, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSFWireBytes(t *testing.T) {
	if got := SFWireBytes(32, 4096, 4096); got != 4*32*(4096+4096) {
		t.Fatalf("SFWireBytes=%d", got)
	}
	if got := DenseWireBytes(4096, 4096); got != 4*4096*4096 {
		t.Fatalf("DenseWireBytes=%d", got)
	}
}

// The paper's VGG19 FC example (Section 3.2): with K=32, P1=P2=8,
// M=N=4096, SFB moves ~3.7M parameters per node while PS moves ~34M for
// a worker. Check the ratio our wire-size helpers produce matches.
func TestPaperFCExampleSizes(t *testing.T) {
	const k, m, n, p1 = 32, 4096, 4096, 8
	sfbParams := 2 * k * (p1 - 1) * (m + n) // per-node SFB parameter count
	psWorkerParams := 2 * m * n             // per-worker PS parameter count
	if sfbParams != 3670016 {
		t.Fatalf("SFB params = %d, want 3670016 (~3.7M)", sfbParams)
	}
	if psWorkerParams != 33554432 {
		t.Fatalf("PS worker params = %d, want 33554432 (~34M)", psWorkerParams)
	}
	if !(sfbParams < psWorkerParams/5) {
		t.Fatal("SFB should be ≥5x cheaper in the paper's example")
	}
}

func TestCloneSFIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randSF(rng, 2, 3, 4)
	b := a.Clone()
	b.U.Data[0] += 42
	if a.U.Data[0] == b.U.Data[0] {
		t.Fatal("Clone shares U storage")
	}
}

func TestReconstructIntoPanicsOnShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	sf := NewSufficientFactor(1, 2, 3)
	sf.ReconstructInto(NewMatrix(3, 2))
}
