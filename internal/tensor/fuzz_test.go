package tensor

import (
	"bytes"
	"testing"
)

// The Decode*Into variants must be byte-for-byte interchangeable with
// the allocating decoders on every input — valid, truncated, or
// hostile — because the wire path swaps freely between them. The fuzz
// targets below drive both through arbitrary frames and require
// identical accept/reject decisions, consumed byte counts, and decoded
// values, with the Into side reusing deliberately dirty scratch.

func fuzzSeedFrames(f *testing.F) {
	m := NewMatrix(3, 5)
	for i := range m.Data {
		m.Data[i] = float32(i) - 7.5
	}
	f.Add(AppendMatrix(nil, m))
	f.Add(AppendMatrix(AppendMatrix(nil, m), m)[3:]) // misaligned tail
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add([]byte{255, 255, 255, 255, 255, 255, 255, 255}) // huge header
	z := NewOneBitQuantizer(4, 9)
	g := NewMatrix(4, 9)
	g.Fill(0.25)
	f.Add(AppendQuantized(nil, z.Quantize(g)))
}

func FuzzDecodeMatrixInto(f *testing.F) {
	fuzzSeedFrames(f)
	f.Fuzz(func(t *testing.T, buf []byte) {
		want, wantN, wantErr := DecodeMatrix(buf)
		dst := &Matrix{Rows: 1, Cols: 7, Data: []float32{9, 9, 9, 9, 9, 9, 9}}
		gotN, gotErr := DecodeMatrixInto(dst, buf)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("error mismatch: DecodeMatrix=%v DecodeMatrixInto=%v", wantErr, gotErr)
		}
		if wantErr != nil {
			return
		}
		if gotN != wantN {
			t.Fatalf("consumed %d bytes, DecodeMatrix consumed %d", gotN, wantN)
		}
		if dst.Rows != want.Rows || dst.Cols != want.Cols {
			t.Fatalf("shape %dx%d, want %dx%d", dst.Rows, dst.Cols, want.Rows, want.Cols)
		}
		for i, v := range want.Data {
			if dst.Data[i] != v && !(dst.Data[i] != dst.Data[i] && v != v) { // NaN-tolerant
				t.Fatalf("Data[%d] = %v, want %v", i, dst.Data[i], v)
			}
		}
	})
}

func FuzzDecodeQuantizedInto(f *testing.F) {
	fuzzSeedFrames(f)
	f.Fuzz(func(t *testing.T, buf []byte) {
		want, wantN, wantErr := DecodeQuantized(buf)
		dst := &QuantizedGrad{Rows: 2, Cols: 2, Bits: []uint64{^uint64(0)}, LoLevel: -9, HiLevel: 9}
		gotN, gotErr := DecodeQuantizedInto(dst, buf)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("error mismatch: DecodeQuantized=%v DecodeQuantizedInto=%v", wantErr, gotErr)
		}
		if wantErr != nil {
			return
		}
		if gotN != wantN {
			t.Fatalf("consumed %d bytes, DecodeQuantized consumed %d", gotN, wantN)
		}
		if dst.Rows != want.Rows || dst.Cols != want.Cols ||
			math32Bits(dst.LoLevel) != math32Bits(want.LoLevel) ||
			math32Bits(dst.HiLevel) != math32Bits(want.HiLevel) {
			t.Fatalf("header %+v, want %+v", dst, want)
		}
		if len(dst.Bits) != len(want.Bits) {
			t.Fatalf("%d bit words, want %d", len(dst.Bits), len(want.Bits))
		}
		for i, w := range want.Bits {
			if dst.Bits[i] != w {
				t.Fatalf("Bits[%d] = %x, want %x", i, dst.Bits[i], w)
			}
		}
	})
}

func FuzzDecodeFloat32sInto(f *testing.F) {
	fuzzSeedFrames(f)
	f.Fuzz(func(t *testing.T, buf []byte) {
		want, wantN, wantErr := DecodeFloat32s(buf)
		scratch := []float32{3, 3, 3}
		got, gotN, gotErr := DecodeFloat32sInto(scratch, buf)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("error mismatch: %v vs %v", wantErr, gotErr)
		}
		if wantErr != nil {
			return
		}
		if gotN != wantN || len(got) != len(want) {
			t.Fatalf("got %d bytes/%d values, want %d/%d", gotN, len(got), wantN, len(want))
		}
		for i, v := range want {
			if math32Bits(got[i]) != math32Bits(v) {
				t.Fatalf("[%d] = %v, want %v", i, got[i], v)
			}
		}
	})
}

// math32Bits compares float32s including NaN payloads and signed zero.
func math32Bits(v float32) uint32 {
	var b [4]byte
	putFloat32s(b[:], 0, []float32{v})
	var out uint32
	for i := 3; i >= 0; i-- {
		out = out<<8 | uint32(b[i])
	}
	return out
}

// TestDecodeIntoReusesScratch pins the zero-allocation contract: a
// second decode into already-sized scratch must not allocate.
func TestDecodeIntoReusesScratch(t *testing.T) {
	m := NewMatrix(16, 16)
	for i := range m.Data {
		m.Data[i] = float32(i)
	}
	buf := AppendMatrix(nil, m)
	var dst Matrix
	if _, err := DecodeMatrixInto(&dst, buf); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := DecodeMatrixInto(&dst, buf); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("DecodeMatrixInto into warm scratch allocated %v times per run", allocs)
	}

	vbuf := AppendFloat32s(nil, m.Data)
	vs, _, err := DecodeFloat32sInto(nil, vbuf)
	if err != nil {
		t.Fatal(err)
	}
	allocs = testing.AllocsPerRun(100, func() {
		if vs, _, err = DecodeFloat32sInto(vs, vbuf); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("DecodeFloat32sInto into warm scratch allocated %v times per run", allocs)
	}
}

// TestGrowGeometric pins the geometric growth policy: appending k
// matrices to one buffer must reallocate O(log k) times, not k.
func TestGrowGeometric(t *testing.T) {
	m := NewMatrix(8, 8)
	allocs := testing.AllocsPerRun(10, func() {
		var buf []byte
		for i := 0; i < 64; i++ {
			buf = AppendMatrix(buf, m)
		}
	})
	// 64 appends of 264 bytes ≈ 16.5 KiB; doubling from scratch needs
	// ~15 reallocations at the very most.
	if allocs > 16 {
		t.Fatalf("64 appends reallocated %v times; grow is not geometric", allocs)
	}
}

// TestQuantizeIntoMatchesQuantize pins QuantizeInto against Quantize on
// the same gradient stream (fresh quantizers, identical residual
// evolution).
func TestQuantizeIntoMatchesQuantize(t *testing.T) {
	za, zb := NewOneBitQuantizer(5, 7), NewOneBitQuantizer(5, 7)
	var dst QuantizedGrad
	g := NewMatrix(5, 7)
	for step := 0; step < 4; step++ {
		for i := range g.Data {
			g.Data[i] = float32((i*7+step*3)%11) - 5
		}
		want := za.Quantize(g)
		got := zb.QuantizeInto(&dst, g)
		if got != &dst {
			t.Fatal("QuantizeInto did not return dst")
		}
		if !bytes.Equal(AppendQuantized(nil, want), AppendQuantized(nil, got)) {
			t.Fatalf("step %d: encodings differ", step)
		}
		if !za.Residual().ApproxEqual(zb.Residual(), 0) {
			t.Fatalf("step %d: residuals diverged", step)
		}
	}
}
