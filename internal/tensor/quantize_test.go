package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQuantizeRoundTripShape(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	g := randMatrix(rng, 5, 9)
	z := NewOneBitQuantizer(5, 9)
	q := z.Quantize(g)
	d := q.Dequantize()
	if d.Rows != 5 || d.Cols != 9 {
		t.Fatalf("dequantized shape %dx%d", d.Rows, d.Cols)
	}
}

// The residual must make quantization lossless over time: the sum of all
// dequantized gradients plus the final residual equals the sum of the
// inputs. This is the error-feedback invariant 1-bit SGD relies on.
func TestResidualErrorFeedbackInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const rows, cols, iters = 6, 7, 25
	z := NewOneBitQuantizer(rows, cols)
	sumIn := NewMatrix(rows, cols)
	sumOut := NewMatrix(rows, cols)
	for i := 0; i < iters; i++ {
		g := randMatrix(rng, rows, cols)
		sumIn.Add(g)
		q := z.Quantize(g)
		q.AddDequantizedInto(sumOut)
	}
	sumOut.Add(z.Residual())
	if !sumIn.ApproxEqual(sumOut, 1e-2) {
		t.Fatal("Σ inputs != Σ reconstructions + residual")
	}
}

// The two reconstruction levels are the partition means, so the
// reconstruction error is orthogonal to the partition indicator; in
// particular reconstruction preserves the matrix sum exactly (up to
// float error).
func TestQuantizePreservesSumProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows, cols := 1+r.Intn(8), 1+r.Intn(8)
		g := randMatrix(r, rows, cols)
		z := NewOneBitQuantizer(rows, cols)
		q := z.Quantize(g)
		d := q.Dequantize()
		var sumG, sumD float64
		for i := range g.Data {
			sumG += float64(g.Data[i])
			sumD += float64(d.Data[i])
		}
		return math.Abs(sumG-sumD) < 1e-2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizedWireBytesMuchSmaller(t *testing.T) {
	// 4096×4096 FC layer: dense = 64 MiB, 1-bit ≈ 2 MiB.
	dense := DenseWireBytes(4096, 4096)
	qb := QuantizedWireBytes(4096, 4096)
	if qb*31 > dense {
		t.Fatalf("1-bit (%d) should be ~32x smaller than dense (%d)", qb, dense)
	}
	q := NewOneBitQuantizer(64, 64)
	got := q.Quantize(NewMatrix(64, 64))
	if int64(got.SizeBytes()) != QuantizedWireBytes(64, 64) {
		t.Fatalf("SizeBytes=%d, QuantizedWireBytes=%d", got.SizeBytes(), QuantizedWireBytes(64, 64))
	}
}

func TestQuantizeAllZeros(t *testing.T) {
	z := NewOneBitQuantizer(3, 3)
	q := z.Quantize(NewMatrix(3, 3))
	d := q.Dequantize()
	for _, v := range d.Data {
		if v != 0 {
			t.Fatalf("zero input should reconstruct to zero, got %v", v)
		}
	}
}

func TestQuantizeShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewOneBitQuantizer(2, 2).Quantize(NewMatrix(3, 3))
}
