// Package tensor provides the dense float32 linear-algebra substrate used
// throughout the Poseidon reproduction: matrices, vectors, sufficient
// factors (rank-1 gradient decompositions), 1-bit quantization with
// residual carry, and compact binary serialization.
//
// Everything is deterministic and allocation-conscious; there is no
// external BLAS. Matrices are row-major.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense row-major float32 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// NewMatrix allocates a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: invalid matrix shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromSlice wraps data (length rows*cols) as a matrix without copying.
func FromSlice(rows, cols int, data []float32) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: FromSlice length %d != %d*%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i (no copy).
func (m *Matrix) Row(i int) []float32 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero resets all elements to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element to v.
func (m *Matrix) Fill(v float32) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// Randn fills the matrix with N(0, std²) samples from rng.
func (m *Matrix) Randn(rng *rand.Rand, std float64) {
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64() * std)
	}
}

// CopyFrom copies src into m; shapes must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	m.mustSameShape(src)
	copy(m.Data, src.Data)
}

// Resize reshapes m to rows×cols, reusing Data's backing array when its
// capacity allows. Element values are unspecified afterwards; callers
// that need zeros must Zero explicitly.
func (m *Matrix) Resize(rows, cols int) {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: invalid matrix shape %dx%d", rows, cols))
	}
	m.Rows, m.Cols = rows, cols
	m.Data = resizeF32(m.Data, rows*cols)
}

// Add accumulates src into m element-wise.
func (m *Matrix) Add(src *Matrix) {
	m.mustSameShape(src)
	for i, v := range src.Data {
		m.Data[i] += v
	}
}

// Sub subtracts src from m element-wise.
func (m *Matrix) Sub(src *Matrix) {
	m.mustSameShape(src)
	for i, v := range src.Data {
		m.Data[i] -= v
	}
}

// AXPY computes m += alpha * src.
func (m *Matrix) AXPY(alpha float32, src *Matrix) {
	m.mustSameShape(src)
	for i, v := range src.Data {
		m.Data[i] += alpha * v
	}
}

// Scale multiplies every element by alpha.
func (m *Matrix) Scale(alpha float32) {
	for i := range m.Data {
		m.Data[i] *= alpha
	}
}

// MulInto computes dst = a·b. dst must be a.Rows×b.Cols and distinct from
// a and b.
func MulInto(dst, a, b *Matrix) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MulInto inner dims %d != %d", a.Cols, b.Rows))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic("tensor: MulInto dst shape mismatch")
	}
	dst.Zero()
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for k := 0; k < a.Cols; k++ {
			aik := arow[k]
			if aik == 0 {
				continue
			}
			brow := b.Row(k)
			for j := range drow {
				drow[j] += aik * brow[j]
			}
		}
	}
}

// MulTransAInto computes dst = aᵀ·b (a is k×m, b is k×n, dst is m×n).
func MulTransAInto(dst, a, b *Matrix) {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: MulTransAInto inner dims %d != %d", a.Rows, b.Rows))
	}
	if dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic("tensor: MulTransAInto dst shape mismatch")
	}
	dst.Zero()
	for k := 0; k < a.Rows; k++ {
		arow := a.Row(k)
		brow := b.Row(k)
		for i, aki := range arow {
			if aki == 0 {
				continue
			}
			drow := dst.Row(i)
			for j, bkj := range brow {
				drow[j] += aki * bkj
			}
		}
	}
}

// MulTransBInto computes dst = a·bᵀ (a is m×k, b is n×k, dst is m×n).
func MulTransBInto(dst, a, b *Matrix) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MulTransBInto inner dims %d != %d", a.Cols, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic("tensor: MulTransBInto dst shape mismatch")
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			var sum float32
			for k, av := range arow {
				sum += av * brow[k]
			}
			drow[j] = sum
		}
	}
}

// AddOuter accumulates the outer product u·vᵀ into m.
// len(u) must equal m.Rows and len(v) must equal m.Cols.
func (m *Matrix) AddOuter(u, v []float32) {
	if len(u) != m.Rows || len(v) != m.Cols {
		panic(fmt.Sprintf("tensor: AddOuter shapes %dx%d vs %dx%d", len(u), len(v), m.Rows, m.Cols))
	}
	for i, ui := range u {
		if ui == 0 {
			continue
		}
		row := m.Row(i)
		for j, vj := range v {
			row[j] += ui * vj
		}
	}
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Matrix) FrobeniusNorm() float64 {
	var sum float64
	for _, v := range m.Data {
		sum += float64(v) * float64(v)
	}
	return math.Sqrt(sum)
}

// MaxAbs returns the largest absolute element value.
func (m *Matrix) MaxAbs() float32 {
	var max float32
	for _, v := range m.Data {
		if v < 0 {
			v = -v
		}
		if v > max {
			max = v
		}
	}
	return max
}

// ApproxEqual reports whether m and o are element-wise within tol.
func (m *Matrix) ApproxEqual(o *Matrix, tol float64) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	for i, v := range m.Data {
		if math.Abs(float64(v)-float64(o.Data[i])) > tol {
			return false
		}
	}
	return true
}

// NumParams returns the number of elements.
func (m *Matrix) NumParams() int { return m.Rows * m.Cols }

// SizeBytes returns the dense float32 wire size of the matrix payload.
func (m *Matrix) SizeBytes() int { return 4 * m.Rows * m.Cols }

// String renders a compact shape description.
func (m *Matrix) String() string { return fmt.Sprintf("Matrix(%dx%d)", m.Rows, m.Cols) }

func (m *Matrix) mustSameShape(o *Matrix) {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		panic(fmt.Sprintf("tensor: shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float32) float32 {
	if len(a) != len(b) {
		panic("tensor: Dot length mismatch")
	}
	var sum float32
	for i, v := range a {
		sum += v * b[i]
	}
	return sum
}

// AxpyVec computes dst += alpha*src for vectors.
func AxpyVec(dst []float32, alpha float32, src []float32) {
	if len(dst) != len(src) {
		panic("tensor: AxpyVec length mismatch")
	}
	for i, v := range src {
		dst[i] += alpha * v
	}
}

// ScaleVec multiplies every element of v by alpha.
func ScaleVec(v []float32, alpha float32) {
	for i := range v {
		v[i] *= alpha
	}
}
