package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	m.Randn(rng, 1.0)
	return m
}

func TestNewMatrixZeroed(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("bad shape: %+v", m)
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("element %d not zero: %v", i, v)
		}
	}
}

func TestAtSetRow(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatalf("At(1,2)=%v, want 7", m.At(1, 2))
	}
	if m.Row(1)[2] != 7 {
		t.Fatalf("Row(1)[2]=%v, want 7", m.Row(1)[2])
	}
	// Row is a view: mutating it mutates the matrix.
	m.Row(0)[0] = 3
	if m.At(0, 0) != 3 {
		t.Fatal("Row must be a view, not a copy")
	}
}

func TestFromSlicePanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice(2, 2, []float32{1, 2, 3})
}

func TestAddSubAXPYScale(t *testing.T) {
	a := FromSlice(2, 2, []float32{1, 2, 3, 4})
	b := FromSlice(2, 2, []float32{10, 20, 30, 40})
	a.Add(b)
	want := []float32{11, 22, 33, 44}
	for i, v := range a.Data {
		if v != want[i] {
			t.Fatalf("Add[%d]=%v, want %v", i, v, want[i])
		}
	}
	a.Sub(b)
	for i, v := range a.Data {
		if v != float32(i+1) {
			t.Fatalf("Sub[%d]=%v, want %v", i, v, i+1)
		}
	}
	a.AXPY(0.5, b)
	wantAXPY := []float32{6, 12, 18, 24}
	for i, v := range a.Data {
		if v != wantAXPY[i] {
			t.Fatalf("AXPY[%d]=%v, want %v", i, v, wantAXPY[i])
		}
	}
	a.Scale(2)
	for i, v := range a.Data {
		if v != wantAXPY[i]*2 {
			t.Fatalf("Scale[%d]=%v, want %v", i, v, wantAXPY[i]*2)
		}
	}
}

func TestMulInto(t *testing.T) {
	a := FromSlice(2, 3, []float32{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float32{7, 8, 9, 10, 11, 12})
	c := NewMatrix(2, 2)
	MulInto(c, a, b)
	want := []float32{58, 64, 139, 154}
	for i, v := range c.Data {
		if v != want[i] {
			t.Fatalf("MulInto[%d]=%v, want %v", i, v, want[i])
		}
	}
}

func TestMulTransA(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randMatrix(rng, 5, 3) // k×m
	b := randMatrix(rng, 5, 4) // k×n
	got := NewMatrix(3, 4)
	MulTransAInto(got, a, b)
	// Reference: explicit transpose then MulInto.
	at := NewMatrix(3, 5)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			at.Set(j, i, a.At(i, j))
		}
	}
	want := NewMatrix(3, 4)
	MulInto(want, at, b)
	if !got.ApproxEqual(want, 1e-5) {
		t.Fatal("MulTransAInto != transpose+MulInto")
	}
}

func TestMulTransB(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randMatrix(rng, 4, 6) // m×k
	b := randMatrix(rng, 3, 6) // n×k
	got := NewMatrix(4, 3)
	MulTransBInto(got, a, b)
	bt := NewMatrix(6, 3)
	for i := 0; i < b.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			bt.Set(j, i, b.At(i, j))
		}
	}
	want := NewMatrix(4, 3)
	MulInto(want, a, bt)
	if !got.ApproxEqual(want, 1e-5) {
		t.Fatal("MulTransBInto != MulInto with transposed B")
	}
}

func TestAddOuterMatchesMulTransA(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const k, m, n = 7, 5, 6
	u := randMatrix(rng, k, m)
	v := randMatrix(rng, k, n)
	got := NewMatrix(m, n)
	for i := 0; i < k; i++ {
		got.AddOuter(u.Row(i), v.Row(i))
	}
	want := NewMatrix(m, n)
	MulTransAInto(want, u, v)
	if !got.ApproxEqual(want, 1e-4) {
		t.Fatal("sum of outer products != UᵀV")
	}
}

func TestFrobeniusNormAndMaxAbs(t *testing.T) {
	m := FromSlice(1, 3, []float32{3, -4, 0})
	if got := m.FrobeniusNorm(); math.Abs(got-5) > 1e-9 {
		t.Fatalf("FrobeniusNorm=%v, want 5", got)
	}
	if got := m.MaxAbs(); got != 4 {
		t.Fatalf("MaxAbs=%v, want 4", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromSlice(1, 2, []float32{1, 2})
	b := a.Clone()
	b.Data[0] = 99
	if a.Data[0] != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestVectorHelpers(t *testing.T) {
	a := []float32{1, 2, 3}
	b := []float32{4, 5, 6}
	if got := Dot(a, b); got != 32 {
		t.Fatalf("Dot=%v, want 32", got)
	}
	dst := []float32{1, 1, 1}
	AxpyVec(dst, 2, a)
	want := []float32{3, 5, 7}
	for i := range dst {
		if dst[i] != want[i] {
			t.Fatalf("AxpyVec[%d]=%v, want %v", i, dst[i], want[i])
		}
	}
	ScaleVec(dst, 0.5)
	for i := range dst {
		if dst[i] != want[i]/2 {
			t.Fatalf("ScaleVec[%d]=%v", i, dst[i])
		}
	}
}

// Property: (A·B)·C == A·(B·C) within float tolerance.
func TestMulAssociativityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n, p := 2+r.Intn(5), 2+r.Intn(5), 2+r.Intn(5), 2+r.Intn(5)
		a := randMatrix(r, m, k)
		b := randMatrix(r, k, n)
		c := randMatrix(r, n, p)
		ab := NewMatrix(m, n)
		MulInto(ab, a, b)
		abc1 := NewMatrix(m, p)
		MulInto(abc1, ab, c)
		bc := NewMatrix(k, p)
		MulInto(bc, b, c)
		abc2 := NewMatrix(m, p)
		MulInto(abc2, a, bc)
		return abc1.ApproxEqual(abc2, 1e-3)
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: AXPY is linear — AXPY(a+b, X) == AXPY(a, X) then AXPY(b, X).
func TestAXPYLinearityProperty(t *testing.T) {
	f := func(seed int64, a8, b8 int8) bool {
		r := rand.New(rand.NewSource(seed))
		alpha, beta := float32(a8)/16, float32(b8)/16
		x := randMatrix(r, 4, 4)
		m1 := NewMatrix(4, 4)
		m1.AXPY(alpha+beta, x)
		m2 := NewMatrix(4, 4)
		m2.AXPY(alpha, x)
		m2.AXPY(beta, x)
		return m1.ApproxEqual(m2, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
