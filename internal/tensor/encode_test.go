package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatrixEncodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	m := randMatrix(rng, 7, 11)
	buf := AppendMatrix(nil, m)
	got, n, err := DecodeMatrix(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d of %d bytes", n, len(buf))
	}
	if !got.ApproxEqual(m, 0) {
		t.Fatal("round trip changed values")
	}
}

func TestMatrixEncodeRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randMatrix(r, 1+r.Intn(6), 1+r.Intn(6))
		got, n, err := DecodeMatrix(AppendMatrix(nil, m))
		return err == nil && n == 8+4*m.Rows*m.Cols && got.ApproxEqual(m, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSFEncodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	sf := randSF(rng, 4, 5, 6)
	buf := AppendSF(nil, sf)
	got, n, err := DecodeSF(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d of %d", n, len(buf))
	}
	if !got.U.ApproxEqual(sf.U, 0) || !got.V.ApproxEqual(sf.V, 0) {
		t.Fatal("SF round trip changed values")
	}
}

func TestQuantizedEncodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	g := randMatrix(rng, 9, 13)
	z := NewOneBitQuantizer(9, 13)
	q := z.Quantize(g)
	buf := AppendQuantized(nil, q)
	got, n, err := DecodeQuantized(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d of %d", n, len(buf))
	}
	if !got.Dequantize().ApproxEqual(q.Dequantize(), 0) {
		t.Fatal("quantized round trip changed reconstruction")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := DecodeMatrix([]byte{1, 2}); err == nil {
		t.Fatal("want error on short header")
	}
	m := NewMatrix(4, 4)
	buf := AppendMatrix(nil, m)
	if _, _, err := DecodeMatrix(buf[:len(buf)-1]); err == nil {
		t.Fatal("want error on short body")
	}
	if _, _, err := DecodeSF(buf); err == nil {
		t.Fatal("want error decoding SF from a single matrix")
	}
	if _, _, err := DecodeQuantized([]byte{0}); err == nil {
		t.Fatal("want error on short quantized header")
	}
	if _, _, err := DecodeFloat32s([]byte{9, 0, 0, 0}); err == nil {
		t.Fatal("want error on short float32s body")
	}
}

func TestFloat32sRoundTrip(t *testing.T) {
	vs := []float32{1.5, -2.25, 0, 1e20}
	got, n, err := DecodeFloat32s(AppendFloat32s(nil, vs))
	if err != nil {
		t.Fatal(err)
	}
	if n != 4+4*len(vs) {
		t.Fatalf("consumed %d", n)
	}
	for i := range vs {
		if got[i] != vs[i] {
			t.Fatalf("element %d: %v != %v", i, got[i], vs[i])
		}
	}
}
