package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// defaultVirtualNodes is how many points each member contributes to the
// ring. More points smooth the load split between members (the expected
// imbalance shrinks like 1/sqrt(vnodes)) at the cost of a larger sorted
// array; 64 keeps lookups in one cache line's worth of binary search
// for fleets of tens of replicas.
const defaultVirtualNodes = 64

// Ring is a consistent-hash map from tenant keys to members. It is
// immutable after construction — membership changes build a new Ring —
// which is what makes the tenant→replica map deterministic: every
// process that builds a Ring over the same member names (in any order)
// computes the same assignment, so a load balancer, a test, and an
// operator's back-of-envelope all agree on where a tenant lands and
// where its per-tenant rate state migrates when a replica dies.
type Ring struct {
	points  []ringPoint
	members []string
}

type ringPoint struct {
	hash   uint64
	member int // index into members
}

// NewRing builds a ring over the given member names with the default
// virtual-node count. Order does not matter; duplicates are dropped.
func NewRing(members []string) *Ring { return NewRingVNodes(members, defaultVirtualNodes) }

// NewRingVNodes builds a ring with an explicit virtual-node count.
func NewRingVNodes(members []string, vnodes int) *Ring {
	if vnodes < 1 {
		vnodes = 1
	}
	seen := make(map[string]bool, len(members))
	r := &Ring{}
	for _, m := range members {
		if seen[m] {
			continue
		}
		seen[m] = true
		r.members = append(r.members, m)
	}
	// Sorted member order makes the vnode layout independent of the
	// caller's slice order.
	sort.Strings(r.members)
	for i, m := range r.members {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: ringHash(fmt.Sprintf("%s#%d", m, v)), member: i})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare with 64-bit FNV) break on member
		// index so the walk order stays deterministic.
		return r.points[i].member < r.points[j].member
	})
	return r
}

// Members returns the ring's member names, sorted.
func (r *Ring) Members() []string { return append([]string(nil), r.members...) }

// Size returns the member count.
func (r *Ring) Size() int { return len(r.members) }

// Lookup returns the member owning key — the first point at or after
// the key's hash, walking the ring clockwise. Empty rings return "".
func (r *Ring) Lookup(key string) string {
	seq := r.Sequence(key)
	if len(seq) == 0 {
		return ""
	}
	return seq[0]
}

// Sequence returns every member in the ring-walk order for key: the
// owner first, then each distinct successor clockwise. This is the
// failover order — when the owner is down, the key's traffic (and its
// per-tenant state) lands on Sequence[1], deterministically, and moves
// back when the owner returns.
func (r *Ring) Sequence(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, len(r.members))
	taken := make([]bool, len(r.members))
	for i := 0; i < len(r.points) && len(out) < len(r.members); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !taken[p.member] {
			taken[p.member] = true
			out = append(out, r.members[p.member])
		}
	}
	return out
}

func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is a splitmix64-style finalizer. Raw FNV-1a keys most of its
// structure off a string's first bytes, so the vnodes of one member
// ("r1#0", "r1#1", …) cluster into one arc of the ring and a member can
// end up owning nothing; the finalizer avalanches every input bit over
// the whole word.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
