package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// LBOptions tunes the front door; zero values take the defaults noted.
type LBOptions struct {
	// CheckEvery is the health-probe period (default 100ms).
	CheckEvery time.Duration
	// Client is the HTTP client proxied requests and probes go through
	// (default: a client with a 10s timeout).
	Client *http.Client
	// MaxBodyBytes caps a buffered client request body (default 8MiB).
	MaxBodyBytes int64
	// FloorWait bounds how long a request retries to honor a tenant's
	// version floor after failover lands on a replica that has not
	// caught up yet (default 3s). Past the bound the response is served
	// anyway — availability wins once the source has been unreachable
	// longer than any poll interval.
	FloorWait time.Duration
	// TenantTTL evicts a tenant's version floor after this idle time
	// (default 10m).
	TenantTTL time.Duration
	// Logf, when set, receives one line per replica health transition.
	Logf func(format string, args ...any)
}

func (o *LBOptions) setDefaults() {
	if o.CheckEvery <= 0 {
		o.CheckEvery = 100 * time.Millisecond
	}
	if o.Client == nil {
		o.Client = &http.Client{Timeout: 10 * time.Second}
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 8 << 20
	}
	if o.FloorWait <= 0 {
		o.FloorWait = 3 * time.Second
	}
	if o.TenantTTL <= 0 {
		o.TenantTTL = 10 * time.Minute
	}
}

type replicaState struct {
	name    string // the address as given on the command line — the ring key
	base    string // http:// base URL
	healthy atomic.Bool
	lag     atomic.Int64
}

type tenantFloor struct {
	ver      Version
	lastSeen time.Time
}

// LB is the fleet's front door: a reverse proxy that maps tenants to
// replicas over a consistent-hash Ring. Tenant→replica assignment is a
// pure function of the member set, so per-tenant token-bucket state on
// the replicas survives scale-out and scale-in, and when a replica dies
// its tenants land on the next member of their ring walk —
// deterministically, on every balancer instance.
//
// Failover happens inside the request that discovers the death: a
// network error marks the replica down and the request moves to the
// next replica in the tenant's Sequence without surfacing the error.
// Per-tenant version floors keep served model versions monotonic even
// across failover to a replica that has not pulled the newest capture
// yet: a response older than the tenant's floor is retried (bounded by
// FloorWait) until the replica catches up.
type LB struct {
	ring *Ring
	reps map[string]*replicaState
	opts LBOptions

	mu     sync.Mutex
	floors map[string]*tenantFloor

	stopProbe chan struct{}
	probeDone chan struct{}
}

// NewLB builds a balancer over the replica addresses (host:port or
// full URLs) and starts its health prober. Replicas start healthy; the
// first failed probe or proxied request marks them down.
func NewLB(replicas []string, opts LBOptions) (*LB, error) {
	opts.setDefaults()
	if len(replicas) == 0 {
		return nil, fmt.Errorf("fleet: no replicas")
	}
	lb := &LB{
		ring:      NewRing(replicas),
		reps:      make(map[string]*replicaState),
		opts:      opts,
		floors:    make(map[string]*tenantFloor),
		stopProbe: make(chan struct{}),
		probeDone: make(chan struct{}),
	}
	for _, name := range lb.ring.Members() {
		base := name
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		rs := &replicaState{name: name, base: strings.TrimRight(base, "/")}
		rs.healthy.Store(true)
		lb.reps[name] = rs
	}
	go lb.probe()
	return lb, nil
}

// Close stops the health prober.
func (lb *LB) Close() {
	close(lb.stopProbe)
	<-lb.probeDone
}

// Handler returns the balancer's route table: /healthz and /metrics
// answered locally, everything else proxied to the tenant's replica.
func (lb *LB) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", lb.handleHealthz)
	mux.HandleFunc("GET /metrics", lb.handleMetrics)
	mux.HandleFunc("/", lb.handleProxy)
	return mux
}

// Healthy returns the currently-healthy replica names, sorted.
func (lb *LB) Healthy() []string {
	var out []string
	for name, rs := range lb.reps {
		if rs.healthy.Load() {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

func (lb *LB) handleHealthz(w http.ResponseWriter, r *http.Request) {
	healthy := lb.Healthy()
	w.Header().Set("Content-Type", "application/json")
	if len(healthy) == 0 {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(struct {
		Status   string   `json:"status"`
		Healthy  []string `json:"healthy"`
		Replicas int      `json:"replicas"`
	}{map[bool]string{true: "ok", false: "no healthy replicas"}[len(healthy) > 0], healthy, len(lb.reps)})
}

// handleMetrics fetches every replica's /metrics, then aggregates the
// serve blocks into one fleet-wide view (fleet-wide p50/p95/p99 are
// re-derived from the merged latency histograms, not averaged).
func (lb *LB) handleMetrics(w http.ResponseWriter, r *http.Request) {
	type replicaMetrics struct {
		Serve *metrics.ServeSnapshot `json:"serve"`
	}
	perReplica := make(map[string]metrics.ServeSnapshot)
	var serves []metrics.ServeSnapshot
	for name, rs := range lb.reps {
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, rs.base+"/metrics", nil)
		if err != nil {
			continue
		}
		resp, err := lb.opts.Client.Do(req)
		if err != nil {
			continue
		}
		var rm replicaMetrics
		err = json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&rm)
		resp.Body.Close()
		if err != nil || rm.Serve == nil {
			continue
		}
		perReplica[name] = *rm.Serve
		serves = append(serves, *rm.Serve)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Fleet    metrics.ServeSnapshot            `json:"fleet"`
		Replicas map[string]metrics.ServeSnapshot `json:"replicas"`
		Healthy  []string                         `json:"healthy"`
	}{metrics.MergeServe(serves...), perReplica, lb.Healthy()})
}

func (lb *LB) handleProxy(w http.ResponseWriter, r *http.Request) {
	tenant := r.Header.Get(HeaderTenant)
	if tenant == "" {
		tenant = "default"
	}
	var body []byte
	if r.Body != nil {
		var err error
		body, err = io.ReadAll(io.LimitReader(r.Body, lb.opts.MaxBodyBytes+1))
		if err != nil {
			http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
			return
		}
		if int64(len(body)) > lb.opts.MaxBodyBytes {
			http.Error(w, "request body too large", http.StatusRequestEntityTooLarge)
			return
		}
	}
	floor, hasFloor := lb.floor(tenant)
	deadline := time.Now().Add(lb.opts.FloorWait)
	var lastErr error
	for {
		tried := 0
		for _, name := range lb.ring.Sequence(tenant) {
			rs := lb.reps[name]
			if !rs.healthy.Load() {
				continue
			}
			tried++
			resp, respBody, err := lb.attempt(rs, r, body)
			if err != nil {
				lb.markDown(rs, err)
				lastErr = err
				continue
			}
			if v, ok := responseVersion(resp.Header); ok {
				if hasFloor && v.Before(floor) && time.Now().Before(deadline) {
					// Failover landed on a replica behind this tenant's
					// floor; give it a poll interval to catch up rather
					// than serve a version the tenant has already seen
					// superseded.
					lastErr = fmt.Errorf("replica %s at %v behind tenant floor %v", name, v, floor)
					break
				}
				lb.raiseFloor(tenant, v)
			}
			relay(w, resp, respBody, name)
			return
		}
		if tried == 0 {
			// Nothing healthy: last-ditch pass over every replica, in
			// ring order, before giving up — the prober may simply not
			// have noticed a recovery yet.
			for _, name := range lb.ring.Sequence(tenant) {
				rs := lb.reps[name]
				resp, respBody, err := lb.attempt(rs, r, body)
				if err != nil {
					lastErr = err
					continue
				}
				rs.healthy.Store(true)
				if v, ok := responseVersion(resp.Header); ok {
					lb.raiseFloor(tenant, v)
				}
				relay(w, resp, respBody, name)
				return
			}
		}
		if time.Now().After(deadline) {
			w.Header().Set("Retry-After", "1")
			http.Error(w, fmt.Sprintf("no replica available: %v", lastErr), http.StatusBadGateway)
			return
		}
		select {
		case <-r.Context().Done():
			http.Error(w, "client gone", 499)
			return
		case <-time.After(25 * time.Millisecond):
		}
	}
}

// attempt proxies the buffered request to one replica and buffers the
// response, so a mid-body network error can still fail over cleanly.
func (lb *LB) attempt(rs *replicaState, r *http.Request, body []byte) (*http.Response, []byte, error) {
	req, err := http.NewRequestWithContext(r.Context(), r.Method, rs.base+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	for k, vs := range r.Header {
		req.Header[k] = vs
	}
	resp, err := lb.opts.Client.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	return resp, respBody, nil
}

func relay(w http.ResponseWriter, resp *http.Response, body []byte, upstream string) {
	for k, vs := range resp.Header {
		w.Header()[k] = vs
	}
	w.Header().Set(HeaderUpstream, upstream)
	w.WriteHeader(resp.StatusCode)
	w.Write(body)
}

func responseVersion(h http.Header) (Version, bool) {
	iter, err := strconv.Atoi(h.Get(HeaderIter))
	if err != nil {
		return Version{}, false
	}
	epoch, _ := strconv.Atoi(h.Get(HeaderEpoch))
	return Version{Iter: iter, Epoch: epoch}, true
}

// floor returns the tenant's served-version high-water mark.
func (lb *LB) floor(tenant string) (Version, bool) {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	f, ok := lb.floors[tenant]
	if !ok {
		return Version{}, false
	}
	f.lastSeen = time.Now()
	return f.ver, true
}

// raiseFloor records that tenant has now been served ver; floors only
// rise.
func (lb *LB) raiseFloor(tenant string, ver Version) {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	f, ok := lb.floors[tenant]
	if !ok {
		lb.floors[tenant] = &tenantFloor{ver: ver, lastSeen: time.Now()}
		return
	}
	f.lastSeen = time.Now()
	if ver.After(f.ver) {
		f.ver = ver
	}
}

func (lb *LB) markDown(rs *replicaState, err error) {
	if rs.healthy.CompareAndSwap(true, false) && lb.opts.Logf != nil {
		lb.opts.Logf("fleet: replica %s down: %v", rs.name, err)
	}
}

// probe health-checks every replica each CheckEvery: a 200 from
// /healthz (which replicas fail while stale or draining) marks it up,
// anything else down. The probe body's lag feeds the per-replica gauge
// shown in /metrics between scrapes.
func (lb *LB) probe() {
	defer close(lb.probeDone)
	client := &http.Client{Timeout: lb.opts.CheckEvery * 5}
	tick := time.NewTicker(lb.opts.CheckEvery)
	defer tick.Stop()
	for {
		select {
		case <-lb.stopProbe:
			return
		case <-tick.C:
		}
		now := time.Now()
		for _, rs := range lb.reps {
			resp, err := client.Get(rs.base + "/healthz")
			if err != nil {
				lb.markDown(rs, err)
				continue
			}
			var hb struct {
				Lag int64 `json:"lag_iters"`
			}
			json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&hb)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				if rs.healthy.CompareAndSwap(false, true) && lb.opts.Logf != nil {
					lb.opts.Logf("fleet: replica %s up", rs.name)
				}
				rs.lag.Store(hb.Lag)
			} else {
				lb.markDown(rs, fmt.Errorf("healthz: %s", resp.Status))
			}
		}
		lb.evictFloors(now)
	}
}

// evictFloors drops version floors of tenants idle past TenantTTL so a
// long-lived balancer with churning tenants cannot grow without bound.
func (lb *LB) evictFloors(now time.Time) {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	for tenant, f := range lb.floors {
		if now.Sub(f.lastSeen) > lb.opts.TenantTTL {
			delete(lb.floors, tenant)
		}
	}
}
