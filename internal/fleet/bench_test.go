package fleet_test

import (
	"context"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/snapshot"
)

// BenchmarkSnapshotFanout measures one training rank fanning a fresh
// ~1MiB capture out to 4 replicas over the real pull endpoint (loopback
// HTTP): per op, the source swaps in a new version and every puller
// fetches and adopts it. Reported MB/s is aggregate fan-out bandwidth;
// allocs/op is the whole path — encode cache, HTTP, decode, adoption —
// and is gated in CI alongside the serving-path budgets.
func BenchmarkSnapshotFanout(b *testing.B) {
	const replicas = 4
	params := make([][]float32, 4)
	for i := range params {
		params[i] = make([]float32, 64*1024)
		for j := range params[i] {
			params[i][j] = float32(i + j)
		}
	}
	src := &swappableSource{}
	src.set(snapshot.New(0, 1, params))
	stats := metrics.NewComm().Serve()
	srv := httptest.NewServer(fleet.NewSnapshotHandler(src, stats))
	defer srv.Close()

	pullers := make([]*fleet.Puller, replicas)
	for i := range pullers {
		pullers[i] = fleet.NewPuller(srv.URL, fleet.PullerOptions{})
	}
	ctx := context.Background()
	bodyBytes := len(snapshot.New(0, 1, params).Encode())
	b.SetBytes(int64(replicas * bodyBytes))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.set(snapshot.New(i+1, 1, params))
		var wg sync.WaitGroup
		for _, p := range pullers {
			wg.Add(1)
			go func(p *fleet.Puller) {
				defer wg.Done()
				if err := p.PullOnce(ctx); err != nil {
					b.Error(err)
				}
			}(p)
		}
		wg.Wait()
	}
	b.StopTimer()
	snap := stats.Snapshot()
	if snap.SnapshotServes < int64(replicas*b.N) {
		b.Fatalf("served %d bodies, want >= %d", snap.SnapshotServes, replicas*b.N)
	}
	b.ReportMetric(float64(snap.SnapshotEncodes)/float64(b.N), "encodes/op")
}
