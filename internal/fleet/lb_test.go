package fleet_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/metrics"
)

// fakeReplica is a minimal stand-in for a replica gateway: it answers
// /healthz, stamps version headers on predict responses, and identifies
// itself in the body.
type fakeReplica struct {
	name string
	srv  *httptest.Server
	iter atomic.Int64
	hits atomic.Int64
}

func newFakeReplica(iter int) *fakeReplica {
	fr := &fakeReplica{}
	fr.iter.Store(int64(iter))
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"status":"ok","lag_iters":0}`)
	})
	mux.HandleFunc("POST /v1/predict", func(w http.ResponseWriter, r *http.Request) {
		fr.hits.Add(1)
		w.Header().Set(fleet.HeaderIter, strconv.FormatInt(fr.iter.Load(), 10))
		w.Header().Set(fleet.HeaderEpoch, "1")
		fmt.Fprint(w, fr.name)
	})
	fr.srv = httptest.NewServer(mux)
	fr.name = fr.srv.Listener.Addr().String()
	return fr
}

func lbOver(t *testing.T, replicas ...*fakeReplica) (*fleet.LB, *httptest.Server) {
	t.Helper()
	names := make([]string, len(replicas))
	for i, fr := range replicas {
		names[i] = fr.name
	}
	lb, err := fleet.NewLB(names, fleet.LBOptions{CheckEvery: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(lb.Handler())
	t.Cleanup(func() { front.Close(); lb.Close() })
	return lb, front
}

func predictVia(t *testing.T, front, tenant string) (*http.Response, string) {
	t.Helper()
	req, _ := http.NewRequest("POST", front+"/v1/predict", nil)
	req.Header.Set(fleet.HeaderTenant, tenant)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, string(body)
}

// TestLBRoutesByRing: every tenant lands on exactly the replica the
// consistent-hash ring names — the determinism per-tenant rate state
// depends on — and the upstream is echoed in a response header.
func TestLBRoutesByRing(t *testing.T) {
	r1, r2, r3 := newFakeReplica(5), newFakeReplica(5), newFakeReplica(5)
	_, front := lbOver(t, r1, r2, r3)
	ring := fleet.NewRing([]string{r1.name, r2.name, r3.name})
	for i := 0; i < 20; i++ {
		tenant := fmt.Sprintf("tenant-%d", i)
		resp, body := predictVia(t, front.URL, tenant)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("tenant %s: status %d", tenant, resp.StatusCode)
		}
		want := ring.Lookup(tenant)
		if body != want {
			t.Fatalf("tenant %s served by %s, ring says %s", tenant, body, want)
		}
		if got := resp.Header.Get(fleet.HeaderUpstream); got != want {
			t.Fatalf("tenant %s upstream header %q, want %q", tenant, got, want)
		}
	}
}

// TestLBFailsOverWithinOneRequest kills a tenant's replica and demands
// the very next request through the balancer succeeds — served by the
// ring's second choice, with no error surfaced to the client.
func TestLBFailsOverWithinOneRequest(t *testing.T) {
	r1, r2, r3 := newFakeReplica(5), newFakeReplica(5), newFakeReplica(5)
	_, front := lbOver(t, r1, r2, r3)
	byName := map[string]*fakeReplica{r1.name: r1, r2.name: r2, r3.name: r3}
	ring := fleet.NewRing([]string{r1.name, r2.name, r3.name})

	tenant := "tenant-alpha"
	seq := ring.Sequence(tenant)
	resp, body := predictVia(t, front.URL, tenant)
	if resp.StatusCode != http.StatusOK || body != seq[0] {
		t.Fatalf("before kill: %d from %q, want 200 from %q", resp.StatusCode, body, seq[0])
	}

	byName[seq[0]].srv.Close()

	resp, body = predictVia(t, front.URL, tenant)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request during failover: status %d", resp.StatusCode)
	}
	if body != seq[1] {
		t.Fatalf("failover landed on %q, ring's second choice is %q", body, seq[1])
	}
}

// TestLBHonorsVersionFloor: after failover to a replica that has not
// pulled the tenant's last-served version yet, the balancer retries
// until the replica catches up instead of serving an older model.
func TestLBHonorsVersionFloor(t *testing.T) {
	r1, r2, r3 := newFakeReplica(20), newFakeReplica(20), newFakeReplica(20)
	_, front := lbOver(t, r1, r2, r3)
	byName := map[string]*fakeReplica{r1.name: r1, r2.name: r2, r3.name: r3}
	ring := fleet.NewRing([]string{r1.name, r2.name, r3.name})

	tenant := "tenant-alpha"
	seq := ring.Sequence(tenant)
	second := byName[seq[1]]
	// The failover target lags behind what the owner already served;
	// it catches up only after being probed twice.
	second.iter.Store(10)
	go func() {
		for i := 0; i < 2000 && second.hits.Load() < 2; i++ {
			time.Sleep(5 * time.Millisecond)
		}
		second.iter.Store(20)
	}()

	resp, _ := predictVia(t, front.URL, tenant)
	if got := resp.Header.Get(fleet.HeaderIter); got != "20" {
		t.Fatalf("owner served iter %s, want 20", got)
	}
	byName[seq[0]].srv.Close()

	resp, body := predictVia(t, front.URL, tenant)
	if resp.StatusCode != http.StatusOK || body != seq[1] {
		t.Fatalf("failover: %d from %q, want 200 from %q", resp.StatusCode, body, seq[1])
	}
	if got := resp.Header.Get(fleet.HeaderIter); got != "20" {
		t.Fatalf("failover served iter %s, violating the tenant's floor of 20", got)
	}
	if second.hits.Load() < 2 {
		t.Fatalf("floor was honored without retrying (hits=%d)", second.hits.Load())
	}
}

// TestLBAggregatesFleetMetrics: /metrics on the balancer must merge the
// replicas' serve blocks — counters sum, and the fleet p99 is derived
// from merged histograms rather than averaged.
func TestLBAggregatesFleetMetrics(t *testing.T) {
	mkReplica := func(name string, requests int64, buckets map[string]int64, count int64, maxMS float64) *httptest.Server {
		mux := http.NewServeMux()
		mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprint(w, `{"status":"ok"}`)
		})
		mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
			json.NewEncoder(w).Encode(map[string]any{
				"serve": metrics.ServeSnapshot{
					Replica:  name,
					Requests: requests,
					Latency: metrics.LatencySnapshot{
						Count:   count,
						MaxMS:   maxMS,
						Buckets: buckets,
					},
				},
			})
		})
		return httptest.NewServer(mux)
	}
	fast := mkReplica("fast", 90, map[string]int64{"<1ms": 90}, 90, 0.9)
	slow := mkReplica("slow", 10, map[string]int64{"<500ms": 10}, 10, 400)
	defer fast.Close()
	defer slow.Close()

	lb, err := fleet.NewLB(
		[]string{fast.Listener.Addr().String(), slow.Listener.Addr().String()},
		fleet.LBOptions{CheckEvery: 20 * time.Millisecond},
	)
	if err != nil {
		t.Fatal(err)
	}
	defer lb.Close()
	front := httptest.NewServer(lb.Handler())
	defer front.Close()

	resp, err := http.Get(front.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Fleet    metrics.ServeSnapshot            `json:"fleet"`
		Replicas map[string]metrics.ServeSnapshot `json:"replicas"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Fleet.Requests != 100 {
		t.Fatalf("fleet requests = %d, want 100", out.Fleet.Requests)
	}
	if len(out.Replicas) != 2 {
		t.Fatalf("per-replica blocks = %d, want 2", len(out.Replicas))
	}
	// 90% of requests are sub-millisecond, so the fleet p50 must sit in
	// the fast bucket and the p99 in the slow one — an average of the
	// two replicas' percentiles could do neither.
	if out.Fleet.Latency.P50MS >= 1 {
		t.Fatalf("fleet p50 = %.2fms, want <1ms", out.Fleet.Latency.P50MS)
	}
	if out.Fleet.Latency.P99MS < 100 {
		t.Fatalf("fleet p99 = %.2fms, want >=100ms", out.Fleet.Latency.P99MS)
	}
}
