// Package fleet is the snapshot-distribution subsystem of the serving
// plane: it scales one training mesh out to N serving replicas.
//
// The topology has three roles:
//
//   - The source — the training mesh's gateway rank (poseidon-serve) —
//     captures immutable PSN2 snapshots at round barriers and exposes
//     them over a versioned pull endpoint (GET /v1/snapshot?after=iter),
//     encoding each capture once and fanning the same buffer out to
//     every replica.
//   - Replicas (poseidon-serve -replica) run a Puller: they poll the
//     source, adopt strictly newer versions only (serving is
//     version-monotonic by construction), track how many iterations
//     they trail the source, and shed with 503 once past the staleness
//     bound until they catch back up.
//   - The front door (poseidon-lb) runs an LB over a consistent-hash
//     Ring: tenants map stably to replicas — so per-tenant token-bucket
//     state survives scale-out, scale-in, and replica death — health is
//     probed continuously, a dead replica fails over within the request
//     that discovered it, and per-tenant version floors keep served
//     versions monotonic even across a failover to a replica that has
//     not pulled the newest capture yet.
//
// Everything observes the training mesh without perturbing it: the only
// coupling is the pull endpoint reading the already-captured snapshot
// store.
package fleet

import "fmt"

// Version orders snapshots: by capture iteration first, then by
// membership epoch (epochs bump at view-change barriers where the
// restart iteration never moves backwards, so the pair is totally
// ordered along any one training history).
type Version struct {
	Iter  int `json:"iter"`
	Epoch int `json:"epoch"`
}

// After reports whether v is strictly newer than o.
func (v Version) After(o Version) bool {
	if v.Iter != o.Iter {
		return v.Iter > o.Iter
	}
	return v.Epoch > o.Epoch
}

// Before reports whether v is strictly older than o.
func (v Version) Before(o Version) bool { return o.After(v) }

func (v Version) String() string { return fmt.Sprintf("iter %d epoch %d", v.Iter, v.Epoch) }
