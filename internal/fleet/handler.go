package fleet

import (
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"

	"repro/internal/metrics"
	"repro/internal/snapshot"
)

// The pull-endpoint wire contract, owned by the distribution subsystem
// so the source handler, the replica puller, and the load balancer
// cannot drift apart.
const (
	// SnapshotPath is the versioned pull endpoint: GET with an optional
	// `after` (iteration) + `epoch` query naming the version the caller
	// already holds. The response is 200 with the PSN2 body when the
	// source holds something strictly newer, 304 when the caller is
	// current, 503 + Retry-After before the first capture. Every
	// response carries HeaderIter/HeaderEpoch announcing the source's
	// newest version — the signal replicas measure their lag against.
	SnapshotPath = "/v1/snapshot"
	// HeaderIter / HeaderEpoch announce the newest captured version.
	HeaderIter  = "X-Poseidon-Snapshot-Iter"
	HeaderEpoch = "X-Poseidon-Snapshot-Epoch"
	// HeaderReplica names the replica that actually served a response
	// (set by the replica gateway itself).
	HeaderReplica = "X-Poseidon-Replica"
	// HeaderUpstream names the replica the load balancer routed to —
	// what a client (or a test) reads to see where a tenant landed.
	HeaderUpstream = "X-Poseidon-Upstream"
	// HeaderTenant keys per-tenant rate limiting and the consistent-hash
	// ring (shared with the serving gateway).
	HeaderTenant = "X-Tenant"
)

// Source is anything that can hand out the latest immutable snapshot —
// *poseidon.Session, *snapshot.Store, and *Puller all satisfy it.
type Source interface {
	Latest() *snapshot.Model
}

// SnapshotHandler serves the pull endpoint over a Source. It encodes
// each capture once — the cache is keyed on the model pointer, so
// fanning one capture out to N replicas costs one PSN2 encode and N
// writes of the same buffer, never N encodes.
type SnapshotHandler struct {
	src   Source
	stats *metrics.ServeStats
	cache atomic.Pointer[encodedSnapshot]
}

type encodedSnapshot struct {
	m   *snapshot.Model
	buf []byte
}

// NewSnapshotHandler builds the pull endpoint over src. stats may be
// nil; with it, serves/bytes/encodes land in the serving metrics block.
func NewSnapshotHandler(src Source, stats *metrics.ServeStats) *SnapshotHandler {
	return &SnapshotHandler{src: src, stats: stats}
}

func (h *SnapshotHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	m := h.src.Latest()
	if m == nil {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "no snapshot captured yet", http.StatusServiceUnavailable)
		return
	}
	cur := Version{Iter: m.Iter(), Epoch: m.Epoch()}
	w.Header().Set(HeaderIter, strconv.Itoa(cur.Iter))
	w.Header().Set(HeaderEpoch, strconv.Itoa(cur.Epoch))
	have, err := versionQuery(r)
	if err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return
	}
	if !cur.After(have) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	buf := h.encoded(m)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(buf)))
	w.Write(buf)
	if h.stats != nil {
		h.stats.CountSnapshotServe(len(buf))
	}
}

// encoded returns the PSN2 bytes of m, encoding only when m is not the
// cached capture. A stale cache entry for a superseded capture is
// simply overwritten; racing requests may both encode the same fresh
// capture once, which costs a duplicate encode, never a wrong body.
func (h *SnapshotHandler) encoded(m *snapshot.Model) []byte {
	if c := h.cache.Load(); c != nil && c.m == m {
		return c.buf
	}
	buf := m.Encode()
	h.cache.Store(&encodedSnapshot{m: m, buf: buf})
	if h.stats != nil {
		h.stats.CountSnapshotEncode()
	}
	return buf
}

// versionQuery parses the `after` + `epoch` query into the version the
// caller already holds; absent parameters mean "nothing" (any capture
// is newer).
func versionQuery(r *http.Request) (Version, error) {
	have := Version{Iter: -1, Epoch: 0}
	q := r.URL.Query()
	if s := q.Get("after"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil {
			return have, fmt.Errorf("after=%q is not an iteration", s)
		}
		have.Iter = n
	}
	if s := q.Get("epoch"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil {
			return have, fmt.Errorf("epoch=%q is not an epoch", s)
		}
		have.Epoch = n
	}
	return have, nil
}
