package fleet

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/nn/autodiff"
	"repro/internal/snapshot"
)

// PullerOptions tunes a replica's snapshot puller; zero values take the
// defaults noted.
type PullerOptions struct {
	// Interval between polls of the source (default 250ms).
	Interval time.Duration
	// MaxLag is the staleness bound in iterations: once the replica
	// trails the source's announced version by more than MaxLag, it
	// reports Stale and the gateway sheds with 503 until it catches up.
	// 0 means unbounded (never stale).
	MaxLag int
	// Bind + Seed lazily attach a network graph to adopted snapshots so
	// they can predict (see snapshot.Model.Bind). Bind may be nil for
	// pull-only consumers that never predict.
	Bind func(rng *rand.Rand) *autodiff.Network
	Seed int64
	// Client is the HTTP client polls go through (default: a client
	// with a 10s timeout).
	Client *http.Client
	// MaxBodyBytes caps a snapshot response body (default 1GiB).
	MaxBodyBytes int64
	// Stats, when set, receives pull counters and the lag gauge.
	Stats *metrics.ServeStats
}

func (o *PullerOptions) setDefaults() {
	if o.Interval <= 0 {
		o.Interval = 250 * time.Millisecond
	}
	if o.Client == nil {
		o.Client = &http.Client{Timeout: 10 * time.Second}
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 1 << 30
	}
}

// Puller keeps a serving replica's snapshot fresh by polling a source
// gateway's pull endpoint. Adoption is strictly version-monotonic: a
// pulled snapshot replaces the current one only when its (iter, epoch)
// is strictly newer, so Latest() — and therefore everything the replica
// serves — never moves backwards, no matter how responses reorder.
//
// The puller also tracks the source's announced newest version (carried
// on every pull response, including 503s), which is what makes
// staleness observable even while pulls fail: lag is announced-iter
// minus adopted-iter.
type Puller struct {
	base string
	opts PullerOptions

	latest atomic.Pointer[snapshot.Model]
	// source is the newest version the source has announced; nil until
	// the first response carrying version headers.
	source atomic.Pointer[Version]
}

// NewPuller builds a puller against the source gateway's base URL
// (e.g. "http://rank0:9000"); a bare host:port gets http:// prefixed.
func NewPuller(source string, opts PullerOptions) *Puller {
	opts.setDefaults()
	if !strings.Contains(source, "://") {
		source = "http://" + source
	}
	return &Puller{base: strings.TrimRight(source, "/"), opts: opts}
}

// Latest returns the adopted snapshot (nil before the first successful
// pull). It satisfies the serving gateway's Source interface; the
// returned model stays valid for the caller because adoption releases
// the previous model only after the swap.
func (p *Puller) Latest() *snapshot.Model { return p.latest.Load() }

// Version returns the adopted snapshot's version, ok=false before the
// first adoption.
func (p *Puller) Version() (Version, bool) {
	m := p.latest.Load()
	if m == nil {
		return Version{}, false
	}
	return Version{Iter: m.Iter(), Epoch: m.Epoch()}, true
}

// SourceVersion returns the newest version the source has announced,
// ok=false before the first response that carried version headers.
func (p *Puller) SourceVersion() (Version, bool) {
	v := p.source.Load()
	if v == nil {
		return Version{}, false
	}
	return *v, true
}

// Lag returns how many iterations the replica trails the source's
// announced newest version. Before the source announces anything the
// lag is 0 (nothing is known to be missed); after it announces but
// before the first adoption, the lag counts from iteration -1 so a
// replica that has never pulled anything is maximally stale.
func (p *Puller) Lag() int {
	src := p.source.Load()
	if src == nil {
		return 0
	}
	have := -1
	if m := p.latest.Load(); m != nil {
		have = m.Iter()
	}
	lag := src.Iter - have
	if lag < 0 {
		lag = 0
	}
	return lag
}

// Stale reports whether the replica is past its staleness bound.
func (p *Puller) Stale() bool {
	return p.opts.MaxLag > 0 && p.Lag() > p.opts.MaxLag
}

// Status returns (lag, shed) in the shape the serving gateway's
// staleness gate wants.
func (p *Puller) Status() (int, bool) { return p.Lag(), p.Stale() }

// PullOnce polls the source once: it asks for anything strictly newer
// than the adopted version, updates the announced source version from
// the response headers (any status), and adopts the body when it is
// strictly newer. Returns nil on 200 and 304.
func (p *Puller) PullOnce(ctx context.Context) error {
	url := p.base + SnapshotPath
	if v, ok := p.Version(); ok {
		url = fmt.Sprintf("%s?after=%d&epoch=%d", url, v.Iter, v.Epoch)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return p.pullErr(err)
	}
	resp, err := p.opts.Client.Do(req)
	if err != nil {
		return p.pullErr(err)
	}
	defer resp.Body.Close()
	p.noteSourceVersion(resp.Header)
	switch resp.StatusCode {
	case http.StatusOK:
		// fall through to adopt
	case http.StatusNotModified:
		p.countPull(0)
		p.publishLag()
		return nil
	default:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		p.publishLag()
		return p.pullErr(fmt.Errorf("pull %s: %s", url, resp.Status))
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, p.opts.MaxBodyBytes+1))
	if err != nil {
		return p.pullErr(fmt.Errorf("pull %s: %w", url, err))
	}
	if int64(len(body)) > p.opts.MaxBodyBytes {
		return p.pullErr(fmt.Errorf("pull %s: body exceeds %d bytes", url, p.opts.MaxBodyBytes))
	}
	m, err := snapshot.Decode(body)
	if err != nil {
		return p.pullErr(fmt.Errorf("pull %s: %w", url, err))
	}
	if p.opts.Bind != nil {
		m.Bind(p.opts.Bind, p.opts.Seed)
	}
	p.countPull(len(body))
	p.adopt(m)
	p.publishLag()
	return nil
}

// Run polls until ctx is done. Errors are absorbed (counted in Stats);
// the staleness bound is the backstop when the source stays unreachable.
func (p *Puller) Run(ctx context.Context) {
	tick := time.NewTicker(p.opts.Interval)
	defer tick.Stop()
	for {
		p.PullOnce(ctx)
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
	}
}

// adopt swaps m in if it is strictly newer than the adopted snapshot,
// releasing whichever model loses.
func (p *Puller) adopt(m *snapshot.Model) {
	for {
		old := p.latest.Load()
		if old != nil {
			have := Version{Iter: old.Iter(), Epoch: old.Epoch()}
			if !(Version{Iter: m.Iter(), Epoch: m.Epoch()}).After(have) {
				m.Release()
				return
			}
		}
		if p.latest.CompareAndSwap(old, m) {
			if old != nil {
				old.Release()
			}
			return
		}
	}
}

// noteSourceVersion advances the announced source version from response
// headers; it never moves backwards (a delayed response from an older
// poll cannot shrink the lag).
func (p *Puller) noteSourceVersion(h http.Header) {
	iter, err := strconv.Atoi(h.Get(HeaderIter))
	if err != nil {
		return
	}
	epoch, _ := strconv.Atoi(h.Get(HeaderEpoch))
	v := Version{Iter: iter, Epoch: epoch}
	for {
		old := p.source.Load()
		if old != nil && !v.After(*old) {
			return
		}
		if p.source.CompareAndSwap(old, &v) {
			return
		}
	}
}

func (p *Puller) publishLag() {
	if p.opts.Stats != nil {
		p.opts.Stats.SetSnapshotLag(int64(p.Lag()))
	}
}

func (p *Puller) countPull(bytes int) {
	if p.opts.Stats != nil {
		p.opts.Stats.CountPull(bytes)
	}
}

func (p *Puller) pullErr(err error) error {
	if p.opts.Stats != nil {
		p.opts.Stats.CountPullError()
	}
	return err
}
