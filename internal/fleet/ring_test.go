package fleet_test

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/fleet"
)

// TestRingDeterministicAcrossOrder: the tenant→member map must be a
// pure function of the member set — any process building a ring over
// the same names, in any order, computes the same assignment.
func TestRingDeterministicAcrossOrder(t *testing.T) {
	a := fleet.NewRing([]string{"r1:9000", "r2:9000", "r3:9000"})
	b := fleet.NewRing([]string{"r3:9000", "r1:9000", "r2:9000", "r1:9000"})
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("tenant-%d", i)
		if got, want := b.Lookup(key), a.Lookup(key); got != want {
			t.Fatalf("Lookup(%q) order-dependent: %q vs %q", key, got, want)
		}
		if !reflect.DeepEqual(a.Sequence(key), b.Sequence(key)) {
			t.Fatalf("Sequence(%q) order-dependent", key)
		}
	}
}

// TestRingSequenceCoversAllMembers: the failover walk visits every
// member exactly once, starting at the owner.
func TestRingSequenceCoversAllMembers(t *testing.T) {
	members := []string{"a", "b", "c", "d", "e"}
	r := fleet.NewRing(members)
	seq := r.Sequence("tenant-alpha")
	if len(seq) != len(members) {
		t.Fatalf("Sequence visits %d members, want %d", len(seq), len(members))
	}
	if seq[0] != r.Lookup("tenant-alpha") {
		t.Fatalf("Sequence starts at %q, owner is %q", seq[0], r.Lookup("tenant-alpha"))
	}
	seen := map[string]bool{}
	for _, m := range seq {
		if seen[m] {
			t.Fatalf("Sequence repeats %q", m)
		}
		seen[m] = true
	}
}

// TestRingFailoverMatchesMemberLoss: rebuilding the ring without the
// owner must route a key to the full ring's second choice — the
// property that makes the e2e kill test's landing spot predictable —
// and removing a non-owner must not move the key at all.
func TestRingFailoverMatchesMemberLoss(t *testing.T) {
	members := []string{"r1:9000", "r2:9000", "r3:9000", "r4:9000"}
	full := fleet.NewRing(members)
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("tenant-%d", i)
		seq := full.Sequence(key)
		owner, second := seq[0], seq[1]
		var minusOwner, minusOther []string
		for _, m := range members {
			if m != owner {
				minusOwner = append(minusOwner, m)
			}
			if m != seq[len(seq)-1] {
				minusOther = append(minusOther, m)
			}
		}
		if got := fleet.NewRing(minusOwner).Lookup(key); got != second {
			t.Fatalf("key %q: ring without owner routes to %q, full-ring second choice is %q", key, got, second)
		}
		if got := fleet.NewRing(minusOther).Lookup(key); got != owner {
			t.Fatalf("key %q moved to %q when an unrelated member left", key, got)
		}
	}
}

// TestRingSpreadsKeys: with virtual nodes, no member ends up starved
// across a modest key population.
func TestRingSpreadsKeys(t *testing.T) {
	members := []string{"r1", "r2", "r3"}
	r := fleet.NewRing(members)
	counts := map[string]int{}
	for i := 0; i < 1000; i++ {
		counts[r.Lookup(fmt.Sprintf("tenant-%d", i))]++
	}
	for _, m := range members {
		if counts[m] < 100 {
			t.Fatalf("member %q owns only %d/1000 keys: %v", m, counts[m], counts)
		}
	}
}
