package fleet_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"

	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/snapshot"
)

func testModel(iter, epoch int) *snapshot.Model {
	return snapshot.New(iter, epoch, [][]float32{{1, 2, 3}, {float32(iter)}})
}

// swappableSource is a Source whose snapshot the test replaces at will.
type swappableSource struct {
	m atomic.Pointer[snapshot.Model]
}

func (s *swappableSource) Latest() *snapshot.Model { return s.m.Load() }
func (s *swappableSource) set(m *snapshot.Model)   { s.m.Store(m) }

// TestPullerAdoptsOnlyNewer drives a puller against a source that first
// serves iter 10, then — misbehaving on purpose — serves an *older*
// body with 200. The puller must keep iter 10: served versions never
// move backwards no matter what the wire delivers.
func TestPullerAdoptsOnlyNewer(t *testing.T) {
	var phase atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var m *snapshot.Model
		switch phase.Load() {
		case 0:
			m = testModel(10, 1)
		default:
			m = testModel(5, 1) // older than what the puller holds
		}
		w.Header().Set(fleet.HeaderIter, strconv.Itoa(m.Iter()))
		w.Header().Set(fleet.HeaderEpoch, strconv.Itoa(m.Epoch()))
		w.Write(m.Encode())
	}))
	defer srv.Close()

	p := fleet.NewPuller(srv.URL, fleet.PullerOptions{})
	ctx := context.Background()
	if err := p.PullOnce(ctx); err != nil {
		t.Fatalf("first pull: %v", err)
	}
	if v, ok := p.Version(); !ok || v.Iter != 10 || v.Epoch != 1 {
		t.Fatalf("after first pull version = %v (%v), want iter 10 epoch 1", v, ok)
	}
	phase.Store(1)
	if err := p.PullOnce(ctx); err != nil {
		t.Fatalf("second pull: %v", err)
	}
	if v, _ := p.Version(); v.Iter != 10 {
		t.Fatalf("puller regressed to iter %d after old body", v.Iter)
	}
}

// TestPullerStalenessLifecycle walks the shed/resume cycle the fleet is
// built around: adopt iter 10 → the source advances to iter 40 but
// pulls start failing (503s still announce the newest version) → the
// replica is past max-lag and reports stale → the source recovers →
// one successful pull catches up and staleness clears.
func TestPullerStalenessLifecycle(t *testing.T) {
	var phase atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch phase.Load() {
		case 0:
			m := testModel(10, 1)
			w.Header().Set(fleet.HeaderIter, "10")
			w.Header().Set(fleet.HeaderEpoch, "1")
			w.Write(m.Encode())
		case 1:
			// The source is alive enough to announce iter 40 but cannot
			// serve the body.
			w.Header().Set(fleet.HeaderIter, "40")
			w.Header().Set(fleet.HeaderEpoch, "1")
			http.Error(w, "snapshot store wedged", http.StatusInternalServerError)
		default:
			m := testModel(40, 1)
			w.Header().Set(fleet.HeaderIter, "40")
			w.Header().Set(fleet.HeaderEpoch, "1")
			w.Write(m.Encode())
		}
	}))
	defer srv.Close()

	stats := metrics.NewComm().Serve()
	p := fleet.NewPuller(srv.URL, fleet.PullerOptions{MaxLag: 5, Stats: stats})
	ctx := context.Background()

	if err := p.PullOnce(ctx); err != nil {
		t.Fatalf("phase 0 pull: %v", err)
	}
	if lag, shed := p.Status(); lag != 0 || shed {
		t.Fatalf("phase 0: lag %d shed %v, want fresh", lag, shed)
	}

	phase.Store(1)
	if err := p.PullOnce(ctx); err == nil {
		t.Fatal("phase 1 pull should fail")
	}
	if lag, shed := p.Status(); lag != 30 || !shed {
		t.Fatalf("phase 1: lag %d shed %v, want 30/true", lag, shed)
	}
	if v, _ := p.Version(); v.Iter != 10 {
		t.Fatalf("phase 1 kept serving iter %d, want 10", v.Iter)
	}
	if got := stats.Snapshot(); got.SnapshotLagIters != 30 || got.SnapshotPullErrors != 1 {
		t.Fatalf("phase 1 stats: lag %d, pull errors %d", got.SnapshotLagIters, got.SnapshotPullErrors)
	}

	phase.Store(2)
	if err := p.PullOnce(ctx); err != nil {
		t.Fatalf("phase 2 pull: %v", err)
	}
	if lag, shed := p.Status(); lag != 0 || shed {
		t.Fatalf("phase 2: lag %d shed %v, want recovered", lag, shed)
	}
	if v, _ := p.Version(); v.Iter != 40 {
		t.Fatalf("phase 2 version = iter %d, want 40", v.Iter)
	}
}

// TestPullerAgainstSnapshotHandler is the two ends of the wire contract
// talking to each other: a real SnapshotHandler over a mutable source,
// a real Puller polling it — including 304 short-circuits when nothing
// new exists.
func TestPullerAgainstSnapshotHandler(t *testing.T) {
	src := &swappableSource{}
	stats := metrics.NewComm().Serve()
	srv := httptest.NewServer(fleet.NewSnapshotHandler(src, stats))
	defer srv.Close()

	p := fleet.NewPuller(srv.URL, fleet.PullerOptions{})
	ctx := context.Background()

	// No capture yet: the pull fails but is counted, and nothing is
	// adopted.
	if err := p.PullOnce(ctx); err == nil {
		t.Fatal("pull before first capture should fail")
	}
	if p.Latest() != nil {
		t.Fatal("adopted a snapshot from a 503")
	}

	src.set(testModel(3, 1))
	if err := p.PullOnce(ctx); err != nil {
		t.Fatalf("pull: %v", err)
	}
	if v, _ := p.Version(); v.Iter != 3 {
		t.Fatalf("version = %v, want iter 3", v)
	}

	// Nothing new: the handler must answer 304 and the puller must keep
	// its model (CountPull with zero bytes, no snapshot serve).
	before := stats.Snapshot().SnapshotServes
	if err := p.PullOnce(ctx); err != nil {
		t.Fatalf("not-modified pull: %v", err)
	}
	if after := stats.Snapshot().SnapshotServes; after != before {
		t.Fatalf("304 probe still served a body: %d -> %d", before, after)
	}

	// A newer capture flows through; the epoch participates in ordering.
	src.set(testModel(3, 2))
	if err := p.PullOnce(ctx); err != nil {
		t.Fatalf("epoch-bump pull: %v", err)
	}
	if v, _ := p.Version(); v.Iter != 3 || v.Epoch != 2 {
		t.Fatalf("version = %v, want iter 3 epoch 2", v)
	}
}
