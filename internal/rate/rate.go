// Package rate provides a minimal token-bucket rate limiter shaped
// like golang.org/x/time/rate's — enough for per-tenant admission in
// the serving plane without pulling an external dependency into a
// dependency-free module.
package rate

import (
	"math"
	"sync"
	"time"
)

// Limit is a steady-state rate in events per second.
type Limit float64

// Inf never limits.
const Inf = Limit(math.MaxFloat64)

// Limiter is a token bucket: Burst tokens of capacity, refilled at
// Limit tokens per second. The zero value rejects everything; use
// NewLimiter. Safe for concurrent use.
type Limiter struct {
	mu     sync.Mutex
	limit  Limit
	burst  float64
	tokens float64
	last   time.Time
}

// NewLimiter builds a limiter allowing burst immediate events and
// limit events per second sustained. The bucket starts full.
func NewLimiter(limit Limit, burst int) *Limiter {
	return &Limiter{limit: limit, burst: float64(burst), tokens: float64(burst)}
}

// Limit returns the sustained rate.
func (l *Limiter) Limit() Limit {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.limit
}

// Burst returns the bucket capacity.
func (l *Limiter) Burst() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return int(l.burst)
}

// Allow reports whether one event may happen now.
func (l *Limiter) Allow() bool { return l.AllowN(time.Now(), 1) }

// AllowN reports whether n events may happen at time now, consuming
// the tokens if so. The explicit clock keeps tests deterministic.
func (l *Limiter) AllowN(now time.Time, n int) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.limit == Inf {
		return true
	}
	if l.last.IsZero() {
		l.last = now
	}
	if elapsed := now.Sub(l.last).Seconds(); elapsed > 0 {
		l.tokens = math.Min(l.burst, l.tokens+elapsed*float64(l.limit))
		l.last = now
	}
	if l.tokens < float64(n) {
		return false
	}
	l.tokens -= float64(n)
	return true
}
