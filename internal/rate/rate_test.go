package rate

import (
	"testing"
	"time"
)

func TestBurstThenRefill(t *testing.T) {
	l := NewLimiter(10, 3) // 10/s sustained, burst 3
	now := time.Unix(1000, 0)
	for i := 0; i < 3; i++ {
		if !l.AllowN(now, 1) {
			t.Fatalf("burst event %d denied", i)
		}
	}
	if l.AllowN(now, 1) {
		t.Fatal("4th immediate event allowed past burst 3")
	}
	// 100ms refills exactly one token at 10/s.
	now = now.Add(100 * time.Millisecond)
	if !l.AllowN(now, 1) {
		t.Fatal("refilled token denied")
	}
	if l.AllowN(now, 1) {
		t.Fatal("second event allowed from a single refilled token")
	}
}

func TestRefillCapsAtBurst(t *testing.T) {
	l := NewLimiter(100, 2)
	now := time.Unix(1000, 0)
	l.AllowN(now, 2)
	// An hour idle must cap at burst, not accumulate 360k tokens.
	now = now.Add(time.Hour)
	if !l.AllowN(now, 2) {
		t.Fatal("full burst denied after long idle")
	}
	if l.AllowN(now, 1) {
		t.Fatal("idle accumulation exceeded burst")
	}
}

func TestClockGoingBackwards(t *testing.T) {
	l := NewLimiter(10, 1)
	now := time.Unix(1000, 0)
	if !l.AllowN(now, 1) {
		t.Fatal("first event denied")
	}
	// A skewed earlier timestamp must not panic or mint tokens.
	if l.AllowN(now.Add(-time.Minute), 1) {
		t.Fatal("backwards clock minted a token")
	}
}

func TestInf(t *testing.T) {
	l := NewLimiter(Inf, 0)
	now := time.Unix(1000, 0)
	for i := 0; i < 1000; i++ {
		if !l.AllowN(now, 1) {
			t.Fatal("Inf limiter denied an event")
		}
	}
}

func TestAccessors(t *testing.T) {
	l := NewLimiter(42, 7)
	if l.Limit() != 42 || l.Burst() != 7 {
		t.Fatalf("accessors = (%v, %d), want (42, 7)", l.Limit(), l.Burst())
	}
}
