package snapshot

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/nn/autodiff"
	"repro/internal/tensor"
)

func mlpBuilder(rng *rand.Rand) *autodiff.Network {
	return autodiff.MLPNet(8, []int{16}, 3, rng)
}

func fillBatch(rng *rand.Rand, rows, cols int) *tensor.Matrix {
	x := tensor.NewMatrix(rows, cols)
	for i := range x.Data {
		x.Data[i] = float32(rng.NormFloat64())
	}
	return x
}

func captureFrom(t *testing.T, st *Store, iter, epoch int, seed int64) *Model {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	net := mlpBuilder(rng)
	for _, p := range net.Params() {
		for i := range p.Data {
			p.Data[i] = float32(rng.NormFloat64())
		}
	}
	return st.Capture(iter, epoch, net.Params())
}

// TestCaptureIsImmutable mutates the source tensors after Capture and
// demands the model's bytes and predictions stay fixed.
func TestCaptureIsImmutable(t *testing.T) {
	st := NewStore(mlpBuilder, 1)
	rng := rand.New(rand.NewSource(2))
	net := mlpBuilder(rng)
	m := st.Capture(5, 0, net.Params())

	x := fillBatch(rng, 4, st.Features())
	before, err := m.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	snapBytes := m.encode()

	// Training moves on: scribble over the tensors Capture copied from.
	for _, p := range net.Params() {
		for i := range p.Data {
			p.Data[i] += 1
		}
	}

	if got := m.encode(); !bytes.Equal(got, snapBytes) {
		t.Fatal("model bytes changed after source tensors were mutated")
	}
	after, err := m.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(floatBytes(before.Data), floatBytes(after.Data)) {
		t.Fatal("predictions changed after source tensors were mutated")
	}
	if m.Iter() != 5 || m.Epoch() != 0 {
		t.Fatalf("version = (%d, %d), want (5, 0)", m.Iter(), m.Epoch())
	}
}

func floatBytes(fs []float32) []byte {
	buf := make([]byte, 0, 4*len(fs))
	for _, f := range fs {
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(f))
	}
	return buf
}

// TestReleasedModelStillPredicts pins the safety half of the refcount
// contract: Release recycles scratch, never correctness.
func TestReleasedModelStillPredicts(t *testing.T) {
	st := NewStore(mlpBuilder, 1)
	m := captureFrom(t, st, 1, 0, 10)
	rng := rand.New(rand.NewSource(3))
	x := fillBatch(rng, 2, st.Features())
	want, err := m.Predict(x)
	if err != nil {
		t.Fatal(err)
	}

	m.Release() // refcount to zero, scratch recycled
	captureFrom(t, st, 2, 0, 11)
	captureFrom(t, st, 3, 0, 12) // churn reuses the freed predictors

	got, err := m.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range want.Data {
		if got.Data[i] != v {
			t.Fatalf("released model prediction[%d] = %g, want %g", i, got.Data[i], v)
		}
	}
}

// TestConcurrentPredictAcrossSwaps hammers Predict from many goroutines
// while captures keep swapping the latest — the serving plane's
// steady-state shape. Every goroutine checks its answers against a
// prediction taken before the churn started.
func TestConcurrentPredictAcrossSwaps(t *testing.T) {
	st := NewStore(mlpBuilder, 1)
	held := captureFrom(t, st, 1, 0, 20)
	rng := rand.New(rand.NewSource(4))
	x := fillBatch(rng, 3, st.Features())
	want, err := held.Predict(x)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := tensor.NewMatrix(0, 0)
			for i := 0; i < 200; i++ {
				if err := held.PredictInto(out, x); err != nil {
					t.Error(err)
					return
				}
				for j, v := range want.Data {
					if out.Data[j] != v {
						t.Errorf("concurrent prediction[%d] = %g, want %g", j, out.Data[j], v)
						return
					}
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		captureFrom(t, st, 2+i, 0, int64(30+i))
	}
	wg.Wait()
	if st.Latest().Iter() != 51 {
		t.Fatalf("latest iter = %d, want 51", st.Latest().Iter())
	}
}

// TestSnapshotsChannelConflates demands a lagging subscriber sees the
// newest captures, not a blocked barrier.
func TestSnapshotsChannelConflates(t *testing.T) {
	st := NewStore(mlpBuilder, 1)
	for i := 1; i <= 3*subBuffer; i++ {
		captureFrom(t, st, i, 0, int64(i))
	}
	st.Close()
	var seen []int
	for m := range st.Snapshots() {
		seen = append(seen, m.Iter())
	}
	if len(seen) == 0 || len(seen) > subBuffer {
		t.Fatalf("subscriber saw %d snapshots, want 1..%d", len(seen), subBuffer)
	}
	if last := seen[len(seen)-1]; last != 3*subBuffer {
		t.Fatalf("last delivered iter = %d, want the newest (%d)", last, 3*subBuffer)
	}
	for i := 1; i < len(seen); i++ {
		if seen[i] <= seen[i-1] {
			t.Fatalf("deliveries out of order: %v", seen)
		}
	}
}

// TestCodecRoundTrip proves WriteFile/ReadFile preserve every bit plus
// the iter/epoch version, and that a rebound model predicts.
func TestCodecRoundTrip(t *testing.T) {
	st := NewStore(mlpBuilder, 7)
	m := captureFrom(t, st, 12, 3, 40)
	path := filepath.Join(t.TempDir(), "snap.bin")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Iter() != 12 || got.Epoch() != 3 {
		t.Fatalf("decoded version (%d, %d), want (12, 3)", got.Iter(), got.Epoch())
	}
	if len(got.Params()) != len(m.Params()) {
		t.Fatalf("decoded %d tensors, want %d", len(got.Params()), len(m.Params()))
	}
	for i, p := range m.Params() {
		for j, v := range p {
			if got.Params()[i][j] != v {
				t.Fatalf("tensor %d[%d] = %g, want %g", i, j, got.Params()[i][j], v)
			}
		}
	}

	rng := rand.New(rand.NewSource(5))
	x := fillBatch(rng, 2, st.Features())
	want, err := m.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := got.Predict(x); err == nil {
		t.Fatal("unbound model predicted; want an error demanding Bind")
	}
	got.Bind(mlpBuilder, 7)
	out, err := got.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range want.Data {
		if out.Data[i] != v {
			t.Fatalf("rebound prediction[%d] = %g, want %g", i, out.Data[i], v)
		}
	}
}

// TestDecodeLegacyV1 keeps PSN1 files (pre-epoch format) readable.
func TestDecodeLegacyV1(t *testing.T) {
	m := New(9, 4, [][]float32{{1, 2}, {3}})
	buf := m.encode()
	// Rewrite as V1: magic "PSN1" and no epoch field.
	v1 := append([]byte{0x50, 0x53, 0x4e, 0x31}, buf[4:8]...)
	v1 = append(v1, buf[12:]...)
	got, err := Decode(v1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Iter() != 9 || got.Epoch() != 0 {
		t.Fatalf("V1 decoded as (%d, %d), want (9, 0)", got.Iter(), got.Epoch())
	}
	if got.Params()[0][1] != 2 || got.Params()[1][0] != 3 {
		t.Fatalf("V1 tensor bytes corrupted: %v", got.Params())
	}
}

// TestDecodeRejectsGarbage covers the error paths a serve-plane disk
// read can hit.
func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode([]byte{1, 2, 3}); err == nil {
		t.Fatal("truncated magic accepted")
	}
	if _, err := Decode([]byte("not a snapshot at all")); err == nil {
		t.Fatal("bad magic accepted")
	}
	m := New(1, 0, [][]float32{{1, 2, 3, 4}})
	buf := m.encode()
	if _, err := Decode(buf[:len(buf)-5]); err == nil {
		t.Fatal("truncated tensor accepted")
	}
}
