package snapshot

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// Binary parameter-snapshot codec — the one format -load-params files,
// elastic -snapshot-out barrier dumps, and serve-plane disk snapshots
// share. Layout, all fields little-endian uint32:
//
//	magic          "PSN2"
//	iter           the round barrier the replica was captured at
//	epoch          the membership epoch (PSN2 only)
//	tensor count
//	per tensor:    element count, then elements as float32 bit patterns
//
// "PSN1" files (no epoch field) still decode, with epoch 0.
const (
	magicV1 = 0x314e5350 // "PSN1"
	magicV2 = 0x324e5350 // "PSN2"
)

// Encode serializes the model in PSN2 layout. The result is a fresh
// buffer the caller owns; the fleet distribution path encodes once per
// capture and fans the same buffer out to every replica.
func (m *Model) Encode() []byte { return m.encode() }

// encode serializes the model in PSN2 layout.
func (m *Model) encode() []byte {
	size := 16
	for _, p := range m.params {
		size += 4 + 4*len(p)
	}
	buf := make([]byte, 0, size)
	buf = binary.LittleEndian.AppendUint32(buf, magicV2)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.iter))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.epoch))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.params)))
	for _, p := range m.params {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p)))
		for _, v := range p {
			buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(v))
		}
	}
	return buf
}

// WriteTo encodes the model onto w; it implements io.WriterTo.
func (m *Model) WriteTo(w io.Writer) (int64, error) {
	n, err := w.Write(m.encode())
	return int64(n), err
}

// WriteFile atomically persists the model (temp file + rename), so a
// concurrent reader never observes a half-written snapshot.
func (m *Model) WriteFile(path string) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, m.encode(), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Decode parses an encoded model (PSN2, or legacy PSN1 with epoch 0).
// The result is unbound: call Bind before Predict.
func Decode(buf []byte) (*Model, error) {
	next := func(what string) (uint32, error) {
		if len(buf) < 4 {
			return 0, fmt.Errorf("snapshot: truncated at %s", what)
		}
		v := binary.LittleEndian.Uint32(buf)
		buf = buf[4:]
		return v, nil
	}
	magic, err := next("magic")
	if err != nil {
		return nil, err
	}
	if magic != magicV1 && magic != magicV2 {
		return nil, fmt.Errorf("snapshot: not a parameter snapshot (magic %#08x)", magic)
	}
	iter, err := next("iter")
	if err != nil {
		return nil, err
	}
	epoch := uint32(0)
	if magic == magicV2 {
		if epoch, err = next("epoch"); err != nil {
			return nil, err
		}
	}
	count, err := next("tensor count")
	if err != nil {
		return nil, err
	}
	// Every tensor needs at least its 4-byte length field, so a count
	// beyond len(buf)/4 cannot be satisfied — reject it before the
	// allocation, or a 16-byte garbage frame could demand gigabytes.
	if uint64(count) > uint64(len(buf))/4 {
		return nil, fmt.Errorf("snapshot: tensor count %d exceeds remaining %d bytes", count, len(buf))
	}
	params := make([][]float32, count)
	for i := range params {
		ln, err := next("tensor length")
		if err != nil {
			return nil, err
		}
		if uint64(len(buf)) < 4*uint64(ln) {
			return nil, fmt.Errorf("snapshot: truncated at tensor %d", i)
		}
		t := make([]float32, ln)
		for j := range t {
			t[j] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*j:]))
		}
		buf = buf[4*ln:]
		params[i] = t
	}
	return New(int(iter), int(epoch), params), nil
}

// Read decodes a model from r.
func Read(r io.Reader) (*Model, error) {
	buf, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return Decode(buf)
}

// ReadFile decodes the model stored at path.
func ReadFile(path string) (*Model, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	m, err := Decode(buf)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}
