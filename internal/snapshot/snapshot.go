// Package snapshot captures a training replica at round barriers into
// immutable, refcounted, atomically-swapped models, and serves forward
// passes from them while training continues.
//
// The contract that makes concurrent serving safe is split in two:
//
//   - The parameter bytes of a Model are written exactly once, during
//     capture, and never mutated afterwards. Any goroutine holding a
//     *Model may read Params or call Predict forever; a held snapshot
//     stays byte-stable across view changes, reroutes, and further
//     training.
//   - The refcount (Retain/Release) governs only the recycling of the
//     predictor scratch attached to a model. A missed Release costs
//     memory and a warm-up forward pass, never correctness.
package snapshot

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"repro/internal/nn/autodiff"
	"repro/internal/tensor"
)

// predictorPoolCap bounds the warm predictors kept per model and on the
// shared free list; beyond this, concurrent predicts build throwaway
// replicas.
const predictorPoolCap = 8

// source builds inference replicas for one (model-builder, seed) pair
// and recycles them across snapshot generations, so swapping in a new
// capture costs one parameter copy, not a network construction.
type source struct {
	build    func(rng *rand.Rand) *autodiff.Network
	seed     int64
	features int
	classes  int
	free     chan *autodiff.Predictor
}

func newSource(build func(rng *rand.Rand) *autodiff.Network, seed int64) *source {
	s := &source{build: build, seed: seed, free: make(chan *autodiff.Predictor, predictorPoolCap)}
	// Probe replica: derives the input shape and seeds the free list so
	// the first Predict pays no network construction.
	net := build(rand.New(rand.NewSource(seed)))
	s.features, s.classes = net.InputDims(), net.Classes
	s.free <- autodiff.NewPredictor(net)
	return s
}

func (s *source) get() *autodiff.Predictor {
	select {
	case p := <-s.free:
		return p
	default:
		return autodiff.NewPredictor(s.build(rand.New(rand.NewSource(s.seed))))
	}
}

func (s *source) put(p *autodiff.Predictor) {
	select {
	case s.free <- p:
	default:
	}
}

// Model is one immutable captured replica, versioned by the iteration
// barrier it was taken at and the membership epoch it was taken under.
type Model struct {
	iter   int
	epoch  int
	params [][]float32 // canonical bytes; written once at capture

	src  *source
	pool chan *autodiff.Predictor // predictors currently loaded with params
	refs atomic.Int32
}

// New wraps already-captured parameter tensors — for example a decoded
// snapshot file — as a model. The model takes ownership of params; the
// caller must not mutate them afterwards. Predict requires Bind.
func New(iter, epoch int, params [][]float32) *Model {
	m := &Model{iter: iter, epoch: epoch, params: params}
	m.refs.Store(1)
	return m
}

// Bind attaches the network constructor Predict builds inference
// replicas from — what a model decoded from disk needs before it can
// serve. It returns m for chaining.
func (m *Model) Bind(build func(rng *rand.Rand) *autodiff.Network, seed int64) *Model {
	m.src = newSource(build, seed)
	m.pool = make(chan *autodiff.Predictor, predictorPoolCap)
	return m
}

// Iter returns the iteration barrier the model was captured at.
func (m *Model) Iter() int { return m.iter }

// Epoch returns the membership epoch the model was captured under.
func (m *Model) Epoch() int { return m.epoch }

// Params returns the captured tensors in Network.Params order. The
// slices are the model's canonical bytes — treat them as read-only.
func (m *Model) Params() [][]float32 { return m.params }

// NumValues counts the captured scalars.
func (m *Model) NumValues() int {
	total := 0
	for _, p := range m.params {
		total += len(p)
	}
	return total
}

// Features returns the input feature count a Predict batch must carry,
// or -1 for an unbound model.
func (m *Model) Features() int {
	if m.src == nil {
		return -1
	}
	return m.src.features
}

// Classes returns the output class count, or 0 for an unbound model.
func (m *Model) Classes() int {
	if m.src == nil {
		return 0
	}
	return m.src.classes
}

// Retain adds a reference and returns m for chaining.
func (m *Model) Retain() *Model {
	m.refs.Add(1)
	return m
}

// Release drops a reference; at zero the model's warm predictors return
// to the shared free list for the next capture to reuse. The parameter
// bytes are untouched — a released model still predicts correctly, it
// just re-warms its scratch first.
func (m *Model) Release() {
	if m.refs.Add(-1) != 0 || m.src == nil {
		return
	}
	for {
		select {
		case p := <-m.pool:
			m.src.put(p)
		default:
			return
		}
	}
}

// predictor returns an inference replica loaded with the model's
// parameters, owned exclusively by the caller until handed back.
func (m *Model) predictor() (*autodiff.Predictor, error) {
	select {
	case p := <-m.pool:
		return p, nil
	default:
	}
	p := m.src.get()
	live := p.Net().Params()
	if len(live) != len(m.params) {
		m.src.put(p)
		return nil, fmt.Errorf("snapshot: model carries %d tensors, network wants %d", len(m.params), len(live))
	}
	for i, t := range live {
		if len(t.Data) != len(m.params[i]) {
			m.src.put(p)
			return nil, fmt.Errorf("snapshot: tensor %d has %d values, network wants %d", i, len(m.params[i]), len(t.Data))
		}
		copy(t.Data, m.params[i])
	}
	return p, nil
}

// PredictInto runs one forward pass over the captured replica and
// writes the logits into dst, resized to x.Rows × classes — the
// zero-allocation serving path. Safe for concurrent use: each call
// borrows a pooled predictor.
func (m *Model) PredictInto(dst, x *tensor.Matrix) error {
	if m.src == nil {
		return fmt.Errorf("snapshot: model is not bound to a network (Bind, or capture via a Store)")
	}
	if f := m.src.features; f >= 0 && x.Cols != f {
		return fmt.Errorf("snapshot: input has %d features, model wants %d", x.Cols, f)
	}
	p, err := m.predictor()
	if err != nil {
		return err
	}
	logits := p.Forward(x)
	dst.Resize(logits.Rows, logits.Cols)
	copy(dst.Data, logits.Data)
	select {
	case m.pool <- p:
	default:
		m.src.put(p)
	}
	return nil
}

// Predict is PredictInto with a freshly allocated result.
func (m *Model) Predict(x *tensor.Matrix) (*tensor.Matrix, error) {
	dst := tensor.NewMatrix(0, 0)
	if err := m.PredictInto(dst, x); err != nil {
		return nil, err
	}
	return dst, nil
}
