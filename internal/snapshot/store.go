package snapshot

import (
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/nn/autodiff"
	"repro/internal/tensor"
)

// subBuffer is the subscriber channel depth; captures beyond it
// conflate by dropping the oldest undelivered snapshot, so a slow
// consumer lags but never blocks the training barrier.
const subBuffer = 4

// Store owns the atomically-swapped latest model and the capture path
// the train loop feeds at round barriers.
type Store struct {
	src    *source
	latest atomic.Pointer[Model]

	subMu  sync.Mutex
	sub    chan *Model
	closed bool
}

// NewStore builds a store whose captures serve predictions through
// replicas of build(seed)'s architecture.
func NewStore(build func(rng *rand.Rand) *autodiff.Network, seed int64) *Store {
	return &Store{src: newSource(build, seed), sub: make(chan *Model, subBuffer)}
}

// Capture copies the live replica tensors into a fresh immutable model
// and publishes it as the latest. It is called from the training
// compute goroutine at a round barrier — the point where the staged
// replica has just been adopted and is synchronized across workers — so
// the handoff is one memcpy per tensor, with no graph rebuild and no
// stop-the-world pause. params are borrowed for the duration of the
// call only.
func (st *Store) Capture(iter, epoch int, params []*tensor.Matrix) *Model {
	m := &Model{
		iter:  iter,
		epoch: epoch,
		src:   st.src,
		pool:  make(chan *autodiff.Predictor, predictorPoolCap),
	}
	m.refs.Store(1)
	m.params = make([][]float32, len(params))
	for i, p := range params {
		buf := make([]float32, len(p.Data))
		copy(buf, p.Data)
		m.params[i] = buf
	}
	if old := st.latest.Swap(m); old != nil {
		old.Release()
	}
	st.publish(m)
	return m
}

// Latest returns the most recent capture, or nil before the first one.
// No retain discipline is required to read or predict from it.
func (st *Store) Latest() *Model { return st.latest.Load() }

// Snapshots returns the subscription channel: every capture is
// delivered in order, conflating to the newest when the consumer lags.
// The channel closes when the store closes.
func (st *Store) Snapshots() <-chan *Model { return st.sub }

// Features returns the input feature count of the served architecture.
func (st *Store) Features() int { return st.src.features }

// Classes returns the output class count of the served architecture.
func (st *Store) Classes() int { return st.src.classes }

func (st *Store) publish(m *Model) {
	st.subMu.Lock()
	defer st.subMu.Unlock()
	if st.closed {
		return
	}
	for {
		select {
		case st.sub <- m:
			return
		default:
		}
		// Full: drop the oldest undelivered capture and retry.
		select {
		case <-st.sub:
		default:
		}
	}
}

// Close ends the subscription channel. Latest stays readable; further
// captures still swap the latest but are no longer delivered.
func (st *Store) Close() {
	st.subMu.Lock()
	defer st.subMu.Unlock()
	if !st.closed {
		st.closed = true
		close(st.sub)
	}
}
