package snapshot

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzDecodeSnapshot hammers the PSN1/PSN2 decoder with arbitrary
// frames. The contract under fuzz: Decode never panics, never allocates
// past the input's own size class (a garbage tensor count must be
// rejected before the allocation it implies), and every accepted frame
// round-trips — re-encoding the decoded model and decoding again yields
// the same version and the same parameter bytes.
func FuzzDecodeSnapshot(f *testing.F) {
	// Valid PSN2 with a couple of tensors.
	valid := New(7, 2, [][]float32{{1, 2, 3}, {4}, {}}).Encode()
	f.Add(valid)
	// Truncations at every boundary class: mid-magic, mid-header,
	// mid-tensor-length, mid-tensor-body.
	f.Add(valid[:3])
	f.Add(valid[:10])
	f.Add(valid[:17])
	f.Add(valid[:len(valid)-2])
	// Legacy PSN1 (no epoch field).
	v1 := binary.LittleEndian.AppendUint32(nil, magicV1)
	v1 = binary.LittleEndian.AppendUint32(v1, 9) // iter
	v1 = binary.LittleEndian.AppendUint32(v1, 1) // tensor count
	v1 = binary.LittleEndian.AppendUint32(v1, 2) // tensor length
	v1 = binary.LittleEndian.AppendUint32(v1, 0x3f800000)
	v1 = binary.LittleEndian.AppendUint32(v1, 0x40000000)
	f.Add(v1)
	// Oversized claims: a tensor count and a tensor length the buffer
	// cannot possibly back.
	huge := binary.LittleEndian.AppendUint32(nil, magicV2)
	huge = binary.LittleEndian.AppendUint32(huge, 1)
	huge = binary.LittleEndian.AppendUint32(huge, 0)
	huge = binary.LittleEndian.AppendUint32(huge, 0xFFFFFFFF)
	f.Add(huge)
	hugeLen := binary.LittleEndian.AppendUint32(nil, magicV2)
	hugeLen = binary.LittleEndian.AppendUint32(hugeLen, 1)
	hugeLen = binary.LittleEndian.AppendUint32(hugeLen, 0)
	hugeLen = binary.LittleEndian.AppendUint32(hugeLen, 1)
	hugeLen = binary.LittleEndian.AppendUint32(hugeLen, 0xFFFFFFFF)
	f.Add(hugeLen)
	f.Add([]byte("not a snapshot at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		// An accepted frame's scalar payload is bounded by the bytes that
		// carried it — over-allocation would show up here as a model
		// claiming more values than the frame could encode.
		if m.NumValues() > len(data)/4 {
			t.Fatalf("decoded %d values from a %d-byte frame", m.NumValues(), len(data))
		}
		enc := m.Encode()
		m2, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-encoded frame rejected: %v", err)
		}
		if m2.Iter() != m.Iter() || m2.Epoch() != m.Epoch() {
			t.Fatalf("version drifted through round trip: (%d,%d) -> (%d,%d)",
				m.Iter(), m.Epoch(), m2.Iter(), m2.Epoch())
		}
		if !bytes.Equal(m2.Encode(), enc) {
			t.Fatal("encode is not a fixpoint after one round trip")
		}
	})
}
