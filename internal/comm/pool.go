package comm

import (
	"sync"

	"repro/internal/transport"
)

// sendPool is the dispatcher behind overlapped pushes: a fixed set of
// workers, each draining its own FIFO queue. Tasks with the same stripe
// land on the same queue and therefore execute in submission order —
// the property the KV protocol needs (pushes and broadcasts for one
// chunk must stay FIFO per link under bounded staleness) — while tasks
// on different stripes run concurrently and overlap their wire time
// across shards.
//
// Tasks are value structs, not closures: the overwhelmingly common task
// is "send this prepared message to node N and release its payload
// lease", which needs no per-task heap allocation. Only encode-in-task
// work (the PS push path, which serializes off the compute goroutine)
// carries a closure.
//
// submit never blocks: the receive goroutine dispatches server-side
// broadcasts through the pool, and a blocking submit there would close
// a deadlock cycle (receive loop stuck on a full queue → pool workers
// stuck sending into a peer's full inbox → the peer's receive loop
// symmetrically stuck). Queue depth is instead bounded by the protocol
// itself: the consistency clock admits at most 1+staleness rounds in
// flight per parameter.
type sendPool struct {
	queues []*stripeQueue
	wg     sync.WaitGroup

	// send ships one prepared message; the Router points it at its
	// (possibly instrumented) mesh before Start.
	send func(to int, msg transport.Message) error

	// inflight counts submitted-but-unfinished tasks, so a membership
	// barrier can wait for the egress backlog to drain before it swaps
	// the dense→rank mapping the queued sends will resolve through.
	inflight sync.WaitGroup

	mu      sync.Mutex
	err     error
	closing bool
	// onErr, when set, is invoked for every task error (outside mu) so
	// the owner can react — e.g. the Router poisons its clock so waiters
	// observe the failure instead of hanging.
	onErr func(error)
}

// task is one unit of pool work: either a closure (fn != nil) or a
// prepared send, whose payload lease is released once the write is
// done.
type task struct {
	fn  func() error
	to  int
	msg transport.Message
}

// run executes the task.
func (p *sendPool) run(t *task) error {
	if t.fn != nil {
		return t.fn()
	}
	err := p.send(t.to, t.msg)
	t.msg.ReleasePayload()
	return err
}

// stripeQueue is one worker's unbounded FIFO task queue, backed by a
// slice that recycles its capacity once drained (steady state enqueues
// no allocation).
type stripeQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	tasks  []task
	head   int
	closed bool
}

func newStripeQueue() *stripeQueue {
	q := &stripeQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push appends t; reports false after close (caller runs it inline).
func (q *stripeQueue) push(t task) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	q.tasks = append(q.tasks, t)
	q.cond.Signal()
	return true
}

// pop blocks for the next task; reports false when the queue is closed
// and drained.
func (q *stripeQueue) pop() (task, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.head == len(q.tasks) && !q.closed {
		q.cond.Wait()
	}
	if q.head == len(q.tasks) {
		return task{}, false
	}
	t := q.tasks[q.head]
	q.tasks[q.head] = task{} // drop references for the GC
	q.head++
	if q.head == len(q.tasks) {
		// Drained: rewind so the backing array is reused.
		q.tasks = q.tasks[:0]
		q.head = 0
	} else if q.head >= 64 && q.head*2 >= len(q.tasks) {
		// Sustained backlog (producer stays ahead of this worker):
		// compact so the consumed prefix is shed instead of being
		// retained and recopied by every append-triggered realloc.
		n := copy(q.tasks, q.tasks[q.head:])
		clear(q.tasks[n:])
		q.tasks = q.tasks[:n]
		q.head = 0
	}
	return t, true
}

func (q *stripeQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// newSendPool starts `workers` drainers.
func newSendPool(workers int, onErr func(error)) *sendPool {
	if workers <= 0 {
		workers = 1
	}
	p := &sendPool{queues: make([]*stripeQueue, workers), onErr: onErr}
	for i := range p.queues {
		q := newStripeQueue()
		p.queues[i] = q
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for {
				t, ok := q.pop()
				if !ok {
					return
				}
				p.record(p.run(&t))
				p.inflight.Done()
			}
		}()
	}
	return p
}

func (p *sendPool) record(err error) {
	if err == nil {
		return
	}
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.mu.Unlock()
	if p.onErr != nil {
		p.onErr(err)
	}
}

// submit enqueues fn on stripe's queue without ever blocking. After
// close it degrades to inline execution so late stragglers still run.
func (p *sendPool) submit(stripe uint32, fn func() error) {
	p.submitTask(stripe, task{fn: fn})
}

// submitSend enqueues a prepared message send. The pool owns one
// reference on the message's payload lease (the caller retains before
// submitting) and releases it after the write.
func (p *sendPool) submitSend(stripe uint32, to int, msg transport.Message) {
	p.submitTask(stripe, task{to: to, msg: msg})
}

func (p *sendPool) submitTask(stripe uint32, t task) {
	p.inflight.Add(1)
	if !p.queues[int(stripe)%len(p.queues)].push(t) {
		p.record(p.run(&t))
		p.inflight.Done()
	}
}

// flush blocks until every task submitted before the call has finished.
// The caller must guarantee no concurrent submissions — the membership
// barrier does: the compute goroutine is parked inside the barrier and
// the receive goroutine is holding every data frame, so nothing can
// submit while flush waits.
func (p *sendPool) flush() {
	p.inflight.Wait()
}

// close drains every queue and stops the workers. Queued tasks still
// run; later submissions run inline.
func (p *sendPool) close() {
	p.mu.Lock()
	if p.closing {
		p.mu.Unlock()
		return
	}
	p.closing = true
	p.mu.Unlock()
	for _, q := range p.queues {
		q.close()
	}
	p.wg.Wait()
}

// firstErr returns the first task error, if any.
func (p *sendPool) firstErr() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}
