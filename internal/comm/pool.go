package comm

import "sync"

// sendPool is the dispatcher behind overlapped pushes: a fixed set of
// workers, each draining its own FIFO queue. Tasks with the same stripe
// land on the same queue and therefore execute in submission order —
// the property the KV protocol needs (pushes and broadcasts for one
// chunk must stay FIFO per link under bounded staleness) — while tasks
// on different stripes run concurrently and overlap their wire time
// across shards.
//
// submit never blocks: the receive goroutine dispatches server-side
// broadcasts through the pool, and a blocking submit there would close
// a deadlock cycle (receive loop stuck on a full queue → pool workers
// stuck sending into a peer's full inbox → the peer's receive loop
// symmetrically stuck). Queue depth is instead bounded by the protocol
// itself: the consistency clock admits at most 1+staleness rounds in
// flight per parameter.
type sendPool struct {
	queues []*stripeQueue
	wg     sync.WaitGroup

	mu      sync.Mutex
	err     error
	closing bool
	// onErr, when set, is invoked for every task error (outside mu) so
	// the owner can react — e.g. the Router poisons its clock so waiters
	// observe the failure instead of hanging.
	onErr func(error)
}

// stripeQueue is one worker's unbounded FIFO task queue.
type stripeQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	tasks  []func() error
	closed bool
}

func newStripeQueue() *stripeQueue {
	q := &stripeQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push appends fn; reports false after close (caller runs it inline).
func (q *stripeQueue) push(fn func() error) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	q.tasks = append(q.tasks, fn)
	q.cond.Signal()
	return true
}

// pop blocks for the next task; reports false when the queue is closed
// and drained.
func (q *stripeQueue) pop() (func() error, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.tasks) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.tasks) == 0 {
		return nil, false
	}
	fn := q.tasks[0]
	q.tasks[0] = nil
	q.tasks = q.tasks[1:]
	return fn, true
}

func (q *stripeQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// newSendPool starts `workers` drainers.
func newSendPool(workers int, onErr func(error)) *sendPool {
	if workers <= 0 {
		workers = 1
	}
	p := &sendPool{queues: make([]*stripeQueue, workers), onErr: onErr}
	for i := range p.queues {
		q := newStripeQueue()
		p.queues[i] = q
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for {
				fn, ok := q.pop()
				if !ok {
					return
				}
				p.record(fn())
			}
		}()
	}
	return p
}

func (p *sendPool) record(err error) {
	if err == nil {
		return
	}
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.mu.Unlock()
	if p.onErr != nil {
		p.onErr(err)
	}
}

// submit enqueues fn on stripe's queue without ever blocking. After
// close it degrades to inline execution so late stragglers still run.
func (p *sendPool) submit(stripe uint32, fn func() error) {
	if !p.queues[int(stripe)%len(p.queues)].push(fn) {
		p.record(fn())
	}
}

// close drains every queue and stops the workers. Queued tasks still
// run; later submissions run inline.
func (p *sendPool) close() {
	p.mu.Lock()
	if p.closing {
		p.mu.Unlock()
		return
	}
	p.closing = true
	p.mu.Unlock()
	for _, q := range p.queues {
		q.close()
	}
	p.wg.Wait()
}

// firstErr returns the first task error, if any.
func (p *sendPool) firstErr() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}
