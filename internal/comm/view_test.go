package comm

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// mats allocates one zero matrix per shape.
func mats(shapes [][2]int) []*tensor.Matrix {
	var ms []*tensor.Matrix
	for _, s := range shapes {
		ms = append(ms, tensor.NewMatrix(s[0], s[1]))
	}
	return ms
}

// runElastic drives one node's compute loop from start up to (but not
// launching) iters, folding membership barriers where they appear: after
// every WaitFor it checks ViewPending, runs AwaitView, captures the
// adopted replica, and resumes at the restart iteration. Every launched
// gradient is fill on all elements, so a P-member round adds Σ(rank+1)
// per element. Returns the observed view changes and, aligned with them,
// the replica snapshot right after each barrier.
func runElastic(r *Router, start, iters int, shapes [][2]int, fill float32) ([]ViewChange, [][]*tensor.Matrix, error) {
	var changes []ViewChange
	var snaps [][]*tensor.Matrix
	iter := start
	for {
		r.WaitFor(iter)
		if r.ViewPending() {
			vc, err := r.AwaitView(iter)
			if err != nil {
				return changes, snaps, err
			}
			changes = append(changes, vc)
			if vc.Left {
				return changes, snaps, nil
			}
			snap := mats(shapes)
			r.Adopt(snap)
			snaps = append(snaps, snap)
			iter = vc.RestartIter
			continue
		}
		if err := r.Err(); err != nil {
			return changes, snaps, err
		}
		if iter >= iters {
			return changes, snaps, nil
		}
		grads := mats(shapes)
		for _, g := range grads {
			g.Fill(fill)
		}
		if err := r.LaunchAll(iter, grads); err != nil {
			return changes, snaps, err
		}
		iter++
	}
}

// waitViewPending polls until a membership transition is observed — the
// test-side stand-in for a compute loop that is between iterations when
// the transport event lands.
func waitViewPending(r *Router) error {
	deadline := time.Now().Add(10 * time.Second)
	for !r.ViewPending() {
		if err := r.Err(); err != nil {
			return err
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("no membership change observed within 10s")
		}
		time.Sleep(time.Millisecond)
	}
	return nil
}

// assertReplicasIdentical checks the surviving replicas are
// byte-for-byte equal — the invariant leader-bytes adoption plus
// worker-id-ordered folds must preserve across membership changes.
func assertReplicasIdentical(t *testing.T, routers map[int]*Router, shapes [][2]int) {
	t.Helper()
	var refNode int
	var ref []*tensor.Matrix
	for node, r := range routers {
		got := mats(shapes)
		r.Adopt(got)
		if ref == nil {
			refNode, ref = node, got
			continue
		}
		for pi, p := range got {
			for j, v := range p.Data {
				if math.Float32bits(v) != math.Float32bits(ref[pi].Data[j]) {
					t.Fatalf("replicas diverged: node %d param %d[%d] = %g, node %d has %g",
						node, pi, j, v, refNode, ref[pi].Data[j])
				}
			}
		}
	}
}

// A clean crash barrier: all three nodes complete rounds 0..2, rank 2 is
// killed, and the survivors re-form at epoch 1 with exact arithmetic —
// the adopted replica is initial + 3·Σ(1..3), the two remaining rounds
// add Σ(1..2) each, and a PlanShape hook re-routes param 1 to SFB for
// the smaller cluster.
func TestRouterViewChangeOnCrash(t *testing.T) {
	baseline := transport.OutstandingPayloadLeases()
	const n = 3
	shapes := [][2]int{{4, 6}, {2, 3}}
	allParams := identicalParams(11, shapes)

	cl := transport.NewElasticChanCluster(n)
	routers := make([]*Router, n)
	mtrs := make([]*metrics.Comm, n)
	for node := 0; node < n; node++ {
		mtrs[node] = metrics.NewComm()
		r, err := NewRouter(Config{
			Mesh:    cl.Endpoint(node),
			Elastic: true,
			Plans: []ParamPlan{
				{Index: 0, Rows: 4, Cols: 6, Route: RoutePS},
				{Index: 1, Rows: 2, Cols: 3, Route: RoutePS},
			},
			Params:   allParams[node],
			Scale:    1,
			Overlap:  true,
			Metrics:  mtrs[node],
			ScaleFor: func(int) float32 { return 1 },
			PlanShape: func(workers int) ([]ParamPlan, error) {
				if workers != 2 {
					return nil, nil // keep current routes
				}
				return []ParamPlan{
					{Index: 0, Rows: 4, Cols: 6, Route: RoutePS},
					{Index: 1, Rows: 2, Cols: 3, Route: RouteSFB},
				}, nil
			},
			SFSource: func(node int) func(index int) func() *tensor.SufficientFactor {
				return func(index int) func() *tensor.SufficientFactor {
					if index != 1 {
						return nil
					}
					return func() *tensor.SufficientFactor {
						u := tensor.NewMatrix(1, 2)
						u.Fill(float32(node + 1))
						v := tensor.NewMatrix(1, 3)
						v.Fill(1)
						return &tensor.SufficientFactor{U: u, V: v}
					}
				}
			}(node),
		})
		if err != nil {
			t.Fatal(err)
		}
		routers[node] = r
		r.Start()
	}
	t.Cleanup(func() {
		cl.Close()
		for _, r := range routers {
			r.Stop()
		}
	})

	// Phase A: three full rounds on the full mesh, then drain.
	var phaseA sync.WaitGroup
	errs := make([]error, n)
	for node := 0; node < n; node++ {
		node, r := node, routers[node]
		phaseA.Add(1)
		go func() {
			defer phaseA.Done()
			_, _, errs[node] = runElastic(r, 0, 3, shapes, float32(node+1))
		}()
	}
	phaseA.Wait()
	for node, err := range errs {
		if err != nil {
			t.Fatalf("node %d phase A: %v", node, err)
		}
	}

	cl.Kill(2)

	// Phase B: the survivors observe the death, re-form, and finish.
	var phaseB sync.WaitGroup
	vcs := make([]ViewChange, n)
	for node := 0; node < 2; node++ {
		node, r := node, routers[node]
		phaseB.Add(1)
		go func() {
			defer phaseB.Done()
			if err := waitViewPending(r); err != nil {
				errs[node] = err
				return
			}
			vc, err := r.AwaitView(3)
			if err != nil {
				errs[node] = err
				return
			}
			vcs[node] = vc
			_, _, errs[node] = runElastic(r, vc.RestartIter, 6, shapes, float32(node+1))
		}()
	}
	phaseB.Wait()
	for node := 0; node < 2; node++ {
		if errs[node] != nil {
			t.Fatalf("node %d phase B: %v", node, errs[node])
		}
	}

	wantView := cluster.View{Epoch: 1, Members: []int{0, 1}}
	survivors := map[int]*Router{0: routers[0], 1: routers[1]}
	for node := 0; node < 2; node++ {
		vc := vcs[node]
		if !vc.View.Equal(wantView) || vc.RestartIter != 3 || vc.Left {
			t.Fatalf("node %d view change %+v, want %v restart 3", node, vc, wantView)
		}
		if got := routers[node].View(); !got.Equal(wantView) {
			t.Fatalf("node %d live view %v, want %v", node, got, wantView)
		}
		if got := routers[node].Routes(); got[0] != RoutePS || got[1] != RouteSFB {
			t.Fatalf("node %d routes %v after shape replan, want [PS SFB]", node, got)
		}
		if e := mtrs[node].MembershipEpoch(); e != 1 {
			t.Fatalf("node %d metrics epoch %d, want 1", node, e)
		}
		snap := mtrs[node].Snapshot()
		if len(snap.ViewChanges) != 1 {
			t.Fatalf("node %d logged %d view changes, want 1: %+v", node, len(snap.ViewChanges), snap.ViewChanges)
		}
		ev := snap.ViewChanges[0]
		if ev.Epoch != 1 || ev.RestartIter != 3 || len(ev.Dead) != 1 || ev.Dead[0] != 2 ||
			len(ev.Joined) != 0 || len(ev.Left) != 0 {
			t.Fatalf("node %d view-change event %+v", node, ev)
		}
	}
	assertReplicasIdentical(t, survivors, shapes)

	// Exact arithmetic: rounds 0..2 at three workers (+6 each), the
	// barrier adopts that state, rounds 3..5 at two workers (+3 each).
	want := float32(3*(1+2+3) + 3*(1+2))
	for node := 0; node < 2; node++ {
		got := mats(shapes)
		routers[node].Adopt(got)
		for pi, p := range got {
			for j, v := range p.Data {
				if exp := allParams[0][pi].Data[j] + want; absDiff(v, exp) > 1e-4 {
					t.Fatalf("node %d param %d[%d]: %g, want %g", node, pi, j, v, exp)
				}
			}
		}
	}

	cl.Close()
	for _, r := range routers {
		r.Stop()
	}
	deadline := time.Now().Add(5 * time.Second)
	for transport.OutstandingPayloadLeases() != baseline {
		if time.Now().After(deadline) {
			t.Fatalf("payload leases leaked across the crash barrier: %d outstanding, baseline %d",
				transport.OutstandingPayloadLeases(), baseline)
		}
		time.Sleep(time.Millisecond)
	}
}

// A crash with frames in flight: rank 2 stops mid-stream (no drain) and
// is killed while its last round is incomplete. The fence must discard
// every frame below the restart iteration, the survivors must adopt one
// replica, and the post-restart arithmetic must hold from that snapshot.
func TestRouterViewChangeCrashMidStream(t *testing.T) {
	baseline := transport.OutstandingPayloadLeases()
	const n = 3
	const iters = 8
	shapes := [][2]int{{4, 6}, {2, 3}}
	allParams := identicalParams(23, shapes)

	cl := transport.NewElasticChanCluster(n)
	routers := make([]*Router, n)
	for node := 0; node < n; node++ {
		r, err := NewRouter(Config{
			Mesh:    cl.Endpoint(node),
			Elastic: true,
			Plans: []ParamPlan{
				{Index: 0, Rows: 4, Cols: 6, Route: RoutePS},
				{Index: 1, Rows: 2, Cols: 3, Route: RoutePS},
			},
			Params:     allParams[node],
			Scale:      1,
			Overlap:    true,
			ChunkElems: 5,
			ScaleFor:   func(int) float32 { return 1 },
		})
		if err != nil {
			t.Fatal(err)
		}
		routers[node] = r
		r.Start()
	}
	t.Cleanup(func() {
		cl.Close()
		for _, r := range routers {
			r.Stop()
		}
	})

	// The survivors train toward iters from the start; rank 2 launches
	// rounds 0..2 and vanishes without draining, so its last
	// contributions may be anywhere between queued and folded.
	var wg sync.WaitGroup
	errs := make([]error, 2)
	vcs := make([][]ViewChange, 2)
	snaps := make([][][]*tensor.Matrix, 2)
	for node := 0; node < 2; node++ {
		node, r := node, routers[node]
		wg.Add(1)
		go func() {
			defer wg.Done()
			vcs[node], snaps[node], errs[node] = runElastic(r, 0, iters, shapes, float32(node+1))
		}()
	}
	ready := make(chan struct{})
	go func() {
		r := routers[2]
		for iter := 0; iter < 3; iter++ {
			r.WaitFor(iter)
			grads := mats(shapes)
			for _, g := range grads {
				g.Fill(3)
			}
			if r.LaunchAll(iter, grads) != nil {
				break
			}
		}
		close(ready)
	}()
	<-ready
	cl.Kill(2)
	wg.Wait()
	for node, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", node, err)
		}
	}

	wantView := cluster.View{Epoch: 1, Members: []int{0, 1}}
	for node := 0; node < 2; node++ {
		if len(vcs[node]) != 1 {
			t.Fatalf("node %d saw %d view changes, want 1: %+v", node, len(vcs[node]), vcs[node])
		}
		if vc := vcs[node][0]; !vc.View.Equal(wantView) || vc.Left {
			t.Fatalf("node %d view change %+v, want %v", node, vc, wantView)
		}
	}
	restart := vcs[0][0].RestartIter
	if other := vcs[1][0].RestartIter; other != restart {
		t.Fatalf("survivors disagree on restart iteration: %d vs %d", restart, other)
	}
	if restart < 2 || restart > 4 {
		// Rank 2 passed WaitFor(2), so the survivors launched round 1
		// (their pushes fed that barrier) and halt at 2 or later; rank 2
		// never launched round 3, so no survivor can pass WaitFor(4).
		// Anything between depends on which overlapped broadcasts the
		// kill cut off.
		t.Fatalf("restart iteration %d outside the reachable range [2,4]", restart)
	}

	// The adopted snapshots must agree byte-for-byte, and the finish
	// must be exactly snapshot + (iters-restart) two-worker rounds.
	for pi := range shapes {
		for j, v := range snaps[0][0][pi].Data {
			if math.Float32bits(v) != math.Float32bits(snaps[1][0][pi].Data[j]) {
				t.Fatalf("adopted snapshots diverge at param %d[%d]: %g vs %g",
					pi, j, v, snaps[1][0][pi].Data[j])
			}
		}
	}
	survivors := map[int]*Router{0: routers[0], 1: routers[1]}
	assertReplicasIdentical(t, survivors, shapes)
	want := float32((iters - restart) * (1 + 2))
	for node := 0; node < 2; node++ {
		got := mats(shapes)
		routers[node].Adopt(got)
		for pi, p := range got {
			for j, v := range p.Data {
				if exp := snaps[node][0][pi].Data[j] + want; absDiff(v, exp) > 1e-4 {
					t.Fatalf("node %d param %d[%d]: %g, want snapshot+%g = %g",
						node, pi, j, v, want, exp)
				}
			}
		}
	}

	cl.Close()
	for _, r := range routers {
		r.Stop()
	}
	// Frames that were queued for the killed rank when it died are
	// stranded in its inbox (its receive loop is gone); re-attaching the
	// slot drains and releases them, like the OS reclaiming a dead
	// process's socket buffers.
	cl.Join(2)
	deadline := time.Now().Add(5 * time.Second)
	for transport.OutstandingPayloadLeases() != baseline {
		if time.Now().After(deadline) {
			t.Fatalf("payload leases leaked across the mid-stream crash: %d outstanding, baseline %d",
				transport.OutstandingPayloadLeases(), baseline)
		}
		time.Sleep(time.Millisecond)
	}
}

// A voluntary departure: rank 2 calls Leave after round 2, receives
// Left=true, and the survivors re-form and finish with exact arithmetic.
func TestRouterViewChangeGracefulLeave(t *testing.T) {
	const n = 3
	shapes := [][2]int{{4, 6}}
	allParams := identicalParams(17, shapes)

	cl := transport.NewElasticChanCluster(n)
	routers := make([]*Router, n)
	mtrs := make([]*metrics.Comm, n)
	for node := 0; node < n; node++ {
		mtrs[node] = metrics.NewComm()
		r, err := NewRouter(Config{
			Mesh:    cl.Endpoint(node),
			Elastic: true,
			Plans:   []ParamPlan{{Index: 0, Rows: 4, Cols: 6, Route: RoutePS}},
			Params:  allParams[node],
			Scale:   1,
			Metrics: mtrs[node],
		})
		if err != nil {
			t.Fatal(err)
		}
		routers[node] = r
		r.Start()
	}
	t.Cleanup(func() {
		cl.Close()
		for _, r := range routers {
			r.Stop()
		}
	})

	var phaseA sync.WaitGroup
	errs := make([]error, n)
	for node := 0; node < n; node++ {
		node, r := node, routers[node]
		phaseA.Add(1)
		go func() {
			defer phaseA.Done()
			_, _, errs[node] = runElastic(r, 0, 3, shapes, float32(node+1))
		}()
	}
	phaseA.Wait()
	for node, err := range errs {
		if err != nil {
			t.Fatalf("node %d phase A: %v", node, err)
		}
	}

	if err := routers[2].Leave(); err != nil {
		t.Fatal(err)
	}

	var phaseB sync.WaitGroup
	vcs := make([]ViewChange, n)
	for node := 0; node < n; node++ {
		node, r := node, routers[node]
		phaseB.Add(1)
		go func() {
			defer phaseB.Done()
			if err := waitViewPending(r); err != nil {
				errs[node] = err
				return
			}
			vc, err := r.AwaitView(3)
			if err != nil {
				errs[node] = err
				return
			}
			vcs[node] = vc
			if vc.Left {
				return
			}
			_, _, errs[node] = runElastic(r, vc.RestartIter, 6, shapes, float32(node+1))
		}()
	}
	phaseB.Wait()
	for node, err := range errs {
		if err != nil {
			t.Fatalf("node %d phase B: %v", node, err)
		}
	}

	if !vcs[2].Left {
		t.Fatalf("leaver's view change %+v, want Left", vcs[2])
	}
	wantView := cluster.View{Epoch: 1, Members: []int{0, 1}}
	for node := 0; node < 2; node++ {
		if vc := vcs[node]; !vc.View.Equal(wantView) || vc.RestartIter != 3 || vc.Left {
			t.Fatalf("node %d view change %+v, want %v restart 3", node, vc, wantView)
		}
		ev := mtrs[node].Snapshot().ViewChanges
		if len(ev) != 1 || len(ev[0].Left) != 1 || ev[0].Left[0] != 2 || len(ev[0].Dead) != 0 {
			t.Fatalf("node %d view-change events %+v, want one with Left [2]", node, ev)
		}
	}
	assertReplicasIdentical(t, map[int]*Router{0: routers[0], 1: routers[1]}, shapes)
	// No ScaleFor hook: the router's default rescale multiplies the
	// update scale by oldP/newP = 3/2, so post-departure rounds add
	// 1.5·Σ(1..2) each.
	want := float32(3*(1+2+3)) + 3*1.5*float32(1+2)
	for node := 0; node < 2; node++ {
		got := mats(shapes)
		routers[node].Adopt(got)
		for j, v := range got[0].Data {
			if exp := allParams[0][0].Data[j] + want; absDiff(v, exp) > 1e-4 {
				t.Fatalf("node %d param 0[%d]: %g, want %g", node, j, v, exp)
			}
		}
	}
}

// A late join: a two-member cluster trains three rounds, slot 2 attaches
// with a Joining router, and the barrier adopts it — all three replicas
// finish byte-identical with exact arithmetic.
func TestRouterViewChangeJoin(t *testing.T) {
	const n = 3
	shapes := [][2]int{{4, 6}, {2, 3}}
	allParams := identicalParams(29, shapes)
	initialView := cluster.View{Epoch: 0, Members: []int{0, 1}}

	cl := transport.NewElasticChanCluster(n)
	mkConfig := func(node int, joining bool) Config {
		return Config{
			Mesh:    cl.Endpoint(node),
			Elastic: true,
			View:    initialView.Clone(),
			Joining: joining,
			Plans: []ParamPlan{
				{Index: 0, Rows: 4, Cols: 6, Route: RoutePS},
				{Index: 1, Rows: 2, Cols: 3, Route: RoutePS},
			},
			Params:   allParams[node],
			Scale:    1,
			Metrics:  metrics.NewComm(),
			ScaleFor: func(int) float32 { return 1 },
		}
	}
	routers := make([]*Router, 2, n)
	for node := 0; node < 2; node++ {
		r, err := NewRouter(mkConfig(node, false))
		if err != nil {
			t.Fatal(err)
		}
		routers[node] = r
		r.Start()
	}
	t.Cleanup(func() {
		cl.Close()
		for _, r := range routers {
			r.Stop()
		}
	})

	var phaseA sync.WaitGroup
	errs := make([]error, n)
	for node := 0; node < 2; node++ {
		node, r := node, routers[node]
		phaseA.Add(1)
		go func() {
			defer phaseA.Done()
			_, _, errs[node] = runElastic(r, 0, 3, shapes, float32(node+1))
		}()
	}
	phaseA.Wait()
	for node, err := range errs {
		if err != nil {
			t.Fatalf("node %d phase A: %v", node, err)
		}
	}

	// Attach slot 2 and hand it a joining router: it broadcasts nothing
	// and waits in AwaitView(0) to be adopted wholesale.
	cl.Join(2)
	joiner, err := NewRouter(mkConfig(2, true))
	if err != nil {
		t.Fatal(err)
	}
	routers = append(routers, joiner)
	joiner.Start()

	var phaseB sync.WaitGroup
	vcs := make([]ViewChange, n)
	for node := 0; node < n; node++ {
		node, r := node, routers[node]
		phaseB.Add(1)
		go func() {
			defer phaseB.Done()
			if node != 2 {
				if err := waitViewPending(r); err != nil {
					errs[node] = err
					return
				}
			}
			vc, err := r.AwaitView(3)
			if err != nil {
				errs[node] = err
				return
			}
			vcs[node] = vc
			_, _, errs[node] = runElastic(r, vc.RestartIter, 6, shapes, float32(node+1))
		}()
	}
	phaseB.Wait()
	for node, err := range errs {
		if err != nil {
			t.Fatalf("node %d phase B: %v", node, err)
		}
	}

	wantView := cluster.View{Epoch: 1, Members: []int{0, 1, 2}}
	for node := 0; node < n; node++ {
		if vc := vcs[node]; !vc.View.Equal(wantView) || vc.RestartIter != 3 || vc.Left {
			t.Fatalf("node %d view change %+v, want %v restart 3", node, vc, wantView)
		}
		if got := routers[node].View(); !got.Equal(wantView) {
			t.Fatalf("node %d live view %v, want %v", node, got, wantView)
		}
	}

	all := map[int]*Router{0: routers[0], 1: routers[1], 2: routers[2]}
	assertReplicasIdentical(t, all, shapes)
	// Rounds 0..2 at two workers (+3 each), rounds 3..5 at three (+6).
	want := float32(3*(1+2) + 3*(1+2+3))
	for node := 0; node < n; node++ {
		got := mats(shapes)
		routers[node].Adopt(got)
		for pi, p := range got {
			for j, v := range p.Data {
				if exp := allParams[0][pi].Data[j] + want; absDiff(v, exp) > 1e-4 {
					t.Fatalf("node %d param %d[%d]: %g, want %g", node, pi, j, v, exp)
				}
			}
		}
	}
}

// The membership surface must reject fixed-size routers outright — a
// protocol bug, not a hang.
func TestRouterViewAPIFixedSize(t *testing.T) {
	meshes := transport.NewChanCluster(1)
	defer meshes[0].Close()
	r, err := NewRouter(Config{
		Mesh:   meshes[0],
		Plans:  []ParamPlan{{Index: 0, Rows: 2, Cols: 2, Route: RoutePS}},
		Params: []*tensor.Matrix{tensor.NewMatrix(2, 2)},
		Scale:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	defer r.Stop()
	if _, err := r.AwaitView(0); err == nil {
		t.Fatal("AwaitView on a fixed-size router must error")
	}
	if err := r.Leave(); err == nil {
		t.Fatal("Leave on a fixed-size router must error")
	}
	if r.ViewPending() {
		t.Fatal("fixed-size router reports a pending view change")
	}
	if got := r.View(); !got.Equal(cluster.Initial(1)) {
		t.Fatalf("fixed-size router view %v, want %v", got, cluster.Initial(1))
	}
	if _, err := NewRouter(Config{
		Mesh:    meshes[0],
		Joining: true,
		Plans:   []ParamPlan{{Index: 0, Rows: 2, Cols: 2, Route: RoutePS}},
		Params:  []*tensor.Matrix{tensor.NewMatrix(2, 2)},
		Scale:   1,
	}); err == nil {
		t.Fatal("Joining without Elastic must be rejected")
	}
}
