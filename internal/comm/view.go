package comm

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/kvstore"
	"repro/internal/metrics"
	"repro/internal/sfb"
	"repro/internal/transport"
)

// Membership epochs generalize the replan barrier to changes in WHO is
// training, not just HOW parameters route. The protocol, end to end:
//
//  1. Trigger. The transport injects MsgPeerGone (a peer crashed) or
//     MsgPeerUp (a joiner attached), a peer's MsgViewHalt arrives, or
//     the local node calls Leave. The receive loop opens a pendingView,
//     parks every subsequent data frame (leases retained), and
//     interrupts the consistency clock so the compute loop unblocks.
//
//  2. Halt. Each live member of the old view reaches AwaitView with the
//     iteration it would have launched next and broadcasts that halt
//     iteration — plus everything it has observed (dead set, join set,
//     its own leave intent) — to every live old member, then waits.
//     Halts go to everyone so any surviving rank can lead.
//
//  3. Decide. The leader (minimum live rank of the old view) collects
//     a halt from every live old member, computes the successor view
//     (old − dead − leavers + joiners) and the restart iteration
//     (max of the halt iterations — no member launched past it, so
//     every old-epoch frame is stamped below it), re-runs the route
//     planner for the new shape, and broadcasts MsgView carrying the
//     view, the restart iteration, the route vector, and its staged
//     replica — the bytes every survivor and joiner adopts.
//
//  4. Apply. On MsgView each member drains the send pool, adopts the
//     leader's parameters, rebuilds shard/bank/syncers for the new
//     size, rescales updates, resets the clock to the restart
//     iteration, and replays parked frames — dropping those fenced
//     below the restart iteration (their rounds are recomputed) and
//     those from ranks outside the new view. A member absent from the
//     view (a leaver, by request) returns Left instead of rebuilding.
//
// The fence needs no per-peer bookkeeping: a member only emits data
// frames for iterations it launched, all below its own halt, so every
// old-epoch frame satisfies Iter < restartIter; and a peer can only
// emit new-epoch frames (Iter >= restartIter) after applying MsgView,
// which the leader sends only after collecting this node's halt — by
// then this node is parked, so the frame is held and replayed, never
// misdispatched.

// ViewChange reports one committed membership barrier to the caller.
type ViewChange struct {
	// View is the successor membership.
	View cluster.View
	// RestartIter is the iteration training resumes at; the clock is
	// reset so WaitFor(RestartIter) passes immediately.
	RestartIter int
	// Left is true when this node was excluded from the successor view
	// (it asked to Leave): the router did not rebuild, and the caller
	// should wind down gracefully.
	Left bool
}

// pendingView accumulates one in-progress membership transition.
type pendingView struct {
	dead    map[int]bool // ranks whose links failed (union of local + halted observations)
	joined  map[int]bool // ranks attached but not yet members
	leavers map[int]bool // ranks that announced voluntary departure
	halts   map[int]int  // live old member rank → halt iteration
	leave   bool         // this node wants out

	haltSent bool // this node broadcast its halt
	composed bool // this node (as leader) broadcast MsgView
	view     *viewPayload
	held     []transport.Message
	expired  bool
	timer    *time.Timer
}

// viewPayload is the decoded MsgView frame.
type viewPayload struct {
	view    cluster.View
	restart int
	routes  []byte
	params  [][]float32
}

func sortedRanks(set map[int]bool) []int {
	ranks := make([]int, 0, len(set))
	for r := range set {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	return ranks
}

// viewMesh presents the current view to the syncers as a dense 0..P−1
// mesh: sends translate dense indices to transport ranks under the live
// view, so syncer logic is untouched by membership changes. Reads take
// viewMu because pool workers execute queued sends concurrently with
// everything except the barrier itself (which drains the pool before
// swapping the view).
type viewMesh struct{ r *Router }

func (v *viewMesh) Self() int {
	v.r.viewMu.RLock()
	defer v.r.viewMu.RUnlock()
	return v.r.id
}

func (v *viewMesh) N() int {
	v.r.viewMu.RLock()
	defer v.r.viewMu.RUnlock()
	return v.r.n
}

func (v *viewMesh) rankOf(dense int) (int, error) {
	v.r.viewMu.RLock()
	defer v.r.viewMu.RUnlock()
	if dense < 0 || dense >= len(v.r.view.Members) {
		return 0, fmt.Errorf("comm: send to dense id %d outside %v", dense, v.r.view)
	}
	return v.r.view.Members[dense], nil
}

func (v *viewMesh) Send(to int, msg transport.Message) error {
	rank, err := v.rankOf(to)
	if err != nil {
		return err
	}
	return v.r.raw.Send(rank, msg)
}

func (v *viewMesh) SendBatch(to int, msgs []transport.Message) error {
	rank, err := v.rankOf(to)
	if err != nil {
		return err
	}
	return v.r.raw.SendBatch(rank, msgs)
}

func (v *viewMesh) Recv() (transport.Message, error) { return v.r.raw.Recv() }
func (v *viewMesh) Detach(peer int) error            { return v.r.raw.Detach(peer) }
func (v *viewMesh) Close() error                     { return v.r.raw.Close() }

// attachWaiter is the optional transport capability the barrier uses to
// make sure a joiner's link is up before new-epoch traffic targets it.
type attachWaiter interface {
	WaitAttached(rank int, timeout time.Duration) error
}

// View returns the live membership view (a copy).
func (r *Router) View() cluster.View {
	r.viewMu.RLock()
	defer r.viewMu.RUnlock()
	return r.view.Clone()
}

// ViewPending reports whether a membership transition is in progress —
// the compute loop's cue to call AwaitView.
func (r *Router) ViewPending() bool {
	r.routeMu.Lock()
	defer r.routeMu.Unlock()
	return r.pendingV != nil
}

// Leave announces this node's voluntary departure: it opens the
// membership barrier (peers learn of the intent from this node's halt
// broadcast) and interrupts the clock. The caller then runs AwaitView
// like any other member and receives Left=true once the successor view
// excludes it.
func (r *Router) Leave() error {
	if !r.elastic {
		return fmt.Errorf("comm: Leave on a fixed-size router")
	}
	r.routeMu.Lock()
	if !r.ensurePendingLocked() {
		r.routeMu.Unlock()
		return r.Err()
	}
	r.pendingV.leave = true
	r.routeCond.Broadcast()
	r.routeMu.Unlock()
	r.clock.Interrupt()
	return nil
}

// ensurePendingLocked opens the membership barrier if none is open.
// Caller holds routeMu. Returns false when the router cannot accept a
// membership change (a replan barrier is armed — the two barriers do
// not compose; the run fails with a clear error instead of deadlocking
// with frames parked under two different fences).
func (r *Router) ensurePendingLocked() bool {
	if r.pendingV != nil {
		return true
	}
	if r.pending != nil {
		r.failWith(fmt.Errorf("comm: membership change while replan barrier %d is armed — rerouting and membership epochs cannot overlap", r.pending.barrier), true)
		return false
	}
	r.pendingV = &pendingView{
		dead:    make(map[int]bool),
		joined:  make(map[int]bool),
		leavers: make(map[int]bool),
		halts:   make(map[int]int),
	}
	r.armViewTimerLocked(r.pendingV)
	return true
}

func (r *Router) armViewTimerLocked(p *pendingView) {
	if p.timer != nil {
		return
	}
	p.timer = time.AfterFunc(r.viewTimeout, func() {
		r.routeMu.Lock()
		if r.pendingV == p {
			p.expired = true
			r.routeCond.Broadcast()
		}
		r.routeMu.Unlock()
	})
}

// noteLifecycle folds one synthetic transport event into the barrier.
// Runs on the receive goroutine.
func (r *Router) noteLifecycle(msg transport.Message) {
	rank := int(msg.From)
	r.routeMu.Lock()
	defer r.routeMu.Unlock()
	switch msg.Type {
	case transport.MsgPeerGone:
		if !r.view.Contains(rank) {
			return // already excluded (stale event for a removed rank)
		}
		if !r.ensurePendingLocked() {
			return
		}
		r.pendingV.dead[rank] = true
	case transport.MsgPeerUp:
		if r.view.Contains(rank) {
			return // re-attachment of a current member is not a join
		}
		if !r.ensurePendingLocked() {
			return
		}
		r.pendingV.joined[rank] = true
	}
	r.routeCond.Broadcast()
	r.clock.Interrupt()
}

// ---- MsgViewHalt -----------------------------------------------------------

// appendHaltPayload encodes a halt announcement:
// u32 epoch (the epoch being left) | u8 leave | u32 ndead | ranks |
// u32 njoin | ranks.
func appendHaltPayload(buf []byte, epoch int, leave bool, dead, joined []int) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(epoch))
	if leave {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(dead)))
	for _, d := range dead {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(d))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(joined)))
	for _, j := range joined {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(j))
	}
	return buf
}

type haltPayload struct {
	epoch  int
	leave  bool
	dead   []int
	joined []int
}

func decodeHaltPayload(buf []byte) (haltPayload, error) {
	var h haltPayload
	readU32 := func() (int, bool) {
		if len(buf) < 4 {
			return 0, false
		}
		v := int(binary.LittleEndian.Uint32(buf))
		buf = buf[4:]
		return v, true
	}
	epoch, ok := readU32()
	if !ok || len(buf) < 1 {
		return h, fmt.Errorf("comm: short halt payload")
	}
	h.epoch = epoch
	h.leave = buf[0] != 0
	buf = buf[1:]
	for _, dst := range []*[]int{&h.dead, &h.joined} {
		n, ok := readU32()
		if !ok {
			return h, fmt.Errorf("comm: short halt payload")
		}
		for i := 0; i < n; i++ {
			v, ok := readU32()
			if !ok {
				return h, fmt.Errorf("comm: short halt payload")
			}
			*dst = append(*dst, v)
		}
	}
	return h, nil
}

// broadcastHalt announces this node's halt iteration and observations
// to every live member of the old view. Sends go over the raw mesh in
// rank space; elastic transports drop sends to already-dead ranks
// silently, so a racing crash cannot fail the halt.
func (r *Router) broadcastHalt(old cluster.View, nextIter int, leave bool, dead, joined []int) error {
	ref := transport.LeasePayload(13 + 4*(len(dead)+len(joined)))
	ref.SetBytes(appendHaltPayload(ref.Bytes(), old.Epoch, leave, dead, joined))
	msg := transport.Message{
		Type:    transport.MsgViewHalt,
		Layer:   -1,
		Iter:    int32(nextIter),
		Payload: ref.Bytes(),
	}
	msg.AttachLease(ref)
	var firstErr error
	for _, m := range old.Members {
		if m == r.rank || containsRank(dead, m) {
			continue
		}
		ref.Retain()
		cp := msg
		err := r.raw.Send(m, cp)
		cp.ReleasePayload()
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	ref.Release()
	return firstErr
}

func containsRank(ranks []int, r int) bool {
	for _, x := range ranks {
		if x == r {
			return true
		}
	}
	return false
}

// handleViewHalt folds a peer's halt into the barrier. Runs on the
// receive goroutine. Halts for a future epoch (the sender already
// applied a view this node hasn't) are deferred and refolded after the
// local apply, so cascaded failures are not lost.
func (r *Router) handleViewHalt(msg transport.Message) error {
	if !r.elastic {
		msg.ReleasePayload()
		return fmt.Errorf("comm: VIEWHALT from peer %d on a fixed-size router", msg.From)
	}
	h, err := decodeHaltPayload(msg.Payload)
	if err != nil {
		msg.ReleasePayload()
		return err
	}
	r.routeMu.Lock()
	defer r.routeMu.Unlock()
	if h.epoch > r.view.Epoch {
		r.deferred = append(r.deferred, msg) // lease retained until refold
		return nil
	}
	defer msg.ReleasePayload()
	if h.epoch < r.view.Epoch || !r.view.Contains(int(msg.From)) {
		return nil // stale: that transition already committed here
	}
	if !r.ensurePendingLocked() {
		return nil
	}
	p := r.pendingV
	p.halts[int(msg.From)] = int(msg.Iter)
	if h.leave {
		p.leavers[int(msg.From)] = true
	}
	for _, d := range h.dead {
		if r.view.Contains(d) {
			p.dead[d] = true
		}
	}
	for _, j := range h.joined {
		if !r.view.Contains(j) {
			p.joined[j] = true
		}
	}
	r.routeCond.Broadcast()
	r.clock.Interrupt()
	return nil
}

// ---- MsgView ---------------------------------------------------------------

// composeViewLocked builds the successor view and its MsgView payload
// from the collected halts. Caller holds routeMu; the staged replica is
// frozen (receive loop parked, compute loop is here).
func (r *Router) composeViewLocked(p *pendingView) (*viewPayload, []int, error) {
	removed := sortedRanks(p.dead)
	for l := range p.leavers {
		if !containsRank(removed, l) {
			removed = append(removed, l)
		}
	}
	if p.leave && !containsRank(removed, r.rank) {
		removed = append(removed, r.rank)
	}
	sort.Ints(removed)
	next := r.view.Next(removed, sortedRanks(p.joined))
	if next.Size() == 0 {
		return nil, nil, fmt.Errorf("comm: membership change leaves an empty view")
	}
	restart := 0
	for _, h := range p.halts {
		if h > restart {
			restart = h
		}
	}
	routes := make([]byte, len(r.plans))
	for i, plan := range r.plans {
		routes[i] = byte(plan.Route)
	}
	if r.planShape != nil {
		plans, err := r.planShape(next.Size())
		if err != nil {
			return nil, nil, fmt.Errorf("comm: replanning for %v: %w", next, err)
		}
		if plans != nil {
			if len(plans) != len(r.plans) {
				return nil, nil, fmt.Errorf("comm: shape replan produced %d plans for %d params", len(plans), len(r.plans))
			}
			for i, plan := range plans {
				routes[i] = byte(plan.Route)
			}
		}
	}
	pv := &viewPayload{view: next, restart: restart, routes: routes}
	r.stageMu.Lock()
	for _, m := range r.staged {
		vals := make([]float32, len(m.Data))
		copy(vals, m.Data)
		pv.params = append(pv.params, vals)
	}
	r.stageMu.Unlock()

	// Recipients: every live old member (leavers included — MsgView is
	// how they learn they are out) plus every joiner; not self.
	var to []int
	for _, m := range r.view.Members {
		if m != r.rank && !p.dead[m] {
			to = append(to, m)
		}
	}
	for j := range p.joined {
		if !containsRank(to, j) {
			to = append(to, j)
		}
	}
	sort.Ints(to)
	return pv, to, nil
}

// appendViewPayload encodes: view wire (epoch|count|members) |
// u32 restartIter | u32 nroutes | route bytes | u32 nparams |
// per param (index order): u32 nvals | float32 LE values.
func appendViewPayload(buf []byte, pv *viewPayload) []byte {
	buf = pv.view.AppendWire(buf)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(pv.restart))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(pv.routes)))
	buf = append(buf, pv.routes...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(pv.params)))
	for _, vals := range pv.params {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(vals)))
		for _, v := range vals {
			buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(v))
		}
	}
	return buf
}

func decodeViewPayload(buf []byte) (*viewPayload, error) {
	view, rest, err := cluster.DecodeWire(buf)
	if err != nil {
		return nil, err
	}
	buf = rest
	readU32 := func() (int, bool) {
		if len(buf) < 4 {
			return 0, false
		}
		v := int(binary.LittleEndian.Uint32(buf))
		buf = buf[4:]
		return v, true
	}
	pv := &viewPayload{view: view}
	var ok bool
	if pv.restart, ok = readU32(); !ok {
		return nil, fmt.Errorf("comm: short VIEW payload")
	}
	nroutes, ok := readU32()
	if !ok || len(buf) < nroutes {
		return nil, fmt.Errorf("comm: short VIEW payload")
	}
	pv.routes = append([]byte(nil), buf[:nroutes]...)
	buf = buf[nroutes:]
	nparams, ok := readU32()
	if !ok {
		return nil, fmt.Errorf("comm: short VIEW payload")
	}
	for i := 0; i < nparams; i++ {
		nvals, ok := readU32()
		if !ok || len(buf) < 4*nvals {
			return nil, fmt.Errorf("comm: short VIEW payload (param %d)", i)
		}
		vals := make([]float32, nvals)
		for j := range vals {
			vals[j] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*j:]))
		}
		buf = buf[4*nvals:]
		pv.params = append(pv.params, vals)
	}
	return pv, nil
}

// sendView broadcasts the MsgView frame to the given ranks.
func (r *Router) sendView(pv *viewPayload, to []int) error {
	size := 12 + 4*len(pv.view.Members) + 8 + len(pv.routes) + 4
	for _, vals := range pv.params {
		size += 4 + 4*len(vals)
	}
	ref := transport.LeasePayload(size)
	ref.SetBytes(appendViewPayload(ref.Bytes(), pv))
	msg := transport.Message{
		Type:    transport.MsgView,
		Layer:   -1,
		Iter:    int32(pv.restart),
		Payload: ref.Bytes(),
	}
	msg.AttachLease(ref)
	var firstErr error
	for _, rank := range to {
		ref.Retain()
		cp := msg
		err := r.raw.Send(rank, cp)
		cp.ReleasePayload()
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	ref.Release()
	return firstErr
}

// handleViewFrame records the leader's decision. Runs on the receive
// goroutine. Frames for epochs beyond the immediate successor are
// deferred (pipelined transitions from fast peers); duplicates and
// frames for already-committed epochs are dropped.
func (r *Router) handleViewFrame(msg transport.Message) error {
	if !r.elastic {
		msg.ReleasePayload()
		return fmt.Errorf("comm: VIEW frame from peer %d on a fixed-size router", msg.From)
	}
	pv, err := decodeViewPayload(msg.Payload)
	if err != nil {
		msg.ReleasePayload()
		return err
	}
	msg.ReleasePayload()
	r.routeMu.Lock()
	defer r.routeMu.Unlock()
	switch {
	case pv.view.Epoch <= r.view.Epoch:
		return nil // duplicate leader or already committed
	case pv.view.Epoch > r.view.Epoch+1 && !r.joining:
		return fmt.Errorf("comm: VIEW for epoch %d skips epoch %d", pv.view.Epoch, r.view.Epoch+1)
	}
	if !r.ensurePendingLocked() {
		return nil
	}
	if r.pendingV.view == nil {
		// First decision wins; a duplicate from a partitioned co-leader
		// is dropped (split-brain on link-only failures is out of scope).
		r.pendingV.view = pv
	}
	r.routeCond.Broadcast()
	r.clock.Interrupt()
	return nil
}

// ---- The barrier -----------------------------------------------------------

// AwaitView runs the membership barrier from the compute goroutine.
// nextIter is the iteration this node would launch next — its halt
// iteration (every frame it has sent is stamped below it). The call
// broadcasts the halt, waits for the leader's MsgView (composing and
// broadcasting it itself when it is the minimum live rank), applies the
// successor view, and returns it. A joining router passes any value; it
// broadcasts nothing and simply waits to be adopted.
func (r *Router) AwaitView(nextIter int) (ViewChange, error) {
	if !r.elastic {
		return ViewChange{}, fmt.Errorf("comm: AwaitView on a fixed-size router")
	}
	r.routeMu.Lock()
	p := r.pendingV
	if p == nil {
		r.routeMu.Unlock()
		return ViewChange{}, fmt.Errorf("comm: AwaitView with no membership change pending")
	}
	r.armViewTimerLocked(p)
	if !r.joining && !p.haltSent {
		p.haltSent = true
		p.halts[r.rank] = nextIter
		old := r.view.Clone()
		leave := p.leave
		dead := sortedRanks(p.dead)
		joined := sortedRanks(p.joined)
		r.routeMu.Unlock()
		if err := r.broadcastHalt(old, nextIter, leave, dead, joined); err != nil {
			r.fail(err)
			return ViewChange{}, r.Err()
		}
		r.routeMu.Lock()
	}
	for p.view == nil {
		if err := r.Err(); err != nil {
			r.routeMu.Unlock()
			return ViewChange{}, err
		}
		if p.expired {
			r.routeMu.Unlock()
			err := fmt.Errorf("comm: membership barrier timed out after %v (halts from %v, dead %v)",
				r.viewTimeout, sortedRanks(boolKeys(p.halts)), sortedRanks(p.dead))
			r.fail(err)
			return ViewChange{}, err
		}
		if !r.joining && !p.composed && r.leaderLocked(p) && r.haveAllHaltsLocked(p) {
			p.composed = true
			pv, to, err := r.composeViewLocked(p)
			if err != nil {
				r.routeMu.Unlock()
				r.fail(err)
				return ViewChange{}, err
			}
			r.routeMu.Unlock()
			sendErr := r.sendView(pv, to)
			r.routeMu.Lock()
			if sendErr != nil {
				r.routeMu.Unlock()
				r.fail(sendErr)
				return ViewChange{}, sendErr
			}
			p.view = pv
			break
		}
		r.routeCond.Wait()
	}
	vc, err := r.applyViewLocked(p)
	r.routeMu.Unlock()
	if err != nil {
		r.fail(err)
		return ViewChange{}, err
	}
	if r.onView != nil && !vc.Left {
		r.onView(vc.View)
	}
	return vc, nil
}

func boolKeys(m map[int]int) map[int]bool {
	out := make(map[int]bool, len(m))
	for k := range m {
		out[k] = true
	}
	return out
}

// leaderLocked reports whether this node is the barrier leader: the
// minimum old-view rank not observed dead. Halts are broadcast to every
// live member, so leadership fails over with no extra round trips.
func (r *Router) leaderLocked(p *pendingView) bool {
	for _, m := range r.view.Members {
		if !p.dead[m] {
			return m == r.rank
		}
	}
	return false
}

// haveAllHaltsLocked reports whether every live old member has halted.
func (r *Router) haveAllHaltsLocked(p *pendingView) bool {
	for _, m := range r.view.Members {
		if p.dead[m] {
			continue
		}
		if _, ok := p.halts[m]; !ok {
			return false
		}
	}
	return true
}

// applyViewLocked commits the decided view. Caller holds routeMu (so
// the receive loop is excluded and the park set is frozen).
func (r *Router) applyViewLocked(p *pendingView) (ViewChange, error) {
	pv := p.view
	p.timer.Stop()
	if !pv.view.Contains(r.rank) {
		// Excluded: this node asked to leave (or the cluster moved on
		// without it). Nothing to rebuild — release the parked frames
		// and report the departure.
		for _, m := range p.held {
			m.ReleasePayload()
		}
		r.pendingV = nil
		return ViewChange{View: pv.view, RestartIter: pv.restart, Left: true}, nil
	}
	if len(pv.routes) != len(r.plans) {
		return ViewChange{}, fmt.Errorf("comm: VIEW names %d routes, router has %d params", len(pv.routes), len(r.plans))
	}
	if len(pv.params) != len(r.plans) {
		return ViewChange{}, fmt.Errorf("comm: VIEW carries %d params, router has %d", len(pv.params), len(r.plans))
	}
	// Drain the egress backlog before the dense→rank table changes:
	// queued sends must resolve under the epoch that produced them.
	if r.pool != nil {
		r.pool.flush()
	}
	// Adopt the leader's replica. At a crash barrier local folds may
	// have diverged (frames fenced out below arrived on some nodes and
	// not others); adopting one authority keeps replicas byte-identical.
	r.stageMu.Lock()
	for i, vals := range pv.params {
		if len(vals) != len(r.staged[i].Data) {
			r.stageMu.Unlock()
			return ViewChange{}, fmt.Errorf("comm: VIEW param %d has %d values, want %d", i, len(vals), len(r.staged[i].Data))
		}
		copy(r.staged[i].Data, vals)
	}
	r.stageMu.Unlock()

	oldView := r.view
	r.viewMu.Lock()
	r.view = pv.view
	r.id = pv.view.Index(r.rank)
	r.n = pv.view.Size()
	r.viewMu.Unlock()
	if r.scaleFor != nil {
		r.scale = r.scaleFor(r.n)
	} else if oldView.Size() != r.n {
		r.scale = r.scale * float32(oldView.Size()) / float32(r.n)
	}

	// Fresh server-side state for the new size; every syncer is rebuilt
	// (the shard and bank they bind to changed even when the route did
	// not), re-seeding KV pairs from the just-adopted replica so every
	// node's shards agree byte-for-byte.
	r.shard = kvstore.NewShard(r.n)
	if r.metrics != nil {
		r.shard.SetMetrics(r.metrics.KV())
	}
	r.bank = sfb.NewBank()
	r.stageMu.Lock()
	for i := range r.plans {
		plan := r.plans[i]
		if route := Route(pv.routes[i]); route != plan.Route {
			plan.Route = route
			plan.SF = nil
		}
		if plan.Route == RouteSFB && plan.SF == nil {
			if r.sfSource != nil {
				plan.SF = r.sfSource(i)
			}
			if plan.SF == nil {
				r.stageMu.Unlock()
				return ViewChange{}, fmt.Errorf("comm: view moved param %d (%s) to SFB without an SF source", i, plan.Name)
			}
		}
		s, err := r.buildSyncer(plan, r.staged[i])
		if err != nil {
			r.stageMu.Unlock()
			return ViewChange{}, err
		}
		oldRoute := r.plans[i].Route
		r.syncers[i] = s
		r.plans[i] = plan
		r.initRingSlot(i, plan)
		if r.metrics != nil && plan.Route != oldRoute {
			r.pstats[i].SetRoute(plan.Route.String())
		}
	}
	r.stageMu.Unlock()
	r.clock.Reset(pv.restart)
	r.viewFence = pv.restart

	if r.metrics != nil {
		r.metrics.RecordViewChange(metrics.ViewChangeEvent{
			Epoch:       pv.view.Epoch,
			RestartIter: pv.restart,
			Members:     append([]int(nil), pv.view.Members...),
			Dead:        sortedRanks(p.dead),
			Joined:      sortedRanks(p.joined),
			Left:        sortedRanks(p.leavers),
		})
	}
	// Sever links to crashed ranks (idempotent — the transport usually
	// already did) so straggling sends drop silently. Leavers keep their
	// links until they close them; their goodbye detaches silently.
	for d := range p.dead {
		_ = r.raw.Detach(d)
	}
	// A joiner's link must be up before new-epoch traffic targets it; on
	// transports that can say so, wait (bounded by the barrier timeout).
	if aw, ok := r.raw.(attachWaiter); ok {
		for _, m := range pv.view.Members {
			if m != r.rank && !oldView.Contains(m) {
				if err := aw.WaitAttached(m, r.viewTimeout); err != nil {
					return ViewChange{}, fmt.Errorf("comm: joiner %d never attached: %w", m, err)
				}
			}
		}
	}

	// Replay the parked frames through the rebuilt syncers, in arrival
	// order. The iteration fence drops old-epoch traffic (all of it is
	// stamped below the restart iteration — those rounds are recomputed
	// from the adopted replica); frames from outside the view drop too.
	held := p.held
	r.pendingV = nil
	r.joining = false
	var err error
	for _, m := range held {
		if err == nil && int(m.Iter) >= pv.restart {
			if dense := pv.view.Index(int(m.From)); dense >= 0 {
				if idx := int(m.Layer); idx < 0 || idx >= len(r.syncers) {
					err = fmt.Errorf("comm: parked message for unknown param %d", idx)
				} else {
					m.From = int32(dense)
					err = r.syncers[idx].Handle(m)
				}
			}
		}
		m.ReleasePayload()
	}
	if err != nil {
		return ViewChange{}, err
	}
	// Refold control frames that raced ahead of this commit (halts or a
	// VIEW for the epoch we just entered — cascaded transitions).
	deferred := r.deferred
	r.deferred = nil
	for i, m := range deferred {
		switch m.Type {
		case transport.MsgViewHalt:
			// handleViewHalt re-takes routeMu; run the fold inline.
			if err := r.refoldHaltLocked(m); err != nil {
				for _, rest := range deferred[i+1:] {
					rest.ReleasePayload()
				}
				return ViewChange{}, err
			}
		default:
			m.ReleasePayload()
		}
	}
	// Events observed after the leader composed but folded into the old
	// barrier: a member of the committed view that is already dead, or
	// an attached rank the view left out. Re-arm so the next barrier
	// picks them up instead of losing the (once-only) transport event.
	var carry bool
	for d := range p.dead {
		if r.view.Contains(d) {
			if r.ensurePendingLocked() {
				r.pendingV.dead[d] = true
				carry = true
			}
		}
	}
	for j := range p.joined {
		if !r.view.Contains(j) {
			if r.ensurePendingLocked() {
				r.pendingV.joined[j] = true
				carry = true
			}
		}
	}
	if carry {
		r.clock.Interrupt()
	}
	return ViewChange{View: pv.view.Clone(), RestartIter: pv.restart}, nil
}

// refoldHaltLocked folds a deferred halt frame under the (now current)
// epoch it was stamped for. Caller holds routeMu.
func (r *Router) refoldHaltLocked(msg transport.Message) error {
	h, err := decodeHaltPayload(msg.Payload)
	if err != nil {
		msg.ReleasePayload()
		return err
	}
	defer msg.ReleasePayload()
	if h.epoch != r.view.Epoch || !r.view.Contains(int(msg.From)) {
		return nil
	}
	if !r.ensurePendingLocked() {
		return nil
	}
	p := r.pendingV
	p.halts[int(msg.From)] = int(msg.Iter)
	if h.leave {
		p.leavers[int(msg.From)] = true
	}
	for _, d := range h.dead {
		if r.view.Contains(d) {
			p.dead[d] = true
		}
	}
	for _, j := range h.joined {
		if !r.view.Contains(j) {
			p.joined[j] = true
		}
	}
	r.clock.Interrupt()
	return nil
}
