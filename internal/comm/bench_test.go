package comm

import (
	"sync"
	"testing"

	"repro/internal/metrics"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// BenchmarkWirePathAlloc measures the full steady-state wire path of
// one training iteration on a 3-node in-process cluster exercising all
// three routes at once: a chunked PS tensor, an SFB tensor, and a 1-bit
// tensor. One op = one cluster-wide iteration (every node launches,
// every round folds, every replica adopts). allocs/op is the headline
// number: the zero-allocation wire path drives it toward O(1) per
// parameter instead of O(messages).
func BenchmarkWirePathAlloc(b *testing.B) {
	const n = 3
	type dims struct{ rows, cols int }
	shapes := []dims{{64, 64}, {32, 48}, {32, 32}}
	const sfK = 8

	mkParams := func() []*tensor.Matrix {
		var ps []*tensor.Matrix
		for _, s := range shapes {
			ps = append(ps, tensor.NewMatrix(s.rows, s.cols))
		}
		return ps
	}

	meshes := transport.NewChanCluster(n)
	routers := make([]*Router, n)
	factors := make([]*tensor.SufficientFactor, n)
	for node := 0; node < n; node++ {
		sf := &tensor.SufficientFactor{
			U: tensor.NewMatrix(sfK, shapes[1].rows),
			V: tensor.NewMatrix(sfK, shapes[1].cols),
		}
		sf.U.Fill(0.01)
		sf.V.Fill(0.01)
		factors[node] = sf
		node := node
		r, err := NewRouter(Config{
			Mesh: meshes[node],
			Plans: []ParamPlan{
				{Index: 0, Rows: shapes[0].rows, Cols: shapes[0].cols, Route: RoutePS},
				{Index: 1, Rows: shapes[1].rows, Cols: shapes[1].cols, Route: RouteSFB,
					SF: func() *tensor.SufficientFactor { return factors[node] }},
				{Index: 2, Rows: shapes[2].rows, Cols: shapes[2].cols, Route: RouteOneBit},
			},
			Params: mkParams(),
			// Scale 1 keeps the shared benchmark factors fixed under
			// Launch's in-place U scaling.
			Scale:      1,
			Overlap:    true,
			ChunkElems: 1024,
		})
		if err != nil {
			b.Fatal(err)
		}
		routers[node] = r
		r.Start()
	}
	defer func() {
		meshes[0].Close()
		for _, r := range routers {
			r.Stop()
		}
	}()

	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	for node := 0; node < n; node++ {
		r := routers[node]
		wg.Add(1)
		go func() {
			defer wg.Done()
			params := mkParams()
			grads := mkParams()
			for _, g := range grads {
				g.Fill(1e-4)
			}
			for iter := 0; iter < b.N; iter++ {
				r.WaitFor(iter)
				r.Adopt(params)
				if err := r.LaunchAll(iter, grads); err != nil {
					b.Error(err)
					return
				}
			}
			r.WaitFor(b.N)
		}()
	}
	wg.Wait()
	b.StopTimer()
	for _, r := range routers {
		if err := r.Err(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchCollective measures one dense fat-FC tensor (512×256, the shape
// where the e2e suite proves the ring's byte win) synchronized by the
// given route on an 8-node in-process mesh. One op = one cluster-wide
// iteration. Three numbers matter: allocs/op (the collectives recycle
// rounds and lease payloads, so the steady state must stay O(1) like
// the wire path), MB/s (aggregate gradient payload through the
// cluster), and egressB/op (measured cluster egress including frame
// headers — the quantity the bench-trend byte gate compares between
// the ring and PS twins).
func benchCollective(b *testing.B, route Route, chunkElems int) {
	const n = 8
	const rows, cols = 512, 256

	meshes := transport.NewChanCluster(n)
	routers := make([]*Router, n)
	meters := make([]*metrics.Comm, n)
	for node := 0; node < n; node++ {
		meters[node] = metrics.NewComm()
		r, err := NewRouter(Config{
			Mesh: meshes[node],
			Plans: []ParamPlan{
				{Index: 0, Name: "fc.W", Rows: rows, Cols: cols, Route: route},
			},
			Params:     []*tensor.Matrix{tensor.NewMatrix(rows, cols)},
			Scale:      1,
			Overlap:    true,
			ChunkElems: chunkElems,
			Metrics:    meters[node],
		})
		if err != nil {
			b.Fatal(err)
		}
		routers[node] = r
		r.Start()
	}
	defer func() {
		meshes[0].Close()
		for _, r := range routers {
			r.Stop()
		}
	}()

	b.ReportAllocs()
	b.SetBytes(4 * rows * cols * n) // aggregate gradient payload per op
	b.ResetTimer()
	var wg sync.WaitGroup
	for node := 0; node < n; node++ {
		r := routers[node]
		wg.Add(1)
		go func() {
			defer wg.Done()
			params := []*tensor.Matrix{tensor.NewMatrix(rows, cols)}
			grads := []*tensor.Matrix{tensor.NewMatrix(rows, cols)}
			grads[0].Fill(1e-4)
			for iter := 0; iter < b.N; iter++ {
				r.WaitFor(iter)
				r.Adopt(params)
				if err := r.LaunchAll(iter, grads); err != nil {
					b.Error(err)
					return
				}
			}
			r.WaitFor(b.N)
		}()
	}
	wg.Wait()
	b.StopTimer()
	var egress int64
	for _, r := range routers {
		if err := r.Err(); err != nil {
			b.Fatal(err)
		}
		egress += r.EgressBytes()
	}
	b.ReportMetric(float64(egress)/float64(b.N), "egressB/op")
}

// BenchmarkRingAllReduce is the collective the planner auto-selects for
// fat dense tensors on slow links: 2(P−1) hops, (P−1)/P of the tensor
// uploaded per worker.
func BenchmarkRingAllReduce(b *testing.B) { benchCollective(b, RouteRing, 0) }

// BenchmarkTreeRingAllReduce is the hierarchical override topology:
// intra-group rings bridged by a leader chain.
func BenchmarkTreeRingAllReduce(b *testing.B) { benchCollective(b, RouteTreeRing, 0) }

// BenchmarkPSFatFC is the baseline the ring is gated against: the same
// tensor through chunked KV pushes (64 chunks of 2048 values, so the
// shards spread like a real deployment). Data bytes tie with the ring
// by conservation; the ring's measured win is frame-header economy,
// which is exactly what egressB/op captures.
func BenchmarkPSFatFC(b *testing.B) { benchCollective(b, RoutePS, 2048) }
