package comm

import (
	"sync"
	"testing"

	"repro/internal/tensor"
	"repro/internal/transport"
)

// BenchmarkWirePathAlloc measures the full steady-state wire path of
// one training iteration on a 3-node in-process cluster exercising all
// three routes at once: a chunked PS tensor, an SFB tensor, and a 1-bit
// tensor. One op = one cluster-wide iteration (every node launches,
// every round folds, every replica adopts). allocs/op is the headline
// number: the zero-allocation wire path drives it toward O(1) per
// parameter instead of O(messages).
func BenchmarkWirePathAlloc(b *testing.B) {
	const n = 3
	type dims struct{ rows, cols int }
	shapes := []dims{{64, 64}, {32, 48}, {32, 32}}
	const sfK = 8

	mkParams := func() []*tensor.Matrix {
		var ps []*tensor.Matrix
		for _, s := range shapes {
			ps = append(ps, tensor.NewMatrix(s.rows, s.cols))
		}
		return ps
	}

	meshes := transport.NewChanCluster(n)
	routers := make([]*Router, n)
	factors := make([]*tensor.SufficientFactor, n)
	for node := 0; node < n; node++ {
		sf := &tensor.SufficientFactor{
			U: tensor.NewMatrix(sfK, shapes[1].rows),
			V: tensor.NewMatrix(sfK, shapes[1].cols),
		}
		sf.U.Fill(0.01)
		sf.V.Fill(0.01)
		factors[node] = sf
		node := node
		r, err := NewRouter(Config{
			Mesh: meshes[node],
			Plans: []ParamPlan{
				{Index: 0, Rows: shapes[0].rows, Cols: shapes[0].cols, Route: RoutePS},
				{Index: 1, Rows: shapes[1].rows, Cols: shapes[1].cols, Route: RouteSFB,
					SF: func() *tensor.SufficientFactor { return factors[node] }},
				{Index: 2, Rows: shapes[2].rows, Cols: shapes[2].cols, Route: RouteOneBit},
			},
			Params: mkParams(),
			// Scale 1 keeps the shared benchmark factors fixed under
			// Launch's in-place U scaling.
			Scale:      1,
			Overlap:    true,
			ChunkElems: 1024,
		})
		if err != nil {
			b.Fatal(err)
		}
		routers[node] = r
		r.Start()
	}
	defer func() {
		meshes[0].Close()
		for _, r := range routers {
			r.Stop()
		}
	}()

	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	for node := 0; node < n; node++ {
		r := routers[node]
		wg.Add(1)
		go func() {
			defer wg.Done()
			params := mkParams()
			grads := mkParams()
			for _, g := range grads {
				g.Fill(1e-4)
			}
			for iter := 0; iter < b.N; iter++ {
				r.WaitFor(iter)
				r.Adopt(params)
				if err := r.LaunchAll(iter, grads); err != nil {
					b.Error(err)
					return
				}
			}
			r.WaitFor(b.N)
		}()
	}
	wg.Wait()
	b.StopTimer()
	for _, r := range routers {
		if err := r.Err(); err != nil {
			b.Fatal(err)
		}
	}
}
