package comm

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/consistency"
	"repro/internal/kvstore"
	"repro/internal/metrics"
	"repro/internal/sfb"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// Config parameterizes a Router.
type Config struct {
	Mesh transport.Mesh
	// Plans describes every synchronized parameter, in index order.
	Plans []ParamPlan
	// Params are the initial parameter values (identical on every
	// node); the router clones them into its staged replica and seeds
	// the KV shards it owns.
	Params []*tensor.Matrix
	// Scale is folded into every update before it hits the wire
	// (typically −LR/P, making reconstructions additive).
	Scale float32
	// Staleness bounds how far the compute loop may run ahead of
	// synchronization (0 = BSP).
	Staleness int

	// Overlap dispatches sends through the send pool so pushes for
	// later parameters (and later chunks) stream while earlier ones are
	// still in flight. Off, every send completes before Launch returns —
	// the serialized baseline.
	Overlap bool
	// PoolWorkers fixes the send pool's worker count (default 8).
	PoolWorkers int
	// ChunkElems caps the number of float32 values per KV chunk on the
	// PS route; 0 keeps each tensor whole.
	ChunkElems int

	// Metrics, when set, receives live communication counters: wire
	// traffic attributed per parameter and route (loopback excluded),
	// KV-round accounting, and the compute loop's per-iteration
	// sync-stall time.
	Metrics *metrics.Comm
}

// Router multiplexes the mesh between per-parameter syncers: outbound,
// it fans each iteration's gradients out to the planned strategies;
// inbound, it drives every syncer's protocol from a single receive
// loop. It owns the staged replica (the authoritative synchronized
// state) and the consistency clock that gates the compute loop.
type Router struct {
	mesh  transport.Mesh
	id, n int
	scale float32

	plans      []ParamPlan
	syncers    []Syncer
	shard      *kvstore.Shard
	clock      *consistency.StalenessClock
	pool       *sendPool
	chunkElems int

	// metrics and the per-parameter counter blocks are nil unless the
	// owner asked for live accounting (Config.Metrics).
	metrics *metrics.Comm
	pstats  []*metrics.ParamStats

	// staged is the replica the receive goroutine synchronizes into;
	// the compute loop copies it out at iteration boundaries via Adopt,
	// so inbound traffic never races a forward/backward pass.
	staged  []*tensor.Matrix
	stageMu sync.Mutex

	// updRing holds the scaled-update scratch for dense routes, one
	// slot per admissible in-flight iteration (staleness+1): slot
	// iter%depth is reused only once the launch that last used it has
	// fully synchronized, so dispatched encode tasks never read a
	// buffer the compute loop is refilling. SFB entries are nil (that
	// route derives its own payload).
	updRing [][]*tensor.Matrix

	errMu     sync.Mutex
	asyncEr   error
	abortSent atomic.Bool
	started   atomic.Bool
}

// fail records the first asynchronous error, poisons the clock so
// compute loops blocked in WaitFor wake up and observe it instead of
// hanging on synchronization that will never complete, and tells every
// peer to do the same — a failed worker stops pushing, so without the
// abort broadcast the healthy peers would deadlock waiting for rounds
// that can never complete.
func (r *Router) fail(err error) { r.failWith(err, true) }

func (r *Router) failWith(err error, broadcast bool) {
	r.errMu.Lock()
	if r.asyncEr == nil {
		r.asyncEr = err
	}
	r.errMu.Unlock()
	r.clock.Abort()
	if broadcast && !r.abortSent.Swap(true) {
		// Best-effort, off the failing goroutine: peers' receive loops
		// are still draining, but a dead peer must not block the rest.
		go func() {
			for p := 0; p < r.n; p++ {
				if p == r.id {
					continue
				}
				_ = r.mesh.Send(p, transport.Message{Type: transport.MsgControl, Layer: -1})
			}
		}()
	}
}

// NewRouter validates the plan set, builds one syncer per parameter,
// seeds the local KV shard, and clones the staged replica.
func NewRouter(cfg Config) (*Router, error) {
	if cfg.Mesh == nil {
		return nil, fmt.Errorf("comm: nil mesh")
	}
	if len(cfg.Plans) != len(cfg.Params) {
		return nil, fmt.Errorf("comm: %d plans for %d params", len(cfg.Plans), len(cfg.Params))
	}
	r := &Router{
		mesh:       cfg.Mesh,
		id:         cfg.Mesh.Self(),
		n:          cfg.Mesh.N(),
		scale:      cfg.Scale,
		plans:      cfg.Plans,
		shard:      kvstore.NewShard(cfg.Mesh.N()),
		clock:      consistency.NewStalenessClock(len(cfg.Plans), cfg.Staleness),
		chunkElems: cfg.ChunkElems,
		metrics:    cfg.Metrics,
	}
	if r.metrics != nil {
		r.shard.SetMetrics(r.metrics.KV())
	}
	depth := cfg.Staleness + 1
	if depth < 1 {
		depth = 1
	}
	r.updRing = make([][]*tensor.Matrix, depth)
	for d := range r.updRing {
		r.updRing[d] = make([]*tensor.Matrix, len(cfg.Plans))
	}
	bank := sfb.NewBank()
	for i, plan := range cfg.Plans {
		if plan.Index != i {
			return nil, fmt.Errorf("comm: plan %d has index %d", i, plan.Index)
		}
		if got, want := len(cfg.Params[i].Data), plan.Rows*plan.Cols; got != want {
			return nil, fmt.Errorf("comm: param %d has %d values, plan says %d", i, got, want)
		}
		switch plan.Route {
		case RoutePS:
			s := newPSSyncer(r, plan)
			s.initShard(cfg.Params[i])
			r.syncers = append(r.syncers, s)
		case RouteSFB:
			s, err := newSFBSyncer(r, plan, bank)
			if err != nil {
				return nil, err
			}
			r.syncers = append(r.syncers, s)
		case RouteOneBit:
			r.syncers = append(r.syncers, newOneBitSyncer(r, plan, cfg.Params[i]))
		default:
			return nil, fmt.Errorf("comm: param %d: unknown route %v", i, plan.Route)
		}
		r.staged = append(r.staged, cfg.Params[i].Clone())
		switch plan.Route {
		case RoutePS:
			// PS encode tasks read the slot asynchronously, so every
			// in-flight iteration needs its own buffer.
			for d := range r.updRing {
				r.updRing[d][i] = tensor.NewMatrix(plan.Rows, plan.Cols)
			}
		case RouteOneBit:
			// The 1-bit quantizer consumes its update synchronously
			// inside Launch, so one shared buffer serves every slot.
			m := tensor.NewMatrix(plan.Rows, plan.Cols)
			for d := range r.updRing {
				r.updRing[d][i] = m
			}
		}
		if r.metrics != nil {
			r.pstats = append(r.pstats,
				r.metrics.RegisterParam(i, plan.Name, plan.Route.String(), plan.Rows*plan.Cols, plan.PSEquivBytes))
		}
	}
	if r.metrics != nil {
		// Every syncer send and the receive loop go through r.mesh, so
		// one observing wrapper (transport's, which owns the loopback
		// exclusion) attributes all wire traffic to the parameter named
		// by each frame's Layer field; control frames (Layer −1) carry
		// no parameter and are skipped.
		r.mesh = transport.NewObservedMesh(r.mesh,
			func(msg transport.Message, wireBytes int) {
				if i := int(msg.Layer); i >= 0 && i < len(r.pstats) {
					r.pstats[i].CountSent(wireBytes)
				}
			},
			func(msg transport.Message, wireBytes int) {
				if i := int(msg.Layer); i >= 0 && i < len(r.pstats) {
					r.pstats[i].CountRecv(wireBytes)
				}
			})
	}
	if cfg.Overlap {
		// Created last, after every validation error return, so a
		// rejected config never leaks the pool's worker goroutines. It
		// sends through whatever mesh the router settled on (metrics
		// may have wrapped it above).
		workers := cfg.PoolWorkers
		if workers <= 0 {
			workers = 8
		}
		r.pool = newSendPool(workers, r.fail)
		r.pool.send = r.mesh.Send
	}
	return r, nil
}

// dispatch runs fn through the send pool when overlap is on, inline
// otherwise. Inline errors surface like pool errors, through Err.
func (r *Router) dispatch(stripe uint32, fn func() error) {
	if r.pool == nil {
		if err := fn(); err != nil {
			r.fail(err)
		}
		return
	}
	r.pool.submit(stripe, fn)
}

// dispatchSend ships a prepared message through the pool (or inline),
// consuming one reference on its payload lease after the write — the
// allocation-free form of dispatch for sends whose payload is already
// encoded. Callers fanning one message out to several destinations
// retain once per dispatchSend.
func (r *Router) dispatchSend(stripe uint32, to int, msg transport.Message) {
	if r.pool == nil {
		err := r.mesh.Send(to, msg)
		msg.ReleasePayload()
		if err != nil {
			r.fail(err)
		}
		return
	}
	r.pool.submitSend(stripe, to, msg)
}

// Start spawns the receive loop. Call exactly once, before the first
// Launch.
func (r *Router) Start() {
	if r.started.Swap(true) {
		panic("comm: Router started twice")
	}
	go r.receiveLoop()
}

func (r *Router) receiveLoop() {
	for {
		msg, err := r.mesh.Recv()
		if err != nil {
			if !errors.Is(err, transport.ErrClosed) {
				// A transport-level failure (dead peer, corrupt frame
				// stream): abort the clock so compute loops blocked in
				// WaitFor observe the error promptly. Every healthy
				// node holds its own link to the dead peer and detects
				// this independently — no broadcast needed, and none
				// would reach a crashed peer anyway.
				r.failWith(err, false)
			}
			return
		}
		if msg.Type == transport.MsgControl {
			// A peer aborted; don't re-broadcast (the originator already
			// told everyone), just wake our own waiters.
			msg.ReleasePayload()
			r.failWith(fmt.Errorf("comm: peer %d aborted", msg.From), false)
			return
		}
		index := int(msg.Layer)
		if index < 0 || index >= len(r.syncers) {
			msg.ReleasePayload()
			r.fail(fmt.Errorf("comm: message for unknown param %d", index))
			return
		}
		err = r.syncers[index].Handle(msg)
		// Syncers decode into their own scratch and never retain the
		// frame, so its pooled lease (if any) goes back now.
		msg.ReleasePayload()
		if err != nil {
			r.fail(err)
			return
		}
	}
}

// LaunchAll starts synchronization of every parameter for this
// iteration — the per-layer sync() calls of the paper's Algorithm 2.
// Dense routes receive their gradient scaled into the update ring's
// slot for this iteration (no per-iteration allocation), so the
// caller's grad buffers are free for the next backward pass immediately.
//
// Precondition: the caller must have returned from WaitFor(iter) before
// LaunchAll(iter) — the training loop's natural gate. That is what lets
// slot iter%(staleness+1) be reused: the launch that last wrote it
// (iteration iter−staleness−1) has fully synchronized, so no dispatched
// encode task can still be reading the buffer being refilled.
func (r *Router) LaunchAll(iter int, grads []*tensor.Matrix) error {
	if len(grads) != len(r.syncers) {
		return fmt.Errorf("comm: %d grads for %d syncers", len(grads), len(r.syncers))
	}
	slot := r.updRing[iter%len(r.updRing)]
	for i, s := range r.syncers {
		var update *tensor.Matrix
		if r.plans[i].Route != RouteSFB {
			update = slot[i]
			update.CopyFrom(grads[i])
			update.Scale(r.scale)
		}
		if err := s.Launch(iter, update); err != nil {
			return err
		}
		if r.pstats != nil {
			r.pstats[i].CountRound()
		}
	}
	return r.Err()
}

// WaitFor blocks until iteration iter may begin under the staleness
// bound (every parameter synchronized through iter−1−staleness). With
// metrics attached, the blocked time is recorded as sync stall.
func (r *Router) WaitFor(iter int) {
	if r.metrics == nil {
		r.clock.WaitFor(iter)
		return
	}
	start := time.Now()
	r.clock.WaitFor(iter)
	r.metrics.RecordStall(time.Since(start))
}

// Adopt copies the staged replica into the live parameters.
func (r *Router) Adopt(params []*tensor.Matrix) {
	r.stageMu.Lock()
	defer r.stageMu.Unlock()
	for i, p := range params {
		p.CopyFrom(r.staged[i])
	}
}

// Err reports the first asynchronous failure (receive loop or pooled
// send), if any.
func (r *Router) Err() error {
	r.errMu.Lock()
	err := r.asyncEr
	r.errMu.Unlock()
	if err != nil {
		return err
	}
	if r.pool != nil {
		return r.pool.firstErr()
	}
	return nil
}

// Stop drains the send pool. Call after the final WaitFor, when the
// protocol has quiesced; the receive loop exits when the mesh closes.
func (r *Router) Stop() {
	if r.pool != nil {
		r.pool.close()
	}
}

// Routes summarizes the planned route of every parameter (for logging
// and tests).
func (r *Router) Routes() []Route {
	routes := make([]Route, len(r.plans))
	for i, p := range r.plans {
		routes[i] = p.Route
	}
	return routes
}
