package comm

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/consistency"
	"repro/internal/kvstore"
	"repro/internal/metrics"
	"repro/internal/sfb"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// Config parameterizes a Router.
type Config struct {
	Mesh transport.Mesh
	// Plans describes every synchronized parameter, in index order.
	Plans []ParamPlan
	// Params are the initial parameter values (identical on every
	// node); the router clones them into its staged replica and seeds
	// the KV shards it owns.
	Params []*tensor.Matrix
	// Scale is folded into every update before it hits the wire
	// (typically −LR/P, making reconstructions additive).
	Scale float32
	// Staleness bounds how far the compute loop may run ahead of
	// synchronization (0 = BSP).
	Staleness int
	// StartIter, when > 0, starts the consistency clock at that
	// iteration instead of 0 — the continuation point of a run resuming
	// from a snapshot (Params then carry the snapshot replica). Rounds
	// below it never existed, so WaitFor(StartIter) passes immediately.
	StartIter int

	// Overlap dispatches sends through the send pool so pushes for
	// later parameters (and later chunks) stream while earlier ones are
	// still in flight. Off, every send completes before Launch returns —
	// the serialized baseline.
	Overlap bool
	// PoolWorkers fixes the send pool's worker count (default 8).
	PoolWorkers int
	// ChunkElems caps the number of float32 values per KV chunk on the
	// PS route; 0 keeps each tensor whole.
	ChunkElems int

	// Metrics, when set, receives live communication counters: wire
	// traffic attributed per parameter and route (loopback excluded),
	// KV-round accounting, and the compute loop's per-iteration
	// sync-stall time.
	Metrics *metrics.Comm

	// SFSource returns the sufficient-factor extractor for a parameter
	// index (nil if the parameter has none) — consulted when a reroute
	// moves a parameter onto RouteSFB after construction, where the
	// initial plan carried no extractor for it. Optional; without it a
	// reroute onto SFB fails.
	SFSource func(index int) func() *tensor.SufficientFactor

	// Elastic enables membership epochs: the mesh's synthetic lifecycle
	// events (MsgPeerGone/MsgPeerUp) open a membership barrier instead
	// of failing the run, syncers address peers through a dense view of
	// the live members, and AwaitView commits view transitions. Requires
	// a transport running in its own elastic mode.
	Elastic bool
	// View is the initial membership (must contain Mesh.Self()); the
	// zero value means cluster.Initial(Mesh.N()). Ranks are transport
	// ids; the router maps them to dense 0..P−1 worker ids internally.
	View cluster.View
	// Joining marks this router as a late joiner: it is not a member of
	// View yet, sends no halt, and waits in AwaitView to be adopted by
	// the leader's MsgView (which overwrites its parameters wholesale).
	Joining bool
	// PlanShape, when set, is consulted by the barrier leader to re-run
	// the route planner for the successor member count; returning nil
	// plans keeps the current routes. It must be deterministic — every
	// node applies the leader's decision byte-for-byte.
	PlanShape func(workers int) ([]ParamPlan, error)
	// ScaleFor recomputes the update scale for a new member count
	// (typically −LR/P). It must be identical on every node; without it
	// the router rescales the configured Scale by oldP/newP.
	ScaleFor func(workers int) float32
	// OnViewChange, when set, runs on the compute goroutine after every
	// committed view transition this node is part of.
	OnViewChange func(cluster.View)
	// ViewTimeout bounds a membership barrier (default 30s): if the
	// halts or the leader's MsgView do not arrive in time, the run fails
	// rather than hanging on a peer that will never answer.
	ViewTimeout time.Duration
}

// Router multiplexes the mesh between per-parameter syncers: outbound,
// it fans each iteration's gradients out to the planned strategies;
// inbound, it drives every syncer's protocol from a single receive
// loop. It owns the staged replica (the authoritative synchronized
// state) and the consistency clock that gates the compute loop.
type Router struct {
	mesh      transport.Mesh
	id, n     int
	scale     float32
	staleness int

	// Elastic membership state. raw is the real mesh in transport-rank
	// space (mesh wraps it in a dense view when elastic); rank is this
	// node's immutable transport rank. view, id, and n are guarded by
	// viewMu for readers outside the compute/receive pair (pool workers
	// resolving queued sends); the barrier holds routeMu while writing,
	// which orders the compute and receive goroutines by itself.
	raw      transport.Mesh
	rank     int
	elastic  bool
	joining  bool
	viewMu   sync.RWMutex
	view     cluster.View
	pendingV *pendingView
	deferred []transport.Message
	// viewFence is the restart iteration of the last committed view;
	// data frames stamped below it are dead old-epoch traffic (their
	// rounds were recomputed from the adopted replica) and are dropped
	// on receive. Guarded by routeMu. Monotonic: each barrier's restart
	// is at least the previous one, since members resume there.
	viewFence   int
	planShape   func(workers int) ([]ParamPlan, error)
	scaleFor    func(workers int) float32
	onView      func(cluster.View)
	viewTimeout time.Duration

	plans      []ParamPlan
	syncers    []Syncer
	shard      *kvstore.Shard
	clock      *consistency.StalenessClock
	pool       *sendPool
	chunkElems int
	bank       *sfb.Bank
	sfSource   func(index int) func() *tensor.SufficientFactor

	// Reroute state. routeMu serializes the receive loop's
	// syncer-dispatch against the compute goroutine's barrier swap:
	// while a barrier is armed, inbound data frames stamped with
	// iterations at or past it are parked on pending.held (leases
	// retained) and replayed — in arrival order — through the swapped
	// syncers once the REPLAN decision is applied. routeCond wakes the
	// barrier waiter when the decision frame arrives or the router
	// fails.
	routeMu   sync.Mutex
	routeCond *sync.Cond
	pending   *pendingReroute

	// metrics and the per-parameter counter blocks are nil unless the
	// owner asked for live accounting (Config.Metrics).
	metrics *metrics.Comm
	pstats  []*metrics.ParamStats

	// staged is the replica the receive goroutine synchronizes into;
	// the compute loop copies it out at iteration boundaries via Adopt,
	// so inbound traffic never races a forward/backward pass.
	staged  []*tensor.Matrix
	stageMu sync.Mutex

	// updRing holds the scaled-update scratch for dense routes, one
	// slot per admissible in-flight iteration (staleness+1): slot
	// iter%depth is reused only once the launch that last used it has
	// fully synchronized, so dispatched encode tasks never read a
	// buffer the compute loop is refilling. SFB entries are nil (that
	// route derives its own payload).
	updRing [][]*tensor.Matrix

	errMu     sync.Mutex
	asyncEr   error
	abortSent atomic.Bool
	started   atomic.Bool
}

// pendingReroute is one armed replan barrier: data frames for
// iterations >= barrier wait on held until the clock-stamped REPLAN
// frame delivers the route decision and the barrier waiter applies it.
type pendingReroute struct {
	barrier int
	held    []transport.Message
	decided bool
	routes  []Route
}

// fail records the first asynchronous error, poisons the clock so
// compute loops blocked in WaitFor wake up and observe it instead of
// hanging on synchronization that will never complete, and tells every
// peer to do the same — a failed worker stops pushing, so without the
// abort broadcast the healthy peers would deadlock waiting for rounds
// that can never complete.
func (r *Router) fail(err error) { r.failWith(err, true) }

// Abort poisons the router with err from outside the synchronization
// machinery: compute loops blocked in WaitFor wake and observe it, and
// peers receive the abort broadcast so the cluster stops together. It
// is the cancellation entry point (Config.Stop / Session.RunContext);
// the first error wins, so aborting an already-failed router is a
// no-op.
func (r *Router) Abort(err error) { r.fail(err) }

func (r *Router) failWith(err error, broadcast bool) {
	r.errMu.Lock()
	if r.asyncEr == nil {
		r.asyncEr = err
	}
	r.errMu.Unlock()
	r.clock.Abort()
	// A compute loop parked at a reroute or membership barrier must
	// observe the failure instead of waiting for a frame that will never
	// arrive. The wakeup takes routeMu so it cannot slip into the
	// window between a waiter's condition check and its Wait (the error
	// above is visible before the lock is granted); it runs on its own
	// goroutine because failWith is reachable from paths that already
	// hold routeMu — an inline send failing during parked-frame replay.
	// The abort broadcast rides the same goroutine, snapshotting the
	// dense size under routeMu so it never races a view swap.
	doBroadcast := broadcast && !r.abortSent.Swap(true)
	go func() {
		r.routeMu.Lock()
		r.routeCond.Broadcast()
		n, id := r.n, r.id
		r.routeMu.Unlock()
		if !doBroadcast {
			return
		}
		// Best-effort: peers' receive loops are still draining, but a
		// dead peer must not block the rest.
		for p := 0; p < n; p++ {
			if p == id {
				continue
			}
			_ = r.mesh.Send(p, transport.Message{Type: transport.MsgControl, Layer: -1})
		}
	}()
}

// NewRouter validates the plan set, builds one syncer per parameter,
// seeds the local KV shard, and clones the staged replica.
func NewRouter(cfg Config) (*Router, error) {
	if cfg.Mesh == nil {
		return nil, fmt.Errorf("comm: nil mesh")
	}
	if len(cfg.Plans) != len(cfg.Params) {
		return nil, fmt.Errorf("comm: %d plans for %d params", len(cfg.Plans), len(cfg.Params))
	}
	if cfg.Joining && !cfg.Elastic {
		return nil, fmt.Errorf("comm: Joining requires Elastic")
	}
	view := cfg.View
	if view.Size() == 0 {
		view = cluster.Initial(cfg.Mesh.N())
	}
	rank := cfg.Mesh.Self()
	if !view.Contains(rank) && !cfg.Joining {
		return nil, fmt.Errorf("comm: self rank %d not in %v", rank, view)
	}
	timeout := cfg.ViewTimeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	r := &Router{
		mesh:        cfg.Mesh,
		id:          view.Index(rank),
		n:           view.Size(),
		rank:        rank,
		view:        view,
		elastic:     cfg.Elastic,
		joining:     cfg.Joining,
		planShape:   cfg.PlanShape,
		scaleFor:    cfg.ScaleFor,
		onView:      cfg.OnViewChange,
		viewTimeout: timeout,
		scale:       cfg.Scale,
		staleness:   cfg.Staleness,
		plans:       cfg.Plans,
		shard:       kvstore.NewShard(view.Size()),
		clock:       consistency.NewStalenessClock(len(cfg.Plans), cfg.Staleness),
		chunkElems:  cfg.ChunkElems,
		bank:        sfb.NewBank(),
		sfSource:    cfg.SFSource,
		metrics:     cfg.Metrics,
	}
	if r.joining {
		// A joiner parks every data frame from the moment the receive
		// loop starts; the barrier resolves when the leader's MsgView
		// adopts it (applyViewLocked rebuilds everything below anyway).
		r.pendingV = &pendingView{
			dead:    make(map[int]bool),
			joined:  make(map[int]bool),
			leavers: make(map[int]bool),
			halts:   make(map[int]int),
		}
	}
	r.routeCond = sync.NewCond(&r.routeMu)
	if cfg.StartIter < 0 {
		return nil, fmt.Errorf("comm: negative start iteration %d", cfg.StartIter)
	}
	if cfg.StartIter > 0 {
		r.clock.Reset(cfg.StartIter)
		r.viewFence = cfg.StartIter
	}
	if r.metrics != nil {
		r.shard.SetMetrics(r.metrics.KV())
	}
	depth := cfg.Staleness + 1
	if depth < 1 {
		depth = 1
	}
	r.updRing = make([][]*tensor.Matrix, depth)
	for d := range r.updRing {
		r.updRing[d] = make([]*tensor.Matrix, len(cfg.Plans))
	}
	for i, plan := range cfg.Plans {
		if plan.Index != i {
			return nil, fmt.Errorf("comm: plan %d has index %d", i, plan.Index)
		}
		if got, want := len(cfg.Params[i].Data), plan.Rows*plan.Cols; got != want {
			return nil, fmt.Errorf("comm: param %d has %d values, plan says %d", i, got, want)
		}
		s, err := r.buildSyncer(plan, cfg.Params[i])
		if err != nil {
			return nil, err
		}
		r.syncers = append(r.syncers, s)
		r.staged = append(r.staged, cfg.Params[i].Clone())
		r.initRingSlot(i, plan)
		if r.metrics != nil {
			r.pstats = append(r.pstats,
				r.metrics.RegisterParam(i, plan.Name, plan.Route.String(), plan.Rows*plan.Cols, plan.PSEquivBytes))
		}
	}
	if r.metrics != nil {
		// Every syncer send and the receive loop go through r.mesh, so
		// one observing wrapper (transport's, which owns the loopback
		// exclusion) attributes all wire traffic to the parameter named
		// by each frame's Layer field; control frames (Layer −1) carry
		// no parameter and are skipped.
		r.mesh = transport.NewObservedMesh(r.mesh,
			func(msg transport.Message, wireBytes int) {
				if i := int(msg.Layer); i >= 0 && i < len(r.pstats) {
					r.pstats[i].CountSent(wireBytes)
				}
			},
			func(msg transport.Message, wireBytes int) {
				if i := int(msg.Layer); i >= 0 && i < len(r.pstats) {
					r.pstats[i].CountRecv(wireBytes)
				}
			})
	}
	// The raw mesh speaks transport ranks; in elastic mode the syncers
	// instead address the dense 0..P−1 ids of the live view through a
	// translating wrapper, so a shrunken or grown membership never
	// changes syncer logic — only the table underneath it.
	r.raw = r.mesh
	if r.elastic {
		r.mesh = &viewMesh{r: r}
	}
	if cfg.Overlap {
		// Created last, after every validation error return, so a
		// rejected config never leaks the pool's worker goroutines. It
		// sends through whatever mesh the router settled on (metrics
		// may have wrapped it above).
		workers := cfg.PoolWorkers
		if workers <= 0 {
			workers = 8
		}
		r.pool = newSendPool(workers, r.fail)
		r.pool.send = r.mesh.Send
	}
	return r, nil
}

// buildSyncer constructs the syncer executing plan, seeding any
// server-side state from initial — the construction path shared by
// NewRouter (initial parameters) and reroute barriers (the staged
// replica, which at a drained barrier is the authoritative synchronized
// value on every node).
func (r *Router) buildSyncer(plan ParamPlan, initial *tensor.Matrix) (Syncer, error) {
	switch plan.Route {
	case RoutePS:
		s := newPSSyncer(r, plan)
		s.initShard(initial)
		return s, nil
	case RouteSFB:
		return newSFBSyncer(r, plan, r.bank)
	case RouteOneBit:
		return newOneBitSyncer(r, plan, initial), nil
	case RouteRing:
		// No server-side state to seed: the collective reduces into the
		// staged replica directly, which already holds initial.
		return newRingSyncer(r, plan), nil
	case RouteTreeRing:
		return newTreeRingSyncer(r, plan), nil
	default:
		return nil, fmt.Errorf("comm: param %d: unknown route %v", plan.Index, plan.Route)
	}
}

// initRingSlot (re)provisions the update ring's scratch for parameter i
// according to its route: dense PS updates need one buffer per
// admissible in-flight iteration (encode tasks read them
// asynchronously), the ring collectives fold chain hops against the
// update for the whole round (so they too need one buffer per in-flight
// iteration), the 1-bit quantizer consumes its update synchronously
// inside Launch so one shared buffer serves every slot, and SFB derives
// its own payload (no buffer).
func (r *Router) initRingSlot(i int, plan ParamPlan) {
	switch plan.Route {
	case RoutePS, RouteRing, RouteTreeRing:
		for d := range r.updRing {
			r.updRing[d][i] = tensor.NewMatrix(plan.Rows, plan.Cols)
		}
	case RouteOneBit:
		m := tensor.NewMatrix(plan.Rows, plan.Cols)
		for d := range r.updRing {
			r.updRing[d][i] = m
		}
	default:
		for d := range r.updRing {
			r.updRing[d][i] = nil
		}
	}
}

// dispatch runs fn through the send pool when overlap is on, inline
// otherwise. Inline errors surface like pool errors, through Err.
func (r *Router) dispatch(stripe uint32, fn func() error) {
	if r.pool == nil {
		if err := fn(); err != nil {
			r.fail(err)
		}
		return
	}
	r.pool.submit(stripe, fn)
}

// dispatchSend ships a prepared message through the pool (or inline),
// consuming one reference on its payload lease after the write — the
// allocation-free form of dispatch for sends whose payload is already
// encoded. Callers fanning one message out to several destinations
// retain once per dispatchSend.
func (r *Router) dispatchSend(stripe uint32, to int, msg transport.Message) {
	if r.pool == nil {
		err := r.mesh.Send(to, msg)
		msg.ReleasePayload()
		if err != nil {
			r.fail(err)
		}
		return
	}
	r.pool.submitSend(stripe, to, msg)
}

// Start spawns the receive loop. Call exactly once, before the first
// Launch.
func (r *Router) Start() {
	if r.started.Swap(true) {
		panic("comm: Router started twice")
	}
	go r.receiveLoop()
}

func (r *Router) receiveLoop() {
	for {
		msg, err := r.mesh.Recv()
		if err != nil {
			if !errors.Is(err, transport.ErrClosed) {
				// A transport-level failure (dead peer, corrupt frame
				// stream): abort the clock so compute loops blocked in
				// WaitFor observe the error promptly. Every healthy
				// node holds its own link to the dead peer and detects
				// this independently — no broadcast needed, and none
				// would reach a crashed peer anyway.
				r.failWith(err, false)
			}
			return
		}
		if msg.Type == transport.MsgControl {
			// A peer aborted; don't re-broadcast (the originator already
			// told everyone), just wake our own waiters.
			msg.ReleasePayload()
			r.failWith(fmt.Errorf("comm: peer %d aborted", msg.From), false)
			return
		}
		if msg.Type == transport.MsgPeerGone || msg.Type == transport.MsgPeerUp {
			msg.ReleasePayload()
			if !r.elastic {
				r.failWith(fmt.Errorf("comm: lifecycle event %#x for peer %d on a fixed-size router", byte(msg.Type), msg.From), false)
				return
			}
			r.noteLifecycle(msg)
			continue
		}
		if msg.Type == transport.MsgViewHalt {
			if err := r.handleViewHalt(msg); err != nil {
				r.fail(err)
				return
			}
			continue
		}
		if msg.Type == transport.MsgView {
			if err := r.handleViewFrame(msg); err != nil {
				r.fail(err)
				return
			}
			continue
		}
		if msg.Type == transport.MsgReplan {
			if err := r.handleReplanFrame(msg); err != nil {
				r.fail(err)
				return
			}
			continue
		}
		index := int(msg.Layer)
		if index < 0 || index >= len(r.syncers) {
			msg.ReleasePayload()
			r.fail(fmt.Errorf("comm: message for unknown param %d", index))
			return
		}
		r.routeMu.Lock()
		if r.elastic && int(msg.Iter) < r.viewFence {
			// Stale traffic from an epoch this node already left: a
			// peer's pooled data sends can trail its halt and the
			// leader's MsgView (control frames bypass the send pool), so
			// a frame below the committed restart iteration may arrive
			// after the barrier resolved. Its round was fenced out and
			// recomputed from the adopted replica — drop it.
			r.routeMu.Unlock()
			msg.ReleasePayload()
			continue
		}
		if r.elastic && r.pendingV != nil {
			// A membership barrier is open: hold every data frame (lease
			// retained, transport rank preserved) until the successor
			// view decides which survive the fence and under which
			// dense ids they replay.
			r.pendingV.held = append(r.pendingV.held, msg)
			r.routeMu.Unlock()
			continue
		}
		if p := r.pending; p != nil && int(msg.Iter) >= p.barrier {
			// The sender already crossed an armed replan barrier this
			// node has not applied yet: park the frame (lease retained)
			// until the swap, so post-barrier traffic never reaches a
			// pre-barrier syncer.
			p.held = append(p.held, msg)
			r.routeMu.Unlock()
			continue
		}
		if r.elastic {
			// Translate the sender's transport rank to its dense worker
			// id under the live view; frames from non-members (a removed
			// rank's stragglers) drop here.
			dense := r.view.Index(int(msg.From))
			if dense < 0 {
				r.routeMu.Unlock()
				msg.ReleasePayload()
				continue
			}
			msg.From = int32(dense)
		}
		s := r.syncers[index]
		r.routeMu.Unlock()
		err = s.Handle(msg)
		// Syncers decode into their own scratch and never retain the
		// frame, so its pooled lease (if any) goes back now.
		msg.ReleasePayload()
		if err != nil {
			r.fail(err)
			return
		}
	}
}

// handleReplanFrame records the leader's route decision for the armed
// barrier and wakes the compute goroutine waiting on it.
func (r *Router) handleReplanFrame(msg transport.Message) error {
	routes := make([]Route, len(msg.Payload))
	for i, b := range msg.Payload {
		routes[i] = Route(b)
	}
	msg.ReleasePayload()
	r.routeMu.Lock()
	defer r.routeMu.Unlock()
	p := r.pending
	if p == nil || p.barrier != int(msg.Iter) {
		return fmt.Errorf("comm: REPLAN frame for barrier %d with no matching armed reroute", msg.Iter)
	}
	if p.decided {
		return fmt.Errorf("comm: duplicate REPLAN frame for barrier %d", p.barrier)
	}
	if len(routes) != len(r.plans) {
		return fmt.Errorf("comm: REPLAN frame names %d params, router has %d", len(routes), len(r.plans))
	}
	p.decided = true
	p.routes = routes
	r.routeCond.Broadcast()
	return nil
}

// ArmReroute announces the next replan barrier: from this call on,
// inbound data frames stamped with iterations >= barrier are parked
// until the barrier's decision is applied (Reroute/AwaitReroute), so a
// fast peer that crosses the barrier first cannot slip post-swap
// traffic into pre-swap syncers. Call from the compute goroutine before
// launching the first iteration of the epoch that ends at barrier;
// arming while a barrier is still pending is a protocol bug and panics.
//
// That call site makes arming causally early enough on every node: a
// peer can emit traffic for iterations >= barrier — data frames after
// its own barrier, or the leader's REPLAN frame (sent only after the
// leader's drain) — only once round barrier−1 completed at the leader
// or at itself, and no round of the epoch can complete anywhere
// without this node's own launch of that epoch iteration, which
// follows this call. So by the time any such frame can exist, this
// node is armed.
func (r *Router) ArmReroute(barrier int) {
	r.routeMu.Lock()
	defer r.routeMu.Unlock()
	if r.pending != nil {
		panic("comm: ArmReroute with a reroute already pending")
	}
	if r.pendingV != nil {
		panic("comm: ArmReroute during a membership change")
	}
	r.pending = &pendingReroute{barrier: barrier}
}

// Reroute executes the replan barrier at iteration barrier as the
// deciding node: it broadcasts the route vector in a clock-stamped
// REPLAN frame to every node (itself included, via loopback) and then
// waits and applies exactly like a follower. The frame is the barrier
// release, so it is sent even when the plan is unchanged — pass nil to
// keep the current routes. plans must cover every parameter in index
// order. Returns the number of flipped parameters.
//
// Precondition (both Reroute and AwaitReroute): the caller armed the
// barrier earlier and has finished launching every iteration below it.
func (r *Router) Reroute(barrier int, plans []ParamPlan) (int, error) {
	routes := r.plans
	if plans != nil {
		if len(plans) != len(r.plans) {
			return 0, fmt.Errorf("comm: reroute with %d plans for %d params", len(plans), len(r.plans))
		}
		routes = plans
	}
	// Drain BEFORE broadcasting: the local clock reaching barrier−1
	// needs every peer's launch of iteration barrier−1 (every round of
	// every parameter folds from all P contributions), and a peer only
	// launches epoch iterations after arming the barrier — so once this
	// returns, the frame below cannot reach an unarmed router. Sending
	// first would race a slow-to-schedule peer's ArmReroute.
	r.clock.WaitFor(barrier + r.staleness)
	if err := r.Err(); err != nil {
		return 0, err
	}
	ref := transport.LeasePayload(len(routes))
	buf := ref.Bytes()
	for _, p := range routes {
		buf = append(buf, byte(p.Route))
	}
	ref.SetBytes(buf)
	msg := transport.Message{
		Type:    transport.MsgReplan,
		Layer:   -1,
		Iter:    int32(barrier),
		Payload: ref.Bytes(),
	}
	msg.AttachLease(ref)
	var sendErr error
	for peer := 0; peer < r.n; peer++ {
		ref.Retain()
		m := msg
		err := r.mesh.Send(peer, m)
		m.ReleasePayload()
		if err != nil && sendErr == nil {
			sendErr = err
		}
	}
	ref.Release()
	if sendErr != nil {
		r.fail(sendErr)
		return 0, r.Err()
	}
	return r.AwaitReroute(barrier)
}

// AwaitReroute blocks at the replan barrier until the in-flight rounds
// below it have drained locally and the leader's REPLAN frame has
// arrived, then swaps the affected syncers and replays any parked
// frames through them. Every non-deciding worker calls it at the same
// iteration the leader calls Reroute; both return the number of
// flipped parameters, identically on every node.
func (r *Router) AwaitReroute(barrier int) (int, error) {
	// Local drain: every parameter synchronized through barrier−1, i.e.
	// no lease, decode scratch, or partial round of the outgoing plan is
	// still live, and no further pre-barrier frame can arrive (a round
	// this node serves cannot have completed elsewhere before every push
	// reached it).
	r.clock.WaitFor(barrier + r.staleness)
	r.routeMu.Lock()
	p := r.pending
	if p == nil || p.barrier != barrier {
		r.routeMu.Unlock()
		if err := r.Err(); err != nil {
			return 0, err
		}
		return 0, fmt.Errorf("comm: reroute barrier %d was never armed", barrier)
	}
	for !p.decided && r.Err() == nil {
		r.routeCond.Wait()
	}
	r.pending = nil
	held := p.held
	if !p.decided {
		// Failed mid-barrier: return the parked leases and surface the
		// router error.
		r.routeMu.Unlock()
		for _, m := range held {
			m.ReleasePayload()
		}
		return 0, r.Err()
	}
	flips, err := r.applyLocked(p)
	// Replay parked frames in arrival order through the swapped syncers
	// while still holding routeMu — the receive loop is excluded, so the
	// per-goroutine scratch discipline of Handle is preserved.
	for _, m := range held {
		if err == nil {
			if idx := int(m.Layer); idx < 0 || idx >= len(r.syncers) {
				err = fmt.Errorf("comm: parked message for unknown param %d", idx)
			} else {
				err = r.syncers[idx].Handle(m)
			}
		}
		m.ReleasePayload()
	}
	r.routeMu.Unlock()
	if err != nil {
		r.fail(err)
	}
	return flips, r.Err()
}

// applyLocked swaps every parameter whose decided route differs from
// the live plan: the outgoing syncer releases its routing-owned state
// (Syncer.Close), the successor is built against the staged replica —
// identical on every node at a drained barrier, so re-seeded KV pairs
// agree byte-for-byte — and the update ring is re-provisioned for the
// new route. Caller holds routeMu.
func (r *Router) applyLocked(p *pendingReroute) (int, error) {
	flips := 0
	for i, route := range p.routes {
		if route == r.plans[i].Route {
			continue
		}
		plan := r.plans[i]
		from := plan.Route.String()
		plan.Route = route
		plan.SF = nil
		if route == RouteSFB {
			if r.sfSource != nil {
				plan.SF = r.sfSource(i)
			}
			if plan.SF == nil {
				return flips, fmt.Errorf("comm: reroute moved param %d (%s) to SFB without an SF source", i, plan.Name)
			}
		}
		r.syncers[i].Close()
		r.stageMu.Lock()
		s, err := r.buildSyncer(plan, r.staged[i])
		r.stageMu.Unlock()
		if err != nil {
			return flips, err
		}
		r.syncers[i] = s
		r.plans[i] = plan
		r.initRingSlot(i, plan)
		if r.metrics != nil {
			r.pstats[i].SetRoute(plan.Route.String())
			r.metrics.RecordReplan(metrics.ReplanEvent{
				Iter: p.barrier, Param: i, Name: plan.Name,
				From: from, To: plan.Route.String(),
			})
		}
		flips++
	}
	return flips, nil
}

// LaunchAll starts synchronization of every parameter for this
// iteration — the per-layer sync() calls of the paper's Algorithm 2.
// Dense routes receive their gradient scaled into the update ring's
// slot for this iteration (no per-iteration allocation), so the
// caller's grad buffers are free for the next backward pass immediately.
//
// Precondition: the caller must have returned from WaitFor(iter) before
// LaunchAll(iter) — the training loop's natural gate. That is what lets
// slot iter%(staleness+1) be reused: the launch that last wrote it
// (iteration iter−staleness−1) has fully synchronized, so no dispatched
// encode task can still be reading the buffer being refilled.
func (r *Router) LaunchAll(iter int, grads []*tensor.Matrix) error {
	if len(grads) != len(r.syncers) {
		return fmt.Errorf("comm: %d grads for %d syncers", len(grads), len(r.syncers))
	}
	slot := r.updRing[iter%len(r.updRing)]
	for i, s := range r.syncers {
		var update *tensor.Matrix
		if r.plans[i].Route != RouteSFB {
			update = slot[i]
			update.CopyFrom(grads[i])
			update.Scale(r.scale)
		}
		if err := s.Launch(iter, update); err != nil {
			return err
		}
		if r.pstats != nil {
			r.pstats[i].CountRound()
		}
	}
	return r.Err()
}

// WaitFor blocks until iteration iter may begin under the staleness
// bound (every parameter synchronized through iter−1−staleness). With
// metrics attached, the blocked time is recorded as sync stall.
func (r *Router) WaitFor(iter int) {
	if r.metrics == nil {
		r.clock.WaitFor(iter)
		return
	}
	start := time.Now()
	r.clock.WaitFor(iter)
	r.metrics.RecordStall(time.Since(start))
}

// Adopt copies the staged replica into the live parameters.
func (r *Router) Adopt(params []*tensor.Matrix) {
	r.stageMu.Lock()
	defer r.stageMu.Unlock()
	for i, p := range params {
		p.CopyFrom(r.staged[i])
	}
}

// Err reports the first asynchronous failure (receive loop or pooled
// send), if any.
func (r *Router) Err() error {
	r.errMu.Lock()
	err := r.asyncEr
	r.errMu.Unlock()
	if err != nil {
		return err
	}
	if r.pool != nil {
		return r.pool.firstErr()
	}
	return nil
}

// Stop drains the send pool and returns any leases still parked at an
// unresolved reroute barrier (an aborted run can leave them behind).
// Call after the final WaitFor, when the protocol has quiesced; the
// receive loop exits when the mesh closes.
func (r *Router) Stop() {
	if r.pool != nil {
		r.pool.close()
	}
	r.routeMu.Lock()
	p := r.pending
	r.pending = nil
	pv := r.pendingV
	r.pendingV = nil
	deferred := r.deferred
	r.deferred = nil
	r.routeMu.Unlock()
	if p != nil {
		for _, m := range p.held {
			m.ReleasePayload()
		}
	}
	if pv != nil {
		if pv.timer != nil {
			pv.timer.Stop()
		}
		for _, m := range pv.held {
			m.ReleasePayload()
		}
	}
	for _, m := range deferred {
		m.ReleasePayload()
	}
}

// Routes summarizes the live route of every parameter (for logging and
// tests); after a replan barrier it reflects the swapped plan.
func (r *Router) Routes() []Route {
	r.routeMu.Lock()
	defer r.routeMu.Unlock()
	routes := make([]Route, len(r.plans))
	for i, p := range r.plans {
		routes[i] = p.Route
	}
	return routes
}

// EgressBytes sums the wire bytes this router's parameters have sent —
// the reading the trainer's bandwidth estimator differences between
// replan windows. Zero without metrics attached.
func (r *Router) EgressBytes() int64 {
	var total int64
	for _, ps := range r.pstats {
		total += ps.SentBytes()
	}
	return total
}
