package comm

import (
	"fmt"
	"sync"

	"repro/internal/tensor"
	"repro/internal/transport"
)

// Ring all-reduce: the tensor is split into P segments; segment s is
// reduced along the chain s → s+1 → … → s−1 (mod P), each hop adding
// its own scaled update to the received partial sum, and the final
// value travels the same ring back (all-gather). Every worker sends
// exactly 2(P−1) frames of E/P values — the bandwidth-optimal, perfectly
// balanced collective — and every replica applies the identical fold
// (rank order s, s+1, …, s−1 per segment), so replicas stay
// bit-identical.
//
// The protocol is asynchronous: chains for different segments (and
// different in-flight iterations, under SSP staleness) interleave
// freely. The only ordering the state machine needs is per-chain
// causality, which the wire gives for free — a segment's gather cannot
// exist before its reduce chain passed every worker. A reduce hop that
// arrives before this worker's own Launch of that iteration is parked
// (at most P−1 per round) and replayed when the local addend appears.
//
// Locking: mu guards the round table and the fold scratch; stageMu
// nests inside it for the staged-replica writes. Encoding into leased
// payloads happens under mu (the scratch is reused immediately after),
// but sends are flushed only after mu is released — holding a lock the
// receive path needs across a potentially blocking Send would deadlock
// two mutually backpressured workers.

// ringOut is one prepared ring frame awaiting dispatch: the payload is
// already encoded into its lease, so flushing after the lock drop is a
// pure send.
type ringOut struct {
	msg  transport.Message
	to   int
	lane int
}

// ringRound is the per-iteration state of one ring all-reduce. Rounds
// recycle through a free list, so steady state allocates nothing.
type ringRound struct {
	update   *tensor.Matrix // router update-ring slot; valid until the clock advances
	launched bool
	applied  int // segments applied to the staged replica (done at P)
	// pend parks pre-launch reduce chains per segment; pendSet
	// disambiguates a parked zero-length segment from no parking.
	pend    [][]float32
	pendSet []bool
}

type ringSyncer struct {
	r     *Router
	plan  ParamPlan
	n, id int
	elems int

	mu     sync.Mutex
	rounds map[int]*ringRound
	free   []*ringRound

	// recvScratch is the receive goroutine's decode target;
	// chainScratch holds one fold result under mu (it is encoded into a
	// leased payload before mu is released, so one buffer serves both
	// goroutines). outLaunch/outHandle are per-goroutine flush queues.
	recvScratch  []float32
	chainScratch []float32
	outLaunch    []ringOut
	outHandle    []ringOut
}

func newRingSyncer(r *Router, plan ParamPlan) *ringSyncer {
	return &ringSyncer{
		r:      r,
		plan:   plan,
		n:      r.n,
		id:     r.id,
		elems:  plan.Rows * plan.Cols,
		rounds: make(map[int]*ringRound),
	}
}

// segRange returns segment seg's slice of the flattened tensor: the
// first elems%n segments absorb the remainder, so coverage is exact.
func segRange(seg, elems, n int) (off, ln int) {
	base, rem := elems/n, elems%n
	off = seg*base + min(seg, rem)
	ln = base
	if seg < rem {
		ln++
	}
	return off, ln
}

// round returns (creating if needed) the state for one iteration.
// Caller holds mu.
func (s *ringSyncer) round(iter int) *ringRound {
	rd := s.rounds[iter]
	if rd == nil {
		if k := len(s.free); k > 0 {
			rd, s.free = s.free[k-1], s.free[:k-1]
		} else {
			rd = &ringRound{pend: make([][]float32, s.n), pendSet: make([]bool, s.n)}
		}
		s.rounds[iter] = rd
	}
	return rd
}

// recycleLocked retires a completed round to the free list.
func (s *ringSyncer) recycleLocked(iter int, rd *ringRound) {
	delete(s.rounds, iter)
	rd.update = nil
	rd.launched = false
	rd.applied = 0
	s.free = append(s.free, rd)
}

// prepare encodes one segment into a leased payload and queues it for
// the in-ring successor. Caller holds mu; the queued lease is consumed
// by dispatchSend at flush time.
func (s *ringSyncer) prepare(out *[]ringOut, typ transport.MsgType, iter, seg, lane int, vals []float32) {
	ref := transport.LeasePayload(tensor.Float32sWireBytes(len(vals)))
	ref.SetBytes(tensor.AppendFloat32s(ref.Bytes(), vals))
	msg := transport.Message{
		Type:    typ,
		Layer:   int32(s.plan.Index),
		Chunk:   int32(seg),
		Iter:    int32(iter),
		Payload: ref.Bytes(),
	}
	msg.AttachLease(ref)
	*out = append(*out, ringOut{msg: msg, to: (s.id + 1) % s.n, lane: lane})
}

// flush dispatches the queued frames (mu released) and resets the queue.
func (s *ringSyncer) flush(out []ringOut) []ringOut {
	for i := range out {
		s.r.dispatchSend(stripeFor(s.plan.Index, out[i].lane), out[i].to, out[i].msg)
	}
	return out[:0]
}

// chainStep folds this worker's addend into an arriving reduce chain
// for seg and either forwards the partial sum or — as the segment's
// final reducer — applies it and starts the gather. Caller holds mu and
// guarantees rd.launched.
func (s *ringSyncer) chainStep(rd *ringRound, out *[]ringOut, iter, seg int, vals []float32) error {
	off, ln := segRange(seg, s.elems, s.n)
	if len(vals) != ln {
		return fmt.Errorf("comm: param %d ring segment %d: %d values, want %d", s.plan.Index, seg, len(vals), ln)
	}
	own := rd.update.Data[off : off+ln]
	if cap(s.chainScratch) < ln {
		s.chainScratch = make([]float32, ln)
	}
	sum := s.chainScratch[:ln]
	for j, v := range vals {
		sum[j] = v + own[j]
	}
	if s.id == (seg-1+s.n)%s.n {
		// Final reducer: sum folds all P updates in rank order seg,
		// seg+1, …, seg−1. Apply and redistribute.
		s.applyLocked(seg, sum)
		rd.applied++
		s.prepare(out, transport.MsgRingGather, iter, seg, s.n+seg, sum)
	} else {
		s.prepare(out, transport.MsgRingReduce, iter, seg, seg, sum)
	}
	return nil
}

// applyLocked adds a fully-reduced segment to the staged replica.
// Caller holds mu; stageMu nests inside.
func (s *ringSyncer) applyLocked(seg int, vals []float32) {
	off, _ := segRange(seg, s.elems, s.n)
	s.r.stageMu.Lock()
	st := s.r.staged[s.plan.Index].Data[off : off+len(vals)]
	for j, v := range vals {
		st[j] += v
	}
	s.r.stageMu.Unlock()
}

// Launch starts this worker's chain (its own segment, un-folded) and
// replays any reduce hops that outran the launch. update is borrowed
// from the router's update ring; every read of it happens before this
// round's clock advance, per the Syncer contract.
func (s *ringSyncer) Launch(iter int, update *tensor.Matrix) error {
	if s.n == 1 {
		s.r.stageMu.Lock()
		s.r.staged[s.plan.Index].Add(update)
		s.r.stageMu.Unlock()
		s.r.clock.Advance(s.plan.Index, iter)
		return nil
	}
	s.mu.Lock()
	rd := s.round(iter)
	rd.update = update
	rd.launched = true
	off, ln := segRange(s.id, s.elems, s.n)
	s.prepare(&s.outLaunch, transport.MsgRingReduce, iter, s.id, s.id, update.Data[off:off+ln])
	var err error
	for seg := 0; seg < s.n && err == nil; seg++ {
		if rd.pendSet[seg] {
			rd.pendSet[seg] = false
			err = s.chainStep(rd, &s.outLaunch, iter, seg, rd.pend[seg])
		}
	}
	done := err == nil && rd.applied == s.n
	if done {
		s.recycleLocked(iter, rd)
	}
	s.mu.Unlock()
	s.outLaunch = s.flush(s.outLaunch)
	if done {
		s.r.clock.Advance(s.plan.Index, iter)
	}
	return err
}

// Handle drives the two wire phases. Reduce hops arriving before the
// local launch are parked; gathers can never precede it (a gather
// exists only after the chain passed every worker, this one included).
func (s *ringSyncer) Handle(msg transport.Message) error {
	seg := int(msg.Chunk)
	if seg < 0 || seg >= s.n {
		return fmt.Errorf("comm: param %d: bad ring segment %d", s.plan.Index, seg)
	}
	vals, _, err := tensor.DecodeFloat32sInto(s.recvScratch, msg.Payload)
	if err != nil {
		return err
	}
	s.recvScratch = vals
	iter := int(msg.Iter)
	switch msg.Type {
	case transport.MsgRingReduce:
		s.mu.Lock()
		rd := s.round(iter)
		if !rd.launched {
			rd.pend[seg] = append(rd.pend[seg][:0], vals...)
			rd.pendSet[seg] = true
			s.mu.Unlock()
			return nil
		}
		err := s.chainStep(rd, &s.outHandle, iter, seg, vals)
		done := err == nil && rd.applied == s.n
		if done {
			s.recycleLocked(iter, rd)
		}
		s.mu.Unlock()
		s.outHandle = s.flush(s.outHandle)
		if done {
			s.r.clock.Advance(s.plan.Index, iter)
		}
		return err
	case transport.MsgRingGather:
		_, ln := segRange(seg, s.elems, s.n)
		if len(vals) != ln {
			return fmt.Errorf("comm: param %d ring segment %d: gather %d values, want %d", s.plan.Index, seg, len(vals), ln)
		}
		s.mu.Lock()
		rd := s.round(iter)
		s.applyLocked(seg, vals)
		rd.applied++
		// Forward along the ring unless the successor is the segment's
		// final reducer, which already applied its own fold.
		if (s.id+1)%s.n != (seg-1+s.n)%s.n {
			s.prepare(&s.outHandle, transport.MsgRingGather, iter, seg, s.n+seg, vals)
		}
		done := rd.applied == s.n
		if done {
			s.recycleLocked(iter, rd)
		}
		s.mu.Unlock()
		s.outHandle = s.flush(s.outHandle)
		if done {
			s.r.clock.Advance(s.plan.Index, iter)
		}
		return nil
	default:
		return fmt.Errorf("comm: param %d: unexpected message type %d on ring route", s.plan.Index, msg.Type)
	}
}

// Close has nothing to release: the reroute barrier drained every
// round, so no chain, parked frame, or partial sum survives, and the
// staged replica already carries the authoritative value the successor
// route re-seeds from.
func (s *ringSyncer) Close() {}

// ---- Tree/ring hierarchy ---------------------------------------------------

// treeRingSyncer composes intra-group rings with an inter-group leader
// chain — the two-level collective for oversubscribed topologies where
// a flat ring would cross the slow inter-group fabric P times. Workers
// are partitioned into m = ⌈P/g⌉ consecutive-id groups of capacity
// g = ⌈√P⌉, and the tensor into G = g global segments:
//
//	phase 1: each group chain-reduces every segment (rank order within
//	         the group), landing segment k's group sum at that group's
//	         leader for k;
//	phase 2: leaders chain-reduce group sums in group order 0 → m−1,
//	         then the global value travels the leader chain back;
//	phase 3: each leader redistributes along its intra-group ring.
//
// Frames per worker: 2(g−1) intra plus 2(m−1) on the leader chain —
// the 2(√P)-ish depth that beats the flat ring's 2(P−1) when the
// inter-group fabric is the bottleneck. The fold is deterministic at
// every level, so replicas stay bit-identical.
//
// The inter-group phase rides the same two message types with a phase
// bit folded into Chunk.
const treeInterBit = 1 << 20

// treeRound extends the ring round with the leader-side state: a group
// sum waiting for the inter-group chain, and an inter-group partial
// that arrived before the local group finished reducing.
type treeRound struct {
	update       *tensor.Matrix
	launched     bool
	applied      int // segments applied (done at G)
	pendIntra    [][]float32
	pendIntraSet []bool
	pendInter    [][]float32
	pendInterSet []bool
	groupSum     [][]float32
	groupSumSet  []bool
}

type treeRingSyncer struct {
	r     *Router
	plan  ParamPlan
	n, id int
	elems int
	gsize int // g: group capacity == number of global segments
	gcnt  int // m: number of groups
	gi    int // this worker's group
	base  int // first dense id in the group
	sz    int // live members in the group (tail group may be short)
	ri    int // in-group index

	mu     sync.Mutex
	rounds map[int]*treeRound
	free   []*treeRound

	recvScratch  []float32
	chainScratch []float32
	outLaunch    []ringOut
	outHandle    []ringOut
}

// treeShape returns the group capacity g = ⌈√n⌉ and group count
// m = ⌈n/g⌉ for an n-worker tree/ring.
func treeShape(n int) (g, m int) {
	g = 1
	for g*g < n {
		g++
	}
	return g, (n + g - 1) / g
}

func newTreeRingSyncer(r *Router, plan ParamPlan) *treeRingSyncer {
	g, m := treeShape(r.n)
	s := &treeRingSyncer{
		r:      r,
		plan:   plan,
		n:      r.n,
		id:     r.id,
		elems:  plan.Rows * plan.Cols,
		gsize:  g,
		gcnt:   m,
		rounds: make(map[int]*treeRound),
	}
	s.gi = s.id / g
	s.base = s.gi * g
	s.sz = min(g, s.n-s.base)
	s.ri = s.id - s.base
	return s
}

// groupSize returns the member count of group gj.
func (s *treeRingSyncer) groupSize(gj int) int {
	return min(s.gsize, s.n-gj*s.gsize)
}

// leaderOf returns the dense id holding segment k's group sum in group
// gj: the final reducer of the intra-group chain that starts at member
// k mod size.
func (s *treeRingSyncer) leaderOf(gj, k int) int {
	sz := s.groupSize(gj)
	return gj*s.gsize + (k%sz+sz-1)%sz
}

func (s *treeRingSyncer) round(iter int) *treeRound {
	rd := s.rounds[iter]
	if rd == nil {
		if k := len(s.free); k > 0 {
			rd, s.free = s.free[k-1], s.free[:k-1]
		} else {
			g := s.gsize
			rd = &treeRound{
				pendIntra: make([][]float32, g), pendIntraSet: make([]bool, g),
				pendInter: make([][]float32, g), pendInterSet: make([]bool, g),
				groupSum: make([][]float32, g), groupSumSet: make([]bool, g),
			}
		}
		s.rounds[iter] = rd
	}
	return rd
}

func (s *treeRingSyncer) recycleLocked(iter int, rd *treeRound) {
	delete(s.rounds, iter)
	rd.update = nil
	rd.launched = false
	rd.applied = 0
	s.free = append(s.free, rd)
}

func (s *treeRingSyncer) prepare(out *[]ringOut, typ transport.MsgType, iter, chunk, lane, to int, vals []float32) {
	ref := transport.LeasePayload(tensor.Float32sWireBytes(len(vals)))
	ref.SetBytes(tensor.AppendFloat32s(ref.Bytes(), vals))
	msg := transport.Message{
		Type:    typ,
		Layer:   int32(s.plan.Index),
		Chunk:   int32(chunk),
		Iter:    int32(iter),
		Payload: ref.Bytes(),
	}
	msg.AttachLease(ref)
	*out = append(*out, ringOut{msg: msg, to: to, lane: lane})
}

func (s *treeRingSyncer) flush(out []ringOut) []ringOut {
	for i := range out {
		s.r.dispatchSend(stripeFor(s.plan.Index, out[i].lane), out[i].to, out[i].msg)
	}
	return out[:0]
}

// intraSucc returns the next member on this group's ring.
func (s *treeRingSyncer) intraSucc() int { return s.base + (s.ri+1)%s.sz }

// applyLocked adds a globally-reduced segment to the staged replica.
func (s *treeRingSyncer) applyLocked(seg int, vals []float32) {
	off, _ := segRange(seg, s.elems, s.gsize)
	s.r.stageMu.Lock()
	st := s.r.staged[s.plan.Index].Data[off : off+len(vals)]
	for j, v := range vals {
		st[j] += v
	}
	s.r.stageMu.Unlock()
}

// globalFinal installs segment k's fully-reduced value at a leader and
// starts its intra-group redistribution.
func (s *treeRingSyncer) globalFinal(rd *treeRound, out *[]ringOut, iter, k int, vals []float32) {
	s.applyLocked(k, vals)
	rd.applied++
	if s.sz > 1 {
		s.prepare(out, transport.MsgRingGather, iter, k, s.gsize+k, s.intraSucc(), vals)
	}
}

// interStep advances the inter-group chain with this group's folded
// contribution: forward to the next group's leader, or — at the last
// group — finalize globally and start the leader-chain gather.
func (s *treeRingSyncer) interStep(rd *treeRound, out *[]ringOut, iter, k int, vals []float32) {
	if s.gi == s.gcnt-1 {
		s.globalFinal(rd, out, iter, k, vals)
		s.prepare(out, transport.MsgRingGather, iter, k+treeInterBit, 3*s.gsize+k, s.leaderOf(s.gi-1, k), vals)
		return
	}
	s.prepare(out, transport.MsgRingReduce, iter, k+treeInterBit, 2*s.gsize+k, s.leaderOf(s.gi+1, k), vals)
}

// intraFinalize runs when this worker — segment k's group leader —
// holds the complete group sum: enter the inter-group chain (or, with
// a single group, finalize directly). A parked inter-group partial is
// folded in now; otherwise the group sum waits for it.
func (s *treeRingSyncer) intraFinalize(rd *treeRound, out *[]ringOut, iter, k int, sum []float32) {
	if s.gcnt == 1 {
		s.globalFinal(rd, out, iter, k, sum)
		return
	}
	if s.gi == 0 {
		s.prepare(out, transport.MsgRingReduce, iter, k+treeInterBit, 2*s.gsize+k, s.leaderOf(1, k), sum)
		return
	}
	if rd.pendInterSet[k] {
		rd.pendInterSet[k] = false
		pend := rd.pendInter[k]
		for j := range sum {
			sum[j] = pend[j] + sum[j]
		}
		s.interStep(rd, out, iter, k, sum)
		return
	}
	rd.groupSum[k] = append(rd.groupSum[k][:0], sum...)
	rd.groupSumSet[k] = true
}

// chainStepIntra folds this worker's addend into an arriving
// intra-group reduce chain for segment k. Caller holds mu and
// guarantees rd.launched.
func (s *treeRingSyncer) chainStepIntra(rd *treeRound, out *[]ringOut, iter, k int, vals []float32) error {
	off, ln := segRange(k, s.elems, s.gsize)
	if len(vals) != ln {
		return fmt.Errorf("comm: param %d treering segment %d: %d values, want %d", s.plan.Index, k, len(vals), ln)
	}
	own := rd.update.Data[off : off+ln]
	if cap(s.chainScratch) < ln {
		s.chainScratch = make([]float32, ln)
	}
	sum := s.chainScratch[:ln]
	for j, v := range vals {
		sum[j] = v + own[j]
	}
	if s.ri == (k%s.sz+s.sz-1)%s.sz {
		s.intraFinalize(rd, out, iter, k, sum)
	} else {
		s.prepare(out, transport.MsgRingReduce, iter, k, k, s.intraSucc(), sum)
	}
	return nil
}

// Launch starts the intra-group chains this worker owns (segments k
// with k ≡ ri mod size; a singleton group finalizes them immediately)
// and replays parked intra hops.
func (s *treeRingSyncer) Launch(iter int, update *tensor.Matrix) error {
	if s.n == 1 {
		s.r.stageMu.Lock()
		s.r.staged[s.plan.Index].Add(update)
		s.r.stageMu.Unlock()
		s.r.clock.Advance(s.plan.Index, iter)
		return nil
	}
	s.mu.Lock()
	rd := s.round(iter)
	rd.update = update
	rd.launched = true
	var err error
	for k := 0; k < s.gsize; k++ {
		if k%s.sz != s.ri {
			continue
		}
		off, ln := segRange(k, s.elems, s.gsize)
		own := update.Data[off : off+ln]
		if s.sz == 1 {
			if cap(s.chainScratch) < ln {
				s.chainScratch = make([]float32, ln)
			}
			sum := s.chainScratch[:ln]
			copy(sum, own)
			s.intraFinalize(rd, &s.outLaunch, iter, k, sum)
		} else {
			s.prepare(&s.outLaunch, transport.MsgRingReduce, iter, k, k, s.intraSucc(), own)
		}
	}
	for k := 0; k < s.gsize && err == nil; k++ {
		if rd.pendIntraSet[k] {
			rd.pendIntraSet[k] = false
			err = s.chainStepIntra(rd, &s.outLaunch, iter, k, rd.pendIntra[k])
		}
	}
	done := err == nil && rd.applied == s.gsize
	if done {
		s.recycleLocked(iter, rd)
	}
	s.mu.Unlock()
	s.outLaunch = s.flush(s.outLaunch)
	if done {
		s.r.clock.Advance(s.plan.Index, iter)
	}
	return err
}

// Handle drives all four wire phases: intra reduce (parked pre-launch),
// inter-group reduce at leaders (parked until the group sum is ready),
// inter-group gather along the leader chain, and intra-group gather.
func (s *treeRingSyncer) Handle(msg transport.Message) error {
	chunk := int(msg.Chunk)
	inter := chunk >= treeInterBit
	k := chunk
	if inter {
		k -= treeInterBit
	}
	if k < 0 || k >= s.gsize {
		return fmt.Errorf("comm: param %d: bad treering segment %d", s.plan.Index, chunk)
	}
	vals, _, err := tensor.DecodeFloat32sInto(s.recvScratch, msg.Payload)
	if err != nil {
		return err
	}
	s.recvScratch = vals
	_, ln := segRange(k, s.elems, s.gsize)
	if len(vals) != ln {
		return fmt.Errorf("comm: param %d treering segment %d: %d values, want %d", s.plan.Index, k, len(vals), ln)
	}
	iter := int(msg.Iter)
	if inter && s.id != s.leaderOf(s.gi, k) {
		return fmt.Errorf("comm: param %d: inter-group frame for segment %d at non-leader %d", s.plan.Index, k, s.id)
	}
	switch {
	case msg.Type == transport.MsgRingReduce && !inter:
		s.mu.Lock()
		rd := s.round(iter)
		if !rd.launched {
			rd.pendIntra[k] = append(rd.pendIntra[k][:0], vals...)
			rd.pendIntraSet[k] = true
			s.mu.Unlock()
			return nil
		}
		err := s.chainStepIntra(rd, &s.outHandle, iter, k, vals)
		s.finishHandle(iter, rd, err)
		return err
	case msg.Type == transport.MsgRingReduce && inter:
		s.mu.Lock()
		rd := s.round(iter)
		if !rd.groupSumSet[k] {
			// The previous groups outran this one; park their partial
			// until the local group sum lands.
			rd.pendInter[k] = append(rd.pendInter[k][:0], vals...)
			rd.pendInterSet[k] = true
			s.mu.Unlock()
			return nil
		}
		rd.groupSumSet[k] = false
		if cap(s.chainScratch) < ln {
			s.chainScratch = make([]float32, ln)
		}
		sum := s.chainScratch[:ln]
		gs := rd.groupSum[k]
		for j, v := range vals {
			sum[j] = v + gs[j]
		}
		s.interStep(rd, &s.outHandle, iter, k, sum)
		s.finishHandle(iter, rd, nil)
		return nil
	case msg.Type == transport.MsgRingGather && inter:
		s.mu.Lock()
		rd := s.round(iter)
		s.globalFinal(rd, &s.outHandle, iter, k, vals)
		if s.gi > 0 {
			s.prepare(&s.outHandle, transport.MsgRingGather, iter, k+treeInterBit, 3*s.gsize+k, s.leaderOf(s.gi-1, k), vals)
		}
		s.finishHandle(iter, rd, nil)
		return nil
	case msg.Type == transport.MsgRingGather && !inter:
		s.mu.Lock()
		rd := s.round(iter)
		s.applyLocked(k, vals)
		rd.applied++
		// Forward within the group unless the successor is the leader
		// that originated this gather.
		if (s.ri+1)%s.sz != (k%s.sz+s.sz-1)%s.sz {
			s.prepare(&s.outHandle, transport.MsgRingGather, iter, k, s.gsize+k, s.intraSucc(), vals)
		}
		s.finishHandle(iter, rd, nil)
		return nil
	default:
		return fmt.Errorf("comm: param %d: unexpected message type %d on treering route", s.plan.Index, msg.Type)
	}
}

// finishHandle completes a Handle arm: recycle on round completion,
// release mu, flush prepared frames, advance the clock. Caller holds mu.
func (s *treeRingSyncer) finishHandle(iter int, rd *treeRound, err error) {
	done := err == nil && rd.applied == s.gsize
	if done {
		s.recycleLocked(iter, rd)
	}
	s.mu.Unlock()
	s.outHandle = s.flush(s.outHandle)
	if done {
		s.r.clock.Advance(s.plan.Index, iter)
	}
}

// Close mirrors ringSyncer.Close: the barrier drained everything.
func (s *treeRingSyncer) Close() {}
