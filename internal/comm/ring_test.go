package comm

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// identicalParamsN is identicalParams for an arbitrary node count.
func identicalParamsN(seed int64, shapes [][2]int, n int) [][]*tensor.Matrix {
	all := make([][]*tensor.Matrix, n)
	for node := range all {
		rng := rand.New(rand.NewSource(seed))
		for _, s := range shapes {
			m := tensor.NewMatrix(s[0], s[1])
			m.Randn(rng, 0.5)
			all[node] = append(all[node], m)
		}
	}
	return all
}

// runCollectiveCluster trains an n-node cluster where every parameter
// rides route, over several iterations with integer updates, and checks
// the collective invariants: every replica ends at exactly
// initial + iters·Σ(node+1) (ring folds of small integers are exact in
// float32), replicas are byte-identical across nodes, and no payload
// lease outlives the run.
func runCollectiveCluster(t *testing.T, n int, route Route, overlap bool, staleness int) {
	t.Helper()
	baseline := transport.OutstandingPayloadLeases()

	const iters = 4
	// 4×6 exercises uneven segments (24 elems over n), 1×3 forces
	// zero-length segments whenever n > 3, 1×1 is the degenerate single
	// value every worker but one contributes to an empty slice of.
	shapes := [][2]int{{4, 6}, {1, 3}, {1, 1}}
	allParams := identicalParamsN(13, shapes, n)

	meshes := transport.NewChanCluster(n)
	routers := make([]*Router, n)
	for node := 0; node < n; node++ {
		plans := make([]ParamPlan, len(shapes))
		for i, s := range shapes {
			plans[i] = ParamPlan{Index: i, Rows: s[0], Cols: s[1], Route: route}
		}
		r, err := NewRouter(Config{
			Mesh:      meshes[node],
			Plans:     plans,
			Params:    allParams[node],
			Scale:     1,
			Overlap:   overlap,
			Staleness: staleness,
		})
		if err != nil {
			t.Fatal(err)
		}
		routers[node] = r
		r.Start()
	}
	t.Cleanup(func() {
		meshes[0].Close()
		for _, r := range routers {
			r.Stop()
		}
	})

	var wg sync.WaitGroup
	errs := make([]error, n)
	for node := 0; node < n; node++ {
		node, r := node, routers[node]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < iters; iter++ {
				r.WaitFor(iter)
				grads := make([]*tensor.Matrix, len(shapes))
				for i, s := range shapes {
					grads[i] = tensor.NewMatrix(s[0], s[1])
					grads[i].Fill(float32(node + 1))
				}
				if err := r.LaunchAll(iter, grads); err != nil {
					errs[node] = err
					return
				}
			}
			// Full drain: under SSP the last staleness rounds are still in
			// flight at WaitFor(iters).
			r.WaitFor(iters + staleness)
		}()
	}
	wg.Wait()
	for node, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", node, err)
		}
	}

	// The staged replica folds one exact integer sum per iteration, so
	// the expected value replays the same float32 accumulation order.
	perIter := float32(n * (n + 1) / 2)
	exact := func(initial float32) float32 {
		for i := 0; i < iters; i++ {
			initial += perIter
		}
		return initial
	}
	var first []*tensor.Matrix
	for node, r := range routers {
		params := make([]*tensor.Matrix, len(shapes))
		for i, s := range shapes {
			params[i] = tensor.NewMatrix(s[0], s[1])
		}
		r.Adopt(params)
		for pi, p := range params {
			for j, v := range p.Data {
				if exp := exact(allParams[0][pi].Data[j]); v != exp {
					t.Fatalf("n=%d node %d param %d[%d]: %g, want exactly %g",
						n, node, pi, j, v, exp)
				}
			}
		}
		if node == 0 {
			first = params
		} else {
			for pi, p := range params {
				for j, v := range p.Data {
					if math.Float32bits(v) != math.Float32bits(first[pi].Data[j]) {
						t.Fatalf("n=%d node %d param %d[%d] diverged bitwise from node 0", n, node, pi, j)
					}
				}
			}
		}
		if err := r.Err(); err != nil {
			t.Fatalf("node %d: %v", node, err)
		}
	}

	meshes[0].Close()
	for _, r := range routers {
		r.Stop()
	}
	deadline := time.Now().Add(5 * time.Second)
	for transport.OutstandingPayloadLeases() != baseline {
		if time.Now().After(deadline) {
			t.Fatalf("payload leases leaked: %d outstanding, baseline %d",
				transport.OutstandingPayloadLeases(), baseline)
		}
		time.Sleep(time.Millisecond)
	}
}

// Ring all-reduce rounds across worker counts, including the n=1
// degenerate local apply, serialized and overlapped, BSP and SSP.
func TestRouterRingRound(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 8} {
		runCollectiveCluster(t, n, RouteRing, false, 0)
		runCollectiveCluster(t, n, RouteRing, true, 0)
	}
	// Stale rounds keep two collectives of the same parameter in flight.
	runCollectiveCluster(t, 4, RouteRing, true, 2)
}

// Tree/ring hierarchy across shapes: full square grids (4, 9), a tail
// group of one (7: groups {0,1,2}{3,4,5}{6}), short tails (3, 5), the
// single-group degenerate (2), and a lone worker.
func TestRouterTreeRingRound(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 7, 9} {
		runCollectiveCluster(t, n, RouteTreeRing, false, 0)
		runCollectiveCluster(t, n, RouteTreeRing, true, 0)
	}
	runCollectiveCluster(t, 5, RouteTreeRing, true, 1)
}

// Replicas must stay bit-identical even when every node contributes
// different irrational-ish values — the rank-order fold guarantees all
// replicas apply the same association, so the float32 results agree to
// the last bit (the property the e2e PARAMS digest check rides on).
func TestRingFoldBitDeterminism(t *testing.T) {
	for _, route := range []Route{RouteRing, RouteTreeRing} {
		const n = 5
		const iters = 3
		shapes := [][2]int{{8, 7}}
		allParams := identicalParamsN(17, shapes, n)
		meshes := transport.NewChanCluster(n)
		routers := make([]*Router, n)
		for node := 0; node < n; node++ {
			r, err := NewRouter(Config{
				Mesh:    meshes[node],
				Plans:   []ParamPlan{{Index: 0, Rows: 8, Cols: 7, Route: route}},
				Params:  allParams[node],
				Scale:   -0.05,
				Overlap: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			routers[node] = r
			r.Start()
		}
		t.Cleanup(func() {
			meshes[0].Close()
			for _, r := range routers {
				r.Stop()
			}
		})
		var wg sync.WaitGroup
		for node := 0; node < n; node++ {
			node, r := node, routers[node]
			wg.Add(1)
			go func() {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(100 + node)))
				for iter := 0; iter < iters; iter++ {
					r.WaitFor(iter)
					g := tensor.NewMatrix(8, 7)
					g.Randn(rng, 1.0)
					if err := r.LaunchAll(iter, []*tensor.Matrix{g}); err != nil {
						t.Error(err)
						return
					}
				}
				r.WaitFor(iters)
			}()
		}
		wg.Wait()
		var ref *tensor.Matrix
		for node, r := range routers {
			p := []*tensor.Matrix{tensor.NewMatrix(8, 7)}
			r.Adopt(p)
			if node == 0 {
				ref = p[0]
				continue
			}
			for j, v := range p[0].Data {
				if math.Float32bits(v) != math.Float32bits(ref.Data[j]) {
					t.Fatalf("%v: node %d elem %d = %x, node 0 = %x (fold order diverged)",
						route, node, j, math.Float32bits(v), math.Float32bits(ref.Data[j]))
				}
			}
			if err := r.Err(); err != nil {
				t.Fatalf("node %d: %v", node, err)
			}
		}
	}
}

// The satellite's reroute round trip: PS→ring at iteration 2, ring→SFB
// at iteration 4, on a live 3-node cluster — exact sums through both
// handoffs, flip counts and replan events on every node, and zero
// payload-lease leaks. Run under -race in CI, this pins the
// ring syncer's receive-loop/barrier-swap synchronization.
func TestRouterRerouteRingRoundTrip(t *testing.T) {
	for _, overlap := range []bool{false, true} {
		baseline := transport.OutstandingPayloadLeases()

		const n = 3
		const iters = 6
		barriers := map[int]Route{2: RouteRing, 4: RouteSFB}
		shapes := [][2]int{{4, 6}, {2, 3}}
		allParams := identicalParamsN(23, shapes, n)

		meshes := transport.NewChanCluster(n)
		routers := make([]*Router, n)
		mtrs := make([]*metrics.Comm, n)
		for node := 0; node < n; node++ {
			mtrs[node] = metrics.NewComm()
			r, err := NewRouter(Config{
				Mesh: meshes[node],
				Plans: []ParamPlan{
					{Index: 0, Rows: 4, Cols: 6, Route: RoutePS},
					{Index: 1, Rows: 2, Cols: 3, Route: RoutePS},
				},
				Params:  allParams[node],
				Scale:   1,
				Overlap: overlap,
				Metrics: mtrs[node],
				SFSource: func(node int) func(index int) func() *tensor.SufficientFactor {
					return func(index int) func() *tensor.SufficientFactor {
						if index != 1 {
							return nil
						}
						return func() *tensor.SufficientFactor {
							u := tensor.NewMatrix(1, 2)
							u.Fill(float32(node + 1))
							v := tensor.NewMatrix(1, 3)
							v.Fill(1)
							return &tensor.SufficientFactor{U: u, V: v}
						}
					}
				}(node),
			})
			if err != nil {
				t.Fatal(err)
			}
			routers[node] = r
			r.Start()
		}

		var wg sync.WaitGroup
		errs := make([]error, n)
		for node := 0; node < n; node++ {
			node, r := node, routers[node]
			wg.Add(1)
			go func() {
				defer wg.Done()
				nextBarrier := 2
				r.ArmReroute(nextBarrier)
				for iter := 0; iter < iters; iter++ {
					if to, ok := barriers[iter]; ok {
						var err error
						if node == 0 {
							_, err = r.Reroute(iter, []ParamPlan{
								{Index: 0, Rows: 4, Cols: 6, Route: RoutePS},
								{Index: 1, Rows: 2, Cols: 3, Route: to},
							})
						} else {
							_, err = r.AwaitReroute(iter)
						}
						if err != nil {
							errs[node] = err
							return
						}
						nextBarrier += 2
						if nextBarrier < iters {
							r.ArmReroute(nextBarrier)
						}
					}
					r.WaitFor(iter)
					grads := []*tensor.Matrix{tensor.NewMatrix(4, 6), tensor.NewMatrix(2, 3)}
					for _, g := range grads {
						g.Fill(float32(node + 1))
					}
					if err := r.LaunchAll(iter, grads); err != nil {
						errs[node] = err
						return
					}
				}
				r.WaitFor(iters)
			}()
		}
		wg.Wait()
		for node, err := range errs {
			if err != nil {
				t.Fatalf("node %d: %v", node, err)
			}
		}

		exact := func(initial float32) float32 {
			for i := 0; i < iters; i++ {
				initial += 1 + 2 + 3 // one exact integer fold per iteration
			}
			return initial
		}
		for node, r := range routers {
			params := []*tensor.Matrix{tensor.NewMatrix(4, 6), tensor.NewMatrix(2, 3)}
			r.Adopt(params)
			for pi, p := range params {
				for j, v := range p.Data {
					if exp := exact(allParams[0][pi].Data[j]); v != exp {
						t.Fatalf("overlap=%v node %d param %d[%d]: %g, want exactly %g (ring handoff broke the sum)",
							overlap, node, pi, j, v, exp)
					}
				}
			}
			if got := r.Routes(); got[0] != RoutePS || got[1] != RouteSFB {
				t.Fatalf("node %d final routes %v, want [PS SFB]", node, got)
			}
			snap := mtrs[node].Snapshot()
			if len(snap.ReplanEvents) != 2 {
				t.Fatalf("node %d logged %d replan events, want 2: %+v", node, len(snap.ReplanEvents), snap.ReplanEvents)
			}
			e0, e1 := snap.ReplanEvents[0], snap.ReplanEvents[1]
			if e0.Iter != 2 || e0.Param != 1 || e0.From != "PS" || e0.To != "ring" {
				t.Fatalf("node %d first replan event %+v, want PS→ring", node, e0)
			}
			if e1.Iter != 4 || e1.Param != 1 || e1.From != "ring" || e1.To != "SFB" {
				t.Fatalf("node %d second replan event %+v, want ring→SFB", node, e1)
			}
			if r.Err() != nil {
				t.Fatalf("node %d: %v", node, r.Err())
			}
		}

		meshes[0].Close()
		for _, r := range routers {
			r.Stop()
		}
		deadline := time.Now().Add(5 * time.Second)
		for transport.OutstandingPayloadLeases() != baseline {
			if time.Now().After(deadline) {
				t.Fatalf("payload leases leaked across ring reroute: %d outstanding, baseline %d",
					transport.OutstandingPayloadLeases(), baseline)
			}
			time.Sleep(time.Millisecond)
		}
	}
}

// treeShape pins the two-level geometry: g = ⌈√n⌉ groups of capacity g.
func TestTreeShape(t *testing.T) {
	for _, tc := range []struct{ n, g, m int }{
		{1, 1, 1}, {2, 2, 1}, {3, 2, 2}, {4, 2, 2}, {5, 3, 2},
		{7, 3, 3}, {9, 3, 3}, {10, 4, 3}, {16, 4, 4}, {17, 5, 4},
	} {
		if g, m := treeShape(tc.n); g != tc.g || m != tc.m {
			t.Fatalf("treeShape(%d) = (%d,%d), want (%d,%d)", tc.n, g, m, tc.g, tc.m)
		}
	}
}

// segRange must partition any tensor exactly, remainder-first.
func TestSegRangeCoversTensor(t *testing.T) {
	for _, elems := range []int{0, 1, 3, 24, 25, 1000} {
		for _, n := range []int{1, 2, 3, 5, 8} {
			covered := 0
			for seg := 0; seg < n; seg++ {
				off, ln := segRange(seg, elems, n)
				if off != covered {
					t.Fatalf("elems=%d n=%d seg %d starts at %d, want %d", elems, n, seg, off, covered)
				}
				covered += ln
			}
			if covered != elems {
				t.Fatalf("elems=%d n=%d: segments cover %d", elems, n, covered)
			}
		}
	}
}
