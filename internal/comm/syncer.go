package comm

import (
	"fmt"

	"repro/internal/sfb"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// The syncers below are allocation-flat in steady state: outbound
// payloads are leased from the transport's reference-counted pool
// (dispatched send tasks hold their own references and release after
// the write), inbound payloads are decoded into per-syncer scratch that
// is reused across messages, and round state (KV contributions, SF
// factor sets) recycles through the shard's and aggregator's own free
// lists. Handle never retains msg.Payload — the router releases the
// frame's pooled lease as soon as Handle returns.
//
// Scratch discipline: fields named *Scratch and the decode/dequantize
// buffers are owned by the router's receive goroutine (Handle and
// everything it calls); Launch-side scratch (quantizers, batch slices)
// is owned by the compute goroutine or serialized by the send pool's
// per-stripe FIFO.

// stripeFor maps a (parameter, lane) pair onto a send-pool stripe. All
// traffic for one chunk travels on one stripe (FIFO per link); distinct
// chunks, servers, and broadcast destinations spread across stripes so
// their wire time overlaps.
func stripeFor(index, lane int) uint32 { return uint32(index*131 + lane*31) }

// ---- Parameter-server syncer ----------------------------------------------

// psSyncer runs the KV-store protocol for one dense parameter: the
// scaled update is split into chunks, each pushed to its owning shard;
// the shard folds a round when all workers reported and broadcasts the
// fresh chunk; the worker copies broadcast chunks into the staged
// replica and advances the clock when the last chunk of an iteration
// lands.
type psSyncer struct {
	r      *Router
	plan   ParamPlan
	chunks []chunkSpec
	// groups lists (server, chunk indices) in ascending server order so
	// one Launch emits one batched send per server, deterministically.
	groups []*serverGroup
	// got counts broadcast chunks received per iteration (guarded by
	// the router's stage mutex — broadcast handling already holds it).
	got map[int]int
	// fresh is server-side scratch for completed rounds; pushScratch
	// and bcastScratch are decode scratch. All three are touched only by
	// the receive goroutine.
	fresh        []float32
	pushScratch  []float32
	bcastScratch []float32
}

type serverGroup struct {
	server int
	cs     []int
	// msgs is the reusable batch-send scratch. Launch tasks for one
	// group share a stripe and therefore run FIFO, so the slice is
	// never touched by two iterations at once.
	msgs []transport.Message
}

func newPSSyncer(r *Router, plan ParamPlan) *psSyncer {
	s := &psSyncer{
		r:      r,
		plan:   plan,
		chunks: splitChunks(plan.Index, plan.Rows*plan.Cols, r.chunkElems, r.n),
		got:    make(map[int]int),
	}
	for server := 0; server < r.n; server++ {
		var cs []int
		for c, spec := range s.chunks {
			if spec.server == server {
				cs = append(cs, c)
			}
		}
		if len(cs) > 0 {
			s.groups = append(s.groups, &serverGroup{
				server: server,
				cs:     cs,
				msgs:   make([]transport.Message, 0, len(cs)),
			})
		}
	}
	return s
}

// initShard seeds the local shard with the chunks it owns.
func (s *psSyncer) initShard(initial *tensor.Matrix) {
	for _, spec := range s.chunks {
		if spec.server == s.r.id {
			s.r.shard.Init(spec.key, initial.Data[spec.off:spec.off+spec.n])
		}
	}
}

// Launch pushes every chunk of the scaled update to its shard, one
// batched send per server. Encoding happens inside the dispatched task,
// so with overlap enabled the compute goroutine moves on to the next
// layer while this one is still being serialized; update stays valid
// until the task runs (the router's update ring guarantees it).
func (s *psSyncer) Launch(iter int, update *tensor.Matrix) error {
	for _, g := range s.groups {
		g := g
		s.r.dispatch(stripeFor(s.plan.Index, g.server), func() error {
			msgs := g.msgs[:0]
			for _, c := range g.cs {
				spec := s.chunks[c]
				ref := transport.LeasePayload(tensor.Float32sWireBytes(spec.n))
				ref.SetBytes(tensor.AppendFloat32s(ref.Bytes(), update.Data[spec.off:spec.off+spec.n]))
				msg := transport.Message{
					Type:    transport.MsgPush,
					Layer:   int32(s.plan.Index),
					Chunk:   int32(c),
					Iter:    int32(iter),
					Payload: ref.Bytes(),
				}
				msg.AttachLease(ref)
				msgs = append(msgs, msg)
			}
			g.msgs = msgs
			err := s.r.mesh.SendBatch(g.server, msgs)
			for i := range msgs {
				msgs[i].ReleasePayload()
			}
			return err
		})
	}
	return nil
}

// Close removes the chunks this node's shard owned for the parameter —
// the successor route re-seeds whatever server state it needs from the
// staged replica. The reroute barrier drained every round first, so no
// pending contribution is dropped.
func (s *psSyncer) Close() {
	for _, spec := range s.chunks {
		if spec.server == s.r.id {
			s.r.shard.Remove(spec.key)
		}
	}
}

// Handle covers both roles: MsgPush at the owning shard, MsgBcast at
// every worker.
func (s *psSyncer) Handle(msg transport.Message) error {
	c := int(msg.Chunk)
	if c < 0 || c >= len(s.chunks) {
		return fmt.Errorf("comm: param %d: bad chunk %d", s.plan.Index, c)
	}
	spec := s.chunks[c]
	switch msg.Type {
	case transport.MsgPush:
		vals, _, err := tensor.DecodeFloat32sInto(s.pushScratch, msg.Payload)
		if err != nil {
			return err
		}
		s.pushScratch = vals
		return s.serverPush(c, int(msg.Iter), int(msg.From), vals)
	case transport.MsgBcast:
		vals, _, err := tensor.DecodeFloat32sInto(s.bcastScratch, msg.Payload)
		if err != nil {
			return err
		}
		s.bcastScratch = vals
		if len(vals) != spec.n {
			return fmt.Errorf("comm: param %d chunk %d: bcast len %d != %d", s.plan.Index, c, len(vals), spec.n)
		}
		iter := int(msg.Iter)
		s.r.stageMu.Lock()
		copy(s.r.staged[s.plan.Index].Data[spec.off:spec.off+spec.n], vals)
		s.got[iter]++
		done := s.got[iter] == len(s.chunks)
		if done {
			delete(s.got, iter)
		}
		s.r.stageMu.Unlock()
		if done {
			s.r.clock.Advance(s.plan.Index, iter)
		}
		return nil
	default:
		return fmt.Errorf("comm: param %d: unexpected message type %d on PS route", s.plan.Index, msg.Type)
	}
}

// serverPush feeds one chunk update into the local shard (which copies
// it, so the decode scratch is immediately reusable); on round
// completion the fresh chunk is encoded once into a leased payload and
// broadcast to every node (including self, via loopback), each
// dispatched send holding its own reference.
func (s *psSyncer) serverPush(c, iter, from int, vals []float32) error {
	spec := s.chunks[c]
	fresh, ready, err := s.r.shard.PushRoundInto(spec.key, iter, from, vals, s.fresh[:0])
	s.fresh = fresh
	if err != nil || !ready {
		return err
	}
	ref := transport.LeasePayload(tensor.Float32sWireBytes(len(fresh)))
	ref.SetBytes(tensor.AppendFloat32s(ref.Bytes(), fresh))
	msg := transport.Message{
		Type:    transport.MsgBcast,
		Layer:   int32(s.plan.Index),
		Chunk:   int32(c),
		Iter:    int32(iter),
		Payload: ref.Bytes(),
	}
	msg.AttachLease(ref)
	for p := 0; p < s.r.n; p++ {
		ref.Retain()
		s.r.dispatchSend(stripeFor(s.plan.Index, len(s.chunks)+c*s.r.n+p), p, msg)
	}
	ref.Release()
	return nil
}

// ---- Sufficient-factor syncer ----------------------------------------------

// sfbSyncer broadcasts rank-K sufficient factors peer-to-peer; each
// node reconstructs the summed dense gradient locally once all P
// contributions (one local, P−1 remote) have arrived.
type sfbSyncer struct {
	r    *Router
	plan ParamPlan
	agg  *sfb.Aggregator
	// sfScratch is the receive goroutine's decode target; the
	// aggregator copies offered factors, so it is reusable per message.
	sfScratch tensor.SufficientFactor
	// reconLocal/reconRemote are per-goroutine reconstruction targets:
	// a round can complete either on the compute goroutine (local
	// offer) or the receive goroutine (remote factor), and the two must
	// not share a buffer.
	reconLocal  tensor.Matrix
	reconRemote tensor.Matrix
}

func newSFBSyncer(r *Router, plan ParamPlan, bank *sfb.Bank) (*sfbSyncer, error) {
	if plan.SF == nil {
		return nil, fmt.Errorf("comm: param %d: RouteSFB needs an SF extractor", plan.Index)
	}
	return &sfbSyncer{
		r:         r,
		plan:      plan,
		agg:       bank.Ensure(plan.Index, r.n, plan.Rows, plan.Cols),
		sfScratch: tensor.SufficientFactor{U: new(tensor.Matrix), V: new(tensor.Matrix)},
	}, nil
}

// Launch extracts the factor, folds the −LR/P scaling into U so
// reconstructions are additive, encodes once into a leased payload
// fanned out to all peers, and offers the local copy (the aggregator
// copies it, so factors referencing live layer buffers are fine).
func (s *sfbSyncer) Launch(iter int, _ *tensor.Matrix) error {
	sf := s.plan.SF()
	sf.U.Scale(s.r.scale)
	ref := transport.LeasePayload(tensor.MatrixWireBytes(sf.U.Rows, sf.U.Cols) +
		tensor.MatrixWireBytes(sf.V.Rows, sf.V.Cols))
	ref.SetBytes(tensor.AppendSF(ref.Bytes(), sf))
	msg := transport.Message{
		Type:    transport.MsgSF,
		Layer:   int32(s.plan.Index),
		Iter:    int32(iter),
		Payload: ref.Bytes(),
	}
	msg.AttachLease(ref)
	for p := 0; p < s.r.n; p++ {
		if p == s.r.id {
			continue
		}
		ref.Retain()
		s.r.dispatchSend(stripeFor(s.plan.Index, p), p, msg)
	}
	ref.Release()
	return s.offer(int64(iter), s.r.id, sf, &s.reconLocal)
}

// Close drops the parameter's aggregator from the bank; the reroute
// barrier guarantees no partial factor set is in flight.
func (s *sfbSyncer) Close() {
	s.r.bank.Remove(s.plan.Index)
}

// Handle decodes a peer's factor into scratch and offers it to the
// aggregator.
func (s *sfbSyncer) Handle(msg transport.Message) error {
	if msg.Type != transport.MsgSF {
		return fmt.Errorf("comm: param %d: unexpected message type %d on SFB route", s.plan.Index, msg.Type)
	}
	if _, err := tensor.DecodeSFInto(&s.sfScratch, msg.Payload); err != nil {
		return err
	}
	return s.offer(int64(msg.Iter), int(msg.From), &s.sfScratch, &s.reconRemote)
}

// offer adds a worker's factor; on completion the summed gradient
// (reconstructed in worker-id order, deterministically, into the
// caller's per-goroutine scratch) lands in the staged replica and the
// clock advances.
func (s *sfbSyncer) offer(iter int64, from int, sf *tensor.SufficientFactor, recon *tensor.Matrix) error {
	done, err := s.agg.OfferInto(iter, from, sf, recon)
	if err != nil || !done {
		return err
	}
	s.r.stageMu.Lock()
	s.r.staged[s.plan.Index].Add(recon)
	s.r.stageMu.Unlock()
	s.r.clock.Advance(s.plan.Index, int(iter))
	return nil
}

// ---- 1-bit syncer -----------------------------------------------------------

// oneBitSyncer implements the CNTK baseline: pushes are 1-bit quantized
// with residual feedback, and the owning shard's broadcasts are
// quantized a second time against the replica view the workers hold
// (double-sided quantization), with the server carrying that residual.
type oneBitSyncer struct {
	r      *Router
	plan   ParamPlan
	key    string
	server int
	push   *tensor.OneBitQuantizer
	pushQ  tensor.QuantizedGrad // Launch-side quantize scratch (compute goroutine)
	// Receive-goroutine scratch (worker and server roles).
	recvQ tensor.QuantizedGrad
	dense tensor.Matrix
	// Server-side state (zero elsewhere).
	bcast    *tensor.OneBitQuantizer
	view     []float32
	fresh    []float32
	delta    []float32
	deltaMat tensor.Matrix // persistent wrapper over delta
	bcastQ   tensor.QuantizedGrad
}

func newOneBitSyncer(r *Router, plan ParamPlan, initial *tensor.Matrix) *oneBitSyncer {
	s := &oneBitSyncer{
		r:      r,
		plan:   plan,
		key:    chunkKey(plan.Index, 0),
		server: plan.Index % r.n,
		push:   tensor.NewOneBitQuantizer(plan.Rows, plan.Cols),
	}
	if s.server == r.id {
		s.bcast = tensor.NewOneBitQuantizer(plan.Rows, plan.Cols)
		s.view = make([]float32, len(initial.Data))
		copy(s.view, initial.Data)
		r.shard.Init(s.key, initial.Data)
	}
	return s
}

// leaseQuantized encodes q into a pooled payload and returns the lease.
func leaseQuantized(q *tensor.QuantizedGrad) *transport.PayloadRef {
	ref := transport.LeasePayload(16 + 8*len(q.Bits))
	ref.SetBytes(tensor.AppendQuantized(ref.Bytes(), q))
	return ref
}

// Launch quantizes the scaled update (mutating the local residual, so
// this must stay on the compute goroutine) and ships the compact
// encoding; only the send itself is dispatched, holding the payload
// lease until the write completes.
func (s *oneBitSyncer) Launch(iter int, update *tensor.Matrix) error {
	q := s.push.QuantizeInto(&s.pushQ, update)
	ref := leaseQuantized(q)
	msg := transport.Message{
		Type:    transport.MsgQuantPush,
		Layer:   int32(s.plan.Index),
		Iter:    int32(iter),
		Payload: ref.Bytes(),
	}
	msg.AttachLease(ref)
	s.r.dispatchSend(stripeFor(s.plan.Index, s.server), s.server, msg)
	return nil
}

// Close removes the server-role KV pair. The quantizer residuals die
// with the syncer: every node drops them at the same barrier, so
// replicas stay in lockstep (a successor 1-bit syncer would restart
// with zero residual everywhere).
func (s *oneBitSyncer) Close() {
	if s.server == s.r.id {
		s.r.shard.Remove(s.key)
	}
}

// Handle covers the shard role (quantized pushes) and the worker role
// (quantized broadcast deltas). Both decode into receive-goroutine
// scratch; nothing from msg survives the call.
func (s *oneBitSyncer) Handle(msg transport.Message) error {
	switch msg.Type {
	case transport.MsgQuantPush:
		if _, err := tensor.DecodeQuantizedInto(&s.recvQ, msg.Payload); err != nil {
			return err
		}
		s.dense.Resize(s.recvQ.Rows, s.recvQ.Cols)
		s.recvQ.DequantizeInto(&s.dense)
		return s.serverPush(int(msg.Iter), int(msg.From), s.dense.Data)
	case transport.MsgQuantBcast:
		if _, err := tensor.DecodeQuantizedInto(&s.recvQ, msg.Payload); err != nil {
			return err
		}
		s.r.stageMu.Lock()
		s.recvQ.AddDequantizedInto(s.r.staged[s.plan.Index])
		s.r.stageMu.Unlock()
		s.r.clock.Advance(s.plan.Index, int(msg.Iter))
		return nil
	default:
		return fmt.Errorf("comm: param %d: unexpected message type %d on 1-bit route", s.plan.Index, msg.Type)
	}
}

func (s *oneBitSyncer) serverPush(iter, from int, vals []float32) error {
	fresh, ready, err := s.r.shard.PushRoundInto(s.key, iter, from, vals, s.fresh[:0])
	s.fresh = fresh
	if err != nil || !ready {
		return err
	}
	// Quantize the broadcast against the workers' view and advance the
	// view by what the quantization actually transmitted.
	if cap(s.delta) < len(fresh) {
		s.delta = make([]float32, len(fresh))
	}
	delta := s.delta[:len(fresh)]
	for i, v := range fresh {
		delta[i] = v - s.view[i]
	}
	s.deltaMat = tensor.Matrix{Rows: s.plan.Rows, Cols: s.plan.Cols, Data: delta}
	q := s.bcast.QuantizeInto(&s.bcastQ, &s.deltaMat)
	s.dense.Resize(s.plan.Rows, s.plan.Cols)
	q.DequantizeInto(&s.dense)
	for i := range s.view {
		s.view[i] += s.dense.Data[i]
	}
	ref := leaseQuantized(q)
	msg := transport.Message{
		Type:    transport.MsgQuantBcast,
		Layer:   int32(s.plan.Index),
		Iter:    int32(iter),
		Payload: ref.Bytes(),
	}
	msg.AttachLease(ref)
	for p := 0; p < s.r.n; p++ {
		ref.Retain()
		s.r.dispatchSend(stripeFor(s.plan.Index, 1+p), p, msg)
	}
	ref.Release()
	return nil
}
