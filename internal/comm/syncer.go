package comm

import (
	"fmt"

	"repro/internal/sfb"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// stripeFor maps a (parameter, lane) pair onto a send-pool stripe. All
// traffic for one chunk travels on one stripe (FIFO per link); distinct
// chunks, servers, and broadcast destinations spread across stripes so
// their wire time overlaps.
func stripeFor(index, lane int) uint32 { return uint32(index*131 + lane*31) }

// ---- Parameter-server syncer ----------------------------------------------

// psSyncer runs the KV-store protocol for one dense parameter: the
// scaled update is split into chunks, each pushed to its owning shard;
// the shard folds a round when all workers reported and broadcasts the
// fresh chunk; the worker copies broadcast chunks into the staged
// replica and advances the clock when the last chunk of an iteration
// lands.
type psSyncer struct {
	r      *Router
	plan   ParamPlan
	chunks []chunkSpec
	// groups lists (server, chunk indices) in ascending server order so
	// one Launch emits one batched send per server, deterministically.
	groups []serverGroup
	// got counts broadcast chunks received per iteration (guarded by
	// the router's stage mutex — broadcast handling already holds it).
	got map[int]int
	// fresh is server-side scratch for completed rounds, reused across
	// rounds (the receive goroutine is the only writer).
	fresh []float32
}

type serverGroup struct {
	server int
	cs     []int
}

func newPSSyncer(r *Router, plan ParamPlan) *psSyncer {
	s := &psSyncer{
		r:      r,
		plan:   plan,
		chunks: splitChunks(plan.Index, plan.Rows*plan.Cols, r.chunkElems, r.n),
		got:    make(map[int]int),
	}
	for server := 0; server < r.n; server++ {
		var cs []int
		for c, spec := range s.chunks {
			if spec.server == server {
				cs = append(cs, c)
			}
		}
		if len(cs) > 0 {
			s.groups = append(s.groups, serverGroup{server: server, cs: cs})
		}
	}
	return s
}

// initShard seeds the local shard with the chunks it owns.
func (s *psSyncer) initShard(initial *tensor.Matrix) {
	for _, spec := range s.chunks {
		if spec.server == s.r.id {
			s.r.shard.Init(spec.key, initial.Data[spec.off:spec.off+spec.n])
		}
	}
}

// Launch pushes every chunk of the scaled update to its shard, one
// batched send per server. Encoding happens inside the dispatched task,
// so with overlap enabled the compute goroutine moves on to the next
// layer while this one is still being serialized.
func (s *psSyncer) Launch(iter int, update *tensor.Matrix) error {
	for _, g := range s.groups {
		server, cs := g.server, g.cs
		s.r.dispatch(stripeFor(s.plan.Index, server), func() error {
			msgs := make([]transport.Message, 0, len(cs))
			for _, c := range cs {
				spec := s.chunks[c]
				msgs = append(msgs, transport.Message{
					Type:    transport.MsgPush,
					Layer:   int32(s.plan.Index),
					Chunk:   int32(c),
					Iter:    int32(iter),
					Payload: tensor.AppendFloat32s(nil, update.Data[spec.off:spec.off+spec.n]),
				})
			}
			return s.r.mesh.SendBatch(server, msgs)
		})
	}
	return nil
}

// Handle covers both roles: MsgPush at the owning shard, MsgBcast at
// every worker.
func (s *psSyncer) Handle(msg transport.Message) error {
	c := int(msg.Chunk)
	if c < 0 || c >= len(s.chunks) {
		return fmt.Errorf("comm: param %d: bad chunk %d", s.plan.Index, c)
	}
	spec := s.chunks[c]
	switch msg.Type {
	case transport.MsgPush:
		vals, _, err := tensor.DecodeFloat32s(msg.Payload)
		if err != nil {
			return err
		}
		return s.serverPush(c, int(msg.Iter), int(msg.From), vals)
	case transport.MsgBcast:
		vals, _, err := tensor.DecodeFloat32s(msg.Payload)
		if err != nil {
			return err
		}
		if len(vals) != spec.n {
			return fmt.Errorf("comm: param %d chunk %d: bcast len %d != %d", s.plan.Index, c, len(vals), spec.n)
		}
		iter := int(msg.Iter)
		s.r.stageMu.Lock()
		copy(s.r.staged[s.plan.Index].Data[spec.off:spec.off+spec.n], vals)
		s.got[iter]++
		done := s.got[iter] == len(s.chunks)
		if done {
			delete(s.got, iter)
		}
		s.r.stageMu.Unlock()
		if done {
			s.r.clock.Advance(s.plan.Index, iter)
		}
		return nil
	default:
		return fmt.Errorf("comm: param %d: unexpected message type %d on PS route", s.plan.Index, msg.Type)
	}
}

// serverPush feeds one chunk update into the local shard; on round
// completion the fresh chunk is encoded once and broadcast to every
// node (including self, via loopback). The pushing worker's id rides
// along so the shard can fold contributions in a deterministic order.
func (s *psSyncer) serverPush(c, iter, from int, vals []float32) error {
	spec := s.chunks[c]
	fresh, ready, err := s.r.shard.PushRoundInto(spec.key, iter, from, vals, s.fresh[:0])
	s.fresh = fresh
	if err != nil || !ready {
		return err
	}
	payload := tensor.AppendFloat32s(nil, fresh)
	msg := transport.Message{
		Type:    transport.MsgBcast,
		Layer:   int32(s.plan.Index),
		Chunk:   int32(c),
		Iter:    int32(iter),
		Payload: payload,
	}
	for p := 0; p < s.r.n; p++ {
		p := p
		s.r.dispatch(stripeFor(s.plan.Index, len(s.chunks)+c*s.r.n+p), func() error {
			return s.r.mesh.Send(p, msg)
		})
	}
	return nil
}

// ---- Sufficient-factor syncer ----------------------------------------------

// sfbSyncer broadcasts rank-K sufficient factors peer-to-peer; each
// node reconstructs the summed dense gradient locally once all P
// contributions (one local, P−1 remote) have arrived.
type sfbSyncer struct {
	r    *Router
	plan ParamPlan
	agg  *sfb.Aggregator
}

func newSFBSyncer(r *Router, plan ParamPlan, bank *sfb.Bank) (*sfbSyncer, error) {
	if plan.SF == nil {
		return nil, fmt.Errorf("comm: param %d: RouteSFB needs an SF extractor", plan.Index)
	}
	return &sfbSyncer{
		r:    r,
		plan: plan,
		agg:  bank.Ensure(plan.Index, r.n, plan.Rows, plan.Cols),
	}, nil
}

// Launch extracts the factor, folds the −LR/P scaling into U so
// reconstructions are additive, fans the encoding out to all peers, and
// offers the local copy.
func (s *sfbSyncer) Launch(iter int, _ *tensor.Matrix) error {
	sf := s.plan.SF()
	sf.U.Scale(s.r.scale)
	payload := tensor.AppendSF(nil, sf)
	for p := 0; p < s.r.n; p++ {
		if p == s.r.id {
			continue
		}
		p := p
		msg := transport.Message{
			Type:    transport.MsgSF,
			Layer:   int32(s.plan.Index),
			Iter:    int32(iter),
			Payload: payload,
		}
		s.r.dispatch(stripeFor(s.plan.Index, p), func() error {
			return s.r.mesh.Send(p, msg)
		})
	}
	return s.offer(int64(iter), s.r.id, sf)
}

// Handle decodes a peer's factor and offers it to the aggregator.
func (s *sfbSyncer) Handle(msg transport.Message) error {
	if msg.Type != transport.MsgSF {
		return fmt.Errorf("comm: param %d: unexpected message type %d on SFB route", s.plan.Index, msg.Type)
	}
	sf, _, err := tensor.DecodeSF(msg.Payload)
	if err != nil {
		return err
	}
	return s.offer(int64(msg.Iter), int(msg.From), sf)
}

// offer adds a worker's factor; on completion the summed gradient
// (reconstructed in worker-id order, deterministically) lands in the
// staged replica and the clock advances.
func (s *sfbSyncer) offer(iter int64, from int, sf *tensor.SufficientFactor) error {
	grad, done, err := s.agg.Offer(iter, from, sf)
	if err != nil || !done {
		return err
	}
	s.r.stageMu.Lock()
	s.r.staged[s.plan.Index].Add(grad)
	s.r.stageMu.Unlock()
	s.r.clock.Advance(s.plan.Index, int(iter))
	return nil
}

// ---- 1-bit syncer -----------------------------------------------------------

// oneBitSyncer implements the CNTK baseline: pushes are 1-bit quantized
// with residual feedback, and the owning shard's broadcasts are
// quantized a second time against the replica view the workers hold
// (double-sided quantization), with the server carrying that residual.
type oneBitSyncer struct {
	r      *Router
	plan   ParamPlan
	key    string
	server int
	push   *tensor.OneBitQuantizer
	// Server-side state (nil elsewhere).
	bcast *tensor.OneBitQuantizer
	view  []float32
	fresh []float32 // round scratch, receive goroutine only
}

func newOneBitSyncer(r *Router, plan ParamPlan, initial *tensor.Matrix) *oneBitSyncer {
	s := &oneBitSyncer{
		r:      r,
		plan:   plan,
		key:    chunkKey(plan.Index, 0),
		server: plan.Index % r.n,
		push:   tensor.NewOneBitQuantizer(plan.Rows, plan.Cols),
	}
	if s.server == r.id {
		s.bcast = tensor.NewOneBitQuantizer(plan.Rows, plan.Cols)
		s.view = make([]float32, len(initial.Data))
		copy(s.view, initial.Data)
		r.shard.Init(s.key, initial.Data)
	}
	return s
}

// Launch quantizes the scaled update (mutating the local residual, so
// this must stay on the compute goroutine) and ships the compact
// encoding; only the send itself is dispatched.
func (s *oneBitSyncer) Launch(iter int, update *tensor.Matrix) error {
	q := s.push.Quantize(update)
	msg := transport.Message{
		Type:    transport.MsgQuantPush,
		Layer:   int32(s.plan.Index),
		Iter:    int32(iter),
		Payload: tensor.AppendQuantized(nil, q),
	}
	s.r.dispatch(stripeFor(s.plan.Index, s.server), func() error {
		return s.r.mesh.Send(s.server, msg)
	})
	return nil
}

// Handle covers the shard role (quantized pushes) and the worker role
// (quantized broadcast deltas).
func (s *oneBitSyncer) Handle(msg transport.Message) error {
	switch msg.Type {
	case transport.MsgQuantPush:
		q, _, err := tensor.DecodeQuantized(msg.Payload)
		if err != nil {
			return err
		}
		return s.serverPush(int(msg.Iter), int(msg.From), q.Dequantize().Data)
	case transport.MsgQuantBcast:
		q, _, err := tensor.DecodeQuantized(msg.Payload)
		if err != nil {
			return err
		}
		s.r.stageMu.Lock()
		q.AddDequantizedInto(s.r.staged[s.plan.Index])
		s.r.stageMu.Unlock()
		s.r.clock.Advance(s.plan.Index, int(msg.Iter))
		return nil
	default:
		return fmt.Errorf("comm: param %d: unexpected message type %d on 1-bit route", s.plan.Index, msg.Type)
	}
}

func (s *oneBitSyncer) serverPush(iter, from int, vals []float32) error {
	fresh, ready, err := s.r.shard.PushRoundInto(s.key, iter, from, vals, s.fresh[:0])
	s.fresh = fresh
	if err != nil || !ready {
		return err
	}
	// Quantize the broadcast against the workers' view and advance the
	// view by what the quantization actually transmitted.
	delta := make([]float32, len(fresh))
	for i, v := range fresh {
		delta[i] = v - s.view[i]
	}
	q := s.bcast.Quantize(tensor.FromSlice(s.plan.Rows, s.plan.Cols, delta))
	rec := q.Dequantize()
	for i := range s.view {
		s.view[i] += rec.Data[i]
	}
	msg := transport.Message{
		Type:    transport.MsgQuantBcast,
		Layer:   int32(s.plan.Index),
		Iter:    int32(iter),
		Payload: tensor.AppendQuantized(nil, q),
	}
	for p := 0; p < s.r.n; p++ {
		p := p
		s.r.dispatch(stripeFor(s.plan.Index, 1+p), func() error {
			return s.r.mesh.Send(p, msg)
		})
	}
	return nil
}
