package comm

import (
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// rerouteCluster trains a 3-node cluster through two replan barriers —
// PS→SFB at iteration 2, back SFB→PS at iteration 4 — and checks the
// handoff invariants: the synchronized math is unaffected (every
// replica ends at initial + iters·Σ(node+1) exactly), every node lands
// on the same final routes, both flips are logged, and not a single
// payload lease outlives the run (the satellite's leak gauge:
// transport.OutstandingPayloadLeases returns to its baseline). Run
// under -race in CI, this also pins the receive-loop/barrier-swap
// synchronization.
func rerouteCluster(t *testing.T, overlap bool, chunkElems int) {
	t.Helper()
	baseline := transport.OutstandingPayloadLeases()

	const n = 3
	const iters = 6
	barriers := map[int]Route{2: RouteSFB, 4: RoutePS} // iteration → new route for param 1
	shapes := [][2]int{{4, 6}, {2, 3}}
	allParams := identicalParams(11, shapes)

	meshes := transport.NewChanCluster(n)
	routers := make([]*Router, n)
	mtrs := make([]*metrics.Comm, n)
	for node := 0; node < n; node++ {
		mtrs[node] = metrics.NewComm()
		r, err := NewRouter(Config{
			Mesh: meshes[node],
			Plans: []ParamPlan{
				{Index: 0, Rows: 4, Cols: 6, Route: RoutePS},
				{Index: 1, Rows: 2, Cols: 3, Route: RoutePS},
			},
			Params:     allParams[node],
			Scale:      1,
			Overlap:    overlap,
			ChunkElems: chunkElems,
			Metrics:    mtrs[node],
			SFSource: func(node int) func(index int) func() *tensor.SufficientFactor {
				return func(index int) func() *tensor.SufficientFactor {
					if index != 1 {
						return nil
					}
					return func() *tensor.SufficientFactor {
						// Rank-1 factor reconstructing to a 2×3 gradient
						// with every element node+1 (UᵀV, U 1×2, V 1×3).
						u := tensor.NewMatrix(1, 2)
						u.Fill(float32(node + 1))
						v := tensor.NewMatrix(1, 3)
						v.Fill(1)
						return &tensor.SufficientFactor{U: u, V: v}
					}
				}
			}(node),
		})
		if err != nil {
			t.Fatal(err)
		}
		routers[node] = r
		r.Start()
	}

	var wg sync.WaitGroup
	errs := make([]error, n)
	flipCounts := make([][]int, n)
	for node := 0; node < n; node++ {
		node, r := node, routers[node]
		wg.Add(1)
		go func() {
			defer wg.Done()
			nextBarrier := 2
			r.ArmReroute(nextBarrier)
			for iter := 0; iter < iters; iter++ {
				if to, ok := barriers[iter]; ok {
					var flips int
					var err error
					if node == 0 {
						plans := append([]ParamPlan(nil), []ParamPlan{
							{Index: 0, Rows: 4, Cols: 6, Route: RoutePS},
							{Index: 1, Rows: 2, Cols: 3, Route: to},
						}...)
						flips, err = r.Reroute(iter, plans)
					} else {
						flips, err = r.AwaitReroute(iter)
					}
					if err != nil {
						errs[node] = err
						return
					}
					flipCounts[node] = append(flipCounts[node], flips)
					nextBarrier += 2
					if nextBarrier < iters {
						r.ArmReroute(nextBarrier)
					}
				}
				r.WaitFor(iter)
				grads := []*tensor.Matrix{tensor.NewMatrix(4, 6), tensor.NewMatrix(2, 3)}
				for _, g := range grads {
					g.Fill(float32(node + 1))
				}
				if err := r.LaunchAll(iter, grads); err != nil {
					errs[node] = err
					return
				}
			}
			r.WaitFor(iters) // drain the final round
		}()
	}
	wg.Wait()
	for node, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", node, err)
		}
	}

	want := float32(iters * (1 + 2 + 3))
	for node, r := range routers {
		params := []*tensor.Matrix{tensor.NewMatrix(4, 6), tensor.NewMatrix(2, 3)}
		r.Adopt(params)
		for pi, p := range params {
			for j, v := range p.Data {
				if exp := allParams[0][pi].Data[j] + want; absDiff(v, exp) > 1e-4 {
					t.Fatalf("node %d param %d[%d]: %g, want %g (reroute broke the sum)",
						node, pi, j, v, exp)
				}
			}
		}
		if got := r.Routes(); got[0] != RoutePS || got[1] != RoutePS {
			t.Fatalf("node %d final routes %v, want [PS PS] after the round trip", node, got)
		}
		if len(flipCounts[node]) != 2 || flipCounts[node][0] != 1 || flipCounts[node][1] != 1 {
			t.Fatalf("node %d flip counts %v, want [1 1]", node, flipCounts[node])
		}
		snap := mtrs[node].Snapshot()
		if len(snap.ReplanEvents) != 2 {
			t.Fatalf("node %d logged %d replan events, want 2: %+v", node, len(snap.ReplanEvents), snap.ReplanEvents)
		}
		e0, e1 := snap.ReplanEvents[0], snap.ReplanEvents[1]
		if e0.Iter != 2 || e0.Param != 1 || e0.From != "PS" || e0.To != "SFB" {
			t.Fatalf("node %d first replan event %+v", node, e0)
		}
		if e1.Iter != 4 || e1.Param != 1 || e1.From != "SFB" || e1.To != "PS" {
			t.Fatalf("node %d second replan event %+v", node, e1)
		}
		if r.Err() != nil {
			t.Fatalf("node %d: %v", node, r.Err())
		}
	}

	meshes[0].Close()
	for _, r := range routers {
		r.Stop()
	}
	// Every pooled payload that crossed the reroute — parked frames
	// included — must have been released.
	deadline := time.Now().Add(5 * time.Second)
	for transport.OutstandingPayloadLeases() != baseline {
		if time.Now().After(deadline) {
			t.Fatalf("payload leases leaked across reroute: %d outstanding, baseline %d",
				transport.OutstandingPayloadLeases(), baseline)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestRouterRerouteMidTraining(t *testing.T) {
	for _, tc := range []struct {
		name       string
		overlap    bool
		chunkElems int
	}{
		{"serialized", false, 0},
		{"overlap", true, 0},
		{"overlap-chunked", true, 5},
	} {
		t.Run(tc.name, func(t *testing.T) { rerouteCluster(t, tc.overlap, tc.chunkElems) })
	}
}

// A no-change barrier still releases every worker: Reroute(nil) keeps
// the routes, reports zero flips, and training continues.
func TestRouterRerouteNoChange(t *testing.T) {
	const n = 2
	shapes := [][2]int{{2, 2}}
	allParams := identicalParams(5, shapes)
	meshes := transport.NewChanCluster(n)
	routers := make([]*Router, n)
	for node := 0; node < n; node++ {
		r, err := NewRouter(Config{
			Mesh:   meshes[node],
			Plans:  []ParamPlan{{Index: 0, Rows: 2, Cols: 2, Route: RoutePS}},
			Params: allParams[node],
			Scale:  1,
		})
		if err != nil {
			t.Fatal(err)
		}
		routers[node] = r
		r.Start()
	}
	t.Cleanup(func() {
		meshes[0].Close()
		for _, r := range routers {
			r.Stop()
		}
	})
	var wg sync.WaitGroup
	errs := make([]error, n)
	for node := 0; node < n; node++ {
		node, r := node, routers[node]
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.ArmReroute(1)
			for iter := 0; iter < 2; iter++ {
				if iter == 1 {
					var flips int
					var err error
					if node == 0 {
						flips, err = r.Reroute(1, nil)
					} else {
						flips, err = r.AwaitReroute(1)
					}
					if err != nil {
						errs[node] = err
						return
					}
					if flips != 0 {
						errs[node] = errUnexpectedFlips
						return
					}
				}
				r.WaitFor(iter)
				g := tensor.NewMatrix(2, 2)
				g.Fill(1)
				if err := r.LaunchAll(iter, []*tensor.Matrix{g}); err != nil {
					errs[node] = err
					return
				}
			}
			r.WaitFor(2)
		}()
	}
	wg.Wait()
	for node, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", node, err)
		}
	}
}

var errUnexpectedFlips = errFlips{}

type errFlips struct{}

func (errFlips) Error() string { return "no-change barrier reported flips" }

// A worker parked at a replan barrier must observe a router failure —
// the REPLAN frame it is waiting for will never arrive once a peer is
// gone, and hanging there would wedge the cluster teardown.
func TestRouterAwaitRerouteUnblocksOnFailure(t *testing.T) {
	const n = 2
	meshes := transport.NewChanCluster(n)
	routers := make([]*Router, n)
	for node := 0; node < n; node++ {
		r, err := NewRouter(Config{
			Mesh:   meshes[node],
			Plans:  []ParamPlan{{Index: 0, Rows: 2, Cols: 2, Route: RoutePS}},
			Params: []*tensor.Matrix{tensor.NewMatrix(2, 2)},
			Scale:  1,
		})
		if err != nil {
			t.Fatal(err)
		}
		routers[node] = r
		r.Start()
	}
	t.Cleanup(func() {
		meshes[0].Close()
		for _, r := range routers {
			r.Stop()
		}
	})
	// Node 1 arms the barrier and waits for a decision that will never
	// come (node 0 never calls Reroute).
	routers[1].ArmReroute(0)
	done := make(chan error, 1)
	go func() {
		_, err := routers[1].AwaitReroute(0)
		done <- err
	}()
	// Poison node 1's receive loop with a malformed frame.
	if err := meshes[0].Send(1, transport.Message{Type: transport.MsgPush, Layer: 99}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("AwaitReroute returned nil after the router failed")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("AwaitReroute still parked 10s after the router failed")
	}
}

// An unarmed barrier is a protocol bug and must surface as an error,
// not hang.
func TestRouterAwaitRerouteUnarmed(t *testing.T) {
	meshes := transport.NewChanCluster(1)
	defer meshes[0].Close()
	r, err := NewRouter(Config{
		Mesh:   meshes[0],
		Plans:  []ParamPlan{{Index: 0, Rows: 2, Cols: 2, Route: RoutePS}},
		Params: []*tensor.Matrix{tensor.NewMatrix(2, 2)},
		Scale:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	defer r.Stop()
	if _, err := r.AwaitReroute(0); err == nil {
		t.Fatal("AwaitReroute on an unarmed barrier must error")
	}
}
