package comm

import (
	"sync"
	"testing"

	"repro/internal/metrics"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// A metered PS round must attribute every non-loopback frame to its
// parameter, count one launch round per param, record the shard's
// folds, and time the WaitFor stall — the counters the -metrics-dump
// report is built from.
func TestRouterMetricsAttribution(t *testing.T) {
	const n = 3
	shapes := [][2]int{{4, 6}, {1, 6}}
	allParams := identicalParams(7, shapes)
	comms := make([]*metrics.Comm, n)
	routers := newTestCluster(t, n, func(node int, mesh transport.Mesh) *Router {
		comms[node] = metrics.NewComm()
		r, err := NewRouter(Config{
			Mesh: mesh,
			Plans: []ParamPlan{
				{Index: 0, Name: "w", Rows: 4, Cols: 6, Route: RoutePS},
				{Index: 1, Name: "b", Rows: 1, Cols: 6, Route: RoutePS},
			},
			Params:  allParams[node],
			Scale:   1,
			Metrics: comms[node],
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	})

	var wg sync.WaitGroup
	for node, r := range routers {
		node, r := node, r
		wg.Add(1)
		go func() {
			defer wg.Done()
			grads := []*tensor.Matrix{tensor.NewMatrix(4, 6), tensor.NewMatrix(1, 6)}
			for _, g := range grads {
				g.Fill(float32(node + 1))
			}
			if err := r.LaunchAll(0, grads); err != nil {
				t.Error(err)
				return
			}
			r.WaitFor(1)
		}()
	}
	wg.Wait()

	for node := range routers {
		snap := comms[node].Snapshot()
		if len(snap.Params) != 2 {
			t.Fatalf("node %d: %d param blocks", node, len(snap.Params))
		}
		for _, p := range snap.Params {
			if p.Rounds != 1 {
				t.Fatalf("node %d param %d: %d rounds, want 1", node, p.Index, p.Rounds)
			}
			// Every node ships its push off-node unless it owns the
			// shard, and receives broadcasts from remote shards; with
			// param 0 on shard 0 and param 1 on shard 1, every node has
			// some remote traffic on at least one param.
			if p.BytesSent == 0 && p.BytesRecv == 0 {
				t.Fatalf("node %d param %d (%s): no traffic attributed", node, p.Index, p.Name)
			}
			if p.Name == "" || p.Route != "PS" {
				t.Fatalf("node %d: param metadata %+v", node, p)
			}
		}
		if snap.Stall.Count == 0 {
			t.Fatalf("node %d: WaitFor stall not recorded", node)
		}
	}

	// The shard owners folded one round per owned param: across the
	// cluster, 2 params × 1 iteration.
	folds := int64(0)
	for node := range routers {
		folds += comms[node].Snapshot().KV.RoundsFolded
	}
	if folds != 2 {
		t.Fatalf("%d KV rounds folded across the cluster, want 2", folds)
	}
}

// The headline accounting: the same tensor synchronized over SFB must
// move fewer bytes than over the PS route, and the snapshot's savings
// field must reflect it. This is the in-process version of the claim
// the e2e suite proves across real processes.
func TestMetricsShowSFBBeatingPS(t *testing.T) {
	const n = 3
	const rows, cols = 32, 64
	run := func(route Route) int64 {
		shapes := [][2]int{{rows, cols}}
		allParams := identicalParams(11, shapes)
		comms := make([]*metrics.Comm, n)
		routers := newTestCluster(t, n, func(node int, mesh transport.Mesh) *Router {
			comms[node] = metrics.NewComm()
			plan := ParamPlan{Index: 0, Name: "fc.W", Rows: rows, Cols: cols, Route: route,
				// Table 1's colocated PS baseline for P1=P2=n, as the
				// planner would populate it.
				PSEquivBytes: 4 * 2 * rows * cols * (2*n - 2) / n}
			if route == RouteSFB {
				node := node
				plan.SF = func() *tensor.SufficientFactor {
					// A rank-1 factor with batch-2-style K=2 rows.
					u := tensor.NewMatrix(2, rows)
					v := tensor.NewMatrix(2, cols)
					u.Fill(float32(node + 1))
					v.Fill(0.5)
					return &tensor.SufficientFactor{U: u, V: v}
				}
			}
			r, err := NewRouter(Config{
				Mesh:    mesh,
				Plans:   []ParamPlan{plan},
				Params:  allParams[node],
				Scale:   1,
				Metrics: comms[node],
			})
			if err != nil {
				t.Fatal(err)
			}
			return r
		})
		var wg sync.WaitGroup
		for _, r := range routers {
			r := r
			wg.Add(1)
			go func() {
				defer wg.Done()
				var grads []*tensor.Matrix
				g := tensor.NewMatrix(rows, cols)
				g.Fill(1)
				grads = append(grads, g)
				if err := r.LaunchAll(0, grads); err != nil {
					t.Error(err)
					return
				}
				r.WaitFor(1)
			}()
		}
		wg.Wait()
		total := int64(0)
		for node := range routers {
			snap := comms[node].Snapshot()
			total += snap.Totals.BytesSent
			if route == RouteSFB {
				if snap.Totals.SFBParams != 1 {
					t.Fatalf("node %d: sfb_params %d", node, snap.Totals.SFBParams)
				}
				if snap.Totals.SFBSavingsBytes <= 0 {
					t.Fatalf("node %d: no SFB savings recorded", node)
				}
			}
		}
		return total
	}
	psBytes := run(RoutePS)
	sfbBytes := run(RouteSFB)
	if sfbBytes >= psBytes {
		t.Fatalf("SFB moved %d bytes, PS %d — hybrid routing must move strictly fewer", sfbBytes, psBytes)
	}
}
