package comm

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/tensor"
	"repro/internal/transport"
)

func TestSplitChunksCoversTensor(t *testing.T) {
	for _, tc := range []struct {
		elems, chunkElems, servers, wantChunks int
	}{
		{100, 0, 4, 1},   // unchunked
		{100, 100, 4, 1}, // exactly one chunk
		{100, 7, 4, 15},  // misaligned tail
		{100, 33, 3, 4},  // tail chunk of 1
		{5, 1000, 2, 1},  // chunk bigger than tensor
	} {
		specs := splitChunks(3, tc.elems, tc.chunkElems, tc.servers)
		if len(specs) != tc.wantChunks {
			t.Fatalf("%+v: got %d chunks", tc, len(specs))
		}
		covered := 0
		for c, spec := range specs {
			if spec.off != covered {
				t.Fatalf("%+v: chunk %d starts at %d, want %d", tc, c, spec.off, covered)
			}
			if spec.server < 0 || spec.server >= tc.servers {
				t.Fatalf("%+v: chunk %d on bad server %d", tc, c, spec.server)
			}
			if spec.key != chunkKey(3, c) {
				t.Fatalf("%+v: chunk %d key %q", tc, c, spec.key)
			}
			covered += spec.n
		}
		if covered != tc.elems {
			t.Fatalf("%+v: chunks cover %d of %d elems", tc, covered, tc.elems)
		}
	}
}

// Same-stripe tasks must execute in submission order (the protocol's
// per-chunk FIFO requirement); the pool must also drain everything on
// close and surface the first error.
func TestSendPoolStripeOrderAndDrain(t *testing.T) {
	var cbErrs int
	p := newSendPool(4, func(error) { cbErrs++ })
	var mu sync.Mutex
	got := make(map[uint32][]int)
	for i := 0; i < 100; i++ {
		i := i
		stripe := uint32(i % 7)
		p.submit(stripe, func() error {
			mu.Lock()
			got[stripe] = append(got[stripe], i)
			mu.Unlock()
			if i == 41 {
				return errors.New("boom")
			}
			return nil
		})
	}
	p.close()
	total := 0
	for stripe, seq := range got {
		total += len(seq)
		for j := 1; j < len(seq); j++ {
			if seq[j] < seq[j-1] {
				t.Fatalf("stripe %d executed out of order: %v", stripe, seq)
			}
		}
	}
	if total != 100 {
		t.Fatalf("executed %d of 100 tasks", total)
	}
	if err := p.firstErr(); err == nil || err.Error() != "boom" {
		t.Fatalf("firstErr = %v", err)
	}
	if cbErrs != 1 {
		t.Fatalf("onErr fired %d times, want 1", cbErrs)
	}
	// Post-close submissions run inline instead of panicking.
	ran := false
	p.submit(0, func() error { ran = true; return nil })
	if !ran {
		t.Fatal("post-close submit did not run inline")
	}
}

// submit must never block, even with every worker wedged and far more
// tasks in flight than any fixed queue depth — the receive goroutine
// dispatches broadcasts through the pool, and a blocking submit there
// deadlocks the cluster (receive loop ↔ pool workers ↔ peer inboxes).
func TestSendPoolSubmitNeverBlocks(t *testing.T) {
	gate := make(chan struct{})
	p := newSendPool(2, nil)
	var mu sync.Mutex
	ran := 0
	for i := 0; i < 10000; i++ {
		done := make(chan struct{})
		go func() {
			p.submit(uint32(i), func() error {
				<-gate
				mu.Lock()
				ran++
				mu.Unlock()
				return nil
			})
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("submit %d blocked with workers wedged", i)
		}
	}
	close(gate)
	p.close()
	mu.Lock()
	defer mu.Unlock()
	if ran != 10000 {
		t.Fatalf("ran %d of 10000 tasks", ran)
	}
}

// newTestCluster builds an n-node router cluster over an in-process
// mesh, one router per node, with every node holding identical params.
func newTestCluster(t *testing.T, n int, mk func(node int, mesh transport.Mesh) *Router) []*Router {
	t.Helper()
	meshes := transport.NewChanCluster(n)
	routers := make([]*Router, n)
	for i := 0; i < n; i++ {
		routers[i] = mk(i, meshes[i])
		routers[i].Start()
	}
	t.Cleanup(func() {
		meshes[0].Close()
		for _, r := range routers {
			r.Stop()
		}
	})
	return routers
}

func identicalParams(seed int64, shapes [][2]int) [][]*tensor.Matrix {
	mk := func() []*tensor.Matrix {
		rng := rand.New(rand.NewSource(seed))
		var ps []*tensor.Matrix
		for _, s := range shapes {
			m := tensor.NewMatrix(s[0], s[1])
			m.Randn(rng, 0.5)
			ps = append(ps, m)
		}
		return ps
	}
	return [][]*tensor.Matrix{mk(), mk(), mk()}
}

// A 3-node PS round over the router must equal the sum of all scaled
// updates on every replica — chunked and overlapped.
func TestRouterPSRound(t *testing.T) {
	for _, chunkElems := range []int{0, 5} {
		for _, overlap := range []bool{false, true} {
			shapes := [][2]int{{4, 6}, {1, 6}}
			allParams := identicalParams(7, shapes)
			const n = 3
			routers := newTestCluster(t, n, func(node int, mesh transport.Mesh) *Router {
				r, err := NewRouter(Config{
					Mesh: mesh,
					Plans: []ParamPlan{
						{Index: 0, Rows: 4, Cols: 6, Route: RoutePS},
						{Index: 1, Rows: 1, Cols: 6, Route: RoutePS},
					},
					Params:     allParams[node],
					Scale:      1, // updates pass through unscaled for easy checking
					Overlap:    overlap,
					ChunkElems: chunkElems,
				})
				if err != nil {
					t.Fatal(err)
				}
				return r
			})

			// Every node pushes grad = node+1 on all elements; the folded
			// round adds sum(1..n) everywhere.
			var wg sync.WaitGroup
			for node, r := range routers {
				node, r := node, r
				wg.Add(1)
				go func() {
					defer wg.Done()
					grads := []*tensor.Matrix{tensor.NewMatrix(4, 6), tensor.NewMatrix(1, 6)}
					for _, g := range grads {
						g.Fill(float32(node + 1))
					}
					if err := r.LaunchAll(0, grads); err != nil {
						t.Error(err)
						return
					}
					r.WaitFor(1)
				}()
			}
			wg.Wait()

			want := float32(1 + 2 + 3)
			for node, r := range routers {
				params := []*tensor.Matrix{tensor.NewMatrix(4, 6), tensor.NewMatrix(1, 6)}
				r.Adopt(params)
				for pi, p := range params {
					for j, v := range p.Data {
						if exp := allParams[0][pi].Data[j] + want; absDiff(v, exp) > 1e-5 {
							t.Fatalf("chunk=%d overlap=%v node %d param %d[%d]: %g, want %g",
								chunkElems, overlap, node, pi, j, v, exp)
						}
					}
				}
				if err := r.Err(); err != nil {
					t.Fatalf("node %d: %v", node, err)
				}
			}
		}
	}
}

func absDiff(a, b float32) float32 {
	d := a - b
	if d < 0 {
		return -d
	}
	return d
}

// Malformed plans must be rejected up front, not at iteration time.
func TestRouterRejectsBadPlans(t *testing.T) {
	meshes := transport.NewChanCluster(1)
	defer meshes[0].Close()
	p := tensor.NewMatrix(2, 2)
	cases := []Config{
		{Plans: []ParamPlan{{Index: 0, Rows: 2, Cols: 2}}, Params: []*tensor.Matrix{p}},                                    // nil mesh
		{Mesh: meshes[0], Plans: []ParamPlan{{Index: 1, Rows: 2, Cols: 2}}, Params: []*tensor.Matrix{p}},                   // index mismatch
		{Mesh: meshes[0], Plans: []ParamPlan{{Index: 0, Rows: 3, Cols: 3}}, Params: []*tensor.Matrix{p}},                   // shape mismatch
		{Mesh: meshes[0], Plans: []ParamPlan{{Index: 0, Rows: 2, Cols: 2, Route: RouteSFB}}, Params: []*tensor.Matrix{p}},  // SFB without SF
		{Mesh: meshes[0], Plans: []ParamPlan{{Index: 0, Rows: 2, Cols: 2, Route: Route(99)}}, Params: []*tensor.Matrix{p}}, // unknown route
		{Mesh: meshes[0], Plans: nil, Params: []*tensor.Matrix{p}},                                                         // plan/param count
	}
	for i, cfg := range cases {
		if _, err := NewRouter(cfg); err == nil {
			t.Fatalf("case %d: bad config accepted", i)
		}
	}
}

// An inbound message for an out-of-range parameter index must surface
// through Err, not crash the receive loop silently.
func TestRouterSurfacesProtocolErrors(t *testing.T) {
	meshes := transport.NewChanCluster(1)
	defer meshes[0].Close()
	p := tensor.NewMatrix(1, 4)
	r, err := NewRouter(Config{
		Mesh:   meshes[0],
		Plans:  []ParamPlan{{Index: 0, Rows: 1, Cols: 4, Route: RoutePS}},
		Params: []*tensor.Matrix{p},
		Scale:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	defer r.Stop()
	if err := meshes[0].Send(0, transport.Message{Type: transport.MsgPush, Layer: 99}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200 && r.Err() == nil; i++ {
		time.Sleep(5 * time.Millisecond)
	}
	if r.Err() == nil {
		t.Fatal("unknown-param message did not surface through Err")
	}
	// The failure must also poison the clock: a compute loop blocked in
	// WaitFor has to wake up and observe the error, not hang forever.
	done := make(chan struct{})
	go func() {
		r.WaitFor(5)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("WaitFor still blocked after receive-loop failure")
	}
}

// One node's failure must unblock every peer: the abort broadcast
// reaches their receive loops, poisons their clocks, and surfaces
// through Err — no distributed deadlock when a worker dies mid-run.
func TestRouterAbortPropagatesToPeers(t *testing.T) {
	const n = 3
	meshes := transport.NewChanCluster(n)
	routers := make([]*Router, n)
	for node := 0; node < n; node++ {
		r, err := NewRouter(Config{
			Mesh:   meshes[node],
			Plans:  []ParamPlan{{Index: 0, Rows: 2, Cols: 2, Route: RoutePS}},
			Params: []*tensor.Matrix{tensor.NewMatrix(2, 2)},
			Scale:  1,
		})
		if err != nil {
			t.Fatal(err)
		}
		routers[node] = r
		r.Start()
	}
	t.Cleanup(func() {
		meshes[0].Close()
		for _, r := range routers {
			r.Stop()
		}
	})
	// Poison node 1 with a malformed frame; its failure must fan out.
	if err := meshes[0].Send(1, transport.Message{Type: transport.MsgPush, Layer: 99}); err != nil {
		t.Fatal(err)
	}
	for node, r := range routers {
		done := make(chan struct{})
		go func() {
			r.WaitFor(5) // unsatisfiable: nobody is pushing
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("node %d still blocked after peer failure", node)
		}
		if r.Err() == nil {
			t.Fatalf("node %d observed no error after peer failure", node)
		}
	}
}

func TestRouteString(t *testing.T) {
	for r, want := range map[Route]string{
		RoutePS: "PS", RouteSFB: "SFB", RouteOneBit: "1bit",
		RouteRing: "ring", RouteTreeRing: "treering",
	} {
		if r.String() != want {
			t.Fatalf("%d → %q, want %q", int(r), r.String(), want)
		}
	}
	if Route(42).String() != fmt.Sprintf("route(%d)", 42) {
		t.Fatal("unknown route must render")
	}
}

// failingMesh delegates to an inner endpoint until trip fires, after
// which Recv returns the injected transport failure — the shape of a
// TCPMesh whose link to a peer died.
type failingMesh struct {
	transport.Mesh
	trip chan struct{}
	err  error
}

func (m *failingMesh) Recv() (transport.Message, error) {
	done := make(chan struct{})
	var msg transport.Message
	var err error
	go func() {
		msg, err = m.Mesh.Recv()
		close(done)
	}()
	select {
	case <-done:
		return msg, err
	case <-m.trip:
		return transport.Message{}, m.err
	}
}

// A transport-level peer failure surfacing from Recv must abort the
// router — poisoned clock, error from Err — without waiting for any
// control frame from the (crashed) peer.
func TestRouterAbortsOnTransportPeerDown(t *testing.T) {
	meshes := transport.NewChanCluster(2)
	t.Cleanup(func() { meshes[0].Close() })
	down := &transport.ErrPeerDown{Peer: 1, Cause: fmt.Errorf("connection reset")}
	fm := &failingMesh{Mesh: meshes[0], trip: make(chan struct{}), err: down}
	r, err := NewRouter(Config{
		Mesh:   fm,
		Plans:  []ParamPlan{{Index: 0, Rows: 2, Cols: 2, Route: RoutePS}},
		Params: []*tensor.Matrix{tensor.NewMatrix(2, 2)},
		Scale:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	defer r.Stop()

	close(fm.trip)
	for i := 0; i < 200 && r.Err() == nil; i++ {
		time.Sleep(5 * time.Millisecond)
	}
	var pd *transport.ErrPeerDown
	if err := r.Err(); !errors.As(err, &pd) || pd.Peer != 1 {
		t.Fatalf("Err = %v, want the injected *transport.ErrPeerDown for peer 1", err)
	}
	done := make(chan struct{})
	go func() {
		r.WaitFor(5) // unsatisfiable: nobody is pushing
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("WaitFor still blocked after transport peer-down")
	}
}
