// Package comm is the synchronization runtime of the functional plane:
// it owns everything between "the backward pass produced gradients" and
// "every replica adopted the synchronized update". The paper's three
// wire strategies — parameter-server rounds over a sharded KV store,
// sufficient-factor broadcasting, and CNTK-style 1-bit quantization —
// are Syncer implementations selected per parameter by the cost-model
// rule (Algorithm 1), and a Router multiplexes the mesh between them.
//
// Large tensors are chunked across KV shards and pushed through a
// fixed-worker send pool (queue depth bounded by the consistency
// protocol itself), so chunk c+1 of a layer (and every later layer)
// streams while chunk c is still on the wire — wait-free
// backpropagation realized with real bytes rather than the simulated
// timeline of internal/engine.
//
// Adding a strategy (ring all-reduce, top-k sparsification, ...) means
// implementing Syncer and teaching routeFor to construct it; the
// trainer never changes.
package comm

import (
	"fmt"

	"repro/internal/tensor"
	"repro/internal/transport"
)

// Route names a wire strategy for one parameter.
type Route int

// Supported routes.
const (
	// RoutePS synchronizes through parameter-server rounds on the
	// sharded KV store (chunked when the tensor exceeds the chunk size).
	RoutePS Route = iota
	// RouteSFB broadcasts rank-K sufficient factors peer-to-peer and
	// reconstructs the dense gradient on receipt.
	RouteSFB
	// RouteOneBit pushes 1-bit quantized updates with residual feedback
	// and double-sided quantized broadcasts (the CNTK baseline).
	RouteOneBit
	// RouteRing runs the bandwidth-optimal ring all-reduce: the tensor is
	// split into P segments, each reduced along a fixed worker chain
	// (reduce-scatter) and redistributed along the same ring
	// (all-gather) — 2(P−1) frames per worker, perfectly balanced links.
	RouteRing
	// RouteTreeRing composes intra-group rings with an inter-group
	// leader exchange — the two-level hierarchy for oversubscribed
	// topologies where a flat ring would cross the slow fabric P times.
	RouteTreeRing
)

// String names the route.
func (r Route) String() string {
	switch r {
	case RoutePS:
		return "PS"
	case RouteSFB:
		return "SFB"
	case RouteOneBit:
		return "1bit"
	case RouteRing:
		return "ring"
	case RouteTreeRing:
		return "treering"
	default:
		return fmt.Sprintf("route(%d)", int(r))
	}
}

// ParamPlan describes how one parameter tensor is synchronized — the
// functional-plane analogue of the coordinator's LayerPlan. Plans are
// produced by poseidon.Planner (the single owner of the Algorithm 1
// decision rule); this package only executes them.
type ParamPlan struct {
	// Index is the global parameter index; Plans[i].Index must equal i.
	Index int
	// Name labels the tensor in logs and metrics (optional).
	Name string
	// Rows, Cols give the tensor shape (vectors are 1×n).
	Rows, Cols int
	// Route picks the wire strategy.
	Route Route
	// PSEquivBytes is the cost model's pure-PS per-node wire traffic
	// per iteration for this tensor (Table 1's colocated cost × 4
	// bytes) — the baseline the metrics subsystem charges SFB savings
	// against. Zero when no cost model produced the plan.
	PSEquivBytes int64
	// SF extracts the parameter's sufficient factor after a backward
	// pass. Required for RouteSFB. The factor is consumed synchronously
	// inside Launch — encoded and copied before it returns — and Launch
	// folds the update scaling into U in place, so implementations may
	// return views of live layer buffers (autodiff's
	// BorrowSufficientFactor) as long as nothing else reads them
	// between the backward pass and the next one.
	SF func() *tensor.SufficientFactor
}

// Syncer synchronizes one parameter tensor across the mesh. Launch runs
// on the compute goroutine; Handle runs on the router's receive
// goroutine. Implementations share the router's staged replica and
// consistency clock, and report completed iterations by advancing the
// clock.
type Syncer interface {
	// Launch ships this worker's contribution for iteration iter.
	// update is the scaled dense update, borrowed from the router's
	// update ring: it stays valid until this parameter's clock advances
	// for iter (the router reuses the ring slot staleness+1 iterations
	// later), so in-flight encode tasks may read it but the syncer must
	// not retain it past round completion. Routes that derive their own
	// payload (SFB) receive nil.
	Launch(iter int, update *tensor.Matrix) error
	// Handle processes one inbound wire message addressed to this
	// parameter, in either the worker or the server role.
	Handle(msg transport.Message) error
	// Close releases the routing-owned state behind the syncer — KV
	// pairs on the local shard, factor aggregators in the bank — ahead
	// of a route handoff. The handoff contract: the router's reroute
	// barrier has drained every in-flight round (no lease, scratch
	// buffer, or partial aggregation survives), the staged replica keeps
	// the authoritative parameter value, and the successor syncer
	// re-seeds whatever server-side state its route needs from it. A
	// closed syncer never sees another Launch or Handle.
	Close()
}

// chunkSpec is one KV pair of a chunked parameter: a contiguous slice
// of the flattened tensor owned by one shard.
type chunkSpec struct {
	key    string
	server int
	off, n int
}

// chunkKey names chunk c of parameter index on the KV store.
func chunkKey(index, c int) string { return fmt.Sprintf("p%d.%d", index, c) }

// splitChunks slices an elems-long tensor into chunks of at most
// chunkElems values (one chunk when chunkElems <= 0), assigning chunk c
// of parameter index to server (index+c) mod servers — the fine-grained
// round-robin placement that spreads one hot layer across every shard.
func splitChunks(index, elems, chunkElems, servers int) []chunkSpec {
	if chunkElems <= 0 || chunkElems >= elems {
		return []chunkSpec{{key: chunkKey(index, 0), server: index % servers, off: 0, n: elems}}
	}
	var specs []chunkSpec
	for c, off := 0, 0; off < elems; c, off = c+1, off+chunkElems {
		n := chunkElems
		if off+n > elems {
			n = elems - off
		}
		specs = append(specs, chunkSpec{
			key:    chunkKey(index, c),
			server: (index + c) % servers,
			off:    off,
			n:      n,
		})
	}
	return specs
}
