// Package kvstore implements the functional bulk-synchronous parameter
// server shard of the Poseidon reproduction: a set of KV pairs (2 MB
// parameter chunks), per-pair update counting, apply-on-complete, and
// broadcast-when-counted semantics, exactly as Section 4.1 describes.
//
// A Shard is a passive state machine — the trainer (or a server
// goroutine) feeds it pushes and ships the broadcasts it emits — so the
// same logic runs unmodified over the in-process and TCP meshes.
//
// The push path is allocation-flat: worker contributions are copied
// into per-pair scratch buffers recycled across rounds, so a
// steady-state training run folds every round without growing the heap.
package kvstore

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/metrics"
)

// pair is one KV pair plus all of its accumulation state. Scratch
// buffers (round sets, contribution copies, the fold accumulator) are
// recycled through per-pair free lists — every buffer a pair ever needs
// has the same length as its value, so reuse always fits exactly.
type pair struct {
	val []float32
	// Counted-mode state (Push): a plain accumulator and arrival count.
	acc   []float32
	count int
	// Round-mode state (PushRound*): per-round buffered contributions,
	// folded in worker-id order on completion.
	rounds     map[int]*roundSet
	freeRounds []*roundSet
	freeBufs   [][]float32
	fold       []float32
	version    int
}

// roundSet buffers one round's per-worker contributions.
type roundSet struct {
	contrib [][]float32 // indexed by worker id; nil = not yet pushed
	count   int
}

func (p *pair) getRound(workers int) *roundSet {
	if n := len(p.freeRounds); n > 0 {
		rs := p.freeRounds[n-1]
		p.freeRounds = p.freeRounds[:n-1]
		return rs
	}
	return &roundSet{contrib: make([][]float32, workers)}
}

func (p *pair) getBuf() []float32 {
	if n := len(p.freeBufs); n > 0 {
		b := p.freeBufs[n-1]
		p.freeBufs = p.freeBufs[:n-1]
		return b
	}
	return make([]float32, len(p.val))
}

// Shard holds one server's slice of the globally shared parameters.
type Shard struct {
	mu      sync.Mutex
	workers int
	pairs   map[string]*pair
	// metrics, when set, counts buffered pushes and folded rounds.
	metrics *metrics.KVStats
}

// NewShard creates a shard expecting pushes from the given number of
// workers per iteration.
func NewShard(workers int) *Shard {
	if workers <= 0 {
		panic("kvstore: need at least one worker")
	}
	return &Shard{workers: workers, pairs: make(map[string]*pair)}
}

// SetMetrics attaches live counters for shard activity. Call before
// the shard starts receiving pushes; pass nil to detach.
func (s *Shard) SetMetrics(k *metrics.KVStats) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.metrics = k
}

// Init installs the initial value of a KV pair. Every worker must use
// identical initial values (the trainer seeds them identically).
func (s *Shard) Init(key string, vals []float32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := &pair{
		val:    make([]float32, len(vals)),
		acc:    make([]float32, len(vals)),
		rounds: make(map[int]*roundSet),
	}
	copy(p.val, vals)
	s.pairs[key] = p
}

func (s *Shard) lookup(key string, update []float32) (*pair, error) {
	p, ok := s.pairs[key]
	if !ok {
		return nil, fmt.Errorf("kvstore: unknown key %q", key)
	}
	if len(update) != len(p.val) {
		return nil, fmt.Errorf("kvstore: key %q: update len %d != %d", key, len(update), len(p.val))
	}
	return p, nil
}

// Push applies one worker's additive update to the pair's accumulator.
// When updates from all workers have arrived it folds the accumulator
// into the parameters, bumps the version, and returns the fresh
// parameter values (ready=true) for broadcasting; the caller owns the
// returned slice.
func (s *Shard) Push(key string, update []float32) (fresh []float32, ready bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, err := s.lookup(key, update)
	if err != nil {
		return nil, false, err
	}
	for i, v := range update {
		p.acc[i] += v
	}
	p.count++
	if s.metrics != nil {
		s.metrics.CountPush()
	}
	if p.count < s.workers {
		return nil, false, nil
	}
	// All workers reported: apply and reset for the next iteration.
	for i := range p.val {
		p.val[i] += p.acc[i]
		p.acc[i] = 0
	}
	p.count = 0
	p.version++
	if s.metrics != nil {
		s.metrics.CountRound(len(p.val))
	}
	out := make([]float32, len(p.val))
	copy(out, p.val)
	return out, true, nil
}

// PushRound is Push with an explicit iteration tag and pushing worker,
// for bounded staleness (SSP) execution: updates from different
// iterations may interleave on a key, and each round folds into the
// parameters when its own count completes. Per-worker push order
// guarantees round r completes before round r+1.
func (s *Shard) PushRound(key string, round, worker int, update []float32) (fresh []float32, ready bool, err error) {
	return s.PushRoundInto(key, round, worker, update, nil)
}

// PushRoundInto is PushRound appending the fresh values into dst
// instead of allocating — the hot path for chunked synchronization,
// where a round completes on some chunk nearly every inbound message
// and the caller re-encodes (and is then done with) the result
// immediately.
//
// Contributions are buffered per worker and folded in worker-id order
// when the round completes, so the result is bit-identical whatever
// order the transport delivered the pushes in. A worker pushing the
// same (key, round) twice is a protocol violation and errors.
//
// The shard copies update into recycled per-pair scratch, so the caller
// keeps ownership and may reuse the slice immediately — decode paths
// feed the same scratch buffer in for every message.
func (s *Shard) PushRoundInto(key string, round, worker int, update, dst []float32) (fresh []float32, ready bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, err := s.lookup(key, update)
	if err != nil {
		return nil, false, err
	}
	if worker < 0 || worker >= s.workers {
		return nil, false, fmt.Errorf("kvstore: key %q: push from worker %d of %d", key, worker, s.workers)
	}
	rs := p.rounds[round]
	if rs == nil {
		rs = p.getRound(s.workers)
		p.rounds[round] = rs
	}
	if rs.contrib[worker] != nil {
		return nil, false, fmt.Errorf("kvstore: key %q: worker %d pushed twice in round %d", key, worker, round)
	}
	buf := p.getBuf()
	copy(buf, update)
	rs.contrib[worker] = buf
	rs.count++
	if s.metrics != nil {
		s.metrics.CountPush()
	}
	if rs.count < s.workers {
		// Hand dst back so the caller's scratch buffer survives the
		// not-ready pushes between round completions.
		return dst, false, nil
	}
	if cap(p.fold) < len(p.val) {
		p.fold = make([]float32, len(p.val))
	}
	acc := p.fold[:len(p.val)]
	clear(acc)
	for w, u := range rs.contrib { // worker-id order: deterministic fold
		for i, v := range u {
			acc[i] += v
		}
		p.freeBufs = append(p.freeBufs, u)
		rs.contrib[w] = nil
	}
	for i := range p.val {
		p.val[i] += acc[i]
	}
	rs.count = 0
	p.freeRounds = append(p.freeRounds, rs)
	delete(p.rounds, round)
	p.version++
	if s.metrics != nil {
		s.metrics.CountRound(len(p.val))
	}
	return append(dst, p.val...), true, nil
}

// Remove deletes a KV pair and all of its accumulation state — the
// route-handoff path: when a replan barrier moves a parameter off the
// PS, the retiring syncer removes the chunks its shard owned. Callers
// must have drained the pair's in-flight rounds first (a removed pair
// with pending contributions would silently drop updates); the comm
// layer's reroute barrier guarantees exactly that. Removing an unknown
// key is a no-op.
func (s *Shard) Remove(key string) {
	s.mu.Lock()
	delete(s.pairs, key)
	s.mu.Unlock()
}

// Get returns a copy of the current parameter values (for checkpointing
// and tests).
func (s *Shard) Get(key string) ([]float32, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.pairs[key]
	if !ok {
		return nil, false
	}
	out := make([]float32, len(p.val))
	copy(out, p.val)
	return out, true
}

// Version returns how many complete update rounds the pair has folded.
func (s *Shard) Version(key string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if p, ok := s.pairs[key]; ok {
		return p.version
	}
	return 0
}

// Keys returns the shard's keys, sorted (for deterministic checkpoints).
func (s *Shard) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var ks []string
	for k := range s.pairs {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// Checkpoint snapshots every KV pair (Section 4.1: the KV store
// "regularly checkpoints current parameter states for fault tolerance").
func (s *Shard) Checkpoint() map[string][]float32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string][]float32, len(s.pairs))
	for k, p := range s.pairs {
		cp := make([]float32, len(p.val))
		copy(cp, p.val)
		out[k] = cp
	}
	return out
}

// Restore loads a checkpoint produced by Checkpoint, resetting all
// pending accumulation (counted and per-round alike).
func (s *Shard) Restore(ck map[string][]float32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pairs = make(map[string]*pair, len(ck))
	for k, vals := range ck {
		p := &pair{
			val:    make([]float32, len(vals)),
			acc:    make([]float32, len(vals)),
			rounds: make(map[int]*roundSet),
		}
		copy(p.val, vals)
		s.pairs[k] = p
	}
}
