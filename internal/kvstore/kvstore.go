// Package kvstore implements the functional bulk-synchronous parameter
// server shard of the Poseidon reproduction: a set of KV pairs (2 MB
// parameter chunks), per-pair update counting, apply-on-complete, and
// broadcast-when-counted semantics, exactly as Section 4.1 describes.
//
// A Shard is a passive state machine — the trainer (or a server
// goroutine) feeds it pushes and ships the broadcasts it emits — so the
// same logic runs unmodified over the in-process and TCP meshes.
package kvstore

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/metrics"
)

// Shard holds one server's slice of the globally shared parameters.
type Shard struct {
	mu      sync.Mutex
	workers int
	params  map[string][]float32
	acc     map[string][]float32
	counts  map[string]int
	version map[string]int
	// Per-round, per-worker contributions for bounded-staleness
	// execution, where pushes from adjacent iterations may interleave
	// on a key. Contributions are buffered by worker id and folded in
	// id order once complete, so the float32 arithmetic is
	// bit-deterministic no matter what order the network delivered the
	// pushes in — the property the cross-transport parity tests pin.
	roundContrib map[string]map[int][][]float32
	roundCount   map[string]map[int]int
	foldScratch  []float32 // reused accumulator for round completion
	// metrics, when set, counts buffered pushes and folded rounds.
	metrics *metrics.KVStats
}

// NewShard creates a shard expecting pushes from the given number of
// workers per iteration.
func NewShard(workers int) *Shard {
	if workers <= 0 {
		panic("kvstore: need at least one worker")
	}
	return &Shard{
		workers:      workers,
		params:       make(map[string][]float32),
		acc:          make(map[string][]float32),
		counts:       make(map[string]int),
		version:      make(map[string]int),
		roundContrib: make(map[string]map[int][][]float32),
		roundCount:   make(map[string]map[int]int),
	}
}

// SetMetrics attaches live counters for shard activity. Call before
// the shard starts receiving pushes; pass nil to detach.
func (s *Shard) SetMetrics(k *metrics.KVStats) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.metrics = k
}

// Init installs the initial value of a KV pair. Every worker must use
// identical initial values (the trainer seeds them identically).
func (s *Shard) Init(key string, vals []float32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := make([]float32, len(vals))
	copy(cp, vals)
	s.params[key] = cp
	s.acc[key] = make([]float32, len(vals))
}

// Push applies one worker's additive update to the pair's accumulator.
// When updates from all workers have arrived it folds the accumulator
// into the parameters, bumps the version, and returns the fresh
// parameter values (ready=true) for broadcasting; the caller owns the
// returned slice.
func (s *Shard) Push(key string, update []float32) (fresh []float32, ready bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.params[key]
	if !ok {
		return nil, false, fmt.Errorf("kvstore: unknown key %q", key)
	}
	if len(update) != len(p) {
		return nil, false, fmt.Errorf("kvstore: key %q: update len %d != %d", key, len(update), len(p))
	}
	acc := s.acc[key]
	for i, v := range update {
		acc[i] += v
	}
	s.counts[key]++
	if s.metrics != nil {
		s.metrics.CountPush()
	}
	if s.counts[key] < s.workers {
		return nil, false, nil
	}
	// All workers reported: apply and reset for the next iteration.
	for i := range p {
		p[i] += acc[i]
		acc[i] = 0
	}
	s.counts[key] = 0
	s.version[key]++
	if s.metrics != nil {
		s.metrics.CountRound(len(p))
	}
	out := make([]float32, len(p))
	copy(out, p)
	return out, true, nil
}

// PushRound is Push with an explicit iteration tag and pushing worker,
// for bounded staleness (SSP) execution: updates from different
// iterations may interleave on a key, and each round folds into the
// parameters when its own count completes. Per-worker push order
// guarantees round r completes before round r+1.
func (s *Shard) PushRound(key string, round, worker int, update []float32) (fresh []float32, ready bool, err error) {
	return s.PushRoundInto(key, round, worker, update, nil)
}

// PushRoundInto is PushRound appending the fresh values into dst
// instead of allocating — the hot path for chunked synchronization,
// where a round completes on some chunk nearly every inbound message
// and the caller re-encodes (and is then done with) the result
// immediately.
//
// Contributions are buffered per worker and folded in worker-id order
// when the round completes, so the result is bit-identical whatever
// order the transport delivered the pushes in. A worker pushing the
// same (key, round) twice is a protocol violation and errors.
//
// The shard takes ownership of update (retaining it until the round
// completes); callers must hand over a slice they will not reuse —
// every decode path allocates one per message anyway.
func (s *Shard) PushRoundInto(key string, round, worker int, update, dst []float32) (fresh []float32, ready bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.params[key]
	if !ok {
		return nil, false, fmt.Errorf("kvstore: unknown key %q", key)
	}
	if len(update) != len(p) {
		return nil, false, fmt.Errorf("kvstore: key %q: update len %d != %d", key, len(update), len(p))
	}
	if worker < 0 || worker >= s.workers {
		return nil, false, fmt.Errorf("kvstore: key %q: push from worker %d of %d", key, worker, s.workers)
	}
	if s.roundContrib[key] == nil {
		s.roundContrib[key] = make(map[int][][]float32)
		s.roundCount[key] = make(map[int]int)
	}
	contrib := s.roundContrib[key][round]
	if contrib == nil {
		contrib = make([][]float32, s.workers)
		s.roundContrib[key][round] = contrib
	}
	if contrib[worker] != nil {
		return nil, false, fmt.Errorf("kvstore: key %q: worker %d pushed twice in round %d", key, worker, round)
	}
	contrib[worker] = update
	s.roundCount[key][round]++
	if s.metrics != nil {
		s.metrics.CountPush()
	}
	if s.roundCount[key][round] < s.workers {
		// Hand dst back so the caller's scratch buffer survives the
		// not-ready pushes between round completions.
		return dst, false, nil
	}
	if cap(s.foldScratch) < len(p) {
		s.foldScratch = make([]float32, len(p))
	}
	acc := s.foldScratch[:len(p)]
	clear(acc)
	for _, u := range contrib { // worker-id order: deterministic fold
		for i, v := range u {
			acc[i] += v
		}
	}
	for i := range p {
		p[i] += acc[i]
	}
	delete(s.roundContrib[key], round)
	delete(s.roundCount[key], round)
	s.version[key]++
	if s.metrics != nil {
		s.metrics.CountRound(len(p))
	}
	return append(dst, p...), true, nil
}

// Get returns a copy of the current parameter values (for checkpointing
// and tests).
func (s *Shard) Get(key string) ([]float32, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.params[key]
	if !ok {
		return nil, false
	}
	out := make([]float32, len(p))
	copy(out, p)
	return out, true
}

// Version returns how many complete update rounds the pair has folded.
func (s *Shard) Version(key string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.version[key]
}

// Keys returns the shard's keys, sorted (for deterministic checkpoints).
func (s *Shard) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var ks []string
	for k := range s.params {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// Checkpoint snapshots every KV pair (Section 4.1: the KV store
// "regularly checkpoints current parameter states for fault tolerance").
func (s *Shard) Checkpoint() map[string][]float32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string][]float32, len(s.params))
	for k, p := range s.params {
		cp := make([]float32, len(p))
		copy(cp, p)
		out[k] = cp
	}
	return out
}

// Restore loads a checkpoint produced by Checkpoint, resetting all
// pending accumulation (counted and per-round alike).
func (s *Shard) Restore(ck map[string][]float32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.params = make(map[string][]float32, len(ck))
	s.acc = make(map[string][]float32, len(ck))
	s.counts = make(map[string]int)
	s.roundContrib = make(map[string]map[int][][]float32)
	s.roundCount = make(map[string]map[int]int)
	for k, p := range ck {
		cp := make([]float32, len(p))
		copy(cp, p)
		s.params[k] = cp
		s.acc[k] = make([]float32, len(p))
	}
}
