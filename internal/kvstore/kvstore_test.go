package kvstore

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestPushAggregatesAcrossWorkers(t *testing.T) {
	s := NewShard(3)
	s.Init("k", []float32{1, 2})
	for w := 0; w < 2; w++ {
		fresh, ready, err := s.Push("k", []float32{1, 1})
		if err != nil || ready || fresh != nil {
			t.Fatalf("push %d: %v %v %v", w, fresh, ready, err)
		}
	}
	fresh, ready, err := s.Push("k", []float32{1, 1})
	if err != nil || !ready {
		t.Fatalf("final push: %v %v", ready, err)
	}
	if fresh[0] != 4 || fresh[1] != 5 {
		t.Fatalf("fresh = %v, want [4 5]", fresh)
	}
	if v := s.Version("k"); v != 1 {
		t.Fatalf("version = %d", v)
	}
}

func TestPushResetsBetweenIterations(t *testing.T) {
	s := NewShard(2)
	s.Init("k", []float32{0})
	s.Push("k", []float32{1})
	s.Push("k", []float32{1}) // round 1 complete: params = 2
	s.Push("k", []float32{1})
	fresh, ready, _ := s.Push("k", []float32{1}) // round 2: params = 4
	if !ready || fresh[0] != 4 {
		t.Fatalf("fresh = %v ready=%v", fresh, ready)
	}
	if s.Version("k") != 2 {
		t.Fatalf("version = %d", s.Version("k"))
	}
}

func TestPushErrors(t *testing.T) {
	s := NewShard(1)
	if _, _, err := s.Push("missing", []float32{1}); err == nil {
		t.Fatal("want unknown-key error")
	}
	s.Init("k", []float32{1, 2})
	if _, _, err := s.Push("k", []float32{1}); err == nil {
		t.Fatal("want length-mismatch error")
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := NewShard(1)
	s.Init("k", []float32{5})
	got, ok := s.Get("k")
	if !ok || got[0] != 5 {
		t.Fatalf("Get = %v %v", got, ok)
	}
	got[0] = 99
	again, _ := s.Get("k")
	if again[0] != 5 {
		t.Fatal("Get must return a copy")
	}
	if _, ok := s.Get("missing"); ok {
		t.Fatal("missing key should report !ok")
	}
}

func TestCheckpointRestore(t *testing.T) {
	s := NewShard(2)
	s.Init("a", []float32{1})
	s.Init("b", []float32{2, 3})
	s.Push("a", []float32{1}) // leave a half-complete round pending
	ck := s.Checkpoint()

	s2 := NewShard(2)
	s2.Restore(ck)
	if got, _ := s2.Get("b"); got[1] != 3 {
		t.Fatalf("restored b = %v", got)
	}
	// Restored shard starts a clean round.
	s2.Push("a", []float32{10})
	fresh, ready, _ := s2.Push("a", []float32{10})
	if !ready || fresh[0] != 21 {
		t.Fatalf("after restore: %v %v", fresh, ready)
	}
	if keys := s2.Keys(); len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Fatalf("keys = %v", keys)
	}
}

// Concurrent pushes from N goroutines must aggregate exactly once each.
func TestConcurrentPushes(t *testing.T) {
	const workers = 16
	s := NewShard(workers)
	s.Init("k", []float32{0})
	var wg sync.WaitGroup
	readyCount := 0
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, ready, err := s.Push("k", []float32{1})
			if err != nil {
				t.Error(err)
			}
			if ready {
				mu.Lock()
				readyCount++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if readyCount != 1 {
		t.Fatalf("ready fired %d times, want exactly 1", readyCount)
	}
	got, _ := s.Get("k")
	if got[0] != workers {
		t.Fatalf("aggregate = %v, want %d", got[0], workers)
	}
}

// Property: the shard computes params += Σ updates for any worker count
// and update values.
func TestAggregationProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		workers := 1 + r.Intn(8)
		dim := 1 + r.Intn(16)
		s := NewShard(workers)
		init := make([]float32, dim)
		for i := range init {
			init[i] = float32(r.NormFloat64())
		}
		s.Init("k", init)
		want := make([]float64, dim)
		for i, v := range init {
			want[i] = float64(v)
		}
		for w := 0; w < workers; w++ {
			up := make([]float32, dim)
			for i := range up {
				up[i] = float32(r.NormFloat64())
				want[i] += float64(up[i])
			}
			s.Push("k", up)
		}
		got, _ := s.Get("k")
		for i := range got {
			diff := float64(got[i]) - want[i]
			if diff > 1e-3 || diff < -1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestNewShardPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewShard(0)
}

// PushRound must tolerate interleaved rounds on one key (the SSP case)
// and fold each round exactly once, in round order.
func TestPushRoundInterleaving(t *testing.T) {
	s := NewShard(2)
	s.Init("k", []float32{0})
	// Worker 0 pushes rounds 0 and 1 before worker 1 pushes round 0.
	if _, ready, _ := s.PushRound("k", 0, 0, []float32{1}); ready {
		t.Fatal("round 0 complete too early")
	}
	if _, ready, _ := s.PushRound("k", 1, 0, []float32{10}); ready {
		t.Fatal("round 1 complete too early")
	}
	fresh, ready, err := s.PushRound("k", 0, 1, []float32{2})
	if err != nil || !ready || fresh[0] != 3 {
		t.Fatalf("round 0: fresh=%v ready=%v err=%v", fresh, ready, err)
	}
	fresh, ready, _ = s.PushRound("k", 1, 1, []float32{20})
	if !ready || fresh[0] != 33 {
		t.Fatalf("round 1: fresh=%v ready=%v", fresh, ready)
	}
	if s.Version("k") != 2 {
		t.Fatalf("version = %d", s.Version("k"))
	}
}

func TestPushRoundErrors(t *testing.T) {
	s := NewShard(1)
	if _, _, err := s.PushRound("missing", 0, 0, []float32{1}); err == nil {
		t.Fatal("want unknown-key error")
	}
	s.Init("k", []float32{1, 2})
	if _, _, err := s.PushRound("k", 0, 0, []float32{1}); err == nil {
		t.Fatal("want length error")
	}
	if _, _, err := s.PushRound("k", 0, 5, []float32{1, 1}); err == nil {
		t.Fatal("want out-of-range worker error")
	}
	s2 := NewShard(2) // two workers, so round 0 stays open after one push
	s2.Init("k", []float32{0})
	if _, _, err := s2.PushRound("k", 0, 0, []float32{1}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s2.PushRound("k", 0, 0, []float32{1}); err == nil {
		t.Fatal("want double-push error (same worker, same round)")
	}
}

// The fold must be bit-identical however the transport reordered the
// pushes: contributions land in worker-id order, not arrival order.
func TestPushRoundFoldIsArrivalOrderInvariant(t *testing.T) {
	// Values chosen so float32 addition order visibly matters:
	// (big + tiny) + -big ≠ (big + -big) + tiny in f32.
	updates := [][]float32{{1e8}, {1}, {-1e8}}
	orders := [][]int{{0, 1, 2}, {2, 1, 0}, {1, 2, 0}, {2, 0, 1}}
	var want float32
	for oi, order := range orders {
		s := NewShard(3)
		s.Init("k", []float32{0})
		var fresh []float32
		for i, w := range order {
			var ready bool
			var err error
			fresh, ready, err = s.PushRound("k", 0, w, updates[w])
			if err != nil {
				t.Fatal(err)
			}
			if ready != (i == len(order)-1) {
				t.Fatalf("order %v: ready=%v after push %d", order, ready, i)
			}
		}
		if oi == 0 {
			want = fresh[0]
			continue
		}
		if fresh[0] != want {
			t.Fatalf("arrival order %v folded to %g, order %v folded to %g",
				orders[0], want, order, fresh[0])
		}
	}
}

// PushRoundInto must reuse the caller's buffer for the fresh values and
// match PushRound's math exactly.
func TestPushRoundIntoReusesBuffer(t *testing.T) {
	s := NewShard(2)
	s.Init("k", []float32{1, 2})
	scratch := make([]float32, 0, 2)
	if _, ready, err := s.PushRoundInto("k", 0, 0, []float32{1, 1}, scratch); ready || err != nil {
		t.Fatalf("first push: ready=%v err=%v", ready, err)
	}
	fresh, ready, err := s.PushRoundInto("k", 0, 1, []float32{1, 1}, scratch)
	if err != nil || !ready {
		t.Fatalf("second push: ready=%v err=%v", ready, err)
	}
	if fresh[0] != 3 || fresh[1] != 4 {
		t.Fatalf("fresh = %v, want [3 4]", fresh)
	}
	if cap(scratch) >= 2 && &fresh[0] != &scratch[:1][0] {
		t.Fatal("fresh did not reuse the caller's buffer")
	}
	if _, _, err := s.PushRoundInto("missing", 0, 0, []float32{1}, nil); err == nil {
		t.Fatal("unknown key must error")
	}
}
