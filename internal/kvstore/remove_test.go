package kvstore

import (
	"math"
	"math/rand"
	"testing"
)

// Remove must drop the pair and every piece of its accumulation state:
// later pushes to the key are unknown-key errors, Get misses, and a
// re-Init (the replica re-seed path of a membership transition) starts
// the pair over with fresh state — no leftover contributions from the
// removed incarnation may leak into the first fold of the new one.
func TestRemoveDropsPairAndReseedStartsFresh(t *testing.T) {
	s := NewShard(2)
	s.Init("p0.0", []float32{1, 2})

	// Leave a round half-accumulated, then remove.
	if _, ready, err := s.PushRound("p0.0", 0, 0, []float32{10, 10}); err != nil || ready {
		t.Fatalf("partial push: ready=%v err=%v", ready, err)
	}
	s.Remove("p0.0")
	if _, ok := s.Get("p0.0"); ok {
		t.Fatal("removed key still readable")
	}
	if _, _, err := s.PushRound("p0.0", 0, 1, []float32{10, 10}); err == nil {
		t.Fatal("push to removed key must error")
	}
	s.Remove("p0.0") // unknown key: no-op
	s.Remove("never-existed")

	// Re-seed: the new incarnation folds only its own contributions.
	s.Init("p0.0", []float32{5, 5})
	if v := s.Version("p0.0"); v != 0 {
		t.Fatalf("re-seeded pair version = %d, want 0", v)
	}
	for w := 0; w < 2; w++ {
		if _, _, err := s.PushRound("p0.0", 0, w, []float32{1, 1}); err != nil {
			t.Fatal(err)
		}
	}
	got, _ := s.Get("p0.0")
	if got[0] != 7 || got[1] != 7 {
		t.Fatalf("re-seeded fold = %v, want [7 7] (5+1+1; stale contribution leaked?)", got)
	}
}

// The per-pair free lists must keep the round path allocation-flat in
// steady state, including after a Remove + re-Init cycle — the shape of
// a membership barrier rebuilding a shard's pairs. A regression here
// (lost recycling) shows up as per-round allocations.
func TestRoundScratchRecyclingSurvivesReseed(t *testing.T) {
	const workers = 3
	s := NewShard(workers)
	update := make([]float32, 256)
	for i := range update {
		update[i] = float32(i)
	}
	seed := func() {
		s.Init("k", make([]float32, len(update)))
		// Warm the free lists: first round allocates its scratch.
		for w := 0; w < workers; w++ {
			if _, _, err := s.PushRound("k", 0, w, update); err != nil {
				t.Fatal(err)
			}
		}
	}
	seed()
	round := 1
	steady := func() {
		for w := 0; w < workers; w++ {
			if _, _, err := s.PushRoundInto("k", round, w, update, nil); err != nil {
				t.Fatal(err)
			}
		}
		round++
	}
	if avg := testing.AllocsPerRun(50, steady); avg > 1 {
		// The only tolerated allocation is the fold-result append when
		// dst is nil; scratch buffers and round sets must recycle.
		t.Fatalf("steady-state round allocates %.1f times, want <= 1", avg)
	}
	s.Remove("k")
	seed()
	round = 1
	if avg := testing.AllocsPerRun(50, steady); avg > 1 {
		t.Fatalf("post-reseed round allocates %.1f times, want <= 1", avg)
	}
}

// Re-sharding invariant of the membership barrier: after the worker
// count changes, the fold over the surviving workers' contributions
// must be byte-identical regardless of transport arrival order — same
// worker-id-order fold guarantee the fixed-size shard gives, now across
// a shrink. Two shards fed identical contributions in different
// permutations must hold bit-equal values.
func TestFoldOrderInvarianceAfterShrink(t *testing.T) {
	const before, after, elems, rounds = 5, 4, 64, 6
	rng := rand.New(rand.NewSource(41))
	contrib := func(round, worker int, n int) []float32 {
		r := rand.New(rand.NewSource(int64(round*100 + worker)))
		u := make([]float32, elems)
		for i := range u {
			u[i] = (r.Float32() - 0.5) * 1e-3 * float32(n)
		}
		return u
	}

	runEpoch := func(s *Shard, n, rounds int, shuffle bool) {
		for r := 0; r < rounds; r++ {
			order := rng.Perm(n)
			if !shuffle {
				for i := range order {
					order[i] = i
				}
			}
			for _, w := range order {
				if _, _, err := s.PushRound("k", r, w, contrib(r, w, n)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}

	run := func(shuffle bool) []float32 {
		// Epoch 0: five workers.
		s := NewShard(before)
		s.Init("k", make([]float32, elems))
		runEpoch(s, before, rounds, shuffle)
		// Membership barrier: worker 4 leaves. The shard is rebuilt for
		// the surviving count and re-seeded from the drained state.
		staged, _ := s.Get("k")
		s.Remove("k")
		s2 := NewShard(after)
		s2.Init("k", staged)
		runEpoch(s2, after, rounds, shuffle)
		out, _ := s2.Get("k")
		return out
	}

	inOrder, shuffled := run(false), run(true)
	for i := range inOrder {
		a := math.Float32bits(inOrder[i])
		b := math.Float32bits(shuffled[i])
		if a != b {
			t.Fatalf("elem %d: %08x != %08x — fold depends on arrival order across re-shard", i, a, b)
		}
	}
}
