package transport

import (
	"sync"
	"testing"
	"time"
)

// drainLeases polls until the outstanding-lease count returns to base
// (in-flight frames may still be crossing sockets when the sender
// finishes) or the deadline passes.
func drainLeases(t *testing.T, base int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for OutstandingPayloadLeases() != base {
		if time.Now().After(deadline) {
			t.Fatalf("leaked payload leases: %d outstanding, want %d",
				OutstandingPayloadLeases(), base)
		}
		time.Sleep(time.Millisecond)
	}
}

// A balanced lease flow over the in-process mesh — lease, send, consume,
// release on both ends — must return the outstanding-lease count to its
// baseline; a forgotten Release anywhere in the path fails this test.
func TestPayloadLeaseBalancedChanMesh(t *testing.T) {
	base := OutstandingPayloadLeases()
	ms := NewChanCluster(2)
	defer ms[0].Close()

	const rounds = 50
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			msg, err := ms[1].Recv()
			if err != nil {
				t.Error(err)
				return
			}
			if len(msg.Payload) != 100 {
				t.Errorf("payload len %d", len(msg.Payload))
			}
			msg.ReleasePayload()
		}
	}()
	for i := 0; i < rounds; i++ {
		ref := LeasePayload(100)
		buf := append(ref.Bytes(), make([]byte, 100)...)
		ref.SetBytes(buf)
		msg := Message{Type: MsgPush, Payload: buf}
		msg.AttachLease(ref)
		if err := ms[0].Send(1, msg); err != nil {
			t.Fatal(err)
		}
		ref.Release()
	}
	wg.Wait()
	drainLeases(t, base)
}

// The TCP read loop leases one pooled buffer per inbound frame; a
// consumer that releases every message must bring the count back to
// baseline — this is the regression net for a read-loop or inbox path
// that drops the lease.
func TestPayloadLeaseBalancedTCP(t *testing.T) {
	base := OutstandingPayloadLeases()
	ms := dialMeshOpts(t, freeAddrs(t, 2), TCPOptions{})

	const rounds = 40
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			msg, err := ms[1].Recv()
			if err != nil {
				t.Error(err)
				return
			}
			msg.ReleasePayload()
		}
	}()
	payload := make([]byte, 2048)
	for i := 0; i < rounds; i++ {
		if err := ms[0].Send(1, Message{Type: MsgPush, Payload: payload}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	for _, m := range ms {
		m.Close()
	}
	drainLeases(t, base)
}

// A lease shared by a broadcast must survive until every reference is
// gone, and concurrent Retain/Release from many goroutines must be
// race-clean (this test runs under -race in CI).
func TestPayloadLeaseConcurrentRefcount(t *testing.T) {
	base := OutstandingPayloadLeases()
	ref := LeasePayload(512)
	const holders = 16
	var wg sync.WaitGroup
	for i := 0; i < holders; i++ {
		ref.Retain()
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = ref.Bytes()
			ref.Release()
		}()
	}
	ref.Release()
	wg.Wait()
	drainLeases(t, base)
}

// A buffer grown past its leased capacity must be refiled by what it
// actually holds: if Release filed it one size class up, a later lease
// from that class could receive an undersized buffer and the read
// loop's ref.Bytes()[:n] would panic.
func TestPayloadGrownBufferRefiledByFloorClass(t *testing.T) {
	ref := LeasePayload(256)
	// Grow to a non-power-of-two capacity, as an encoder appending past
	// the lease would.
	grown := append(ref.Bytes(), make([]byte, 10000)...)
	ref.SetBytes(grown)
	ref.Release()

	// Drain pooled refs for the class that 10000 rounds *up* to; every
	// buffer handed out must honor the class promise.
	for i := 0; i < 64; i++ {
		r := LeasePayload(12000)
		b := r.Bytes()[:12000] // must not panic
		_ = b
		r.Release()
	}
}

// Over-releasing is a lifetime bug that would recycle a buffer still
// referenced elsewhere; it must fail loudly, not corrupt a tensor.
func TestPayloadDoubleReleasePanics(t *testing.T) {
	ref := LeasePayload(64)
	ref.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double Release did not panic")
		}
	}()
	ref.Release()
}

// Retaining a lease after its count hit zero means someone held Payload
// past ReleasePayload; that must also fail loudly.
func TestPayloadRetainAfterReleasePanics(t *testing.T) {
	ref := LeasePayload(64)
	ref.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("Retain after final Release did not panic")
		}
	}()
	ref.Retain()
}

// ReleasePayload on an unleased message is a documented no-op, so
// consumers can release unconditionally.
func TestReleasePayloadWithoutLease(t *testing.T) {
	msg := Message{Type: MsgPush, Payload: []byte{1, 2, 3}}
	msg.ReleasePayload()
	msg.ReleasePayload()
}
