//go:build linux

package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
	"unsafe"
)

// Ring header layout (see shm.go for the full design). The cursors sit
// on separate cache lines so the producer's tail stores never bounce
// the consumer's head line and vice versa.
const (
	shmHeadOff  = 0
	shmTailOff  = 64
	shmFlagsOff = 128
	shmHdrSize  = 192

	shmFlagSenderClosed   = 1 << 0 // graceful goodbye from the producer
	shmFlagReceiverClosed = 1 << 1 // consumer detached; producers must stop
)

// Waiting sides yield the scheduler a bounded number of times (cheap,
// keeps tail latency low when the peer is one context switch away),
// then park with exponentially growing sleeps. Only once a waiter has
// been parked ~shmProbeEvery does it pay for a liveness probe — a
// healthy hot ring never opens the lock file at all.
const (
	shmSpinYields = 128
	shmParkMin    = 20 * time.Microsecond
	shmParkMax    = time.Millisecond
	shmProbeEvery = 10 * time.Millisecond
)

// Open-file-description lock commands (fcntl). OFD locks are owned by
// the open file description, not the process: the kernel drops them on
// any exit path including SIGKILL, two endpoints inside one test
// process still conflict, and F_OFD_GETLK probes without acquiring.
// The syscall package does not export these; values are Linux ABI.
const (
	fcntlOFDGetLk = 36 // F_OFD_GETLK
	fcntlOFDSetLk = 37 // F_OFD_SETLK
)

// shmRing is one mapped directed ring. The mesh that sends on it uses
// cachedHead; the mesh that receives uses cachedTail; nothing uses
// both, so a ring object is never shared between roles.
type shmRing struct {
	f    *os.File
	mem  []byte // full mapping: header + data
	data []byte
	size uint64
	mask uint64

	cachedHead uint64 // producer's last view of the consumer cursor
	cachedTail uint64 // consumer's last view of the producer cursor
}

func (r *shmRing) headPtr() *uint64  { return (*uint64)(unsafe.Pointer(&r.mem[shmHeadOff])) }
func (r *shmRing) tailPtr() *uint64  { return (*uint64)(unsafe.Pointer(&r.mem[shmTailOff])) }
func (r *shmRing) flagsPtr() *uint32 { return (*uint32)(unsafe.Pointer(&r.mem[shmFlagsOff])) }

// copyIn writes b into the data region at free-running position pos,
// wrapping at the ring boundary.
func (r *shmRing) copyIn(pos uint64, b []byte) {
	off := pos & r.mask
	n := copy(r.data[off:], b)
	if n < len(b) {
		copy(r.data, b[n:])
	}
}

// copyOut reads len(b) bytes from position pos, wrapping at the
// boundary.
func (r *shmRing) copyOut(pos uint64, b []byte) {
	off := pos & r.mask
	n := copy(b, r.data[off:])
	if n < len(b) {
		copy(b[n:], r.data)
	}
}

func openShmRing(path string, ringBytes int) (*shmRing, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("transport: shm ring %s: %w", path, err)
	}
	total := shmHdrSize + ringBytes
	// Both ends race to create and size the file; Truncate to the same
	// length is idempotent and extension zero-fills, so whoever wins,
	// cursors and flags start at zero.
	if err := f.Truncate(int64(total)); err != nil {
		f.Close()
		return nil, fmt.Errorf("transport: shm ring %s: truncate: %w", path, err)
	}
	mem, err := syscall.Mmap(int(f.Fd()), 0, total, syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("transport: shm ring %s: mmap: %w", path, err)
	}
	return &shmRing{
		f:    f,
		mem:  mem,
		data: mem[shmHdrSize:],
		size: uint64(ringBytes),
		mask: uint64(ringBytes) - 1,
	}, nil
}

func (r *shmRing) unmap() {
	syscall.Munmap(r.mem)
	r.f.Close()
}

// shmWaiter implements spin-then-park for one wait episode: bounded
// scheduler yields, then exponentially growing sleeps, reporting when
// enough parked time has accumulated to justify a liveness probe.
type shmWaiter struct {
	spins int
	park  time.Duration
	idle  time.Duration
}

// pause blocks briefly and reports whether the caller should probe the
// peer's liveness lock now.
func (w *shmWaiter) pause() bool {
	if w.spins < shmSpinYields {
		w.spins++
		runtime.Gosched()
		return false
	}
	if w.park == 0 {
		w.park = shmParkMin
	} else if w.park < shmParkMax {
		w.park *= 2
	}
	time.Sleep(w.park)
	w.idle += w.park
	if w.idle >= shmProbeEvery {
		w.idle = 0
		return true
	}
	return false
}

func (w *shmWaiter) reset() { *w = shmWaiter{} }

// SHMMesh is the shared-memory transport for co-located workers: a
// full mesh over mmap'd single-producer/single-consumer rings, one per
// directed peer pair, with OFD-lock liveness detection. See the
// package comment in shm.go for the design. It satisfies Mesh with the
// same failure semantics as TCPMesh: link failures surface from Recv
// (and blocked sends) as *ErrPeerDown, Close is graceful and
// idempotent.
type SHMMesh struct {
	self int
	n    int
	opts SHMOptions

	egress   []*shmRing // indexed by peer; nil at self
	ingress  []*shmRing
	egressMu []sync.Mutex

	lock *os.File // held OFD write lock = this node is alive

	inbox chan Message
	loop  *loopQueue

	// mapMu guards the mappings' validity: every ring access holds it
	// for reading; the post-Close unmapper takes it for writing once
	// all readers and senders have observed closed and drained out.
	mapMu sync.RWMutex

	closed    chan struct{}
	closeOnce sync.Once

	down     chan struct{}
	downOnce sync.Once
	downErr  error

	// Elastic per-peer lifecycle: gone slots swallow sends and stop
	// feeding the inbox. Guarded by goneMu.
	goneMu sync.Mutex
	gone   []bool

	wg sync.WaitGroup
}

// NewSHMMesh joins a mesh of n co-located nodes as node self,
// rendezvousing through opts.Dir. It blocks until every peer has
// created and locked its liveness file, bounded by the setup timeout.
func NewSHMMesh(self, n int, opts SHMOptions) (*SHMMesh, error) {
	if n <= 0 || self < 0 || self >= n {
		return nil, fmt.Errorf("transport: self %d out of range for %d nodes", self, n)
	}
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("transport: shm dir: %w", err)
	}
	m := &SHMMesh{
		self:     self,
		n:        n,
		opts:     opts,
		egress:   make([]*shmRing, n),
		ingress:  make([]*shmRing, n),
		egressMu: make([]sync.Mutex, n),
		inbox:    make(chan Message, opts.InboxDepth),
		loop:     newLoopQueue(),
		closed:   make(chan struct{}),
		down:     make(chan struct{}),
		gone:     make([]bool, n),
	}

	lockPath := filepath.Join(opts.Dir, shmLockName(self))
	lf, err := os.OpenFile(lockPath, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("transport: shm liveness lock: %w", err)
	}
	lk := syscall.Flock_t{Type: syscall.F_WRLCK}
	if err := syscall.FcntlFlock(lf.Fd(), fcntlOFDSetLk, &lk); err != nil {
		lf.Close()
		return nil, fmt.Errorf("transport: node %d already running in %s (liveness lock held): %w", self, opts.Dir, err)
	}
	m.lock = lf

	fail := func(err error) (*SHMMesh, error) {
		for _, rs := range [2][]*shmRing{m.egress, m.ingress} {
			for _, r := range rs {
				if r != nil {
					r.unmap()
				}
			}
		}
		lf.Close()
		return nil, err
	}
	for peer := 0; peer < n; peer++ {
		if peer == self {
			continue
		}
		eg, err := openShmRing(filepath.Join(opts.Dir, shmRingName(self, peer)), opts.RingBytes)
		if err != nil {
			return fail(err)
		}
		m.egress[peer] = eg
		in, err := openShmRing(filepath.Join(opts.Dir, shmRingName(peer, self)), opts.RingBytes)
		if err != nil {
			return fail(err)
		}
		m.ingress[peer] = in
	}
	if err := m.awaitPeers(time.Now().Add(opts.SetupTimeout)); err != nil {
		return fail(err)
	}
	for peer := 0; peer < n; peer++ {
		if peer == self {
			continue
		}
		m.wg.Add(1)
		go m.runReader(peer, m.ingress[peer])
	}
	return m, nil
}

func shmRingName(from, to int) string { return fmt.Sprintf("ring-%d-%d.shm", from, to) }
func shmLockName(id int) string       { return fmt.Sprintf("peer-%d.lock", id) }

// peerAlive probes whether the peer currently holds its liveness lock.
// F_OFD_GETLK tests without acquiring, so a probe can never disturb a
// starting peer's own acquisition.
func (m *SHMMesh) peerAlive(peer int) bool {
	f, err := os.OpenFile(filepath.Join(m.opts.Dir, shmLockName(peer)), os.O_RDWR, 0)
	if err != nil {
		return false // not created yet, or gone
	}
	defer f.Close()
	lk := syscall.Flock_t{Type: syscall.F_WRLCK}
	if err := syscall.FcntlFlock(f.Fd(), fcntlOFDGetLk, &lk); err != nil {
		return false
	}
	return lk.Type != syscall.F_UNLCK
}

// awaitPeers is the setup barrier: every peer must be holding its
// liveness lock before any traffic flows.
func (m *SHMMesh) awaitPeers(deadline time.Time) error {
	for peer := 0; peer < m.n; peer++ {
		if peer == m.self {
			continue
		}
		for !m.peerAlive(peer) {
			if time.Now().After(deadline) {
				return fmt.Errorf("transport: shm setup: peer %d never appeared in %s", peer, m.opts.Dir)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	return nil
}

// peerDown records the first link failure; see TCPMesh.peerDown.
func (m *SHMMesh) peerDown(peer int, cause error) {
	m.downOnce.Do(func() {
		m.downErr = &ErrPeerDown{Peer: peer, Cause: cause}
		close(m.down)
	})
}

// errShmDetached is writeRecord's elastic-mode signal that the frame
// was dropped because the destination is detached; Send/SendBatch
// translate it to a silent success.
var errShmDetached = errors.New("shm peer detached")

// markPeerGone detaches one peer of an elastic endpoint; mirror of
// TCPMesh.markPeerGone (nil cause = graceful/administrative, silent;
// non-nil = crash, injects MsgPeerGone).
func (m *SHMMesh) markPeerGone(peer int, cause error) {
	m.goneMu.Lock()
	if m.gone[peer] {
		m.goneMu.Unlock()
		return
	}
	m.gone[peer] = true
	m.goneMu.Unlock()
	if cause == nil {
		return
	}
	select {
	case m.inbox <- Message{Type: MsgPeerGone, From: int32(peer)}:
	case <-m.closed:
	}
}

func (m *SHMMesh) isGone(peer int) bool {
	if !m.opts.Elastic {
		return false
	}
	m.goneMu.Lock()
	defer m.goneMu.Unlock()
	return m.gone[peer]
}

// Detach severs the link to one peer without tearing the mesh down:
// later sends to it drop silently and its ingress ring is flagged
// receiver-closed so the peer's own pending writes unblock. No
// MsgPeerGone is synthesized. Elastic endpoints only; shm slots cannot
// re-attach.
func (m *SHMMesh) Detach(peer int) error {
	if !m.opts.Elastic {
		return fmt.Errorf("transport: SHMMesh.Detach needs SHMOptions.Elastic")
	}
	if peer < 0 || peer >= m.n || peer == m.self {
		return fmt.Errorf("transport: bad detach peer %d", peer)
	}
	m.markPeerGone(peer, nil)
	m.mapMu.RLock()
	defer m.mapMu.RUnlock()
	select {
	case <-m.closed:
		return nil
	default:
	}
	if r := m.ingress[peer]; r != nil {
		atomic.OrUint32(r.flagsPtr(), shmFlagReceiverClosed)
	}
	return nil
}

// Self returns this endpoint's node id.
func (m *SHMMesh) Self() int { return m.self }

// N returns the mesh size.
func (m *SHMMesh) N() int { return m.n }

// checkFrameSize rejects oversized payloads at the sender; identical
// policy to TCPMesh (loopback included).
func (m *SHMMesh) checkFrameSize(to int, msg Message) error {
	if len(msg.Payload) > m.opts.MaxFrameBytes-headerLen {
		return fmt.Errorf("transport: %d-byte payload to peer %d exceeds MaxFrameBytes %d",
			len(msg.Payload), to, m.opts.MaxFrameBytes)
	}
	return nil
}

// loopback queues a self-addressed message; see TCPMesh.loopback for
// why it must never block and why frame bounds still apply.
func (m *SHMMesh) loopback(msg Message) error {
	if err := m.checkFrameSize(m.self, msg); err != nil {
		return err
	}
	select {
	case <-m.closed:
		return ErrClosed
	default:
	}
	m.loop.push(msg)
	return nil
}

// writeRecord copies one frame into the egress ring to peer `to` and
// publishes it by advancing tail. Caller holds egressMu[to] and the
// map read lock. Blocks while the ring is full, bailing out if the
// mesh closes, the receiver detaches, or the peer's liveness lock
// drops (crash).
func (m *SHMMesh) writeRecord(to int, r *shmRing, msg Message) error {
	need := uint64(4 + headerLen + len(msg.Payload))
	tail := atomic.LoadUint64(r.tailPtr())
	var w shmWaiter
	for tail+need-r.cachedHead > r.size {
		r.cachedHead = atomic.LoadUint64(r.headPtr())
		if tail+need-r.cachedHead <= r.size {
			break
		}
		if atomic.LoadUint32(r.flagsPtr())&shmFlagReceiverClosed != 0 {
			if m.opts.Elastic {
				m.markPeerGone(to, nil)
				return errShmDetached
			}
			return &ErrPeerDown{Peer: to, Cause: errors.New("peer closed its endpoint")}
		}
		select {
		case <-m.closed:
			return ErrClosed
		default:
		}
		if w.pause() && !m.peerAlive(to) {
			// The flag store precedes the lock release in Close, so a
			// freed lock with no flag set is a crash, not a race.
			if atomic.LoadUint32(r.flagsPtr())&shmFlagReceiverClosed != 0 {
				if m.opts.Elastic {
					m.markPeerGone(to, nil)
					return errShmDetached
				}
				return &ErrPeerDown{Peer: to, Cause: errors.New("peer closed its endpoint")}
			}
			err := errors.New("liveness lock released without goodbye (peer crashed?)")
			if m.opts.Elastic {
				m.markPeerGone(to, err)
				return errShmDetached
			}
			m.peerDown(to, err)
			return &ErrPeerDown{Peer: to, Cause: err}
		}
	}
	var hdr [4 + headerLen]byte
	b := appendPrefixedHeader(hdr[:0], msg)
	r.copyIn(tail, b)
	if len(msg.Payload) > 0 {
		r.copyIn(tail+uint64(len(b)), msg.Payload)
	}
	// Publish only after the record is fully in place: the consumer
	// acquires via this tail load, so it can never observe a torn frame.
	atomic.StoreUint64(r.tailPtr(), tail+need)
	return nil
}

// Send delivers msg to node `to` (loopback short-circuits the ring).
func (m *SHMMesh) Send(to int, msg Message) error {
	msg.From = int32(m.self)
	if to == m.self {
		return m.loopback(msg)
	}
	if to < 0 || to >= m.n {
		return fmt.Errorf("transport: no ring to %d", to)
	}
	if err := m.checkFrameSize(to, msg); err != nil {
		return err
	}
	if m.isGone(to) {
		return nil // elastic: detached peer, frame dropped
	}
	m.mapMu.RLock()
	defer m.mapMu.RUnlock()
	select {
	case <-m.closed:
		return ErrClosed
	default:
	}
	m.egressMu[to].Lock()
	err := m.writeRecord(to, m.egress[to], msg)
	m.egressMu[to].Unlock()
	if err == errShmDetached {
		return nil
	}
	if err == nil && m.opts.OnCopy != nil {
		m.opts.OnCopy(4 + headerLen + len(msg.Payload))
	}
	return err
}

// SendBatch writes all frames into the ring under one lock
// acquisition. Frames publish individually (a batch larger than the
// ring must still flow), but the consumer sees them in order.
func (m *SHMMesh) SendBatch(to int, msgs []Message) error {
	if len(msgs) == 0 {
		return nil
	}
	if to == m.self {
		for _, msg := range msgs {
			msg.From = int32(m.self)
			if err := m.loopback(msg); err != nil {
				return err
			}
		}
		return nil
	}
	if to < 0 || to >= m.n {
		return fmt.Errorf("transport: no ring to %d", to)
	}
	for _, msg := range msgs {
		if err := m.checkFrameSize(to, msg); err != nil {
			return err
		}
	}
	if m.isGone(to) {
		return nil // elastic: detached peer, batch dropped
	}
	m.mapMu.RLock()
	defer m.mapMu.RUnlock()
	select {
	case <-m.closed:
		return ErrClosed
	default:
	}
	m.egressMu[to].Lock()
	total := 0
	var err error
	for _, msg := range msgs {
		msg.From = int32(m.self)
		if err = m.writeRecord(to, m.egress[to], msg); err != nil {
			break
		}
		total += 4 + headerLen + len(msg.Payload)
	}
	m.egressMu[to].Unlock()
	if err == errShmDetached {
		err = nil // elastic: peer detached mid-batch, remainder dropped
	}
	if total > 0 && m.opts.OnCopy != nil {
		m.opts.OnCopy(total)
	}
	return err
}

// runReader pumps one ingress ring into the inbox; mirror of
// TCPMesh.readLoop.
func (m *SHMMesh) runReader(peer int, r *shmRing) {
	defer m.wg.Done()
	m.mapMu.RLock()
	defer m.mapMu.RUnlock()
	err := m.readRecords(peer, r)
	select {
	case <-m.closed:
		return
	default:
	}
	if m.opts.Elastic {
		// Goodbye (nil) detaches silently; a crash or corrupt ring
		// injects MsgPeerGone. Every record the peer published is
		// already in the inbox ahead of the event.
		m.markPeerGone(peer, err)
		return
	}
	if err == nil {
		return
	}
	m.peerDown(peer, err)
}

// readRecords consumes frames until the producer says goodbye (nil),
// the mesh closes (nil), or the link fails (the cause).
func (m *SHMMesh) readRecords(peer int, r *shmRing) error {
	var w shmWaiter
	for {
		head := atomic.LoadUint64(r.headPtr())
		if r.cachedTail == head {
			r.cachedTail = atomic.LoadUint64(r.tailPtr())
		}
		if r.cachedTail == head {
			// Drained. Goodbye flag is only honored on an empty ring, so
			// everything sent before a graceful Close is delivered.
			if atomic.LoadUint32(r.flagsPtr())&shmFlagSenderClosed != 0 {
				if t := atomic.LoadUint64(r.tailPtr()); t != head {
					r.cachedTail = t
					continue
				}
				return nil
			}
			select {
			case <-m.closed:
				return nil
			default:
			}
			if w.pause() && !m.peerAlive(peer) {
				// Re-check the flag: its store precedes the lock release
				// on a graceful close.
				if atomic.LoadUint32(r.flagsPtr())&shmFlagSenderClosed != 0 {
					continue
				}
				return errors.New("liveness lock released without goodbye (peer crashed?)")
			}
			continue
		}
		w.reset()
		avail := r.cachedTail - head
		var pfx [4]byte
		r.copyOut(head, pfx[:])
		n := uint64(binary.LittleEndian.Uint32(pfx[:]))
		if n < headerLen || n > uint64(m.opts.MaxFrameBytes) || 4+n > avail {
			return fmt.Errorf("corrupt ring record: %d-byte frame, %d available, cap %d", n, avail, m.opts.MaxFrameBytes)
		}
		// Same lease discipline as the TCP read loop: the frame body
		// lands in a pooled buffer that travels with the message.
		ref := LeasePayload(int(n))
		body := ref.Bytes()[:n]
		r.copyOut(head+4, body)
		atomic.StoreUint64(r.headPtr(), head+4+n)
		msg, err := decode(body)
		if err != nil {
			ref.Release()
			return err
		}
		if msg.Type == msgGoodbye {
			ref.Release()
			return nil
		}
		msg.lease = ref
		select {
		case m.inbox <- msg:
		case <-m.closed:
			ref.Release()
		}
	}
}

// Recv blocks for the next inbound message (loopback queue first, then
// the ring inbox); identical delivery and failure order to TCPMesh.
func (m *SHMMesh) Recv() (Message, error) {
	for {
		if msg, ok := m.loop.pop(); ok {
			return msg, nil
		}
		select {
		case msg := <-m.inbox:
			return msg, nil
		case <-m.loop.sig:
			// Re-check the loopback queue at the top of the loop.
		case <-m.down:
			if msg, ok := m.loop.pop(); ok {
				return msg, nil
			}
			select {
			case msg := <-m.inbox:
				return msg, nil
			default:
				return Message{}, m.downErr
			}
		case <-m.closed:
			if msg, ok := m.loop.pop(); ok {
				return msg, nil
			}
			select {
			case msg := <-m.inbox:
				return msg, nil
			default:
				return Message{}, ErrClosed
			}
		}
	}
}

// Close shuts the endpoint down gracefully: goodbye flags first (so
// peers distinguish departure from death), then the liveness lock
// drops, then local senders/readers unblock and the mappings are
// reclaimed in the background once they have all drained out.
// Idempotent.
func (m *SHMMesh) Close() error {
	m.closeOnce.Do(func() {
		for _, r := range m.egress {
			if r != nil {
				atomic.OrUint32(r.flagsPtr(), shmFlagSenderClosed)
			}
		}
		for _, r := range m.ingress {
			if r != nil {
				atomic.OrUint32(r.flagsPtr(), shmFlagReceiverClosed)
			}
		}
		m.lock.Close()
		close(m.closed)
		go m.reclaim()
	})
	return nil
}

// crashForTest simulates an abrupt process death: the liveness lock
// drops exactly as the kernel would drop it on SIGKILL, and no goodbye
// flag is ever set, so peers must detect the crash and surface
// *ErrPeerDown. Local goroutines stop (the test process lives on).
func (m *SHMMesh) crashForTest() {
	m.closeOnce.Do(func() {
		m.lock.Close()
		close(m.closed)
		go m.reclaim()
	})
}

// reclaim unmaps every ring once all local readers and in-flight
// senders have observed closed and released their map read locks.
func (m *SHMMesh) reclaim() {
	m.wg.Wait()
	// The readers are done, so nothing more lands in the inbox. Release
	// whatever the consumer never collected: a record that raced the
	// close — reader buffered it just as Recv reported ErrClosed on a
	// momentarily empty inbox — would otherwise hold its payload lease
	// forever.
	for {
		select {
		case msg := <-m.inbox:
			msg.ReleasePayload()
		default:
			goto drained
		}
	}
drained:
	m.mapMu.Lock()
	defer m.mapMu.Unlock()
	for _, rs := range [2][]*shmRing{m.egress, m.ingress} {
		for _, r := range rs {
			if r != nil {
				r.unmap()
			}
		}
	}
}
