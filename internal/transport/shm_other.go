//go:build !linux

package transport

import (
	"errors"
	"fmt"
)

var errSHMUnsupported = errors.New("transport: shm transport is linux-only")

// SHMMesh is only implemented on Linux (mmap + OFD liveness locks).
// This stub keeps cross-platform builds working; co-located workers on
// other systems fall back to TCP over loopback.
type SHMMesh struct{}

// NewSHMMesh fails on non-Linux platforms.
func NewSHMMesh(self, n int, opts SHMOptions) (*SHMMesh, error) {
	if _, err := opts.withDefaults(); err != nil {
		return nil, err
	}
	return nil, fmt.Errorf("%w (this build targets a different OS); use the tcp transport", errSHMUnsupported)
}

// Self satisfies Mesh on the stub.
func (m *SHMMesh) Self() int { return 0 }

// N satisfies Mesh on the stub.
func (m *SHMMesh) N() int { return 0 }

// Send satisfies Mesh on the stub.
func (m *SHMMesh) Send(to int, msg Message) error { return errSHMUnsupported }

// SendBatch satisfies Mesh on the stub.
func (m *SHMMesh) SendBatch(to int, msgs []Message) error { return errSHMUnsupported }

// Recv satisfies Mesh on the stub.
func (m *SHMMesh) Recv() (Message, error) { return Message{}, errSHMUnsupported }

// Detach satisfies Mesh on the stub.
func (m *SHMMesh) Detach(peer int) error { return errSHMUnsupported }

// Close satisfies Mesh on the stub.
func (m *SHMMesh) Close() error { return nil }
