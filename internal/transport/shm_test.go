//go:build linux

package transport

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// shmMeshes forms an n-node shared-memory mesh in-process (OFD locks
// conflict between open file descriptions, so endpoints in one test
// process behave exactly like separate processes). Construction is
// concurrent because NewSHMMesh barriers on every peer's liveness lock.
func shmMeshes(t testing.TB, n int, opts SHMOptions) []*SHMMesh {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	ms := make([]*SHMMesh, n)
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			m, err := NewSHMMesh(i, n, opts)
			if err != nil {
				errs <- err
				return
			}
			ms[i] = m
		}()
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	return ms
}

func TestSHMMeshBasicExchange(t *testing.T) {
	base := OutstandingPayloadLeases()
	ms := shmMeshes(t, 3, SHMOptions{})

	// Remote send with payload integrity.
	payload := make([]byte, 1000)
	for i := range payload {
		payload[i] = byte(i)
	}
	if err := ms[0].Send(1, Message{Type: MsgPush, Layer: 3, Chunk: 2, Iter: 7, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	msg, err := ms[1].Recv()
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type != MsgPush || msg.From != 0 || msg.Layer != 3 || msg.Chunk != 2 || msg.Iter != 7 {
		t.Fatalf("header mismatch: %+v", msg)
	}
	if len(msg.Payload) != len(payload) {
		t.Fatalf("payload length %d, want %d", len(msg.Payload), len(payload))
	}
	for i, b := range msg.Payload {
		if b != byte(i) {
			t.Fatalf("payload[%d] = %d, want %d", i, b, byte(i))
		}
	}
	msg.ReleasePayload()

	// Batch ordering across a different directed pair.
	var batch []Message
	for i := 0; i < 32; i++ {
		batch = append(batch, Message{Type: MsgSF, Iter: int32(i), Payload: []byte{byte(i)}})
	}
	if err := ms[2].SendBatch(0, batch); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		got, err := ms[0].Recv()
		if err != nil {
			t.Fatal(err)
		}
		if got.From != 2 || got.Iter != int32(i) || got.Payload[0] != byte(i) {
			t.Fatalf("batch msg %d out of order: %+v", i, got)
		}
		got.ReleasePayload()
	}

	// Loopback.
	if err := ms[1].Send(1, Message{Type: MsgBarrier}); err != nil {
		t.Fatal(err)
	}
	if got, err := ms[1].Recv(); err != nil || got.Type != MsgBarrier {
		t.Fatalf("loopback recv: %+v %v", got, err)
	}

	for _, m := range ms {
		m.Close()
	}
	drainLeases(t, base)
}

// The ring must survive many wraparounds at the worst case: frames at
// exactly MaxFrameBytes in a ring sized to hold barely more than one,
// with the consumer applying backpressure. Payload integrity is
// verified on every frame — a wrap bug shows up as torn bytes.
func TestSHMRingWraparoundMaxFrames(t *testing.T) {
	base := OutstandingPayloadLeases()
	const ring = 4096
	ms := shmMeshes(t, 2, SHMOptions{RingBytes: ring})
	// MaxFrameBytes defaults to RingBytes-4: one max frame plus its
	// prefix exactly fills the ring.
	maxPayload := ms[0].opts.MaxFrameBytes - headerLen

	const frames = 64
	done := make(chan error, 1)
	go func() {
		payload := make([]byte, maxPayload)
		for i := 0; i < frames; i++ {
			for j := range payload {
				payload[j] = byte(i + j)
			}
			if err := ms[0].Send(1, Message{Type: MsgPush, Iter: int32(i), Payload: payload}); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < frames; i++ {
		msg, err := ms[1].Recv()
		if err != nil {
			t.Fatal(err)
		}
		if msg.Iter != int32(i) || len(msg.Payload) != maxPayload {
			t.Fatalf("frame %d: iter %d, %d bytes (want %d)", i, msg.Iter, len(msg.Payload), maxPayload)
		}
		for j, b := range msg.Payload {
			if b != byte(i+j) {
				t.Fatalf("frame %d torn at byte %d: got %d want %d", i, j, b, byte(i+j))
			}
		}
		msg.ReleasePayload()
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	ms[0].Close()
	ms[1].Close()
	drainLeases(t, base)
}

// Frame bounds apply on the remote and loopback paths alike, same
// policy as TCPMesh.
func TestSHMRejectsOversizedFrame(t *testing.T) {
	ms := shmMeshes(t, 2, SHMOptions{RingBytes: 4096})
	defer ms[0].Close()
	defer ms[1].Close()

	big := Message{Type: MsgPush, Payload: make([]byte, 8192)}
	if err := ms[0].Send(1, big); err == nil || !contains(err.Error(), "MaxFrameBytes") {
		t.Fatalf("Send err = %v, want MaxFrameBytes rejection", err)
	}
	if err := ms[0].Send(0, big); err == nil || !contains(err.Error(), "MaxFrameBytes") {
		t.Fatalf("loopback Send err = %v, want MaxFrameBytes rejection", err)
	}
	if err := ms[0].SendBatch(1, []Message{big, {Type: MsgPush}}); err == nil || !contains(err.Error(), "MaxFrameBytes") {
		t.Fatalf("SendBatch err = %v, want MaxFrameBytes rejection", err)
	}
	// The link stays healthy after local rejections.
	if err := ms[0].Send(1, Message{Type: MsgBarrier}); err != nil {
		t.Fatal(err)
	}
	if msg, err := ms[1].Recv(); err != nil || msg.Type != MsgBarrier {
		t.Fatalf("recv after rejected send: %+v %v", msg, err)
	}
}

// A peer whose liveness lock drops without the goodbye flag has
// crashed; an idle receiver must surface *ErrPeerDown, not hang.
func TestSHMPeerCrashSurfacesErrPeerDown(t *testing.T) {
	ms := shmMeshes(t, 2, SHMOptions{})
	defer ms[0].Close()

	ms[1].crashForTest()
	assertPeerDown(t, ms[0], 1)
}

// A sender blocked on a full ring whose consumer crashes must unblock
// with *ErrPeerDown instead of spinning forever.
func TestSHMBlockedSenderUnblocksOnPeerCrash(t *testing.T) {
	ms := shmMeshes(t, 2, SHMOptions{RingBytes: 4096})
	defer ms[0].Close()

	// ms[1] never reads; fill its inbox-side ring until Send blocks,
	// then crash the consumer. Payloads near max frame size fill the
	// ring in a handful of sends.
	payload := make([]byte, ms[0].opts.MaxFrameBytes-headerLen)
	errc := make(chan error, 1)
	go func() {
		for {
			if err := ms[0].Send(1, Message{Type: MsgPush, Payload: payload}); err != nil {
				errc <- err
				return
			}
		}
	}()
	// Give the sender time to wedge against the full ring, then crash.
	time.Sleep(50 * time.Millisecond)
	ms[1].crashForTest()
	select {
	case err := <-errc:
		var pd *ErrPeerDown
		if !errors.As(err, &pd) || pd.Peer != 1 {
			t.Fatalf("blocked Send err = %v, want *ErrPeerDown{Peer: 1}", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Send still blocked 10s after consumer crash")
	}
}

// A gracefully closed peer is not a failure: everything it sent before
// Close must be delivered, and the receiver's ring reader ends quietly
// (Recv keeps serving other links until the local endpoint closes).
func TestSHMGracefulCloseDeliversInFlight(t *testing.T) {
	base := OutstandingPayloadLeases()
	ms := shmMeshes(t, 2, SHMOptions{})

	const frames = 100
	for i := 0; i < frames; i++ {
		if err := ms[0].Send(1, Message{Type: MsgPush, Iter: int32(i), Payload: []byte{1, 2, 3}}); err != nil {
			t.Fatal(err)
		}
	}
	ms[0].Close()
	for i := 0; i < frames; i++ {
		msg, err := ms[1].Recv()
		if err != nil {
			t.Fatalf("frame %d after graceful close: %v", i, err)
		}
		if msg.Iter != int32(i) {
			t.Fatalf("frame %d: got iter %d", i, msg.Iter)
		}
		msg.ReleasePayload()
	}
	ms[1].Close()
	if _, err := ms[1].Recv(); err != ErrClosed {
		t.Fatalf("Recv after Close = %v, want ErrClosed", err)
	}
	drainLeases(t, base)
}

// Close racing a storm of concurrent SendBatch calls must neither
// deadlock, drop lease references, nor touch unmapped memory. Run with
// -race.
func TestSHMCloseRacesSendBatch(t *testing.T) {
	base := OutstandingPayloadLeases()
	ms := shmMeshes(t, 2, SHMOptions{RingBytes: 1 << 16})

	// Consumer drains until its endpoint reports closure or peer loss.
	var consumerWG sync.WaitGroup
	consumerWG.Add(1)
	go func() {
		defer consumerWG.Done()
		for {
			msg, err := ms[1].Recv()
			if err != nil {
				return
			}
			msg.ReleasePayload()
		}
	}()

	var senderWG sync.WaitGroup
	for g := 0; g < 4; g++ {
		senderWG.Add(1)
		go func() {
			defer senderWG.Done()
			for i := 0; ; i++ {
				var batch []Message
				for j := 0; j < 8; j++ {
					ref := LeasePayload(512)
					batch = append(batch, Message{Type: MsgPush, Iter: int32(i), Payload: ref.Bytes()[:512], lease: ref})
				}
				err := ms[0].SendBatch(1, batch)
				for _, msg := range batch {
					msg.ReleasePayload()
				}
				if err != nil {
					var pd *ErrPeerDown
					if err != ErrClosed && !errors.As(err, &pd) {
						panic(fmt.Sprintf("unexpected SendBatch error: %v", err))
					}
					return
				}
			}
		}()
	}

	time.Sleep(20 * time.Millisecond)
	ms[0].Close()
	senderWG.Wait()
	ms[1].Close()
	consumerWG.Wait()
	drainLeases(t, base)
}

// Two endpoints claiming the same node id in the same rendezvous
// directory is a deployment error and must fail loudly at setup.
func TestSHMDuplicateIDRejected(t *testing.T) {
	dir := t.TempDir()
	ms := shmMeshes(t, 2, SHMOptions{Dir: dir})
	defer ms[0].Close()
	defer ms[1].Close()

	if _, err := NewSHMMesh(0, 2, SHMOptions{Dir: dir}); err == nil || !contains(err.Error(), "already running") {
		t.Fatalf("duplicate id err = %v, want liveness-lock rejection", err)
	}
}

// An elastic shm endpoint survives a peer crash: the dead slot is
// detached, a synthetic MsgPeerGone surfaces through Recv, and the
// survivors keep exchanging traffic — the same contract the elastic
// ChanMesh and TCPMesh present.
func TestSHMElasticCrashDeliversPeerGone(t *testing.T) {
	ms := shmMeshes(t, 3, SHMOptions{Elastic: true})
	defer ms[0].Close()
	defer ms[1].Close()

	ms[2].crashForTest()
	for _, r := range []int{0, 1} {
		msg := recvType(t, ms[r], MsgPeerGone)
		if msg.From != 2 {
			t.Fatalf("rank %d: MsgPeerGone.From = %d, want 2", r, msg.From)
		}
	}
	// Sends to the dead slot drop silently; survivor traffic flows.
	if err := ms[0].Send(2, Message{Type: MsgPush}); err != nil {
		t.Fatalf("send to dead slot: %v", err)
	}
	if err := ms[0].Send(1, Message{Type: MsgBcast, Iter: 5}); err != nil {
		t.Fatal(err)
	}
	if msg := recvType(t, ms[1], MsgBcast); msg.From != 0 || msg.Iter != 5 {
		t.Fatalf("survivor traffic corrupted: %+v", msg)
	}
}

// Detaching a peer administratively must not synthesize MsgPeerGone,
// must drop sends to it, and must flag its ingress ring so the peer's
// own blocked writes unblock.
func TestSHMElasticDetach(t *testing.T) {
	ms := shmMeshes(t, 2, SHMOptions{Elastic: true})
	defer ms[0].Close()
	defer ms[1].Close()

	if err := ms[0].Detach(1); err != nil {
		t.Fatal(err)
	}
	if err := ms[0].Send(1, Message{Type: MsgPush}); err != nil {
		t.Fatalf("send after detach: %v", err)
	}
	// Non-elastic endpoints refuse Detach.
	fixed := shmMeshes(t, 2, SHMOptions{})
	defer fixed[0].Close()
	defer fixed[1].Close()
	if err := fixed[0].Detach(1); err == nil {
		t.Fatal("Detach on a fixed-size shm mesh must fail")
	}
}
