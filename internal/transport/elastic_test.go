package transport

import (
	"errors"
	"testing"
	"time"
)

// assertPeerDown asserts the shared Mesh contract for peer-death
// reporting: every transport surfaces a *ErrPeerDown that errors.As can
// extract, naming the failed peer, with a non-nil cause reachable
// through errors.Is — so callers can branch on peer identity and cause
// identically whether the mesh is in-process, TCP, or shared memory.
func assertPeerDownErr(t *testing.T, err error, wantPeer int) *ErrPeerDown {
	t.Helper()
	if err == nil {
		t.Fatal("want *ErrPeerDown, got nil")
	}
	var pd *ErrPeerDown
	if !errors.As(err, &pd) {
		t.Fatalf("errors.As failed on %T: %v", err, err)
	}
	if pd.Peer != wantPeer {
		t.Fatalf("ErrPeerDown.Peer = %d, want %d", pd.Peer, wantPeer)
	}
	if pd.Cause == nil {
		t.Fatal("ErrPeerDown.Cause is nil")
	}
	if !errors.Is(err, pd.Cause) {
		t.Fatalf("errors.Is(err, cause) failed: err=%v cause=%v", err, pd.Cause)
	}
	return pd
}

// recvType drains msgs from m until one of type want arrives (releasing
// payload leases of everything skipped), bounded by a timeout.
func recvType(t *testing.T, m Mesh, want MsgType) Message {
	t.Helper()
	type result struct {
		msg Message
		err error
	}
	done := make(chan result, 1)
	go func() {
		for {
			msg, err := m.Recv()
			if err != nil {
				done <- result{err: err}
				return
			}
			if msg.Type == want {
				done <- result{msg: msg}
				return
			}
			msg.ReleasePayload()
		}
	}()
	select {
	case r := <-done:
		if r.err != nil {
			t.Fatalf("recv waiting for type %d: %v", want, r.err)
		}
		return r.msg
	case <-time.After(5 * time.Second):
		t.Fatalf("no message of type %d within 5s", want)
	}
	panic("unreachable")
}

func TestSyntheticLifecycleTypesRejectedOnWire(t *testing.T) {
	for _, typ := range []MsgType{MsgPeerGone, MsgPeerUp} {
		if _, err := decode(encode(Message{Type: typ, From: 1})); err == nil {
			t.Fatalf("synthetic type %#x decoded from the wire", typ)
		}
	}
}

func TestChanClusterKillConformance(t *testing.T) {
	cl := NewElasticChanCluster(3)
	t.Cleanup(cl.Close)

	cl.Kill(2)
	// The killed endpoint behaves like the dead process it models.
	_, err := cl.Endpoint(2).Recv()
	assertPeerDownErr(t, err, 2)
	assertPeerDownErr(t, cl.Endpoint(2).Send(0, Message{Type: MsgPush}), 2)

	// Survivors observe a synthetic MsgPeerGone, not an endpoint error.
	for _, r := range []int{0, 1} {
		msg := recvType(t, cl.Endpoint(r), MsgPeerGone)
		if msg.From != 2 {
			t.Fatalf("rank %d: MsgPeerGone.From = %d, want 2", r, msg.From)
		}
	}
	// Sends to the dead rank vanish silently; survivor traffic flows.
	if err := cl.Endpoint(0).Send(2, Message{Type: MsgPush}); err != nil {
		t.Fatalf("send to dead rank: %v", err)
	}
	if err := cl.Endpoint(0).Send(1, Message{Type: MsgBcast, Iter: 9}); err != nil {
		t.Fatal(err)
	}
	if msg := recvType(t, cl.Endpoint(1), MsgBcast); msg.Iter != 9 {
		t.Fatalf("survivor traffic corrupted: %+v", msg)
	}
	// Kill is idempotent.
	cl.Kill(2)
}

func TestChanClusterJoinDeliversPeerUp(t *testing.T) {
	cl := NewElasticChanCluster(3)
	t.Cleanup(cl.Close)

	cl.Kill(1)
	for _, r := range []int{0, 2} {
		recvType(t, cl.Endpoint(r), MsgPeerGone)
	}
	rejoined := cl.Join(1)
	for _, r := range []int{0, 2} {
		if msg := recvType(t, cl.Endpoint(r), MsgPeerUp); msg.From != 1 {
			t.Fatalf("rank %d: MsgPeerUp.From = %d, want 1", r, msg.From)
		}
	}
	// The rejoined slot sends and receives again.
	if err := rejoined.Send(0, Message{Type: MsgSF, Iter: 3}); err != nil {
		t.Fatal(err)
	}
	if msg := recvType(t, cl.Endpoint(0), MsgSF); msg.From != 1 || msg.Iter != 3 {
		t.Fatalf("traffic from rejoined rank: %+v", msg)
	}
	if err := cl.Endpoint(2).Send(1, Message{Type: MsgBarrier}); err != nil {
		t.Fatal(err)
	}
	recvType(t, rejoined, MsgBarrier)
}

func TestChanMeshDetachDropsSendsSilently(t *testing.T) {
	cl := NewElasticChanCluster(2)
	t.Cleanup(cl.Close)
	if err := cl.Endpoint(0).Detach(1); err != nil {
		t.Fatal(err)
	}
	if err := cl.Endpoint(0).Send(1, Message{Type: MsgPush}); err != nil {
		t.Fatalf("send after detach: %v", err)
	}
	// Non-elastic clusters refuse Detach.
	fixed := NewChanCluster(2)
	t.Cleanup(func() { fixed[0].Close() })
	if err := fixed[0].Detach(1); err == nil {
		t.Fatal("Detach on a fixed-size cluster must fail")
	}
}

func TestTCPPeerDownConformance(t *testing.T) {
	addrs := freeAddrs(t, 2)
	ms := dialMeshOpts(t, addrs, TCPOptions{SetupTimeout: 5 * time.Second})
	t.Cleanup(func() {
		ms[0].Close()
		ms[1].Close()
	})
	// Node 1 vanishes without a goodbye: close the raw socket behind
	// the mesh's back, the shape of a SIGKILL.
	rawConnTo(ms[1], 0).Close()
	_, err := ms[0].Recv()
	assertPeerDownErr(t, err, 1)
}

func TestTCPElasticCrashDeliversPeerGone(t *testing.T) {
	addrs := freeAddrs(t, 3)
	ms := dialMeshOpts(t, addrs, TCPOptions{SetupTimeout: 5 * time.Second, Elastic: true})
	t.Cleanup(func() {
		for _, m := range ms {
			m.Close()
		}
	})
	// Node 2 crashes: both of its sockets die without goodbyes.
	rawConnTo(ms[2], 0).Close()
	rawConnTo(ms[2], 1).Close()
	for _, r := range []int{0, 1} {
		msg := recvType(t, ms[r], MsgPeerGone)
		if msg.From != 2 {
			t.Fatalf("rank %d: MsgPeerGone.From = %d, want 2", r, msg.From)
		}
	}
	// The survivors' mesh is not poisoned: sends to the dead slot drop,
	// survivor traffic flows.
	if err := ms[0].Send(2, Message{Type: MsgPush}); err != nil {
		t.Fatalf("send to dead slot: %v", err)
	}
	if err := ms[0].Send(1, Message{Type: MsgBcast, Iter: 4}); err != nil {
		t.Fatal(err)
	}
	if msg := recvType(t, ms[1], MsgBcast); msg.From != 0 || msg.Iter != 4 {
		t.Fatalf("survivor traffic corrupted: %+v", msg)
	}
}

func TestTCPElasticGoodbyeDetachesSilently(t *testing.T) {
	addrs := freeAddrs(t, 3)
	ms := dialMeshOpts(t, addrs, TCPOptions{SetupTimeout: 5 * time.Second, Elastic: true})
	t.Cleanup(func() {
		ms[0].Close()
		ms[1].Close()
	})
	// Node 2 departs gracefully. Survivors must NOT see MsgPeerGone —
	// graceful departures are negotiated above the transport — and must
	// keep exchanging traffic.
	ms[2].Close()
	time.Sleep(100 * time.Millisecond)
	if err := ms[0].Send(1, Message{Type: MsgBarrier, Iter: 1}); err != nil {
		t.Fatal(err)
	}
	msg, err := ms[1].Recv()
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type == MsgPeerGone {
		t.Fatal("goodbye surfaced as MsgPeerGone")
	}
	if msg.Type != MsgBarrier || msg.From != 0 {
		t.Fatalf("unexpected message: %+v", msg)
	}
	// Sends to the departed slot drop silently.
	if err := ms[0].Send(2, Message{Type: MsgPush}); err != nil {
		t.Fatalf("send to departed slot: %v", err)
	}
}

func TestTCPLateJoinerAttaches(t *testing.T) {
	addrs := freeAddrs(t, 3)
	ms := dialMeshOpts(t, addrs, TCPOptions{SetupTimeout: 5 * time.Second, Elastic: true})
	t.Cleanup(func() {
		for _, m := range ms {
			if m != nil {
				m.Close()
			}
		}
	})
	// Node 2 crashes and its slot is detached by both survivors.
	rawConnTo(ms[2], 0).Close()
	rawConnTo(ms[2], 1).Close()
	for _, r := range []int{0, 1} {
		recvType(t, ms[r], MsgPeerGone)
	}
	// Release the dead node's listener so the replacement can bind the
	// same address (a restarted process would).
	ms[2].Close()
	// A replacement joins the same slot through the live listeners.
	joiner, err := JoinTCPMesh(2, addrs, []int{0, 1}, TCPOptions{SetupTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ms[2] = joiner
	for _, r := range []int{0, 1} {
		if msg := recvType(t, ms[r], MsgPeerUp); msg.From != 2 {
			t.Fatalf("rank %d: MsgPeerUp.From = %d, want 2", r, msg.From)
		}
		if err := ms[r].WaitAttached(2, 5*time.Second); err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	// Full traffic both ways with the re-attached slot.
	if err := joiner.Send(0, Message{Type: MsgSF, Iter: 11}); err != nil {
		t.Fatal(err)
	}
	if msg := recvType(t, ms[0], MsgSF); msg.From != 2 || msg.Iter != 11 {
		t.Fatalf("joiner → survivor: %+v", msg)
	}
	if err := ms[1].Send(2, Message{Type: MsgBcast, Iter: 12}); err != nil {
		t.Fatal(err)
	}
	if msg := recvType(t, joiner, MsgBcast); msg.From != 1 || msg.Iter != 12 {
		t.Fatalf("survivor → joiner: %+v", msg)
	}
}

func TestTCPDetachRequiresElastic(t *testing.T) {
	addrs := freeAddrs(t, 2)
	ms := dialMeshOpts(t, addrs, TCPOptions{SetupTimeout: 5 * time.Second})
	t.Cleanup(func() {
		for _, m := range ms {
			m.Close()
		}
	})
	if err := ms[0].Detach(1); err == nil {
		t.Fatal("Detach on a fixed-size mesh must fail")
	}
}
