package transport

import (
	"sync"
	"testing"
)

// BenchmarkSendBatchTCP measures the TCP fast path for chunked tensor
// pushes: one SendBatch of batchMsgs frames (4 KiB payload each) from
// node 0 to node 1 per op, with the receiver draining concurrently.
// Both endpoints live in this process, so allocs/op covers the whole
// wire path — encode, the coalesced single-write send, and the read
// loop's frame leasing on the far side.
func BenchmarkSendBatchTCP(b *testing.B) {
	const batchMsgs = 16
	const payloadBytes = 4096

	addrs := freeAddrs(b, 2)
	ms := dialMeshOpts(b, addrs, TCPOptions{})
	defer func() {
		for _, m := range ms {
			m.Close()
		}
	}()

	payload := make([]byte, payloadBytes)
	for i := range payload {
		payload[i] = byte(i)
	}
	msgs := make([]Message, batchMsgs)
	for i := range msgs {
		msgs[i] = Message{Type: MsgPush, Layer: 1, Chunk: int32(i), Payload: payload}
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < b.N*batchMsgs; i++ {
			msg, err := ms[1].Recv()
			if err != nil {
				b.Error(err)
				return
			}
			msg.ReleasePayload()
		}
	}()

	b.ReportAllocs()
	b.SetBytes(int64(batchMsgs * payloadBytes))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ms[0].SendBatch(1, msgs); err != nil {
			b.Fatal(err)
		}
	}
	wg.Wait()
}
