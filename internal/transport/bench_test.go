package transport

import (
	"sync"
	"sync/atomic"
	"testing"
)

// runSendBatchBench drives one SendBatch of batchMsgs frames per op
// from ms[0] to ms[1] with the receiver draining concurrently, and
// reports throughput plus copiedB/frame — the bytes the transport
// itself copied per frame, fed by the mesh's OnCopy hook. CI budgets
// both numbers via bench-trend.
func runSendBatchBench(b *testing.B, ms []Mesh, copied *atomic.Int64, batchMsgs, payloadBytes int) {
	payload := make([]byte, payloadBytes)
	for i := range payload {
		payload[i] = byte(i)
	}
	msgs := make([]Message, batchMsgs)
	for i := range msgs {
		msgs[i] = Message{Type: MsgPush, Layer: 1, Chunk: int32(i), Payload: payload}
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < b.N*batchMsgs; i++ {
			msg, err := ms[1].Recv()
			if err != nil {
				b.Error(err)
				return
			}
			msg.ReleasePayload()
		}
	}()

	b.ReportAllocs()
	b.SetBytes(int64(batchMsgs * payloadBytes))
	copied.Store(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ms[0].SendBatch(1, msgs); err != nil {
			b.Fatal(err)
		}
	}
	wg.Wait()
	b.StopTimer()
	b.ReportMetric(float64(copied.Load())/float64(b.N*batchMsgs), "copiedB/frame")
}

func dialBenchTCP(b *testing.B, copied *atomic.Int64) []Mesh {
	addrs := freeAddrs(b, 2)
	tcp := dialMeshOpts(b, addrs, TCPOptions{OnCopy: func(n int) { copied.Add(int64(n)) }})
	ms := make([]Mesh, len(tcp))
	for i, m := range tcp {
		ms[i] = m
	}
	return ms
}

// BenchmarkSendBatchTCP measures the TCP fast path for chunked tensor
// pushes: one SendBatch of 16 frames (4 KiB payload each) from node 0
// to node 1 per op, with the receiver draining concurrently. Both
// endpoints live in this process, so allocs/op covers the whole wire
// path — encode, the vectored writev send, and the read loop's frame
// leasing on the far side. copiedB/frame must stay at prefix+header
// (21 bytes): payloads ride in the writev iovec, never through
// transport scratch.
func BenchmarkSendBatchTCP(b *testing.B) {
	var copied atomic.Int64
	ms := dialBenchTCP(b, &copied)
	defer func() {
		for _, m := range ms {
			m.Close()
		}
	}()
	runSendBatchBench(b, ms, &copied, 16, 4096)
}

// BenchmarkSendBatchWritev is the large-tensor shape of the same path:
// 4 frames of 1 MiB per op. Here the zero-copy egress matters most —
// the kernel pulls 4 MiB straight from the caller's payload buffers
// while the transport copies only 84 header bytes per batch.
func BenchmarkSendBatchWritev(b *testing.B) {
	var copied atomic.Int64
	ms := dialBenchTCP(b, &copied)
	defer func() {
		for _, m := range ms {
			m.Close()
		}
	}()
	runSendBatchBench(b, ms, &copied, 4, 1<<20)
}
