package transport

import (
	"time"

	"repro/internal/metrics"
)

// ObservedMesh wraps a Mesh and invokes callbacks for every
// non-loopback frame: onSent before each outbound frame (including
// each message of a batch), onRecv after each successfully received
// frame. Loopback frames are excluded in both directions — a self-send
// never touches the wire — and the callbacks receive the frame's
// on-wire size (WireBytes, length prefix included). This is the single
// counting wrapper behind both the flat wire meter (NewMeteredMesh)
// and the comm router's per-parameter attribution, so the
// loopback-exclusion rule lives in exactly one place.
type ObservedMesh struct {
	inner          Mesh
	onSent, onRecv func(msg Message, wireBytes int)
}

// NewObservedMesh instruments inner with the given callbacks (either
// may be nil). Callbacks must be safe for concurrent use — sends run
// on whatever goroutine calls Send/SendBatch.
func NewObservedMesh(inner Mesh, onSent, onRecv func(msg Message, wireBytes int)) *ObservedMesh {
	return &ObservedMesh{inner: inner, onSent: onSent, onRecv: onRecv}
}

// NewMeteredMesh instruments inner with frame-level wire counters:
// every non-loopback frame's on-wire size in both directions. It is
// the transport-layer complement of the comm router's per-parameter
// attribution — the wire counters include every frame regardless of
// protocol role (pushes, broadcasts, SFs, control), so they bound the
// per-parameter totals from above.
func NewMeteredMesh(inner Mesh, w *metrics.WireStats) *ObservedMesh {
	return NewObservedMesh(inner,
		func(_ Message, wireBytes int) { w.CountSent(wireBytes) },
		func(_ Message, wireBytes int) { w.CountRecv(wireBytes) })
}

// Self returns the wrapped endpoint's node id.
func (m *ObservedMesh) Self() int { return m.inner.Self() }

// N returns the mesh size.
func (m *ObservedMesh) N() int { return m.inner.N() }

// Send observes the frame (loopback excluded) and delivers it.
func (m *ObservedMesh) Send(to int, msg Message) error {
	if to != m.Self() && m.onSent != nil {
		m.onSent(msg, WireBytes(msg))
	}
	return m.inner.Send(to, msg)
}

// SendBatch observes every frame (loopback excluded) and delivers them.
func (m *ObservedMesh) SendBatch(to int, msgs []Message) error {
	if to != m.Self() && m.onSent != nil {
		for _, msg := range msgs {
			m.onSent(msg, WireBytes(msg))
		}
	}
	return m.inner.SendBatch(to, msgs)
}

// Recv observes the inbound frame (loopback excluded) and returns it.
func (m *ObservedMesh) Recv() (Message, error) {
	msg, err := m.inner.Recv()
	if err == nil && int(msg.From) != m.Self() && m.onRecv != nil {
		m.onRecv(msg, WireBytes(msg))
	}
	return msg, err
}

// Detach severs the wrapped endpoint's link to one peer.
func (m *ObservedMesh) Detach(peer int) error { return m.inner.Detach(peer) }

// WaitAttached forwards to the wrapped mesh's attachment wait when it
// has one (TCP does), so membership barriers can see through the
// metrics wrapper; meshes without per-peer attachment report success.
func (m *ObservedMesh) WaitAttached(rank int, timeout time.Duration) error {
	if aw, ok := m.inner.(interface {
		WaitAttached(rank int, timeout time.Duration) error
	}); ok {
		return aw.WaitAttached(rank, timeout)
	}
	return nil
}

// Close tears down the wrapped mesh.
func (m *ObservedMesh) Close() error { return m.inner.Close() }
