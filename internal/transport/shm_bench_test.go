//go:build linux

package transport

import (
	"sync/atomic"
	"testing"
)

// BenchmarkSendBatchSHM mirrors BenchmarkSendBatchTCP over the
// shared-memory ring transport: one SendBatch of 16 frames (4 KiB
// payload each) per op, receiver draining concurrently. SHM copies
// each whole record into the ring (no kernel socket path to hand an
// iovec to), so copiedB/frame sits near the record size — the win is
// MB/s, which CI gates at >= 2x the TCP benchmark via bench-trend.
func BenchmarkSendBatchSHM(b *testing.B) {
	var copied atomic.Int64
	shm := shmMeshes(b, 2, SHMOptions{OnCopy: func(n int) { copied.Add(int64(n)) }})
	ms := make([]Mesh, len(shm))
	for i, m := range shm {
		ms[i] = m
	}
	defer func() {
		for _, m := range ms {
			m.Close()
		}
	}()
	runSendBatchBench(b, ms, &copied, 16, 4096)
}
