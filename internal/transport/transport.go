// Package transport provides the messaging layer of the functional
// plane: a typed message format with compact manual framing, an
// in-process channel mesh for single-binary clusters, a real TCP
// mesh (full peer mesh over length-prefixed frames) for multi-process
// deployments, and a bandwidth/latency-modeling wrapper for emulating
// constrained links. All satisfy Mesh, so the trainer is
// transport-agnostic.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"
)

// MsgType tags the protocol role of a message.
type MsgType uint8

// Protocol message types used by the data-parallel trainer.
const (
	// MsgPush carries a gradient update (dense, chunk of a layer) to a
	// PS shard.
	MsgPush MsgType = iota + 1
	// MsgBcast carries fresh parameters from a PS shard to a worker.
	MsgBcast
	// MsgSF carries sufficient factors to a peer worker.
	MsgSF
	// MsgQuantPush carries a 1-bit quantized gradient to a PS shard.
	MsgQuantPush
	// MsgQuantBcast carries 1-bit quantized parameter deltas from a PS
	// shard to a worker (CNTK's double-sided quantization).
	MsgQuantBcast
	// MsgBarrier implements the end-of-iteration BSP handshake.
	MsgBarrier
	// MsgControl carries trainer control information (stop, config).
	MsgControl
	// MsgReplan carries a clock-stamped routing-plan switch: Iter names
	// the first iteration governed by the new plan and the payload holds
	// one route byte per synchronized parameter. Every worker applies the
	// same frame at the same round barrier, which is what keeps replicas
	// byte-identical across a mid-training re-route.
	MsgReplan
	// MsgViewHalt announces that the sender has parked at a membership
	// barrier: Iter is the next iteration it would have launched (the
	// view leader restarts the cluster at the max over all halts) and the
	// payload carries the dead/joined rank sets it has observed plus a
	// graceful-leave flag (see internal/comm's view-change protocol).
	MsgViewHalt
	// MsgView carries the leader's decided membership epoch: the new
	// cluster.View, the restart iteration (also in Iter), the route byte
	// per parameter for the re-planned shape, and the leader's staged
	// replica bytes — the state handoff every member (and joiner) adopts
	// verbatim, which is what keeps replicas byte-identical across the
	// transition.
	MsgView
	// MsgRingReduce carries one partially-reduced segment of a ring
	// all-reduce to the next worker on the chain (Chunk names the
	// segment; the tree/ring hierarchy reuses the type with a phase bit
	// folded into Chunk for its inter-group exchange).
	MsgRingReduce
	// MsgRingGather redistributes a fully-reduced ring segment along the
	// ring (the all-gather phase); receivers apply it verbatim to their
	// staged replica.
	MsgRingGather
)

// Synthetic local event types: injected into an endpoint's own inbox by
// elastic transports to surface per-peer lifecycle through the ordinary
// Recv stream. They are never encoded on the wire (decode rejects
// them).
const (
	// MsgPeerGone reports that peer From's link died (Layer 0) or closed
	// gracefully with a goodbye (Layer 1).
	MsgPeerGone MsgType = 0x80 + iota
	// MsgPeerUp reports that peer From attached to this endpoint (a late
	// joiner completed the handshake).
	MsgPeerUp
)

// Message is one protocol frame.
type Message struct {
	Type    MsgType
	From    int32 // sender node id
	Layer   int32 // model layer index (or -1)
	Chunk   int32 // KV chunk index within the layer (0 when unchunked)
	Iter    int32 // training iteration
	Payload []byte

	// lease, when non-nil, is the pooled buffer backing Payload (see
	// payload.go). Consumers return it with ReleasePayload; messages
	// built over plain slices carry none and release is a no-op.
	lease *PayloadRef
}

// ErrClosed is returned by Recv after the mesh is closed.
var ErrClosed = errors.New("transport: mesh closed")

// Mesh is a full mesh of N nodes with per-node inboxes.
type Mesh interface {
	// Self returns this endpoint's node id.
	Self() int
	// N returns the number of nodes in the mesh.
	N() int
	// Send delivers msg to node `to` (may be Self; loopback is legal).
	Send(to int, msg Message) error
	// SendBatch delivers several messages to the same destination,
	// amortizing framing and lock/syscall overhead where the transport
	// supports it. Messages arrive in order.
	SendBatch(to int, msgs []Message) error
	// Recv blocks for the next inbound message. After Close it returns
	// ErrClosed; networked transports may instead return a link
	// failure such as *ErrPeerDown once a peer is unreachable. Elastic
	// endpoints report per-peer lifecycle as synthetic MsgPeerGone /
	// MsgPeerUp messages here instead of failing the whole endpoint.
	Recv() (Message, error)
	// Detach severs this endpoint's link to one peer without tearing the
	// mesh down: the connection (if any) closes, subsequent sends to the
	// peer are dropped silently on elastic transports (an error
	// otherwise), and no MsgPeerGone is synthesized — the caller already
	// decided the peer is out. A detached slot may be re-attached by a
	// later join where the transport supports it.
	Detach(peer int) error
	// Close tears the endpoint down; pending Recv calls return ErrClosed.
	Close() error
}

// headerLen is the size of the frame body header (everything between
// the length prefix and the payload).
const headerLen = 17

// appendHeader appends the 17-byte frame header (everything between
// the length prefix and the payload) to buf and returns the extended
// slice.
func appendHeader(buf []byte, msg Message) []byte {
	buf = append(buf, byte(msg.Type))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(msg.From))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(msg.Layer))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(msg.Chunk))
	return binary.LittleEndian.AppendUint32(buf, uint32(msg.Iter))
}

// appendPrefixedHeader appends the u32 length prefix and the frame
// header — but not the payload. This is the only part of a frame the
// vectored egress path materializes in scratch; the payload slice goes
// to the kernel as its own iovec.
func appendPrefixedHeader(buf []byte, msg Message) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(headerLen+len(msg.Payload)))
	return appendHeader(buf, msg)
}

// appendFrame appends the frame body (everything after the length
// prefix) to buf and returns the extended slice.
func appendFrame(buf []byte, msg Message) []byte {
	return append(appendHeader(buf, msg), msg.Payload...)
}

// encode renders the frame body.
func encode(msg Message) []byte {
	return appendFrame(make([]byte, 0, headerLen+len(msg.Payload)), msg)
}

// decode parses a frame body.
func decode(buf []byte) (Message, error) {
	if len(buf) < headerLen {
		return Message{}, fmt.Errorf("transport: short frame: %d bytes", len(buf))
	}
	if t := MsgType(buf[0]); (t < MsgPush || t > MsgRingGather) && t != msgGoodbye {
		return Message{}, fmt.Errorf("transport: unknown message type %d", t)
	}
	return Message{
		Type:    MsgType(buf[0]),
		From:    int32(binary.LittleEndian.Uint32(buf[1:5])),
		Layer:   int32(binary.LittleEndian.Uint32(buf[5:9])),
		Chunk:   int32(binary.LittleEndian.Uint32(buf[9:13])),
		Iter:    int32(binary.LittleEndian.Uint32(buf[13:17])),
		Payload: buf[17:],
	}, nil
}

// WireBytes returns the on-wire size of msg (length prefix included),
// used by bandwidth models and traffic accounting.
func WireBytes(msg Message) int { return 4 + headerLen + len(msg.Payload) }

// frameBufs pools TCP frame encode buffers: the functional plane sends
// multi-megabyte tensors every iteration and per-send allocation would
// dominate the profile. Buffers are returned to the pool after the
// socket write completes, so pooling is invisible to callers.
var frameBufs = sync.Pool{New: func() any { return new([]byte) }}

func getFrameBuf(capacity int) *[]byte {
	bp := frameBufs.Get().(*[]byte)
	if cap(*bp) < capacity {
		*bp = make([]byte, 0, capacity)
	}
	*bp = (*bp)[:0]
	return bp
}

func putFrameBuf(bp *[]byte) { frameBufs.Put(bp) }

// ---- In-process mesh -----------------------------------------------------

// ChanMesh is a single-process mesh backed by buffered channels. Create
// one cluster with NewChanCluster and hand each goroutine its endpoint.
type ChanMesh struct {
	self    int
	cluster *chanCluster
}

type chanCluster struct {
	inboxes []chan Message
	once    sync.Once
	closed  chan struct{}

	// Elastic state: per-rank lifecycle instead of the all-or-nothing
	// cluster close. gone ranks swallow sends; downs[r] closes when rank
	// r is killed so its own Recv/Send surface *ErrPeerDown.
	elastic bool
	mu      sync.Mutex
	gone    []bool
	downs   []chan struct{}
}

// NewChanCluster builds an n-node in-process cluster and returns the n
// endpoints.
func NewChanCluster(n int) []*ChanMesh {
	c := &chanCluster{closed: make(chan struct{})}
	for i := 0; i < n; i++ {
		c.inboxes = append(c.inboxes, make(chan Message, 1024))
	}
	var ms []*ChanMesh
	for i := 0; i < n; i++ {
		ms = append(ms, &ChanMesh{self: i, cluster: c})
	}
	return ms
}

// ChanCluster is the handle over an elastic in-process cluster: the
// endpoints plus the chaos/lifecycle controls (Kill, Join) the
// membership tests script.
type ChanCluster struct {
	c         *chanCluster
	endpoints []*ChanMesh
}

// NewElasticChanCluster builds an n-slot in-process cluster with
// per-peer lifecycle: killing a rank delivers MsgPeerGone to the
// survivors instead of tearing the mesh down, and a slot can be
// re-joined later. Endpoint i is Endpoint(i).
func NewElasticChanCluster(n int) *ChanCluster {
	c := &chanCluster{
		closed:  make(chan struct{}),
		elastic: true,
		gone:    make([]bool, n),
		downs:   make([]chan struct{}, n),
	}
	for i := 0; i < n; i++ {
		c.inboxes = append(c.inboxes, make(chan Message, 1024))
		c.downs[i] = make(chan struct{})
	}
	cl := &ChanCluster{c: c}
	for i := 0; i < n; i++ {
		cl.endpoints = append(cl.endpoints, &ChanMesh{self: i, cluster: c})
	}
	return cl
}

// Endpoint returns rank i's mesh endpoint.
func (cl *ChanCluster) Endpoint(i int) *ChanMesh { return cl.endpoints[i] }

// Kill simulates a crash of rank r: its own Recv and Send return
// *ErrPeerDown, sends addressed to it are dropped, and every other live
// rank receives a synthetic MsgPeerGone — the same surface a SIGKILLed
// TCP peer presents to its survivors.
func (cl *ChanCluster) Kill(r int) {
	c := cl.c
	c.mu.Lock()
	if c.gone[r] {
		c.mu.Unlock()
		return
	}
	c.gone[r] = true
	down := c.downs[r]
	c.mu.Unlock()
	close(down)
	cl.notify(r, Message{Type: MsgPeerGone, From: int32(r)})
}

// Join re-attaches slot r (fresh or previously killed/detached) and
// delivers MsgPeerUp to every live rank. The returned endpoint is ready
// to use; any stale messages queued for the slot are dropped.
func (cl *ChanCluster) Join(r int) *ChanMesh {
	c := cl.c
	c.mu.Lock()
	c.gone[r] = false
	c.downs[r] = make(chan struct{})
	c.mu.Unlock()
	for {
		select {
		case msg := <-c.inboxes[r]:
			msg.ReleasePayload()
			continue
		default:
		}
		break
	}
	cl.notify(r, Message{Type: MsgPeerUp, From: int32(r)})
	return cl.endpoints[r]
}

// notify delivers a synthetic lifecycle event from rank r to every
// other live rank.
func (cl *ChanCluster) notify(r int, msg Message) {
	c := cl.c
	for p := range c.inboxes {
		if p == r {
			continue
		}
		c.mu.Lock()
		skip := c.gone[p]
		c.mu.Unlock()
		if skip {
			continue
		}
		select {
		case c.inboxes[p] <- msg:
		case <-c.closed:
			return
		}
	}
}

// Close shuts the whole cluster down.
func (cl *ChanCluster) Close() { cl.endpoints[0].Close() }

// errKilled is the cause recorded on a killed ChanMesh rank's own
// *ErrPeerDown.
var errKilled = errors.New("endpoint killed")

func (c *chanCluster) isGone(r int) bool {
	if !c.elastic {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gone[r]
}

// Self returns this endpoint's node id.
func (m *ChanMesh) Self() int { return m.self }

// N returns the cluster size.
func (m *ChanMesh) N() int { return len(m.cluster.inboxes) }

// Send delivers msg to node to. The inbox retains msg.Payload's pooled
// lease (if any) until the consumer releases it, so senders are free to
// Release their own reference as soon as Send returns.
func (m *ChanMesh) Send(to int, msg Message) error {
	if to < 0 || to >= m.N() {
		return fmt.Errorf("transport: bad destination %d", to)
	}
	if m.cluster.isGone(m.self) {
		// This endpoint was killed: behave like the dead process it
		// models.
		return &ErrPeerDown{Peer: m.self, Cause: errKilled}
	}
	if m.cluster.isGone(to) {
		// Elastic: sends to a dead or detached rank vanish, like bytes
		// written to a peer that will never read them. The membership
		// barrier — not the send path — is what reports the death.
		return nil
	}
	msg.From = int32(m.self)
	msg.retainLease()
	select {
	case m.cluster.inboxes[to] <- msg:
		return nil
	case <-m.cluster.closed:
		msg.ReleasePayload()
		return ErrClosed
	}
}

// SendBatch delivers msgs to node to, in order. Channels have no
// framing overhead to amortize, so this is a plain loop.
func (m *ChanMesh) SendBatch(to int, msgs []Message) error {
	for _, msg := range msgs {
		if err := m.Send(to, msg); err != nil {
			return err
		}
	}
	return nil
}

// Recv blocks for the next message to this endpoint.
func (m *ChanMesh) Recv() (Message, error) {
	var down chan struct{}
	if m.cluster.elastic {
		m.cluster.mu.Lock()
		down = m.cluster.downs[m.self]
		m.cluster.mu.Unlock()
	}
	select {
	case msg := <-m.cluster.inboxes[m.self]:
		return msg, nil
	case <-m.cluster.closed:
		// Drain anything already queued before reporting closure.
		select {
		case msg := <-m.cluster.inboxes[m.self]:
			return msg, nil
		default:
			return Message{}, ErrClosed
		}
	case <-downOrNever(down):
		return Message{}, &ErrPeerDown{Peer: m.self, Cause: errKilled}
	}
}

// downOrNever turns a nil channel (non-elastic endpoint) into a
// never-ready select case.
func downOrNever(ch chan struct{}) chan struct{} { return ch }

// Detach severs this endpoint's link to one peer: subsequent sends to
// it are dropped. Elastic clusters only.
func (m *ChanMesh) Detach(peer int) error {
	if !m.cluster.elastic {
		return fmt.Errorf("transport: ChanMesh.Detach needs an elastic cluster")
	}
	if peer < 0 || peer >= m.N() || peer == m.self {
		return fmt.Errorf("transport: bad detach peer %d", peer)
	}
	m.cluster.mu.Lock()
	m.cluster.gone[peer] = true
	m.cluster.mu.Unlock()
	return nil
}

// Close shuts the whole cluster down (idempotent).
func (m *ChanMesh) Close() error {
	m.cluster.once.Do(func() { close(m.cluster.closed) })
	return nil
}

// ---- Bandwidth-modeled mesh ------------------------------------------------

// DelayMesh wraps a Mesh and models per-link wire time: each message
// occupies its (sender,destination) link for WireBytes/bandwidth plus a
// fixed latency before delivery, with distinct links independent — the
// behavior of a full-mesh network fabric. Senders block for the wire
// time (NIC serialization), so serialized pushes pay the sum of their
// transfer times while concurrent pushes to different destinations
// overlap. This is how the functional plane reproduces the paper's
// limited-bandwidth conditions (Fig. 8) on loopback hardware.
type DelayMesh struct {
	inner     Mesh
	bytesPerS float64
	latency   time.Duration
	links     []sync.Mutex // per destination
}

// NewDelayMesh models links of the given bandwidth (bytes/second) and
// one-way latency on top of inner. bytesPerS <= 0 disables the
// bandwidth term.
func NewDelayMesh(inner Mesh, bytesPerS float64, latency time.Duration) *DelayMesh {
	return &DelayMesh{
		inner:     inner,
		bytesPerS: bytesPerS,
		latency:   latency,
		links:     make([]sync.Mutex, inner.N()),
	}
}

// Self returns the wrapped endpoint's node id.
func (m *DelayMesh) Self() int { return m.inner.Self() }

// N returns the mesh size.
func (m *DelayMesh) N() int { return m.inner.N() }

func (m *DelayMesh) wireTime(bytes int) time.Duration {
	d := m.latency
	if m.bytesPerS > 0 {
		d += time.Duration(float64(bytes) / m.bytesPerS * float64(time.Second))
	}
	return d
}

// Send occupies the link to `to` for the message's wire time, then
// delivers through the wrapped mesh. Loopback is free.
func (m *DelayMesh) Send(to int, msg Message) error {
	if to != m.Self() && to >= 0 && to < len(m.links) {
		m.links[to].Lock()
		time.Sleep(m.wireTime(WireBytes(msg)))
		m.links[to].Unlock()
	}
	return m.inner.Send(to, msg)
}

// SendBatch occupies the link once for the batch's combined wire time.
func (m *DelayMesh) SendBatch(to int, msgs []Message) error {
	if to != m.Self() && to >= 0 && to < len(m.links) && len(msgs) > 0 {
		total := 0
		for _, msg := range msgs {
			total += WireBytes(msg)
		}
		m.links[to].Lock()
		time.Sleep(m.wireTime(total))
		m.links[to].Unlock()
	}
	return m.inner.SendBatch(to, msgs)
}

// Recv blocks for the next inbound message.
func (m *DelayMesh) Recv() (Message, error) { return m.inner.Recv() }

// Detach severs the wrapped endpoint's link to one peer.
func (m *DelayMesh) Detach(peer int) error { return m.inner.Detach(peer) }

// Close tears down the wrapped mesh.
func (m *DelayMesh) Close() error { return m.inner.Close() }
