package transport

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// Reference-counted payload pool — the allocation-flat core of the wire
// path. Both ends of a connection lease from it: encoders lease a
// buffer, fill it, and attach the lease to the outbound Message;
// the TCP read loop leases one buffer per inbound frame and hands the
// lease to the consumer through Message. A lease is returned to the
// pool when its reference count reaches zero, so a payload shared by a
// broadcast (one buffer, P sends) or parked in a loopback queue can
// never be recycled while anything still reads it.
//
// Ownership rules (documented for consumers in README "Wire format"):
//
//   - The leasing side starts with one reference and must Release it
//     when done handing the message to transports.
//   - A transport that retains the payload beyond the Send call
//     (ChanMesh inboxes, TCP loopback queues) takes its own reference;
//     transports that copy synchronously (TCP socket writes) do not.
//   - Whoever consumes a Message from Recv must call ReleasePayload
//     once finished with Payload, and must not retain Payload past that
//     call. Messages without a lease ignore ReleasePayload.
//
// Releasing more times than retained panics — silent over-release would
// recycle a buffer that a later frame still references, corrupting
// tensors far from the bug. A forgotten Release is not a memory leak
// (the GC still reclaims the buffer) but defeats pooling;
// OutstandingPayloadLeases exposes the live-lease count so tests can
// assert balanced flows.

// PayloadRef is a reference-counted lease on a pooled buffer.
type PayloadRef struct {
	buf  []byte
	refs atomic.Int32
}

// payloadPools holds one sync.Pool per power-of-two size class, so a
// lease request is served by a buffer of comparable capacity and a mesh
// moving mixed tensor sizes does not thrash one shared pool.
var payloadPools [64]sync.Pool

// payloadLeases counts live leases (leased minus fully released).
var payloadLeases atomic.Int64

// payloadClass maps a capacity to its size class: the smallest power of
// two ≥ max(capacity, 256).
func payloadClass(capacity int) int {
	if capacity <= 256 {
		return 8 // 256-byte minimum keeps tiny frames from fragmenting classes
	}
	return bits.Len(uint(capacity - 1))
}

// LeasePayload leases a zero-length buffer with at least the given
// capacity and one reference. Fill it with append (or slice it up to
// its capacity) and attach it to a Message with AttachLease.
func LeasePayload(capacity int) *PayloadRef {
	class := payloadClass(capacity)
	r, _ := payloadPools[class].Get().(*PayloadRef)
	if r == nil {
		r = &PayloadRef{buf: make([]byte, 0, 1<<class)}
	}
	r.buf = r.buf[:0]
	r.refs.Store(1)
	payloadLeases.Add(1)
	return r
}

// Bytes returns the leased buffer (length 0 after leasing, up to the
// leased capacity).
func (r *PayloadRef) Bytes() []byte { return r.buf }

// SetBytes stores the filled buffer back on the lease — call it after
// appending, in case the append grew past the leased capacity.
func (r *PayloadRef) SetBytes(b []byte) { r.buf = b }

// Retain adds a reference. Retaining a lease whose count already
// reached zero is a lifetime bug and panics.
func (r *PayloadRef) Retain() {
	if r == nil {
		return
	}
	if r.refs.Add(1) <= 1 {
		panic("transport: Retain on a released payload lease")
	}
}

// Release drops one reference; the last release returns the buffer to
// the pool. Releasing more times than retained panics.
func (r *PayloadRef) Release() {
	if r == nil {
		return
	}
	n := r.refs.Add(-1)
	if n > 0 {
		return
	}
	if n < 0 {
		panic("transport: payload lease over-released")
	}
	payloadLeases.Add(-1)
	// File by the largest power of two the buffer actually covers
	// (floor, not ceil): an encoder may have grown the buffer past the
	// leased capacity to a non-power-of-two size, and filing it one
	// class up would let a later lease receive a buffer smaller than
	// the class promises. Buffers below the minimum class are dropped.
	if c := bits.Len(uint(cap(r.buf))) - 1; c >= 8 {
		payloadPools[c].Put(r)
	}
}

// OutstandingPayloadLeases reports the number of live leases. Balanced
// flows return to their baseline once every in-flight message has been
// consumed and released; tests use the delta to catch leaks.
func OutstandingPayloadLeases() int64 { return payloadLeases.Load() }

// AttachLease ties a pooled payload lease to the message, so whoever
// consumes it from Recv can ReleasePayload. The caller keeps (and must
// eventually Release) its own reference.
func (m *Message) AttachLease(r *PayloadRef) { m.lease = r }

// ReleasePayload releases the pooled buffer backing Payload, if any.
// Call it exactly once when done with a consumed message; Payload must
// not be read afterwards.
func (m *Message) ReleasePayload() {
	if m.lease != nil {
		m.lease.Release()
		m.lease = nil
	}
}

// retainLease takes the transport-side reference for a message being
// parked in an in-process queue (ChanMesh inbox, TCP loopback).
func (m *Message) retainLease() {
	if m.lease != nil {
		m.lease.Retain()
	}
}
