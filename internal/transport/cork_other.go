//go:build !linux

package transport

import "net"

// setCork is a no-op off Linux: TCP_CORK is a Linux socket option, and
// the vectored write path is already a single syscall in the common
// case, so there is nothing to emulate.
func setCork(net.Conn, bool) {}
