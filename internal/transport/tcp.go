package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// ErrPeerDown reports that the link to a mesh peer failed: its frame
// stream turned invalid (bad length, truncated body, unknown type), the
// connection died, or the peer vanished without the goodbye frame a
// graceful Close sends. Once any link is down the whole endpoint is
// poisoned — Recv drains already-queued traffic and then keeps
// returning the same *ErrPeerDown — because the mesh protocol is
// all-to-all and cannot make progress with a member missing.
type ErrPeerDown struct {
	Peer  int   // mesh id of the failed peer
	Cause error // underlying read/write/decode failure
}

func (e *ErrPeerDown) Error() string {
	return fmt.Sprintf("transport: peer %d down: %v", e.Peer, e.Cause)
}

// Unwrap exposes the underlying cause to errors.Is / errors.As chains.
func (e *ErrPeerDown) Unwrap() error { return e.Cause }

// Handshake wire format. The dialer opens with a hello
// (magic | version | dialer id | mesh size); the acceptor validates it
// and answers with an ack (magic | version | acceptor id) so the dialer
// can verify it reached the node it meant to. Every step runs under the
// setup deadline, so a slow, silent, or wrong peer fails mesh formation
// instead of wedging it.
const (
	handshakeMagic  uint32 = 0x50534D48 // "HMSP" little-endian: poseidon mesh handshake
	protocolVersion byte   = 2

	helloLen = 13 // magic u32 | version u8 | dialer id u32 | mesh size u32
	ackLen   = 9  // magic u32 | version u8 | acceptor id u32
)

// msgGoodbye is the transport-internal frame a closing endpoint writes
// before half-closing each connection. It lets readers distinguish a
// graceful departure (EOF after goodbye: not an error) from a crashed
// peer (EOF without goodbye: ErrPeerDown). It never reaches Recv.
const msgGoodbye MsgType = 0xFF

// errStrayConn marks an inbound connection that never presented a valid
// hello — a port scanner or misdirected client, not a mesh member. The
// acceptor drops it and keeps listening for real peers.
var errStrayConn = errors.New("transport: not a mesh handshake")

// DefaultMaxFrameBytes caps a frame body (header + payload) unless
// TCPOptions overrides it. It bounds the allocation a length prefix can
// demand from a receiver: a corrupt or hostile prefix is a peer error,
// not a multi-gigabyte make([]byte, n).
const DefaultMaxFrameBytes = 256 << 20

// TCPOptions tunes a TCPMesh. The zero value selects production
// defaults; tests shrink the limits to exercise the failure paths.
type TCPOptions struct {
	// SetupTimeout bounds all of mesh formation: listening, dialing
	// with retry, and every handshake step. Default 30s.
	SetupTimeout time.Duration
	// MaxFrameBytes caps the frame body size, enforced on both Send
	// (oversized tensors are rejected locally) and receive (oversized
	// length prefixes mark the peer down). Default DefaultMaxFrameBytes.
	MaxFrameBytes int
	// InboxDepth bounds the inbound network message queue; readers stop
	// pulling frames off sockets once it fills (TCP backpressure does
	// the rest). Loopback messages bypass this bound — a self-send must
	// never block the goroutine that drains the inbox. Default 1024.
	InboxDepth int
	// DrainTimeout bounds Close's graceful drain: how long to wait for
	// peers to finish their in-flight writes and close their ends.
	// Default 5s.
	DrainTimeout time.Duration
	// DisableNoDelay re-enables Nagle's algorithm. By default every mesh
	// connection runs with TCP_NODELAY set: the trainer's frames are
	// already coalesced by SendBatch, so delaying them to coalesce again
	// in the kernel only adds barrier latency.
	DisableNoDelay bool
	// CorkBatches wraps each SendBatch in TCP_CORK (Linux; a no-op
	// elsewhere): the kernel holds partial segments until the batch is
	// complete, so a batch whose vectored write gets split across
	// syscalls still leaves as full MSS-sized segments. Mutually
	// beneficial with NODELAY — cork bounds the segmentation, NODELAY
	// flushes the tail the moment the cork pops.
	CorkBatches bool
	// OnCopy, when set, receives the number of bytes the transport
	// itself copied into scratch memory for each Send/SendBatch call
	// (loopback excluded). On the vectored egress path this is the
	// length prefix + header per frame — never the payload — which is
	// what the metrics layer's bytes_copied_per_frame reports. Must be
	// safe for concurrent use.
	OnCopy func(bytes int)
}

func (o TCPOptions) withDefaults() TCPOptions {
	if o.SetupTimeout <= 0 {
		o.SetupTimeout = 30 * time.Second
	}
	if o.MaxFrameBytes <= 0 {
		o.MaxFrameBytes = DefaultMaxFrameBytes
	}
	if o.InboxDepth <= 0 {
		o.InboxDepth = 1024
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 5 * time.Second
	}
	return o
}

// TCPMesh is the multi-process transport: every node listens on its
// address and dials every higher-numbered peer, yielding one duplex TCP
// connection per pair. Frames are length-prefixed (u32 little-endian,
// bounded by MaxFrameBytes). Link failures surface from Recv as
// *ErrPeerDown rather than silently stopping message flow.
type TCPMesh struct {
	self  int
	addrs []string
	opts  TCPOptions
	conns []net.Conn // indexed by peer id; nil at self. Immutable after setup.
	inbox chan Message
	lis   net.Listener

	closed    chan struct{} // closed by Close; readers and senders select on it
	closeOnce sync.Once

	// Self-addressed messages bypass the bounded inbox entirely; see
	// loopQueue for why blocking there would deadlock a healthy mesh.
	loop *loopQueue

	down     chan struct{} // closed on the first link failure
	downOnce sync.Once
	downErr  error // the *ErrPeerDown; written before down closes

	wg     sync.WaitGroup
	sendMu []sync.Mutex
}

// NewTCPMesh joins a mesh of len(addrs) nodes as node self with default
// options. It blocks until connections to all peers are established and
// verified, bounded by the setup timeout.
func NewTCPMesh(self int, addrs []string) (*TCPMesh, error) {
	return NewTCPMeshOpts(self, addrs, TCPOptions{})
}

// NewTCPMeshOpts is NewTCPMesh with explicit options. On any setup
// failure every already-established connection and the listener are
// closed before returning.
func NewTCPMeshOpts(self int, addrs []string, opts TCPOptions) (*TCPMesh, error) {
	if self < 0 || self >= len(addrs) {
		return nil, fmt.Errorf("transport: self %d out of range for %d addrs", self, len(addrs))
	}
	opts = opts.withDefaults()
	m := &TCPMesh{
		self:   self,
		addrs:  addrs,
		opts:   opts,
		conns:  make([]net.Conn, len(addrs)),
		inbox:  make(chan Message, opts.InboxDepth),
		closed: make(chan struct{}),
		down:   make(chan struct{}),
		loop:   newLoopQueue(),
		sendMu: make([]sync.Mutex, len(addrs)),
	}
	lis, err := net.Listen("tcp", addrs[self])
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addrs[self], err)
	}
	m.lis = lis
	if err := m.connectAll(time.Now().Add(opts.SetupTimeout)); err != nil {
		lis.Close()
		for _, c := range m.conns {
			if c != nil {
				c.Close()
			}
		}
		return nil, err
	}
	// The full mesh is formed; nothing dials in after setup, so the
	// listening port can be released immediately.
	lis.Close()
	for i, c := range m.conns {
		if c == nil {
			continue
		}
		// NODELAY unless the caller opted back into Nagle: frames are
		// already batch-coalesced above the socket, so delaying them to
		// coalesce again in the kernel only adds barrier latency.
		if tc, ok := c.(*net.TCPConn); ok {
			tc.SetNoDelay(!opts.DisableNoDelay)
		}
		m.wg.Add(1)
		go m.readLoop(i, c)
	}
	return m, nil
}

// connectAll establishes the connection to every peer: accepting and
// verifying hellos from lower-numbered nodes while dialing
// higher-numbered ones, all bounded by deadline. Registration is
// synchronized and rejects duplicate peer ids, so a misconfigured
// cluster (two processes with the same -id) fails loudly instead of
// silently overwriting — and leaking — a live connection.
func (m *TCPMesh) connectAll(deadline time.Time) error {
	errc := make(chan error, len(m.addrs))
	var wg sync.WaitGroup
	var mu sync.Mutex
	register := func(peer int, conn net.Conn) error {
		mu.Lock()
		defer mu.Unlock()
		if m.conns[peer] != nil {
			return fmt.Errorf("transport: duplicate handshake from peer %d", peer)
		}
		m.conns[peer] = conn
		return nil
	}

	if m.self > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if tl, ok := m.lis.(*net.TCPListener); ok {
				tl.SetDeadline(deadline)
			}
			type handshake struct {
				peer int
				conn net.Conn
				err  error
			}
			results := make(chan handshake)
			acceptErr := make(chan error, 1)
			regDone := make(chan struct{})
			defer close(regDone)
			// Each inbound connection handshakes on its own goroutine:
			// a client that connects and then says nothing must not
			// starve the real peers behind it in the accept queue. Its
			// read still times out at the setup deadline.
			go func() {
				for {
					conn, err := m.lis.Accept()
					if err != nil {
						acceptErr <- err
						return
					}
					go func() {
						peer, err := m.acceptHandshake(conn, deadline)
						select {
						case results <- handshake{peer, conn, err}:
						case <-regDone:
							conn.Close()
						}
					}()
				}
			}()
			for need := m.self; need > 0; {
				select {
				case r := <-results:
					err := r.err
					if err == errStrayConn {
						r.conn.Close()
						continue
					}
					if err == nil {
						err = register(r.peer, r.conn)
					}
					if err != nil {
						r.conn.Close()
						errc <- err
						return
					}
					need--
				case err := <-acceptErr:
					errc <- fmt.Errorf("transport: accept (still missing %d peers): %w", need, err)
					return
				}
			}
		}()
	}
	for i := m.self + 1; i < len(m.addrs); i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := m.dialPeer(i, deadline)
			if err == nil {
				if err = register(i, conn); err != nil {
					conn.Close()
				}
			}
			if err != nil {
				errc <- err
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errc:
		return err
	default:
		return nil
	}
}

// acceptHandshake validates a dialer's hello and acks it, all under the
// setup deadline. Connections that never present the magic are stray
// (errStrayConn, non-fatal); a well-formed hello with the wrong
// version, mesh size, or id range is a real misconfiguration and fatal.
func (m *TCPMesh) acceptHandshake(conn net.Conn, deadline time.Time) (int, error) {
	conn.SetDeadline(deadline)
	var hello [helloLen]byte
	if _, err := io.ReadFull(conn, hello[:]); err != nil {
		return 0, errStrayConn
	}
	if binary.LittleEndian.Uint32(hello[0:4]) != handshakeMagic {
		return 0, errStrayConn
	}
	if v := hello[4]; v != protocolVersion {
		return 0, fmt.Errorf("transport: peer speaks protocol v%d, this node speaks v%d", v, protocolVersion)
	}
	peer := int(int32(binary.LittleEndian.Uint32(hello[5:9])))
	if n := int(binary.LittleEndian.Uint32(hello[9:13])); n != len(m.addrs) {
		return 0, fmt.Errorf("transport: peer %d believes the mesh has %d nodes, this node says %d", peer, n, len(m.addrs))
	}
	if peer < 0 || peer >= m.self {
		return 0, fmt.Errorf("transport: unexpected hello from peer %d (node %d only accepts lower-numbered dialers)", peer, m.self)
	}
	var ack [ackLen]byte
	binary.LittleEndian.PutUint32(ack[0:4], handshakeMagic)
	ack[4] = protocolVersion
	binary.LittleEndian.PutUint32(ack[5:9], uint32(m.self))
	if _, err := conn.Write(ack[:]); err != nil {
		return 0, fmt.Errorf("transport: handshake ack to peer %d: %w", peer, err)
	}
	conn.SetDeadline(time.Time{})
	return peer, nil
}

// dialPeer dials addrs[peer] with exponential backoff until the setup
// deadline (the peer may simply not be listening yet), then runs the
// hello/ack handshake on the fresh connection.
func (m *TCPMesh) dialPeer(peer int, deadline time.Time) (net.Conn, error) {
	backoff := 2 * time.Millisecond
	var lastErr error
	for {
		remain := time.Until(deadline)
		if remain <= 0 {
			if lastErr == nil {
				lastErr = errors.New("setup deadline exceeded")
			}
			return nil, fmt.Errorf("transport: dial peer %d at %s: %w", peer, m.addrs[peer], lastErr)
		}
		conn, err := net.DialTimeout("tcp", m.addrs[peer], remain)
		if err == nil {
			if err := m.dialHandshake(conn, peer, deadline); err != nil {
				conn.Close()
				return nil, err
			}
			return conn, nil
		}
		lastErr = err
		sleep := backoff
		if sleep > remain {
			sleep = remain
		}
		time.Sleep(sleep)
		if backoff < 250*time.Millisecond {
			backoff *= 2
		}
	}
}

func (m *TCPMesh) dialHandshake(conn net.Conn, peer int, deadline time.Time) error {
	conn.SetDeadline(deadline)
	var hello [helloLen]byte
	binary.LittleEndian.PutUint32(hello[0:4], handshakeMagic)
	hello[4] = protocolVersion
	binary.LittleEndian.PutUint32(hello[5:9], uint32(m.self))
	binary.LittleEndian.PutUint32(hello[9:13], uint32(len(m.addrs)))
	if _, err := conn.Write(hello[:]); err != nil {
		return fmt.Errorf("transport: handshake hello to peer %d: %w", peer, err)
	}
	var ack [ackLen]byte
	if _, err := io.ReadFull(conn, ack[:]); err != nil {
		return fmt.Errorf("transport: handshake ack from peer %d: %w", peer, err)
	}
	if binary.LittleEndian.Uint32(ack[0:4]) != handshakeMagic {
		return fmt.Errorf("transport: %s is not a mesh node (bad ack magic)", m.addrs[peer])
	}
	if v := ack[4]; v != protocolVersion {
		return fmt.Errorf("transport: peer %d speaks protocol v%d, this node speaks v%d", peer, v, protocolVersion)
	}
	if got := int(int32(binary.LittleEndian.Uint32(ack[5:9]))); got != peer {
		return fmt.Errorf("transport: dialed %s expecting peer %d but reached peer %d", m.addrs[peer], peer, got)
	}
	conn.SetDeadline(time.Time{})
	return nil
}

// peerDown records the first link failure and wakes everyone selecting
// on the down channel. Later failures keep the first error (one dead
// peer is enough to abort; the cause of the first is the useful one).
func (m *TCPMesh) peerDown(peer int, cause error) {
	m.downOnce.Do(func() {
		m.downErr = &ErrPeerDown{Peer: peer, Cause: cause}
		close(m.down)
	})
}

// readLoop pumps one peer's frames into the inbox. A clean goodbye ends
// it silently; any other termination while the mesh is still open marks
// the peer down so Recv surfaces the failure instead of the cluster
// hanging on messages that will never arrive.
func (m *TCPMesh) readLoop(peer int, c net.Conn) {
	defer m.wg.Done()
	err := m.readFrames(peer, c)
	if err == nil {
		return
	}
	select {
	case <-m.closed:
		// Local Close tears connections down under the reader; that is
		// shutdown, not a peer failure.
		return
	default:
	}
	m.peerDown(peer, err)
}

// readFrames reads length-prefixed frames from c until the peer says
// goodbye (returns nil) or the stream fails (returns the cause).
func (m *TCPMesh) readFrames(peer int, c net.Conn) error {
	// hdr lives outside the loop: io.ReadFull's interface call makes it
	// escape, and one heap header per connection beats one per frame.
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(c, hdr[:]); err != nil {
			if err == io.EOF {
				return errors.New("connection closed without goodbye (peer crashed?)")
			}
			return err
		}
		n := int(binary.LittleEndian.Uint32(hdr[:]))
		if n > m.opts.MaxFrameBytes {
			return fmt.Errorf("frame of %d bytes exceeds MaxFrameBytes %d", n, m.opts.MaxFrameBytes)
		}
		if n < headerLen {
			return fmt.Errorf("frame of %d bytes is shorter than the %d-byte header", n, headerLen)
		}
		// Each frame body lives in a pooled lease that travels with the
		// message; the consumer's ReleasePayload recycles it. The read
		// loop therefore allocates nothing per frame in steady state.
		ref := LeasePayload(n)
		body := ref.Bytes()[:n]
		if _, err := io.ReadFull(c, body); err != nil {
			ref.Release()
			return fmt.Errorf("truncated frame (wanted %d body bytes): %w", n, err)
		}
		msg, err := decode(body)
		if err != nil || msg.Type == msgGoodbye {
			ref.Release()
			if err != nil {
				return err
			}
			return nil
		}
		msg.lease = ref
		select {
		case m.inbox <- msg:
		case <-m.closed:
			// Shutting down: discard, but keep reading so the peer's
			// in-flight writes drain until its goodbye or the drain
			// deadline Close put on the connection.
			ref.Release()
		}
	}
}

// Self returns this endpoint's node id.
func (m *TCPMesh) Self() int { return m.self }

// N returns the mesh size.
func (m *TCPMesh) N() int { return len(m.addrs) }

// loopback queues a self-addressed message. It never blocks — the
// caller may be the inbox's only consumer (the comm receive loop
// broadcasting to itself), so blocking here on any condition would
// deadlock a healthy mesh — and never panics on a closed one. Frame
// bounds are enforced exactly like the remote path: a tensor too big
// for the mesh must fail the same way whether or not its destination
// happens to be colocated.
func (m *TCPMesh) loopback(msg Message) error {
	if err := m.checkFrameSize(m.self, msg); err != nil {
		return err
	}
	select {
	case <-m.closed:
		return ErrClosed
	default:
	}
	m.loop.push(msg)
	return nil
}

// checkFrameSize rejects oversized payloads at the sender, so a tensor
// that would blow the receiver's frame bound fails fast and locally.
func (m *TCPMesh) checkFrameSize(to int, msg Message) error {
	if len(msg.Payload) > m.opts.MaxFrameBytes-headerLen {
		return fmt.Errorf("transport: %d-byte payload to peer %d exceeds MaxFrameBytes %d",
			len(msg.Payload), to, m.opts.MaxFrameBytes)
	}
	return nil
}

// writeVec pushes an iovec list down the connection to peer `to` with a
// single vectored write (net.Buffers → writev), serializing with other
// writers, and maps failures: ErrClosed if the mesh is closing,
// *ErrPeerDown otherwise (a TCP write only fails when the link is
// gone). WriteTo resumes partial writes internally, so on a nil return
// every iovec — headers and payloads alike — has been handed to the
// kernel; the caller may release payload leases the moment this
// returns, and not before. cork bounds segmentation around multi-frame
// batches when the mesh was built with CorkBatches.
func (m *TCPMesh) writeVec(to int, vec net.Buffers, cork bool) error {
	conn := m.conns[to]
	m.sendMu[to].Lock()
	if cork {
		setCork(conn, true)
	}
	// WriteTo consumes the slice header it is called on; vec is a copy,
	// so the caller's header (and its pooled backing array) survive.
	_, err := vec.WriteTo(conn)
	if cork {
		setCork(conn, false)
	}
	m.sendMu[to].Unlock()
	if err == nil {
		return nil
	}
	select {
	case <-m.closed:
		// Close's drain deadline wakes writers mid-writev; the frame may
		// be partially on the wire, but the mesh is going away and the
		// payload lease is still the caller's to release.
		return ErrClosed
	default:
		return &ErrPeerDown{Peer: to, Cause: err}
	}
}

// Send delivers msg to node `to` (loopback messages short-circuit the
// network). Only the length prefix and header are materialized in
// pooled scratch; the payload rides to the kernel as its own iovec —
// zero-copy egress, one syscall.
func (m *TCPMesh) Send(to int, msg Message) error {
	msg.From = int32(m.self)
	if to == m.self {
		return m.loopback(msg)
	}
	if to < 0 || to >= len(m.addrs) || m.conns[to] == nil {
		return fmt.Errorf("transport: no connection to %d", to)
	}
	if err := m.checkFrameSize(to, msg); err != nil {
		return err
	}
	bp := getFrameBuf(4 + headerLen)
	*bp = appendPrefixedHeader(*bp, msg)
	vp := getVec()
	vec := append(*vp, *bp)
	if len(msg.Payload) > 0 {
		vec = append(vec, msg.Payload)
	}
	err := m.writeVec(to, vec, false)
	if m.opts.OnCopy != nil {
		m.opts.OnCopy(4 + headerLen)
	}
	putFrameBuf(bp)
	putVec(vp, vec)
	return err
}

// SendBatch writes all frames to node `to` with one lock acquisition
// and one vectored write — the fast path for chunked tensor pushes,
// which produce many frames per destination. Headers pack into a
// single pooled scratch buffer; every payload goes to the kernel
// uncopied as its own iovec.
func (m *TCPMesh) SendBatch(to int, msgs []Message) error {
	if len(msgs) == 0 {
		return nil
	}
	if to == m.self {
		for _, msg := range msgs {
			msg.From = int32(m.self)
			if err := m.loopback(msg); err != nil {
				return err
			}
		}
		return nil
	}
	if to < 0 || to >= len(m.addrs) || m.conns[to] == nil {
		return fmt.Errorf("transport: no connection to %d", to)
	}
	for _, msg := range msgs {
		if err := m.checkFrameSize(to, msg); err != nil {
			return err
		}
	}
	// One scratch buffer holds every frame's prefix+header back to back.
	// Its capacity is reserved up front so the appends below never
	// reallocate — the iovec sub-slices must stay valid.
	scratch := (4 + headerLen) * len(msgs)
	bp := getFrameBuf(scratch)
	vp := getVec()
	vec := *vp
	for _, msg := range msgs {
		msg.From = int32(m.self)
		start := len(*bp)
		*bp = appendPrefixedHeader(*bp, msg)
		vec = append(vec, (*bp)[start:])
		if len(msg.Payload) > 0 {
			vec = append(vec, msg.Payload)
		}
	}
	err := m.writeVec(to, vec, m.opts.CorkBatches)
	if m.opts.OnCopy != nil {
		m.opts.OnCopy(scratch)
	}
	putFrameBuf(bp)
	putVec(vp, vec)
	return err
}

// Recv blocks for the next inbound message (loopback queue first, then
// the network inbox). Traffic already queued is delivered before any
// failure surfaces; after that, a failed link reports *ErrPeerDown and
// a closed mesh ErrClosed.
func (m *TCPMesh) Recv() (Message, error) {
	for {
		if msg, ok := m.loop.pop(); ok {
			return msg, nil
		}
		select {
		case msg := <-m.inbox:
			return msg, nil
		case <-m.loop.sig:
			// Re-check the loopback queue at the top of the loop.
		case <-m.down:
			if msg, ok := m.loop.pop(); ok {
				return msg, nil
			}
			select {
			case msg := <-m.inbox:
				return msg, nil
			default:
				return Message{}, m.downErr
			}
		case <-m.closed:
			if msg, ok := m.loop.pop(); ok {
				return msg, nil
			}
			select {
			case msg := <-m.inbox:
				return msg, nil
			default:
				return Message{}, ErrClosed
			}
		}
	}
}

// Close shuts the endpoint down gracefully: it announces the departure
// with a goodbye frame and half-closes writes — synchronously, so the
// goodbye is in the kernel's send queue before Close returns even if
// the process exits right after — then drains readers (letting peers'
// in-flight writes complete) and releases every connection in the
// background, bounded by DrainTimeout. Concurrent Send/SendBatch/Recv
// calls unblock with ErrClosed. Idempotent.
func (m *TCPMesh) Close() error {
	m.closeOnce.Do(func() {
		close(m.closed)
		m.lis.Close()
		// A deadline in the near future bounds the whole teardown: it
		// wakes writers currently blocked on a stalled peer (so the
		// goodbye below can take the send lock) and stops the reader
		// drain if a peer never closes its end.
		deadline := time.Now().Add(m.opts.DrainTimeout)
		for _, c := range m.conns {
			if c != nil {
				c.SetDeadline(deadline)
			}
		}
		var bye [4 + headerLen]byte
		binary.LittleEndian.PutUint32(bye[0:4], headerLen)
		bye[4] = byte(msgGoodbye)
		binary.LittleEndian.PutUint32(bye[5:9], uint32(m.self))
		for peer, c := range m.conns {
			if c == nil {
				continue
			}
			m.sendMu[peer].Lock()
			_, _ = c.Write(bye[:])
			if tc, ok := c.(*net.TCPConn); ok {
				tc.CloseWrite()
			}
			m.sendMu[peer].Unlock()
		}
		// Drain and release off the caller's goroutine: readers exit on
		// each peer's goodbye/EOF or on the deadline above, so a slow
		// peer delays reclamation, never the Close caller.
		go func() {
			m.wg.Wait()
			for _, c := range m.conns {
				if c != nil {
					c.Close()
				}
			}
		}()
	})
	return nil
}
