package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// ErrPeerDown reports that the link to a mesh peer failed: its frame
// stream turned invalid (bad length, truncated body, unknown type), the
// connection died, or the peer vanished without the goodbye frame a
// graceful Close sends. Once any link is down the whole endpoint is
// poisoned — Recv drains already-queued traffic and then keeps
// returning the same *ErrPeerDown — because the mesh protocol is
// all-to-all and cannot make progress with a member missing.
type ErrPeerDown struct {
	Peer  int   // mesh id of the failed peer
	Cause error // underlying read/write/decode failure
}

func (e *ErrPeerDown) Error() string {
	return fmt.Sprintf("transport: peer %d down: %v", e.Peer, e.Cause)
}

// Unwrap exposes the underlying cause to errors.Is / errors.As chains.
func (e *ErrPeerDown) Unwrap() error { return e.Cause }

// Handshake wire format. The dialer opens with a hello
// (magic | version | dialer id | mesh size); the acceptor validates it
// and answers with an ack (magic | version | acceptor id) so the dialer
// can verify it reached the node it meant to. Every step runs under the
// setup deadline, so a slow, silent, or wrong peer fails mesh formation
// instead of wedging it.
const (
	handshakeMagic  uint32 = 0x50534D48 // "HMSP" little-endian: poseidon mesh handshake
	protocolVersion byte   = 2

	helloLen = 13 // magic u32 | version u8 | dialer id u32 | mesh size u32
	ackLen   = 9  // magic u32 | version u8 | acceptor id u32
)

// msgGoodbye is the transport-internal frame a closing endpoint writes
// before half-closing each connection. It lets readers distinguish a
// graceful departure (EOF after goodbye: not an error) from a crashed
// peer (EOF without goodbye: ErrPeerDown). It never reaches Recv.
const msgGoodbye MsgType = 0xFF

// errStrayConn marks an inbound connection that never presented a valid
// hello — a port scanner or misdirected client, not a mesh member. The
// acceptor drops it and keeps listening for real peers.
var errStrayConn = errors.New("transport: not a mesh handshake")

// DefaultMaxFrameBytes caps a frame body (header + payload) unless
// TCPOptions overrides it. It bounds the allocation a length prefix can
// demand from a receiver: a corrupt or hostile prefix is a peer error,
// not a multi-gigabyte make([]byte, n).
const DefaultMaxFrameBytes = 256 << 20

// TCPOptions tunes a TCPMesh. The zero value selects production
// defaults; tests shrink the limits to exercise the failure paths.
type TCPOptions struct {
	// SetupTimeout bounds all of mesh formation: listening, dialing
	// with retry, and every handshake step. Default 30s.
	SetupTimeout time.Duration
	// MaxFrameBytes caps the frame body size, enforced on both Send
	// (oversized tensors are rejected locally) and receive (oversized
	// length prefixes mark the peer down). Default DefaultMaxFrameBytes.
	MaxFrameBytes int
	// InboxDepth bounds the inbound network message queue; readers stop
	// pulling frames off sockets once it fills (TCP backpressure does
	// the rest). Loopback messages bypass this bound — a self-send must
	// never block the goroutine that drains the inbox. Default 1024.
	InboxDepth int
	// DrainTimeout bounds Close's graceful drain: how long to wait for
	// peers to finish their in-flight writes and close their ends.
	// Default 5s.
	DrainTimeout time.Duration
	// DisableNoDelay re-enables Nagle's algorithm. By default every mesh
	// connection runs with TCP_NODELAY set: the trainer's frames are
	// already coalesced by SendBatch, so delaying them to coalesce again
	// in the kernel only adds barrier latency.
	DisableNoDelay bool
	// CorkBatches wraps each SendBatch in TCP_CORK (Linux; a no-op
	// elsewhere): the kernel holds partial segments until the batch is
	// complete, so a batch whose vectored write gets split across
	// syscalls still leaves as full MSS-sized segments. Mutually
	// beneficial with NODELAY — cork bounds the segmentation, NODELAY
	// flushes the tail the moment the cork pops.
	CorkBatches bool
	// OnCopy, when set, receives the number of bytes the transport
	// itself copied into scratch memory for each Send/SendBatch call
	// (loopback excluded). On the vectored egress path this is the
	// length prefix + header per frame — never the payload — which is
	// what the metrics layer's bytes_copied_per_frame reports. Must be
	// safe for concurrent use.
	OnCopy func(bytes int)
	// Elastic switches the endpoint from fail-fast to per-peer
	// lifecycle: a peer whose link breaks is detached (sends to it drop
	// silently, a synthetic MsgPeerGone surfaces through Recv) instead
	// of poisoning the whole mesh, the listener stays open after setup
	// so late joiners can attach through the ordinary handshake
	// (surfacing MsgPeerUp), and a clean goodbye detaches the peer
	// silently — a graceful departure mid-training goes through the
	// comm layer's view-change protocol, not the transport.
	Elastic bool
	// Members restricts mesh formation to the given ranks — the initial
	// membership of an elastic cluster whose address list is sized for
	// capacity. Setup dials and awaits only listed peers; ranks outside
	// the list attach later through the accept loop (JoinTCPMesh).
	// Must include self. nil forms the full mesh. Elastic only.
	Members []int
}

func (o TCPOptions) withDefaults() TCPOptions {
	if o.SetupTimeout <= 0 {
		o.SetupTimeout = 30 * time.Second
	}
	if o.MaxFrameBytes <= 0 {
		o.MaxFrameBytes = DefaultMaxFrameBytes
	}
	if o.InboxDepth <= 0 {
		o.InboxDepth = 1024
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 5 * time.Second
	}
	return o
}

// TCPMesh is the multi-process transport: every node listens on its
// address and dials every higher-numbered peer, yielding one duplex TCP
// connection per pair. Frames are length-prefixed (u32 little-endian,
// bounded by MaxFrameBytes). Link failures surface from Recv as
// *ErrPeerDown rather than silently stopping message flow.
type TCPMesh struct {
	self  int
	addrs []string
	opts  TCPOptions
	inbox chan Message
	lis   net.Listener

	// connMu guards conns, peerGone, and closing. In the fixed-size
	// (non-elastic) mesh conns is immutable after setup and the lock is
	// uncontended; elastic endpoints mutate the slots as peers detach
	// and joiners attach.
	connMu   sync.RWMutex
	conns    []net.Conn // indexed by peer id; nil at self or when detached
	peerGone []bool     // elastic: slot detached (dead, departed, or Detach'd)
	closing  bool       // set by Close before waiting on readers

	closed    chan struct{} // closed by Close; readers and senders select on it
	closeOnce sync.Once

	// Self-addressed messages bypass the bounded inbox entirely; see
	// loopQueue for why blocking there would deadlock a healthy mesh.
	loop *loopQueue

	down     chan struct{} // closed on the first link failure
	downOnce sync.Once
	downErr  error // the *ErrPeerDown; written before down closes

	wg     sync.WaitGroup
	sendMu []sync.Mutex
}

// NewTCPMesh joins a mesh of len(addrs) nodes as node self with default
// options. It blocks until connections to all peers are established and
// verified, bounded by the setup timeout.
func NewTCPMesh(self int, addrs []string) (*TCPMesh, error) {
	return NewTCPMeshOpts(self, addrs, TCPOptions{})
}

// NewTCPMeshOpts is NewTCPMesh with explicit options. On any setup
// failure every already-established connection and the listener are
// closed before returning.
func NewTCPMeshOpts(self int, addrs []string, opts TCPOptions) (*TCPMesh, error) {
	if self < 0 || self >= len(addrs) {
		return nil, fmt.Errorf("transport: self %d out of range for %d addrs", self, len(addrs))
	}
	opts = opts.withDefaults()
	if len(opts.Members) > 0 {
		if !opts.Elastic {
			return nil, fmt.Errorf("transport: TCPOptions.Members needs Elastic")
		}
		ok := false
		for _, r := range opts.Members {
			if r < 0 || r >= len(addrs) {
				return nil, fmt.Errorf("transport: member %d out of range for %d addrs", r, len(addrs))
			}
			ok = ok || r == self
		}
		if !ok {
			return nil, fmt.Errorf("transport: Members %v excludes self %d", opts.Members, self)
		}
	}
	m := newTCPEndpoint(self, addrs, opts)
	lis, err := net.Listen("tcp", addrs[self])
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addrs[self], err)
	}
	m.lis = lis
	if err := m.connectAll(time.Now().Add(opts.SetupTimeout)); err != nil {
		lis.Close()
		for _, c := range m.conns {
			if c != nil {
				c.Close()
			}
		}
		return nil, err
	}
	if !opts.Elastic {
		// The full mesh is formed; nothing dials in after setup, so the
		// listening port can be released immediately.
		lis.Close()
	}
	for i, c := range m.conns {
		if c == nil {
			continue
		}
		// NODELAY unless the caller opted back into Nagle: frames are
		// already batch-coalesced above the socket, so delaying them to
		// coalesce again in the kernel only adds barrier latency.
		if tc, ok := c.(*net.TCPConn); ok {
			tc.SetNoDelay(!opts.DisableNoDelay)
		}
		m.wg.Add(1)
		go m.readLoop(i, c)
	}
	if opts.Elastic {
		// Keep accepting: late joiners attach through the same
		// handshake, just with the dialer-rank restriction relaxed.
		// connectAll may have left a setup deadline on the listener;
		// clear it so admission keeps working for the whole run.
		if tl, ok := m.lis.(*net.TCPListener); ok {
			tl.SetDeadline(time.Time{})
		}
		m.wg.Add(1)
		go m.acceptLoop()
	}
	return m, nil
}

func newTCPEndpoint(self int, addrs []string, opts TCPOptions) *TCPMesh {
	return &TCPMesh{
		self:     self,
		addrs:    addrs,
		opts:     opts,
		conns:    make([]net.Conn, len(addrs)),
		peerGone: make([]bool, len(addrs)),
		inbox:    make(chan Message, opts.InboxDepth),
		closed:   make(chan struct{}),
		down:     make(chan struct{}),
		loop:     newLoopQueue(),
		sendMu:   make([]sync.Mutex, len(addrs)),
	}
}

// JoinTCPMesh attaches a late joiner to a running elastic mesh: it
// listens on addrs[self], dials every rank in members (the live view;
// self is skipped if present), and returns once every handshake has
// completed. Each member's accept loop surfaces the attach as a
// MsgPeerUp, which is what triggers the membership barrier that folds
// the joiner in. Slots outside members stay detached until they attach
// themselves.
func JoinTCPMesh(self int, addrs []string, members []int, opts TCPOptions) (*TCPMesh, error) {
	if self < 0 || self >= len(addrs) {
		return nil, fmt.Errorf("transport: self %d out of range for %d addrs", self, len(addrs))
	}
	opts = opts.withDefaults()
	opts.Elastic = true
	m := newTCPEndpoint(self, addrs, opts)
	lis, err := net.Listen("tcp", addrs[self])
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addrs[self], err)
	}
	m.lis = lis
	deadline := time.Now().Add(opts.SetupTimeout)
	fail := func(err error) (*TCPMesh, error) {
		lis.Close()
		for _, c := range m.conns {
			if c != nil {
				c.Close()
			}
		}
		return nil, err
	}
	for _, peer := range members {
		if peer == self {
			continue
		}
		if peer < 0 || peer >= len(addrs) {
			return fail(fmt.Errorf("transport: join member %d out of range for %d addrs", peer, len(addrs)))
		}
		conn, err := m.dialPeer(peer, deadline)
		if err != nil {
			return fail(err)
		}
		if m.conns[peer] != nil {
			conn.Close()
			return fail(fmt.Errorf("transport: duplicate join member %d", peer))
		}
		m.conns[peer] = conn
	}
	for i, c := range m.conns {
		if c == nil {
			continue
		}
		if tc, ok := c.(*net.TCPConn); ok {
			tc.SetNoDelay(!opts.DisableNoDelay)
		}
		m.wg.Add(1)
		go m.readLoop(i, c)
	}
	m.wg.Add(1)
	go m.acceptLoop()
	return m, nil
}

// acceptLoop admits late joiners on an elastic endpoint: every inbound
// connection handshakes on its own goroutine so a stray client cannot
// starve a real joiner. It exits when Close releases the listener.
func (m *TCPMesh) acceptLoop() {
	defer m.wg.Done()
	for {
		conn, err := m.lis.Accept()
		if err != nil {
			return
		}
		go m.admit(conn)
	}
}

// admit runs the relaxed handshake on one inbound connection and, if it
// names a free slot, registers the peer, starts its reader, and
// surfaces MsgPeerUp. Strays, duplicates, and post-Close races just
// close the connection.
func (m *TCPMesh) admit(conn net.Conn) {
	peer, err := m.acceptHandshake(conn, time.Now().Add(m.opts.SetupTimeout), true)
	if err != nil {
		conn.Close()
		return
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(!m.opts.DisableNoDelay)
	}
	m.connMu.Lock()
	if m.closing || m.conns[peer] != nil {
		m.connMu.Unlock()
		conn.Close()
		return
	}
	m.conns[peer] = conn
	m.peerGone[peer] = false
	// wg.Add under connMu, ordered against Close's closing=true, so a
	// reader is never added after Close started waiting.
	m.wg.Add(1)
	m.connMu.Unlock()
	go m.readLoop(peer, conn)
	select {
	case m.inbox <- Message{Type: MsgPeerUp, From: int32(peer)}:
	case <-m.closed:
	}
}

// WaitAttached blocks until a live link to rank exists — a joiner
// completed its handshake — or the timeout elapses. The comm layer's
// view leader uses it to close the member-applies-view-before-joiner-
// dials race.
func (m *TCPMesh) WaitAttached(rank int, timeout time.Duration) error {
	if rank < 0 || rank >= len(m.addrs) {
		return fmt.Errorf("transport: bad rank %d", rank)
	}
	if rank == m.self {
		return nil
	}
	deadline := time.Now().Add(timeout)
	for {
		m.connMu.RLock()
		ok := m.conns[rank] != nil && !m.peerGone[rank]
		m.connMu.RUnlock()
		if ok {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("transport: peer %d did not attach within %v", rank, timeout)
		}
		select {
		case <-m.closed:
			return ErrClosed
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// connectAll establishes the connection to every peer: accepting and
// verifying hellos from lower-numbered nodes while dialing
// higher-numbered ones, all bounded by deadline. Registration is
// synchronized and rejects duplicate peer ids, so a misconfigured
// cluster (two processes with the same -id) fails loudly instead of
// silently overwriting — and leaking — a live connection.
// setupPeer reports whether rank i participates in mesh formation:
// everyone without a Members restriction, initial members only with
// one.
func (m *TCPMesh) setupPeer(i int) bool {
	if len(m.opts.Members) == 0 {
		return true
	}
	for _, r := range m.opts.Members {
		if r == i {
			return true
		}
	}
	return false
}

func (m *TCPMesh) connectAll(deadline time.Time) error {
	errc := make(chan error, len(m.addrs))
	var wg sync.WaitGroup
	var mu sync.Mutex
	register := func(peer int, conn net.Conn) error {
		mu.Lock()
		defer mu.Unlock()
		if m.conns[peer] != nil {
			return fmt.Errorf("transport: duplicate handshake from peer %d", peer)
		}
		m.conns[peer] = conn
		return nil
	}

	// Only initial members participate in setup; absent capacity slots
	// attach later through the elastic accept loop.
	expect := 0
	for i := 0; i < m.self; i++ {
		if m.setupPeer(i) {
			expect++
		}
	}
	if expect > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if tl, ok := m.lis.(*net.TCPListener); ok {
				tl.SetDeadline(deadline)
			}
			type handshake struct {
				peer int
				conn net.Conn
				err  error
			}
			results := make(chan handshake)
			acceptErr := make(chan error, 1)
			regDone := make(chan struct{})
			defer close(regDone)
			// Each inbound connection handshakes on its own goroutine:
			// a client that connects and then says nothing must not
			// starve the real peers behind it in the accept queue. Its
			// read still times out at the setup deadline.
			go func() {
				for {
					conn, err := m.lis.Accept()
					if err != nil {
						acceptErr <- err
						return
					}
					go func() {
						peer, err := m.acceptHandshake(conn, deadline, false)
						select {
						case results <- handshake{peer, conn, err}:
						case <-regDone:
							conn.Close()
						}
					}()
				}
			}()
			for need := expect; need > 0; {
				select {
				case r := <-results:
					err := r.err
					if err == errStrayConn {
						r.conn.Close()
						continue
					}
					if err == nil {
						err = register(r.peer, r.conn)
					}
					if err != nil {
						r.conn.Close()
						errc <- err
						return
					}
					need--
				case err := <-acceptErr:
					errc <- fmt.Errorf("transport: accept (still missing %d peers): %w", need, err)
					return
				}
			}
			if m.opts.Elastic {
				// The listener survives setup on an elastic endpoint, so
				// this setup-time accept pump (which enforces the strict
				// lower-rank rule) must hand the listener over to the
				// relaxed post-setup acceptLoop instead of racing it:
				// expire the accept and wait for the pump to exit.
				if tl, ok := m.lis.(*net.TCPListener); ok {
					tl.SetDeadline(time.Now())
				}
				<-acceptErr
			}
		}()
	}
	for i := m.self + 1; i < len(m.addrs); i++ {
		if !m.setupPeer(i) {
			continue
		}
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := m.dialPeer(i, deadline)
			if err == nil {
				if err = register(i, conn); err != nil {
					conn.Close()
				}
			}
			if err != nil {
				errc <- err
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errc:
		return err
	default:
		return nil
	}
}

// acceptHandshake validates a dialer's hello and acks it, all under the
// setup deadline. Connections that never present the magic are stray
// (errStrayConn, non-fatal); a well-formed hello with the wrong
// version, mesh size, or id range is a real misconfiguration and fatal.
// relaxed lifts the lower-numbered-dialers-only rule for elastic
// late-join admission, where any free non-self slot may dial in.
func (m *TCPMesh) acceptHandshake(conn net.Conn, deadline time.Time, relaxed bool) (int, error) {
	conn.SetDeadline(deadline)
	var hello [helloLen]byte
	if _, err := io.ReadFull(conn, hello[:]); err != nil {
		return 0, errStrayConn
	}
	if binary.LittleEndian.Uint32(hello[0:4]) != handshakeMagic {
		return 0, errStrayConn
	}
	if v := hello[4]; v != protocolVersion {
		return 0, fmt.Errorf("transport: peer speaks protocol v%d, this node speaks v%d", v, protocolVersion)
	}
	peer := int(int32(binary.LittleEndian.Uint32(hello[5:9])))
	if n := int(binary.LittleEndian.Uint32(hello[9:13])); n != len(m.addrs) {
		return 0, fmt.Errorf("transport: peer %d believes the mesh has %d nodes, this node says %d", peer, n, len(m.addrs))
	}
	if relaxed {
		if peer < 0 || peer >= len(m.addrs) || peer == m.self {
			return 0, fmt.Errorf("transport: hello from out-of-range peer %d", peer)
		}
	} else if peer < 0 || peer >= m.self {
		return 0, fmt.Errorf("transport: unexpected hello from peer %d (node %d only accepts lower-numbered dialers)", peer, m.self)
	}
	var ack [ackLen]byte
	binary.LittleEndian.PutUint32(ack[0:4], handshakeMagic)
	ack[4] = protocolVersion
	binary.LittleEndian.PutUint32(ack[5:9], uint32(m.self))
	if _, err := conn.Write(ack[:]); err != nil {
		return 0, fmt.Errorf("transport: handshake ack to peer %d: %w", peer, err)
	}
	conn.SetDeadline(time.Time{})
	return peer, nil
}

// dialPeer dials addrs[peer] with exponential backoff until the setup
// deadline (the peer may simply not be listening yet), then runs the
// hello/ack handshake on the fresh connection.
func (m *TCPMesh) dialPeer(peer int, deadline time.Time) (net.Conn, error) {
	backoff := 2 * time.Millisecond
	var lastErr error
	for {
		remain := time.Until(deadline)
		if remain <= 0 {
			if lastErr == nil {
				lastErr = errors.New("setup deadline exceeded")
			}
			return nil, fmt.Errorf("transport: dial peer %d at %s: %w", peer, m.addrs[peer], lastErr)
		}
		conn, err := net.DialTimeout("tcp", m.addrs[peer], remain)
		if err == nil {
			if err := m.dialHandshake(conn, peer, deadline); err != nil {
				conn.Close()
				return nil, err
			}
			return conn, nil
		}
		lastErr = err
		sleep := backoff
		if sleep > remain {
			sleep = remain
		}
		time.Sleep(sleep)
		if backoff < 250*time.Millisecond {
			backoff *= 2
		}
	}
}

func (m *TCPMesh) dialHandshake(conn net.Conn, peer int, deadline time.Time) error {
	conn.SetDeadline(deadline)
	var hello [helloLen]byte
	binary.LittleEndian.PutUint32(hello[0:4], handshakeMagic)
	hello[4] = protocolVersion
	binary.LittleEndian.PutUint32(hello[5:9], uint32(m.self))
	binary.LittleEndian.PutUint32(hello[9:13], uint32(len(m.addrs)))
	if _, err := conn.Write(hello[:]); err != nil {
		return fmt.Errorf("transport: handshake hello to peer %d: %w", peer, err)
	}
	var ack [ackLen]byte
	if _, err := io.ReadFull(conn, ack[:]); err != nil {
		return fmt.Errorf("transport: handshake ack from peer %d: %w", peer, err)
	}
	if binary.LittleEndian.Uint32(ack[0:4]) != handshakeMagic {
		return fmt.Errorf("transport: %s is not a mesh node (bad ack magic)", m.addrs[peer])
	}
	if v := ack[4]; v != protocolVersion {
		return fmt.Errorf("transport: peer %d speaks protocol v%d, this node speaks v%d", peer, v, protocolVersion)
	}
	if got := int(int32(binary.LittleEndian.Uint32(ack[5:9]))); got != peer {
		return fmt.Errorf("transport: dialed %s expecting peer %d but reached peer %d", m.addrs[peer], peer, got)
	}
	conn.SetDeadline(time.Time{})
	return nil
}

// peerDown records the first link failure and wakes everyone selecting
// on the down channel. Later failures keep the first error (one dead
// peer is enough to abort; the cause of the first is the useful one).
func (m *TCPMesh) peerDown(peer int, cause error) {
	m.downOnce.Do(func() {
		m.downErr = &ErrPeerDown{Peer: peer, Cause: cause}
		close(m.down)
	})
}

// markPeerGone detaches one peer of an elastic endpoint: the slot's
// connection closes, later sends to it drop silently, and — only when
// the link broke (cause non-nil, i.e. a crash rather than a goodbye) —
// a synthetic MsgPeerGone surfaces through Recv so the comm layer can
// run a membership barrier. Goodbyes stay silent: a graceful mid-run
// departure is negotiated by the view-change protocol before the
// leaver ever closes its mesh, and end-of-run closes must not spuriously
// trigger barriers on peers still draining their tails. Idempotent per
// detachment; a later re-attach re-arms it.
func (m *TCPMesh) markPeerGone(peer int, cause error) {
	m.connMu.Lock()
	if m.peerGone[peer] {
		m.connMu.Unlock()
		return
	}
	m.peerGone[peer] = true
	if c := m.conns[peer]; c != nil {
		c.Close()
		m.conns[peer] = nil
	}
	m.connMu.Unlock()
	if cause == nil {
		return
	}
	select {
	case m.inbox <- Message{Type: MsgPeerGone, From: int32(peer)}:
	case <-m.closed:
	}
}

// readLoop pumps one peer's frames into the inbox. A clean goodbye ends
// it silently; any other termination while the mesh is still open marks
// the peer down — poisoning the fixed-size mesh, or detaching just that
// peer on an elastic one — so Recv surfaces the failure instead of the
// cluster hanging on messages that will never arrive.
func (m *TCPMesh) readLoop(peer int, c net.Conn) {
	defer m.wg.Done()
	err := m.readFrames(peer, c)
	select {
	case <-m.closed:
		// Local Close tears connections down under the reader; that is
		// shutdown, not a peer failure.
		return
	default:
	}
	if m.opts.Elastic {
		// The goodbye (err == nil) detaches silently; a broken stream
		// injects MsgPeerGone. Because this runs after readFrames
		// returned, every frame the peer sent is already in the inbox
		// ahead of the lifecycle event — per-peer ordering holds.
		m.markPeerGone(peer, err)
		return
	}
	if err == nil {
		return
	}
	m.peerDown(peer, err)
}

// readFrames reads length-prefixed frames from c until the peer says
// goodbye (returns nil) or the stream fails (returns the cause).
func (m *TCPMesh) readFrames(peer int, c net.Conn) error {
	// hdr lives outside the loop: io.ReadFull's interface call makes it
	// escape, and one heap header per connection beats one per frame.
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(c, hdr[:]); err != nil {
			if err == io.EOF {
				return errors.New("connection closed without goodbye (peer crashed?)")
			}
			return err
		}
		n := int(binary.LittleEndian.Uint32(hdr[:]))
		if n > m.opts.MaxFrameBytes {
			return fmt.Errorf("frame of %d bytes exceeds MaxFrameBytes %d", n, m.opts.MaxFrameBytes)
		}
		if n < headerLen {
			return fmt.Errorf("frame of %d bytes is shorter than the %d-byte header", n, headerLen)
		}
		// Each frame body lives in a pooled lease that travels with the
		// message; the consumer's ReleasePayload recycles it. The read
		// loop therefore allocates nothing per frame in steady state.
		ref := LeasePayload(n)
		body := ref.Bytes()[:n]
		if _, err := io.ReadFull(c, body); err != nil {
			ref.Release()
			return fmt.Errorf("truncated frame (wanted %d body bytes): %w", n, err)
		}
		msg, err := decode(body)
		if err != nil || msg.Type == msgGoodbye {
			ref.Release()
			if err != nil {
				return err
			}
			return nil
		}
		msg.lease = ref
		select {
		case m.inbox <- msg:
		case <-m.closed:
			// Shutting down: discard, but keep reading so the peer's
			// in-flight writes drain until its goodbye or the drain
			// deadline Close put on the connection.
			ref.Release()
		}
	}
}

// Self returns this endpoint's node id.
func (m *TCPMesh) Self() int { return m.self }

// N returns the mesh size.
func (m *TCPMesh) N() int { return len(m.addrs) }

// loopback queues a self-addressed message. It never blocks — the
// caller may be the inbox's only consumer (the comm receive loop
// broadcasting to itself), so blocking here on any condition would
// deadlock a healthy mesh — and never panics on a closed one. Frame
// bounds are enforced exactly like the remote path: a tensor too big
// for the mesh must fail the same way whether or not its destination
// happens to be colocated.
func (m *TCPMesh) loopback(msg Message) error {
	if err := m.checkFrameSize(m.self, msg); err != nil {
		return err
	}
	select {
	case <-m.closed:
		return ErrClosed
	default:
	}
	m.loop.push(msg)
	return nil
}

// checkFrameSize rejects oversized payloads at the sender, so a tensor
// that would blow the receiver's frame bound fails fast and locally.
func (m *TCPMesh) checkFrameSize(to int, msg Message) error {
	if len(msg.Payload) > m.opts.MaxFrameBytes-headerLen {
		return fmt.Errorf("transport: %d-byte payload to peer %d exceeds MaxFrameBytes %d",
			len(msg.Payload), to, m.opts.MaxFrameBytes)
	}
	return nil
}

// writeVec pushes an iovec list down the connection to peer `to` with a
// single vectored write (net.Buffers → writev), serializing with other
// writers, and maps failures: ErrClosed if the mesh is closing,
// *ErrPeerDown otherwise (a TCP write only fails when the link is
// gone). WriteTo resumes partial writes internally, so on a nil return
// every iovec — headers and payloads alike — has been handed to the
// kernel; the caller may release payload leases the moment this
// returns, and not before. cork bounds segmentation around multi-frame
// batches when the mesh was built with CorkBatches.
func (m *TCPMesh) writeVec(to int, conn net.Conn, vec net.Buffers, cork bool) error {
	m.sendMu[to].Lock()
	if cork {
		setCork(conn, true)
	}
	// WriteTo consumes the slice header it is called on; vec is a copy,
	// so the caller's header (and its pooled backing array) survive.
	_, err := vec.WriteTo(conn)
	if cork {
		setCork(conn, false)
	}
	m.sendMu[to].Unlock()
	if err == nil {
		return nil
	}
	select {
	case <-m.closed:
		// Close's drain deadline wakes writers mid-writev; the frame may
		// be partially on the wire, but the mesh is going away and the
		// payload lease is still the caller's to release.
		return ErrClosed
	default:
	}
	if m.opts.Elastic {
		// First detection of a dead peer may be on the write path:
		// detach it (surfacing MsgPeerGone through Recv) and report
		// success — elastic sends to the dead are dropped, the
		// membership barrier is what handles the death.
		m.markPeerGone(to, err)
		return nil
	}
	return &ErrPeerDown{Peer: to, Cause: err}
}

// connTo resolves the live connection to peer `to`, or (nil, nil) when
// the peer is detached on an elastic endpoint — the caller drops the
// frame silently.
func (m *TCPMesh) connTo(to int) (net.Conn, error) {
	if to < 0 || to >= len(m.addrs) {
		return nil, fmt.Errorf("transport: no connection to %d", to)
	}
	m.connMu.RLock()
	conn := m.conns[to]
	m.connMu.RUnlock()
	if conn == nil {
		if m.opts.Elastic {
			return nil, nil
		}
		return nil, fmt.Errorf("transport: no connection to %d", to)
	}
	return conn, nil
}

// Send delivers msg to node `to` (loopback messages short-circuit the
// network). Only the length prefix and header are materialized in
// pooled scratch; the payload rides to the kernel as its own iovec —
// zero-copy egress, one syscall.
func (m *TCPMesh) Send(to int, msg Message) error {
	msg.From = int32(m.self)
	if to == m.self {
		return m.loopback(msg)
	}
	conn, err := m.connTo(to)
	if err != nil {
		return err
	}
	if conn == nil {
		return nil // elastic: detached peer, frame dropped
	}
	if err := m.checkFrameSize(to, msg); err != nil {
		return err
	}
	bp := getFrameBuf(4 + headerLen)
	*bp = appendPrefixedHeader(*bp, msg)
	vp := getVec()
	vec := append(*vp, *bp)
	if len(msg.Payload) > 0 {
		vec = append(vec, msg.Payload)
	}
	err = m.writeVec(to, conn, vec, false)
	if m.opts.OnCopy != nil {
		m.opts.OnCopy(4 + headerLen)
	}
	putFrameBuf(bp)
	putVec(vp, vec)
	return err
}

// SendBatch writes all frames to node `to` with one lock acquisition
// and one vectored write — the fast path for chunked tensor pushes,
// which produce many frames per destination. Headers pack into a
// single pooled scratch buffer; every payload goes to the kernel
// uncopied as its own iovec.
func (m *TCPMesh) SendBatch(to int, msgs []Message) error {
	if len(msgs) == 0 {
		return nil
	}
	if to == m.self {
		for _, msg := range msgs {
			msg.From = int32(m.self)
			if err := m.loopback(msg); err != nil {
				return err
			}
		}
		return nil
	}
	conn, err := m.connTo(to)
	if err != nil {
		return err
	}
	if conn == nil {
		return nil // elastic: detached peer, batch dropped
	}
	for _, msg := range msgs {
		if err := m.checkFrameSize(to, msg); err != nil {
			return err
		}
	}
	// One scratch buffer holds every frame's prefix+header back to back.
	// Its capacity is reserved up front so the appends below never
	// reallocate — the iovec sub-slices must stay valid.
	scratch := (4 + headerLen) * len(msgs)
	bp := getFrameBuf(scratch)
	vp := getVec()
	vec := *vp
	for _, msg := range msgs {
		msg.From = int32(m.self)
		start := len(*bp)
		*bp = appendPrefixedHeader(*bp, msg)
		vec = append(vec, (*bp)[start:])
		if len(msg.Payload) > 0 {
			vec = append(vec, msg.Payload)
		}
	}
	err = m.writeVec(to, conn, vec, m.opts.CorkBatches)
	if m.opts.OnCopy != nil {
		m.opts.OnCopy(scratch)
	}
	putFrameBuf(bp)
	putVec(vp, vec)
	return err
}

// Recv blocks for the next inbound message (loopback queue first, then
// the network inbox). Traffic already queued is delivered before any
// failure surfaces; after that, a failed link reports *ErrPeerDown and
// a closed mesh ErrClosed.
func (m *TCPMesh) Recv() (Message, error) {
	for {
		if msg, ok := m.loop.pop(); ok {
			return msg, nil
		}
		select {
		case msg := <-m.inbox:
			return msg, nil
		case <-m.loop.sig:
			// Re-check the loopback queue at the top of the loop.
		case <-m.down:
			if msg, ok := m.loop.pop(); ok {
				return msg, nil
			}
			select {
			case msg := <-m.inbox:
				return msg, nil
			default:
				return Message{}, m.downErr
			}
		case <-m.closed:
			if msg, ok := m.loop.pop(); ok {
				return msg, nil
			}
			select {
			case msg := <-m.inbox:
				return msg, nil
			default:
				return Message{}, ErrClosed
			}
		}
	}
}

// Detach severs the link to one peer without tearing the mesh down:
// the connection closes, later sends to the peer drop silently, and no
// MsgPeerGone is synthesized — the caller (the comm layer applying a
// new view) already decided the peer is out. The slot re-attaches if
// the rank later rejoins through the listener. Elastic endpoints only.
func (m *TCPMesh) Detach(peer int) error {
	if !m.opts.Elastic {
		return fmt.Errorf("transport: TCPMesh.Detach needs TCPOptions.Elastic")
	}
	if peer < 0 || peer >= len(m.addrs) || peer == m.self {
		return fmt.Errorf("transport: bad detach peer %d", peer)
	}
	m.markPeerGone(peer, nil)
	return nil
}

// Close shuts the endpoint down gracefully: it announces the departure
// with a goodbye frame and half-closes writes — synchronously, so the
// goodbye is in the kernel's send queue before Close returns even if
// the process exits right after — then drains readers (letting peers'
// in-flight writes complete) and releases every connection in the
// background, bounded by DrainTimeout. Concurrent Send/SendBatch/Recv
// calls unblock with ErrClosed. Idempotent.
func (m *TCPMesh) Close() error {
	m.closeOnce.Do(func() {
		close(m.closed)
		m.lis.Close()
		// Freeze membership: no admission (and no reader registration)
		// may start once teardown is under way. The snapshot below is
		// what the rest of Close works over — elastic detaches cannot
		// nil a slot out from under it.
		m.connMu.Lock()
		m.closing = true
		conns := append([]net.Conn(nil), m.conns...)
		m.connMu.Unlock()
		// A deadline in the near future bounds the whole teardown: it
		// wakes writers currently blocked on a stalled peer (so the
		// goodbye below can take the send lock) and stops the reader
		// drain if a peer never closes its end.
		deadline := time.Now().Add(m.opts.DrainTimeout)
		for _, c := range conns {
			if c != nil {
				c.SetDeadline(deadline)
			}
		}
		var bye [4 + headerLen]byte
		binary.LittleEndian.PutUint32(bye[0:4], headerLen)
		bye[4] = byte(msgGoodbye)
		binary.LittleEndian.PutUint32(bye[5:9], uint32(m.self))
		for peer, c := range conns {
			if c == nil {
				continue
			}
			m.sendMu[peer].Lock()
			_, _ = c.Write(bye[:])
			if tc, ok := c.(*net.TCPConn); ok {
				tc.CloseWrite()
			}
			m.sendMu[peer].Unlock()
		}
		// Drain and release off the caller's goroutine: readers exit on
		// each peer's goodbye/EOF or on the deadline above, so a slow
		// peer delays reclamation, never the Close caller.
		go func() {
			m.wg.Wait()
			for _, c := range conns {
				if c != nil {
					c.Close()
				}
			}
		}()
	})
	return nil
}
