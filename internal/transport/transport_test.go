package transport

import (
	"fmt"
	"sync"
	"testing"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	msg := Message{Type: MsgPush, From: 3, Layer: 7, Iter: 42, Payload: []byte{1, 2, 3}}
	got, err := decode(encode(msg))
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != msg.Type || got.From != msg.From || got.Layer != msg.Layer ||
		got.Iter != msg.Iter || string(got.Payload) != string(msg.Payload) {
		t.Fatalf("round trip: %+v != %+v", got, msg)
	}
}

func TestDecodeShortFrame(t *testing.T) {
	if _, err := decode([]byte{1, 2}); err == nil {
		t.Fatal("want error")
	}
}

func TestChanMeshBasic(t *testing.T) {
	ms := NewChanCluster(3)
	if ms[1].Self() != 1 || ms[1].N() != 3 {
		t.Fatal("bad endpoint identity")
	}
	if err := ms[0].Send(2, Message{Type: MsgSF, Layer: 5, Iter: 1}); err != nil {
		t.Fatal(err)
	}
	got, err := ms[2].Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.From != 0 || got.Layer != 5 || got.Type != MsgSF {
		t.Fatalf("got %+v", got)
	}
}

func TestChanMeshLoopback(t *testing.T) {
	ms := NewChanCluster(1)
	if err := ms[0].Send(0, Message{Type: MsgBarrier}); err != nil {
		t.Fatal(err)
	}
	if msg, err := ms[0].Recv(); err != nil || msg.Type != MsgBarrier {
		t.Fatalf("loopback failed: %v %v", msg, err)
	}
}

func TestChanMeshBadDest(t *testing.T) {
	ms := NewChanCluster(2)
	if err := ms[0].Send(5, Message{}); err == nil {
		t.Fatal("want error for bad destination")
	}
}

func TestChanMeshCloseUnblocksRecv(t *testing.T) {
	ms := NewChanCluster(2)
	done := make(chan error, 1)
	go func() {
		_, err := ms[1].Recv()
		done <- err
	}()
	ms[0].Close()
	if err := <-done; err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestChanMeshManyToOne(t *testing.T) {
	const n = 8
	ms := NewChanCluster(n)
	var wg sync.WaitGroup
	for i := 1; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 10; k++ {
				if err := ms[i].Send(0, Message{Type: MsgPush, Iter: int32(k)}); err != nil {
					t.Error(err)
				}
			}
		}()
	}
	wg.Wait()
	for k := 0; k < (n-1)*10; k++ {
		if _, err := ms[0].Recv(); err != nil {
			t.Fatal(err)
		}
	}
}

func tcpAddrs(n, base int) []string {
	var a []string
	for i := 0; i < n; i++ {
		a = append(a, fmt.Sprintf("127.0.0.1:%d", base+i))
	}
	return a
}

func TestTCPMeshPairwise(t *testing.T) {
	addrs := tcpAddrs(3, 42100)
	var ms [3]*TCPMesh
	var wg sync.WaitGroup
	errs := make(chan error, 3)
	for i := 0; i < 3; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			m, err := NewTCPMesh(i, addrs)
			if err != nil {
				errs <- err
				return
			}
			ms[i] = m
		}()
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	defer func() {
		for _, m := range ms {
			m.Close()
		}
	}()

	payload := make([]byte, 100000)
	for i := range payload {
		payload[i] = byte(i)
	}
	if err := ms[0].Send(2, Message{Type: MsgPush, Layer: 9, Iter: 3, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	got, err := ms[2].Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.From != 0 || got.Layer != 9 || len(got.Payload) != len(payload) {
		t.Fatalf("got From=%d Layer=%d len=%d", got.From, got.Layer, len(got.Payload))
	}
	for i := range payload {
		if got.Payload[i] != payload[i] {
			t.Fatalf("payload corrupted at %d", i)
		}
	}
	// Loopback on TCP mesh.
	if err := ms[1].Send(1, Message{Type: MsgBarrier}); err != nil {
		t.Fatal(err)
	}
	if msg, err := ms[1].Recv(); err != nil || msg.Type != MsgBarrier {
		t.Fatalf("tcp loopback: %v %v", msg, err)
	}
}

func TestTCPMeshConcurrentSenders(t *testing.T) {
	addrs := tcpAddrs(2, 42200)
	var ms [2]*TCPMesh
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			m, err := NewTCPMesh(i, addrs)
			if err != nil {
				t.Error(err)
				return
			}
			ms[i] = m
		}()
	}
	wg.Wait()
	if ms[0] == nil || ms[1] == nil {
		t.Fatal("mesh setup failed")
	}
	defer ms[0].Close()
	defer ms[1].Close()

	const msgs = 50
	var send sync.WaitGroup
	for g := 0; g < 4; g++ {
		send.Add(1)
		go func() {
			defer send.Done()
			for k := 0; k < msgs; k++ {
				if err := ms[0].Send(1, Message{Type: MsgSF, Iter: int32(k), Payload: make([]byte, 1000)}); err != nil {
					t.Error(err)
				}
			}
		}()
	}
	send.Wait()
	for k := 0; k < 4*msgs; k++ {
		if _, err := ms[1].Recv(); err != nil {
			t.Fatal(err)
		}
	}
}
