package transport

import (
	"fmt"
	"time"
)

// Shared-memory ring transport for co-located workers.
//
// SHMMesh connects the n processes of a single-host cluster through
// mmap'd ring buffers instead of loopback TCP: one single-producer /
// single-consumer ring per *directed* peer pair, laid out in a file
// under a shared rendezvous directory. A frame is written into the
// ring exactly once (prefix+header+payload) and read out of it exactly
// once — no socket, no syscall per frame, no kernel copy in between.
//
// Layout of ring-<from>-<to>.shm:
//
//	offset 0    head  u64  consumer cursor, written only by the receiver
//	offset 64   tail  u64  producer cursor, written only by the sender
//	offset 128  flags u32  bit 0: sender closed (graceful goodbye)
//	                       bit 1: receiver detached
//	offset 192  data  RingBytes (power of two)
//
// head and tail are free-running byte cursors (position = cursor &
// (RingBytes-1)), cache-line separated so the producer and consumer
// never write the same line. Each side keeps a cached copy of the
// other's cursor and refreshes it only when the ring looks full
// (sender) or empty (receiver), so the steady-state hot path touches
// one shared cache line per side. Waiting sides spin briefly
// (runtime.Gosched) and then park with escalating sleeps — no futex,
// no condition variable, and no busy-burning a core on an idle link.
//
// Liveness is carried by file locks rather than heartbeats: every node
// holds an exclusive lock on peer-<id>.lock for its whole lifetime,
// taken with open-file-description (OFD) semantics so two endpoints in
// one process still conflict. The kernel drops the lock on any exit,
// including SIGKILL. A peer whose lock is free but whose goodbye flag
// is unset has crashed: blocked senders and idle receivers probe the
// lock at a low cadence and surface *ErrPeerDown, exactly like a TCP
// connection reset. A set goodbye flag with the ring drained is a
// graceful departure, exactly like the TCP goodbye frame.
//
// The rendezvous directory must be fresh per cluster run (stale
// cursors from a previous run are not detected) and shared by all
// nodes; every node must use the same RingBytes.

// DefaultSHMRingBytes is the per-directed-pair ring capacity unless
// SHMOptions overrides it. 4 MiB absorbs a full batch of chunked
// tensor pushes without the sender ever waiting on the consumer in the
// benchmarks, while keeping an 8-node mesh's total mapping modest.
const DefaultSHMRingBytes = 1 << 22

// SHMOptions tunes an SHMMesh. The zero value of everything but Dir
// selects production defaults.
type SHMOptions struct {
	// Dir is the rendezvous directory holding the ring and lock files.
	// Required; all nodes of the mesh must name the same directory, and
	// it must be fresh for each cluster run.
	Dir string
	// RingBytes is the data capacity of each directed ring. Must be a
	// power of two. Default DefaultSHMRingBytes.
	RingBytes int
	// MaxFrameBytes caps the frame body (header + payload), enforced on
	// send and on receive like TCPOptions.MaxFrameBytes. A frame must
	// also fit the ring, so the effective cap is min(MaxFrameBytes,
	// RingBytes-4). Default min(DefaultMaxFrameBytes, RingBytes-4).
	MaxFrameBytes int
	// SetupTimeout bounds mesh formation: how long to wait for every
	// peer to create and lock its liveness file. Default 30s.
	SetupTimeout time.Duration
	// InboxDepth bounds the inbound message queue, exactly like
	// TCPOptions.InboxDepth (ring backpressure does the rest). Loopback
	// bypasses the bound. Default 1024.
	InboxDepth int
	// OnCopy, when set, receives the number of bytes the transport
	// copied for each Send/SendBatch call (loopback excluded). Unlike
	// the vectored TCP path, a shared-memory ring *is* the copy: the
	// whole record (prefix + header + payload) lands here once. Must be
	// safe for concurrent use.
	OnCopy func(bytes int)
	// Elastic switches the endpoint from fail-fast to per-peer
	// lifecycle, mirroring TCPOptions.Elastic: a crashed peer is
	// detached (sends to it drop silently, a synthetic MsgPeerGone
	// surfaces through Recv) instead of poisoning the mesh, and a
	// graceful goodbye detaches silently. Late join is NOT supported on
	// the shm transport — ring files rendezvous at setup — so elastic
	// shm clusters can only shrink.
	Elastic bool
}

func (o SHMOptions) withDefaults() (SHMOptions, error) {
	if o.Dir == "" {
		return o, fmt.Errorf("transport: SHMOptions.Dir is required")
	}
	if o.RingBytes == 0 {
		o.RingBytes = DefaultSHMRingBytes
	}
	if o.RingBytes < 4096 || o.RingBytes&(o.RingBytes-1) != 0 {
		return o, fmt.Errorf("transport: RingBytes %d must be a power of two >= 4096", o.RingBytes)
	}
	if o.MaxFrameBytes <= 0 {
		o.MaxFrameBytes = DefaultMaxFrameBytes
	}
	if o.MaxFrameBytes > o.RingBytes-4 {
		o.MaxFrameBytes = o.RingBytes - 4
	}
	if o.SetupTimeout <= 0 {
		o.SetupTimeout = 30 * time.Second
	}
	if o.InboxDepth <= 0 {
		o.InboxDepth = 1024
	}
	return o, nil
}
