package transport

import (
	"testing"

	"repro/internal/metrics"
)

// MeteredMesh must count exactly the non-loopback frames, at their
// on-wire size (length prefix + header + payload), in both directions.
func TestMeteredMeshCountsWireTraffic(t *testing.T) {
	meshes := NewChanCluster(2)
	defer meshes[0].Close()
	c := metrics.NewComm()
	m0 := NewMeteredMesh(meshes[0], c.Wire())

	if m0.Self() != 0 || m0.N() != 2 {
		t.Fatalf("identity passthrough broken: self=%d n=%d", m0.Self(), m0.N())
	}

	msg := Message{Type: MsgPush, Layer: 1, Payload: []byte{1, 2, 3, 4}}
	want := WireBytes(msg) // 4 + 17 + 4
	if err := m0.Send(1, msg); err != nil {
		t.Fatal(err)
	}
	if err := m0.SendBatch(1, []Message{msg, msg}); err != nil {
		t.Fatal(err)
	}
	// Loopback: free, never counted.
	if err := m0.Send(0, msg); err != nil {
		t.Fatal(err)
	}
	if got, _ := m0.Recv(); got.Type != MsgPush {
		t.Fatalf("loopback recv type %d", got.Type)
	}

	snap := c.Snapshot().Wire
	if snap.FramesSent != 3 || snap.BytesSent != int64(3*want) {
		t.Fatalf("sent %d frames / %d bytes, want 3 / %d", snap.FramesSent, snap.BytesSent, 3*want)
	}
	if snap.FramesRecv != 0 {
		t.Fatalf("loopback recv was counted: %d frames", snap.FramesRecv)
	}

	// The peer's inbound side counts the three remote frames.
	c1 := metrics.NewComm()
	m1 := NewMeteredMesh(meshes[1], c1.Wire())
	for i := 0; i < 3; i++ {
		if _, err := m1.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	snap1 := c1.Snapshot().Wire
	if snap1.FramesRecv != 3 || snap1.BytesRecv != int64(3*want) {
		t.Fatalf("peer recv %d frames / %d bytes, want 3 / %d", snap1.FramesRecv, snap1.BytesRecv, 3*want)
	}
}
