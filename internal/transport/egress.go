package transport

import (
	"net"
	"sync"
)

// Shared egress/ingress plumbing for the networked meshes (TCPMesh,
// SHMMesh): pooled iovec slices for vectored writes and the unbounded
// self-addressed loopback queue.

// vecPool recycles the [][]byte backing arrays handed to writev as
// net.Buffers. Buffers.WriteTo consumes the slice it is given (and nils
// entries as they drain), so callers keep the original slice header and
// return it length-0 — the backing array's capacity is what the pool
// preserves.
var vecPool = sync.Pool{New: func() any { return new(net.Buffers) }}

func getVec() *net.Buffers {
	vp := vecPool.Get().(*net.Buffers)
	*vp = (*vp)[:0]
	return vp
}

func putVec(vp *net.Buffers, backing net.Buffers) {
	*vp = backing[:0]
	vecPool.Put(vp)
}

// loopQueue is the unbounded queue self-addressed messages ride instead
// of a transport's bounded network inbox. The comm layer's receive
// goroutine broadcasts to itself (e.g. a shard sending fresh parameters
// to its own worker); if that send could block on a full inbox whose
// only consumer is that same goroutine, a healthy mesh would deadlock.
// Self-addressed traffic never touches a socket or ring, so the
// backpressure the bounded inbox provides does not apply.
type loopQueue struct {
	mu sync.Mutex
	q  []Message
	// sig has capacity 1: "the queue may be non-empty". Receivers select
	// on it alongside their network wakeups.
	sig chan struct{}
}

func newLoopQueue() *loopQueue {
	return &loopQueue{sig: make(chan struct{}, 1)}
}

// push enqueues a self-addressed message, taking the queue's own
// reference on the payload lease (released by the consumer), and never
// blocks.
func (l *loopQueue) push(msg Message) {
	msg.retainLease()
	l.mu.Lock()
	l.q = append(l.q, msg)
	l.mu.Unlock()
	select {
	case l.sig <- struct{}{}:
	default:
	}
}

// pop dequeues the oldest message, re-arming the signal if more remain
// (so concurrent Recv callers are not left asleep).
func (l *loopQueue) pop() (Message, bool) {
	l.mu.Lock()
	if len(l.q) == 0 {
		l.mu.Unlock()
		return Message{}, false
	}
	msg := l.q[0]
	l.q = l.q[1:]
	rearm := len(l.q) > 0
	l.mu.Unlock()
	if rearm {
		select {
		case l.sig <- struct{}{}:
		default:
		}
	}
	return msg, true
}
