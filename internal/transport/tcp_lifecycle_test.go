package transport

import (
	"encoding/binary"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// freeAddrs reserves n distinct loopback addresses by binding ephemeral
// ports and releasing them. The release-to-rebind window is tiny and
// loopback-local, which keeps these tests free of fixed-port collisions.
func freeAddrs(t testing.TB, n int) []string {
	t.Helper()
	var lis []net.Listener
	var addrs []string
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lis = append(lis, l)
		addrs = append(addrs, l.Addr().String())
	}
	for _, l := range lis {
		l.Close()
	}
	return addrs
}

// dialMeshOpts forms a full mesh concurrently, one endpoint per addr.
func dialMeshOpts(t testing.TB, addrs []string, opts TCPOptions) []*TCPMesh {
	t.Helper()
	ms := make([]*TCPMesh, len(addrs))
	var wg sync.WaitGroup
	errs := make(chan error, len(addrs))
	for i := range addrs {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			m, err := NewTCPMeshOpts(i, addrs, opts)
			if err != nil {
				errs <- err
				return
			}
			ms[i] = m
		}()
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	return ms
}

// rawConnTo returns the raw socket from m to peer, for tests that
// corrupt the frame stream behind Send's back.
func rawConnTo(m *TCPMesh, peer int) net.Conn { return m.conns[peer] }

func TestSetupTimesOutOnMissingPeer(t *testing.T) {
	addrs := freeAddrs(t, 2)
	start := time.Now()
	_, err := NewTCPMeshOpts(0, addrs, TCPOptions{SetupTimeout: 300 * time.Millisecond})
	if err == nil {
		t.Fatal("mesh formed with no peer listening")
	}
	if elapsed := time.Since(start); elapsed < 200*time.Millisecond || elapsed > 5*time.Second {
		t.Fatalf("setup failed after %v, want ~300ms (backoff under a deadline, not a busy spin)", elapsed)
	}
}

func TestSetupRejectsVersionMismatch(t *testing.T) {
	addrs := freeAddrs(t, 2)
	errc := make(chan error, 1)
	go func() {
		_, err := NewTCPMeshOpts(1, addrs, TCPOptions{SetupTimeout: 5 * time.Second})
		errc <- err
	}()
	conn := dialAccepting(t, addrs[1])
	defer conn.Close()
	var hello [helloLen]byte
	binary.LittleEndian.PutUint32(hello[0:4], handshakeMagic)
	hello[4] = protocolVersion + 7
	binary.LittleEndian.PutUint32(hello[5:9], 0)
	binary.LittleEndian.PutUint32(hello[9:13], 2)
	if _, err := conn.Write(hello[:]); err != nil {
		t.Fatal(err)
	}
	err := <-errc
	if err == nil || !contains(err.Error(), "protocol") {
		t.Fatalf("err = %v, want protocol version mismatch", err)
	}
}

func TestSetupRejectsDuplicatePeer(t *testing.T) {
	addrs := freeAddrs(t, 3)
	errc := make(chan error, 1)
	go func() {
		_, err := NewTCPMeshOpts(2, addrs, TCPOptions{SetupTimeout: 5 * time.Second})
		errc <- err
	}()
	hello := func() []byte {
		b := make([]byte, helloLen)
		binary.LittleEndian.PutUint32(b[0:4], handshakeMagic)
		b[4] = protocolVersion
		binary.LittleEndian.PutUint32(b[5:9], 0) // both impostors claim id 0
		binary.LittleEndian.PutUint32(b[9:13], 3)
		return b
	}
	c1 := dialAccepting(t, addrs[2])
	defer c1.Close()
	if _, err := c1.Write(hello()); err != nil {
		t.Fatal(err)
	}
	// Wait for the ack so the first registration definitely happened
	// before the duplicate arrives.
	ack := make([]byte, ackLen)
	if _, err := readFull(c1, ack); err != nil {
		t.Fatal(err)
	}
	c2 := dialAccepting(t, addrs[2])
	defer c2.Close()
	if _, err := c2.Write(hello()); err != nil {
		t.Fatal(err)
	}
	err := <-errc
	if err == nil || !contains(err.Error(), "duplicate") {
		t.Fatalf("err = %v, want duplicate peer rejection", err)
	}
}

func TestSetupIgnoresStrayConnections(t *testing.T) {
	addrs := freeAddrs(t, 2)
	meshErr := make(chan error, 1)
	var m1 *TCPMesh
	go func() {
		var err error
		m1, err = NewTCPMeshOpts(1, addrs, TCPOptions{SetupTimeout: 10 * time.Second})
		meshErr <- err
	}()
	// A port scanner: connects, spews garbage, hangs up.
	stray := dialAccepting(t, addrs[1])
	stray.Write([]byte("GET / HTTP/1.1\r\n"))
	stray.Close()
	// The real peer still gets through.
	m0, err := NewTCPMeshOpts(0, addrs, TCPOptions{SetupTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer m0.Close()
	if err := <-meshErr; err != nil {
		t.Fatal(err)
	}
	defer m1.Close()
	if err := m0.Send(1, Message{Type: MsgBarrier}); err != nil {
		t.Fatal(err)
	}
	if msg, err := m1.Recv(); err != nil || msg.Type != MsgBarrier {
		t.Fatalf("recv after stray conn: %+v %v", msg, err)
	}
}

func TestSendRejectsOversizedFrame(t *testing.T) {
	addrs := freeAddrs(t, 2)
	ms := dialMeshOpts(t, addrs, TCPOptions{MaxFrameBytes: 4096})
	defer ms[0].Close()
	defer ms[1].Close()

	big := Message{Type: MsgPush, Payload: make([]byte, 8192)}
	if err := ms[0].Send(1, big); err == nil || !contains(err.Error(), "MaxFrameBytes") {
		t.Fatalf("Send err = %v, want local MaxFrameBytes rejection", err)
	}
	if err := ms[0].SendBatch(1, []Message{{Type: MsgPush}, big}); err == nil || !contains(err.Error(), "MaxFrameBytes") {
		t.Fatalf("SendBatch err = %v, want local MaxFrameBytes rejection", err)
	}
	// The rejection is local: the link stays healthy.
	if err := ms[0].Send(1, Message{Type: MsgBarrier}); err != nil {
		t.Fatal(err)
	}
	if msg, err := ms[1].Recv(); err != nil || msg.Type != MsgBarrier {
		t.Fatalf("recv after rejected send: %+v %v", msg, err)
	}
}

// Loopback must enforce the same frame bounds as the remote path: a
// tensor too big for the mesh has to fail identically whether or not
// its destination happens to be colocated (it used to slip through).
func TestLoopbackRejectsOversizedFrame(t *testing.T) {
	addrs := freeAddrs(t, 2)
	ms := dialMeshOpts(t, addrs, TCPOptions{MaxFrameBytes: 4096})
	defer ms[0].Close()
	defer ms[1].Close()

	big := Message{Type: MsgPush, Payload: make([]byte, 8192)}
	if err := ms[0].Send(0, big); err == nil || !contains(err.Error(), "MaxFrameBytes") {
		t.Fatalf("loopback Send err = %v, want MaxFrameBytes rejection", err)
	}
	if err := ms[0].SendBatch(0, []Message{big, {Type: MsgPush}}); err == nil || !contains(err.Error(), "MaxFrameBytes") {
		t.Fatalf("loopback SendBatch err = %v, want MaxFrameBytes rejection", err)
	}
	// In-bounds loopback still flows after the rejections.
	if err := ms[0].Send(0, Message{Type: MsgBarrier}); err != nil {
		t.Fatal(err)
	}
	if msg, err := ms[0].Recv(); err != nil || msg.Type != MsgBarrier {
		t.Fatalf("recv after rejected loopback: %+v %v", msg, err)
	}
}

// The vectored egress path must copy only the length prefix and header
// into transport scratch — payload bytes ride to the kernel uncopied —
// and loopback must not count at all.
func TestOnCopyCountsHeaderBytesOnly(t *testing.T) {
	var copied atomic.Int64
	addrs := freeAddrs(t, 2)
	ms := dialMeshOpts(t, addrs, TCPOptions{OnCopy: func(n int) { copied.Add(int64(n)) }})
	defer ms[0].Close()
	defer ms[1].Close()

	payload := make([]byte, 64<<10)
	if err := ms[0].Send(1, Message{Type: MsgPush, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	batch := make([]Message, 4)
	for i := range batch {
		batch[i] = Message{Type: MsgPush, Iter: int32(i), Payload: payload}
	}
	if err := ms[0].SendBatch(1, batch); err != nil {
		t.Fatal(err)
	}
	// Loopback never touches scratch and must not be counted.
	if err := ms[0].Send(0, Message{Type: MsgBarrier, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	if msg, err := ms[0].Recv(); err != nil || msg.Type != MsgBarrier {
		t.Fatalf("loopback recv: %+v %v", msg, err)
	}
	for i := 0; i < 5; i++ {
		msg, err := ms[1].Recv()
		if err != nil {
			t.Fatal(err)
		}
		msg.ReleasePayload()
	}
	const frames = 5 // 1 Send + 4 batched
	if got, want := copied.Load(), int64(frames*(4+headerLen)); got != want {
		t.Fatalf("transport copied %d bytes, want %d (prefix+header only for %d frames)", got, want, frames)
	}
}

// assertPeerDown asserts that Recv surfaces *ErrPeerDown for the given
// peer within a deadline, rather than hanging.
func assertPeerDown(t *testing.T, m Mesh, wantPeer int) {
	t.Helper()
	type res struct {
		msg Message
		err error
	}
	done := make(chan res, 1)
	go func() {
		msg, err := m.Recv()
		done <- res{msg, err}
	}()
	select {
	case r := <-done:
		var pd *ErrPeerDown
		if !errors.As(r.err, &pd) {
			t.Fatalf("Recv = %+v, %v; want *ErrPeerDown", r.msg, r.err)
		}
		if pd.Peer != wantPeer {
			t.Fatalf("ErrPeerDown.Peer = %d, want %d (cause: %v)", pd.Peer, wantPeer, pd.Cause)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Recv still hanging 10s after the frame stream went bad")
	}
}

func TestOversizedLengthPrefixSurfacesPeerDown(t *testing.T) {
	addrs := freeAddrs(t, 2)
	ms := dialMeshOpts(t, addrs, TCPOptions{MaxFrameBytes: 1 << 16})
	defer ms[0].Close()
	defer ms[1].Close()

	// A corrupt (or hostile) length prefix demanding 4 GB.
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], 0xFFFFFFF0)
	if _, err := rawConnTo(ms[0], 1).Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	assertPeerDown(t, ms[1], 0)
}

func TestTruncatedFrameSurfacesPeerDown(t *testing.T) {
	addrs := freeAddrs(t, 2)
	ms := dialMeshOpts(t, addrs, TCPOptions{})
	defer ms[0].Close()
	defer ms[1].Close()

	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], 100) // promise 100 bytes...
	raw := rawConnTo(ms[0], 1)
	raw.Write(hdr[:])
	raw.Write(make([]byte, 10)) // ...deliver 10, then die mid-frame
	raw.Close()
	assertPeerDown(t, ms[1], 0)
}

func TestBadFrameTypeSurfacesPeerDown(t *testing.T) {
	addrs := freeAddrs(t, 2)
	ms := dialMeshOpts(t, addrs, TCPOptions{})
	defer ms[0].Close()
	defer ms[1].Close()

	frame := make([]byte, 4+headerLen)
	binary.LittleEndian.PutUint32(frame[0:4], headerLen)
	frame[4] = 0x7A // no such message type
	if _, err := rawConnTo(ms[0], 1).Write(frame); err != nil {
		t.Fatal(err)
	}
	assertPeerDown(t, ms[1], 0)
}

func TestCrashWithoutGoodbyeSurfacesPeerDown(t *testing.T) {
	addrs := freeAddrs(t, 2)
	ms := dialMeshOpts(t, addrs, TCPOptions{})
	defer ms[1].Close()

	// Queued traffic is still delivered before the failure surfaces.
	if err := ms[0].Send(1, Message{Type: MsgPush, Iter: 7}); err != nil {
		t.Fatal(err)
	}
	if msg, err := ms[1].Recv(); err != nil || msg.Iter != 7 {
		t.Fatalf("queued msg: %+v %v", msg, err)
	}
	// Simulate a crash: the socket dies without the goodbye Close sends.
	rawConnTo(ms[0], 1).Close()
	assertPeerDown(t, ms[1], 0)
}

func TestGracefulCloseIsNotPeerDown(t *testing.T) {
	addrs := freeAddrs(t, 2)
	ms := dialMeshOpts(t, addrs, TCPOptions{})

	ms[0].Close()
	errc := make(chan error, 1)
	go func() {
		_, err := ms[1].Recv()
		errc <- err
	}()
	// The goodbye must keep the survivor's Recv blocked (no spurious
	// ErrPeerDown on a clean departure)...
	select {
	case err := <-errc:
		t.Fatalf("Recv returned %v after peer's graceful Close", err)
	case <-time.After(300 * time.Millisecond):
	}
	// ...until its own Close, which reports plain closure.
	ms[1].Close()
	if err := <-errc; !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

// Loopback must never block, even far past the inbox bound: the comm
// receive loop sends to itself while being the inbox's only consumer,
// so a blocking (or panicking) self-send would deadlock a healthy mesh.
func TestLoopbackNeverBlocksAndKeepsOrder(t *testing.T) {
	addrs := freeAddrs(t, 1)
	m, err := NewTCPMeshOpts(0, addrs, TCPOptions{InboxDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	const n = 100 // 50x the inbox depth, sent with no concurrent Recv
	done := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			if err := m.Send(0, Message{Type: MsgBarrier, Iter: int32(i)}); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("loopback sends blocked with nobody receiving")
	}
	for i := 0; i < n; i++ {
		msg, err := m.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if msg.Iter != int32(i) {
			t.Fatalf("loopback reordered: got iter %d at position %d", msg.Iter, i)
		}
	}
	// Queued messages drain after Close, then closure reports; new
	// loopback sends fail cleanly instead of panicking.
	if err := m.Send(0, Message{Type: MsgBarrier}); err != nil {
		t.Fatal(err)
	}
	m.Close()
	if err := m.Send(0, Message{Type: MsgBarrier}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Send after Close = %v, want ErrClosed", err)
	}
	if _, err := m.Recv(); err != nil {
		t.Fatalf("queued loopback lost at Close: %v", err)
	}
	if _, err := m.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Recv = %v, want ErrClosed", err)
	}
}

// okShutdownErr reports whether err is an acceptable outcome for an
// operation racing Close: success, clean closure, or a link that died
// under the teardown.
func okShutdownErr(err error) bool {
	var pd *ErrPeerDown
	return err == nil || errors.Is(err, ErrClosed) || errors.As(err, &pd)
}

// TestCloseRaceWithTraffic hammers Send/SendBatch/Recv (remote and
// loopback) on both endpoints while both Close concurrently; run under
// -race. No panic (send on closed channel), no deadlock, and every
// error is a principled shutdown error.
func TestCloseRaceWithTraffic(t *testing.T) {
	for round := 0; round < 3; round++ {
		addrs := freeAddrs(t, 2)
		ms := dialMeshOpts(t, addrs, TCPOptions{InboxDepth: 8})
		var wg sync.WaitGroup
		for side := 0; side < 2; side++ {
			m, peer := ms[side], 1-side
			for g := 0; g < 3; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for k := 0; ; k++ {
						var err error
						switch k % 3 {
						case 0:
							err = m.Send(peer, Message{Type: MsgPush, Iter: int32(k), Payload: make([]byte, 256)})
						case 1:
							err = m.Send(m.Self(), Message{Type: MsgBarrier, Iter: int32(k)})
						default:
							err = m.SendBatch(peer, []Message{
								{Type: MsgPush, Chunk: 0, Iter: int32(k)},
								{Type: MsgPush, Chunk: 1, Iter: int32(k)},
							})
						}
						if err != nil {
							if !okShutdownErr(err) {
								t.Errorf("send: %v", err)
							}
							return
						}
					}
				}()
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					if _, err := m.Recv(); err != nil {
						if !okShutdownErr(err) {
							t.Errorf("recv: %v", err)
						}
						return
					}
				}
			}()
		}
		time.Sleep(20 * time.Millisecond)
		var cwg sync.WaitGroup
		for _, m := range ms {
			m := m
			cwg.Add(1)
			go func() {
				defer cwg.Done()
				m.Close()
			}()
		}
		cwg.Wait()
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(15 * time.Second):
			t.Fatal("workers still blocked after both endpoints closed")
		}
	}
}

func TestCloseIdempotentAndConcurrent(t *testing.T) {
	addrs := freeAddrs(t, 2)
	ms := dialMeshOpts(t, addrs, TCPOptions{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		for _, m := range ms {
			m := m
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := m.Close(); err != nil {
					t.Errorf("Close: %v", err)
				}
			}()
		}
	}
	wg.Wait()
}

// ---- small test helpers ----------------------------------------------------

func dialAccepting(t *testing.T, addr string) net.Conn {
	t.Helper()
	var err error
	for i := 0; i < 200; i++ {
		var c net.Conn
		if c, err = net.Dial("tcp", addr); err == nil {
			return c
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("dial %s: %v", addr, err)
	return nil
}

func readFull(c net.Conn, buf []byte) (int, error) {
	n := 0
	for n < len(buf) {
		k, err := c.Read(buf[n:])
		n += k
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
