//go:build linux

package transport

import (
	"net"
	"syscall"
)

// setCork toggles TCP_CORK on the connection: while corked, the kernel
// holds partial segments and sends only full MSS-sized ones, so a
// multi-iovec batch whose writev got split across syscalls still
// leaves the NIC as dense segments. Errors are deliberately ignored —
// corking is a throughput hint, and a connection that cannot take the
// option (already dying, not a TCPConn) must not fail the write that
// follows.
func setCork(c net.Conn, on bool) {
	tc, ok := c.(*net.TCPConn)
	if !ok {
		return
	}
	raw, err := tc.SyscallConn()
	if err != nil {
		return
	}
	v := 0
	if on {
		v = 1
	}
	raw.Control(func(fd uintptr) {
		syscall.SetsockoptInt(int(fd), syscall.IPPROTO_TCP, syscall.TCP_CORK, v)
	})
}
