package transport

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// The Chunk field must survive the wire (it addresses KV chunks in the
// functional plane's chunked pushes).
func TestEncodeDecodeChunkRoundTrip(t *testing.T) {
	msg := Message{Type: MsgPush, From: 1, Layer: 12, Chunk: 345, Iter: 9, Payload: []byte{7}}
	got, err := decode(encode(msg))
	if err != nil {
		t.Fatal(err)
	}
	if got.Chunk != 345 || got.Layer != 12 || got.Iter != 9 {
		t.Fatalf("round trip lost fields: %+v", got)
	}
	if WireBytes(msg) != 4+headerLen+1 {
		t.Fatalf("WireBytes = %d", WireBytes(msg))
	}
}

func TestChanMeshSendBatch(t *testing.T) {
	ms := NewChanCluster(2)
	defer ms[0].Close()
	msgs := []Message{
		{Type: MsgPush, Layer: 1, Chunk: 0},
		{Type: MsgPush, Layer: 1, Chunk: 1},
		{Type: MsgPush, Layer: 1, Chunk: 2},
	}
	if err := ms[0].SendBatch(1, msgs); err != nil {
		t.Fatal(err)
	}
	for want := int32(0); want < 3; want++ {
		got, err := ms[1].Recv()
		if err != nil {
			t.Fatal(err)
		}
		if got.Chunk != want || got.From != 0 {
			t.Fatalf("batch delivered out of order: got chunk %d, want %d", got.Chunk, want)
		}
	}
}

func TestTCPMeshSendBatch(t *testing.T) {
	addrs := tcpAddrs(2, 42300)
	ms := dialPair(t, addrs)
	defer ms[0].Close()
	defer ms[1].Close()

	const batches, per = 20, 5
	for b := 0; b < batches; b++ {
		msgs := make([]Message, per)
		for c := range msgs {
			msgs[c] = Message{
				Type: MsgPush, Layer: int32(b), Chunk: int32(c), Iter: 1,
				Payload: make([]byte, 512),
			}
		}
		if err := ms[0].SendBatch(1, msgs); err != nil {
			t.Fatal(err)
		}
	}
	for b := 0; b < batches; b++ {
		for c := 0; c < per; c++ {
			got, err := ms[1].Recv()
			if err != nil {
				t.Fatal(err)
			}
			if got.Layer != int32(b) || got.Chunk != int32(c) || len(got.Payload) != 512 {
				t.Fatalf("frame %d.%d corrupted: %+v", b, c, got)
			}
		}
	}
	// Loopback batches short-circuit the network but keep order.
	if err := ms[1].SendBatch(1, []Message{{Type: MsgBarrier, Chunk: 1}, {Type: MsgBarrier, Chunk: 2}}); err != nil {
		t.Fatal(err)
	}
	for want := int32(1); want <= 2; want++ {
		if msg, err := ms[1].Recv(); err != nil || msg.Chunk != want {
			t.Fatalf("loopback batch: %+v %v", msg, err)
		}
	}
}

func dialPair(t *testing.T, addrs []string) [2]*TCPMesh {
	t.Helper()
	var ms [2]*TCPMesh
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			m, err := NewTCPMesh(i, addrs)
			if err != nil {
				t.Error(err)
				return
			}
			ms[i] = m
		}()
	}
	wg.Wait()
	if ms[0] == nil || ms[1] == nil {
		t.Fatal("mesh setup failed")
	}
	return ms
}

// The send-pool makes concurrent Send/SendBatch from many goroutines
// the common case; with pooled frame buffers in play, interleaved
// writers must neither corrupt frames nor race (run with -race).
func TestTCPMeshConcurrentSendAndBatch(t *testing.T) {
	addrs := tcpAddrs(2, 42400)
	ms := dialPair(t, addrs)
	defer ms[0].Close()
	defer ms[1].Close()

	const goroutines, msgs = 8, 40
	var send sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		send.Add(1)
		go func() {
			defer send.Done()
			for k := 0; k < msgs; k++ {
				payload := make([]byte, 64+8*g)
				for i := range payload {
					payload[i] = byte(g)
				}
				var err error
				if g%2 == 0 {
					err = ms[0].Send(1, Message{Type: MsgPush, Layer: int32(g), Iter: int32(k), Payload: payload})
				} else {
					err = ms[0].SendBatch(1, []Message{
						{Type: MsgPush, Layer: int32(g), Chunk: 0, Iter: int32(k), Payload: payload},
						{Type: MsgPush, Layer: int32(g), Chunk: 1, Iter: int32(k), Payload: payload},
					})
				}
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	send.Wait()

	// Half the writers send 1 frame per round, half send 2.
	total := goroutines/2*msgs + goroutines/2*msgs*2
	perLayerIter := make(map[string]int)
	for k := 0; k < total; k++ {
		got, err := ms[1].Recv()
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Payload) != 64+8*int(got.Layer) {
			t.Fatalf("frame from writer %d has %d payload bytes", got.Layer, len(got.Payload))
		}
		for _, b := range got.Payload {
			if b != byte(got.Layer) {
				t.Fatalf("interleaved write corrupted payload of writer %d", got.Layer)
			}
		}
		perLayerIter[fmt.Sprintf("%d.%d", got.Layer, got.Chunk)]++
	}
	for g := 0; g < goroutines; g++ {
		if n := perLayerIter[fmt.Sprintf("%d.0", g)]; n != msgs {
			t.Fatalf("writer %d: %d frames for chunk 0, want %d", g, n, msgs)
		}
	}
}

// DelayMesh must charge wire time per link and overlap distinct links:
// two concurrent sends to different peers take ~one wire time, two to
// the same peer take ~two.
func TestDelayMeshOverlapsDistinctLinks(t *testing.T) {
	const wire = 40 * time.Millisecond
	elapsedConcurrent := func(dests [2]int) time.Duration {
		inner := NewChanCluster(3)
		defer inner[0].Close()
		// 1 kB at 1 kB per wire-time unit → each message costs ~wire.
		m := NewDelayMesh(inner[0], 1000/wire.Seconds(), 0)
		payload := make([]byte, 1000-4-headerLen)
		start := time.Now()
		var wg sync.WaitGroup
		for _, d := range dests {
			d := d
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := m.Send(d, Message{Type: MsgPush, Payload: payload}); err != nil {
					t.Error(err)
				}
			}()
		}
		wg.Wait()
		return time.Since(start)
	}
	distinct := elapsedConcurrent([2]int{1, 2})
	shared := elapsedConcurrent([2]int{1, 1})
	if distinct > wire*3/2 {
		t.Fatalf("distinct links did not overlap: %v for %v of wire time", distinct, wire)
	}
	if shared < wire*2 {
		t.Fatalf("same link overlapped: %v, want ≥ %v", shared, wire*2)
	}
}

// DelayMesh loopback is free and the wrapper passes Self/N/Recv through.
func TestDelayMeshPassThrough(t *testing.T) {
	inner := NewChanCluster(2)
	defer inner[0].Close()
	m := NewDelayMesh(inner[1], 10, time.Hour) // absurd wire time
	if m.Self() != 1 || m.N() != 2 {
		t.Fatal("identity not passed through")
	}
	start := time.Now()
	if err := m.Send(1, Message{Type: MsgBarrier}); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("loopback paid wire time")
	}
	if msg, err := m.Recv(); err != nil || msg.Type != MsgBarrier {
		t.Fatalf("recv through wrapper: %+v %v", msg, err)
	}
}
