// Package cliflags is the one definition of the command-line surface
// the poseidon binaries share. poseidon-worker, poseidon-cluster, and
// poseidon-serve all register their training flags here, so a flag
// rename, a default change, or a new knob lands in every binary at
// once — the launcher's forwarding (Common.Args) and the workers'
// parsing cannot drift apart.
package cliflags

import (
	"flag"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"time"

	"repro/internal/data"
	"repro/internal/nn/autodiff"
	"repro/internal/transport"
	"repro/poseidon"
)

// Common holds the training flags every binary shares: the launcher
// forwards them verbatim to each worker it spawns, the workers feed
// them into a poseidon.Builder.
type Common struct {
	Transport     string
	ShmDir        string
	Iters         int
	Batch         int
	LR            float64
	Mode          string
	Seed          int64
	Overlap       bool
	Chunk         int
	PrintEvery    int
	DumpLosses    bool
	MaxFrame      int
	Autoplan      bool
	MetricsDump   bool
	Route         string
	BW            float64
	ReplanEvery   int
	ReplanAlpha   float64
	FrameOverhead float64
	Elastic       bool
}

// RegisterCommon registers the shared training flags on fs and returns
// the struct their parsed values land in.
func RegisterCommon(fs *flag.FlagSet) *Common {
	c := &Common{}
	fs.StringVar(&c.Transport, "transport", "tcp", "mesh transport: tcp, or shm (shared-memory rings for co-located workers, Linux only; requires -shm-dir)")
	fs.StringVar(&c.ShmDir, "shm-dir", "", "rendezvous directory for -transport shm; every worker of the run must name the same fresh directory")
	fs.IntVar(&c.Iters, "iters", 50, "training iterations")
	fs.IntVar(&c.Batch, "batch", 8, "per-worker batch size")
	fs.Float64Var(&c.LR, "lr", 0.1, "learning rate")
	fs.StringVar(&c.Mode, "mode", "hybrid", "sync mode: ps|hybrid|1bit")
	fs.Int64Var(&c.Seed, "seed", 42, "shared model/data seed")
	fs.BoolVar(&c.Overlap, "overlap", false, "stream pushes through the comm send pool (WFBP)")
	fs.IntVar(&c.Chunk, "chunk", 0, "max float32s per KV chunk (0 = whole tensors)")
	fs.IntVar(&c.PrintEvery, "print-every", 10, "print a progress line every this many iterations (streamed during training)")
	fs.BoolVar(&c.DumpLosses, "dump-losses", false, "after training, print one machine-readable 'LOSS <iter> <loss>' line per iteration")
	fs.IntVar(&c.MaxFrame, "max-frame", 0, "cap on a single frame body in bytes (0 = transport default)")
	fs.BoolVar(&c.Autoplan, "autoplan", false, "route every tensor through the paper's cost model (Algorithm 1, overrides -mode with hybrid policy) and print one PLAN line per parameter")
	fs.BoolVar(&c.MetricsDump, "metrics-dump", false, "after training, print a machine-readable 'METRICS <json>' snapshot of the live comm counters")
	fs.StringVar(&c.Route, "route", "", "explicit per-parameter scheme overrides, e.g. '2=ps,5=ring' (index=ps|sfb|1bit|ring|treering); trumps the planner policy")
	fs.Float64Var(&c.BW, "bw", 0, "initial link-bandwidth estimate in bytes/sec; makes Algorithm 1 bandwidth-aware (0 = byte-count-only cost model)")
	fs.IntVar(&c.ReplanEvery, "replan-every", 0, "re-measure the wire rate and re-run Algorithm 1 every this many iterations (0 = off)")
	fs.Float64Var(&c.ReplanAlpha, "replan-alpha", 0, "EWMA weight of the newest bandwidth observation, 0<a<=1 (0 = default)")
	fs.Float64Var(&c.FrameOverhead, "frame-overhead", 0, "modeled per-frame overhead in seconds for the bandwidth-aware cost model (0 = default)")
	fs.BoolVar(&c.Elastic, "elastic", false, "enable membership epochs: a peer failure or departure re-forms the cluster at a view-change barrier instead of aborting the run")
	return c
}

// Args renders the shared flags back into the argument list a spawned
// worker parses — the launcher's forwarding path. Zero-valued optional
// flags are omitted so the worker's own defaults stay in charge.
func (c *Common) Args() []string {
	args := []string{
		"-iters", fmt.Sprint(c.Iters), "-batch", fmt.Sprint(c.Batch),
		"-lr", fmt.Sprint(c.LR), "-mode", c.Mode, "-seed", fmt.Sprint(c.Seed),
		"-chunk", fmt.Sprint(c.Chunk), "-print-every", fmt.Sprint(c.PrintEvery),
		"-max-frame", fmt.Sprint(c.MaxFrame), "-transport", c.Transport,
	}
	if c.ShmDir != "" {
		args = append(args, "-shm-dir", c.ShmDir)
	}
	if c.Elastic {
		args = append(args, "-elastic")
	}
	if c.Overlap {
		args = append(args, "-overlap")
	}
	if c.DumpLosses {
		args = append(args, "-dump-losses")
	}
	if c.Autoplan {
		args = append(args, "-autoplan")
	}
	if c.MetricsDump {
		args = append(args, "-metrics-dump")
	}
	if c.Route != "" {
		args = append(args, "-route", c.Route)
	}
	if c.BW != 0 {
		args = append(args, "-bw", fmt.Sprint(c.BW))
	}
	if c.ReplanEvery != 0 {
		args = append(args, "-replan-every", fmt.Sprint(c.ReplanEvery))
	}
	if c.ReplanAlpha != 0 {
		args = append(args, "-replan-alpha", fmt.Sprint(c.ReplanAlpha))
	}
	if c.FrameOverhead != 0 {
		args = append(args, "-frame-overhead", fmt.Sprint(c.FrameOverhead))
	}
	return args
}

// SyncMode resolves the -mode flag, with -autoplan forcing the hybrid
// policy so Algorithm 1 stays free to pick per tensor.
func (c *Common) SyncMode() (poseidon.SyncMode, error) {
	m, ok := map[string]poseidon.SyncMode{
		"ps": poseidon.PSOnly, "hybrid": poseidon.Hybrid, "1bit": poseidon.OneBit,
	}[c.Mode]
	if !ok {
		return 0, fmt.Errorf("unknown mode %q", c.Mode)
	}
	if c.Autoplan {
		m = poseidon.Hybrid
	}
	return m, nil
}

// Node extends Common with the flags of a binary that is itself one
// node of the cluster (poseidon-worker, poseidon-serve) rather than a
// launcher.
type Node struct {
	*Common
	ID          int
	Peers       string
	Local       int
	Members     string
	Join        bool
	LeaveAt     int
	StartIter   int
	LoadParams  string
	SnapshotOut string
}

// RegisterNode registers the shared flags plus the per-node ones on fs.
func RegisterNode(fs *flag.FlagSet) *Node {
	n := &Node{Common: RegisterCommon(fs)}
	fs.IntVar(&n.ID, "id", 0, "this worker's id (0-based)")
	fs.StringVar(&n.Peers, "peers", "", "comma-separated host:port of every worker, in id order (with -transport shm the addresses are unused but the list still sizes the cluster)")
	fs.IntVar(&n.Local, "local", 0, "run an in-process cluster of this many workers instead of joining a mesh (ignores -id/-peers/-transport)")
	fs.StringVar(&n.Members, "members", "", "comma-separated ranks serving at epoch 0 (elastic; default: every rank in -peers). A -join worker names the live ranks it dials")
	fs.BoolVar(&n.Join, "join", false, "attach to a running elastic cluster as a late joiner (requires -members with the live ranks)")
	fs.IntVar(&n.LeaveAt, "leave-at", 0, "announce a graceful departure at this iteration (elastic)")
	fs.IntVar(&n.StartIter, "start-iter", 0, "resume training at this iteration instead of 0 (usually with -load-params)")
	fs.StringVar(&n.LoadParams, "load-params", "", "binary parameter snapshot to resume from (as written by -snapshot-out); its restart iteration applies unless -start-iter is set")
	fs.StringVar(&n.SnapshotOut, "snapshot-out", "", "write the adopted replica snapshot to this file at every membership change")
	return n
}

// PeerList splits the -peers flag.
func (n *Node) PeerList() []string { return strings.Split(n.Peers, ",") }

// Builder turns the parsed node flags into a validated session builder
// over the reference workload — everything but the binary-specific
// callbacks (progress lines, membership hooks), which the caller chains
// on before Build.
func (n *Node) Builder() (*poseidon.Builder, error) {
	mode, err := n.SyncMode()
	if err != nil {
		return nil, err
	}
	overrides, err := poseidon.ParseRouteOverrides(n.Route)
	if err != nil {
		return nil, fmt.Errorf("-route: %w", err)
	}
	trainSet, testSet := ReferenceData(n.Seed)
	b := poseidon.NewSession()
	if n.Local > 0 {
		b.InProcess(n.Local)
	} else {
		addrs := n.PeerList()
		if n.Peers == "" || n.ID < 0 || n.ID >= len(addrs) {
			return nil, fmt.Errorf("need -peers with this node's -id in range")
		}
		switch n.Transport {
		case "tcp":
			b.TCP(n.ID, addrs, transport.TCPOptions{MaxFrameBytes: n.MaxFrame})
		case "shm":
			if n.ShmDir == "" {
				return nil, fmt.Errorf("-transport shm requires -shm-dir")
			}
			b.SHM(n.ID, len(addrs), transport.SHMOptions{Dir: n.ShmDir, MaxFrameBytes: n.MaxFrame})
		default:
			return nil, fmt.Errorf("unknown transport %q (want tcp|shm)", n.Transport)
		}
	}
	b.Iterations(n.Iters).Batch(n.Batch).LearningRate(n.LR).Seed(n.Seed).
		Mode(mode).
		Overlap(n.Overlap).ChunkElems(n.Chunk).
		Model(ReferenceModel()).
		Data(trainSet, testSet).EvalEvery(10).
		RouteOverrides(overrides).
		Bandwidth(n.BW)
	if n.Elastic {
		b.Elastic(true)
	}
	if n.Members != "" {
		ranks, err := ParseRanks(n.Members)
		if err != nil {
			return nil, fmt.Errorf("-members: %w", err)
		}
		b.Members(ranks)
	}
	if n.Join {
		b.Joining()
	}
	if n.LeaveAt > 0 {
		b.LeaveAt(n.LeaveAt)
	}
	if n.LoadParams != "" {
		snap, err := poseidon.ReadSnapshot(n.LoadParams)
		if err != nil {
			return nil, fmt.Errorf("-load-params: %w", err)
		}
		start := n.StartIter
		if start == 0 {
			start = snap.Iter()
		}
		b.ResumeFrom(start, snap.Params())
	} else if n.StartIter > 0 {
		b.ResumeFrom(n.StartIter, nil)
	}
	if n.ReplanEvery > 0 {
		b.Replan(poseidon.ReplanSpec{
			Every:         n.ReplanEvery,
			Alpha:         n.ReplanAlpha,
			FrameOverhead: n.FrameOverhead,
		})
	}
	if n.MetricsDump {
		b.CollectMetrics()
	}
	return b, nil
}

// Serve holds the serving-plane flags poseidon-serve registers in both
// of its modes — the training gateway and the pull-replica — so the
// two surfaces (and the e2e harness driving them) cannot drift apart.
type Serve struct {
	Listen        string
	SnapshotEvery int
	MaxBatch      int
	MaxDelay      time.Duration
	TenantRPS     float64
	TenantBurst   int
	MaxInflight   int
	FinalSnapshot string
	DrainTimeout  time.Duration

	// Replica mode: serve snapshots pulled from a training gateway
	// instead of joining the mesh.
	Replica   bool
	Pull      string
	Poll      time.Duration
	MaxLag    int
	ReplicaID string
}

// RegisterServe registers the serving-plane flags on fs.
func RegisterServe(fs *flag.FlagSet) *Serve {
	s := &Serve{}
	fs.StringVar(&s.Listen, "listen", "127.0.0.1:0", "HTTP listen address of the inference API")
	fs.IntVar(&s.SnapshotEvery, "snapshot-every", 10, "capture a serving snapshot every this many training iterations (plus once when the run drains)")
	fs.IntVar(&s.MaxBatch, "max-batch", 16, "micro-batch row cap: a window executes as soon as this many rows gather")
	fs.DurationVar(&s.MaxDelay, "max-delay", 2*time.Millisecond, "micro-batch window: a lone request waits at most this long for company")
	fs.Float64Var(&s.TenantRPS, "tenant-rps", 50, "per-tenant sustained requests/sec (X-Tenant header; negative = unlimited)")
	fs.IntVar(&s.TenantBurst, "tenant-burst", 0, "per-tenant burst size (0 = 2×rps)")
	fs.IntVar(&s.MaxInflight, "max-inflight", 256, "bound on concurrently admitted predict requests; beyond it requests shed with 503")
	fs.StringVar(&s.FinalSnapshot, "final-snapshot", "", "persist the last captured snapshot to this file on shutdown (poseidon.Snapshot format)")
	fs.DurationVar(&s.DrainTimeout, "drain-timeout", 30*time.Second, "bound on the graceful drain of in-flight requests at shutdown")
	fs.BoolVar(&s.Replica, "replica", false, "serve snapshots pulled from a training gateway (-pull) instead of training; the process never joins the mesh")
	fs.StringVar(&s.Pull, "pull", "", "base URL (or host:port) of the training gateway this replica pulls snapshots from (replica mode)")
	fs.DurationVar(&s.Poll, "poll", 250*time.Millisecond, "snapshot poll interval in replica mode")
	fs.IntVar(&s.MaxLag, "max-lag", 0, "staleness bound in iterations: a replica trailing its source by more sheds with 503 until it catches up (0 = unbounded)")
	fs.StringVar(&s.ReplicaID, "replica-id", "", "fleet-unique replica name echoed on responses and in /metrics (default: the listen address)")
	return s
}

// ReferenceModel is the model every binary trains: the CIFAR-quick CNN
// at width 4 over 10 classes. e2e reference runs rebuild exactly this —
// keep in sync with e2e's referenceSession.
func ReferenceModel() poseidon.ModelBuilder {
	return func(rng *rand.Rand) *autodiff.Network {
		net, _, _, _ := autodiff.CIFARQuickNet(4, 10, rng)
		return net
	}
}

// ReferenceData is the workload every binary trains on: the seeded
// synthetic image set, split into 1024 train / 256 test rows. Keep in
// sync with e2e's referenceSession.
func ReferenceData(seed int64) (trainSet, testSet *data.Dataset) {
	full := data.Synthetic(seed, 1280, 10, 3, 8, 8, 0.35)
	return full.Split(1024)
}

// ParseRanks parses a comma-separated rank list (the -members flag).
func ParseRanks(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	ranks := make([]int, 0, len(parts))
	for _, p := range parts {
		r, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad rank %q", p)
		}
		ranks = append(ranks, r)
	}
	return ranks, nil
}

// RanksCSV renders a rank list back into the -members syntax.
func RanksCSV(ranks []int) string {
	var sb strings.Builder
	for i, r := range ranks {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(r))
	}
	return sb.String()
}
