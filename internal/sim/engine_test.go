package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(3, func() { order = append(order, 3) })
	e.At(1, func() { order = append(order, 1) })
	e.At(2, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 3 {
		t.Fatalf("Now = %v, want 3", e.Now())
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	e := NewEngine()
	var order []string
	e.At(1, func() { order = append(order, "a") })
	e.At(1, func() { order = append(order, "b") })
	e.Run()
	if order[0] != "a" || order[1] != "b" {
		t.Fatalf("order = %v", order)
	}
}

func TestAfterAndNestedScheduling(t *testing.T) {
	e := NewEngine()
	var ts []float64
	e.After(1, func() {
		ts = append(ts, e.Now())
		e.After(2, func() { ts = append(ts, e.Now()) })
	})
	e.Run()
	if len(ts) != 2 || ts[0] != 1 || ts[1] != 3 {
		t.Fatalf("ts = %v", ts)
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(1, func() { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []float64
	for _, tt := range []float64{1, 2, 5} {
		tt := tt
		e.At(tt, func() { fired = append(fired, tt) })
	}
	e.RunUntil(3)
	if len(fired) != 2 {
		t.Fatalf("fired = %v", fired)
	}
	if e.Now() != 3 {
		t.Fatalf("Now = %v", e.Now())
	}
	e.Run()
	if len(fired) != 3 {
		t.Fatalf("fired = %v", fired)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(5, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.At(1, func() {})
}

func TestResourceFIFO(t *testing.T) {
	e := NewEngine()
	r := NewResource(e)
	var done []float64
	r.Use(2, func() { done = append(done, e.Now()) })
	r.Use(3, func() { done = append(done, e.Now()) })
	e.Run()
	if len(done) != 2 || done[0] != 2 || done[1] != 5 {
		t.Fatalf("done = %v", done)
	}
	if r.Busy != 5 {
		t.Fatalf("Busy = %v", r.Busy)
	}
}

func TestResourceUseFromFuture(t *testing.T) {
	e := NewEngine()
	r := NewResource(e)
	var end float64
	e.At(10, func() {
		end = r.Use(1, nil)
	})
	e.Run()
	if end != 11 {
		t.Fatalf("end = %v", end)
	}
	if r.FreeAt() != 11 {
		t.Fatalf("FreeAt = %v", r.FreeAt())
	}
}

// Property: N randomly scheduled events fire in nondecreasing time order.
func TestMonotoneFiringProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := NewEngine()
		var fired []float64
		n := 1 + r.Intn(50)
		times := make([]float64, n)
		for i := range times {
			times[i] = r.Float64() * 100
			tt := times[i]
			e.At(tt, func() { fired = append(fired, tt) })
		}
		e.Run()
		if len(fired) != n {
			return false
		}
		if !sort.Float64sAreSorted(fired) {
			return false
		}
		sort.Float64s(times)
		for i := range times {
			if fired[i] != times[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: a FIFO resource's total makespan equals the sum of durations
// when all jobs are enqueued at time 0.
func TestResourceMakespanProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := NewEngine()
		res := NewResource(e)
		n := 1 + r.Intn(20)
		var sum, last float64
		for i := 0; i < n; i++ {
			d := r.Float64()
			sum += d
			last = res.Use(d, nil)
		}
		e.Run()
		return last == res.Busy && (sum-last) < 1e-9 && (last-sum) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
