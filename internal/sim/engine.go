// Package sim provides the discrete-event simulation kernel underlying
// the performance plane of the Poseidon reproduction: a virtual clock, a
// deterministic event queue, and simple serially-reusable resources
// (used to model PCIe copy engines and CPU apply threads).
package sim

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled callback. Events at equal times fire in
// scheduling order, which keeps runs deterministic.
type Event struct {
	time   float64
	seq    uint64
	fn     func()
	dead   bool
	pooled bool
	idx    int
}

// Cancel prevents a pending event from firing. Canceling an already
// fired or canceled event is a no-op.
func (e *Event) Cancel() { e.dead = true }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulator. The zero value is not usable;
// call NewEngine.
type Engine struct {
	now  float64
	seq  uint64
	pq   eventHeap
	runs uint64
	// free recycles fired pooled events (Post/PostAfter). Large
	// simulations schedule millions of events; without the free list the
	// Event allocations dominate the engine's heap profile.
	free []*Event
}

// NewEngine returns an engine with the clock at 0.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// At schedules fn at absolute time t (t ≥ Now).
func (e *Engine) At(t float64, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling in the past: %g < %g", t, e.now))
	}
	e.seq++
	ev := &Event{time: t, seq: e.seq, fn: fn}
	heap.Push(&e.pq, ev)
	return ev
}

// After schedules fn after a delay d ≥ 0.
func (e *Engine) After(d float64, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %g", d))
	}
	return e.At(e.now+d, fn)
}

// Post schedules fn at absolute time t (t ≥ Now) on a pooled event.
// Pooled events cannot be canceled — no handle is returned, and the
// Event is recycled the moment it fires — which is exactly what the
// hot paths (resource completions, network deliveries) want: they
// never cancel, and the free list makes scheduling allocation-free in
// steady state. Use At/After when a Cancel handle is needed.
func (e *Engine) Post(t float64, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling in the past: %g < %g", t, e.now))
	}
	e.seq++
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		ev = new(Event)
	}
	*ev = Event{time: t, seq: e.seq, fn: fn, pooled: true}
	heap.Push(&e.pq, ev)
}

// PostAfter is Post with a relative delay d ≥ 0.
func (e *Engine) PostAfter(d float64, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %g", d))
	}
	e.Post(e.now+d, fn)
}

// Run executes events until the queue is empty, returning the number of
// events fired.
func (e *Engine) Run() uint64 {
	for len(e.pq) > 0 {
		e.step()
	}
	return e.runs
}

// RunUntil executes events with time ≤ t, then advances the clock to t.
func (e *Engine) RunUntil(t float64) {
	for len(e.pq) > 0 && e.pq[0].time <= t {
		e.step()
	}
	if t > e.now {
		e.now = t
	}
}

func (e *Engine) step() {
	ev := heap.Pop(&e.pq).(*Event)
	if ev.dead {
		return
	}
	if ev.time < e.now {
		panic("sim: time went backwards")
	}
	e.now = ev.time
	e.runs++
	fn := ev.fn
	if ev.pooled {
		// Recycle before firing: fn may schedule (and therefore pop the
		// free list), and nothing else references a fired pooled event.
		ev.fn = nil
		e.free = append(e.free, ev)
	}
	fn()
}

// Pending returns the number of events in the queue (including canceled
// ones not yet discarded).
func (e *Engine) Pending() int { return len(e.pq) }

// Resource is a serially-reusable FIFO resource bound to an engine: jobs
// acquire it in request order and each holds it for a fixed duration.
// It models PCIe copy engines and single-threaded apply loops.
type Resource struct {
	eng      *Engine
	busyTill float64
	// Busy accumulates total occupied time for utilization accounting.
	Busy float64
}

// NewResource creates a resource on eng.
func NewResource(eng *Engine) *Resource { return &Resource{eng: eng} }

// Use enqueues a job of the given duration; done (optional) fires when
// the job completes. Returns the completion time.
func (r *Resource) Use(duration float64, done func()) float64 {
	if duration < 0 {
		panic("sim: negative duration")
	}
	start := r.eng.Now()
	if r.busyTill > start {
		start = r.busyTill
	}
	end := start + duration
	r.busyTill = end
	r.Busy += duration
	if done != nil {
		r.eng.Post(end, done)
	}
	return end
}

// FreeAt returns the time at which the resource next becomes free.
func (r *Resource) FreeAt() float64 {
	if r.busyTill > r.eng.Now() {
		return r.busyTill
	}
	return r.eng.Now()
}
