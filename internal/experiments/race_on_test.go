//go:build race

package experiments

// raceEnabled reports that this binary was built with the race
// detector, whose ~10x slowdown makes compute swamp the modeled wire
// time and invalidates wall-clock comparisons.
const raceEnabled = true
