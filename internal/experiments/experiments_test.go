package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	// Every paper artifact must be registered.
	want := []string{"table1", "table3", "alexnet", "fig5", "fig6", "fig7",
		"fig8", "fig9", "fig10", "fig11", "multigpu", "bestscheme", "ablations",
		"funcscale"}
	for _, name := range want {
		if _, ok := Find(name); !ok {
			t.Errorf("experiment %q not registered", name)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(All()), len(want))
	}
	if len(Names()) != len(want) {
		t.Errorf("Names() returned %d", len(Names()))
	}
	if _, ok := Find("nope"); ok {
		t.Error("Find(nope) should miss")
	}
}

func runExp(t *testing.T, name string) string {
	t.Helper()
	e, ok := Find(name)
	if !ok {
		t.Fatalf("experiment %q missing", name)
	}
	var buf bytes.Buffer
	e.Run(&buf)
	out := buf.String()
	if out == "" {
		t.Fatalf("%s produced no output", name)
	}
	return out
}

func TestTable1Output(t *testing.T) {
	out := runExp(t, "table1")
	// The worked example's numbers (Section 3.2): SFB ≈ 3.7M, colocated
	// PS ≈ 58.7M.
	for _, want := range []string{"3.7M", "58.7M", "33.6M"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable3Output(t *testing.T) {
	out := runExp(t, "table3")
	for _, want := range []string{"cifar10-quick", "googlenet", "inception-v3",
		"vgg19", "vgg19-22k", "resnet-152", "ImageNet22K"} {
		if !strings.Contains(out, want) {
			t.Errorf("table3 missing %q", want)
		}
	}
	if !strings.Contains(out, "0.1M") { // cifar quick ≈ 145.6K
		t.Errorf("table3 param formatting wrong:\n%s", out)
	}
}

func TestAlexNetOutput(t *testing.T) {
	out := runExp(t, "alexnet")
	if !strings.Contains(out, "Gbps") {
		t.Errorf("alexnet missing bandwidth demand:\n%s", out)
	}
}

func TestFig7Output(t *testing.T) {
	out := runExp(t, "fig7")
	for _, want := range []string{"Inception-V3", "VGG19-22K", "TF+WFBP", "Poseidon"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig7 missing %q", want)
		}
	}
}

func TestFig10Output(t *testing.T) {
	out := runExp(t, "fig10")
	for _, want := range []string{"TF-WFBP", "Adam", "Poseidon", "Gb/iter"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig10 missing %q", want)
		}
	}
}

func TestBestSchemeOutput(t *testing.T) {
	out := runExp(t, "bestscheme")
	if !strings.Contains(out, "SFB") || !strings.Contains(out, "fc6") {
		t.Errorf("bestscheme missing decisions:\n%s", out)
	}
}

func TestMultiGPUOutput(t *testing.T) {
	out := runExp(t, "multigpu")
	if !strings.Contains(out, "1x4") || !strings.Contains(out, "4x8") {
		t.Errorf("multigpu missing rows:\n%s", out)
	}
}

// The full figure sweeps are exercised by bench_test.go; here we just
// check fig9's convergence table renders (it is cheap).
func TestFig9ConvergenceCurve(t *testing.T) {
	if resnetTop1(0) <= resnetTop1(120) {
		t.Fatal("error curve must decrease")
	}
	if resnetTop1(120) != 0.24 {
		t.Fatalf("final error %v, want 0.24 (paper)", resnetTop1(120))
	}
	for e := 0; e < 119; e++ {
		if resnetTop1(e) < resnetTop1(e+1)-1e-9 {
			t.Fatalf("curve not monotone at epoch %d", e)
		}
	}
}
