package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/data"
	"repro/internal/metrics"
	"repro/internal/nn/autodiff"
	"repro/internal/train"
	"repro/internal/transport"
)

// The funcscale experiment measures what internal/engine only
// simulates: functional-plane iteration time with synchronization
// overlap on and off, over a bandwidth-modeled mesh. The model is a
// VGG-style FC-heavy MLP (fat fully-connected layers dominate the
// parameter count, the regime where Poseidon's chunked overlapped
// pushes matter most); links are constrained the way Fig. 8 constrains
// them, so serialized pushes pay their wire time end to end while the
// comm runtime's send pool overlaps chunks across every shard's link.

func init() {
	register("funcscale",
		"Functional-plane scaling: overlapped chunked pushes vs serialized (real training, modeled links)",
		runFuncScale)
}

// FuncScaleArm is one measured configuration.
type FuncScaleArm struct {
	Label      string
	Overlap    bool
	ChunkElems int
}

// FuncScaleResult is the wall-clock outcome of one arm.
type FuncScaleResult struct {
	Arm        FuncScaleArm
	IterMillis float64
	FinalLoss  float64
}

// FuncScaleArms are the standard three arms: the seed behavior
// (serialized, whole tensors), chunking alone, and the full overlapped
// chunked runtime.
func FuncScaleArms() []FuncScaleArm {
	return []FuncScaleArm{
		{Label: "serialized, whole tensors", Overlap: false, ChunkElems: 0},
		{Label: "serialized, chunked", Overlap: false, ChunkElems: 8192},
		{Label: "overlapped, chunked", Overlap: true, ChunkElems: 8192},
	}
}

// funcScaleConfig is the shared workload: 4 workers, an FC-heavy MLP
// (64→256→256→10, ≈84k params ≈ 338 KB of float32 per replica), BSP.
func funcScaleConfig() train.Config {
	return train.Config{
		Workers: 4, Iters: 6, Batch: 16, LR: 0.05, Mode: train.PSOnly, Seed: 42,
		BuildNet: func(rng *rand.Rand) *autodiff.Network {
			return autodiff.MLPNet(64, []int{256, 256}, 10, rng)
		},
		TrainSet: data.Synthetic(420, 512, 10, 1, 8, 8, 0.3),
	}
}

// RunFuncScaleArm trains the shared workload once under the arm's
// synchronization settings over links of the given bandwidth, returning
// wall-clock per iteration.
func RunFuncScaleArm(arm FuncScaleArm, bytesPerS float64, latency time.Duration) (FuncScaleResult, error) {
	cfg := funcScaleConfig()
	cfg.Overlap = arm.Overlap
	cfg.ChunkElems = arm.ChunkElems
	meshes := transport.NewChanCluster(cfg.Workers)
	endpoints := make([]transport.Mesh, cfg.Workers)
	for i, m := range meshes {
		endpoints[i] = transport.NewDelayMesh(m, bytesPerS, latency)
	}
	start := time.Now()
	res, err := train.RunOver(cfg, endpoints)
	if err != nil {
		return FuncScaleResult{}, err
	}
	return FuncScaleResult{
		Arm:        arm,
		IterMillis: time.Since(start).Seconds() * 1000 / float64(cfg.Iters),
		FinalLoss:  res.Curve[len(res.Curve)-1].TrainLoss,
	}, nil
}

func runFuncScale(w io.Writer) {
	// 20 MB/s links make one replica's pushes ≈17 ms of serialized wire
	// time per iteration — comparable to compute, the interesting regime.
	const bytesPerS = 20e6
	const latency = 100 * time.Microsecond
	t := metrics.NewTable(
		"funcscale: functional-plane iteration time, 4 workers, FC-heavy MLP, 20MB/s links",
		"sync runtime", "ms/iter", "speedup", "final loss")
	base := 0.0
	for i, arm := range FuncScaleArms() {
		r, err := RunFuncScaleArm(arm, bytesPerS, latency)
		if err != nil {
			fmt.Fprintf(w, "funcscale %q: %v\n", arm.Label, err)
			return
		}
		if i == 0 {
			base = r.IterMillis
		}
		t.AddRow(arm.Label,
			fmt.Sprintf("%.1f", r.IterMillis),
			fmt.Sprintf("%.2fx", base/r.IterMillis),
			fmt.Sprintf("%.4f", r.FinalLoss))
	}
	fmt.Fprintln(w, t.Render())
}
