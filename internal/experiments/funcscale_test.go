package experiments

import (
	"testing"
	"time"
)

// The acceptance bar for the comm runtime: on the FC-heavy workload
// over constrained links, overlapped chunked pushes must beat
// serialized whole-tensor pushes on wall-clock, without changing what
// the model learns. Wire time here is sleep-modeled (DelayMesh), so the
// comparison is stable even on a loaded single-core machine; the 0.85
// margin still leaves room for scheduler noise.
func TestFuncScaleOverlapBeatsSerialized(t *testing.T) {
	if raceEnabled {
		t.Skip("wall-clock comparison is meaningless under the race detector's slowdown")
	}
	arms := FuncScaleArms()
	serial, err := RunFuncScaleArm(arms[0], 20e6, 100*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	overlapped, err := RunFuncScaleArm(arms[2], 20e6, 100*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if overlapped.IterMillis >= serial.IterMillis*0.85 {
		t.Fatalf("overlapped chunked pushes (%.1f ms/iter) do not beat serialized (%.1f ms/iter)",
			overlapped.IterMillis, serial.IterMillis)
	}
	if d := overlapped.FinalLoss - serial.FinalLoss; d > 1e-6 || d < -1e-6 {
		t.Fatalf("overlap changed the training outcome: final loss %.9f vs %.9f",
			overlapped.FinalLoss, serial.FinalLoss)
	}
}

func TestFuncScaleRegistered(t *testing.T) {
	if _, ok := Find("funcscale"); !ok {
		t.Fatal("funcscale experiment not registered")
	}
}
