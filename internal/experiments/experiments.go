// Package experiments regenerates every table and figure from the
// Poseidon paper's evaluation (Section 5). Each experiment is a named
// driver that runs the performance engine (and, for Fig. 11, the
// functional trainer) and renders the same rows/series the paper
// reports. The cmd/poseidon-bench binary and bench_test.go both execute
// from this registry, so the benchmark harness and the CLI can never
// drift apart.
package experiments

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/nn"
	"repro/internal/poseidon"
)

// Experiment is one reproducible artifact from the paper.
type Experiment struct {
	Name  string // registry key, e.g. "fig5"
	Title string // the paper artifact it regenerates
	Run   func(w io.Writer)
}

var registry []Experiment

func register(name, title string, run func(w io.Writer)) {
	registry = append(registry, Experiment{Name: name, Title: title, Run: run})
}

// All returns every registered experiment in registration order.
func All() []Experiment { return registry }

// Find returns the experiment with the given name.
func Find(name string) (Experiment, bool) {
	for _, e := range registry {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// nodeScales is the x-axis of the paper's scalability figures.
var nodeScales = []int{1, 2, 4, 8, 16, 32}

// speedupSeries sweeps node counts for one (model, engine, strategy)
// and returns the speedup series.
func speedupSeries(m func() *nn.Model, eng string, strat engine.Strategy, label string, scales []int, bw float64) *metrics.Series {
	s := &metrics.Series{Label: label}
	for _, p := range scales {
		r := engine.Run(engine.Config{
			Model: m(), Workers: p, Strategy: strat, Engine: eng, Bandwidth: bw,
		})
		s.Add(float64(p), r.Speedup)
	}
	return s
}

func init() {
	register("table1", "Table 1: communication cost of PS/SFB/Adam for an MxN FC layer", runTable1)
	register("table3", "Table 3: evaluated networks and their statistics", runTable3)
	register("alexnet", "Section 2.2: AlexNet gradient-rate worked example", runAlexNet)
	register("fig5", "Figure 5: Caffe-engine speedups at 40GbE (GoogLeNet/VGG19/VGG19-22K)", runFig5)
	register("fig6", "Figure 6: TensorFlow-engine speedups at 40GbE (Inception-V3/VGG19/VGG19-22K)", runFig6)
	register("fig7", "Figure 7: GPU computation vs stall breakdown on 8 nodes", runFig7)
	register("fig8", "Figure 8: speedups under limited bandwidth", runFig8)
	register("fig9", "Figure 9: ResNet-152 throughput scaling and convergence", runFig9)
	register("fig10", "Figure 10: per-node communication load, VGG19 on 8 nodes", runFig10)
	register("fig11", "Figure 11: CIFAR-10-quick convergence, exact vs 1-bit (real training)", runFig11)
	register("multigpu", "Section 5.1: multi-GPU local aggregation", runMultiGPU)
	register("bestscheme", "Algorithm 1 walkthrough: per-layer scheme choice on VGG19-22K", runBestScheme)
	register("ablations", "Design-choice ablations: chunking, WFBP/HybComm factorial, stragglers", runAblations)
}

// ---- Table 1 -----------------------------------------------------------

func runTable1(w io.Writer) {
	c := poseidon.ClusterShape{Workers: 8, Servers: 8, Batch: 32}
	const m, n = 4096, 4096
	t := metrics.NewTable(
		fmt.Sprintf("Table 1: parameters communicated per node, M=%d, N=%d, K=%d, P1=P2=%d", m, n, c.Batch, c.Workers),
		"method", "server", "worker", "server&worker")
	t.AddRow("PS",
		fmt.Sprintf("%.1fM", float64(poseidon.PSServerParams(m, n, c))/1e6),
		fmt.Sprintf("%.1fM", float64(poseidon.PSWorkerParams(m, n))/1e6),
		fmt.Sprintf("%.1fM", float64(poseidon.PSColocatedParams(m, n, c))/1e6))
	t.AddRow("SFB", "-",
		fmt.Sprintf("%.1fM", float64(poseidon.SFBWorkerParams(m, n, c))/1e6), "-")
	t.AddRow("Adam (max)",
		fmt.Sprintf("%.1fM", float64(poseidon.AdamServerParams(m, n, c))/1e6),
		fmt.Sprintf("%.1fM", float64(poseidon.AdamWorkerParams(m, n, c))/1e6),
		fmt.Sprintf("%.1fM", float64(poseidon.AdamColocatedParams(m, n, c))/1e6))
	fmt.Fprintln(w, t.Render())
}

// ---- Table 3 -----------------------------------------------------------

func runTable3(w io.Writer) {
	t := metrics.NewTable("Table 3: neural networks for evaluation",
		"model", "#params", "dataset", "batchsize", "FC-param %")
	for _, m := range nn.Zoo() {
		fcFrac := 100 * float64(m.FCParams()) / float64(m.TotalParams())
		t.AddRow(m.Name, fmt.Sprintf("%.1fM", float64(m.TotalParams())/1e6),
			m.Dataset, m.BatchSize, fmt.Sprintf("%.0f%%", fcFrac))
	}
	fmt.Fprintln(w, t.Render())
}

// ---- Section 2.2 worked example ----------------------------------------

func runAlexNet(w io.Writer) {
	m := nn.AlexNet()
	cfg := engine.Config{Model: m, Workers: 1, Strategy: engine.HybComm, Engine: "caffe"}
	iter := cfg.SingleGPUIterTime()
	gradRate := float64(m.TotalParams()) / iter
	fmt.Fprintf(w, "AlexNet: %.1fM params, %.2fs per %d-image batch on Titan X\n",
		float64(m.TotalParams())/1e6, iter, m.BatchSize)
	fmt.Fprintf(w, "gradient production rate: %.0fM float/s\n", gradRate/1e6)
	// 8-node PS demand from Section 2.2: each colocated worker+server
	// node moves 2MN(P1+P2-2)/P2 parameters per iteration (Table 1),
	// i.e. rate x 2(P1+P2-2)/P2 floats per second = rate x 3.5 here.
	demand := gradRate * 2 * (8 + 8 - 2) / 8 * 4 * 8 / 1e9
	fmt.Fprintf(w, "per-node sync demand on 8 nodes: %.1f Gbps (paper: >26 Gbps)\n\n", demand)
}

// ---- Figure 5 -----------------------------------------------------------

func runFig5(w io.Writer) {
	bw := netsim.Gbps(40)
	models := []struct {
		name string
		mk   func() *nn.Model
	}{
		{"GoogLeNet", nn.GoogLeNet}, {"VGG19", nn.VGG19}, {"VGG19-22K", nn.VGG19_22K},
	}
	for _, mm := range models {
		f := metrics.NewFigure(fmt.Sprintf("Figure 5 (%s, Caffe engine, 40GbE): speedup vs nodes", mm.name),
			"nodes", "speedup")
		f.Series = append(f.Series, linearSeries())
		f.Series = append(f.Series,
			speedupSeries(mm.mk, "caffe", engine.HybComm, "Poseidon", nodeScales, bw),
			speedupSeries(mm.mk, "caffe", engine.WFBP, "Caffe+WFBP", nodeScales, bw),
			speedupSeries(mm.mk, "caffe", engine.SeqPS, "Caffe+PS", nodeScales, bw))
		fmt.Fprintln(w, f.Render())
	}
}

func linearSeries() *metrics.Series {
	s := &metrics.Series{Label: "Linear"}
	for _, p := range nodeScales {
		s.Add(float64(p), float64(p))
	}
	return s
}

// ---- Figure 6 -----------------------------------------------------------

func runFig6(w io.Writer) {
	bw := netsim.Gbps(40)
	models := []struct {
		name string
		mk   func() *nn.Model
	}{
		{"Inception-V3", nn.InceptionV3}, {"VGG19", nn.VGG19}, {"VGG19-22K", nn.VGG19_22K},
	}
	for _, mm := range models {
		f := metrics.NewFigure(fmt.Sprintf("Figure 6 (%s, TensorFlow engine, 40GbE): speedup vs nodes", mm.name),
			"nodes", "speedup")
		f.Series = append(f.Series, linearSeries())
		f.Series = append(f.Series,
			speedupSeries(mm.mk, "tensorflow", engine.HybComm, "Poseidon", nodeScales, bw),
			speedupSeries(mm.mk, "tensorflow", engine.WFBP, "TF+WFBP", nodeScales, bw),
			speedupSeries(mm.mk, "tensorflow", engine.TFBaseline, "TF", nodeScales, bw))
		fmt.Fprintln(w, f.Render())
	}
}

// ---- Figure 7 -----------------------------------------------------------

func runFig7(w io.Writer) {
	t := metrics.NewTable("Figure 7: GPU computation vs stall time, 8 nodes, TensorFlow engine",
		"model", "system", "compute %", "stall %")
	for _, mm := range []struct {
		name string
		mk   func() *nn.Model
	}{
		{"Inception-V3", nn.InceptionV3}, {"VGG19", nn.VGG19}, {"VGG19-22K", nn.VGG19_22K},
	} {
		for _, st := range []struct {
			label string
			strat engine.Strategy
		}{
			{"TF", engine.TFBaseline}, {"TF+WFBP", engine.WFBP}, {"Poseidon", engine.HybComm},
		} {
			r := engine.Run(engine.Config{Model: mm.mk(), Workers: 8, Strategy: st.strat, Engine: "tensorflow"})
			t.AddRow(mm.name, st.label,
				fmt.Sprintf("%.0f", r.GPUBusyFrac*100),
				fmt.Sprintf("%.0f", r.GPUStallFrac*100))
		}
	}
	fmt.Fprintln(w, t.Render())
}

// ---- Figure 8 -----------------------------------------------------------

func runFig8(w io.Writer) {
	scales := []int{1, 2, 4, 8, 16}
	cases := []struct {
		name string
		mk   func() *nn.Model
		bws  []float64 // GbE
	}{
		{"GoogLeNet", nn.GoogLeNet, []float64{2, 5, 10}},
		{"VGG19", nn.VGG19, []float64{10, 20, 30}},
		{"VGG19-22K", nn.VGG19_22K, []float64{10, 20, 30}},
	}
	for _, c := range cases {
		f := metrics.NewFigure(fmt.Sprintf("Figure 8 (%s, Caffe engine): speedup vs nodes under limited bandwidth", c.name),
			"nodes", "speedup")
		lin := &metrics.Series{Label: "Linear"}
		for _, p := range scales {
			lin.Add(float64(p), float64(p))
		}
		f.Series = append(f.Series, lin)
		for _, bw := range c.bws {
			f.Series = append(f.Series, speedupSeries(c.mk, "caffe", engine.HybComm,
				fmt.Sprintf("Poseidon(%gGbE)", bw), scales, netsim.Gbps(bw)))
		}
		for _, bw := range c.bws {
			f.Series = append(f.Series, speedupSeries(c.mk, "caffe", engine.WFBP,
				fmt.Sprintf("WFBP(%gGbE)", bw), scales, netsim.Gbps(bw)))
		}
		fmt.Fprintln(w, f.Render())
	}
}

// ---- Figure 9 -----------------------------------------------------------

// resnetTop1 models ResNet-152's top-1 validation error per epoch under
// synchronous SGD with the standard step schedule (÷10 at epochs 30 and
// 60, as in He et al.). Synchronous replication makes the per-epoch
// curve independent of the node count (the paper's point in Fig. 9b);
// only wall-clock time per epoch changes.
func resnetTop1(epoch int) float64 {
	switch {
	case epoch < 30:
		return 0.60 - 0.25*float64(epoch)/30
	case epoch < 60:
		return 0.35 - 0.08*float64(epoch-30)/30
	case epoch < 90:
		return 0.27 - 0.03*float64(epoch-60)/30
	default:
		return 0.24
	}
}

func runFig9(w io.Writer) {
	f := metrics.NewFigure("Figure 9a (ResNet-152, TF engine, 40GbE): speedup vs nodes",
		"nodes", "speedup")
	f.Series = append(f.Series, linearSeries())
	f.Series = append(f.Series,
		speedupSeries(nn.ResNet152, "tensorflow", engine.HybComm, "Poseidon", nodeScales, netsim.Gbps(40)),
		speedupSeries(nn.ResNet152, "tensorflow", engine.TFBaseline, "TF", nodeScales, netsim.Gbps(40)))
	fmt.Fprintln(w, f.Render())

	g := metrics.NewFigure("Figure 9b (ResNet-152): top-1 error vs epoch (model-based curve; see DESIGN.md)",
		"epoch", "top-1 error")
	for _, p := range []int{8, 16, 32} {
		s := g.SeriesNamed(fmt.Sprintf("%d nodes", p))
		for _, e := range []int{0, 15, 30, 45, 60, 75, 90, 105, 120} {
			s.Add(float64(e), resnetTop1(e))
		}
	}
	fmt.Fprintln(w, g.Render())

	// Time to 0.24 error, using measured throughput.
	t := metrics.NewTable("Figure 9 summary: wall-clock scaling to 0.24 top-1 error",
		"nodes", "speedup", "epochs", "relative time-to-accuracy")
	base := 0.0
	for _, p := range []int{8, 16, 32} {
		r := engine.Run(engine.Config{Model: nn.ResNet152(), Workers: p, Strategy: engine.HybComm, Engine: "tensorflow"})
		epochTime := 1.0 / r.Throughput // ∝ time per image; epochs identical
		if base == 0 {
			base = epochTime
		}
		t.AddRow(p, r.Speedup, 90, fmt.Sprintf("%.2fx", epochTime/base))
	}
	fmt.Fprintln(w, t.Render())
}

// ---- Figure 10 ----------------------------------------------------------

func runFig10(w io.Writer) {
	for _, st := range []struct {
		label string
		strat engine.Strategy
	}{
		{"TF-WFBP", engine.WFBP}, {"Adam", engine.Adam}, {"Poseidon", engine.HybComm},
	} {
		r := engine.Run(engine.Config{Model: nn.VGG19(), Workers: 8, Strategy: st.strat, Engine: "tensorflow"})
		labels := make([]string, len(r.NodeTxGbit))
		for i := range labels {
			labels[i] = fmt.Sprintf("node %d", i)
		}
		fmt.Fprintln(w, metrics.Bars(
			fmt.Sprintf("Figure 10 (%s): per-node egress traffic, VGG19, 8 nodes", st.label),
			labels, r.NodeTxGbit, "Gb/iter"))
	}
}

// ---- Multi-GPU -----------------------------------------------------------

func runMultiGPU(w io.Writer) {
	t := metrics.NewTable("Section 5.1: multi-GPU scaling with local aggregation",
		"model", "nodes x GPUs", "speedup")
	for _, c := range []struct {
		mk    func() *nn.Model
		nodes int
		gpus  int
	}{
		{nn.GoogLeNet, 1, 4}, {nn.VGG19, 1, 4},
		{nn.GoogLeNet, 4, 8}, {nn.VGG19, 4, 8},
	} {
		m := c.mk()
		r := engine.Run(engine.Config{Model: m, Workers: c.nodes, GPUsPerNode: c.gpus,
			Strategy: engine.HybComm, Engine: "caffe"})
		t.AddRow(m.Name, fmt.Sprintf("%dx%d", c.nodes, c.gpus), r.Speedup)
	}
	fmt.Fprintln(w, t.Render())
}

// ---- BestScheme walkthrough ----------------------------------------------

func runBestScheme(w io.Writer) {
	m := nn.VGG19_22K()
	for _, workers := range []int{4, 8, 16, 32} {
		co := poseidon.NewCoordinator(m, poseidon.ClusterShape{Workers: workers, Servers: workers, Batch: 32})
		t := metrics.NewTable(fmt.Sprintf("Algorithm 1 on VGG19-22K, %d nodes", workers),
			"layer", "shape", "scheme", "PS bytes/worker", "SFB bytes/worker")
		for _, p := range co.Plan() {
			l := &m.Layers[p.Layer]
			if !l.SFCapable() {
				continue
			}
			mm, nn2 := l.GradMatrixShape()
			t.AddRow(l.Name, fmt.Sprintf("%dx%d", mm, nn2), p.Scheme.String(),
				fmt.Sprintf("%.1fMB", float64(poseidon.SchemeBytes(l, poseidon.PS, co.Cluster()))/1e6),
				fmt.Sprintf("%.1fMB", float64(poseidon.SchemeBytes(l, poseidon.SFB, co.Cluster()))/1e6))
		}
		fmt.Fprintln(w, t.Render())
	}
}

// ---- Ablations -------------------------------------------------------------

func runAblations(w io.Writer) {
	// WFBP × HybComm factorial on VGG19 at 10GbE, 16 nodes.
	t := metrics.NewTable("Ablation: WFBP x HybComm factorial (VGG19, 16 nodes, 10GbE)",
		"overlap", "hybrid", "speedup")
	bw := netsim.Gbps(10)
	seq := engine.Run(engine.Config{Model: nn.VGG19(), Workers: 16, Strategy: engine.SeqPS, Engine: "caffe", Bandwidth: bw})
	wfbp := engine.Run(engine.Config{Model: nn.VGG19(), Workers: 16, Strategy: engine.WFBP, Engine: "caffe", Bandwidth: bw})
	hyb := engine.Run(engine.Config{Model: nn.VGG19(), Workers: 16, Strategy: engine.HybComm, Engine: "caffe", Bandwidth: bw})
	t.AddRow("no", "no", seq.Speedup)
	t.AddRow("yes", "no", wfbp.Speedup)
	t.AddRow("yes", "yes", hyb.Speedup)
	fmt.Fprintln(w, t.Render())

	// Chunk-size sweep.
	ct := metrics.NewTable("Ablation: KV chunk size (VGG19, 8 nodes, 10GbE, WFBP)",
		"chunk", "speedup", "placement imbalance")
	for _, chunk := range []int64{256 << 10, 2 << 20, 32 << 20, 1 << 30} {
		r := engine.Run(engine.Config{Model: nn.VGG19(), Workers: 8, Strategy: engine.WFBP,
			Engine: "caffe", Bandwidth: bw, ChunkBytes: chunk})
		pl := poseidon.NewPlacement(nn.VGG19(), 8, poseidon.FineGrained, chunk)
		ct.AddRow(byteLabel(chunk), r.Speedup, fmt.Sprintf("%.2f", pl.Imbalance()))
	}
	fmt.Fprintln(w, ct.Render())

	// Straggler policy.
	st := metrics.NewTable("Ablation: straggler policy (VGG19, 8 nodes, 1.5x straggler)",
		"policy", "iter time (s)", "relative")
	none := engine.Run(engine.Config{Model: nn.VGG19(), Workers: 8, Strategy: engine.WFBP, Engine: "caffe"})
	waitR := engine.Run(engine.Config{Model: nn.VGG19(), Workers: 8, Strategy: engine.WFBP, Engine: "caffe", StragglerSlow: 1.5})
	dropR := engine.Run(engine.Config{Model: nn.VGG19(), Workers: 8, Strategy: engine.WFBP, Engine: "caffe", StragglerSlow: 1.5, DropStragglers: true})
	st.AddRow("no straggler", fmt.Sprintf("%.3f", none.IterTime), "1.00x")
	st.AddRow("wait (plain BSP)", fmt.Sprintf("%.3f", waitR.IterTime), fmt.Sprintf("%.2fx", waitR.IterTime/none.IterTime))
	st.AddRow("drop (Poseidon)", fmt.Sprintf("%.3f", dropR.IterTime), fmt.Sprintf("%.2fx", dropR.IterTime/none.IterTime))
	fmt.Fprintln(w, st.Render())

	// SFB threshold rule vs always-PS vs always-SFB across scales.
	at := metrics.NewTable("Ablation: scheme-selection rule (VGG19-22K FC layers, 10GbE)",
		"nodes", "always PS", "always SFB", "Algorithm 1")
	for _, p := range []int{2, 4, 8, 16, 32} {
		ps := engine.Run(engine.Config{Model: nn.VGG19_22K(), Workers: p, Strategy: engine.WFBP, Engine: "caffe", Bandwidth: bw})
		hybR := engine.Run(engine.Config{Model: nn.VGG19_22K(), Workers: p, Strategy: engine.HybComm, Engine: "caffe", Bandwidth: bw})
		sfb := runForcedSFB(p, bw)
		at.AddRow(p, ps.Speedup, sfb, hybR.Speedup)
	}
	fmt.Fprintln(w, at.Render())
}

// runForcedSFB runs VGG19-22K with every FC layer pinned to SFB
// regardless of Algorithm 1 (the "always SFB" arm of the ablation).
func runForcedSFB(workers int, bw float64) float64 {
	r := engine.Run(engine.Config{Model: nn.VGG19_22K(), Workers: workers,
		Strategy: engine.HybComm, Engine: "caffe", Bandwidth: bw,
		ForceAllSFB: true})
	return r.Speedup
}

func byteLabel(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%dGB", b>>30)
	case b >= 1<<20:
		return fmt.Sprintf("%dMB", b>>20)
	default:
		return fmt.Sprintf("%dKB", b>>10)
	}
}

// Names returns all experiment names, sorted.
func Names() []string {
	var ns []string
	for _, e := range registry {
		ns = append(ns, e.Name)
	}
	sort.Strings(ns)
	return ns
}
