package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/data"
	"repro/internal/metrics"
	"repro/internal/nn/autodiff"
	"repro/internal/train"
)

// runFig11 regenerates the paper's statistical comparison on 4 workers:
// exact synchronization (Poseidon) vs 1-bit quantization with residual
// feedback (CNTK's strategy) on a CIFAR-10-quick-style CNN. This is real
// training on the functional plane — actual float32 forward/backward
// passes and actual protocol messages — on a synthetic CIFAR-like
// dataset (see DESIGN.md for the substitution rationale). The network is
// the paper's recipe at reduced scale (8×8 inputs) so the experiment
// runs in seconds on a CPU.
func runFig11(w io.Writer) {
	const (
		workers = 4
		iters   = 120
		batch   = 4
		lr      = 0.1
		classes = 10
	)
	full := data.Synthetic(911, 1280, classes, 3, 8, 8, 0.35)
	trainSet, testSet := full.Split(1024)

	build := func(rng *rand.Rand) *autodiff.Network {
		net, _, _, _ := autodiff.CIFARQuickNet(4, classes, rng)
		return net
	}

	lossFig := metrics.NewFigure("Figure 11a: train loss vs iteration (CIFAR-quick-style CNN, 4 workers)",
		"iteration", "train loss")
	errFig := metrics.NewFigure("Figure 11b: test error vs iteration",
		"iteration", "test error")

	for _, mode := range []struct {
		label string
		m     train.SyncMode
	}{
		{"Poseidon", train.Hybrid},
		{"Poseidon-1bit", train.OneBit},
	} {
		res, err := train.Run(train.Config{
			Workers: workers, Iters: iters, Batch: batch, LR: lr,
			Mode: mode.m, Seed: 7, BuildNet: build,
			TrainSet: trainSet, TestSet: testSet, EvalEvery: 20,
		})
		if err != nil {
			fmt.Fprintf(w, "fig11 %s: %v\n", mode.label, err)
			return
		}
		ls := lossFig.SeriesNamed(mode.label)
		es := errFig.SeriesNamed(mode.label)
		// Smooth the loss with a window of 10 for readability.
		win := 10
		for i := win; i <= len(res.Curve); i += win {
			sum := 0.0
			for _, p := range res.Curve[i-win : i] {
				sum += p.TrainLoss
			}
			ls.Add(float64(i), sum/float64(win))
		}
		for _, p := range res.Curve {
			if p.TestErr >= 0 {
				es.Add(float64(p.Iter+1), p.TestErr)
			}
		}
	}
	fmt.Fprintln(w, lossFig.Render())
	fmt.Fprintln(w, errFig.Render())
	fmt.Fprintln(w, "(Real data-parallel training over the functional plane. The paper claims")
	fmt.Fprintln(w, " 1-bit's quantization residual behaves like a delayed update and converges")
	fmt.Fprintln(w, " worse per iteration; on this synthetic task error-feedback 1-bit instead")
	fmt.Fprintln(w, " tracks or beats exact sync — see EXPERIMENTS.md for the discussion of")
	fmt.Fprintln(w, " this deviation.)")
}
