// Package data provides deterministic synthetic datasets for the
// functional plane. The paper's statistical experiments (Fig. 11) need a
// CIFAR-10-like classification task; since the reproduction has no
// access to the original archives, we generate a separable-but-noisy
// image distribution with class-specific spatial prototypes, which
// exercises the identical training code path (conv features, FC heads,
// softmax loss) with a learnable signal.
package data

import (
	"math/rand"

	"repro/internal/tensor"
)

// Dataset is a fixed synthetic sample set.
type Dataset struct {
	X       *tensor.Matrix // rows = samples, cols = C·H·W
	Labels  []int
	Classes int
	C, H, W int
}

// Synthetic generates n samples of c×h×w images across `classes`
// classes. Each class has a smooth random prototype; samples are the
// prototype plus Gaussian pixel noise. Identical (seed, shape) inputs
// generate identical datasets on every node — this is how workers shard
// data without a shared filesystem.
func Synthetic(seed int64, n, classes, c, h, w int, noise float64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	dim := c * h * w
	protos := tensor.NewMatrix(classes, dim)
	// Smooth prototypes: low-frequency sums of a few random planes.
	for cl := 0; cl < classes; cl++ {
		row := protos.Row(cl)
		fx, fy := 1+rng.Intn(3), 1+rng.Intn(3)
		phase := rng.Float64() * 6.28
		amp := 0.8 + rng.Float64()*0.4
		for ch := 0; ch < c; ch++ {
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					v := amp * wave(float64(x)/float64(w)*float64(fx)+float64(y)/float64(h)*float64(fy)+phase)
					row[(ch*h+y)*w+x] = float32(v)
				}
			}
		}
	}
	ds := &Dataset{
		X:       tensor.NewMatrix(n, dim),
		Labels:  make([]int, n),
		Classes: classes,
		C:       c, H: h, W: w,
	}
	for i := 0; i < n; i++ {
		cl := i % classes
		ds.Labels[i] = cl
		row := ds.X.Row(i)
		proto := protos.Row(cl)
		for j := range row {
			row[j] = proto[j] + float32(rng.NormFloat64()*noise)
		}
	}
	return ds
}

// wave is a cheap smooth periodic function.
func wave(t float64) float64 {
	// Triangle wave in [-1, 1]; smooth enough for prototypes.
	t -= float64(int(t))
	if t < 0 {
		t++
	}
	if t < 0.5 {
		return 4*t - 1
	}
	return 3 - 4*t
}

// Batch copies samples [start, start+size) (wrapping) into a fresh
// matrix and label slice.
func (d *Dataset) Batch(start, size int) (*tensor.Matrix, []int) {
	x := tensor.NewMatrix(size, d.X.Cols)
	labels := make([]int, size)
	n := d.X.Rows
	for i := 0; i < size; i++ {
		src := (start + i) % n
		copy(x.Row(i), d.X.Row(src))
		labels[i] = d.Labels[src]
	}
	return x, labels
}

// Shard returns worker w's 1/p slice of the dataset (strided, so class
// balance is preserved).
func (d *Dataset) Shard(w, p int) *Dataset {
	n := d.X.Rows
	var idx []int
	for i := w; i < n; i += p {
		idx = append(idx, i)
	}
	out := &Dataset{
		X:       tensor.NewMatrix(len(idx), d.X.Cols),
		Labels:  make([]int, len(idx)),
		Classes: d.Classes,
		C:       d.C, H: d.H, W: d.W,
	}
	for i, src := range idx {
		copy(out.X.Row(i), d.X.Row(src))
		out.Labels[i] = d.Labels[src]
	}
	return out
}

// Split partitions the dataset into the first n samples and the rest
// (train/test split drawn from the same distribution).
func (d *Dataset) Split(n int) (*Dataset, *Dataset) {
	if n <= 0 || n >= d.N() {
		panic("data: bad split point")
	}
	mk := func(lo, hi int) *Dataset {
		out := &Dataset{
			X:       tensor.NewMatrix(hi-lo, d.X.Cols),
			Labels:  make([]int, hi-lo),
			Classes: d.Classes,
			C:       d.C, H: d.H, W: d.W,
		}
		for i := lo; i < hi; i++ {
			copy(out.X.Row(i-lo), d.X.Row(i))
			out.Labels[i-lo] = d.Labels[i]
		}
		return out
	}
	return mk(0, n), mk(n, d.N())
}

// N returns the sample count.
func (d *Dataset) N() int { return d.X.Rows }
