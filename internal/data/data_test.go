package data

import "testing"

func TestSyntheticDeterministic(t *testing.T) {
	a := Synthetic(42, 100, 10, 3, 8, 8, 0.3)
	b := Synthetic(42, 100, 10, 3, 8, 8, 0.3)
	if !a.X.ApproxEqual(b.X, 0) {
		t.Fatal("same seed must generate identical data")
	}
	c := Synthetic(43, 100, 10, 3, 8, 8, 0.3)
	if a.X.ApproxEqual(c.X, 0) {
		t.Fatal("different seeds should differ")
	}
}

func TestSyntheticShape(t *testing.T) {
	d := Synthetic(1, 50, 10, 3, 8, 8, 0.3)
	if d.N() != 50 || d.X.Cols != 3*8*8 || len(d.Labels) != 50 {
		t.Fatalf("bad shape: n=%d cols=%d", d.N(), d.X.Cols)
	}
	for _, l := range d.Labels {
		if l < 0 || l >= 10 {
			t.Fatalf("label %d out of range", l)
		}
	}
}

func TestBatchWraps(t *testing.T) {
	d := Synthetic(1, 10, 2, 1, 4, 4, 0.1)
	x, labels := d.Batch(8, 4) // wraps to samples 8,9,0,1
	if x.Rows != 4 || len(labels) != 4 {
		t.Fatal("bad batch shape")
	}
	for j := 0; j < x.Cols; j++ {
		if x.At(2, j) != d.X.At(0, j) {
			t.Fatal("wrap-around sample mismatch")
		}
	}
}

func TestShardPartition(t *testing.T) {
	d := Synthetic(1, 100, 10, 1, 4, 4, 0.1)
	const p = 4
	total := 0
	for w := 0; w < p; w++ {
		s := d.Shard(w, p)
		total += s.N()
		// Strided shard preserves class balance exactly for n%p==0 when
		// classes divide evenly; here just check labels are valid.
		for i := 0; i < s.N(); i++ {
			if s.Labels[i] != d.Labels[w+i*p] {
				t.Fatal("shard misaligned")
			}
		}
	}
	if total != d.N() {
		t.Fatalf("shards cover %d of %d samples", total, d.N())
	}
}

func TestSplit(t *testing.T) {
	d := Synthetic(7, 100, 4, 1, 4, 4, 0.2)
	train, test := d.Split(80)
	if train.N() != 80 || test.N() != 20 {
		t.Fatalf("split sizes %d/%d", train.N(), test.N())
	}
	for j := 0; j < d.X.Cols; j++ {
		if test.X.At(0, j) != d.X.At(80, j) {
			t.Fatal("test set misaligned")
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bad split")
		}
	}()
	d.Split(0)
}
