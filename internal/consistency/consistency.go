// Package consistency implements the paper's bulk synchronous parallel
// (BSP) bookkeeping for the functional plane: the client library's
// binary syncer vector C (Section 4.1, "Managing Consistency") and a
// reusable iteration barrier.
package consistency

import "sync"

// SyncerVector is the client-side completion vector C: one bit per
// syncer, reset at the start of each iteration; the client begins the
// next iteration when all bits are set.
type SyncerVector struct {
	mu   sync.Mutex
	cond *sync.Cond
	bits []bool
	left int
}

// NewSyncerVector creates a vector for n syncers, all unset.
func NewSyncerVector(n int) *SyncerVector {
	v := &SyncerVector{bits: make([]bool, n), left: n}
	v.cond = sync.NewCond(&v.mu)
	return v
}

// Done sets syncer i's bit. Setting an already-set bit panics: it would
// mean a syncer completed twice in one iteration, which is a protocol
// violation.
func (v *SyncerVector) Done(i int) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.bits[i] {
		panic("consistency: syncer completed twice in one iteration")
	}
	v.bits[i] = true
	v.left--
	if v.left == 0 {
		v.cond.Broadcast()
	}
}

// Wait blocks until every bit is set, then resets the vector for the
// next iteration.
func (v *SyncerVector) Wait() {
	v.mu.Lock()
	defer v.mu.Unlock()
	for v.left > 0 {
		v.cond.Wait()
	}
	for i := range v.bits {
		v.bits[i] = false
	}
	v.left = len(v.bits)
}

// Remaining returns the number of unset bits (for monitoring).
func (v *SyncerVector) Remaining() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.left
}
