package consistency

import (
	"sync"
	"testing"
	"time"
)

func TestStalenessZeroIsBSP(t *testing.T) {
	c := NewStalenessClock(2, 0)
	// Iteration 0 needs nothing.
	done := make(chan struct{})
	go func() { c.WaitFor(0); close(done) }()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("WaitFor(0) must not block")
	}
	// Iteration 1 needs both objects through 0.
	released := make(chan struct{})
	go func() { c.WaitFor(1); close(released) }()
	c.Advance(0, 0)
	select {
	case <-released:
		t.Fatal("released with one object behind")
	case <-time.After(10 * time.Millisecond):
	}
	c.Advance(1, 0)
	select {
	case <-released:
	case <-time.After(time.Second):
		t.Fatal("never released")
	}
}

func TestStalenessAllowsRunahead(t *testing.T) {
	c := NewStalenessClock(1, 2)
	// With staleness 2, iterations 0..2 proceed with nothing synced.
	for iter := 0; iter <= 2; iter++ {
		done := make(chan struct{})
		go func() { c.WaitFor(iter); close(done) }()
		select {
		case <-done:
		case <-time.After(time.Second):
			t.Fatalf("iteration %d blocked under staleness 2", iter)
		}
	}
	// Iteration 3 needs the object through 0.
	released := make(chan struct{})
	go func() { c.WaitFor(3); close(released) }()
	select {
	case <-released:
		t.Fatal("iteration 3 must block until sync 0")
	case <-time.After(10 * time.Millisecond):
	}
	c.Advance(0, 0)
	<-released
}

func TestAdvanceMonotoneAndMin(t *testing.T) {
	c := NewStalenessClock(2, 0)
	c.Advance(0, 5)
	c.Advance(0, 3) // stale report must not regress
	if c.Min() != -1 {
		t.Fatalf("Min = %d, want -1 (object 1 untouched)", c.Min())
	}
	c.Advance(1, 4)
	if c.Min() != 4 {
		t.Fatalf("Min = %d, want 4", c.Min())
	}
}

func TestStalenessClockConcurrent(t *testing.T) {
	const objs, iters = 8, 30
	c := NewStalenessClock(objs, 1)
	var wg sync.WaitGroup
	for o := 0; o < objs; o++ {
		o := o
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				c.Advance(o, it)
			}
		}()
	}
	done := make(chan struct{})
	go func() { c.WaitFor(iters); close(done) }()
	wg.Wait()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("WaitFor(iters) never satisfied")
	}
}

func TestNegativeStalenessPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewStalenessClock(1, -1)
}

// Abort must wake blocked waiters and make future waits non-blocking
// (the failure path: synchronization died, compute loops must observe
// the error instead of hanging).
func TestStalenessClockAbort(t *testing.T) {
	c := NewStalenessClock(2, 0)
	done := make(chan struct{})
	go func() {
		c.WaitFor(3) // cannot be satisfied: nothing ever advances
		close(done)
	}()
	c.Abort()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Abort did not wake WaitFor")
	}
	c.WaitFor(100) // must return immediately after abort
}
