package consistency

import (
	"sync"
	"testing"
	"time"
)

func TestWaitBlocksUntilAllDone(t *testing.T) {
	v := NewSyncerVector(3)
	released := make(chan struct{})
	go func() {
		v.Wait()
		close(released)
	}()
	v.Done(0)
	v.Done(1)
	select {
	case <-released:
		t.Fatal("Wait returned with one syncer outstanding")
	case <-time.After(10 * time.Millisecond):
	}
	v.Done(2)
	select {
	case <-released:
	case <-time.After(time.Second):
		t.Fatal("Wait never returned")
	}
}

func TestVectorResetsAfterWait(t *testing.T) {
	v := NewSyncerVector(2)
	v.Done(0)
	v.Done(1)
	v.Wait()
	if v.Remaining() != 2 {
		t.Fatalf("Remaining after reset = %d, want 2", v.Remaining())
	}
	// A second round works identically.
	v.Done(0)
	v.Done(1)
	done := make(chan struct{})
	go func() { v.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("second round Wait hung")
	}
}

func TestDoubleDonePanics(t *testing.T) {
	v := NewSyncerVector(2)
	v.Done(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	v.Done(1)
}

func TestManyIterationsConcurrent(t *testing.T) {
	const n, iters = 8, 50
	v := NewSyncerVector(n)
	for it := 0; it < iters; it++ {
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				v.Done(i)
			}()
		}
		v.Wait()
		wg.Wait()
		if v.Remaining() != n {
			t.Fatalf("iter %d: remaining = %d", it, v.Remaining())
		}
	}
}
