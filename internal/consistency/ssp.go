package consistency

import "sync"

// StalenessClock implements bounded-asynchronous (stale synchronous
// parallel, SSP) progress gating, the consistency relaxation the paper
// notes Poseidon's design extends to (Section 1, citing Ho et al.).
// Each tracked object (one per syncer) advances through iteration
// numbers; a worker may start iteration t when every object has been
// synchronized through iteration t−1−staleness.
type StalenessClock struct {
	mu        sync.Mutex
	cond      *sync.Cond
	staleness int
	synced    []int // per object: highest fully-synchronized iteration
	aborted   bool
}

// NewStalenessClock creates a clock for n objects with the given
// staleness bound. Staleness 0 is BSP. All objects start at iteration
// −1 (nothing synchronized).
func NewStalenessClock(n, staleness int) *StalenessClock {
	if staleness < 0 {
		panic("consistency: negative staleness")
	}
	c := &StalenessClock{staleness: staleness, synced: make([]int, n)}
	for i := range c.synced {
		c.synced[i] = -1
	}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Advance records that object i finished synchronizing iteration iter.
// Iterations may complete out of order across objects but must be
// monotone per object.
func (c *StalenessClock) Advance(i, iter int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if iter > c.synced[i] {
		c.synced[i] = iter
		c.cond.Broadcast()
	}
}

// WaitFor blocks until every object is synchronized through iteration
// iter−1−staleness, i.e. until iteration iter may begin — or until the
// clock is aborted, whichever comes first.
func (c *StalenessClock) WaitFor(iter int) {
	need := iter - 1 - c.staleness
	if need < 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.min() < need && !c.aborted {
		c.cond.Wait()
	}
}

// Abort poisons the clock: every pending and future WaitFor returns
// immediately. Progress gating cannot be trusted afterwards — callers
// use it to unblock compute loops when synchronization has failed, and
// must check their error channel after any WaitFor returns.
func (c *StalenessClock) Abort() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.aborted = true
	c.cond.Broadcast()
}

// Min returns the slowest object's synchronized iteration.
func (c *StalenessClock) Min() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.min()
}

func (c *StalenessClock) min() int {
	m := c.synced[0]
	for _, v := range c.synced[1:] {
		if v < m {
			m = v
		}
	}
	return m
}
