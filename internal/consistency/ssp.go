package consistency

import "sync"

// StalenessClock implements bounded-asynchronous (stale synchronous
// parallel, SSP) progress gating, the consistency relaxation the paper
// notes Poseidon's design extends to (Section 1, citing Ho et al.).
// Each tracked object (one per syncer) advances through iteration
// numbers; a worker may start iteration t when every object has been
// synchronized through iteration t−1−staleness.
type StalenessClock struct {
	mu        sync.Mutex
	cond      *sync.Cond
	staleness int
	synced    []int // per object: highest fully-synchronized iteration
	aborted   bool
	// interrupted wakes waiters without poisoning the clock — a
	// membership barrier needs the compute loop out of WaitFor so it can
	// participate in the view change, after which Reset re-arms gating
	// for the new epoch. Unlike aborted it is recoverable.
	interrupted bool
}

// NewStalenessClock creates a clock for n objects with the given
// staleness bound. Staleness 0 is BSP. All objects start at iteration
// −1 (nothing synchronized).
func NewStalenessClock(n, staleness int) *StalenessClock {
	if staleness < 0 {
		panic("consistency: negative staleness")
	}
	c := &StalenessClock{staleness: staleness, synced: make([]int, n)}
	for i := range c.synced {
		c.synced[i] = -1
	}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Advance records that object i finished synchronizing iteration iter.
// Iterations may complete out of order across objects but must be
// monotone per object.
func (c *StalenessClock) Advance(i, iter int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if iter > c.synced[i] {
		c.synced[i] = iter
		c.cond.Broadcast()
	}
}

// WaitFor blocks until every object is synchronized through iteration
// iter−1−staleness, i.e. until iteration iter may begin — or until the
// clock is aborted, whichever comes first.
func (c *StalenessClock) WaitFor(iter int) {
	need := iter - 1 - c.staleness
	if need < 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.min() < need && !c.aborted && !c.interrupted {
		c.cond.Wait()
	}
}

// Interrupt wakes every pending WaitFor without poisoning the clock:
// waiters return early and must check why (a membership barrier is the
// intended reason). Future WaitFor calls also return immediately until
// Reset clears the interruption — the view-change protocol needs the
// compute loop to stay out of the gate while the transition runs.
func (c *StalenessClock) Interrupt() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.interrupted = true
	c.cond.Broadcast()
}

// Reset re-bases the clock at the start of a new membership epoch:
// every object reads as synchronized through iter−1 (so WaitFor(iter)
// admits the first post-barrier iteration immediately) and any pending
// interruption is cleared. The abort flag is NOT cleared — a poisoned
// clock stays poisoned.
func (c *StalenessClock) Reset(iter int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.synced {
		c.synced[i] = iter - 1
	}
	c.interrupted = false
	c.cond.Broadcast()
}

// Interrupted reports whether an Interrupt is pending (not yet cleared
// by Reset).
func (c *StalenessClock) Interrupted() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.interrupted
}

// Abort poisons the clock: every pending and future WaitFor returns
// immediately. Progress gating cannot be trusted afterwards — callers
// use it to unblock compute loops when synchronization has failed, and
// must check their error channel after any WaitFor returns.
func (c *StalenessClock) Abort() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.aborted = true
	c.cond.Broadcast()
}

// Min returns the slowest object's synchronized iteration.
func (c *StalenessClock) Min() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.min()
}

func (c *StalenessClock) min() int {
	m := c.synced[0]
	for _, v := range c.synced[1:] {
		if v < m {
			m = v
		}
	}
	return m
}
