// Package engine is the performance plane of the Poseidon reproduction:
// a discrete-event simulation of data-parallel DNN training on a GPU
// cluster, faithful to the paper's execution model.
//
// Each node runs one (or more) simulated GPUs executing strict
// layer-by-layer forward/backward passes whose durations come from
// calibrated FLOP accounting (internal/gpusim); parameter
// synchronization travels over a flow-level network (internal/netsim)
// under one of the communication strategies the paper evaluates:
//
//	SeqPS     — Caffe+PS: synchronization strictly after backprop.
//	WFBP      — wait-free backpropagation over a sharded PS.
//	HybComm   — full Poseidon: WFBP + per-layer PS/SFB selection.
//	TFBaseline— distributed TensorFlow as characterized in §5.1:
//	            per-tensor PS placement and pulls at iteration start.
//	Adam      — Project Adam's SF-push / dense-pull for FC layers.
//	OneBit    — CNTK-style 1-bit quantized FC gradients over WFBP.
//
// Host-side costs (DRAM↔GPU staging, server apply) are modeled as FIFO
// resources calibrated against the paper's own single-node measurements
// (Caffe 257→213.3 img/s on GoogLeNet, 35.5→21.3 on VGG19 when a naive
// PS is attached — see engine_test.go).
package engine

import (
	"fmt"

	"repro/internal/gpusim"
	"repro/internal/netsim"
	"repro/internal/nn"
	"repro/internal/poseidon"
	"repro/internal/sim"
)

// Strategy selects the communication architecture to simulate.
type Strategy int

// Strategies evaluated in the paper.
const (
	SeqPS Strategy = iota
	WFBP
	HybComm
	TFBaseline
	Adam
	OneBit
)

// String names the strategy as in the paper's figures.
func (s Strategy) String() string {
	switch s {
	case SeqPS:
		return "Caffe+PS"
	case WFBP:
		return "WFBP"
	case HybComm:
		return "Poseidon"
	case TFBaseline:
		return "TF"
	case Adam:
		return "Adam"
	case OneBit:
		return "1bit"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// Config describes one simulated training deployment.
type Config struct {
	Model      *nn.Model
	Workers    int
	Servers    int // PS shards, colocated on the first Servers nodes; default Workers
	Batch      int // per-GPU batch; default Model.BatchSize
	Device     gpusim.Device
	Engine     string  // "caffe" or "tensorflow" (calibration table key)
	Bandwidth  float64 // NIC bytes/second; default 40GbE
	Strategy   Strategy
	ChunkBytes int64 // KV pair size; default poseidon.DefaultChunkBytes

	GPUsPerNode int // default 1

	// ForceAllSFB pins every SF-capable layer to SFB regardless of
	// Algorithm 1 (the "always SFB" ablation arm).
	ForceAllSFB bool

	// FluidNet switches from the O(1) store-and-forward pipe fabric to
	// the fluid max-min fair network model (slower; used for
	// cross-validation at small scale).
	FluidNet bool

	Iterations int // measured iterations; default 6
	Warmup     int // pipeline fill iterations; default 2

	// StragglerSlow > 1 slows worker 0's compute by that factor each
	// iteration; DropStragglers makes the KV store broadcast after
	// Workers-1 pushes instead of waiting (the paper's BSP handles
	// stragglers "by simply dropping them").
	StragglerSlow  float64
	DropStragglers bool
}

func (c *Config) defaults() {
	if c.Servers == 0 {
		c.Servers = c.Workers
	}
	if c.Batch == 0 {
		c.Batch = c.Model.BatchSize
	}
	if c.Engine == "" {
		c.Engine = "caffe"
	}
	if c.Device.PeakFLOPS == 0 {
		c.Device = gpusim.CalibratedFor(c.Engine, c.Model)
	}
	if c.Bandwidth == 0 {
		c.Bandwidth = netsim.Gbps(40)
	}
	if c.ChunkBytes == 0 {
		c.ChunkBytes = poseidon.DefaultChunkBytes
	}
	if c.GPUsPerNode == 0 {
		c.GPUsPerNode = 1
	}
	if c.Iterations == 0 {
		c.Iterations = 6
	}
	if c.Warmup == 0 {
		c.Warmup = 2
	}
}

// Host-side calibration constants (see package comment).
const (
	// stagingBpsCaffe is the DRAM↔GPU staging rate through the Caffe
	// client path, calibrated from the paper's single-node Caffe+PS
	// slowdowns (257→213.3 img/s GoogLeNet; 35.5→21.3 VGG19).
	stagingBpsCaffe = 2e9
	// stagingBpsTF is the slower serialization rate through TensorFlow's
	// feed/assign machinery (protobuf copies), calibrated so TF+WFBP
	// lands at the paper's ~22x on VGG19 at 32 nodes while single-node
	// runs stay overhead-free (local chunks skip serialization).
	stagingBpsTF = 1.2e9
	// pcieBps is the raw DRAM↔GPU DMA bandwidth (PCIe 3.0 x16).
	pcieBps = 11e9
	// stagingFixed is the per-layer per-direction fixed staging cost for
	// the sequential client path; WFBP-family strategies divide it by
	// stagingThreads (the client library's CPU thread pool).
	stagingFixed   = 0.8e-3
	stagingThreads = 4
	// quantBps is the CPU-side 1-bit quantize/dequantize pass rate
	// (gradient + residual read-modify-write), calibrated so CNTK-style
	// 1-bit lands at the paper's 5.8x/11x/20x on VGG19.
	quantBps = 1.7e9
	applyBps = 6e9  // KV-store CPU apply bandwidth
	d2dBps   = 25e9 // GPU↔GPU copy bandwidth (multi-GPU local agg)
)

// Result summarizes one simulated deployment.
type Result struct {
	Config Config

	IterTime   float64 // steady-state seconds per iteration
	Throughput float64 // images/second across the cluster
	Speedup    float64 // vs. the pure single-GPU compute baseline

	GPUBusyFrac  float64 // fraction of iteration the GPU computes
	GPUStallFrac float64 // 1 - GPUBusyFrac (Fig. 7's "stall time")

	// NodeTxGbit / NodeRxGbit are per-node NIC gigabits per iteration
	// (Fig. 10's bars).
	NodeTxGbit []float64
	NodeRxGbit []float64

	SchemeSummary string // e.g. "PS:16 SFB:3"
}

// SingleGPUIterTime returns the pure-compute iteration time of the
// configured model/device — the paper's speedup baseline (unmodified
// single-GPU Caffe/TensorFlow).
func (c Config) SingleGPUIterTime() float64 {
	cc := c
	cc.defaults()
	lt := gpusim.NewLayerTimes(cc.Device, cc.Model, cc.Batch)
	return lt.IterTime()
}

// Run simulates the deployment and returns its steady-state metrics.
func Run(cfg Config) Result {
	cfg.defaults()
	s := newSimulation(cfg)
	s.start()
	s.eng.Run()
	return s.result()
}

// op is one GPU operation in a worker's per-iteration schedule.
type op struct {
	layer int
	fwd   bool
}

type workerSim struct {
	id         int
	ops        []op
	opIdx      int
	iter       int
	syncedIter []int // per model layer; last iteration whose sync completed
	blocked    bool
	stallAt    float64
	iterStarts []float64
	// seqGrads collects layers whose sync is deferred to iteration end
	// (SeqPS strategy).
	seqGrads []int
	done     bool
	// opDone is the prebound completion callback for the in-flight GPU
	// op. A worker has at most one op in flight and its (opIdx, iter)
	// state is frozen until the callback fires, so one closure per
	// worker replaces one closure allocation per simulated operation.
	opDone func()
}

// groupState tracks one shard-group of KV pairs for one iteration on
// its server.
type groupState struct {
	pushes  int
	applied bool
	// pullWaiters holds workers whose TF-style pull request arrived
	// before the group was ready.
	pullWaiters []int
}

// groupRound keys groupSt: one shard-group of one layer in one
// iteration. A comparable struct key avoids the fmt.Sprintf string
// that used to dominate the simulator's allocation profile.
type groupRound struct {
	layer, server, iter int
}

// recvKind distinguishes the receipt counters multiplexed in recvSt.
type recvKind uint8

const (
	recvPS recvKind = iota
	recvSFB
	recvAdam
)

// recvEvent keys recvSt: a node's receipt count for one layer in one
// iteration on one protocol path.
type recvEvent struct {
	kind  recvKind
	node  int
	layer int
	iter  int
}

type simulation struct {
	cfg    Config
	eng    *sim.Engine
	net    netsim.Fabric
	lt     *gpusim.LayerTimes
	co     *poseidon.Coordinator
	plans  map[int]poseidon.LayerPlan
	groups map[int][]group

	workers []*workerSim
	staging [][]*sim.Resource // per node: staging thread pool (per-layer fixed work)
	pcieOut []*sim.Resource   // per node: D2H DMA engine (PCIe)
	pcieIn  []*sim.Resource   // per node: H2D DMA engine (PCIe)
	serial  []*sim.Resource   // per node: message (de)serialization for remote traffic
	aux     []*sim.Resource   // per node: GPU stream pool (SF reconstruction)
	cpu     []*sim.Resource   // per node: KV-store apply thread

	groupSt map[groupRound]*groupState
	recvSt  map[recvEvent]int // receipt counts

	totalIters int
}

func newSimulation(cfg Config) *simulation {
	eng := sim.NewEngine()
	nodes := cfg.Workers
	if cfg.Servers > nodes {
		nodes = cfg.Servers
	}
	var net netsim.Fabric
	if cfg.FluidNet {
		net = netsim.NewNetwork(eng, nodes, cfg.Bandwidth)
	} else {
		net = netsim.NewPipeNetwork(eng, nodes, cfg.Bandwidth)
	}

	shape := poseidon.ClusterShape{Workers: cfg.Workers, Servers: cfg.Servers, Batch: cfg.Batch}
	policy := poseidon.FineGrained
	if cfg.Strategy == TFBaseline {
		policy = poseidon.CoarsePerTensor
	}
	co := poseidon.NewCoordinatorWithPlacement(cfg.Model, shape, policy, cfg.ChunkBytes)
	switch cfg.Strategy {
	case SeqPS, WFBP, TFBaseline, OneBit:
		ps := poseidon.PS
		co.ForceScheme(&ps)
	case Adam:
		// Adam's strategy applies to FC layers; conv stays on PS.
		ps := poseidon.PS
		co.ForceScheme(&ps)
		for _, li := range cfg.Model.SyncLayers() {
			if cfg.Model.Layers[li].SFCapable() {
				co.OverrideLayer(li, poseidon.AdamSF)
			}
		}
	case HybComm:
		if cfg.ForceAllSFB && cfg.Workers > 1 {
			for _, li := range cfg.Model.SyncLayers() {
				if cfg.Model.Layers[li].SFCapable() {
					co.OverrideLayer(li, poseidon.SFB)
				}
			}
		}
	}

	s := &simulation{
		cfg:        cfg,
		eng:        eng,
		net:        net,
		lt:         gpusim.NewLayerTimes(cfg.Device, cfg.Model, cfg.Batch),
		co:         co,
		plans:      make(map[int]poseidon.LayerPlan),
		groupSt:    make(map[groupRound]*groupState),
		recvSt:     make(map[recvEvent]int),
		totalIters: cfg.Warmup + cfg.Iterations + 1,
	}
	for _, p := range co.Plan() {
		s.plans[p.Layer] = p
	}
	s.groups = buildGroups(s.plans)
	threads := stagingThreads
	switch cfg.Strategy {
	case SeqPS, TFBaseline, OneBit:
		// The vanilla Caffe+PS client, TensorFlow's runtime, and CNTK's
		// quantizing sync path are single-threaded per node.
		threads = 1
	}
	for i := 0; i < nodes; i++ {
		pool := make([]*sim.Resource, threads)
		for t := range pool {
			pool[t] = sim.NewResource(eng)
		}
		s.staging = append(s.staging, pool)
		s.pcieOut = append(s.pcieOut, sim.NewResource(eng))
		s.pcieIn = append(s.pcieIn, sim.NewResource(eng))
		s.serial = append(s.serial, sim.NewResource(eng))
		s.aux = append(s.aux, sim.NewResource(eng))
		s.cpu = append(s.cpu, sim.NewResource(eng))
	}

	nLayers := len(cfg.Model.Layers)
	var ops []op
	for l := 0; l < nLayers; l++ {
		ops = append(ops, op{layer: l, fwd: true})
	}
	for l := nLayers - 1; l >= 0; l-- {
		ops = append(ops, op{layer: l, fwd: false})
	}
	for w := 0; w < cfg.Workers; w++ {
		ws := &workerSim{id: w, ops: ops, syncedIter: make([]int, nLayers)}
		for l := range ws.syncedIter {
			ws.syncedIter[l] = -1
		}
		ws.opDone = func() { s.opDone(ws) }
		s.workers = append(s.workers, ws)
	}
	return s
}

func (s *simulation) start() {
	for _, w := range s.workers {
		w.iterStarts = append(w.iterStarts, 0)
		s.advance(w)
	}
}

// barrierBeforeFwd reports whether the strategy requires every layer to
// be synchronized before any forward compute of the next iteration.
func (s *simulation) barrierBeforeFwd() bool {
	return s.cfg.Strategy == SeqPS || s.cfg.Strategy == TFBaseline
}

// ready reports whether worker w may execute its current op.
func (s *simulation) ready(w *workerSim) bool {
	o := w.ops[w.opIdx]
	if !o.fwd {
		return true
	}
	need := w.iter - 1
	if s.barrierBeforeFwd() && w.opIdx == 0 {
		for l := range w.syncedIter {
			if s.cfg.Model.Layers[l].HasParams() && w.syncedIter[l] < need {
				return false
			}
		}
		return true
	}
	if !s.cfg.Model.Layers[o.layer].HasParams() {
		return true
	}
	return w.syncedIter[o.layer] >= need
}

// advance runs worker w's GPU until it blocks or the iteration ends.
func (s *simulation) advance(w *workerSim) {
	if w.done {
		return
	}
	if w.opIdx >= len(w.ops) {
		s.endIteration(w)
		return
	}
	if !s.ready(w) {
		if !w.blocked {
			w.blocked = true
			w.stallAt = s.eng.Now()
		}
		return
	}
	o := w.ops[w.opIdx]
	var dur float64
	if o.fwd {
		dur = s.lt.Fwd[o.layer]
	} else {
		dur = s.lt.Bwd[o.layer]
	}
	if w.id == 0 && s.cfg.StragglerSlow > 1 {
		dur *= s.cfg.StragglerSlow
	}
	s.eng.PostAfter(dur, w.opDone)
}

// opDone completes worker w's in-flight GPU op. The worker's op cursor
// and iteration are untouched while the op runs, so reading them here
// is equivalent to capturing them at scheduling time.
func (s *simulation) opDone(w *workerSim) {
	o := w.ops[w.opIdx]
	if !o.fwd && s.cfg.Model.Layers[o.layer].HasParams() {
		s.gradReady(w, o.layer, w.iter)
	}
	w.opIdx++
	s.advance(w)
}

// unblock re-checks a blocked worker after a sync completion.
func (s *simulation) unblock(w *workerSim) {
	if !w.blocked || w.done {
		return
	}
	if s.ready(w) {
		w.blocked = false
		s.advance(w)
	}
}

func (s *simulation) endIteration(w *workerSim) {
	iter := w.iter
	switch s.cfg.Strategy {
	case SeqPS:
		// Launch the deferred synchronization of every layer now.
		for _, l := range w.seqGrads {
			s.launchSync(w, l, iter)
		}
		w.seqGrads = w.seqGrads[:0]
	case TFBaseline:
		if s.cfg.Workers == 1 {
			break
		}
		// Issue pull requests for every parameterized layer.
		for _, li := range s.cfg.Model.SyncLayers() {
			for _, g := range s.groups[li] {
				s.registerPull(w, g, iter)
			}
		}
	}
	w.iter++
	w.opIdx = 0
	if w.iter >= s.totalIters {
		w.done = true
		return
	}
	w.iterStarts = append(w.iterStarts, s.eng.Now())
	s.advance(w)
}

// gradReady fires when worker w's backward pass for layer l completes.
func (s *simulation) gradReady(w *workerSim, l, iter int) {
	if s.cfg.Strategy == TFBaseline && s.cfg.Workers == 1 {
		// Single-node TensorFlow applies updates in-graph with no PS
		// machinery; it is the paper's speedup baseline (speedup = 1).
		s.syncDone(w.id, l, iter)
		return
	}
	if s.cfg.Strategy == SeqPS {
		w.seqGrads = append(w.seqGrads, l)
		return
	}
	s.launchSync(w, l, iter)
}

func (s *simulation) result() Result {
	cfg := s.cfg
	// Steady-state iteration time: mean interval between iteration
	// starts over the measurement window, averaged across workers.
	var sum float64
	var n int
	for _, w := range s.workers {
		first, last := cfg.Warmup, s.totalIters-1
		if last <= first || last >= len(w.iterStarts) {
			continue
		}
		sum += (w.iterStarts[last] - w.iterStarts[first]) / float64(last-first)
		n++
	}
	iterTime := sum / float64(n)
	// busy is the non-straggling workers' per-iteration compute time.
	busy := s.lt.IterTime()
	images := float64(cfg.Workers * cfg.GPUsPerNode * cfg.Batch)
	res := Result{
		Config:        cfg,
		IterTime:      iterTime,
		Throughput:    images / iterTime,
		Speedup:       float64(cfg.Workers*cfg.GPUsPerNode) * busy / iterTime,
		GPUBusyFrac:   busy / iterTime,
		GPUStallFrac:  1 - busy/iterTime,
		SchemeSummary: s.co.SchemeSummary(),
	}
	if res.GPUBusyFrac > 1 {
		res.GPUBusyFrac = 1
		res.GPUStallFrac = 0
	}
	iters := float64(s.totalIters)
	for i := 0; i < s.net.NumNodes(); i++ {
		res.NodeTxGbit = append(res.NodeTxGbit, float64(s.net.Node(i).BytesSent)*8/1e9/iters)
		res.NodeRxGbit = append(res.NodeRxGbit, float64(s.net.Node(i).BytesRecv)*8/1e9/iters)
	}
	return res
}
