package engine

import (
	"fmt"

	"repro/internal/poseidon"
)

// group is the unit of PS traffic: all KV pairs of one layer that live
// on one shard, pushed and broadcast together (they become ready
// simultaneously, so batching them loses no timing fidelity while
// keeping the event count linear in servers rather than chunks).
type group struct {
	Layer  int
	Server int
	Bytes  int64
}

// buildGroups merges each layer's chunks by owning server.
func buildGroups(plans map[int]poseidon.LayerPlan) map[int][]group {
	out := make(map[int][]group)
	for li, p := range plans {
		byServer := make(map[int]int64)
		var order []int
		for _, c := range p.Chunks {
			if _, ok := byServer[c.Server]; !ok {
				order = append(order, c.Server)
			}
			byServer[c.Server] += c.Bytes
		}
		var gs []group
		for _, srv := range order {
			gs = append(gs, group{Layer: li, Server: srv, Bytes: byServer[srv]})
		}
		out[li] = gs
	}
	return out
}

// launchSync dispatches layer l's iteration-iter synchronization for
// worker w along the route the coordinator planned.
func (s *simulation) launchSync(w *workerSim, l, iter int) {
	plan, ok := s.plans[l]
	if !ok {
		panic(fmt.Sprintf("engine: no plan for layer %d", l))
	}
	switch plan.Scheme {
	case poseidon.SFB:
		s.sendSFB(w, plan, iter)
	case poseidon.AdamSF:
		s.sendAdam(w, plan, iter)
	default:
		s.sendPS(w, plan, iter)
	}
}

// stagingRate returns the host staging bandwidth for the configured
// engine: Caffe's pinned-buffer copies sustain ~2 GB/s; TensorFlow's
// feed/assign machinery about half that.
func (s *simulation) stagingRate() float64 {
	if s.cfg.Engine == "tensorflow" {
		return stagingBpsTF
	}
	return stagingBpsCaffe
}

// singleThreadedHost reports whether the strategy's host path is a
// monolithic loop (vanilla Caffe+PS client, TensorFlow runtime, CNTK's
// quantizing sync), as opposed to Poseidon's thread/stream pools.
func (s *simulation) singleThreadedHost() bool {
	switch s.cfg.Strategy {
	case SeqPS, TFBaseline, OneBit:
		return true
	}
	return false
}

// stageCost returns the full host-side staging cost of moving bytes of
// layer payload between DRAM and GPU memory: a fixed per-layer cost, a
// bandwidth term at the engine's staging rate, and — for the 1-bit
// baseline — the quantize/dequantize pass over the dense gradient.
func (s *simulation) stageCost(plan poseidon.LayerPlan, bytes int64) float64 {
	d := stagingFixed + float64(bytes)/s.stagingRate()
	if s.cfg.Strategy == OneBit && plan.QuantBytes > 0 {
		d += float64(plan.DenseBytes) / quantBps
	}
	return d
}

// stageUse runs one staging job on node; out selects the D2H (send) or
// H2D (receive) direction, and remoteBytes says how much of the payload
// crosses the network (serialization into wire messages applies only to
// that part — chunks whose shard is colocated move by shared memory).
//
// Single-threaded hosts serialize the whole cost — both directions,
// local or not — on one FIFO: this is what makes the vanilla Caffe+PS
// client lose 17-40% at a single node, matching the paper's
// measurements. Poseidon's client library instead pipelines the DMA
// engine (full-duplex PCIe), a per-node serialization stage for remote
// traffic, and a thread pool for per-layer fixed work, so single-node
// deployments show no overhead while large clusters pay the
// serialization cost on (P−1)/P of their bytes.
func (s *simulation) stageUse(node int, plan poseidon.LayerPlan, bytes, remoteBytes int64, out bool, done func()) {
	if s.singleThreadedHost() {
		s.staging[node][0].Use(s.stageCost(plan, bytes), done)
		return
	}
	dma := s.pcieIn[node]
	if out {
		dma = s.pcieOut[node]
	}
	dma.Use(float64(bytes)/pcieBps, func() {
		s.serial[node].Use(float64(remoteBytes)/s.stagingRate(), func() {
			pool := s.staging[node]
			best := pool[0]
			for _, r := range pool[1:] {
				if r.FreeAt() < best.FreeAt() {
					best = r
				}
			}
			best.Use(stagingFixed, done)
		})
	})
}

// remoteGroupBytes sums the layer's PS traffic that does not stay on
// this node.
func (s *simulation) remoteGroupBytes(layer, node int) int64 {
	var remote int64
	for _, g := range s.groups[layer] {
		if g.Server != node {
			remote += g.Bytes
		}
	}
	return remote
}

// localAggDelay returns the device-to-device copy time to gather one
// layer's gradients from the node's extra GPUs onto the leader GPU
// before communication (Section 5.1, multi-GPU settings).
func (s *simulation) localAggDelay(bytes int64) float64 {
	g := s.cfg.GPUsPerNode
	if g <= 1 {
		return 0
	}
	return float64(g-1) * float64(bytes) / d2dBps
}

// wireBytes returns the wire size of a PS transfer, accounting for
// 1-bit quantization of FC layers (both directions, per CNTK).
func (s *simulation) wireBytes(plan poseidon.LayerPlan, bytes int64) int64 {
	if s.cfg.Strategy == OneBit && plan.QuantBytes > 0 {
		q := float64(plan.QuantBytes) / float64(plan.DenseBytes)
		b := int64(float64(bytes) * q)
		if b < 1 {
			b = 1
		}
		return b
	}
	return bytes
}

// ---- Parameter-server path -------------------------------------------

// sendPS stages the layer's gradient to host memory, then pushes each
// shard's slice of it.
func (s *simulation) sendPS(w *workerSim, plan poseidon.LayerPlan, iter int) {
	layerBytes := s.cfg.Model.Layers[plan.Layer].ParamBytes()
	extra := int64(s.localAggDelay(layerBytes) * pcieBps)
	s.stageUse(w.id, plan, layerBytes+extra, s.remoteGroupBytes(plan.Layer, w.id), true, func() {
		for _, g := range s.groups[plan.Layer] {
			g := g
			s.net.Start(w.id, g.Server, s.wireBytes(plan, g.Bytes), func() {
				s.serverRecvPush(g, plan, iter)
			})
		}
	})
}

func groupKey(g group, iter int) groupRound {
	return groupRound{layer: g.Layer, server: g.Server, iter: iter}
}

// pushThreshold is how many pushes a KV group waits for before
// broadcasting: all workers, or one fewer when dropping stragglers.
func (s *simulation) pushThreshold() int {
	if s.cfg.DropStragglers && s.cfg.StragglerSlow > 1 && s.cfg.Workers > 1 {
		return s.cfg.Workers - 1
	}
	return s.cfg.Workers
}

// serverRecvPush counts arrivals of one shard-group's updates; on the
// threshold it applies them and broadcasts the fresh parameters
// (the paper's count-based bulk-synchronous KV store).
func (s *simulation) serverRecvPush(g group, plan poseidon.LayerPlan, iter int) {
	key := groupKey(g, iter)
	st := s.groupSt[key]
	if st == nil {
		st = &groupState{}
		s.groupSt[key] = st
	}
	st.pushes++
	if st.pushes != s.pushThreshold() || st.applied {
		return
	}
	applyTime := float64(g.Bytes) * float64(s.cfg.Workers) / applyBps
	s.cpu[g.Server].Use(applyTime, func() {
		st.applied = true
		if s.cfg.Strategy == TFBaseline {
			// TF workers pull explicitly at iteration start; serve the
			// queued pulls and let later ones hit the applied state.
			waiters := st.pullWaiters
			st.pullWaiters = nil
			for _, wid := range waiters {
				s.sendPull(wid, g, plan, iter)
			}
			return
		}
		for wid := 0; wid < s.cfg.Workers; wid++ {
			s.sendPull(wid, g, plan, iter)
		}
	})
}

// sendPull ships one fresh shard-group from its server to a worker.
func (s *simulation) sendPull(wid int, g group, plan poseidon.LayerPlan, iter int) {
	s.net.Start(g.Server, wid, s.wireBytes(plan, g.Bytes), func() {
		s.workerRecvGroup(wid, plan, iter)
	})
}

// registerPull records a TF-style pull request, served immediately if
// the group is already applied.
func (s *simulation) registerPull(w *workerSim, g group, iter int) {
	key := groupKey(g, iter)
	st := s.groupSt[key]
	if st == nil {
		st = &groupState{}
		s.groupSt[key] = st
	}
	if st.applied {
		s.sendPull(w.id, g, s.plans[g.Layer], iter)
		return
	}
	st.pullWaiters = append(st.pullWaiters, w.id)
}

// workerRecvGroup counts shard-group arrivals for one layer; when the
// layer is complete it stages the parameters back into GPU memory and
// marks the layer synchronized.
func (s *simulation) workerRecvGroup(wid int, plan poseidon.LayerPlan, iter int) {
	key := recvEvent{kind: recvPS, node: wid, layer: plan.Layer, iter: iter}
	got := s.recvSt[key] + 1
	if got != len(s.groups[plan.Layer]) {
		s.recvSt[key] = got
		return
	}
	delete(s.recvSt, key)
	layerBytes := s.cfg.Model.Layers[plan.Layer].ParamBytes()
	extra := int64(s.localAggDelay(layerBytes) * pcieBps)
	s.stageUse(wid, plan, layerBytes+extra, s.remoteGroupBytes(plan.Layer, wid), false, func() {
		s.syncDone(wid, plan.Layer, iter)
	})
}

// ---- Sufficient-factor broadcasting path ------------------------------

// sendSFB stages the layer's sufficient factors and broadcasts them to
// every peer worker.
func (s *simulation) sendSFB(w *workerSim, plan poseidon.LayerPlan, iter int) {
	sfBytes := plan.SFBytes * int64(s.cfg.GPUsPerNode) // SFs are not additive
	remote := sfBytes
	if s.cfg.Workers == 1 {
		remote = 0
	}
	s.stageUse(w.id, plan, sfBytes, remote, true, func() {
		if s.cfg.Workers == 1 {
			s.aux[w.id].Use(0, func() { s.syncDone(w.id, plan.Layer, iter) })
			return
		}
		for p := 0; p < s.cfg.Workers; p++ {
			if p == w.id {
				continue
			}
			p := p
			s.net.Start(w.id, p, sfBytes, func() {
				s.peerRecvSF(p, plan, iter)
			})
		}
	})
}

// peerRecvSF counts sufficient-factor arrivals; when SFs from all peers
// are in, the worker reconstructs the dense gradients on a GPU stream
// and applies them.
func (s *simulation) peerRecvSF(wid int, plan poseidon.LayerPlan, iter int) {
	key := recvEvent{kind: recvSFB, node: wid, layer: plan.Layer, iter: iter}
	got := s.recvSt[key] + 1
	if got != s.cfg.Workers-1 {
		s.recvSt[key] = got
		return
	}
	delete(s.recvSt, key)
	l := &s.cfg.Model.Layers[plan.Layer]
	m, n := l.GradMatrixShape()
	peers := int64(s.cfg.Workers - 1)
	k := int64(s.cfg.Batch * s.cfg.GPUsPerNode)
	reconFLOPs := 2 * k * peers * m * n
	dur := s.cfg.Device.ComputeTime(reconFLOPs) +
		float64(plan.SFBytes*peers)/stagingBpsCaffe
	s.aux[wid].Use(dur, func() {
		s.syncDone(wid, plan.Layer, iter)
	})
}

// ---- Project Adam path -------------------------------------------------

// adamServer assigns one owning shard per layer (Adam cannot split an
// SF-updated matrix across shards — the root of its imbalance).
func (s *simulation) adamServer(layer int) int { return layer % s.cfg.Servers }

// sendAdam pushes the layer's SFs to its single owning server.
func (s *simulation) sendAdam(w *workerSim, plan poseidon.LayerPlan, iter int) {
	sfBytes := plan.SFBytes * int64(s.cfg.GPUsPerNode)
	server := s.adamServer(plan.Layer)
	remote := sfBytes
	if server == w.id {
		remote = 0
	}
	s.stageUse(w.id, plan, sfBytes, remote, true, func() {
		s.net.Start(w.id, server, sfBytes, func() {
			s.adamServerRecv(server, plan, iter)
		})
	})
}

// adamServerRecv reconstructs after all workers' SFs arrive, then
// broadcasts the full updated matrix to every worker.
func (s *simulation) adamServerRecv(server int, plan poseidon.LayerPlan, iter int) {
	key := recvEvent{kind: recvAdam, node: server, layer: plan.Layer, iter: iter}
	got := s.recvSt[key] + 1
	if got != s.cfg.Workers {
		s.recvSt[key] = got
		return
	}
	delete(s.recvSt, key)
	l := &s.cfg.Model.Layers[plan.Layer]
	m, n := l.GradMatrixShape()
	k := int64(s.cfg.Batch * s.cfg.GPUsPerNode)
	reconBytes := 8 * k * (m + n) * int64(s.cfg.Workers) // CPU reconstruction pass
	s.cpu[server].Use(float64(reconBytes)/applyBps+float64(plan.DenseBytes)/applyBps, func() {
		for wid := 0; wid < s.cfg.Workers; wid++ {
			wid := wid
			s.net.Start(server, wid, plan.DenseBytes, func() {
				s.adamWorkerRecv(wid, plan, iter)
			})
		}
	})
}

func (s *simulation) adamWorkerRecv(wid int, plan poseidon.LayerPlan, iter int) {
	remote := plan.DenseBytes
	if s.adamServer(plan.Layer) == wid {
		remote = 0
	}
	s.stageUse(wid, plan, plan.DenseBytes, remote, false, func() {
		s.syncDone(wid, plan.Layer, iter)
	})
}

// ---- Completion ---------------------------------------------------------

// syncDone marks layer l synchronized for iteration iter on worker wid
// and wakes the worker if its forward pass is waiting.
func (s *simulation) syncDone(wid, l, iter int) {
	w := s.workers[wid]
	if iter > w.syncedIter[l] {
		w.syncedIter[l] = iter
	}
	s.unblock(w)
}
