package engine

import (
	"math"
	"testing"

	"repro/internal/netsim"
	"repro/internal/nn"
)

func run(t *testing.T, cfg Config) Result {
	t.Helper()
	return Run(cfg)
}

// Single-node sanity: WFBP-family strategies add essentially no overhead
// on a single GPU (paper: Poseidon-Caffe processes 257/35.5/34.2 img/s
// vs unmodified Caffe's 257/35.5/34.6).
func TestSingleNodeOverheadNegligible(t *testing.T) {
	for _, m := range []*nn.Model{nn.GoogLeNet(), nn.VGG19()} {
		r := run(t, Config{Model: m, Workers: 1, Strategy: HybComm, Engine: "caffe"})
		if r.Speedup < 0.97 || r.Speedup > 1.03 {
			t.Errorf("%s: single-node Poseidon speedup = %.3f, want ≈1", m.Name, r.Speedup)
		}
	}
}

// The paper's single-node Caffe+PS measurements: GoogLeNet drops from
// 257 to 213.3 img/s (ratio 0.83) and VGG19 from 35.5 to 21.3 (0.60)
// when the vanilla PS client is attached. Our staging calibration must
// land near those ratios.
func TestSeqPSSingleNodeCalibration(t *testing.T) {
	cases := []struct {
		model *nn.Model
		ratio float64
	}{
		{nn.GoogLeNet(), 213.3 / 257.0},
		{nn.VGG19(), 21.3 / 35.5},
		{nn.VGG19_22K(), 18.5 / 34.6},
	}
	for _, c := range cases {
		r := run(t, Config{Model: c.model, Workers: 1, Strategy: SeqPS, Engine: "caffe"})
		if math.Abs(r.Speedup-c.ratio) > 0.12 {
			t.Errorf("%s: Caffe+PS single-node ratio = %.2f, want ≈%.2f",
				c.model.Name, r.Speedup, c.ratio)
		}
	}
}

// Poseidon scales near-linearly on every Table 3 ImageNet network at
// 40GbE up to 32 nodes (Figures 5, 6, 9a).
func TestPoseidonNearLinear32Nodes(t *testing.T) {
	cases := []struct {
		model  *nn.Model
		engine string
		min    float64
	}{
		{nn.GoogLeNet(), "caffe", 30},
		{nn.VGG19(), "caffe", 29},
		{nn.VGG19_22K(), "caffe", 28},
		{nn.InceptionV3(), "tensorflow", 30},
		{nn.VGG19(), "tensorflow", 28},
		{nn.ResNet152(), "tensorflow", 29},
	}
	for _, c := range cases {
		r := run(t, Config{Model: c.model, Workers: 32, Strategy: HybComm, Engine: c.engine})
		if r.Speedup < c.min {
			t.Errorf("%s/%s: Poseidon speedup @32 = %.1f, want ≥ %.1f",
				c.engine, c.model.Name, r.Speedup, c.min)
		}
	}
}

// Strategy ordering on the FC-heavy VGG19-22K (Fig. 5 right panel):
// Poseidon > WFBP > sequential PS, at every scale.
func TestStrategyOrderingVGG22K(t *testing.T) {
	for _, p := range []int{8, 16, 32} {
		hyb := run(t, Config{Model: nn.VGG19_22K(), Workers: p, Strategy: HybComm, Engine: "caffe"})
		wfbp := run(t, Config{Model: nn.VGG19_22K(), Workers: p, Strategy: WFBP, Engine: "caffe"})
		seq := run(t, Config{Model: nn.VGG19_22K(), Workers: p, Strategy: SeqPS, Engine: "caffe"})
		if !(hyb.Speedup > wfbp.Speedup && wfbp.Speedup > seq.Speedup) {
			t.Errorf("P=%d: ordering violated: hyb=%.1f wfbp=%.1f seq=%.1f",
				p, hyb.Speedup, wfbp.Speedup, seq.Speedup)
		}
	}
	// At 32 nodes the paper reports ≈21.5x for Caffe+WFBP and ≈29.5x for
	// Poseidon; require the reproduced gap to be substantial.
	hyb := run(t, Config{Model: nn.VGG19_22K(), Workers: 32, Strategy: HybComm, Engine: "caffe"})
	wfbp := run(t, Config{Model: nn.VGG19_22K(), Workers: 32, Strategy: WFBP, Engine: "caffe"})
	if hyb.Speedup-wfbp.Speedup < 5 {
		t.Errorf("HybComm gain @32 = %.1f (hyb %.1f, wfbp %.1f), want ≥ 5",
			hyb.Speedup-wfbp.Speedup, hyb.Speedup, wfbp.Speedup)
	}
}

// Fig. 8: under 10GbE, a PS-only system loses roughly half its
// throughput on VGG19 at 16 nodes (paper: ~8x), while Poseidon keeps
// scaling near-linearly (~15x).
func TestBandwidthLimitedVGG19(t *testing.T) {
	wfbp := run(t, Config{Model: nn.VGG19(), Workers: 16, Strategy: WFBP,
		Engine: "caffe", Bandwidth: netsim.Gbps(10)})
	hyb := run(t, Config{Model: nn.VGG19(), Workers: 16, Strategy: HybComm,
		Engine: "caffe", Bandwidth: netsim.Gbps(10)})
	if wfbp.Speedup > 10 {
		t.Errorf("WFBP @10GbE should be bandwidth-bound: %.1f, want ≤ 10", wfbp.Speedup)
	}
	if hyb.Speedup < 14 {
		t.Errorf("Poseidon @10GbE should stay near-linear: %.1f, want ≥ 14", hyb.Speedup)
	}
}

// Section 5.2: GoogLeNet at 16 nodes reduces to pure PS (thin classifier
// + large batch), so HybComm and WFBP must coincide exactly.
func TestGoogLeNet16ReducesToPS(t *testing.T) {
	hyb := run(t, Config{Model: nn.GoogLeNet(), Workers: 16, Strategy: HybComm,
		Engine: "caffe", Bandwidth: netsim.Gbps(2)})
	wfbp := run(t, Config{Model: nn.GoogLeNet(), Workers: 16, Strategy: WFBP,
		Engine: "caffe", Bandwidth: netsim.Gbps(2)})
	if hyb.SchemeSummary != "PS:58" {
		t.Errorf("scheme summary = %q, want all-PS", hyb.SchemeSummary)
	}
	if math.Abs(hyb.Speedup-wfbp.Speedup) > 0.01*wfbp.Speedup {
		t.Errorf("Poseidon (%.2f) should equal WFBP (%.2f) when reduced to PS",
			hyb.Speedup, wfbp.Speedup)
	}
}

// Poseidon never underperforms a PS-only deployment (Section 5.2's
// guarantee: "Poseidon will never underperform a traditional PS scheme").
func TestHybCommNeverWorseThanWFBP(t *testing.T) {
	for _, m := range []*nn.Model{nn.GoogLeNet(), nn.VGG19(), nn.VGG19_22K()} {
		for _, bw := range []float64{5, 10, 40} {
			for _, p := range []int{4, 16} {
				hyb := run(t, Config{Model: m, Workers: p, Strategy: HybComm,
					Engine: "caffe", Bandwidth: netsim.Gbps(bw)})
				wfbp := run(t, Config{Model: m, Workers: p, Strategy: WFBP,
					Engine: "caffe", Bandwidth: netsim.Gbps(bw)})
				if hyb.Speedup < wfbp.Speedup*0.99 {
					t.Errorf("%s P=%d bw=%g: HybComm %.2f < WFBP %.2f",
						m.Name, p, bw, hyb.Speedup, wfbp.Speedup)
				}
			}
		}
	}
}

// Distributed TensorFlow's documented pathologies (Section 5.1): it
// scales poorly on Inception-V3 (paper: 10x @ 32 vs Poseidon's 31.5x
// normalized differently; here: well below WFBP) and "fails to scale" on
// the VGG variants because a whole FC tensor lands on one PS shard.
func TestTFBaselinePathologies(t *testing.T) {
	tf := run(t, Config{Model: nn.InceptionV3(), Workers: 32, Strategy: TFBaseline, Engine: "tensorflow"})
	pos := run(t, Config{Model: nn.InceptionV3(), Workers: 32, Strategy: HybComm, Engine: "tensorflow"})
	if tf.Speedup > 0.85*pos.Speedup {
		t.Errorf("TF @32 on Inception-V3 = %.1f should trail Poseidon = %.1f by >15%%",
			tf.Speedup, pos.Speedup)
	}
	tfv := run(t, Config{Model: nn.VGG19(), Workers: 32, Strategy: TFBaseline, Engine: "tensorflow"})
	if tfv.Speedup > 10 {
		t.Errorf("TF @32 on VGG19 = %.1f, want ≤ 10 (fails to scale)", tfv.Speedup)
	}
	// TF single node is the unmodified baseline: speedup exactly ~1.
	tf1 := run(t, Config{Model: nn.InceptionV3(), Workers: 1, Strategy: TFBaseline, Engine: "tensorflow"})
	if math.Abs(tf1.Speedup-1) > 0.02 {
		t.Errorf("TF single-node speedup = %.3f, want 1", tf1.Speedup)
	}
}

// Fig. 10: Adam's SF-push/matrix-pull concentrates VGG19 traffic on the
// shard owning fc6, creating a hot spot several times the mean; Poseidon
// stays balanced and far below TF-WFBP's dense traffic.
func TestFig10TrafficPattern(t *testing.T) {
	adam := run(t, Config{Model: nn.VGG19(), Workers: 8, Strategy: Adam, Engine: "tensorflow"})
	wfbp := run(t, Config{Model: nn.VGG19(), Workers: 8, Strategy: WFBP, Engine: "tensorflow"})
	pos := run(t, Config{Model: nn.VGG19(), Workers: 8, Strategy: HybComm, Engine: "tensorflow"})

	maxAdam, sumAdam := 0.0, 0.0
	for _, g := range adam.NodeTxGbit {
		sumAdam += g
		if g > maxAdam {
			maxAdam = g
		}
	}
	meanAdam := sumAdam / float64(len(adam.NodeTxGbit))
	if maxAdam < 3*meanAdam {
		t.Errorf("Adam hot spot %.1f Gb vs mean %.1f Gb: want ≥3x imbalance", maxAdam, meanAdam)
	}

	maxPos, minPos := 0.0, math.Inf(1)
	for _, g := range pos.NodeTxGbit {
		if g > maxPos {
			maxPos = g
		}
		if g < minPos {
			minPos = g
		}
	}
	if maxPos > 1.3*minPos {
		t.Errorf("Poseidon traffic imbalanced: max %.2f min %.2f", maxPos, minPos)
	}
	// Poseidon's per-node traffic is several times below TF-WFBP's.
	if maxPos > 0.5*wfbp.NodeTxGbit[0] {
		t.Errorf("Poseidon traffic %.1f Gb should be ≪ TF-WFBP %.1f Gb",
			maxPos, wfbp.NodeTxGbit[0])
	}
	// Adam @8 nodes achieves only ≈5x (paper).
	if adam.Speedup > 7 {
		t.Errorf("Adam speedup @8 = %.1f, want ≤ 7 (paper: ~5x)", adam.Speedup)
	}
}

// Section 5.3: CNTK-style 1-bit on VGG19 reaches about 5.8x/11x/20x on
// 8/16/32 nodes — well below Poseidon at 40GbE.
func TestOneBitSpeedups(t *testing.T) {
	want := map[int]float64{8: 5.8, 16: 11, 32: 20}
	for p, target := range want {
		r := run(t, Config{Model: nn.VGG19(), Workers: p, Strategy: OneBit, Engine: "caffe"})
		if math.Abs(r.Speedup-target) > 0.25*target {
			t.Errorf("1-bit @%d = %.1f, want ≈%.1f ±25%%", p, r.Speedup, target)
		}
	}
	// Under starved bandwidth 1-bit beats dense WFBP (its raison d'être).
	ob := run(t, Config{Model: nn.VGG19(), Workers: 16, Strategy: OneBit,
		Engine: "caffe", Bandwidth: netsim.Gbps(5)})
	wf := run(t, Config{Model: nn.VGG19(), Workers: 16, Strategy: WFBP,
		Engine: "caffe", Bandwidth: netsim.Gbps(5)})
	if ob.Speedup < wf.Speedup {
		t.Errorf("at 5GbE 1-bit (%.1f) should beat dense WFBP (%.1f)", ob.Speedup, wf.Speedup)
	}
}

// Fig. 7: GPU stall fraction ordering at 8 nodes: TF > TF+WFBP > Poseidon.
func TestFig7StallOrdering(t *testing.T) {
	for _, m := range []*nn.Model{nn.InceptionV3(), nn.VGG19(), nn.VGG19_22K()} {
		tf := run(t, Config{Model: m, Workers: 8, Strategy: TFBaseline, Engine: "tensorflow"})
		wfbp := run(t, Config{Model: m, Workers: 8, Strategy: WFBP, Engine: "tensorflow"})
		pos := run(t, Config{Model: m, Workers: 8, Strategy: HybComm, Engine: "tensorflow"})
		if !(tf.GPUStallFrac >= wfbp.GPUStallFrac-0.01 && wfbp.GPUStallFrac >= pos.GPUStallFrac-0.01) {
			t.Errorf("%s: stall ordering TF=%.2f WFBP=%.2f Poseidon=%.2f",
				m.Name, tf.GPUStallFrac, wfbp.GPUStallFrac, pos.GPUStallFrac)
		}
	}
}

// Multi-GPU: Poseidon with 4 GPUs/node on one node scales ≈4x on
// GoogLeNet (Section 5.1 reports linear scaling to 4 Titan X).
func TestMultiGPUSingleNode(t *testing.T) {
	r := run(t, Config{Model: nn.GoogLeNet(), Workers: 1, GPUsPerNode: 4, Strategy: HybComm, Engine: "caffe"})
	if r.Speedup < 3.8 {
		t.Errorf("4-GPU single node speedup = %.1f, want ≥ 3.8", r.Speedup)
	}
	// 4 nodes × 8 GPUs ≈ the paper's AWS p2.8xlarge test: ≈32x on
	// GoogLeNet.
	r = run(t, Config{Model: nn.GoogLeNet(), Workers: 4, GPUsPerNode: 8, Strategy: HybComm, Engine: "caffe"})
	if r.Speedup < 28 {
		t.Errorf("4×8-GPU speedup = %.1f, want ≥ 28", r.Speedup)
	}
}

// Straggler ablation: dropping stragglers (the paper's BSP policy)
// recovers throughput that waiting loses.
func TestStragglerDropAblation(t *testing.T) {
	wait := run(t, Config{Model: nn.VGG19(), Workers: 8, Strategy: WFBP, Engine: "caffe",
		StragglerSlow: 1.5})
	drop := run(t, Config{Model: nn.VGG19(), Workers: 8, Strategy: WFBP, Engine: "caffe",
		StragglerSlow: 1.5, DropStragglers: true})
	noStrag := run(t, Config{Model: nn.VGG19(), Workers: 8, Strategy: WFBP, Engine: "caffe"})
	if wait.IterTime <= noStrag.IterTime*1.2 {
		t.Errorf("a 1.5x straggler should slow BSP by ≥20%%: %.3f vs %.3f",
			wait.IterTime, noStrag.IterTime)
	}
	if drop.IterTime >= wait.IterTime {
		t.Errorf("dropping the straggler (%.3f) should beat waiting (%.3f)",
			drop.IterTime, wait.IterTime)
	}
}

// Chunking ablation: with fine-grained 2MB KV pairs the PS load is
// balanced; forcing huge chunks degenerates toward per-tensor placement
// and hurts FC-heavy models at limited bandwidth.
func TestChunkSizeAblation(t *testing.T) {
	fine := run(t, Config{Model: nn.VGG19(), Workers: 8, Strategy: WFBP, Engine: "caffe",
		Bandwidth: netsim.Gbps(10)})
	coarse := run(t, Config{Model: nn.VGG19(), Workers: 8, Strategy: WFBP, Engine: "caffe",
		Bandwidth: netsim.Gbps(10), ChunkBytes: 1 << 30})
	if fine.Speedup <= coarse.Speedup {
		t.Errorf("fine chunks (%.2f) should beat 1GB chunks (%.2f) at 10GbE",
			fine.Speedup, coarse.Speedup)
	}
}

// The pipe fabric and the fluid max-min fabric must agree on iteration
// time within modeling tolerance on a small deployment.
func TestPipeVsFluidAgreement(t *testing.T) {
	pipe := run(t, Config{Model: nn.GoogLeNet(), Workers: 4, Strategy: WFBP, Engine: "caffe",
		Bandwidth: netsim.Gbps(10), Iterations: 3, Warmup: 1})
	fluid := run(t, Config{Model: nn.GoogLeNet(), Workers: 4, Strategy: WFBP, Engine: "caffe",
		Bandwidth: netsim.Gbps(10), Iterations: 3, Warmup: 1, FluidNet: true})
	diff := math.Abs(pipe.IterTime-fluid.IterTime) / fluid.IterTime
	if diff > 0.15 {
		t.Errorf("pipe %.4f vs fluid %.4f: %.0f%% apart", pipe.IterTime, fluid.IterTime, diff*100)
	}
}

// Determinism: identical configs produce identical results.
func TestRunDeterministic(t *testing.T) {
	cfg := Config{Model: nn.VGG19(), Workers: 8, Strategy: HybComm, Engine: "caffe"}
	a := Run(cfg)
	b := Run(cfg)
	if a.IterTime != b.IterTime || a.Speedup != b.Speedup {
		t.Fatalf("nondeterministic: %.6f vs %.6f", a.IterTime, b.IterTime)
	}
}

func TestStrategyStrings(t *testing.T) {
	names := map[Strategy]string{SeqPS: "Caffe+PS", WFBP: "WFBP", HybComm: "Poseidon",
		TFBaseline: "TF", Adam: "Adam", OneBit: "1bit"}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
	if Strategy(99).String() == "" {
		t.Error("unknown strategy must render")
	}
}

func TestThroughputConsistency(t *testing.T) {
	r := run(t, Config{Model: nn.VGG19(), Workers: 8, Strategy: HybComm, Engine: "caffe"})
	want := float64(8*32) / r.IterTime
	if math.Abs(r.Throughput-want) > 1e-9*want {
		t.Errorf("Throughput %.2f != workers·batch/iterTime %.2f", r.Throughput, want)
	}
	if r.GPUBusyFrac+r.GPUStallFrac > 1.001 || r.GPUBusyFrac+r.GPUStallFrac < 0.999 {
		t.Errorf("busy+stall = %v", r.GPUBusyFrac+r.GPUStallFrac)
	}
}
