package train

import (
	"math/rand"
	"testing"

	"repro/internal/comm"
	"repro/internal/nn"
	"repro/internal/nn/autodiff"
	"repro/internal/poseidon"
)

// The functional plane must route exactly as poseidon.BestScheme — the
// coordinator's Algorithm 1 entry point — decides, for every registered
// model and a spread of cluster scales. Specs are derived from the zoo
// descriptors (no tensor instantiation), and the trainer's own planner
// construction (plannerFor) is what gets interrogated, so a drift in
// either plane's wiring fails here.
func TestFunctionalPlanMatchesBestSchemeAcrossZoo(t *testing.T) {
	for _, m := range nn.Zoo() {
		for _, workers := range []int{2, 4, 8, 16} {
			cfg := Config{Workers: workers, Batch: m.BatchSize, Mode: Hybrid}
			planner := plannerFor(cfg, workers)
			cluster := poseidon.ClusterShape{Workers: workers, Servers: workers, Batch: m.BatchSize}
			for i, li := range m.SyncLayers() {
				l := &m.Layers[li]
				got := planner.SchemeFor(poseidon.LayerSpec(i, l))
				if want := poseidon.BestScheme(l, cluster); got != want {
					t.Fatalf("%s/%s at %d workers: functional plane plans %v, BestScheme says %v",
						m.Name, l.Name, workers, got, want)
				}
			}
		}
	}
}

// Every mode must flow through the planner: the routes buildPlans emits
// have to equal a direct planner evaluation of the same specs — no
// bespoke switch arms left in the trainer.
func TestBuildPlansRoutesEveryModeThroughPlanner(t *testing.T) {
	for _, mode := range []SyncMode{PSOnly, Hybrid, OneBit} {
		cfg := Config{Workers: 4, Batch: 2, Mode: mode, Seed: 3,
			BuildNet: mlpBuilder(16, []int{32}, 4)}
		net := cfg.BuildNet(rand.New(rand.NewSource(cfg.Seed)))
		plans, err := buildPlans(cfg, net, cfg.Workers)
		if err != nil {
			t.Fatalf("mode=%v: %v", mode, err)
		}
		specs := ParamSpecs(net)
		if len(plans) != len(specs) {
			t.Fatalf("mode=%v: %d plans for %d specs", mode, len(plans), len(specs))
		}
		planner := plannerFor(cfg, cfg.Workers)
		for i, spec := range specs {
			scheme := planner.SchemeFor(spec)
			route, err := scheme.Route()
			if err != nil {
				t.Fatalf("mode=%v param %d: %v", mode, i, err)
			}
			if plans[i].Route != route {
				t.Fatalf("mode=%v param %d (%s): buildPlans %v, planner %v",
					mode, i, spec.Name, plans[i].Route, route)
			}
			if plans[i].Name != spec.Name {
				t.Fatalf("mode=%v param %d: plan name %q, spec name %q", mode, i, plans[i].Name, spec.Name)
			}
		}
	}
}

// ParamSpecs must mark exactly the FC weight matrices SF-capable, with
// dense indices matching Params() order.
func TestParamSpecsMarkFCWeights(t *testing.T) {
	net := autodiff.MLPNet(16, []int{32}, 4, rand.New(rand.NewSource(1)))
	specs := ParamSpecs(net)
	if len(specs) != len(net.Params()) {
		t.Fatalf("%d specs for %d params", len(specs), len(net.Params()))
	}
	sfCount := 0
	for i, s := range specs {
		if s.Index != i {
			t.Fatalf("spec %d has index %d", i, s.Index)
		}
		if s.SFCapable {
			sfCount++
		}
	}
	if sfCount != 2 { // two FC layers, weights only — biases are not decomposable
		t.Fatalf("%d SF-capable specs, want 2", sfCount)
	}
}

// Explicit overrides flow from Config through the planner: pinning the
// SFB-eligible hidden weights back to PS must leave no SFB routes, and
// pinning an impossible route must surface as an error from the run.
func TestRouteOverridesRespected(t *testing.T) {
	cfg := Config{Workers: 4, Batch: 2, Mode: Hybrid, Seed: 3,
		BuildNet:       mlpBuilder(16, []int{32}, 4),
		RouteOverrides: map[int]poseidon.Scheme{0: poseidon.PS, 2: poseidon.PS}}
	net := cfg.BuildNet(rand.New(rand.NewSource(cfg.Seed)))
	plans, err := buildPlans(cfg, net, cfg.Workers)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range plans {
		if p.Route == comm.RouteSFB {
			t.Fatalf("param %d still on SFB despite PS override", p.Index)
		}
	}

	bad := cfg
	bad.RouteOverrides = map[int]poseidon.Scheme{1: poseidon.SFB} // a bias vector
	if _, err := buildPlans(bad, net, bad.Workers); err == nil {
		t.Fatal("SFB override on a bias vector must fail at plan time")
	}

	typo := cfg
	typo.RouteOverrides = map[int]poseidon.Scheme{42: poseidon.PS} // no such param
	if _, err := buildPlans(typo, net, typo.Workers); err == nil {
		t.Fatal("override for a nonexistent param must fail at plan time")
	}
	if _, err := Decisions(typo); err == nil {
		t.Fatal("Decisions must validate overrides like the run does")
	}
}

// A run with overridden routes must still train correctly (the
// override path reaches the live router, not just the preview).
func TestRunWithOverridesMatchesReference(t *testing.T) {
	cfg := Config{
		Workers: 4, Iters: 8, Batch: 2, LR: 0.05, Mode: Hybrid, Seed: 13,
		BuildNet:       mlpBuilder(16, []int{32}, 4),
		TrainSet:       smallData(101, 256),
		RouteOverrides: map[int]poseidon.Scheme{0: poseidon.PS},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref := singleWorkerReference(t, cfg)
	if d := maxParamDiff(res.Final, ref); d > 1e-3 {
		t.Fatalf("overridden run differs from large-batch SGD by %g", d)
	}
}

// Decisions previews the same choices the run executes.
func TestDecisionsMatchBuildPlans(t *testing.T) {
	cfg := Config{Workers: 3, Batch: 2, Mode: Hybrid, Seed: 5,
		BuildNet: mlpBuilder(16, []int{32}, 4)}
	net := cfg.BuildNet(rand.New(rand.NewSource(cfg.Seed)))
	plans, err := buildPlans(cfg, net, cfg.Workers)
	if err != nil {
		t.Fatal(err)
	}
	decisions, err := Decisions(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(decisions) != len(plans) {
		t.Fatalf("%d decisions for %d plans", len(decisions), len(plans))
	}
	for i, d := range decisions {
		route, err := d.Scheme.Route()
		if err != nil {
			t.Fatal(err)
		}
		if route != plans[i].Route {
			t.Fatalf("param %d: decision %v, plan %v", i, d.Scheme, plans[i].Route)
		}
	}
}
