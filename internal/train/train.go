// Package train is the functional plane of the Poseidon reproduction:
// real data-parallel SGD over real tensors, synchronized through the
// paper's protocol. The communication itself — per-parameter syncers
// (PS / SFB / 1-bit), the sharded bulk-synchronous KV store, chunked
// overlapped pushes — lives in internal/comm; this package only builds
// the model, shards the data, derives the per-parameter routing plan
// from the cost model, and drives the compute loop against the
// synchronization runtime.
//
// The trainer is transport-agnostic: hand each worker a
// transport.Mesh endpoint (in-process channels or real TCP) and it
// speaks the same wire protocol.
package train

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/comm"
	"repro/internal/data"
	"repro/internal/metrics"
	"repro/internal/nn/autodiff"
	"repro/internal/poseidon"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// SyncMode selects the communication strategy for the functional plane.
type SyncMode int

// Supported strategies.
const (
	// PSOnly routes every parameter through the sharded KV store.
	PSOnly SyncMode = iota
	// Hybrid routes FC weight matrices through SFB when the paper's
	// cost model prefers it, everything else through the KV store.
	Hybrid
	// OneBit quantizes FC weight-gradient pushes to 1 bit with residual
	// feedback (CNTK baseline); other tensors use the KV store.
	OneBit
)

// String names the mode.
func (m SyncMode) String() string {
	switch m {
	case PSOnly:
		return "PS"
	case Hybrid:
		return "Hybrid"
	case OneBit:
		return "1bit"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Config parameterizes a functional training run.
type Config struct {
	Workers int
	Iters   int
	Batch   int // per-worker batch size
	LR      float32
	Mode    SyncMode
	Seed    int64

	// Staleness bounds how many iterations a fast worker may run ahead
	// of the slowest layer synchronization (stale synchronous parallel;
	// Ho et al., cited by the paper as the consistency relaxation
	// Poseidon's design extends to). 0 is BSP.
	Staleness int

	// Overlap streams pushes through the comm runtime's bounded send
	// pool, so a layer's chunks are on the wire while later layers are
	// still being launched (wait-free backpropagation). Off, every send
	// completes before the next launch — the serialized baseline.
	Overlap bool
	// ChunkElems caps the float32 count per KV chunk on the PS route
	// (0 = whole tensors). Chunking spreads one large layer across all
	// shards so its pushes overlap each other.
	ChunkElems int
	// PoolWorkers sizes the send pool when Overlap is on (0 = default).
	PoolWorkers int

	// BuildNet constructs the model; it is called once per worker with
	// an identically seeded RNG so all replicas start identical.
	BuildNet func(rng *rand.Rand) *autodiff.Network

	// EvalEvery > 0 makes worker 0 evaluate on the test set every that
	// many iterations.
	EvalEvery int
	TrainSet  *data.Dataset // sharded across workers
	TestSet   *data.Dataset // evaluated by worker 0

	// Progress, when set, is called with every recorded Point as the
	// run produces it — the streaming hook multi-process workers use to
	// report liveness before the curve is complete. Called from the
	// worker's compute goroutine; keep it fast.
	Progress func(Point)

	// RouteOverrides pins parameter index → scheme, trumping the
	// planner's policy for those tensors (the worker's -route flag and
	// ablations). Overriding a non-FC tensor onto SFB or 1-bit fails at
	// plan time.
	RouteOverrides map[int]poseidon.Scheme

	// Metrics, when set, receives this worker's live communication
	// counters (per-parameter wire traffic, sync-stall time, KV
	// rounds); snapshot it after the run for the -metrics-dump report.
	Metrics *metrics.Comm
}

// Point is one recorded training measurement.
type Point struct {
	Iter      int
	TrainLoss float64
	TestErr   float64 // test error rate on eval points, -1 everywhere else
}

// Result aggregates a run's curves and final state.
type Result struct {
	Curve []Point
	Final *autodiff.Network // worker 0's final replica
	Mode  SyncMode
}

// Run executes a full data-parallel training run over an in-process
// channel mesh and returns worker 0's result. All replicas are verified
// to agree at the end (BSP invariant).
func Run(cfg Config) (*Result, error) {
	meshes := transport.NewChanCluster(cfg.Workers)
	endpoints := make([]transport.Mesh, cfg.Workers)
	for i, m := range meshes {
		endpoints[i] = m
	}
	return RunOver(cfg, endpoints)
}

// RunOver executes one worker per provided mesh endpoint and returns
// endpoint 0's result — the injection point for custom transports
// (bandwidth-modeled DelayMesh wrappers, instrumented meshes). Every
// endpoint is closed when all workers finish: per-endpoint transports
// (one TCPMesh per worker) each own real sockets, and for
// cluster-scoped transports (ChanCluster) the extra Closes are
// idempotent no-ops.
func RunOver(cfg Config, meshes []transport.Mesh) (*Result, error) {
	if len(meshes) != cfg.Workers {
		return nil, fmt.Errorf("train: %d mesh endpoints for %d workers", len(meshes), cfg.Workers)
	}
	results := make([]*Result, cfg.Workers)
	errs := make([]error, cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[w], errs[w] = RunWorker(cfg, meshes[w])
		}()
	}
	wg.Wait()
	for _, m := range meshes {
		m.Close()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results[0], nil
}

// RunWorker executes one worker of a data-parallel run over the given
// mesh endpoint. Every participant must call it with an identical
// Config.
func RunWorker(cfg Config, mesh transport.Mesh) (*Result, error) {
	w := &worker{cfg: cfg, mesh: mesh, id: mesh.Self(), n: mesh.N()}
	return w.run()
}

type worker struct {
	cfg  Config
	mesh transport.Mesh
	id   int
	n    int

	net    *autodiff.Network
	router *comm.Router
	local  *data.Dataset
}

func (w *worker) run() (*Result, error) {
	cfg := w.cfg
	rng := rand.New(rand.NewSource(cfg.Seed))
	w.net = cfg.BuildNet(rng)
	w.local = cfg.TrainSet.Shard(w.id, w.n)

	params := w.net.Params()
	grads := w.net.Grads()
	plans, err := buildPlans(cfg, w.net, w.n)
	if err != nil {
		return nil, err
	}
	router, err := comm.NewRouter(comm.Config{
		Mesh:   w.mesh,
		Plans:  plans,
		Params: params,
		// The cluster-wide update is −LR · mean over all P·K samples, so
		// each worker contributes −LR/P of its local mean gradient.
		Scale:       -cfg.LR / float32(w.n),
		Staleness:   cfg.Staleness,
		Overlap:     cfg.Overlap,
		ChunkElems:  cfg.ChunkElems,
		PoolWorkers: cfg.PoolWorkers,
		Metrics:     cfg.Metrics,
	})
	if err != nil {
		return nil, err
	}
	w.router = router
	router.Start()
	defer router.Stop()

	res := &Result{Mode: cfg.Mode}
	for iter := 0; iter < cfg.Iters; iter++ {
		// Gate on the consistency model (BSP when Staleness is 0), then
		// adopt the freshest synchronized replica.
		router.WaitFor(iter)
		router.Adopt(params)

		x, labels := w.local.Batch(iter*cfg.Batch, cfg.Batch)
		w.net.ZeroGrads()
		loss, _ := w.net.LossAndGrad(x, labels)

		// Launch every syncer (the paper's Algorithm 2 sync() calls).
		if err := router.LaunchAll(iter, grads); err != nil {
			return nil, err
		}

		p := Point{Iter: iter, TrainLoss: loss, TestErr: -1}
		if cfg.EvalEvery > 0 && w.id == 0 && (iter+1)%cfg.EvalEvery == 0 && cfg.TestSet != nil {
			_, errRate := w.net.Eval(cfg.TestSet.X, cfg.TestSet.Labels)
			p.TestErr = errRate
		}
		res.Curve = append(res.Curve, p)
		if cfg.Progress != nil {
			cfg.Progress(p)
		}
	}
	// Drain: wait until the final iteration is fully synchronized
	// everywhere, then adopt it.
	router.WaitFor(cfg.Iters + cfg.Staleness)
	router.Adopt(params)
	if err := router.Err(); err != nil {
		return nil, err
	}
	res.Final = w.net
	return res, nil
}

// policyFor maps a SyncMode to its planner policy — the modes differ
// only in what Algorithm 1 may choose, not in bespoke routing code.
func policyFor(mode SyncMode) poseidon.Policy {
	switch mode {
	case PSOnly:
		return poseidon.PolicyPS
	case OneBit:
		return poseidon.PolicyOneBit
	default:
		return poseidon.PolicyHybrid
	}
}

// plannerFor builds the routing planner for a run with the given
// worker count (PS shards are colocated with workers, as in the
// paper's deployments).
func plannerFor(cfg Config, workers int) *poseidon.Planner {
	p := poseidon.NewPlanner(policyFor(cfg.Mode),
		poseidon.ClusterShape{Workers: workers, Servers: workers, Batch: cfg.Batch})
	for idx, s := range cfg.RouteOverrides {
		p.Override(idx, s)
	}
	return p
}

// PlannerFor returns the cost-model planner the trainer will consult
// for cfg — exported so tools (the worker's -autoplan dump) and tests
// can inspect routing decisions without running the cluster.
func PlannerFor(cfg Config) *poseidon.Planner { return plannerFor(cfg, cfg.Workers) }

// ParamSpecs derives the planner's tensor specs from a live network:
// one spec per trainable tensor in Params() order. FC weight matrices
// are the SF-capable tensors, located through the layer structure
// rather than by shape guessing.
func ParamSpecs(net *autodiff.Network) []poseidon.TensorSpec {
	var specs []poseidon.TensorSpec
	idx := 0
	for _, layer := range net.Layers {
		fc, isFC := layer.(*autodiff.FC)
		for pi, p := range layer.Params() {
			suffix := fmt.Sprintf(".p%d", pi)
			switch pi {
			case 0:
				suffix = ".W"
			case 1:
				suffix = ".b"
			}
			specs = append(specs, poseidon.TensorSpec{
				Index:     idx,
				Name:      layer.Name() + suffix,
				Rows:      p.Rows,
				Cols:      p.Cols,
				SFCapable: isFC && pi == 0 && fc.W == p,
			})
			idx++
		}
	}
	return specs
}

// Decisions previews the per-tensor routing for cfg with the cost
// numbers behind each choice (the worker's -autoplan report): it
// builds a throwaway replica from cfg.BuildNet and plans it. The
// preview validates like the run — an infeasible or unknown-parameter
// override errors here instead of mid-training.
func Decisions(cfg Config) ([]poseidon.Decision, error) {
	net := cfg.BuildNet(rand.New(rand.NewSource(cfg.Seed)))
	planner := PlannerFor(cfg)
	specs := ParamSpecs(net)
	if _, err := planner.ParamPlans(specs); err != nil {
		return nil, err
	}
	return planner.Plan(specs), nil
}

// buildPlans routes every parameter through poseidon.Planner — the
// single owner of the Algorithm 1 decision rule shared with the
// performance plane — then attaches the sufficient-factor extractors
// the SFB route needs (closures over live FC layer state the planner
// never sees).
func buildPlans(cfg Config, net *autodiff.Network, workers int) ([]comm.ParamPlan, error) {
	plans, err := plannerFor(cfg, workers).ParamPlans(ParamSpecs(net))
	if err != nil {
		return nil, err
	}
	idx := 0
	for _, layer := range net.Layers {
		fc, isFC := layer.(*autodiff.FC)
		for pi, p := range layer.Params() {
			if plans[idx].Route == comm.RouteSFB {
				if !(isFC && pi == 0 && fc.W == p) {
					return nil, fmt.Errorf("train: param %d (%s) routed to SFB but has no sufficient factor", idx, plans[idx].Name)
				}
				fc := fc
				// Borrowed factors reference the layer's live backward
				// buffers — the syncer encodes and copies them before
				// the compute loop can overwrite, so the SFB route ships
				// gradients without a per-iteration clone.
				plans[idx].SF = func() *tensor.SufficientFactor { return fc.BorrowSufficientFactor() }
			}
			idx++
		}
	}
	return plans, nil
}
